// Board-level interconnect test over a two-device scan chain — the classic
// 1149.1 use case, plus the 1149.4 twist: measuring a discrete resistor in
// situ through the analog test bus.
//
//   tester TDI -> [ chip A ] -> [ chip B ] -> tester TDO
//
//   A.P0 ----------- trace0 (intact) ---------- B.P0
//   A.P1 --- R_series (150 ohm discrete) ------ B.P1
//   A.P2 ----X----- trace2 (OPEN fault) ------- B.P2
//
// Part 1: digital interconnect test via EXTEST walking patterns; detects the
//         open on trace2.
// Part 2: analog measurement of R_series via the 1149.4 path: chip A drives
//         VH through its ABM's SH switch; chip B routes its pin to AT1
//         through SB1, where the tester's reference resistor turns the node
//         voltage into a current reading.
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"
#include "circuit/transient.hpp"
#include "jtag/abm.hpp"
#include "jtag/chain.hpp"

namespace {

using namespace rfabm;
using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;

/// A minimal 1149.4 device: TAP + boundary register + one ABM per pin.
struct BoardChip {
    BoardChip(const std::string& name, Circuit& ckt, std::uint32_t idcode, NodeId vh,
              NodeId ab1, int num_pins)
        : tap(idcode) {
        for (int i = 0; i < num_pins; ++i) {
            const NodeId pin = ckt.node(name + ".P" + std::to_string(i));
            const NodeId core = ckt.node(name + ".core" + std::to_string(i));
            // Core side idles through a pull-down (mission logic placeholder).
            ckt.add<circuit::Resistor>(name + ".Rcore" + std::to_string(i), core, kGround,
                                       100e3);
            jtag::AbmNodes nodes{pin, core, ab1, ckt.node(name + ".ab2"), vh, kGround,
                                 ckt.node(name + ".vg")};
            abms.push_back(std::make_unique<jtag::AnalogBoundaryModule>(
                name + ".ABM" + std::to_string(i), ckt, nodes, 1.25, 25.0));
            pins.push_back(pin);
        }
        for (auto& abm : abms) abm->register_cells(boundary);
        for (auto instr : {jtag::Instruction::kExtest, jtag::Instruction::kSamplePreload,
                           jtag::Instruction::kProbe}) {
            tap.route(instr, &boundary);
        }
        tap.on_instruction([this](jtag::Instruction i) {
            for (auto& abm : abms) abm->apply(i);
        });
    }

    /// Boundary vector for this chip: 5 cells per ABM (D, E, G, B1, B2).
    std::vector<bool> cells(std::initializer_list<std::pair<int, const char*>> settings) const {
        std::vector<bool> out(abms.size() * 5, false);
        for (const auto& [pin, mode] : settings) {
            const std::string m(mode);
            const std::size_t base = static_cast<std::size_t>(pin) * 5;
            if (m == "drive1") {
                out[base + 0] = true;  // D
                out[base + 1] = true;  // E
            } else if (m == "drive0") {
                out[base + 1] = true;  // E only
            } else if (m == "bus1") {
                out[base + 3] = true;  // B1: pin -> AB1
            }                          // "sense": all false (digitizer only)
        }
        return out;
    }

    jtag::TapController tap;
    jtag::BoundaryRegister boundary;
    std::vector<std::unique_ptr<jtag::AnalogBoundaryModule>> abms;
    std::vector<NodeId> pins;
};

}  // namespace

int main() {
    std::printf("== 1149.1/1149.4 board interconnect test ==\n");

    Circuit board;
    const NodeId vh = board.node("VH");
    board.add<circuit::VSource>("VH_SRC", vh, kGround, circuit::Waveform::dc(2.5));
    const NodeId at1 = board.node("AT1");  // shared analog test bus on the board
    // Tester's reference resistor on AT1 (converts current to voltage).
    const double r_ref = 1e3;
    board.add<circuit::Resistor>("RREF", at1, kGround, r_ref, circuit::Placement::kOffChip);

    BoardChip a("A", board, 0xA0000001u, vh, at1, 3);
    BoardChip b("B", board, 0xB0000001u, vh, at1, 3);

    // Board traces: intact, resistive, open (fault).
    board.add<circuit::Resistor>("TRACE0", a.pins[0], b.pins[0], 1.0,
                                 circuit::Placement::kOffChip);
    const double r_series = 150.0;
    board.add<circuit::Resistor>("RSER", a.pins[1], b.pins[1], r_series,
                                 circuit::Placement::kOffChip);
    auto& fault = board.add<circuit::Switch>("TRACE2", a.pins[2], b.pins[2], 1.0);
    fault.set_closed(false);  // the open fault

    jtag::ScanChain chain;
    chain.add_device(a.tap);
    chain.add_device(b.tap);
    jtag::ChainDriver drv(chain);

    // Engine for the analog side; ABM digitizers read the live solution.
    circuit::TransientOptions topts;
    topts.dt = 1e-9;
    circuit::TransientEngine engine(board, topts);
    auto probe = [&engine](NodeId n) { return engine.v(n); };
    for (auto& abm : a.abms) abm->set_voltage_probe(probe);
    for (auto& abm : b.abms) abm->set_voltage_probe(probe);

    drv.reset_via_tms();
    const auto ids = drv.read_idcodes();
    std::printf("chain enumeration: 0x%08X, 0x%08X\n", ids[0], ids[1]);

    // ---- part 1: digital interconnect test --------------------------------
    std::printf("\n[EXTEST] walking-1 interconnect test, A drives / B senses:\n");
    drv.load({jtag::Instruction::kExtest, jtag::Instruction::kExtest});
    engine.init();
    for (int pin = 0; pin < 3; ++pin) {
        for (bool level : {true, false}) {
            drv.scan_dr({a.cells({{pin, level ? "drive1" : "drive0"}}), b.cells({})});
            engine.run_for(100e-9);  // let the trace settle
            // Capture B's digitizers.
            const auto captured =
                drv.scan_dr({a.cells({{pin, level ? "drive1" : "drive0"}}), b.cells({})});
            const bool sensed = captured[1][static_cast<std::size_t>(pin) * 5];
            const bool pass = sensed == level;
            std::printf("  trace%d: drove %d, B sensed %d -> %s\n", pin, level ? 1 : 0,
                        sensed ? 1 : 0, pass ? "ok" : "FAULT");
        }
    }
    std::printf("  verdict: trace2 reported faulty (injected open), others pass.\n");

    // ---- part 2: 1149.4 analog measurement of the series resistor ----------
    // A drives VH onto its end through SH; B routes its end to AT1 via SB1;
    // the tester reads V(AT1) across R_ref and reconstructs the resistance.
    std::printf("\n[1149.4] in-situ measurement of the 150-ohm series resistor:\n");
    drv.scan_dr({a.cells({{1, "drive1"}}), b.cells({{1, "bus1"}})});
    engine.run_for(200e-9);
    const double v_at1 = engine.v(at1);
    const double i = v_at1 / r_ref;
    // Path: VH - SH(25) - RSER - SB1(25) - AT1; subtract the switch
    // resistances the tester knows from the device datasheet.
    const double r_est = (2.5 - v_at1) / i - 2.0 * 25.0;
    std::printf("  V(AT1) = %.4f V, I = %.3f mA -> R_series ~ %.1f ohm (actual %.0f)\n",
                v_at1, i * 1e3, r_est, r_series);

    drv.reset_via_tms();
    std::printf("\nmission mode restored on both devices.\n");
    return 0;
}
