// DC-calibration demo: the paper's headline enabler, §4: "DC-calibration
// developed in this study decreases measurement errors considerably."
//
// Takes one slow-corner die and one fast-corner die, measures a -10 dBm tone
// against the nominal reference curve (a) with the factory-default tuning
// codes and (b) after the tuneP/tunef procedures run over the 1149.4 bus.
#include <cstdio>

#include "circuit/process.hpp"
#include "core/calibration.hpp"
#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "rf/sweep.hpp"

int main() {
    using namespace rfabm;
    std::printf("== DC calibration demo ==\n");

    const core::RfAbmChipConfig config{};

    // Reference curves from the nominal device.
    std::printf("acquiring nominal reference curves...\n");
    rf::MonotoneCurve pcurve;
    rf::MonotoneCurve fcurve;
    {
        core::RfAbmChip chip{config};
        core::MeasurementController controller(chip);
        controller.open_session();
        core::dc_calibrate(controller);
        pcurve = core::acquire_power_curve(controller, rf::arange(-20.0, 7.0, 1.0), 1.5e9);
        fcurve = core::acquire_frequency_curve(controller, rf::arange(0.9, 2.1, 0.1), 6.0);
    }

    struct Die {
        const char* name;
        circuit::CornerName corner;
    };
    for (const Die die : {Die{"slow-slow (SS)", circuit::CornerName::kSS},
                          Die{"fast-fast (FF)", circuit::CornerName::kFF}}) {
        const auto corner = circuit::named_corner(die.corner);
        std::printf("\n-- die: %s --\n", die.name);

        core::RfAbmChip chip{config, core::nominal_conditions(), corner};
        core::MeasurementController controller(chip);
        controller.open_session();

        // (a) factory defaults: no tuning procedure.
        chip.set_rf(-10.0, 1.5e9);
        const auto raw_p = controller.measure_power(pcurve);
        chip.set_rf(6.0, 1.8e9);
        const auto raw_f = controller.measure_frequency(fcurve);
        std::printf("  uncalibrated: -10 dBm reads %+6.2f dBm (err %+5.2f dB); "
                    "1.8 GHz reads %5.3f GHz (err %+4.0f MHz)\n",
                    raw_p.dbm, raw_p.dbm + 10.0, raw_f.ghz, (raw_f.ghz - 1.8) * 1e3);

        // (b) run the paper's DC calibration over the analog bus.
        const auto cal = core::dc_calibrate(controller);
        std::printf("  tuneP -> %.3f V, tunef -> %.3f V\n", cal.tune_p.bench_volts,
                    cal.tune_f.bench_volts);

        chip.set_rf(-10.0, 1.5e9);
        const auto cal_p = controller.measure_power(pcurve);
        chip.set_rf(6.0, 1.8e9);
        const auto cal_f = controller.measure_frequency(fcurve);
        std::printf("  calibrated:   -10 dBm reads %+6.2f dBm (err %+5.2f dB); "
                    "1.8 GHz reads %5.3f GHz (err %+4.0f MHz)\n",
                    cal_p.dbm, cal_p.dbm + 10.0, cal_f.ghz, (cal_f.ghz - 1.8) * 1e3);
    }
    std::printf("\ndone: calibration absorbs the die-to-die threshold and bias-current "
                "spread, as the paper reports.\n");
    return 0;
}
