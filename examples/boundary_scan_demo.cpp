// Boundary-scan demo: drive the IEEE 1149.1/1149.4 machinery by hand.
//
// Shows the raw test-bus choreography the MeasurementController automates:
// TAP reset, IDCODE read, instruction loads, boundary-register scans that
// configure the TBIC and ABM switches, the PROBE property (mission path
// undisturbed), and a manual analog read through AT1.
#include <cstdio>
#include <string>

#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "jtag/instructions.hpp"

int main() {
    using namespace rfabm;
    std::printf("== IEEE 1149.1/1149.4 boundary scan demo ==\n");

    core::RfAbmChip chip{core::RfAbmChipConfig{}};
    auto& tap = chip.tap();
    auto& drv = chip.tap_driver();

    // 1. Hard reset via five TMS-high clocks; IDCODE becomes the active DR.
    drv.reset_via_tms();
    std::printf("state after reset: %s, instruction %s\n",
                std::string(jtag::to_string(tap.state())).c_str(),
                std::string(jtag::to_string(tap.instruction())).c_str());
    std::printf("IDCODE: 0x%08X\n", drv.read_idcode());

    // 2. BYPASS behaves as a single-cycle delay line.
    drv.load(jtag::Instruction::kBypass);
    const auto echoed = drv.scan_dr({true, false, true, true});
    std::printf("BYPASS scan of 1011 came back: %d%d%d%d (one-bit delay)\n",
                static_cast<int>(echoed[3]), static_cast<int>(echoed[2]),
                static_cast<int>(echoed[1]), static_cast<int>(echoed[0]));

    // 3. PROBE: boundary scan closes TBIC S1/S2 (AT1-AB1, AT2-AB2) while the
    // RF pin's SD switch stays closed - the 1149.4 guarantee.
    drv.load(jtag::Instruction::kProbe);
    std::vector<bool> cells(16, false);
    cells[0] = true;  // TBIC S1
    cells[1] = true;  // TBIC S2
    drv.scan_dr(cells);
    std::printf("\nafter PROBE + boundary scan:\n");
    std::printf("  TBIC S1 (AT1-AB1): %s\n",
                chip.tbic().switch_dev(jtag::TbicSwitch::kS1).closed() ? "closed" : "open");
    std::printf("  RF-pin SD (mission): %s  <- PROBE leaves the core connected\n",
                chip.rf_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed() ? "closed" : "open");

    // 4. Route the power detector's reference output to AT1 via the serial
    // select bus (the paper's external control unit) and read the DC level.
    chip.select_bus().write_word(
        core::select_word({core::SelectBit::kOutPlusToAb1, core::SelectBit::kDetectorPower}),
        core::kSelectWidth);
    chip.engine().init();
    chip.engine().run_for(100e-9);
    std::printf("\nanalog read through the test bus: AT1 = %.4f V (detector VoutN)\n",
                chip.live_v(chip.at1()));

    // 5. EXTEST with drive-enable forces the fin pin from the boundary
    // register: D=1 selects VH.
    drv.load(jtag::Instruction::kExtest);
    std::vector<bool> extest(16, false);
    extest[11] = true;  // ABM_FIN.D
    extest[12] = true;  // ABM_FIN.E (drive enable)
    drv.scan_dr(extest);
    chip.engine().run_for(50e-9);
    std::printf("\nEXTEST driving the fin pin high from the boundary register:\n");
    std::printf("  fin pin = %.3f V (VH rail through SH)\n", chip.live_v(chip.fin_pin()));
    std::printf("  fin SH switch: %s, SD: %s\n",
                chip.fin_pin_abm().switch_dev(jtag::AbmSwitch::kSH).closed() ? "closed" : "open",
                chip.fin_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed() ? "closed" : "open");

    // 6. Back to mission mode.
    drv.reset_via_tms();
    std::printf("\nafter reset: RF SD %s, TBIC S1 %s (mission mode restored)\n",
                chip.rf_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed() ? "closed" : "open",
                chip.tbic().switch_dev(jtag::TbicSwitch::kS1).closed() ? "closed" : "open");
    return 0;
}
