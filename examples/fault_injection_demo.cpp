// Fault-injection campaign, end to end.
//
// Builds the calibrated nominal chip, plants a population of physical and
// scan-chain defects, and runs the hardened measurement pipeline against
// each one in turn.  A healthy run must come back Ok; every fault must be
// flagged (Degraded or Failed, with the suspected fault class) — and no
// verdict may be a silently wrong Ok.  Exit status reflects exactly that, so
// the demo doubles as a smoke test of the detection coverage.
#include <cstdio>
#include <memory>

#include "circuit/devices/defects.hpp"
#include "core/calibration.hpp"
#include "core/measurement.hpp"
#include "faults/campaign.hpp"
#include "faults/circuit_faults.hpp"
#include "faults/jtag_faults.hpp"
#include "rf/sweep.hpp"

int main() {
    using namespace rfabm;
    using namespace rfabm::faults;

    core::RfAbmChip chip{core::RfAbmChipConfig{}};
    core::MeasurementController controller(chip);
    controller.open_session();
    core::dc_calibrate(controller);
    const rf::MonotoneCurve power_curve =
        core::acquire_power_curve(controller, rf::arange(-20.0, 7.0, 3.0), 1.5e9);
    std::printf("calibrated: %zu-point power curve acquired\n\n", power_curve.size());

    // Plant the bridge defect device next to the healthy netlist (dormant
    // defects stamp nothing, so the healthy baseline is untouched).
    auto& bridge = chip.circuit().add<circuit::BridgeDefect>(
        "DEF.voutp_gnd", chip.pdet().vout_p(), circuit::kGround, 25.0);

    FaultCampaign campaign(controller, power_curve, {-8.0, 1.5e9});

    // Circuit-level defects.
    campaign.add(std::make_unique<OpenDeviceFault>(
        "open:PDET.R8", chip.circuit().get<circuit::Resistor>("PDET.R8")));
    campaign.add(std::make_unique<BridgeFault>("bridge:voutp-gnd", bridge));
    campaign.add(std::make_unique<DriftFault>(
        "drift:PDET.R4", chip.circuit().get<circuit::Resistor>("PDET.R4"), 5.0));
    campaign.add(std::make_unique<StuckMosfetFault>(
        "stuckoff:PDET.Q1", chip.pdet().q1(), circuit::MosfetFault::kStuckOff));

    // Switch-matrix defects.
    campaign.add(std::make_unique<StuckSwitchFault>(
        "stuckopen:MUX4.out_minus", chip.mux().switch_for(core::SelectBit::kOutMinusToAb2),
        circuit::SwitchFault::kStuckOpen));

    // Scan-chain / serial-bus defects.
    campaign.add(std::make_unique<StuckLineFault>(
        "stuck0:TDO", chip.tap_driver(), StuckLineFault::Line::kTdo, false));
    campaign.add(std::make_unique<TckGlitchFault>(
        "glitch:TCK", chip.tap_driver(), TckGlitchConfig{.drop_every = 7}));
    campaign.add(std::make_unique<TckGlitchFault>(
        "burst:TCK", chip.tap_driver(), TckGlitchConfig{.burst_edges = 60}));
    campaign.add(std::make_unique<ScanBitFlipFault>("bitflip:TDO", chip.tap_driver(), 3));
    campaign.add(std::make_unique<StuckLineFault>("stuck1:SEL", chip.select_bus(), true));

    const CampaignReport report = campaign.run();
    std::printf("%s\n", report.to_string().c_str());
    for (const CampaignEntry& e : report.entries) {
        std::printf("  %-22s %s\n      %s\n", e.fault_name.c_str(), e.description.c_str(),
                    e.diagnostics.c_str());
    }

    bool ok = true;
    if (report.baseline.status != core::MeasurementStatus::kOk) {
        std::printf("FAIL: healthy baseline not Ok (%s)\n",
                    report.baseline.diagnostics.c_str());
        ok = false;
    }
    if (report.silent_count() != 0) {
        std::printf("FAIL: %zu silent corruption(s) in the Ok path\n", report.silent_count());
        ok = false;
    }
    for (const CampaignEntry& e : report.entries) {
        if (!e.detected) {
            std::printf("FAIL: %s not detected\n", e.fault_name.c_str());
            ok = false;
        }
    }
    std::printf("\n%s\n", ok ? "all faults detected, no silent corruption" : "CAMPAIGN FAILED");
    return ok ? 0 : 1;
}
