// Quickstart: measure the power and frequency of an RF tone through the
// IEEE 1149.4 test infrastructure, exactly as the paper's bench flow does.
//
//   1. Build the chip (basic RF-ABM, nominal process, nominal conditions).
//   2. Open a 1149.4 session (TAP reset -> PROBE -> TBIC connect).
//   3. DC-calibrate via tuneP / tunef over the analog bus.
//   4. Acquire calibration curves.
//   5. Measure an unknown tone.
#include <cstdio>

#include "core/calibration.hpp"
#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "rf/sweep.hpp"

int main() {
    using namespace rfabm;

    std::printf("== RF-ABM quickstart ==\n");
    core::RfAbmChip chip{core::RfAbmChipConfig{}};
    core::MeasurementController controller(chip);

    std::printf("IDCODE: 0x%08X\n", chip.tap_driver().read_idcode());

    controller.open_session();
    std::printf("1149.4 session open (instruction=%s)\n",
                std::string(jtag::to_string(chip.tap().instruction())).c_str());

    const core::DcCalibration cal = dc_calibrate(controller);
    std::printf("tuneP: %.3f V (offset %.2f mV, %d iterations)\n", cal.tune_p.bench_volts,
                cal.tune_p.vout_offset * 1e3, cal.tune_p.iterations);
    std::printf("tunef: %.3f V (Vout %.3f V vs target %.3f V)\n", cal.tune_f.bench_volts,
                cal.tune_f.vout, cal.tune_f.target);

    // Calibration curves on this (nominal) device.
    const auto power_curve =
        acquire_power_curve(controller, rf::arange(-20.0, 7.0, 1.0), 1.5e9);
    const auto freq_curve =
        acquire_frequency_curve(controller, rf::arange(0.9, 2.1, 0.1), 6.0);

    // An "unknown" tone.
    const double truth_dbm = -6.0;
    const double truth_ghz = 1.4;
    chip.set_rf(truth_dbm, truth_ghz * 1e9);

    const core::PowerMeasurement p = controller.measure_power(power_curve);
    std::printf("power:     true %+5.1f dBm  measured %+6.2f dBm (Vout=%.1f mV)\n", truth_dbm,
                p.dbm, p.vout * 1e3);

    // At -6 dBm the tone is below the basic ABM's frequency-path sensitivity
    // (the paper quotes a +5 dBm minimum): the read flags itself invalid.
    const core::FrequencyMeasurement weak = controller.measure_frequency(freq_curve);
    std::printf("frequency at %+.0f dBm: valid=%s (prescaler saw %llu edges)\n", truth_dbm,
                weak.valid ? "yes" : "no", static_cast<unsigned long long>(weak.edges));

    // Raise the tone above the sensitivity limit and measure again.
    chip.set_rf(6.0, truth_ghz * 1e9);
    const core::FrequencyMeasurement f = controller.measure_frequency(freq_curve);
    std::printf("frequency: true %5.2f GHz  measured %5.3f GHz (Vout=%.3f V, valid=%s)\n",
                truth_ghz, f.ghz, f.vout, f.valid ? "yes" : "no");

    std::printf("done.\n");
    return 0;
}
