// Netlist-driven simulation: the circuit substrate as a standalone tool.
//
// Parses a SPICE-flavoured deck of the paper's detector concept (one branch
// of Fig. 2), then runs the three analyses — operating point, AC sweep,
// transient settle — and prints the results.  No C++ circuit construction
// required.
#include <cmath>
#include <cstdio>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/measure.hpp"
#include "circuit/netlist_parser.hpp"
#include "circuit/transient.hpp"

int main() {
    using namespace rfabm::circuit;
    std::printf("== netlist-driven simulation ==\n");

    Circuit ckt;
    const std::size_t n = parse_netlist(ckt, R"(
* MOS half-wave rectifier power detector (paper Fig. 2, signal branch)
.model nch NMOS KP=100u VTO=0.5 LAMBDA=0.03

VDD vdd 0 DC 2.5
VRF rf  0 SIN(0 0.2 1.5g) AC 1
VB  vb  0 DC 0.5            ; gate bias exactly at threshold

CC  rf  vg 2p               ; input coupling
RB  vb  vg 10k
MD  vdd vdd mid nch W=20u L=0.5u   ; diode-connected load
RD  mid d 2k
M1  d   vg 0 nch W=20u L=0.5u      ; the rectifier
CL  d   0  2p
)");
    std::printf("parsed %zu devices\n\n", n);

    // 1. DC operating point.
    const DcResult op = solve_dc(ckt);
    std::printf("operating point:\n");
    for (const char* name : {"vg", "mid", "d"}) {
        std::printf("  v(%-3s) = %8.4f V\n", name, op.solution.v(*ckt.find_node(name)));
    }

    // 2. AC: the input coupling network is flat from tens of MHz up.
    const auto ac = run_ac(ckt, op.solution, {10e6, 100e6, 1.5e9}, *ckt.find_node("vg"));
    std::printf("\ncoupling response |v(vg)/v(rf)|:\n");
    for (const auto& pt : ac) {
        std::printf("  %8.0f MHz: %.3f\n", pt.hz / 1e6, std::abs(pt.value));
    }

    // 3. Transient: settle and read the rectified DC level.
    TransientOptions topts;
    topts.dt = 1.0 / 1.5e9 / 24.0;
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 1.0 / 1.5e9;
    sopts.cycles_per_window = 12;
    const NodeId d = *ckt.find_node("d");
    const double v_idle = op.solution.v(d);
    const auto settled = settle_cycle_average(engine, d, kGround, sopts);
    std::printf("\ntransient: drain settles from %.4f V to %.4f V "
                "(rectified drop %.1f mV, settled=%s)\n",
                v_idle, settled.value, (v_idle - settled.value) * 1e3,
                settled.settled ? "yes" : "no");
    return 0;
}
