// Frequency-measurement example: both input paths of the Fdet chain.
//
//   * RF path: 1-2 GHz tone -> limiting comparator -> divide-by-8 prescaler
//     -> frequency-to-voltage converter (eq. 2 of the paper),
//   * direct fin path: a 125-250 MHz signal applied to the dedicated fin pin
//     bypasses the prescaler (select-bus bit 7).
#include <cstdio>

#include "core/calibration.hpp"
#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "rf/sweep.hpp"

int main() {
    using namespace rfabm;
    std::printf("== frequency measurement via f/8 + FVC ==\n");

    core::RfAbmChip chip{core::RfAbmChipConfig{}};
    core::MeasurementController controller(chip);
    controller.open_session();

    std::printf("DC calibration (tunef trim over the 1149.4 bus)...\n");
    const auto cal = core::calibrate_tune_f(controller);
    std::printf("  tunef = %.3f V -> FVC output %.3f V at the 1.5 GHz reference\n\n",
                cal.bench_volts, cal.vout);

    const auto curve = acquire_frequency_curve(controller, rf::arange(0.9, 2.1, 0.1), 6.0);

    std::printf("RF path (tone at +6 dBm):\n");
    std::printf("%10s  %9s  %10s  %9s\n", "true/GHz", "Vout/V", "meas/GHz", "err/MHz");
    for (double ghz : {1.05, 1.25, 1.45, 1.65, 1.85, 2.05}) {
        chip.set_rf(6.0, ghz * 1e9);
        const core::FrequencyMeasurement m = controller.measure_frequency(curve);
        std::printf("%10.2f  %9.3f  %10.3f  %9.1f\n", ghz, m.vout, m.ghz,
                    (m.ghz - ghz) * 1e3);
    }

    std::printf("\ndirect fin path (125-250 MHz pin, prescaler bypassed):\n");
    std::printf("%10s  %10s  %12s\n", "fin/MHz", "meas/GHz", "equiv fin/MHz");
    chip.rf_off();
    for (double mhz : {140.0, 180.0, 230.0}) {
        chip.set_fin(8.0, mhz * 1e6);
        const core::FrequencyMeasurement m = controller.measure_frequency(curve, /*use_fin=*/true);
        // The GHz-domain curve reads the divided-rate clock: fin*8.
        std::printf("%10.0f  %10.3f  %12.1f\n", mhz, m.ghz, m.ghz / 8.0 * 1e3);
    }

    std::printf("\nsensitivity: the paper's +5 dBm minimum at the RF pin\n");
    chip.fin_off();
    for (double dbm : {2.0, 4.0, 6.0}) {
        chip.set_rf(dbm, 1.5e9);
        const core::FrequencyMeasurement m = controller.measure_frequency(curve);
        std::printf("  %+0.0f dBm: %s\n", dbm, m.valid ? "measured OK" : "below sensitivity");
    }
    return 0;
}
