// Power-sweep example: characterize both ABM structures across their power
// ranges, the workload of the paper's section 3.
//
//   usage: power_sweep [--preamp]
//
// Prints true vs measured power with the raw detector output, demonstrating
// the basic ABM's -18..+6 dBm range and (with --preamp) the preamplified
// structure's shift toward weaker signals.
#include <cstdio>
#include <cstring>

#include "core/calibration.hpp"
#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "rf/sweep.hpp"

int main(int argc, char** argv) {
    using namespace rfabm;
    const bool with_preamp = argc > 1 && std::strcmp(argv[1], "--preamp") == 0;

    core::RfAbmChipConfig config;
    config.with_preamp = with_preamp;
    std::printf("== power sweep (%s RF-ABM) ==\n", with_preamp ? "preamplified" : "basic");

    core::RfAbmChip chip{config};
    core::MeasurementController controller(chip);
    controller.open_session();

    std::printf("DC calibration (tuneP via the 1149.4 bus)...\n");
    const auto cal = core::calibrate_tune_p(controller);
    std::printf("  tuneP = %.3f V, zero-signal offset = %.1f mV\n\n", cal.bench_volts,
                cal.vout_offset * 1e3);

    const double lo = with_preamp ? -28.0 : -20.0;
    const double hi = with_preamp ? 1.0 : 7.0;
    const auto grid = rf::arange(lo, hi, 1.0);
    const auto curve = acquire_power_curve(controller, grid, 1.5e9);

    std::printf("%8s  %10s  %10s  %8s\n", "true/dBm", "Vout/mV", "meas/dBm", "err/dB");
    for (double dbm = lo + 0.5; dbm <= hi - 0.5; dbm += 2.0) {
        chip.set_rf(dbm, 1.5e9);
        const core::PowerMeasurement m = controller.measure_power(curve);
        std::printf("%8.1f  %10.3f  %10.2f  %8.2f\n", dbm, m.vout * 1e3, m.dbm, m.dbm - dbm);
    }
    return 0;
}
