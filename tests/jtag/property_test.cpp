// Property-style tests of the 1149.1 infrastructure: random-walk invariants
// of the TAP state machine and randomized scan round-trips.
#include <gtest/gtest.h>

#include "jtag/tap.hpp"
#include "rf/random.hpp"

namespace rfabm::jtag {
namespace {

TEST(TapProperty, RandomWalkNeverLeavesDefinedStates) {
    rfabm::rf::Xoshiro256 rng(11);
    TapState s = TapState::kTestLogicReset;
    for (int i = 0; i < 20000; ++i) {
        s = next_tap_state(s, rng.uniform() < 0.5);
        EXPECT_LT(static_cast<int>(s), 16);
    }
}

TEST(TapProperty, ShiftStatesOnlyReachableThroughCapture) {
    // Invariant: entering Shift-DR requires the previous state to be
    // Capture-DR or Exit2-DR (same for IR).  Check along a long random walk.
    rfabm::rf::Xoshiro256 rng(23);
    TapState prev = TapState::kTestLogicReset;
    for (int i = 0; i < 20000; ++i) {
        const TapState next = next_tap_state(prev, rng.uniform() < 0.5);
        if (next == TapState::kShiftDr && prev != TapState::kShiftDr) {
            EXPECT_TRUE(prev == TapState::kCaptureDr || prev == TapState::kExit2Dr)
                << to_string(prev);
        }
        if (next == TapState::kShiftIr && prev != TapState::kShiftIr) {
            EXPECT_TRUE(prev == TapState::kCaptureIr || prev == TapState::kExit2Ir)
                << to_string(prev);
        }
        prev = next;
    }
}

TEST(TapProperty, UpdateAlwaysPrecededByExit) {
    rfabm::rf::Xoshiro256 rng(31);
    TapState prev = TapState::kTestLogicReset;
    for (int i = 0; i < 20000; ++i) {
        const TapState next = next_tap_state(prev, rng.uniform() < 0.5);
        if (next == TapState::kUpdateDr) {
            EXPECT_TRUE(prev == TapState::kExit1Dr || prev == TapState::kExit2Dr);
        }
        if (next == TapState::kUpdateIr) {
            EXPECT_TRUE(prev == TapState::kExit1Ir || prev == TapState::kExit2Ir);
        }
        prev = next;
    }
}

class ScanRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScanRoundTrip, BoundaryScanPreservesRandomPatterns) {
    // Whatever pattern goes in during one scan comes back out (captured from
    // the latches) on the next scan.
    rfabm::rf::Xoshiro256 rng(GetParam());
    TapController tap(0x1);
    BoundaryRegister boundary;
    const std::size_t n = 24;
    for (std::size_t i = 0; i < n; ++i) {
        // Capture reads the latch (capture callback omitted on purpose).
        boundary.add_cell({"c" + std::to_string(i), nullptr, nullptr});
    }
    tap.route(Instruction::kSamplePreload, &boundary);
    TapDriver drv(tap);
    drv.load(Instruction::kSamplePreload);

    std::vector<bool> pattern(n);
    for (std::size_t i = 0; i < n; ++i) pattern[i] = rng.uniform() < 0.5;
    drv.scan_dr(pattern);  // loads latches
    const auto echoed = drv.scan_dr(std::vector<bool>(n, false));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(echoed[i], pattern[i]) << "bit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanRoundTrip, ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(TapProperty, RandomInstructionSequenceKeepsBypassFunctional) {
    // After any sequence of instruction loads, loading BYPASS must always
    // yield the 1-bit delay behaviour.
    rfabm::rf::Xoshiro256 rng(77);
    TapController tap(0xFEEDF00D);
    BoundaryRegister boundary;
    boundary.add_cell({"c0", nullptr, nullptr});
    tap.route(Instruction::kSamplePreload, &boundary);
    TapDriver drv(tap);
    for (int round = 0; round < 50; ++round) {
        drv.scan_ir(static_cast<std::uint8_t>(rng.next_u64() & 0xFF));
        drv.load(Instruction::kBypass);
        const auto out = drv.scan_dr({true, true});
        EXPECT_FALSE(out[0]);
        EXPECT_TRUE(out[1]);
    }
}

TEST(TapProperty, IdcodeSurvivesArbitraryTmsNoise) {
    // Clock random TMS garbage (TDI low), then a reset; IDCODE must read
    // correctly afterwards: the FSM cannot wedge.
    rfabm::rf::Xoshiro256 rng(99);
    TapController tap(0xABCD1233u);
    TapDriver drv(tap);
    for (int i = 0; i < 1000; ++i) tap.clock(rng.uniform() < 0.5, false);
    drv.reset_via_tms();
    EXPECT_EQ(drv.read_idcode(), 0xABCD1233u);
}

}  // namespace
}  // namespace rfabm::jtag
