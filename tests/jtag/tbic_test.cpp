#include "jtag/tbic.hpp"

#include <gtest/gtest.h>

#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::jtag {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::Resistor;
using circuit::VSource;
using circuit::Waveform;

struct TbicFixture : public ::testing::Test {
    TbicFixture() {
        nodes.at1 = ckt.node("at1");
        nodes.at2 = ckt.node("at2");
        nodes.ab1 = ckt.node("ab1");
        nodes.ab2 = ckt.node("ab2");
        nodes.vh = ckt.node("vh");
        nodes.vl = ckt.node("vl");
        tbic = std::make_unique<Tbic>("TBIC", ckt, nodes);
        tbic->register_cells(boundary);
    }

    bool closed(TbicSwitch s) const { return tbic->switch_dev(s).closed(); }

    Circuit ckt;
    TbicNodes nodes{};
    BoundaryRegister boundary;
    std::unique_ptr<Tbic> tbic;
};

TEST_F(TbicFixture, PowerUpIsolatesAtap) {
    for (int i = 0; i < static_cast<int>(kTbicSwitchCount); ++i) {
        EXPECT_FALSE(closed(static_cast<TbicSwitch>(i)));
    }
}

TEST_F(TbicFixture, ConnectPatternNeedsAnalogInstruction) {
    tbic->set_pattern(TbicPattern::kConnect);
    // Still in mission mode: forced open.
    EXPECT_FALSE(closed(TbicSwitch::kS1));
    tbic->apply(Instruction::kProbe);
    EXPECT_TRUE(closed(TbicSwitch::kS1));
    EXPECT_TRUE(closed(TbicSwitch::kS2));
    EXPECT_FALSE(closed(TbicSwitch::kS3));
}

TEST_F(TbicFixture, MissionInstructionForcesOpen) {
    tbic->set_pattern(TbicPattern::kConnect);
    tbic->apply(Instruction::kProbe);
    ASSERT_TRUE(closed(TbicSwitch::kS1));
    tbic->apply(Instruction::kBypass);
    EXPECT_FALSE(closed(TbicSwitch::kS1));
}

TEST_F(TbicFixture, CharacterizationPatterns) {
    tbic->apply(Instruction::kExtest);
    tbic->set_pattern(TbicPattern::kCharHighLow);
    EXPECT_TRUE(closed(TbicSwitch::kS3));   // AT1 - VH
    EXPECT_TRUE(closed(TbicSwitch::kS6));   // AT2 - VL
    EXPECT_FALSE(closed(TbicSwitch::kS1));
    tbic->set_pattern(TbicPattern::kCharLowHigh);
    EXPECT_TRUE(closed(TbicSwitch::kS4));
    EXPECT_TRUE(closed(TbicSwitch::kS5));
}

TEST_F(TbicFixture, BoundaryCellsControlSwitches) {
    tbic->apply(Instruction::kProbe);
    boundary.set_latched(0, true);  // S1
    EXPECT_TRUE(closed(TbicSwitch::kS1));
    boundary.set_latched(0, false);
    EXPECT_FALSE(closed(TbicSwitch::kS1));
}

TEST_F(TbicFixture, ElectricalPathAt1ToAb1) {
    ckt.add<VSource>("VAB1", nodes.ab1, kGround, Waveform::dc(1.2));
    ckt.add<Resistor>("RAT1", nodes.at1, kGround, 1e6);
    for (auto n : {nodes.at2, nodes.ab2, nodes.vh, nodes.vl}) {
        ckt.add<Resistor>("Rterm" + std::to_string(n), n, kGround, 1e6);
    }
    tbic->set_pattern(TbicPattern::kConnect);
    tbic->apply(Instruction::kProbe);
    const auto r = circuit::solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(nodes.at1), 1.2, 1e-3);
}

TEST_F(TbicFixture, IsolatePatternClearsControls) {
    tbic->apply(Instruction::kProbe);
    tbic->set_pattern(TbicPattern::kConnect);
    tbic->set_pattern(TbicPattern::kIsolate);
    EXPECT_FALSE(closed(TbicSwitch::kS1));
    EXPECT_FALSE(closed(TbicSwitch::kS2));
}

}  // namespace
}  // namespace rfabm::jtag
