#include "jtag/abm.hpp"

#include <gtest/gtest.h>

#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "jtag/tap.hpp"

namespace rfabm::jtag {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::VSource;
using circuit::Waveform;

struct AbmFixture : public ::testing::Test {
    AbmFixture() {
        nodes.pin = ckt.node("pin");
        nodes.core = ckt.node("core");
        nodes.ab1 = ckt.node("ab1");
        nodes.ab2 = ckt.node("ab2");
        nodes.vh = ckt.node("vh");
        nodes.vl = ckt.node("vl");
        nodes.vg = ckt.node("vg");
        abm = std::make_unique<AnalogBoundaryModule>("ABM0", ckt, nodes);
        first_cell = abm->register_cells(boundary);
    }

    /// Latch control bits (D, E, G, B1, B2) directly.
    void latch(bool d, bool e, bool g, bool b1, bool b2) {
        boundary.set_latched(first_cell + 0, d);
        boundary.set_latched(first_cell + 1, e);
        boundary.set_latched(first_cell + 2, g);
        boundary.set_latched(first_cell + 3, b1);
        boundary.set_latched(first_cell + 4, b2);
    }

    bool closed(AbmSwitch s) const { return abm->switch_dev(s).closed(); }

    Circuit ckt;
    AbmNodes nodes{};
    BoundaryRegister boundary;
    std::unique_ptr<AnalogBoundaryModule> abm;
    std::size_t first_cell = 0;
};

TEST_F(AbmFixture, PowerUpIsMissionMode) {
    EXPECT_TRUE(closed(AbmSwitch::kSD));
    EXPECT_FALSE(closed(AbmSwitch::kSB1));
    EXPECT_FALSE(closed(AbmSwitch::kSB2));
    EXPECT_FALSE(closed(AbmSwitch::kSH));
    EXPECT_FALSE(closed(AbmSwitch::kSL));
    EXPECT_FALSE(closed(AbmSwitch::kSG));
}

TEST_F(AbmFixture, ProbeKeepsCoreConnectedWhileBusConnects) {
    latch(false, false, false, true, false);
    abm->apply(Instruction::kProbe);
    EXPECT_TRUE(closed(AbmSwitch::kSD));   // mission path stays
    EXPECT_TRUE(closed(AbmSwitch::kSB1));  // bus connected
    EXPECT_FALSE(closed(AbmSwitch::kSB2));
    EXPECT_FALSE(closed(AbmSwitch::kSH));
}

TEST_F(AbmFixture, ExtestDisconnectsCoreAndDrivesHigh) {
    latch(true, true, false, false, false);
    abm->apply(Instruction::kExtest);
    EXPECT_FALSE(closed(AbmSwitch::kSD));
    EXPECT_TRUE(closed(AbmSwitch::kSH));
    EXPECT_FALSE(closed(AbmSwitch::kSL));
}

TEST_F(AbmFixture, ExtestDrivesLowWhenDataZero) {
    latch(false, true, false, false, false);
    abm->apply(Instruction::kExtest);
    EXPECT_FALSE(closed(AbmSwitch::kSH));
    EXPECT_TRUE(closed(AbmSwitch::kSL));
}

TEST_F(AbmFixture, ExtestWithoutDriveEnableFloatsPin) {
    latch(true, false, false, false, false);
    abm->apply(Instruction::kExtest);
    EXPECT_FALSE(closed(AbmSwitch::kSH));
    EXPECT_FALSE(closed(AbmSwitch::kSL));
}

TEST_F(AbmFixture, GuardSwitchFollowsG) {
    latch(false, false, true, false, false);
    abm->apply(Instruction::kExtest);
    EXPECT_TRUE(closed(AbmSwitch::kSG));
    abm->apply(Instruction::kProbe);
    EXPECT_FALSE(closed(AbmSwitch::kSG));  // PROBE ignores G
}

TEST_F(AbmFixture, HighzOpensEverything) {
    latch(true, true, true, true, true);
    abm->apply(Instruction::kHighz);
    for (auto s : {AbmSwitch::kSD, AbmSwitch::kSH, AbmSwitch::kSL, AbmSwitch::kSG,
                   AbmSwitch::kSB1, AbmSwitch::kSB2}) {
        EXPECT_FALSE(closed(s));
    }
}

TEST_F(AbmFixture, ReturnToMissionRestoresSd) {
    latch(false, false, false, true, true);
    abm->apply(Instruction::kProbe);
    abm->apply(Instruction::kBypass);
    EXPECT_TRUE(closed(AbmSwitch::kSD));
    EXPECT_FALSE(closed(AbmSwitch::kSB1));
}

TEST_F(AbmFixture, DigitizerComparesPinToThreshold) {
    double pin_voltage = 2.0;
    abm->set_voltage_probe([&](NodeId) { return pin_voltage; });
    EXPECT_TRUE(abm->digitize());  // 2.0 > 1.25
    pin_voltage = 0.3;
    EXPECT_FALSE(abm->digitize());
}

TEST_F(AbmFixture, DigitizerWithoutProbeIsFalse) { EXPECT_FALSE(abm->digitize()); }

TEST_F(AbmFixture, ElectricalProbePathCarriesDcLevel) {
    // Drive the core node, close PROBE SB1, check the level appears on AB1.
    ckt.add<VSource>("VCORE", nodes.core, kGround, Waveform::dc(1.8));
    ckt.add<Resistor>("RAB1", nodes.ab1, kGround, 1e6);
    // Ground unused reference nodes so the matrix stays well posed.
    for (NodeId n : {nodes.ab2, nodes.vh, nodes.vl, nodes.vg}) {
        ckt.add<Resistor>("Rterm" + std::to_string(n), n, kGround, 1e6);
    }
    latch(false, false, false, true, false);
    abm->apply(Instruction::kProbe);
    const auto r = solve_dc(ckt);
    // core -> SD -> pin -> SB1 -> ab1: two 50-ohm switches into 1 Mohm.
    EXPECT_NEAR(r.solution.v(nodes.ab1), 1.8, 1e-3);
}

TEST_F(AbmFixture, FullScanThroughTapDrivesSwitches) {
    TapController tap(0x1);
    tap.route(Instruction::kProbe, &boundary);
    tap.on_instruction([&](Instruction i) { abm->apply(i); });
    TapDriver drv(tap);
    drv.load(Instruction::kProbe);
    // Cells (D,E,G,B1,B2) = (0,0,0,1,0).
    drv.scan_dr({false, false, false, true, false});
    EXPECT_TRUE(closed(AbmSwitch::kSB1));
    EXPECT_TRUE(closed(AbmSwitch::kSD));
}

}  // namespace
}  // namespace rfabm::jtag
