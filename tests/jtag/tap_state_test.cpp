#include "jtag/tap_state.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rfabm::jtag {
namespace {

TEST(TapState, FiveTmsHighReachesResetFromAnywhere) {
    for (int s = 0; s < 16; ++s) {
        TapState state = static_cast<TapState>(s);
        for (int i = 0; i < 5; ++i) state = next_tap_state(state, true);
        EXPECT_EQ(state, TapState::kTestLogicReset) << "from state " << s;
    }
}

TEST(TapState, ResetStaysInResetOnTmsHigh) {
    EXPECT_EQ(next_tap_state(TapState::kTestLogicReset, true), TapState::kTestLogicReset);
}

TEST(TapState, CanonicalDrScanPath) {
    TapState s = TapState::kRunTestIdle;
    s = next_tap_state(s, true);
    EXPECT_EQ(s, TapState::kSelectDrScan);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kCaptureDr);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kShiftDr);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kShiftDr);  // stays while shifting
    s = next_tap_state(s, true);
    EXPECT_EQ(s, TapState::kExit1Dr);
    s = next_tap_state(s, true);
    EXPECT_EQ(s, TapState::kUpdateDr);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kRunTestIdle);
}

TEST(TapState, CanonicalIrScanPath) {
    TapState s = TapState::kRunTestIdle;
    s = next_tap_state(s, true);   // Select-DR
    s = next_tap_state(s, true);   // Select-IR
    EXPECT_EQ(s, TapState::kSelectIrScan);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kCaptureIr);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kShiftIr);
    s = next_tap_state(s, true);
    EXPECT_EQ(s, TapState::kExit1Ir);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kPauseIr);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kPauseIr);  // pause holds
    s = next_tap_state(s, true);
    EXPECT_EQ(s, TapState::kExit2Ir);
    s = next_tap_state(s, false);
    EXPECT_EQ(s, TapState::kShiftIr);  // back to shifting
}

TEST(TapState, SelectIrWithTmsHighResets) {
    EXPECT_EQ(next_tap_state(TapState::kSelectIrScan, true), TapState::kTestLogicReset);
}

TEST(TapState, EveryStateReachableFromReset) {
    // BFS over {0,1} inputs must visit all 16 states.
    std::set<TapState> seen{TapState::kTestLogicReset};
    std::vector<TapState> frontier{TapState::kTestLogicReset};
    while (!frontier.empty()) {
        std::vector<TapState> next;
        for (TapState s : frontier) {
            for (bool tms : {false, true}) {
                const TapState n = next_tap_state(s, tms);
                if (seen.insert(n).second) next.push_back(n);
            }
        }
        frontier = std::move(next);
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(TapState, NamesAreUnique) {
    std::set<std::string_view> names;
    for (int s = 0; s < 16; ++s) names.insert(to_string(static_cast<TapState>(s)));
    EXPECT_EQ(names.size(), 16u);
}

}  // namespace
}  // namespace rfabm::jtag
