#include "jtag/tap.hpp"

#include <gtest/gtest.h>

namespace rfabm::jtag {
namespace {

constexpr std::uint32_t kId = 0x1234ABCDu | 1u;

TEST(Tap, PowerUpSelectsIdcode) {
    TapController tap(kId);
    EXPECT_EQ(tap.state(), TapState::kTestLogicReset);
    EXPECT_EQ(tap.instruction(), Instruction::kIdcode);
}

TEST(Tap, DriverReadsIdcode) {
    TapController tap(kId);
    TapDriver drv(tap);
    drv.reset_via_tms();
    EXPECT_EQ(drv.read_idcode(), kId);
}

TEST(Tap, IdcodeReadableDirectlyAfterReset) {
    // The standard guarantees IDCODE is the selected DR after reset; a plain
    // DR scan without loading any instruction must return it.
    TapController tap(kId);
    TapDriver drv(tap);
    drv.reset_via_tms();
    EXPECT_EQ(static_cast<std::uint32_t>(drv.scan_dr_word(0, 32)), kId);
}

TEST(Tap, IdcodeLsbForcedToOne) {
    TapController tap(0x10u);  // even value
    TapDriver drv(tap);
    EXPECT_EQ(drv.read_idcode() & 1u, 1u);
}

TEST(Tap, BypassIsOneCycleDelay) {
    TapController tap(kId);
    TapDriver drv(tap);
    drv.load(Instruction::kBypass);
    // Through a 1-bit bypass register, a pattern emerges delayed by one bit
    // and the first bit out is the captured 0.
    const std::vector<bool> in{true, false, true, true};
    const auto out = drv.scan_dr(in);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FALSE(out[0]);  // captured 0
    EXPECT_TRUE(out[1]);
    EXPECT_FALSE(out[2]);
    EXPECT_TRUE(out[3]);
}

TEST(Tap, UnknownOpcodeFallsBackToBypass) {
    TapController tap(kId);
    TapDriver drv(tap);
    drv.scan_ir(0x7Au);  // unmapped opcode
    EXPECT_EQ(tap.instruction(), Instruction::kBypass);
}

TEST(Tap, IrCapturePatternIsO1) {
    TapController tap(kId);
    TapDriver drv(tap);
    const std::uint8_t captured = drv.scan_ir(opcode(Instruction::kBypass));
    EXPECT_EQ(captured, 0b01);
}

TEST(Tap, InstructionHookFires) {
    TapController tap(kId);
    TapDriver drv(tap);
    Instruction seen = Instruction::kBypass;
    int count = 0;
    tap.on_instruction([&](Instruction i) {
        seen = i;
        ++count;
    });
    drv.load(Instruction::kProbe);
    EXPECT_EQ(seen, Instruction::kProbe);
    EXPECT_GE(count, 1);
    // Returning to Test-Logic-Reset re-selects IDCODE.
    drv.reset_via_tms();
    EXPECT_EQ(seen, Instruction::kIdcode);
}

TEST(Tap, BoundaryRegisterScanReadsCaptureAndDrivesUpdate) {
    TapController tap(kId);
    BoundaryRegister boundary;
    bool captured_source = true;
    bool driven_value = false;
    boundary.add_cell({"cell0", [&] { return captured_source; },
                       [&](bool v) { driven_value = v; }});
    boundary.add_cell({"cell1", nullptr, nullptr});
    tap.route(Instruction::kSamplePreload, &boundary);
    TapDriver drv(tap);
    drv.load(Instruction::kSamplePreload);
    const auto out = drv.scan_dr({true, true});
    EXPECT_TRUE(out[0]);          // captured capture_source
    EXPECT_TRUE(driven_value);    // update drove the sink
    EXPECT_TRUE(boundary.latched(0));
    EXPECT_TRUE(boundary.latched(1));
}

TEST(Tap, BoundaryShiftOrderCellZeroFirstOut) {
    TapController tap(kId);
    BoundaryRegister boundary;
    boundary.add_cell({"c0", [] { return true; }, nullptr});
    boundary.add_cell({"c1", [] { return false; }, nullptr});
    boundary.add_cell({"c2", [] { return true; }, nullptr});
    tap.route(Instruction::kSamplePreload, &boundary);
    TapDriver drv(tap);
    drv.load(Instruction::kSamplePreload);
    const auto out = drv.scan_dr({false, false, false});
    EXPECT_TRUE(out[0]);   // cell 0 nearest TDO
    EXPECT_FALSE(out[1]);
    EXPECT_TRUE(out[2]);
}

TEST(Tap, DrScanDoesNotDisturbIr) {
    TapController tap(kId);
    TapDriver drv(tap);
    drv.load(Instruction::kBypass);
    drv.scan_dr({true, true, true});
    EXPECT_EQ(tap.instruction(), Instruction::kBypass);
}

TEST(Tap, GoToNavigatesEverywhere) {
    TapController tap(kId);
    TapDriver drv(tap);
    for (int s = 0; s < 16; ++s) {
        const TapState target = static_cast<TapState>(s);
        drv.go_to(target);
        EXPECT_EQ(tap.state(), target) << to_string(target);
    }
}

TEST(Tap, PauseAndResumeShiftKeepsData) {
    // Shift 2 bits, pause, shift 2 more: the register must behave as one
    // contiguous 4-bit scan.
    TapController tap(kId);
    BoundaryRegister boundary;
    for (int i = 0; i < 4; ++i) {
        boundary.add_cell({"c" + std::to_string(i), nullptr, nullptr});
    }
    tap.route(Instruction::kSamplePreload, &boundary);
    TapDriver drv(tap);
    drv.load(Instruction::kSamplePreload);

    drv.go_to(TapState::kShiftDr);
    tap.clock(false, true);   // shift bit 1
    tap.clock(true, false);   // bit 2 rides the exit edge (standard behaviour)
    drv.go_to(TapState::kPauseDr);
    drv.go_to(TapState::kShiftDr);  // resume via Exit2 (no shifts on the way)
    tap.clock(false, true);   // bit 3
    tap.clock(true, true);    // bit 4 on the exit edge
    drv.go_to(TapState::kRunTestIdle);
    // Bits shifted in: 1,0,1,1 -> cells (0..3) = 1,0,1,1 read back as
    // latches.
    EXPECT_TRUE(boundary.latched(0));
    EXPECT_FALSE(boundary.latched(1));
    EXPECT_TRUE(boundary.latched(2));
    EXPECT_TRUE(boundary.latched(3));
}

}  // namespace
}  // namespace rfabm::jtag
