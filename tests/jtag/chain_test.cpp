#include "jtag/chain.hpp"

#include <gtest/gtest.h>

namespace rfabm::jtag {
namespace {

struct ChainFixture : public ::testing::Test {
    ChainFixture() : dev0(0x11111111u), dev1(0x22222223u), dev2(0x44444445u) {
        for (auto* d : {&dev0, &dev1, &dev2}) chain.add_device(*d);
        // Give each device a small boundary register.
        for (int i = 0; i < 3; ++i) {
            auto& b = boundary[i];
            for (int c = 0; c < 4; ++c) {
                b.add_cell({"c" + std::to_string(c), nullptr, nullptr});
            }
        }
        dev0.route(Instruction::kSamplePreload, &boundary[0]);
        dev1.route(Instruction::kSamplePreload, &boundary[1]);
        dev2.route(Instruction::kSamplePreload, &boundary[2]);
    }

    TapController dev0, dev1, dev2;
    BoundaryRegister boundary[3];
    ScanChain chain;
};

TEST_F(ChainFixture, AllDevicesMoveInLockstep) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    drv.go_to(TapState::kShiftDr);
    EXPECT_EQ(dev0.state(), TapState::kShiftDr);
    EXPECT_EQ(dev1.state(), TapState::kShiftDr);
    EXPECT_EQ(dev2.state(), TapState::kShiftDr);
}

TEST_F(ChainFixture, ReadsAllIdcodes) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    const auto ids = drv.read_idcodes();
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[0], 0x11111111u);
    EXPECT_EQ(ids[1], 0x22222223u);
    EXPECT_EQ(ids[2], 0x44444445u);
}

TEST_F(ChainFixture, PerDeviceInstructionLoad) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    drv.load({Instruction::kBypass, Instruction::kSamplePreload, Instruction::kHighz});
    EXPECT_EQ(dev0.instruction(), Instruction::kBypass);
    EXPECT_EQ(dev1.instruction(), Instruction::kSamplePreload);
    EXPECT_EQ(dev2.instruction(), Instruction::kHighz);
}

TEST_F(ChainFixture, ConcatenatedBoundaryScanLandsPerDevice) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    drv.load({Instruction::kSamplePreload, Instruction::kSamplePreload,
              Instruction::kSamplePreload});
    drv.scan_dr({{true, false, false, true},
                 {false, true, false, false},
                 {true, true, true, false}});
    EXPECT_TRUE(boundary[0].latched(0));
    EXPECT_FALSE(boundary[0].latched(1));
    EXPECT_TRUE(boundary[0].latched(3));
    EXPECT_TRUE(boundary[1].latched(1));
    EXPECT_FALSE(boundary[1].latched(0));
    EXPECT_TRUE(boundary[2].latched(0));
    EXPECT_TRUE(boundary[2].latched(2));
    EXPECT_FALSE(boundary[2].latched(3));
}

TEST_F(ChainFixture, ScanReturnsCapturedValuesPerDevice) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    drv.load({Instruction::kSamplePreload, Instruction::kSamplePreload,
              Instruction::kSamplePreload});
    // First scan loads latches, second returns them (capture reads latches).
    drv.scan_dr({{true, true, false, false},
                 {false, false, true, true},
                 {true, false, true, false}});
    const auto out = drv.scan_dr({{false, false, false, false},
                                  {false, false, false, false},
                                  {false, false, false, false}});
    EXPECT_EQ(out[0], (std::vector<bool>{true, true, false, false}));
    EXPECT_EQ(out[1], (std::vector<bool>{false, false, true, true}));
    EXPECT_EQ(out[2], (std::vector<bool>{true, false, true, false}));
}

TEST_F(ChainFixture, BypassedNeighboursStillRouteData) {
    // Classic board procedure: only dev1 under test, dev0/dev2 in BYPASS
    // (1-bit registers).
    ChainDriver drv(chain);
    drv.reset_via_tms();
    drv.load({Instruction::kBypass, Instruction::kSamplePreload, Instruction::kBypass});
    drv.scan_dr({{false}, {true, false, true, true}, {false}});
    EXPECT_TRUE(boundary[1].latched(0));
    EXPECT_FALSE(boundary[1].latched(1));
    EXPECT_TRUE(boundary[1].latched(2));
    EXPECT_TRUE(boundary[1].latched(3));
}

TEST_F(ChainFixture, ValidationErrors) {
    ChainDriver drv(chain);
    drv.reset_via_tms();
    EXPECT_THROW(drv.load({Instruction::kBypass}), std::invalid_argument);
    EXPECT_THROW(drv.scan_dr({{true}}), std::invalid_argument);
}

TEST(ChainEdge, EmptyChainRejected) {
    ScanChain chain;
    ChainDriver drv(chain);
    EXPECT_THROW(drv.go_to(TapState::kShiftDr), std::logic_error);
}

}  // namespace
}  // namespace rfabm::jtag
