#include "jtag/serial_bus.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"

namespace rfabm::jtag {
namespace {

TEST(SerialBus, WidthValidation) {
    EXPECT_THROW(SerialSelectBus(0), std::invalid_argument);
    EXPECT_THROW(SerialSelectBus(65), std::invalid_argument);
    EXPECT_NO_THROW(SerialSelectBus(64));
}

TEST(SerialBus, OutputsLatchOnlyOnLoad) {
    SerialSelectBus bus(4);
    bus.shift_bit(true);
    bus.shift_bit(true);
    bus.shift_bit(true);
    bus.shift_bit(true);
    EXPECT_FALSE(bus.output(0));  // not loaded yet
    bus.load();
    EXPECT_TRUE(bus.output(0));
    EXPECT_TRUE(bus.output(3));
}

TEST(SerialBus, WriteWordMapsBitIToOutputI) {
    SerialSelectBus bus(6);
    bus.write_word(0b101001, 6);
    EXPECT_TRUE(bus.output(0));
    EXPECT_FALSE(bus.output(1));
    EXPECT_FALSE(bus.output(2));
    EXPECT_TRUE(bus.output(3));
    EXPECT_FALSE(bus.output(4));
    EXPECT_TRUE(bus.output(5));
}

TEST(SerialBus, WriteWordRejectsWrongWidth) {
    SerialSelectBus bus(4);
    EXPECT_THROW(bus.write_word(0, 3), std::invalid_argument);
}

TEST(SerialBus, AttachedSwitchFollowsOutput) {
    circuit::Circuit ckt;
    auto& sw = ckt.add<circuit::Switch>("S", ckt.node("a"), ckt.node("b"));
    SerialSelectBus bus(2);
    bus.attach_switch(1, sw);
    bus.write_word(0b10, 2);
    EXPECT_TRUE(sw.closed());
    bus.write_word(0b00, 2);
    EXPECT_FALSE(sw.closed());
}

TEST(SerialBus, InvertedSwitchAttachment) {
    circuit::Circuit ckt;
    auto& sw = ckt.add<circuit::Switch>("S", ckt.node("a"), ckt.node("b"));
    SerialSelectBus bus(1);
    bus.attach_switch(0, sw, /*invert=*/true);
    bus.write_word(0b0, 1);
    EXPECT_TRUE(sw.closed());
}

TEST(SerialBus, GenericSinkReceivesValue) {
    SerialSelectBus bus(2);
    bool seen = false;
    bus.attach(0, [&](bool v) { seen = v; });
    bus.write_word(0b01, 2);
    EXPECT_TRUE(seen);
    EXPECT_THROW(bus.attach(5, [](bool) {}), std::out_of_range);
}

TEST(SerialBus, BitCountAccumulates) {
    SerialSelectBus bus(8);
    bus.write_word(0xFF, 8);
    bus.write_word(0x00, 8);
    EXPECT_EQ(bus.bit_count(), 16u);
}

}  // namespace
}  // namespace rfabm::jtag
