// Unit tests for the flow-sensitive scan-program lint: the abstract lattice,
// the campaign-program model and text parser, the interpreter's temporal
// rules (with witness traces), and the incremental FlowLintCache.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "lint/flow/cache.hpp"
#include "lint/flow/interpreter.hpp"
#include "lint/flow/parser.hpp"

namespace rfabm::lint::flow {
namespace {

bool fires(const Report& report, const std::string& rule) {
    for (const auto& diag : report.diagnostics()) {
        if (diag.rule == rule) return true;
    }
    return false;
}

const Diagnostic* find(const Report& report, const std::string& rule) {
    for (const auto& diag : report.diagnostics()) {
        if (diag.rule == rule) return &diag;
    }
    return nullptr;
}

/// A clean single-die campaign: PROBE, route + power, calibrate, read.
CampaignProgram clean_program() {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000011")
        .calibrate(0)
        .measure(0, Detector::kPower);
    return program;
}

TEST(FlowLattice, JoinAndRender) {
    EXPECT_EQ(join(Tri::kOne, Tri::kOne), Tri::kOne);
    EXPECT_EQ(join(Tri::kZero, Tri::kZero), Tri::kZero);
    EXPECT_EQ(join(Tri::kOne, Tri::kZero), Tri::kUnknown);
    EXPECT_EQ(join(Tri::kUnknown, Tri::kOne), Tri::kUnknown);
    EXPECT_EQ(to_char(Tri::kZero), '0');
    EXPECT_EQ(to_char(Tri::kOne), '1');
    EXPECT_EQ(to_char(Tri::kUnknown), 'x');
}

TEST(FlowProgram, ParseBitsConventions) {
    std::array<Tri, kSelectBits> bits{};
    // Select words read MSB first: "01000011" is 0x43 — bits 0, 1 and 6 set.
    ASSERT_TRUE(parse_bits("01000011", kSelectBits, /*msb_first=*/true, bits.data()));
    EXPECT_EQ(bits[0], Tri::kOne);
    EXPECT_EQ(bits[1], Tri::kOne);
    EXPECT_EQ(bits[6], Tri::kOne);
    EXPECT_EQ(bits[7], Tri::kZero);
    // ABM payloads read in switch order: SH SL SG SD SB1 SB2.
    std::array<Tri, kAbmBits> abm{};
    ASSERT_TRUE(parse_bits("10x001", kAbmBits, /*msb_first=*/false, abm.data()));
    EXPECT_EQ(abm[0], Tri::kOne);      // SH
    EXPECT_EQ(abm[2], Tri::kUnknown);  // SG
    EXPECT_EQ(abm[5], Tri::kOne);      // SB2
    EXPECT_FALSE(parse_bits("0100", kSelectBits, true, bits.data()));
    EXPECT_FALSE(parse_bits("0100001?", kSelectBits, true, bits.data()));
}

TEST(FlowInterpreter, CleanProgramIsQuiet) {
    Report report;
    EXPECT_EQ(flow_lint(clean_program(), report), 0u);
    EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(FlowInterpreter, CleanMultiDieCampaignIsQuiet) {
    CampaignProgram program;
    program.chain.dies = 3;
    program.reset().ir_scan(jtag::Instruction::kProbe);
    for (std::uint32_t d = 0; d < 3; ++d) {
        program.select(d, "01000011").calibrate(d).measure(d, Detector::kPower);
        program.select(d, "00000000");  // break before the next die makes
    }
    Report report;
    EXPECT_EQ(flow_lint(program, report), 0u);
    EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(FlowInterpreter, CrowbarWindowAcrossUpdatesFiresWithWitness) {
    // Each update alone looks harmless; only the flow between them closes SH
    // and SL together.  An unspecified payload bit keeps its latched value.
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kExtest)
        .abm(0, "100000")    // SH closed
        .abm(0, "x1xxxx");   // SL closed, SH kept latched
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-crowbar-window");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_EQ(diag->severity, Severity::kError);
    ASSERT_EQ(diag->witness.size(), 2u);
    // The witness cites both latch events, each with its own step.
    EXPECT_NE(diag->witness[0].find("step 3"), std::string::npos);
    EXPECT_NE(diag->witness[1].find("step 4"), std::string::npos);
}

TEST(FlowInterpreter, CrowbarFiresOncePerWindow) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kExtest)
        .abm(0, "110000")
        .abm(0, "11x000");  // still crowbarred, same window: no second fire
    Report report;
    flow_lint(program, report);
    std::size_t count = 0;
    for (const auto& diag : report.diagnostics()) {
        if (diag.rule == "flow-crowbar-window") ++count;
    }
    EXPECT_EQ(count, 1u);
}

TEST(FlowInterpreter, UnknownBitsStayConservativelyQuiet) {
    CampaignProgram program;
    program.reset().ir_scan(jtag::Instruction::kExtest).abm(0, "1x0000");
    Report report;
    flow_lint(program, report);
    EXPECT_FALSE(fires(report, "flow-crowbar-window")) << report.to_text();
}

TEST(FlowInterpreter, BreakBeforeMakeViolationFires) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kExtest)
        .abm(0, "000010")   // pin on AB1
        .abm(0, "000001");  // straight handoff to AB2
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-break-before-make");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_FALSE(diag->witness.empty());
}

TEST(FlowInterpreter, BreakThenMakeIsQuiet) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kExtest)
        .abm(0, "000010")
        .abm(0, "000000")   // disconnect interval
        .abm(0, "000001");
    Report report;
    flow_lint(program, report);
    EXPECT_FALSE(fires(report, "flow-break-before-make")) << report.to_text();
}

TEST(FlowInterpreter, CrossDieBusContentionFires) {
    CampaignProgram program;
    program.chain.dies = 2;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000011")   // die 0 drives AB1 (out+) and AB2 (out-)
        .select(1, "01000100");  // die 1 also drives AB1 (Fdet)
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-bus-contention");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_NE(diag->message.find("AB1"), std::string::npos);
    ASSERT_EQ(diag->witness.size(), 2u);  // one line per latched driver
}

TEST(FlowInterpreter, SequentialBusUseIsQuiet) {
    CampaignProgram program;
    program.chain.dies = 2;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000011")
        .calibrate(0)
        .measure(0, Detector::kPower)
        .select(0, "00000000")   // die 0 releases the buses
        .select(1, "01000011")
        .calibrate(1)
        .measure(1, Detector::kPower);
    Report report;
    flow_lint(program, report);
    EXPECT_FALSE(fires(report, "flow-bus-contention")) << report.to_text();
}

TEST(FlowInterpreter, ReadWithoutProbeFires) {
    CampaignProgram program;
    program.reset().select(0, "01000011").calibrate(0).measure(0, Detector::kPower);
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-read-before-select");
    ASSERT_NE(diag, nullptr) << report.to_text();
    // Reset latches IDCODE; the message names the offending instruction.
    EXPECT_NE(diag->message.find("IDCODE"), std::string::npos);
}

TEST(FlowInterpreter, ReadBeforeRouteLandsFires) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000001")  // out+ -> AB1 routed, out- -> AB2 missing
        .calibrate(0)
        .measure(0, Detector::kPower);
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-read-before-select");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_NE(diag->message.find("out- -> AB2"), std::string::npos);
}

TEST(FlowInterpreter, UnpoweredReadFiresWithProvenance) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "00000011")  // routes land, detector power off
        .calibrate(0)
        .measure(0, Detector::kPower);
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-unpowered-read");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_EQ(diag->severity, Severity::kError);
    ASSERT_EQ(diag->witness.size(), 2u);
    EXPECT_NE(diag->witness[0].find("step 3"), std::string::npos);  // the select
    EXPECT_NE(diag->witness[1].find("step 5"), std::string::npos);  // the read
}

TEST(FlowInterpreter, MeasureBeforeCalibrateWarns) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000011")
        .measure(0, Detector::kPower);
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-measure-before-calibrate");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_EQ(diag->severity, Severity::kWarning);

    Report relaxed;
    FlowLintOptions options;
    options.check_calibration = false;
    flow_lint(program, relaxed, options);
    EXPECT_FALSE(fires(relaxed, "flow-measure-before-calibrate"));
}

TEST(FlowInterpreter, DeadSelectUpdateWarnsAtTheOverwrittenStep) {
    CampaignProgram program;
    program.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000100")   // never observed
        .select(0, "01000011")   // overwrites it
        .calibrate(0)
        .measure(0, Detector::kPower);
    Report report;
    flow_lint(program, report);
    const Diagnostic* diag = find(report, "flow-dead-update");
    ASSERT_NE(diag, nullptr) << report.to_text();
    EXPECT_EQ(diag->severity, Severity::kWarning);
    EXPECT_NE(diag->message.find("step 3"), std::string::npos);

    Report relaxed;
    FlowLintOptions options;
    options.check_dead_updates = false;
    flow_lint(program, relaxed, options);
    EXPECT_FALSE(fires(relaxed, "flow-dead-update"));
}

TEST(FlowInterpreter, TrailingSelectUpdateIsNotDead) {
    // The next campaign segment may consume a trailing select word; only an
    // overwrite inside the program proves the store dead.
    CampaignProgram program = clean_program();
    program.select(0, "00000000");
    Report report;
    flow_lint(program, report);
    EXPECT_FALSE(fires(report, "flow-dead-update")) << report.to_text();
}

TEST(FlowInterpreter, DieOutsideChainFires) {
    CampaignProgram program;
    program.chain.dies = 2;
    program.reset().ir_scan(jtag::Instruction::kProbe).select(5, "01000011");
    Report report;
    flow_lint(program, report);
    EXPECT_TRUE(fires(report, "flow-bad-die")) << report.to_text();
}

TEST(FlowInterpreter, AllFlowRulesAreInTheCatalog) {
    for (const char* rule :
         {"flow-bad-die", "flow-break-before-make", "flow-bus-contention",
          "flow-crowbar-window", "flow-dead-update", "flow-measure-before-calibrate",
          "flow-parse-error", "flow-read-before-select", "flow-unpowered-read"}) {
        EXPECT_TRUE(is_known_rule(rule)) << rule;
    }
}

// --- parser ----------------------------------------------------------------

TEST(FlowParser, ParsesFullProgram) {
    const std::string text =
        "# power measurement round trip\n"
        "chain 2\n"
        "reset\n"
        "irscan PROBE\n"
        "select 0 01000011\n"
        "runtest 100\n"
        "calibrate 0\n"
        "measure 0 power\n"
        "abm 1 000100\n"
        "measure 0 freq\n";
    CampaignProgram program;
    Report report;
    ASSERT_TRUE(parse_program(text, "round.prog", program, report)) << report.to_text();
    EXPECT_EQ(program.chain.dies, 2u);
    ASSERT_EQ(program.ops.size(), 8u);
    EXPECT_EQ(program.ops[0].kind, FlowOp::Kind::kReset);
    EXPECT_EQ(program.ops[1].ir, jtag::opcode(jtag::Instruction::kProbe));
    EXPECT_EQ(program.ops[3].cycles, 100u);
    EXPECT_EQ(program.ops[6].die, 1u);
    EXPECT_EQ(program.ops[7].detector, Detector::kFrequency);
    EXPECT_EQ(program.ops[7].loc.line, 10u);
    EXPECT_EQ(program.ops[7].loc.file, "round.prog");
}

TEST(FlowParser, ReportsErrorsWithLocationAndContinues) {
    const std::string text =
        "reset\n"
        "frobnicate 0\n"
        "measure 0 sideways\n"
        "irscan PROBE\n";
    CampaignProgram program;
    Report report;
    EXPECT_FALSE(parse_program(text, "bad.prog", program, report));
    ASSERT_EQ(report.error_count(), 2u) << report.to_text();
    EXPECT_EQ(report.diagnostics()[0].rule, "flow-parse-error");
    EXPECT_EQ(report.diagnostics()[0].loc.line, 2u);
    EXPECT_EQ(report.diagnostics()[1].loc.line, 3u);
    // The good lines still landed.
    EXPECT_EQ(program.ops.size(), 2u);
}

TEST(FlowParser, InlineSuppressionDirectiveSilencesFlowRule) {
    const std::string text =
        "reset\n"
        "irscan PROBE\n"
        "select 0 00000011\n"
        "calibrate 0\n"
        "measure 0 power  # abm-lint: disable=flow-unpowered-read\n";
    CampaignProgram program;
    Report report;
    ASSERT_TRUE(parse_program(text, "supp.prog", program, report));
    flow_lint(program, report);
    EXPECT_FALSE(fires(report, "flow-unpowered-read")) << report.to_text();
    EXPECT_EQ(report.suppressed_count(), 1u);
}

TEST(FlowParser, WholeLineDirectiveGuardsNextLineAndFileDirectiveGuardsAll) {
    const std::string guarded =
        "reset\n"
        "irscan PROBE\n"
        "select 0 00000011\n"
        "calibrate 0\n"
        "# abm-lint: disable=flow-unpowered-read\n"
        "measure 0 power\n";
    CampaignProgram p1;
    Report r1;
    ASSERT_TRUE(parse_program(guarded, "g.prog", p1, r1));
    flow_lint(p1, r1);
    EXPECT_FALSE(fires(r1, "flow-unpowered-read")) << r1.to_text();

    const std::string filewide =
        "# abm-lint: disable-file=flow-unpowered-read,flow-measure-before-calibrate\n"
        "reset\n"
        "irscan PROBE\n"
        "select 0 00000011\n"
        "measure 0 power\n";
    CampaignProgram p2;
    Report r2;
    ASSERT_TRUE(parse_program(filewide, "f.prog", p2, r2));
    flow_lint(p2, r2);
    EXPECT_TRUE(r2.empty()) << r2.to_text();
    EXPECT_EQ(r2.suppressed_count(), 2u);
}

// --- JSON round trip -------------------------------------------------------

/// Pull every occurrence of a quoted string field out of a JSON document.
/// (Good enough for the engine's own escaping-free field values.)
std::vector<std::string> json_fields(const std::string& json, const std::string& key) {
    std::vector<std::string> values;
    const std::string needle = "\"" + key + "\":";
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        if (json[pos] != '"') continue;
        const std::size_t end = json.find('"', pos + 1);
        values.push_back(json.substr(pos + 1, end - pos - 1));
        pos = end;
    }
    return values;
}

TEST(FlowJson, RoundTripPreservesRuleIdsLocationsWitnessesAndFixits) {
    const std::string text =
        "reset\n"
        "irscan PROBE\n"
        "select 0 00000011\n"
        "measure 0 power\n";
    CampaignProgram program;
    Report report;
    ASSERT_TRUE(parse_program(text, "rt.prog", program, report));
    flow_lint(program, report);
    report.sort();
    ASSERT_FALSE(report.empty());
    const std::string json = report.to_json();

    // Emit -> (re)parse: the same rule ids, in the same order...
    const std::vector<std::string> rules = json_fields(json, "rule");
    ASSERT_EQ(rules.size(), report.diagnostics().size());
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i], report.diagnostics()[i].rule);
    }
    // ... the same locations ...
    const std::vector<std::string> files = json_fields(json, "file");
    ASSERT_EQ(files.size(), report.diagnostics().size());
    for (const std::string& file : files) EXPECT_EQ(file, "rt.prog");
    for (const auto& diag : report.diagnostics()) {
        EXPECT_NE(json.find("\"line\":" + std::to_string(diag.loc.line)),
                  std::string::npos);
    }
    // ... and every witness line and fix-it hint, as JSON string arrays.
    for (const auto& diag : report.diagnostics()) {
        for (const std::string& step : diag.witness) {
            EXPECT_NE(json.find(step), std::string::npos) << step;
        }
        if (!diag.fixit.empty()) {
            EXPECT_NE(json.find(diag.fixit), std::string::npos);
        }
    }
    EXPECT_NE(json.find("\"witness\":["), std::string::npos);
}

TEST(FlowJson, SuppressedFlowDiagnosticsStayOutOfJson) {
    const std::string text =
        "# abm-lint: disable-file=flow-unpowered-read,flow-measure-before-calibrate\n"
        "reset\n"
        "irscan PROBE\n"
        "select 0 00000011\n"
        "measure 0 power\n";
    CampaignProgram program;
    Report report;
    ASSERT_TRUE(parse_program(text, "s.prog", program, report));
    flow_lint(program, report);
    const std::string json = report.to_json();
    EXPECT_EQ(json.find("flow-unpowered-read"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\":2"), std::string::npos) << json;
}

// --- cache -----------------------------------------------------------------

TEST(FlowCache, FingerprintIsStableAndSensitive) {
    const CampaignProgram a = clean_program();
    const CampaignProgram b = clean_program();
    EXPECT_EQ(flow_fingerprint(a), flow_fingerprint(b));

    CampaignProgram wider = clean_program();
    wider.chain.dies = 2;
    EXPECT_NE(flow_fingerprint(a), flow_fingerprint(wider));

    CampaignProgram edited = clean_program();
    edited.ops[2].bits[6] = Tri::kZero;  // power gate flipped
    EXPECT_NE(flow_fingerprint(a), flow_fingerprint(edited));

    FlowLintOptions relaxed;
    relaxed.check_calibration = false;
    EXPECT_NE(flow_fingerprint(a), flow_fingerprint(a, relaxed));
}

TEST(FlowCache, ReplaysVerdictOnHit) {
    CampaignProgram bad;
    bad.reset().ir_scan(jtag::Instruction::kProbe).select(0, "00000011").calibrate(0)
        .measure(0, Detector::kPower);
    FlowLintCache cache;
    Report first;
    const std::size_t offered = cache.admit(bad, first);
    EXPECT_GT(offered, 0u);
    Report second;
    EXPECT_EQ(cache.admit(bad, second), offered);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    ASSERT_EQ(second.diagnostics().size(), first.diagnostics().size());
    for (std::size_t i = 0; i < first.diagnostics().size(); ++i) {
        EXPECT_EQ(second.diagnostics()[i].rule, first.diagnostics()[i].rule);
        EXPECT_EQ(second.diagnostics()[i].witness, first.diagnostics()[i].witness);
    }
}

TEST(FlowCache, SuppressionsApplyAtReplayNotAtCaching) {
    CampaignProgram bad;
    bad.reset().ir_scan(jtag::Instruction::kProbe).select(0, "00000011").calibrate(0)
        .measure(0, Detector::kPower);
    FlowLintCache cache;
    Report muted;
    muted.suppress_rule("flow-unpowered-read");
    const std::size_t offered = cache.admit(bad, muted);
    EXPECT_GT(offered, 0u);            // the verdict still carries the finding
    EXPECT_FALSE(muted.has_errors());  // ... but this caller suppressed it
    // A later caller WITHOUT the suppression still sees the error: the
    // suppression was not laundered into the cache.
    Report strict;
    cache.admit(bad, strict);
    EXPECT_TRUE(strict.has_errors());
}

TEST(FlowCache, CleanTicketsPersistAcrossLoadSave) {
    const CampaignProgram program = clean_program();
    const std::string path = ::testing::TempDir() + "flow_cache_test.lintcache";
    {
        FlowLintCache cache;
        Report report;
        EXPECT_EQ(cache.admit(program, report), 0u);
        EXPECT_TRUE(cache.save(path));
    }
    FlowLintCache reloaded;
    ASSERT_TRUE(reloaded.load(path));
    EXPECT_TRUE(reloaded.has_clean_ticket(flow_fingerprint(program)));
    Report report;
    EXPECT_EQ(reloaded.admit(program, report), 0u);
    EXPECT_EQ(reloaded.stats().hits, 1u);
    EXPECT_EQ(reloaded.stats().misses, 0u);
    std::remove(path.c_str());
}

TEST(FlowCache, DirtyVerdictsAreNeverPersisted) {
    CampaignProgram bad;
    bad.reset().ir_scan(jtag::Instruction::kProbe).select(0, "00000011").calibrate(0)
        .measure(0, Detector::kPower);
    const std::string path = ::testing::TempDir() + "flow_cache_dirty.lintcache";
    {
        FlowLintCache cache;
        Report report;
        EXPECT_GT(cache.admit(bad, report), 0u);
        EXPECT_TRUE(cache.save(path));
    }
    FlowLintCache reloaded;
    ASSERT_TRUE(reloaded.load(path));
    EXPECT_FALSE(reloaded.has_clean_ticket(flow_fingerprint(bad)));
    // Re-admission in the new process re-interprets and re-fires.
    Report report;
    EXPECT_GT(reloaded.admit(bad, report), 0u);
    EXPECT_EQ(reloaded.stats().misses, 1u);
    std::remove(path.c_str());
}

TEST(FlowCache, MalformedTicketFileIsRejected) {
    const std::string path = ::testing::TempDir() + "flow_cache_bad.lintcache";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("not a lintcache\n12ab\n", f);
        std::fclose(f);
    }
    FlowLintCache cache;
    EXPECT_FALSE(cache.load(path));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace rfabm::lint::flow
