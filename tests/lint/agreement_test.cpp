// Cross-validation between the static analyzer and the fault-injection
// campaign: every defect class the campaign plants that is *statically
// detectable* (visible in netlist/switch state without solving) must fire a
// lint rule, and the admission guard must reject measurements on those
// defects before any transient read.  Classes that are only dynamically
// observable (drift within tolerance windows, stuck TAP lines, TCK glitches,
// scan bit flips) must NOT fire — lint staying quiet on them is part of the
// agreement.
#include <gtest/gtest.h>

#include "circuit/devices/defects.hpp"
#include "circuit/devices/passive.hpp"
#include "core/calibration.hpp"
#include "core/measurement.hpp"
#include "faults/circuit_faults.hpp"
#include "faults/jtag_faults.hpp"
#include "lint/diagnostics.hpp"
#include "lint/flow/cache.hpp"
#include "lint/flow/interpreter.hpp"
#include "rf/sweep.hpp"

namespace rfabm::faults {
namespace {

/// Shared expensive fixture: one calibrated chip + a coarse power curve.
class LintAgreementFixture : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        chip_ = new core::RfAbmChip{core::RfAbmChipConfig{}};
        controller_ = new core::MeasurementController(*chip_);
        controller_->open_session();
        core::dc_calibrate(*controller_);
        power_curve_ = new rf::MonotoneCurve(
            core::acquire_power_curve(*controller_, rf::arange(-20.0, 7.0, 3.0), 1.5e9));
    }

    static void TearDownTestSuite() {
        delete power_curve_;
        delete controller_;
        delete chip_;
        power_curve_ = nullptr;
        controller_ = nullptr;
        chip_ = nullptr;
    }

    void SetUp() override { chip_->set_rf(-8.0, 1.5e9); }

    /// The power-measurement select word the checked pipeline preflights.
    static std::uint8_t power_word() {
        return core::select_word({core::SelectBit::kOutPlusToAb1,
                                  core::SelectBit::kOutMinusToAb2,
                                  core::SelectBit::kDetectorPower});
    }

    /// Preflight with the measurement states latched, as the guard does.
    static lint::Report preflight() {
        controller_->open_session();
        controller_->set_select(power_word());
        lint::Report report;
        controller_->lint_preflight(power_word(), report);
        return report;
    }

    static bool fires(const lint::Report& report, const std::string& rule) {
        for (const lint::Diagnostic& d : report.diagnostics()) {
            if (d.rule == rule) return true;
        }
        return false;
    }

    static core::RfAbmChip* chip_;
    static core::MeasurementController* controller_;
    static rf::MonotoneCurve* power_curve_;
};

core::RfAbmChip* LintAgreementFixture::chip_ = nullptr;
core::MeasurementController* LintAgreementFixture::controller_ = nullptr;
rf::MonotoneCurve* LintAgreementFixture::power_curve_ = nullptr;

// Baseline for every per-class test below: the shipped chip, in a properly
// opened session with the power-measurement routing latched, has zero lint
// errors.
TEST_F(LintAgreementFixture, HealthyChipPreflightHasNoErrors) {
    const lint::Report r = preflight();
    EXPECT_FALSE(r.has_errors()) << r.to_text();
}

// Campaign class kOpen: a series-open device (resistance driven to 1e12).
TEST_F(LintAgreementFixture, OpenDefectClassFiresErc) {
    OpenDeviceFault fault("open:PDET.R8",
                          chip_->circuit().get<circuit::Resistor>("PDET.R8"));
    fault.arm();
    const lint::Report r = preflight();
    fault.disarm();

    EXPECT_TRUE(fires(r, "erc-value-suspicious") || fires(r, "erc-floating-node"))
        << r.to_text();

    const lint::Report healed = preflight();
    EXPECT_FALSE(healed.has_errors()) << healed.to_text();
}

// Campaign class kBridge: an armed bridge/leak defect device.
TEST_F(LintAgreementFixture, BridgeDefectClassFiresErc) {
    auto& bridge = chip_->circuit().add<circuit::BridgeDefect>(
        "DEF.lint_voutp_gnd", chip_->pdet().vout_p(), circuit::kGround, 25.0);
    BridgeFault fault("bridge:voutp-gnd", bridge);

    fault.arm();
    const lint::Report r = preflight();
    fault.disarm();

    EXPECT_TRUE(fires(r, "erc-defect-armed")) << r.to_text();
    EXPECT_TRUE(r.has_errors());

    // Disarmed, the defect device is electrically absent and lint is quiet.
    const lint::Report healed = preflight();
    EXPECT_FALSE(fires(healed, "erc-defect-armed")) << healed.to_text();
}

// Campaign class kStuckSwitch: a routing switch that ignores its latch.
TEST_F(LintAgreementFixture, StuckSwitchClassFiresFaultAndMismatchRules) {
    StuckSwitchFault fault("stuckopen:MUX.out-",
                           chip_->mux().switch_for(core::SelectBit::kOutMinusToAb2),
                           circuit::SwitchFault::kStuckOpen);
    fault.arm();
    const lint::Report r = preflight();
    fault.disarm();

    EXPECT_TRUE(fires(r, "erc-device-fault")) << r.to_text();
    // The select readback cannot see this defect (the latch reads back
    // fine); the electrical-vs-latched cross-check is what catches it.
    EXPECT_TRUE(fires(r, "mux-select-mismatch")) << r.to_text();

    const lint::Report healed = preflight();
    EXPECT_FALSE(healed.has_errors()) << healed.to_text();
}

// Campaign class kStuckMosfet: a detector transistor stuck off.
TEST_F(LintAgreementFixture, StuckMosfetClassFiresDeviceFault) {
    StuckMosfetFault fault("stuckoff:PDET.Q1", chip_->pdet().q1(),
                           circuit::MosfetFault::kStuckOff);
    fault.arm();
    const lint::Report r = preflight();
    fault.disarm();

    EXPECT_TRUE(fires(r, "erc-device-fault")) << r.to_text();
    EXPECT_TRUE(r.has_errors());
}

// The other side of the agreement: defect classes the campaign can only
// catch dynamically must not trip the static analyzer.
TEST_F(LintAgreementFixture, DynamicOnlyClassesStayQuiet) {
    // kDrift: value moves but stays inside the plausible window.
    DriftFault drift("drift:PDET.R4", chip_->circuit().get<circuit::Resistor>("PDET.R4"),
                     5.0);
    drift.arm();
    const lint::Report drift_report = preflight();
    drift.disarm();
    EXPECT_FALSE(drift_report.has_errors()) << drift_report.to_text();

    // kStuckLine: a TAP wiring defect, invisible to netlist/switch-state
    // analysis (only the IDCODE readback path exercises it).
    StuckLineFault tdo("stuck0:TDO", chip_->tap_driver(), StuckLineFault::Line::kTdo,
                       false);
    tdo.arm();
    const lint::Report tdo_report = preflight();
    tdo.disarm();
    EXPECT_FALSE(tdo_report.has_errors()) << tdo_report.to_text();

    // Re-establish a clean session for later tests.
    controller_->open_session();
}

// The admission guard end to end: with lint_before_measure set, an armed
// statically-detectable defect turns the checked measurement into an
// immediate kFailed/kConfigLint — no retries burned on transient reads —
// and disarming heals the pipeline.
TEST_F(LintAgreementFixture, AdmissionGuardRejectsThenHeals) {
    core::MeasureOptions options;
    options.lint_before_measure = true;
    core::MeasurementController guarded(*chip_, options);
    guarded.open_session();

    const core::PowerMeasurement healthy = guarded.measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(healthy.diag.status, core::MeasurementStatus::kOk) << healthy.diag.to_string();
    EXPECT_NEAR(healthy.dbm, -8.0, 0.5);

    auto& bridge = chip_->circuit().add<circuit::BridgeDefect>(
        "DEF.lint_guard", chip_->pdet().vout_n(), circuit::kGround, 30.0);
    BridgeFault fault("bridge:voutn-gnd", bridge);
    fault.arm();
    const core::PowerMeasurement rejected = guarded.measure_power_checked(*power_curve_, -8.0);
    fault.disarm();

    EXPECT_EQ(rejected.diag.status, core::MeasurementStatus::kFailed)
        << rejected.diag.to_string();
    EXPECT_EQ(rejected.diag.suspect, core::SuspectedFault::kConfigLint)
        << rejected.diag.to_string();
    EXPECT_EQ(rejected.diag.retries, 0) << "guard must reject before burning retries";
    EXPECT_NE(rejected.diag.detail.find("erc-defect-armed"), std::string::npos)
        << rejected.diag.detail;

    const core::PowerMeasurement healed = guarded.measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(healed.diag.status, core::MeasurementStatus::kOk) << healed.diag.to_string();

    // Leave the shared controller's session consistent for later tests.
    controller_->open_session();
}

TEST_F(LintAgreementFixture, ConfigLintSuspectFormatting) {
    EXPECT_STREQ(core::to_string(core::SuspectedFault::kConfigLint), "config-lint");
}

// --- temporal (flow) scan-program classes -----------------------------------
//
// The flow interpreter sits below core and restates the select-word routing
// facts as local constants; these tests pin that restatement against the
// core enum and the checked measurement pipeline, so the two layers cannot
// drift apart silently.

namespace flow = lint::flow;

TEST_F(LintAgreementFixture, FlowSelectWordSemanticsMatchCore) {
    EXPECT_EQ(core::select_word({core::SelectBit::kOutPlusToAb1}), 1u << 0);
    EXPECT_EQ(core::select_word({core::SelectBit::kOutMinusToAb2}), 1u << 1);
    EXPECT_EQ(core::select_word({core::SelectBit::kFdetToAb1}), 1u << 2);
    EXPECT_EQ(core::select_word({core::SelectBit::kDetectorPower}), 1u << 6);
    // The select word the flow rules demand for a power read ("01000011",
    // MSB first) is exactly the word the checked pipeline latches.
    EXPECT_EQ(power_word(), 0b01000011);
    EXPECT_EQ(core::select_word({core::SelectBit::kFdetToAb1,
                                 core::SelectBit::kDetectorPower}),
              0b01000100);
}

// Temporal defect classes — state legal at every snapshot, broken only in
// the flow between update events — must fire flow rules with witnesses.
TEST_F(LintAgreementFixture, FlowTemporalClassesFireWithWitnesses) {
    // Crowbar window: each update is individually clean; only the flow
    // between them closes SH and SL together (the temporal analog of the
    // snapshot rule abm-sh-sl-short).
    {
        flow::CampaignProgram program;
        program.reset()
            .ir_scan(jtag::Instruction::kExtest)
            .abm(0, "100000")
            .abm(0, "x1xxxx");
        lint::Report report;
        flow::flow_lint(program, report);
        EXPECT_TRUE(fires(report, "flow-crowbar-window")) << report.to_text();
    }
    // Cross-die bus contention: two dies' select words are each clean in
    // isolation (the snapshot rule select-bus-conflict sees one word at a
    // time); only the campaign-level flow latches both drivers onto AB1.
    {
        flow::CampaignProgram program;
        program.chain.dies = 2;
        program.reset()
            .ir_scan(jtag::Instruction::kProbe)
            .select(0, "01000011")
            .select(1, "01000100");
        lint::Report report;
        flow::flow_lint(program, report);
        bool found = false;
        for (const lint::Diagnostic& d : report.diagnostics()) {
            if (d.rule != "flow-bus-contention") continue;
            found = true;
            EXPECT_FALSE(d.witness.empty()) << report.to_text();
        }
        EXPECT_TRUE(found) << report.to_text();
    }
    // Unpowered read: the power gate was latched off steps earlier.
    {
        flow::CampaignProgram program;
        program.reset()
            .ir_scan(jtag::Instruction::kProbe)
            .select(0, "00000011")
            .calibrate(0)
            .measure(0, flow::Detector::kPower);
        lint::Report report;
        flow::flow_lint(program, report);
        EXPECT_TRUE(fires(report, "flow-unpowered-read")) << report.to_text();
    }
    // Measure-before-calibrate: the ordering defect the dynamic pipeline
    // only sees as a skewed conversion curve.
    {
        flow::CampaignProgram program;
        program.reset()
            .ir_scan(jtag::Instruction::kProbe)
            .select(0, "01000011")
            .measure(0, flow::Detector::kPower);
        lint::Report report;
        flow::flow_lint(program, report);
        EXPECT_TRUE(fires(report, "flow-measure-before-calibrate")) << report.to_text();
    }
}

// The other side of the agreement: the campaign sequence the checked
// pipeline actually performs — route, power, calibrate, read, release —
// must admit cleanly, and defects only observable dynamically (drift,
// stuck TAP lines) have no flow-program signature to fire on.
TEST_F(LintAgreementFixture, FlowHealthySequenceAdmitsCleanly) {
    flow::CampaignProgram program;
    program.chain.dies = 2;
    program.reset().ir_scan(jtag::Instruction::kProbe);
    for (std::uint32_t d = 0; d < 2; ++d) {
        program.select(d, "01000011")
            .calibrate(d)
            .measure(d, flow::Detector::kPower)
            .select(d, "01000100")
            .measure(d, flow::Detector::kFrequency)
            .select(d, "00000000");
    }
    lint::Report report;
    EXPECT_EQ(flow::flow_lint(program, report), 0u) << report.to_text();
}

// The admission guard end to end: a campaign whose scan program is
// temporally broken is rejected before the TAP is touched — kFailed with
// kConfigLint and zero retries burned — while a clean program measures.
// The second rejection replays from the FlowLintCache instead of
// re-interpreting.
TEST_F(LintAgreementFixture, FlowAdmissionGuardRejectsBrokenProgram) {
    flow::CampaignProgram bad;
    bad.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "00000011")
        .calibrate(0)
        .measure(0, flow::Detector::kPower);
    flow::FlowLintCache cache;

    core::MeasureOptions options;
    options.admission_program = &bad;
    options.admission_cache = &cache;
    core::MeasurementController guarded(*chip_, options);
    guarded.open_session();

    const core::PowerMeasurement rejected = guarded.measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(rejected.diag.status, core::MeasurementStatus::kFailed)
        << rejected.diag.to_string();
    EXPECT_EQ(rejected.diag.suspect, core::SuspectedFault::kConfigLint)
        << rejected.diag.to_string();
    EXPECT_EQ(rejected.diag.retries, 0) << "guard must reject before burning retries";
    EXPECT_NE(rejected.diag.detail.find("flow-unpowered-read"), std::string::npos)
        << rejected.diag.detail;

    const core::PowerMeasurement again = guarded.measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(again.diag.suspect, core::SuspectedFault::kConfigLint);
    EXPECT_EQ(cache.stats().misses, 1u) << "second admission must replay from the cache";
    EXPECT_EQ(cache.stats().hits, 1u);

    // The same controller with a clean program admits and measures.
    flow::CampaignProgram good;
    good.reset()
        .ir_scan(jtag::Instruction::kProbe)
        .select(0, "01000011")
        .calibrate(0)
        .measure(0, flow::Detector::kPower);
    core::MeasureOptions clean_options;
    clean_options.admission_program = &good;
    clean_options.admission_cache = &cache;
    core::MeasurementController admitted(*chip_, clean_options);
    admitted.open_session();
    const core::PowerMeasurement ok = admitted.measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(ok.diag.status, core::MeasurementStatus::kOk) << ok.diag.to_string();
    EXPECT_NEAR(ok.dbm, -8.0, 0.5);

    // Leave the shared controller's session consistent for later tests.
    controller_->open_session();
}

}  // namespace
}  // namespace rfabm::faults
