// Unit tests for the shared diagnostics engine: severities, suppression,
// sorting, text/JSON rendering, rule catalog consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "lint/diagnostics.hpp"

namespace rfabm::lint {
namespace {

Diagnostic make(const std::string& rule, Severity sev, const std::string& file, std::size_t line,
                std::size_t col, const std::string& msg) {
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.loc = {file, line, col};
    d.message = msg;
    return d;
}

TEST(Diagnostics, CountsBySeverity) {
    Report r;
    r.add(make("erc-value-zero", Severity::kError, "a.cir", 1, 1, "zero"));
    r.add(make("erc-value-suspicious", Severity::kWarning, "a.cir", 2, 1, "odd"));
    r.add(make("erc-value-suspicious", Severity::kWarning, "a.cir", 3, 1, "odd"));
    EXPECT_EQ(r.error_count(), 1u);
    EXPECT_EQ(r.warning_count(), 2u);
    EXPECT_TRUE(r.has_errors());
    EXPECT_FALSE(r.empty());
}

TEST(Diagnostics, TextFormatIsCompilerStyle) {
    Report r;
    Diagnostic d = make("erc-floating-node", Severity::kError, "deck.cir", 7, 3, "node floats");
    d.fixit = "ground it";
    r.add(std::move(d));
    const std::string text = r.to_text();
    EXPECT_NE(text.find("deck.cir:7:3: error: node floats [erc-floating-node]"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("fix-it: ground it"), std::string::npos);
    EXPECT_NE(text.find("1 error, 0 warnings."), std::string::npos);
}

TEST(Diagnostics, StateDiagnosticsUseDevicePath) {
    Report r;
    Diagnostic d;
    d.rule = "abm-sh-sl-short";
    d.severity = Severity::kError;
    d.device = "RF_ABM";
    d.message = "crowbar";
    r.add(std::move(d));
    EXPECT_NE(r.to_text().find("RF_ABM: error: crowbar"), std::string::npos) << r.to_text();
}

TEST(Diagnostics, RuleSuppression) {
    Report r;
    r.suppress_rule("erc-dangling-node");
    EXPECT_FALSE(r.add(make("erc-dangling-node", Severity::kWarning, "a.cir", 1, 1, "x")));
    EXPECT_TRUE(r.add(make("erc-floating-node", Severity::kError, "a.cir", 1, 1, "x")));
    EXPECT_EQ(r.suppressed_count(), 1u);
    EXPECT_EQ(r.diagnostics().size(), 1u);
}

TEST(Diagnostics, LineSuppressionOnlyHitsThatLine) {
    Report r;
    r.suppress_line(4, "erc-value-suspicious");
    EXPECT_FALSE(r.add(make("erc-value-suspicious", Severity::kWarning, "a.cir", 4, 1, "x")));
    EXPECT_TRUE(r.add(make("erc-value-suspicious", Severity::kWarning, "a.cir", 5, 1, "x")));
}

TEST(Diagnostics, WildcardSuppressesEverything) {
    Report r;
    r.suppress_rule("*");
    EXPECT_FALSE(r.add(make("erc-floating-node", Severity::kError, "a.cir", 1, 1, "x")));
    EXPECT_TRUE(r.empty());
}

TEST(Diagnostics, SortOrdersByLocation) {
    Report r;
    r.add(make("b-rule", Severity::kWarning, "z.cir", 1, 1, "z"));
    r.add(make("a-rule", Severity::kWarning, "a.cir", 9, 1, "late"));
    r.add(make("a-rule", Severity::kWarning, "a.cir", 2, 5, "early"));
    r.sort();
    EXPECT_EQ(r.diagnostics()[0].message, "early");
    EXPECT_EQ(r.diagnostics()[1].message, "late");
    EXPECT_EQ(r.diagnostics()[2].loc.file, "z.cir");
}

TEST(Diagnostics, JsonEscapesAndCounts) {
    Report r;
    r.add(make("netlist-parse-error", Severity::kError, "a\"b.cir", 3, 0, "bad \"token\"\n"));
    const std::string json = r.to_json();
    EXPECT_NE(json.find("\"rule\":\"netlist-parse-error\""), std::string::npos) << json;
    EXPECT_NE(json.find("a\\\"b.cir"), std::string::npos) << json;
    EXPECT_NE(json.find("\\n"), std::string::npos) << json;
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"line\":3"), std::string::npos) << json;
}

TEST(Diagnostics, CatalogIsSortedAndQueryable) {
    const auto& catalog = rule_catalog();
    ASSERT_FALSE(catalog.empty());
    EXPECT_TRUE(std::is_sorted(catalog.begin(), catalog.end(),
                               [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; }));
    EXPECT_TRUE(is_known_rule("erc-floating-node"));
    EXPECT_TRUE(is_known_rule("abm-sh-sl-short"));
    EXPECT_TRUE(is_known_rule("scan-dr-length"));
    EXPECT_FALSE(is_known_rule("no-such-rule"));
}

}  // namespace
}  // namespace rfabm::lint
