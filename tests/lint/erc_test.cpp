// Negative-path coverage for the netlist ERC: one fixture netlist per rule,
// asserting the rule id AND the source:line:column it anchors to, plus
// in-memory circuit checks for the fault-visibility rules and the
// suppression machinery.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/defects.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"
#include "lint/erc.hpp"
#include "lint/netlist_lint.hpp"

namespace rfabm::lint {
namespace {

std::string read_fixture(const std::string& name) {
    const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

Report lint_fixture(const std::string& name) {
    Report report;
    lint_netlist(read_fixture(name), name, report);
    report.sort();
    return report;
}

/// The diagnostic with @p rule, or nullptr.
const Diagnostic* find_rule(const Report& report, const std::string& rule) {
    for (const Diagnostic& d : report.diagnostics()) {
        if (d.rule == rule) return &d;
    }
    return nullptr;
}

::testing::AssertionResult has_rule_at(const Report& report, const std::string& rule,
                                       std::size_t line, std::size_t column) {
    const Diagnostic* d = find_rule(report, rule);
    if (d == nullptr) {
        return ::testing::AssertionFailure()
               << "rule " << rule << " not reported; got:\n" << report.to_text();
    }
    if (d->loc.line != line || (column != 0 && d->loc.column != column)) {
        return ::testing::AssertionFailure()
               << rule << " reported at " << d->loc.line << ":" << d->loc.column << ", expected "
               << line << ":" << column;
    }
    return ::testing::AssertionSuccess();
}

TEST(ErcFixtures, CleanDeckHasZeroDiagnostics) {
    const Report r = lint_fixture("clean.cir");
    EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(ErcFixtures, FloatingNode) {
    const Report r = lint_fixture("floating_node.cir");
    // 'f' is cut off from ground by the capacitor; located at C1's card.
    EXPECT_TRUE(has_rule_at(r, "erc-floating-node", 2, 1));
    EXPECT_TRUE(r.has_errors());
    const Diagnostic* d = find_rule(r, "erc-floating-node");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->loc.file, "floating_node.cir");
    EXPECT_NE(d->message.find("'f'"), std::string::npos) << d->message;
    // 'g' hangs off R1 alone.
    EXPECT_TRUE(has_rule_at(r, "erc-dangling-node", 3, 1));
}

TEST(ErcFixtures, VoltageLoop) {
    const Report r = lint_fixture("voltage_loop.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-voltage-loop", 2, 1));
    EXPECT_EQ(r.error_count(), 1u) << r.to_text();
}

TEST(ErcFixtures, InductorLoop) {
    const Report r = lint_fixture("inductor_loop.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-inductor-loop", 2, 1));
}

TEST(ErcFixtures, DuplicateName) {
    const Report r = lint_fixture("duplicate_name.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-duplicate-name", 2, 1));
    const Diagnostic* d = find_rule(r, "erc-duplicate-name");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("line 1"), std::string::npos) << d->message;
}

TEST(ErcFixtures, UndefinedModel) {
    const Report r = lint_fixture("undefined_model.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-undefined-model", 1, 10));
}

TEST(ErcFixtures, SwitchRonRoff) {
    const Report r = lint_fixture("ron_roff.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-switch-ron-roff", 2, 1));
}

TEST(ErcFixtures, ValueZero) {
    const Report r = lint_fixture("value_zero.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-value-zero", 2, 8));
}

TEST(ErcFixtures, SuspiciousValueIsWarningOnly) {
    const Report r = lint_fixture("suspicious.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-value-suspicious", 3, 1));
    EXPECT_FALSE(r.has_errors()) << r.to_text();
}

TEST(ErcFixtures, SelfLoop) {
    const Report r = lint_fixture("self_loop.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-self-loop", 2, 1));
    EXPECT_FALSE(r.has_errors());
}

TEST(ErcFixtures, IsolatedSubnetReportedOnce) {
    const Report r = lint_fixture("isolated_subnet.cir");
    EXPECT_TRUE(has_rule_at(r, "erc-isolated-subnet", 3, 1));
    std::size_t count = 0;
    for (const Diagnostic& d : r.diagnostics()) {
        if (d.rule == "erc-isolated-subnet") ++count;
    }
    EXPECT_EQ(count, 1u) << "one finding per component, not per node";
}

TEST(ErcFixtures, InlineSuppressionDirective) {
    const Report r = lint_fixture("suppressed.cir");
    EXPECT_TRUE(r.empty()) << r.to_text();
    EXPECT_EQ(r.suppressed_count(), 1u);
}

TEST(ErcFixtures, ParseErrorIsReportedNotThrown) {
    Report r;
    lint_netlist("Q1 a b c\n", "bad.cir", r);
    const Diagnostic* d = find_rule(r, "netlist-parse-error");
    ASSERT_NE(d, nullptr) << r.to_text();
    EXPECT_EQ(d->loc.line, 1u);
}

// --- in-memory circuit rules (no netlist form exists for these) -----------

TEST(ErcCircuit, ArmedDefectIsFlagged) {
    circuit::Circuit ckt;
    const auto a = ckt.node("a");
    ckt.add<circuit::VSource>("V1", a, circuit::kGround, circuit::Waveform::dc(1.0));
    ckt.add<circuit::Resistor>("R1", a, circuit::kGround, 1e3);
    auto& defect = ckt.add<circuit::BridgeDefect>("DEF", a, circuit::kGround, 25.0);

    Report healthy;
    run_erc(ckt, healthy);
    EXPECT_TRUE(healthy.empty()) << healthy.to_text();

    defect.arm();
    Report armed;
    run_erc(ckt, armed);
    const Diagnostic* d = nullptr;
    for (const Diagnostic& diag : armed.diagnostics()) {
        if (diag.rule == "erc-defect-armed") d = &diag;
    }
    ASSERT_NE(d, nullptr) << armed.to_text();
    EXPECT_EQ(d->device, "DEF");
}

TEST(ErcCircuit, StuckSwitchAndMosfetAreFlagged) {
    circuit::Circuit ckt;
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    ckt.add<circuit::VSource>("V1", a, circuit::kGround, circuit::Waveform::dc(1.0));
    auto& sw = ckt.add<circuit::Switch>("S1", a, b, 100.0, 1e9);
    ckt.add<circuit::Resistor>("R1", b, circuit::kGround, 1e3);
    auto& fet = ckt.add<circuit::Mosfet>("M1", a, b, circuit::kGround);

    Report healthy;
    run_erc(ckt, healthy);
    EXPECT_FALSE(healthy.has_errors()) << healthy.to_text();

    sw.set_fault(circuit::SwitchFault::kStuckOpen);
    fet.set_fault(circuit::MosfetFault::kStuckOff);
    Report faulty;
    run_erc(ckt, faulty);
    std::size_t flagged = 0;
    for (const Diagnostic& diag : faulty.diagnostics()) {
        if (diag.rule == "erc-device-fault") ++flagged;
    }
    EXPECT_EQ(flagged, 2u) << faulty.to_text();
}

TEST(ErcCircuit, OpenResistorBreaksConductivity) {
    circuit::Circuit ckt;
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    ckt.add<circuit::ISource>("I1", a, circuit::kGround, circuit::Waveform::dc(1e-3));
    auto& r1 = ckt.add<circuit::Resistor>("R1", a, b, 1e3);
    ckt.add<circuit::Resistor>("R2", b, circuit::kGround, 1e3);

    Report healthy;
    run_erc(ckt, healthy);
    EXPECT_FALSE(healthy.has_errors()) << healthy.to_text();

    // The fault injector's series-open model: drive the resistance to 1e12.
    r1.set_nominal(1e12);
    Report open;
    run_erc(ckt, open);
    EXPECT_TRUE(open.has_errors()) << open.to_text();
    bool floating = false;
    for (const Diagnostic& diag : open.diagnostics()) {
        if (diag.rule == "erc-floating-node") floating = true;
    }
    EXPECT_TRUE(floating) << open.to_text();
}

}  // namespace
}  // namespace rfabm::lint
