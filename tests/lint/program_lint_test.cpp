// 1149.4 program lint: ABM/TBIC switch-state rules driven through injected
// stuck-at defects, select-word contention rules, and the TAP state-machine
// validation of scan programs.
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "jtag/abm.hpp"
#include "jtag/tbic.hpp"
#include "lint/abm_rules.hpp"
#include "lint/scan_program.hpp"

namespace rfabm::lint {
namespace {

using circuit::SwitchFault;
using jtag::AbmSwitch;
using jtag::Instruction;
using jtag::TapState;
using jtag::TbicSwitch;

bool has_rule(const Report& report, const std::string& rule) {
    for (const Diagnostic& d : report.diagnostics()) {
        if (d.rule == rule) return true;
    }
    return false;
}

/// An ABM on a scratch circuit, with its own nodes.
struct AbmHarness {
    circuit::Circuit ckt;
    jtag::AnalogBoundaryModule abm;

    AbmHarness()
        : abm("PIN", ckt,
              jtag::AbmNodes{ckt.node("pin"), ckt.node("core"), ckt.node("ab1"), ckt.node("ab2"),
                             ckt.node("vh"), ckt.node("vl"), ckt.node("vg")}) {}
};

struct TbicHarness {
    circuit::Circuit ckt;
    jtag::Tbic tbic;

    TbicHarness()
        : tbic("TBIC", ckt,
               jtag::TbicNodes{ckt.node("at1"), ckt.node("at2"), ckt.node("ab1"), ckt.node("ab2"),
                               ckt.node("vh"), ckt.node("vl")}) {}
};

TEST(AbmLint, HealthyPatternsAreClean) {
    AbmHarness h;
    for (const Instruction i : {Instruction::kIdcode, Instruction::kBypass, Instruction::kProbe,
                                Instruction::kExtest, Instruction::kHighz}) {
        h.abm.apply(i);
        Report r;
        EXPECT_EQ(lint_abm_state(h.abm, r), 0u) << to_string(i) << ":\n" << r.to_text();
    }
}

TEST(AbmLint, StuckOpenSdUnderProbeBreaksMissionPath) {
    AbmHarness h;
    h.abm.apply(Instruction::kProbe);
    h.abm.switch_dev(AbmSwitch::kSD).set_fault(SwitchFault::kStuckOpen);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-mode-mismatch")) << r.to_text();
    EXPECT_EQ(r.diagnostics()[0].device, "PIN");
    h.abm.switch_dev(AbmSwitch::kSD).set_fault(SwitchFault::kNone);
}

TEST(AbmLint, DrivingDuringProbeIsFlagged) {
    AbmHarness h;
    h.abm.apply(Instruction::kProbe);
    h.abm.switch_dev(AbmSwitch::kSH).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-drive-during-probe")) << r.to_text();
}

TEST(AbmLint, ShSlCrowbarIsFlagged) {
    AbmHarness h;
    h.abm.apply(Instruction::kExtest);
    h.abm.switch_dev(AbmSwitch::kSH).set_fault(SwitchFault::kStuckClosed);
    h.abm.switch_dev(AbmSwitch::kSL).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-sh-sl-short")) << r.to_text();
}

TEST(AbmLint, SdNotIsolatedInExtest) {
    AbmHarness h;
    h.abm.apply(Instruction::kExtest);
    h.abm.switch_dev(AbmSwitch::kSD).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-sd-not-isolated")) << r.to_text();
}

TEST(AbmLint, BothBusesIsAWarning) {
    AbmHarness h;
    h.abm.apply(Instruction::kProbe);
    h.abm.switch_dev(AbmSwitch::kSB1).set_fault(SwitchFault::kStuckClosed);
    h.abm.switch_dev(AbmSwitch::kSB2).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-both-buses")) << r.to_text();
    EXPECT_FALSE(r.has_errors()) << r.to_text();
}

TEST(AbmLint, TestSwitchClosedInMissionMode) {
    AbmHarness h;
    h.abm.apply(Instruction::kIdcode);
    h.abm.switch_dev(AbmSwitch::kSB1).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_abm_state(h.abm, r);
    EXPECT_TRUE(has_rule(r, "abm-mode-mismatch")) << r.to_text();
}

TEST(TbicLint, HealthyPatternsAreClean) {
    TbicHarness h;
    h.tbic.apply(Instruction::kProbe);
    for (const jtag::TbicPattern p :
         {jtag::TbicPattern::kIsolate, jtag::TbicPattern::kConnect,
          jtag::TbicPattern::kCharHighLow, jtag::TbicPattern::kCharLowHigh}) {
        h.tbic.set_pattern(p);
        Report r;
        EXPECT_EQ(lint_tbic_state(h.tbic, r), 0u) << r.to_text();
    }
    // Mission mode isolates everything.
    h.tbic.apply(Instruction::kIdcode);
    Report r;
    EXPECT_EQ(lint_tbic_state(h.tbic, r), 0u) << r.to_text();
}

TEST(TbicLint, NotIsolatedInMissionMode) {
    TbicHarness h;
    h.tbic.apply(Instruction::kIdcode);
    h.tbic.switch_dev(TbicSwitch::kS1).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_tbic_state(h.tbic, r);
    EXPECT_TRUE(has_rule(r, "tbic-not-isolated")) << r.to_text();
}

TEST(TbicLint, VhVlShortThroughAt1) {
    TbicHarness h;
    h.tbic.apply(Instruction::kProbe);
    h.tbic.set_pattern(jtag::TbicPattern::kCharHighLow);  // S3 + S6
    h.tbic.switch_dev(TbicSwitch::kS4).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_tbic_state(h.tbic, r);
    EXPECT_TRUE(has_rule(r, "tbic-vh-vl-short")) << r.to_text();
}

TEST(TbicLint, AtapPinsShortedThroughRail) {
    TbicHarness h;
    h.tbic.apply(Instruction::kProbe);
    h.tbic.set_pattern(jtag::TbicPattern::kCharHighLow);  // S3 + S6
    h.tbic.switch_dev(TbicSwitch::kS5).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_tbic_state(h.tbic, r);
    EXPECT_TRUE(has_rule(r, "tbic-at-short")) << r.to_text();
}

TEST(TbicLint, DriveWhileConnectedIsAWarning) {
    TbicHarness h;
    h.tbic.apply(Instruction::kProbe);
    h.tbic.set_pattern(jtag::TbicPattern::kConnect);  // S1 + S2
    h.tbic.switch_dev(TbicSwitch::kS3).set_fault(SwitchFault::kStuckClosed);
    Report r;
    lint_tbic_state(h.tbic, r);
    EXPECT_TRUE(has_rule(r, "tbic-drive-while-connect")) << r.to_text();
}

// --- select-word rules ------------------------------------------------------

SelectBusModel test_model() {
    SelectBusModel model;
    model.name = "mux";
    model.power_bit = 6;
    model.routes = {
        {0, 1, true, "out+ -> AB1"}, {1, 2, true, "out- -> AB2"}, {2, 1, true, "Fdet -> AB1"},
        {3, 2, false, "tuneP <- AB2"}, {4, 2, false, "tuneF <- AB2"}, {5, 1, false, "Ibias <- AB1"},
    };
    return model;
}

TEST(SelectLint, MeasurementWordsAreClean) {
    const SelectBusModel model = test_model();
    for (const std::uint64_t word : {
             (1u << 0) | (1u << 1) | (1u << 6),  // power measurement
             (1u << 2) | (1u << 6),              // frequency measurement
             (1u << 4) | (1u << 6),              // tunef programming
             0u,                                 // everything off
         }) {
        Report r;
        EXPECT_EQ(lint_select_word(model, word, r), 0u) << r.to_text();
    }
}

TEST(SelectLint, TwoDriversOneBusConflict) {
    Report r;
    lint_select_word(test_model(), (1u << 0) | (1u << 2) | (1u << 6), r);
    EXPECT_TRUE(has_rule(r, "select-bus-conflict")) << r.to_text();
}

TEST(SelectLint, DriverAndLoadSameBusConflict) {
    Report r;
    lint_select_word(test_model(), (1u << 0) | (1u << 5) | (1u << 6), r);
    EXPECT_TRUE(has_rule(r, "select-bus-conflict")) << r.to_text();
}

TEST(SelectLint, DoubleLoadIsAWarning) {
    Report r;
    lint_select_word(test_model(), (1u << 3) | (1u << 4) | (1u << 6), r);
    EXPECT_TRUE(has_rule(r, "select-double-load")) << r.to_text();
    EXPECT_FALSE(r.has_errors());
}

TEST(SelectLint, UnpoweredDriverIsAWarning) {
    Report r;
    lint_select_word(test_model(), (1u << 0) | (1u << 1), r);
    EXPECT_TRUE(has_rule(r, "select-unpowered")) << r.to_text();
}

// --- scan-program rules -----------------------------------------------------

TEST(ScanLint, WellFormedProgramIsClean) {
    ScanProgram p;
    p.reset()
        .scan_ir(Instruction::kIdcode)
        .scan_dr(32)
        .scan_ir(Instruction::kProbe)
        .scan_dr(11)
        .run_test(4)
        .scan_ir(Instruction::kBypass)
        .scan_dr(1);
    Report r;
    EXPECT_EQ(lint_scan_program(p, r, ScanLintOptions::with_boundary_length(11)), 0u)
        << r.to_text();
}

TEST(ScanLint, MissingResetIsWarnedOnce) {
    ScanProgram p;
    p.scan_ir(Instruction::kIdcode).scan_dr(32);
    Report r;
    lint_scan_program(p, r, ScanLintOptions::with_boundary_length(11));
    std::size_t count = 0;
    for (const Diagnostic& d : r.diagnostics()) {
        if (d.rule == "scan-missing-reset") ++count;
    }
    EXPECT_EQ(count, 1u) << r.to_text();
}

TEST(ScanLint, ScanFromUnstableState) {
    ScanProgram p;
    p.reset().move_to(TapState::kExit1Dr).scan_dr(32);
    Report r;
    lint_scan_program(p, r);
    EXPECT_TRUE(has_rule(r, "scan-from-unstable-state")) << r.to_text();
}

TEST(ScanLint, DrLengthMismatch) {
    ScanProgram p;
    p.reset().scan_ir(Instruction::kBypass).scan_dr(8);
    Report r;
    lint_scan_program(p, r, ScanLintOptions::with_boundary_length(11));
    EXPECT_TRUE(has_rule(r, "scan-dr-length")) << r.to_text();
}

TEST(ScanLint, ZeroLengthDrScan) {
    ScanProgram p;
    p.reset().scan_dr(0);
    Report r;
    lint_scan_program(p, r);
    EXPECT_TRUE(has_rule(r, "scan-dr-length")) << r.to_text();
}

TEST(ScanLint, UnknownOpcodeFallsBackToBypassLength) {
    // Unknown IR content decodes to BYPASS per the standard, so a 1-bit DR
    // scan is the correct follow-up and anything else is flagged.
    ScanProgram p;
    p.reset().scan_ir(std::uint8_t{0x5A}).scan_dr(1);
    Report r;
    EXPECT_EQ(lint_scan_program(p, r, ScanLintOptions::with_boundary_length(11)), 0u)
        << r.to_text();
}

TEST(ScanLint, StrayShiftOnRawTmsMove) {
    // From Run-Test/Idle: 1 -> Select-DR, 0 -> Capture-DR, 0 -> Shift-DR.
    ScanProgram p;
    p.reset().move_to(TapState::kRunTestIdle).tms_path({true, false, false, true, true});
    Report r;
    lint_scan_program(p, r);
    EXPECT_TRUE(has_rule(r, "scan-stray-shift")) << r.to_text();
}

TEST(ScanLint, UnstableEndpoint) {
    ScanProgram p;
    p.reset().move_to(TapState::kShiftDr);
    Report r;
    lint_scan_program(p, r);
    EXPECT_TRUE(has_rule(r, "scan-unstable-endpoint")) << r.to_text();
}

}  // namespace
}  // namespace rfabm::lint
