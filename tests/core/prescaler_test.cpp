#include "core/prescaler.hpp"

#include <gtest/gtest.h>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"
#include "rf/units.hpp"

namespace rfabm::core {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::TransientEngine;
using circuit::TransientOptions;
using circuit::VSource;
using circuit::Waveform;

struct PrescalerBench {
    explicit PrescalerBench(double hysteresis = 0.45, unsigned divide = 8) {
        in = ckt.node("in");
        src = &ckt.add<VSource>("VIN", in, kGround, Waveform::dc(0.0));
        ckt.add<Resistor>("RT", in, kGround, 50.0);
        presc = std::make_unique<Prescaler>("P", domain, in, kGround, hysteresis, divide);
    }

    /// Count rising edges of the divided output over @p cycles RF cycles.
    int divided_edges(double dbm, double hz, int cycles) {
        // The source drives the 50-ohm termination directly (no series source
        // resistor), so the pin peak equals the EMF.
        src->set_waveform(Waveform::sine(0.0, rf::dbm_to_peak_volts(dbm), hz));
        TransientOptions topts;
        topts.dt = 1.0 / hz / 24.0;
        TransientEngine engine(ckt, topts);
        engine.add_observer(&domain);
        engine.init();
        int edges = 0;
        bool prev = domain.value(presc->output());
        const double t_end = cycles / hz;
        while (engine.time() < t_end) {
            engine.step();
            const bool now = domain.value(presc->output());
            if (now && !prev) ++edges;
            prev = now;
        }
        return edges;
    }

    Circuit ckt;
    rfabm::mixed::DigitalDomain domain;
    NodeId in{};
    VSource* src = nullptr;
    std::unique_ptr<Prescaler> presc;
};

TEST(Prescaler, DividesByEight) {
    PrescalerBench bench;
    // 80 RF cycles at a strong drive -> 10 divided rising edges.
    const int edges = bench.divided_edges(10.0, 1.5e9, 80);
    EXPECT_NEAR(edges, 10, 1);
}

TEST(Prescaler, DivideRatioConfigurable) {
    PrescalerBench bench(0.45, 4);
    const int edges = bench.divided_edges(10.0, 1.5e9, 80);
    EXPECT_NEAR(edges, 20, 1);
    EXPECT_EQ(bench.presc->divide_ratio(), 4u);
}

TEST(Prescaler, WeakSignalBelowHysteresisDoesNotToggle) {
    PrescalerBench bench;
    // 0 dBm -> 0.316 V peak < 0.45 V hysteresis: dead.
    EXPECT_EQ(bench.divided_edges(0.0, 1.5e9, 60), 0);
}

TEST(Prescaler, SensitivityThresholdNearPlusFiveDbm) {
    // The paper: frequency measurements need at least +5 dBm.  The bare
    // comparator threshold (0.45 V peak) sits near +3 dBm; the full chip adds
    // switch/termination losses that bring the specification to +5 dBm.
    PrescalerBench dead;
    EXPECT_EQ(dead.divided_edges(2.0, 1.5e9, 60), 0);
    PrescalerBench alive;
    EXPECT_GT(alive.divided_edges(5.0, 1.5e9, 60), 4);
}

TEST(Prescaler, WorksAcrossTheBand) {
    for (double ghz : {1.0, 1.5, 2.0}) {
        PrescalerBench bench;
        const int edges = bench.divided_edges(8.0, ghz * 1e9, 80);
        EXPECT_NEAR(edges, 10, 1) << ghz << " GHz";
    }
}

}  // namespace
}  // namespace rfabm::core
