// Standalone (no 1149.4 wrapper) validation of the Fig. 2 power detector
// against the paper's eq. (1) and its qualitative properties.
#include "core/power_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/measure.hpp"
#include "rf/units.hpp"

namespace rfabm::core {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::SettleOptions;
using circuit::TransientEngine;
using circuit::TransientOptions;
using circuit::VSource;
using circuit::Waveform;

/// Test bench: detector + RF source + supply + direct tuning source.
struct PdetBench {
    explicit PdetBench(double vdd_v = 2.5, PowerDetectorParams params = {}) {
        vdd = ckt.node("vdd");
        rf = ckt.node("rf");
        tune = ckt.node("tune");
        ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(vdd_v));
        rf_src = &ckt.add<VSource>("VRF", rf, kGround, Waveform::dc(0.0));
        tune_src = &ckt.add<VSource>("VT", tune, kGround, Waveform::dc(0.0));
        det = std::make_unique<PowerDetector>("PD", ckt, vdd, rf, tune, params);
    }

    /// Find the tuning voltage that puts the gate @p delta_v above threshold.
    double tune_for_gate_offset(double delta_v) {
        double lo = -1.0;
        double hi = 2.0;
        for (int i = 0; i < 40; ++i) {
            const double mid = 0.5 * (lo + hi);
            tune_src->set_dc(mid);
            const auto op = circuit::solve_dc(ckt);
            const double offset = op.solution.v(det->gate()) - det->q1().vth();
            if (offset > delta_v) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        tune_src->set_dc(0.5 * (lo + hi));
        return 0.5 * (lo + hi);
    }

    /// Settled Vout = VoutN - VoutP for a tone of peak amplitude @p a at @p hz.
    double vout_for(double a, double hz = 1.5e9) {
        rf_src->set_waveform(Waveform::sine(0.0, a, hz));
        TransientOptions topts;
        topts.dt = 1.0 / hz / 24.0;
        TransientEngine engine(ckt, topts);
        SettleOptions sopts;
        sopts.period = 1.0 / hz;
        sopts.cycles_per_window = 12;
        const auto r =
            circuit::settle_cycle_average(engine, det->vout_n(), det->vout_p(), sopts);
        return r.value;
    }

    Circuit ckt;
    NodeId vdd{}, rf{}, tune{};
    VSource* rf_src = nullptr;
    VSource* tune_src = nullptr;
    std::unique_ptr<PowerDetector> det;
};

TEST(PowerDetector, AnalyticModelMatchesEq1) {
    PowerDetectorParams p;
    Circuit ckt;
    PowerDetector det("PD", ckt, ckt.node("vdd"), ckt.node("rf"), ckt.node("t"), p);
    const double a = 0.3;
    const double beta1 = p.kp * p.q1_w / p.q1_l;
    const double beta2 = p.kp * p.q2_w / p.q2_l;
    const double idc = beta1 * a * a / 8.0;
    EXPECT_NEAR(det.analytic_idc(a), idc, 1e-12);
    EXPECT_NEAR(det.analytic_vout(a), idc * p.r4 + std::sqrt(2.0 * idc / beta2), 1e-12);
}

TEST(PowerDetector, ZeroSignalZeroOutputAtThresholdBias) {
    PdetBench bench;
    bench.tune_for_gate_offset(0.0);
    const auto op = circuit::solve_dc(bench.ckt);
    const double vdiff = op.solution.v(bench.det->vout_n()) - op.solution.v(bench.det->vout_p());
    EXPECT_LT(std::fabs(vdiff), 5e-3);
}

TEST(PowerDetector, GateBiasTracksThresholdOverTemperature) {
    // The threshold-extractor bias is the paper's enabler for one-time DC
    // calibration: gate-vs-threshold must move far less than threshold itself.
    PdetBench bench;
    bench.tune_for_gate_offset(0.02);
    auto gate_offset = [&] {
        const auto op = circuit::solve_dc(bench.ckt);
        return op.solution.v(bench.det->gate()) - bench.det->q1().vth();
    };
    const double nominal = gate_offset();
    bench.ckt.set_temperature_c(-10.0);
    const double cold = gate_offset();
    bench.ckt.set_temperature_c(70.0);
    const double hot = gate_offset();
    bench.ckt.set_temperature_c(27.0);
    const double vth_swing = 0.0015 * 80.0;  // untracked threshold would move 120 mV
    EXPECT_LT(std::fabs(cold - nominal), vth_swing / 4.0);
    EXPECT_LT(std::fabs(hot - nominal), vth_swing / 4.0);
}

TEST(PowerDetector, TransientMatchesAnalyticMidRange) {
    PdetBench bench;
    bench.tune_for_gate_offset(0.0);  // eq. (1) assumes gate exactly at VT
    // -6 dBm: A = 0.158 V.  Mid-range, away from onset and compression.
    const double a = rf::dbm_to_peak_volts(-6.0);
    const double measured = bench.vout_for(a);
    const double predicted = bench.det->analytic_vout(a);
    EXPECT_NEAR(measured, predicted, predicted * 0.25);
}

TEST(PowerDetector, SquareLawScalingInLinearRegion) {
    // Doubling the amplitude (+6 dB power) should roughly quadruple IDC; with
    // the sqrt load term the differential output grows by 2x..4x.
    PdetBench bench;
    bench.tune_for_gate_offset(0.0);
    const double v1 = bench.vout_for(0.1);
    const double v2 = bench.vout_for(0.2);
    EXPECT_GT(v2 / v1, 1.9);
    EXPECT_LT(v2 / v1, 4.1);
}

class PdetMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(PdetMonotonic, OutputStrictlyIncreasesWithPower) {
    PdetBench bench;
    bench.tune_for_gate_offset(0.015);
    const double hz = GetParam();
    double prev = -1.0;
    for (double dbm = -20.0; dbm <= 6.0; dbm += 4.0) {
        const double v = bench.vout_for(rf::dbm_to_peak_volts(dbm), hz);
        EXPECT_GT(v, prev) << "at " << dbm << " dBm";
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Carriers, PdetMonotonic, ::testing::Values(1.2e9, 1.5e9, 1.8e9),
                         [](const auto& info) {
                             return "f" + std::to_string(static_cast<int>(info.param / 1e8));
                         });

TEST(PowerDetector, DifferentialOutputRejectsSupplyShift) {
    // Vout(diff) must move far less with VDD than the single-ended outputs.
    auto vout_at = [](double vdd_v) {
        PdetBench bench(vdd_v);
        bench.tune_for_gate_offset(0.015);
        const auto op = circuit::solve_dc(bench.ckt);
        const double n = op.solution.v(bench.det->vout_n());
        const double p = op.solution.v(bench.det->vout_p());
        return std::pair{n - p, n};
    };
    const auto [diff_lo, single_lo] = vout_at(2.25);
    const auto [diff_hi, single_hi] = vout_at(2.75);
    EXPECT_LT(std::fabs(diff_hi - diff_lo), 0.2 * std::fabs(single_hi - single_lo));
}

TEST(PowerDetector, BelowThresholdBiasKillsSensitivity) {
    // Gate well below VT: small signals cannot turn Q1 on -> tiny output.
    PdetBench bench;
    bench.tune_for_gate_offset(-0.08);
    const double v = bench.vout_for(0.05);  // -12 dBm
    EXPECT_LT(v, 2e-3);
}

TEST(PowerDetector, ProcessKpSpreadScalesOutput) {
    PdetBench nom;
    nom.tune_for_gate_offset(0.015);
    const double v_nom = nom.vout_for(0.2);

    PdetBench fast;
    circuit::ProcessCorner corner;
    corner.nmos_kp_factor = 1.15;
    fast.ckt.set_process(corner);
    fast.tune_for_gate_offset(0.015);
    const double v_fast = fast.vout_for(0.2);
    EXPECT_GT(v_fast, v_nom * 1.02);
}

TEST(PowerDetector, RippleSuppressedByLowPass) {
    // After settling, the instantaneous output ripple is much smaller than
    // the DC level (R4*C2 low-pass doing its job).
    PdetBench bench;
    bench.tune_for_gate_offset(0.015);
    const double hz = 1.5e9;
    bench.rf_src->set_waveform(Waveform::sine(0.0, 0.3, hz));
    TransientOptions topts;
    topts.dt = 1.0 / hz / 24.0;
    TransientEngine engine(bench.ckt, topts);
    engine.init();
    engine.run_for(200e-9);
    double lo = 1e9;
    double hi = -1e9;
    const double t_end = engine.time() + 2.0 / hz;
    while (engine.time() < t_end) {
        engine.step();
        const double v = engine.v(bench.det->vout_p());
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double dc_drop = 2.5 - 0.5 * (lo + hi);
    EXPECT_LT(hi - lo, 0.15 * dc_drop);
}

}  // namespace
}  // namespace rfabm::core
