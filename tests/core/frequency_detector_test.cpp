// Standalone validation of the Fig. 3 frequency-to-voltage converter against
// the paper's eq. (2): Vc = Ic / (2 * C1 * f).
#include "core/frequency_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/measure.hpp"

namespace rfabm::core {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::PulseWave;
using circuit::Resistor;
using circuit::SettleOptions;
using circuit::TransientEngine;
using circuit::TransientOptions;
using circuit::VSource;
using circuit::Waveform;

/// Bench: a clean square-wave clock drives the FVC directly (no prescaler).
struct FvcBench {
    explicit FvcBench(FrequencyDetectorParams params = {}, double vtune = 2.0) {
        const NodeId clk_node = ckt.node("clk");
        const NodeId tune = ckt.node("tune");
        clk_src = &ckt.add<VSource>("VCLK", clk_node, kGround, Waveform::dc(0.0));
        ckt.add<Resistor>("RCLK", clk_node, kGround, 1e3);
        ckt.add<VSource>("VTUNE", tune, kGround, Waveform::dc(vtune));
        const auto clk = domain.signal("clk");
        domain.add_comparator(clk_node, kGround, 0.5, 0.1, clk);
        det = std::make_unique<FrequencyDetector>("FVC", ckt, domain, tune, clk, params);
        domain.settle_bindings();
    }

    /// Run at clock frequency @p hz until the output settles; return Vout.
    double vout_at(double hz, double dt_divisor = 200.0) {
        PulseWave pw;
        pw.v1 = 0.0;
        pw.v2 = 1.0;
        pw.rise = 1e-11;
        pw.fall = 1e-11;
        pw.period = 1.0 / hz;
        pw.width = 0.5 / hz - 2e-11;
        clk_src->set_waveform(Waveform::pulse(pw));
        TransientOptions topts;
        topts.dt = 1.0 / hz / dt_divisor;
        TransientEngine engine(ckt, topts);
        engine.add_observer(&domain);
        SettleOptions sopts;
        sopts.period = 1.0 / hz;
        sopts.cycles_per_window = 8;
        sopts.abs_tol = 1e-4;
        const auto r = circuit::settle_cycle_average(engine, det->vout(), kGround, sopts);
        settled = r.settled;
        return r.value;
    }

    Circuit ckt;
    rfabm::mixed::DigitalDomain domain;
    VSource* clk_src = nullptr;
    std::unique_ptr<FrequencyDetector> det;
    bool settled = false;
};

TEST(FrequencyDetector, AnalyticEq2) {
    Circuit ckt;
    rfabm::mixed::DigitalDomain domain;
    FrequencyDetectorParams p;
    FrequencyDetector det("F", ckt, domain, ckt.node("t"), domain.signal("c"), p);
    // Vc = I/(2 C1 f): 100 uA, 200 fF, 125 MHz -> 2.0 V.
    EXPECT_NEAR(det.analytic_vout(125e6, 2.0), 2.0, 1e-9);
    EXPECT_NEAR(det.analytic_vout(250e6, 2.0), 1.0, 1e-9);
    // Linear in the tune voltage.
    EXPECT_NEAR(det.analytic_vout(125e6, 1.0), 1.0, 1e-9);
}

class FvcFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(FvcFrequencySweep, MatchesEq2WithinFivePercent) {
    FvcBench bench;
    const double hz = GetParam();
    const double v = bench.vout_at(hz);
    EXPECT_TRUE(bench.settled);
    const double expected = bench.det->analytic_vout(hz, 2.0);
    EXPECT_NEAR(v, expected, expected * 0.05) << "f = " << hz;
}

INSTANTIATE_TEST_SUITE_P(DividedBand, FvcFrequencySweep,
                         ::testing::Values(125e6, 150e6, 187.5e6, 220e6, 250e6),
                         [](const auto& info) {
                             return "f" + std::to_string(static_cast<int>(info.param / 1e6)) +
                                    "MHz";
                         });

TEST(FrequencyDetector, OutputInverselyProportionalToFrequency) {
    FvcBench bench;
    const double v1 = bench.vout_at(125e6);
    const double v2 = bench.vout_at(250e6);
    EXPECT_NEAR(v1 / v2, 2.0, 0.1);
}

TEST(FrequencyDetector, OutputProportionalToTuneVoltage) {
    FvcBench lo(FrequencyDetectorParams{}, 1.5);
    FvcBench hi(FrequencyDetectorParams{}, 2.5);
    const double v_lo = lo.vout_at(187.5e6);
    const double v_hi = hi.vout_at(187.5e6);
    EXPECT_NEAR(v_hi / v_lo, 2.5 / 1.5, 0.08);
}

TEST(FrequencyDetector, TunedSourceProcessAndTemperature) {
    Circuit ckt;
    auto& src = ckt.add<TunedCurrentSource>("I", ckt.node("o"), ckt.node("t"), 20e3, 1e-3);
    EXPECT_NEAR(src.current_for(2.0), 100e-6, 1e-12);
    circuit::ProcessCorner corner;
    corner.res_factor = 1.1;
    src.apply_process(corner);
    EXPECT_NEAR(src.r_eff(), 22e3, 1e-6);
    src.set_temperature(343.15);  // +43 K
    EXPECT_NEAR(src.r_eff(), 22e3 * (1.0 + 1e-3 * 43.0), 1e-3);
}

TEST(FrequencyDetector, RampChargesOnlyDuringHighPhase) {
    FvcBench bench;
    PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = 1.0;
    pw.rise = 1e-11;
    pw.fall = 1e-11;
    pw.period = 8e-9;  // 125 MHz
    pw.width = 4e-9 - 2e-11;
    bench.clk_src->set_waveform(Waveform::pulse(pw));
    TransientOptions topts;
    topts.dt = 8e-9 / 200.0;
    TransientEngine engine(bench.ckt, topts);
    engine.add_observer(&bench.domain);
    engine.init();
    engine.run_for(30e-9);  // settle into periodic operation
    // Sample the ramp top just before a falling edge: should be near
    // I*(T/2)/C1 = 2.0 V.
    double ramp_max = 0.0;
    engine.run_for(16e-9);
    const double t_end = engine.time() + 8e-9;
    while (engine.time() < t_end) {
        engine.step();
        ramp_max = std::max(ramp_max, engine.v(bench.det->ramp()));
    }
    EXPECT_NEAR(ramp_max, 2.0, 0.15);
}

TEST(FrequencyDetector, ClippedAboveBandStillMonotone) {
    // Far above the design band the low half-period is shorter than the
    // transfer+reset windows; the output degrades but must not increase.
    FvcBench bench;
    const double v_band = bench.vout_at(250e6);
    const double v_high = bench.vout_at(450e6, 400.0);
    EXPECT_LT(v_high, v_band);
}

TEST(FrequencyDetector, LcbSequencesPhases) {
    // Drive the LCB directly and verify charge -> transfer -> reset ordering.
    rfabm::mixed::DigitalDomain domain;
    const auto clk = domain.signal("clk");
    const auto charge = domain.signal("charge");
    const auto transfer = domain.signal("transfer");
    const auto reset = domain.signal("reset");
    auto& lcb = domain.add_block<FvcLcb>(clk, charge, transfer, reset, 0.9e-9, 0.9e-9);
    (void)lcb;

    Circuit ckt;  // a dummy circuit for the observer interface
    ckt.add<Resistor>("R", ckt.node("x"), kGround, 1.0);
    ckt.finalize();
    circuit::Solution sol(ckt.num_nodes(), ckt.num_branches());

    double t = 0.0;
    auto tick = [&](bool clk_value) {
        domain.set(clk, clk_value);
        // Re-run block evaluation via on_step (comparators absent).
        domain.on_step(t, sol, ckt);
        t += 0.25e-9;
    };
    tick(true);  // rising edge -> charge
    EXPECT_TRUE(domain.value(charge));
    tick(true);
    EXPECT_TRUE(domain.value(charge));
    tick(false);  // falling edge -> transfer window
    EXPECT_FALSE(domain.value(charge));
    EXPECT_TRUE(domain.value(transfer));
    // Transfer window (0.9 ns) elapses within 4 ticks of 0.25 ns.
    tick(false);
    tick(false);
    tick(false);
    tick(false);
    EXPECT_FALSE(domain.value(transfer));
    EXPECT_TRUE(domain.value(reset));
    // Reset window elapses, then idle.
    for (int i = 0; i < 5; ++i) tick(false);
    EXPECT_FALSE(domain.value(reset));
    EXPECT_FALSE(domain.value(charge));
}

}  // namespace
}  // namespace rfabm::core
