// DC-calibration procedure tests: convergence, determinism, and the
// paper's central claim that calibration absorbs process shifts.
#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/process.hpp"
#include "rf/sweep.hpp"

namespace rfabm::core {
namespace {

TEST(Calibration, TunePHitsOffsetTarget) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    CalibrationOptions opts;
    const TunePResult r = calibrate_tune_p(ctl, opts);
    EXPECT_LE(std::fabs(r.vout_offset - opts.target_offset_v), 12e-3);
    EXPECT_GE(r.iterations, 5);
    // The result respects the DAC grid.
    const double steps = r.bench_volts / opts.dac_step;
    EXPECT_NEAR(steps, std::round(steps), 1e-6);
}

TEST(Calibration, TunePAbsorbsThresholdShift) {
    // A die with +45 mV NMOS VT shift must calibrate to a different DAC code;
    // the tracking bias absorbs ~90% so the shift at the DAC is small but
    // nonzero and in the right direction.
    CalibrationOptions opts;
    auto run = [&](double vt_shift) {
        circuit::ProcessCorner corner;
        corner.nmos_vt_shift = vt_shift;
        RfAbmChip chip{RfAbmChipConfig{}, nominal_conditions(), corner};
        MeasurementController ctl(chip);
        ctl.open_session();
        return calibrate_tune_p(ctl, opts);
    };
    const TunePResult fast = run(-0.045);
    const TunePResult slow = run(+0.045);
    // Both still hit the target after calibration.
    EXPECT_LE(std::fabs(fast.vout_offset - opts.target_offset_v), 12e-3);
    EXPECT_LE(std::fabs(slow.vout_offset - opts.target_offset_v), 12e-3);
}

TEST(Calibration, TuneFHitsNominalTarget) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    const TuneFResult r = calibrate_tune_f(ctl);
    EXPECT_NEAR(r.vout, r.target, 0.02);
    EXPECT_GT(r.bench_volts, 1.0);
    EXPECT_LT(r.bench_volts, 3.0);
}

TEST(Calibration, TuneFAbsorbsBiasResistorSpread) {
    // Rbias +10% cuts Ic by ~10%; the trim must land ~10% higher.
    CalibrationOptions opts;
    auto run = [&](double res_factor) {
        circuit::ProcessCorner corner;
        corner.res_factor = res_factor;
        RfAbmChip chip{RfAbmChipConfig{}, nominal_conditions(), corner};
        MeasurementController ctl(chip);
        ctl.open_session();
        return calibrate_tune_f(ctl, opts);
    };
    const TuneFResult nom = run(1.0);
    const TuneFResult slow = run(1.1);
    EXPECT_GT(slow.bench_volts, nom.bench_volts * 1.05);
    EXPECT_NEAR(slow.vout, slow.target, 0.03);
}

TEST(Calibration, CurvesAreMonotone) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    dc_calibrate(ctl);
    const auto pcurve = acquire_power_curve(ctl, {-18.0, -12.0, -6.0, 0.0, 6.0}, 1.5e9);
    EXPECT_TRUE(pcurve.increasing());
    const auto fcurve = acquire_frequency_curve(ctl, {1.0, 1.5, 2.0}, 6.0);
    EXPECT_FALSE(fcurve.increasing());  // V ~ 1/f
}

TEST(Calibration, RoundTripThroughCurves) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    dc_calibrate(ctl);
    const auto pcurve = acquire_power_curve(ctl, rfabm::rf::arange(-18.0, 6.0, 2.0), 1.5e9);
    // Measuring one of the calibration powers must reproduce it closely.
    chip.set_rf(-8.0, 1.5e9);
    const PowerMeasurement m = ctl.measure_power(pcurve);
    EXPECT_NEAR(m.dbm, -8.0, 0.25);
}

}  // namespace
}  // namespace rfabm::core
