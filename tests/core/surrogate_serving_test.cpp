// Two-tier serving through the measurement controller: an in-envelope hit is
// answered entirely by the surrogate surface (the transient solver is
// PROVABLY untouched — its Newton-iteration odometer does not move), while a
// miss or out-of-envelope query provably falls back to the full solve, whose
// settled result trains the surface for the next query.
#include "core/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/curve.hpp"
#include "rf/surrogate/store.hpp"

namespace rfabm::core {
namespace {

using rf::surrogate::Decision;
using rf::surrogate::StoreOptions;
using rf::surrogate::SurrogateStore;

class SurrogateServingFixture : public ::testing::Test {
  protected:
    static constexpr double kFreqHz = 1.5e9;

    static void SetUpTestSuite() {
        StoreOptions sopts;
        sopts.refit_min_samples = 8;  // learn from a short training sweep
        sopts.max_bound = 0.0;  // budget semantics are covered by surrogate_test
        store_ = new SurrogateStore(sopts);

        chip_ = new RfAbmChip{RfAbmChipConfig{}};
        MeasureOptions mopts;
        mopts.surrogate.store = store_;
        mopts.surrogate.die = 0xD1E;
        mopts.surrogate.corner = 0xC0E;
        controller_ = new MeasurementController(*chip_, mopts);
        controller_->open_session();

        // The test only exercises serving semantics, so a synthetic monotone
        // dBm -> V curve is enough to convert readings; accuracy against the
        // applied power is covered by measurement_test.cpp.
        curve_ = new rfabm::rf::MonotoneCurve({{-20.0, 0.0}, {7.0, 1.0}});

        // Training sweep: every point extends the fitted envelope, so each
        // one goes to the full solver and is observed back into the store.
        for (int i = 0; i < 10; ++i) {
            const double dbm = -10.0 + i;
            chip_->set_rf(dbm, kFreqHz);
            const PowerMeasurement m = controller_->measure_power(*curve_);
            ASSERT_TRUE(m.settled);
            ASSERT_FALSE(m.from_surrogate);
            if (dbm == -6.0) trained_vout_ = m.vout;
        }
    }

    static void TearDownTestSuite() {
        delete curve_;
        delete controller_;
        delete chip_;
        delete store_;
        curve_ = nullptr;
        controller_ = nullptr;
        chip_ = nullptr;
        store_ = nullptr;
    }

    std::uint64_t solver_odometer() const { return chip_->engine().newton_iterations(); }

    static SurrogateStore* store_;
    static RfAbmChip* chip_;
    static MeasurementController* controller_;
    static rfabm::rf::MonotoneCurve* curve_;
    static double trained_vout_;
};

SurrogateStore* SurrogateServingFixture::store_ = nullptr;
RfAbmChip* SurrogateServingFixture::chip_ = nullptr;
MeasurementController* SurrogateServingFixture::controller_ = nullptr;
rfabm::rf::MonotoneCurve* SurrogateServingFixture::curve_ = nullptr;
double SurrogateServingFixture::trained_vout_ = 0.0;

TEST_F(SurrogateServingFixture, TrainingSweepPopulatedTheStore) {
    EXPECT_EQ(store_->surfaces(), 1u);
    EXPECT_GE(store_->counters().observed, 10u);
    EXPECT_GE(store_->counters().refits, 1u);
}

TEST_F(SurrogateServingFixture, InEnvelopeHitNeverTouchesTheSolver) {
    chip_->set_rf(-6.0, kFreqHz);  // revisit a trained operating point
    const std::uint64_t before = solver_odometer();
    const PowerMeasurement m = controller_->measure_power(*curve_);
    EXPECT_EQ(solver_odometer(), before);  // zero Newton iterations spent
    EXPECT_TRUE(m.from_surrogate);
    EXPECT_TRUE(m.settled);
    EXPECT_EQ(controller_->last_surrogate_decision(), Decision::kHit);
    EXPECT_GT(m.surrogate_bound, 0.0);
    // Served value agrees with the recorded full solve within the bound.
    EXPECT_LE(std::fabs(m.vout - trained_vout_), m.surrogate_bound);
}

TEST_F(SurrogateServingFixture, OutOfEnvelopeProvablyFallsBackToFullSolve) {
    chip_->set_rf(5.0, kFreqHz);  // beyond the trained power range
    const std::uint64_t before = solver_odometer();
    const PowerMeasurement m = controller_->measure_power(*curve_);
    EXPECT_FALSE(m.from_surrogate);
    EXPECT_EQ(controller_->last_surrogate_decision(), Decision::kOutOfEnvelope);
    EXPECT_GT(solver_odometer(), before);  // the full transient solve ran
    EXPECT_TRUE(m.settled);
}

TEST_F(SurrogateServingFixture, CheckedPipelineServesHitsBeforeAnyCheck) {
    chip_->set_rf(-6.0, kFreqHz);
    const std::uint64_t before = solver_odometer();
    const PowerMeasurement m = controller_->measure_power_checked(*curve_);
    EXPECT_EQ(solver_odometer(), before);
    EXPECT_TRUE(m.from_surrogate);
    EXPECT_EQ(m.diag.status, MeasurementStatus::kOk);
    EXPECT_EQ(m.diag.retries, 0);
    EXPECT_EQ(m.diag.detail, "served by surrogate surface");
}

TEST_F(SurrogateServingFixture, UnboundControllerIsUntouchedByTheTier) {
    // A controller without a store behaves exactly as before the surrogate
    // existed: full solve, from_surrogate never set.
    MeasurementController plain(*chip_);
    plain.open_session();
    chip_->set_rf(-6.0, kFreqHz);
    const std::uint64_t before = solver_odometer();
    const PowerMeasurement m = plain.measure_power(*curve_);
    EXPECT_FALSE(m.from_surrogate);
    EXPECT_EQ(m.surrogate_bound, 0.0);
    EXPECT_GT(solver_odometer(), before);
    EXPECT_EQ(plain.last_surrogate_decision(), Decision::kMiss);
}

}  // namespace
}  // namespace rfabm::core
