#include "core/mux4.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "jtag/serial_bus.hpp"

namespace rfabm::core {
namespace {

using circuit::Circuit;
using rfabm::jtag::SerialSelectBus;

struct MuxFixture : public ::testing::Test {
    MuxFixture() : bus(kSelectWidth) {
        sig.out_plus = ckt.node("outp");
        sig.out_minus = ckt.node("outm");
        sig.fdet_out = ckt.node("fdet");
        sig.tune_p = ckt.node("tunep");
        sig.tune_f = ckt.node("tunef");
        sig.ibias = ckt.node("ibias");
        sig.ab1 = ckt.node("ab1");
        sig.ab2 = ckt.node("ab2");
        mux = std::make_unique<Mux4>("MUX", ckt, sig, bus);
    }

    Circuit ckt;
    SerialSelectBus bus;
    Mux4::Signals sig{};
    std::unique_ptr<Mux4> mux;
};

TEST_F(MuxFixture, SelectWordComposition) {
    EXPECT_EQ(select_word({}), 0u);
    EXPECT_EQ(select_word({SelectBit::kOutPlusToAb1}), 0x01u);
    EXPECT_EQ(select_word({SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2}), 0x03u);
    EXPECT_EQ(select_word({SelectBit::kDetectorPower}), 0x40u);
    EXPECT_EQ(select_word({SelectBit::kInputSelectFin}), 0x80u);
}

TEST_F(MuxFixture, AllRoutingSwitchesOpenAtPowerUp) {
    for (auto bit : {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kFdetToAb1,
                     SelectBit::kTunePFromAb2, SelectBit::kTuneFFromAb2,
                     SelectBit::kIbiasFromAb1}) {
        EXPECT_FALSE(mux->switch_for(bit).closed());
    }
}

TEST_F(MuxFixture, SerialWordDrivesRoutingSwitches) {
    bus.write_word(select_word({SelectBit::kOutPlusToAb1, SelectBit::kTuneFFromAb2}),
                   kSelectWidth);
    EXPECT_TRUE(mux->switch_for(SelectBit::kOutPlusToAb1).closed());
    EXPECT_TRUE(mux->switch_for(SelectBit::kTuneFFromAb2).closed());
    EXPECT_FALSE(mux->switch_for(SelectBit::kOutMinusToAb2).closed());
    bus.write_word(0, kSelectWidth);
    EXPECT_FALSE(mux->switch_for(SelectBit::kOutPlusToAb1).closed());
}

TEST_F(MuxFixture, SwitchesConnectTheRightNodes) {
    auto& sw = mux->switch_for(SelectBit::kFdetToAb1);
    EXPECT_EQ(sw.a(), sig.fdet_out);
    EXPECT_EQ(sw.b(), sig.ab1);
    auto& sw2 = mux->switch_for(SelectBit::kTunePFromAb2);
    EXPECT_EQ(sw2.a(), sig.tune_p);
    EXPECT_EQ(sw2.b(), sig.ab2);
}

TEST_F(MuxFixture, PowerAndInputBitsHaveNoRoutingSwitch) {
    EXPECT_THROW(mux->switch_for(SelectBit::kDetectorPower), std::invalid_argument);
    EXPECT_THROW(mux->switch_for(SelectBit::kInputSelectFin), std::invalid_argument);
}

}  // namespace
}  // namespace rfabm::core
