#include "core/environment.hpp"

#include <gtest/gtest.h>

namespace rfabm::core {
namespace {

TEST(Environment, NominalIsNominal) {
    EXPECT_TRUE(nominal_conditions().is_nominal());
    OperatingConditions c;
    c.temperature_c = 70.0;
    EXPECT_FALSE(c.is_nominal());
}

TEST(Environment, PaperCornersCoverClaimedRanges) {
    const auto corners = paper_environment_corners();
    ASSERT_GE(corners.size(), 5u);
    EXPECT_TRUE(corners.front().is_nominal());
    double tmin = 1e9, tmax = -1e9, vpmin = 1e9, vpmax = -1e9, vfmin = 1e9, vfmax = -1e9;
    for (const auto& c : corners) {
        tmin = std::min(tmin, c.temperature_c);
        tmax = std::max(tmax, c.temperature_c);
        vpmin = std::min(vpmin, c.vdd_pdet);
        vpmax = std::max(vpmax, c.vdd_pdet);
        vfmin = std::min(vfmin, c.vdd_fdet);
        vfmax = std::max(vfmax, c.vdd_fdet);
    }
    // Paper: -10..70 C, 2.5 +/- 0.25 V, 3.3 +/- 0.3 V.
    EXPECT_DOUBLE_EQ(tmin, -10.0);
    EXPECT_DOUBLE_EQ(tmax, 70.0);
    EXPECT_DOUBLE_EQ(vpmin, 2.25);
    EXPECT_DOUBLE_EQ(vpmax, 2.75);
    EXPECT_DOUBLE_EQ(vfmin, 3.0);
    EXPECT_DOUBLE_EQ(vfmax, 3.6);
}

TEST(Environment, CornersAreUnique) {
    const auto corners = paper_environment_corners();
    for (std::size_t i = 0; i < corners.size(); ++i) {
        for (std::size_t j = i + 1; j < corners.size(); ++j) {
            const bool same = corners[i].temperature_c == corners[j].temperature_c &&
                              corners[i].vdd_pdet == corners[j].vdd_pdet;
            EXPECT_FALSE(same) << i << " vs " << j;
        }
    }
}

TEST(Environment, LabelIsInformative) {
    OperatingConditions c;
    c.temperature_c = -10.0;
    c.vdd_pdet = 2.25;
    const std::string label = c.label();
    EXPECT_NE(label.find("-10"), std::string::npos);
    EXPECT_NE(label.find("2.25"), std::string::npos);
}

}  // namespace
}  // namespace rfabm::core
