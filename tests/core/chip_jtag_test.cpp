// Chip-level 1149.x procedures beyond the measurement flow: SAMPLE capture,
// TBIC bus characterization, EXTEST pin forcing, and select-bus sequencing.
#include <gtest/gtest.h>

#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "jtag/instructions.hpp"

namespace rfabm::core {
namespace {

using jtag::Instruction;

TEST(ChipJtag, TbicCharacterizationDrivesAtapPins) {
    // Standard 1149.4 bus check: the TBIC connects AT1 to VH and AT2 to VL;
    // the tester verifies the wiring by reading the pins.
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kProbe);
    chip.tbic().set_pattern(jtag::TbicPattern::kCharHighLow);
    chip.engine().init();
    chip.engine().run_for(100e-9);
    // AT1 pulled toward VH (2.5 V) through S3 against the 10 Mohm DMM; AT2
    // toward VL (ground).
    EXPECT_GT(chip.live_v(chip.at1()), 2.3);
    EXPECT_LT(chip.live_v(chip.at2()), 0.1);

    chip.tbic().set_pattern(jtag::TbicPattern::kCharLowHigh);
    chip.engine().run_for(100e-9);
    EXPECT_LT(chip.live_v(chip.at1()), 0.1);
    EXPECT_GT(chip.live_v(chip.at2()), 2.3);
}

TEST(ChipJtag, ExtestForcesFinPinFromBoundary) {
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kExtest);
    // Boundary order: TBIC(6), ABM_RF(5), ABM_FIN(5).  Drive fin high.
    std::vector<bool> cells(16, false);
    cells[11] = true;  // ABM_FIN.D
    cells[12] = true;  // ABM_FIN.E
    drv.scan_dr(cells);
    chip.engine().init();
    chip.engine().run_for(100e-9);
    // VH(2.5) through SH(10 ohm) against the termination in parallel with
    // the generator path (25 ohm net): 2.5 * 25/35 ~ 1.79 V.
    EXPECT_GT(chip.live_v(chip.fin_pin()), 1.7);
    // And the mission path is open in EXTEST.
    EXPECT_FALSE(chip.fin_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed());
}

TEST(ChipJtag, SampleCapturesPinDigitizers) {
    // Force the fin pin high via EXTEST, then capture with SAMPLE: the fin
    // ABM's digitizer bit must read 1 (pin above VTH = vdd/2).
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kExtest);
    std::vector<bool> cells(16, false);
    cells[11] = true;
    cells[12] = true;
    drv.scan_dr(cells);
    chip.engine().init();
    chip.engine().run_for(100e-9);

    // Capture-DR under EXTEST reads the digitizers without disturbing the
    // drive (the capture stage samples, the update latch is re-scanned
    // unchanged).
    const auto captured = drv.scan_dr(cells);
    EXPECT_TRUE(captured[11]);   // fin digitizer: pin at ~2.1 V > 1.25 V
    EXPECT_FALSE(captured[6]);   // RF pin digitizer: terminated at 0 V
}

TEST(ChipJtag, PowerCycleThroughSelectBusRecovers) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    chip.set_rf(-6.0, 1.5e9);
    const double v1 = ctl.measure_power_vout();
    // Power the detectors down and up again; the reading must recover.
    ctl.set_select(0);
    chip.engine().run_for(200e-9);
    ctl.set_select(select_word({SelectBit::kDetectorPower}));
    chip.engine().run_for(200e-9);
    const double v2 = ctl.measure_power_vout();
    EXPECT_NEAR(v2, v1, std::max(5e-3, std::fabs(v1) * 0.1));
}

TEST(ChipJtag, HighzIsolatesBothPins) {
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kHighz);
    for (auto s : {jtag::AbmSwitch::kSD, jtag::AbmSwitch::kSH, jtag::AbmSwitch::kSL,
                   jtag::AbmSwitch::kSG, jtag::AbmSwitch::kSB1, jtag::AbmSwitch::kSB2}) {
        EXPECT_FALSE(chip.rf_pin_abm().switch_dev(s).closed());
        EXPECT_FALSE(chip.fin_pin_abm().switch_dev(s).closed());
    }
}

TEST(ChipJtag, GuardSwitchConnectsMidSupplyReference) {
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kExtest);
    std::vector<bool> cells(16, false);
    cells[13] = true;  // ABM_FIN.G: pin to VG
    drv.scan_dr(cells);
    chip.engine().init();
    chip.engine().run_for(200e-9);
    // VG is the mid-supply divider (~1.25 V) behind its 5 kohm Thevenin
    // resistance; the 25-ohm pin load divides it to ~6 mV — tiny but clearly
    // nonzero, proving the guard path conducts.
    EXPECT_GT(chip.live_v(chip.fin_pin()), 4e-3);
    EXPECT_TRUE(chip.fin_pin_abm().switch_dev(jtag::AbmSwitch::kSG).closed());
}

TEST(ChipJtag, BoundaryChainLengthMatchesInventory) {
    // 6 TBIC cells + 2 ABMs x 5 cells = 16; a scan of that length must
    // round-trip (anything else indicates a register-wiring regression).
    RfAbmChip chip{RfAbmChipConfig{}};
    auto& drv = chip.tap_driver();
    drv.reset_via_tms();
    drv.load(Instruction::kSamplePreload);
    std::vector<bool> pattern(16);
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = (i % 3) == 0;
    drv.scan_dr(pattern);
    const auto out = drv.scan_dr(std::vector<bool>(16, false));
    // SAMPLE captures digitizers into the D cells (indices 6 and 11); all
    // switch-control cells capture their latches.
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        if (i == 6 || i == 11) continue;
        EXPECT_EQ(out[i], pattern[i]) << "cell " << i;
    }
}

}  // namespace
}  // namespace rfabm::core
