// Integration tests of the assembled chip: 1149.4 session mechanics, power
// gating, tuning-over-the-bus, and the PROBE measurement topology.
#include "core/chip.hpp"

#include <gtest/gtest.h>

#include "core/measurement.hpp"
#include "jtag/instructions.hpp"

namespace rfabm::core {
namespace {

TEST(Chip, IdcodeReadable) {
    RfAbmChipConfig cfg;
    cfg.idcode = 0xDEADBEEF;
    RfAbmChip chip{cfg};
    EXPECT_EQ(chip.tap_driver().read_idcode(), 0xDEADBEEFu | 1u);
}

TEST(Chip, PowerUpMissionMode) {
    RfAbmChip chip{RfAbmChipConfig{}};
    EXPECT_TRUE(chip.rf_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed());
    EXPECT_FALSE(chip.rf_pin_abm().switch_dev(jtag::AbmSwitch::kSB1).closed());
    EXPECT_FALSE(chip.tbic().switch_dev(jtag::TbicSwitch::kS1).closed());
}

TEST(Chip, OpenSessionEstablishesProbeTopology) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    EXPECT_EQ(chip.tap().instruction(), jtag::Instruction::kProbe);
    // TBIC connect pattern active; RF pin mission path undisturbed.
    EXPECT_TRUE(chip.tbic().switch_dev(jtag::TbicSwitch::kS1).closed());
    EXPECT_TRUE(chip.tbic().switch_dev(jtag::TbicSwitch::kS2).closed());
    EXPECT_TRUE(chip.rf_pin_abm().switch_dev(jtag::AbmSwitch::kSD).closed());
    EXPECT_TRUE(chip.engine().initialized());
}

TEST(Chip, SelectBusControlsPowerGate) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();  // sets the power bit
    auto& gate = chip.circuit().get<circuit::Switch>("PWRGATE_P");
    EXPECT_TRUE(gate.closed());
    ctl.set_select(0);
    EXPECT_FALSE(gate.closed());
}

TEST(Chip, PoweredDownDetectorProducesNoOutput) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    ctl.set_select(0);  // power off
    chip.set_rf(6.0, 1.5e9);
    chip.engine().run_for(100e-9);
    // Supply collapsed: detector output nodes near ground.
    EXPECT_LT(chip.live_v(chip.pdet().vout_n()), 0.2);
}

TEST(Chip, TuneAppliedThroughBusReachesPin) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    const double latched = ctl.apply_tune_p(0.8);
    EXPECT_NEAR(latched, 0.8, 0.05);
    // The hold DAC keeps the pin there afterwards.
    chip.engine().run_for(100e-9);
    EXPECT_NEAR(chip.live_v(chip.tune_p_pin()), latched, 0.02);
}

TEST(Chip, TuneFIndependentOfTuneP) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    ctl.apply_tune_f(2.2);
    chip.engine().run_for(300e-9);  // let the hold network equalize
    const double f_pin = chip.live_v(chip.tune_f_pin());
    ctl.apply_tune_p(0.3);
    chip.engine().run_for(300e-9);
    EXPECT_NEAR(chip.live_v(chip.tune_f_pin()), f_pin, 0.01);
}

TEST(Chip, RfDriveSetsStep) {
    RfAbmChip chip{RfAbmChipConfig{}};
    chip.set_rf(0.0, 2.0e9);
    EXPECT_NEAR(chip.engine().options().dt, 1.0 / 2.0e9 / 24.0, 1e-15);
    EXPECT_NEAR(chip.stimulus_period(), 0.5e-9, 1e-15);
    chip.rf_off();
    EXPECT_FALSE(chip.rf_frequency().has_value());
}

TEST(Chip, FvcClockPeriodFollowsInputSelect) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    chip.set_rf(6.0, 1.6e9);
    chip.set_fin(6.0, 200e6);
    // RF path: divided by 8.
    ctl.set_select(select_word({SelectBit::kDetectorPower}));
    EXPECT_NEAR(chip.fvc_clock_period(), 8.0 / 1.6e9, 1e-15);
    // fin path: direct.
    ctl.set_select(select_word({SelectBit::kDetectorPower, SelectBit::kInputSelectFin}));
    EXPECT_NEAR(chip.fvc_clock_period(), 1.0 / 200e6, 1e-15);
}

TEST(Chip, PreampVariantBuildsAndBiases) {
    RfAbmChipConfig cfg;
    cfg.with_preamp = true;
    RfAbmChip chip{cfg};
    ASSERT_NE(chip.preamp(), nullptr);
    MeasurementController ctl(chip);
    ctl.open_session();
    // Preamp output DC sits below the supply by the designed drop.
    const double out_dc = chip.live_v(chip.preamp()->out());
    EXPECT_GT(out_dc, 1.0);
    EXPECT_LT(out_dc, 2.4);
    EXPECT_EQ(chip.detector_input(), chip.preamp()->out());
}

TEST(Chip, BasicVariantHasNoPreamp) {
    RfAbmChip chip{RfAbmChipConfig{}};
    EXPECT_EQ(chip.preamp(), nullptr);
    EXPECT_EQ(chip.detector_input(), chip.rf_core());
}

TEST(Chip, ConditionsPropagateToDevices) {
    OperatingConditions cond;
    cond.temperature_c = 70.0;
    cond.vdd_pdet = 2.75;
    RfAbmChip chip{RfAbmChipConfig{}, cond};
    EXPECT_NEAR(chip.circuit().temperature_c(), 70.0, 1e-9);
    // Threshold dropped with temperature.
    EXPECT_LT(chip.pdet().q1().vth(), 0.5);
}

TEST(Chip, ProcessCornerPropagates) {
    circuit::ProcessCorner corner;
    corner.nmos_vt_shift = 0.045;
    RfAbmChip chip{RfAbmChipConfig{}, nominal_conditions(), corner};
    EXPECT_NEAR(chip.pdet().q1().vth(), 0.545, 1e-9);
}

TEST(Chip, FvcEdgesAccumulateOnlyWithStrongDrive) {
    RfAbmChip chip{RfAbmChipConfig{}};
    MeasurementController ctl(chip);
    ctl.open_session();
    chip.set_rf(-10.0, 1.5e9);
    const auto e0 = chip.fvc_edges();
    chip.engine().run_for(60e-9);
    EXPECT_EQ(chip.fvc_edges(), e0);
    chip.set_rf(8.0, 1.5e9);
    chip.engine().run_for(60e-9);
    EXPECT_GT(chip.fvc_edges(), e0 + 5);
}

}  // namespace
}  // namespace rfabm::core
