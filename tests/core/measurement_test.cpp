// End-to-end measurement accuracy on the nominal device — the paper's basic
// sanity ("operating according to the simulations") before the corner sweeps.
#include "core/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "rf/sweep.hpp"

namespace rfabm::core {
namespace {

/// Shared expensive fixture: one calibrated nominal chip + curves.
class MeasurementFixture : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        chip_ = new RfAbmChip{RfAbmChipConfig{}};
        controller_ = new MeasurementController(*chip_);
        controller_->open_session();
        cal_ = new DcCalibration(dc_calibrate(*controller_));
        power_curve_ = new rfabm::rf::MonotoneCurve(
            acquire_power_curve(*controller_, rfabm::rf::arange(-20.0, 7.0, 1.0), 1.5e9));
        freq_curve_ = new rfabm::rf::MonotoneCurve(
            acquire_frequency_curve(*controller_, rfabm::rf::arange(0.9, 2.1, 0.1), 6.0));
    }

    static void TearDownTestSuite() {
        delete freq_curve_;
        delete power_curve_;
        delete cal_;
        delete controller_;
        delete chip_;
        freq_curve_ = nullptr;
        power_curve_ = nullptr;
        cal_ = nullptr;
        controller_ = nullptr;
        chip_ = nullptr;
    }

    static RfAbmChip* chip_;
    static MeasurementController* controller_;
    static DcCalibration* cal_;
    static rfabm::rf::MonotoneCurve* power_curve_;
    static rfabm::rf::MonotoneCurve* freq_curve_;
};

RfAbmChip* MeasurementFixture::chip_ = nullptr;
MeasurementController* MeasurementFixture::controller_ = nullptr;
DcCalibration* MeasurementFixture::cal_ = nullptr;
rfabm::rf::MonotoneCurve* MeasurementFixture::power_curve_ = nullptr;
rfabm::rf::MonotoneCurve* MeasurementFixture::freq_curve_ = nullptr;

TEST_F(MeasurementFixture, CalibrationConverged) {
    EXPECT_LE(std::fabs(cal_->tune_p.vout_offset - 25e-3), 12e-3);
    EXPECT_NEAR(cal_->tune_f.vout, cal_->tune_f.target, 0.02);
}

TEST_F(MeasurementFixture, PowerAccurateOnCalibratedDevice) {
    for (double dbm : {-18.0, -12.0, -6.0, 0.0, 6.0}) {
        chip_->set_rf(dbm, 1.5e9);
        const PowerMeasurement m = controller_->measure_power(*power_curve_);
        EXPECT_TRUE(m.settled);
        EXPECT_NEAR(m.dbm, dbm, 0.3) << dbm;
    }
}

TEST_F(MeasurementFixture, PowerInterpolatesBetweenCurvePoints) {
    chip_->set_rf(-7.5, 1.5e9);  // between the 1-dB curve knots
    const PowerMeasurement m = controller_->measure_power(*power_curve_);
    EXPECT_NEAR(m.dbm, -7.5, 0.3);
}

TEST_F(MeasurementFixture, FrequencyAccurateOnCalibratedDevice) {
    for (double ghz : {1.0, 1.4, 1.8, 2.0}) {
        chip_->set_rf(6.0, ghz * 1e9);
        const FrequencyMeasurement m = controller_->measure_frequency(*freq_curve_);
        EXPECT_TRUE(m.valid);
        EXPECT_NEAR(m.ghz, ghz, 0.03) << ghz;
    }
}

TEST_F(MeasurementFixture, WeakToneInvalidatesFrequency) {
    chip_->set_rf(-10.0, 1.5e9);
    const FrequencyMeasurement m = controller_->measure_frequency(*freq_curve_);
    EXPECT_FALSE(m.valid);
    EXPECT_EQ(m.edges, 0u);
}

TEST_F(MeasurementFixture, DirectFinPathMeasuresDividedBand) {
    // Drive the dedicated fin input at 180 MHz; the FVC reads it without the
    // prescaler, so the GHz-domain curve sees it as 8 * 180 MHz = 1.44 GHz.
    chip_->rf_off();
    chip_->set_fin(8.0, 180e6);
    const FrequencyMeasurement m = controller_->measure_frequency(*freq_curve_, /*use_fin=*/true);
    EXPECT_TRUE(m.valid);
    EXPECT_NEAR(m.ghz, 8.0 * 0.180, 0.05);
    chip_->fin_off();
}

TEST_F(MeasurementFixture, TareIsStablePerSession) {
    const double t1 = controller_->tare_power();
    const double t2 = controller_->tare_power();
    EXPECT_NEAR(t1, t2, 2e-3);
}

TEST_F(MeasurementFixture, RawVoutMonotoneInPower) {
    double prev = -1e9;
    for (double dbm : {-15.0, -10.0, -5.0, 0.0, 5.0}) {
        chip_->set_rf(dbm, 1.5e9);
        const double v = controller_->measure_power_vout();
        EXPECT_GT(v, prev);
        prev = v;
    }
}

}  // namespace
}  // namespace rfabm::core
