#include "core/preamplifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"

namespace rfabm::core {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::TransientEngine;
using circuit::TransientOptions;
using circuit::VSource;
using circuit::Waveform;

struct PreampBench {
    explicit PreampBench(double vdd_v = 2.5) {
        vdd = ckt.node("vdd");
        in = ckt.node("in");
        ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(vdd_v));
        src = &ckt.add<VSource>("VIN", in, kGround, Waveform::dc(0.0));
        ckt.add<Resistor>("RT", in, kGround, 50.0);
        amp = std::make_unique<Preamplifier>("PA", ckt, vdd, in);
    }

    Circuit ckt;
    NodeId vdd{}, in{};
    VSource* src = nullptr;
    std::unique_ptr<Preamplifier> amp;
};

TEST(Preamplifier, OperatingPointSaturated) {
    PreampBench bench;
    const auto op = circuit::solve_dc(bench.ckt);
    const auto mop = bench.amp->transistor().operating_point(op.solution);
    EXPECT_TRUE(mop.saturated);
    // Gate at ~0.9 V; the degeneration resistor absorbs part of it, leaving a
    // healthy overdrive.
    EXPECT_GT(mop.vgs - 0.5, 0.1);
    EXPECT_LT(mop.vgs, 0.9);
}

TEST(Preamplifier, DegenerationStabilizesGainAcrossSupply) {
    // The design reason for RS: gain moves far less than the raw gm would.
    auto gain_at = [](double vdd_v) {
        PreampBench bench(vdd_v);
        const auto op = circuit::solve_dc(bench.ckt);
        bench.src->set_ac(1.0);
        const auto pts = circuit::run_ac(bench.ckt, op.solution, {100e6}, bench.amp->out());
        return std::abs(pts[0].value);
    };
    const double lo = gain_at(2.25);
    const double hi = gain_at(2.75);
    EXPECT_LT(std::fabs(hi - lo) / lo, 0.15);  // within ~1.2 dB over +/-10% VDD
}

TEST(Preamplifier, ReplicaTracksOutputDc) {
    PreampBench bench;
    const auto op = circuit::solve_dc(bench.ckt);
    const double out_dc = op.solution.v(bench.amp->out());
    const double ref_dc = op.solution.v(bench.amp->ref_out());
    EXPECT_NEAR(out_dc, ref_dc, 1e-3);
}

TEST(Preamplifier, ReplicaTracksAcrossSupply) {
    for (double vdd_v : {2.25, 2.75}) {
        PreampBench bench(vdd_v);
        const auto op = circuit::solve_dc(bench.ckt);
        EXPECT_NEAR(op.solution.v(bench.amp->out()), op.solution.v(bench.amp->ref_out()), 1e-3)
            << vdd_v;
    }
}

TEST(Preamplifier, SmallSignalGainMatchesDesign) {
    PreampBench bench;
    const auto op = circuit::solve_dc(bench.ckt);
    bench.src->set_ac(1.0);
    const auto pts = circuit::run_ac(bench.ckt, op.solution, {100e6}, bench.amp->out());
    const double gain = std::abs(pts[0].value);
    const double gain_db = 20.0 * std::log10(gain);
    // Small-signal gain ~11 dB; the positive-swing (headroom-limited) gain
    // the frequency path sees is lower (~8 dB), tested separately below.
    EXPECT_GT(gain_db, 8.0);
    EXPECT_LT(gain_db, 13.0);
    // And it matches the analytic design value gm*RL.
    EXPECT_NEAR(gain, bench.amp->analytic_gain(2.5), 0.45);
}

TEST(Preamplifier, GainFlatAcrossRfBand) {
    PreampBench bench;
    const auto op = circuit::solve_dc(bench.ckt);
    bench.src->set_ac(1.0);
    const auto pts = circuit::run_ac(bench.ckt, op.solution, {1.0e9, 1.5e9, 2.0e9},
                                     bench.amp->out());
    const double g1 = std::abs(pts[0].value);
    const double g3 = std::abs(pts[2].value);
    EXPECT_NEAR(g3 / g1, 1.0, 0.15);  // < ~1.2 dB tilt across the band
}

TEST(Preamplifier, LargeSignalCompresses) {
    // Effective gain at a large drive must be visibly below small-signal gain.
    auto peak_out = [](double a_in) {
        PreampBench bench;
        bench.src->set_waveform(Waveform::sine(0.0, a_in, 1.5e9));
        TransientOptions topts;
        topts.dt = 1.0 / 1.5e9 / 32.0;
        TransientEngine engine(bench.ckt, topts);
        engine.init();
        engine.run_for(20e-9);
        double lo = 1e9;
        double hi = -1e9;
        const double t_end = engine.time() + 2.0 / 1.5e9;
        while (engine.time() < t_end) {
            engine.step();
            const double v = engine.v(bench.amp->out()) - engine.v(bench.amp->ref_out());
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return 0.5 * (hi - lo);
    };
    const double small = peak_out(0.01) / 0.01;
    const double large = peak_out(0.5) / 0.5;
    EXPECT_LT(large, small * 0.85);
}

TEST(Preamplifier, AnalyticGainSupplyDependence) {
    Preamplifier* amp = nullptr;
    Circuit ckt;
    Preamplifier a("PA", ckt, ckt.node("v"), ckt.node("i"));
    amp = &a;
    // Higher supply -> higher overdrive -> more gain.
    EXPECT_GT(amp->analytic_gain(2.75), amp->analytic_gain(2.25));
    // Below threshold bias the analytic gain collapses to zero.
    EXPECT_DOUBLE_EQ(amp->analytic_gain(1.0), 0.0);
}

}  // namespace
}  // namespace rfabm::core
