// Property-style tests of the simulator core: physical invariants that must
// hold for arbitrary (randomized) circuits and bias points.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"
#include "rf/random.hpp"

namespace rfabm::circuit {
namespace {

TEST(CircuitProperty, KclHoldsAtEveryNodeOfRandomResistorMesh) {
    // Random resistor meshes driven by a source: at the solution, the sum of
    // branch currents out of every non-source node must vanish.
    rfabm::rf::Xoshiro256 rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit ckt;
        const int n_nodes = 6;
        std::vector<NodeId> nodes{kGround};
        for (int i = 1; i < n_nodes; ++i) nodes.push_back(ckt.node("n" + std::to_string(i)));
        ckt.add<VSource>("V", nodes[1], kGround, Waveform::dc(rng.uniform(1.0, 10.0)));
        struct Edge {
            NodeId a;
            NodeId b;
            double r;
        };
        std::vector<Edge> edges;
        // Spanning chain guarantees connectivity, plus random chords.
        for (int i = 1; i + 1 < n_nodes; ++i) {
            edges.push_back({nodes[i], nodes[i + 1], rng.uniform(100.0, 10e3)});
        }
        edges.push_back({nodes[n_nodes - 1], kGround, rng.uniform(100.0, 10e3)});
        for (int k = 0; k < 5; ++k) {
            const auto a = static_cast<std::size_t>(rng.uniform() * n_nodes);
            const auto b = static_cast<std::size_t>(rng.uniform() * n_nodes);
            if (a == b) continue;
            edges.push_back({nodes[a], nodes[b], rng.uniform(100.0, 10e3)});
        }
        for (std::size_t i = 0; i < edges.size(); ++i) {
            ckt.add<Resistor>("R" + std::to_string(i), edges[i].a, edges[i].b, edges[i].r);
        }
        const auto sol = solve_dc(ckt).solution;
        for (int i = 2; i < n_nodes; ++i) {  // skip the source-driven node
            double sum = 0.0;
            for (const Edge& e : edges) {
                if (e.a == nodes[i]) sum += (sol.v(e.a) - sol.v(e.b)) / e.r;
                if (e.b == nodes[i]) sum += (sol.v(e.b) - sol.v(e.a)) / e.r;
            }
            EXPECT_NEAR(sum, 0.0, 1e-9) << "trial " << trial << " node " << i;
        }
    }
}

TEST(CircuitProperty, PassiveNetworkVoltagesBoundedBySource) {
    // A network of only passive positive elements cannot produce a node
    // voltage outside the source range [0, V].
    rfabm::rf::Xoshiro256 rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit ckt;
        const double vsrc = rng.uniform(1.0, 5.0);
        const NodeId top = ckt.node("top");
        ckt.add<VSource>("V", top, kGround, Waveform::dc(vsrc));
        NodeId prev = top;
        for (int i = 0; i < 8; ++i) {
            const NodeId n = ckt.node("m" + std::to_string(i));
            ckt.add<Resistor>("R" + std::to_string(i), prev, n, rng.uniform(10.0, 1e5));
            if (rng.uniform() < 0.5) {
                ckt.add<Resistor>("Rg" + std::to_string(i), n, kGround,
                                  rng.uniform(10.0, 1e5));
            }
            prev = n;
        }
        ckt.add<Resistor>("Rend", prev, kGround, rng.uniform(10.0, 1e5));
        const auto sol = solve_dc(ckt).solution;
        for (std::size_t i = 1; i < ckt.num_nodes(); ++i) {
            const double v = sol.v(static_cast<NodeId>(i));
            EXPECT_GE(v, -1e-9);
            EXPECT_LE(v, vsrc + 1e-9);
        }
    }
}

TEST(CircuitProperty, SuperpositionHoldsForLinearCircuits) {
    // v(out) with both sources active equals the sum of the responses with
    // each source alone — for arbitrary linear resistive networks.
    rfabm::rf::Xoshiro256 rng(29);
    for (int trial = 0; trial < 8; ++trial) {
        auto build = [&](double v1, double v2, double r1, double r2, double r3) {
            Circuit ckt;
            const NodeId a = ckt.node("a");
            const NodeId b = ckt.node("b");
            const NodeId out = ckt.node("out");
            ckt.add<VSource>("V1", a, kGround, Waveform::dc(v1));
            ckt.add<VSource>("V2", b, kGround, Waveform::dc(v2));
            ckt.add<Resistor>("R1", a, out, r1);
            ckt.add<Resistor>("R2", b, out, r2);
            ckt.add<Resistor>("R3", out, kGround, r3);
            return solve_dc(ckt).solution.v(out);
        };
        const double v1 = rng.uniform(-5.0, 5.0);
        const double v2 = rng.uniform(-5.0, 5.0);
        const double r1 = rng.uniform(100.0, 10e3);
        const double r2 = rng.uniform(100.0, 10e3);
        const double r3 = rng.uniform(100.0, 10e3);
        const double both = build(v1, v2, r1, r2, r3);
        const double only1 = build(v1, 0.0, r1, r2, r3);
        const double only2 = build(0.0, v2, r1, r2, r3);
        EXPECT_NEAR(both, only1 + only2, 1e-9);
    }
}

TEST(CircuitProperty, MosfetCurrentMonotoneInVgsAndVds) {
    // Square-law invariants over a randomized grid: ID non-decreasing in VGS
    // (fixed VDS) and in VDS (fixed VGS), for VDS >= 0.
    rfabm::rf::Xoshiro256 rng(41);
    Mosfet m("M", 1, 2, 3);
    for (int trial = 0; trial < 200; ++trial) {
        const double vgs = rng.uniform(0.0, 2.0);
        const double vds = rng.uniform(0.0, 2.5);
        const double h = 1e-3;
        EXPECT_LE(m.evaluate(vgs, vds).id, m.evaluate(vgs + h, vds).id + 1e-15);
        EXPECT_LE(m.evaluate(vgs, vds).id, m.evaluate(vgs, vds + h).id + 1e-15);
    }
}

TEST(CircuitProperty, CapacitorChargeConservationInTransient) {
    // A charged capacitor discharging into another through a resistor:
    // total charge is conserved (trapezoidal integration is charge-exact).
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    ckt.add<Capacitor>("C1", a, kGround, 1e-9);
    ckt.add<Capacitor>("C2", b, kGround, 2e-9);
    ckt.add<Resistor>("R", a, b, 1e3);
    ckt.finalize();
    Solution ic(ckt.num_nodes(), ckt.num_branches());
    ic.raw()[static_cast<std::size_t>(a) - 1] = 3.0;  // C1 charged to 3 V
    TransientOptions topts;
    topts.dt = 50e-9;
    TransientEngine engine(ckt, topts);
    engine.init_from(ic);
    const double q0 = 1e-9 * 3.0;
    engine.run_for(20e-6);  // several time constants
    const double q1 = 1e-9 * engine.v(a) + 2e-9 * engine.v(b);
    EXPECT_NEAR(q1, q0, q0 * 1e-3);
    // And the final voltages equalize to q/(C1+C2) = 1 V.
    EXPECT_NEAR(engine.v(a), 1.0, 1e-3);
    EXPECT_NEAR(engine.v(b), 1.0, 1e-3);
}

TEST(CircuitProperty, ThevedinEquivalenceOfDividers) {
    // A divider and its Thevenin equivalent must agree at the load for
    // random component values.
    rfabm::rf::Xoshiro256 rng(53);
    for (int trial = 0; trial < 10; ++trial) {
        const double vs = rng.uniform(1.0, 10.0);
        const double r1 = rng.uniform(100.0, 10e3);
        const double r2 = rng.uniform(100.0, 10e3);
        const double rl = rng.uniform(100.0, 10e3);

        Circuit full;
        const NodeId in = full.node("in");
        const NodeId out = full.node("out");
        full.add<VSource>("V", in, kGround, Waveform::dc(vs));
        full.add<Resistor>("R1", in, out, r1);
        full.add<Resistor>("R2", out, kGround, r2);
        full.add<Resistor>("RL", out, kGround, rl);
        const double v_full = solve_dc(full).solution.v(out);

        Circuit thev;
        const NodeId tin = thev.node("in");
        const NodeId tout = thev.node("out");
        thev.add<VSource>("V", tin, kGround, Waveform::dc(vs * r2 / (r1 + r2)));
        thev.add<Resistor>("RT", tin, tout, r1 * r2 / (r1 + r2));
        thev.add<Resistor>("RL", tout, kGround, rl);
        const double v_thev = solve_dc(thev).solution.v(tout);

        EXPECT_NEAR(v_full, v_thev, 1e-9);
    }
}

}  // namespace
}  // namespace rfabm::circuit
