#include "circuit/devices/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {
namespace {

MosfetParams nominal_params() {
    MosfetParams p;
    p.w = 10e-6;
    p.l = 1e-6;
    p.kp = 100e-6;
    p.vt0 = 0.5;
    p.lambda = 0.0;
    return p;
}

class MosfetModel : public ::testing::Test {
  protected:
    Mosfet m_{"M", 1, 2, 3, nominal_params()};
};

TEST_F(MosfetModel, CutoffBelowThreshold) {
    const auto op = m_.evaluate(0.4, 1.0);
    EXPECT_DOUBLE_EQ(op.id, 0.0);
    EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST_F(MosfetModel, SaturationSquareLaw) {
    // ID = 0.5 * 100u * 10 * (1.0-0.5)^2 = 125 uA.
    const auto op = m_.evaluate(1.0, 2.0);
    EXPECT_TRUE(op.saturated);
    EXPECT_NEAR(op.id, 125e-6, 1e-9);
    EXPECT_NEAR(op.gm, 500e-6, 1e-9);
    EXPECT_DOUBLE_EQ(op.gds, 0.0);  // lambda = 0
}

TEST_F(MosfetModel, TriodeLinearRegion) {
    // vds << vov: ID ~ beta * vov * vds.
    const auto op = m_.evaluate(1.5, 0.01);
    EXPECT_FALSE(op.saturated);
    EXPECT_NEAR(op.id, 1e-3 * (1.0 * 0.01 - 0.5 * 1e-4), 1e-9);
}

TEST_F(MosfetModel, ContinuousAcrossSaturationBoundary) {
    const double vov = 0.5;
    const auto below = m_.evaluate(1.0, vov - 1e-9);
    const auto above = m_.evaluate(1.0, vov + 1e-9);
    EXPECT_NEAR(below.id, above.id, 1e-12);
    EXPECT_NEAR(below.gm, above.gm, 1e-9);
}

TEST_F(MosfetModel, SymmetricForNegativeVds) {
    // Id(vgs, -vds) = -Id(vgs + vds, vds) by source/drain swap.
    const auto fwd = m_.evaluate(1.2, 0.2);
    const auto rev = m_.evaluate(1.0, -0.2);
    EXPECT_NEAR(rev.id, -fwd.id, 1e-12);
}

TEST_F(MosfetModel, LambdaIncreasesSaturationCurrent) {
    MosfetParams p = nominal_params();
    p.lambda = 0.1;
    const Mosfet m2("M2", 1, 2, 3, p);
    const auto flat = m_.evaluate(1.0, 2.0);
    const auto sloped = m2.evaluate(1.0, 2.0);
    EXPECT_GT(sloped.id, flat.id);
    EXPECT_GT(sloped.gds, 0.0);
}

TEST_F(MosfetModel, GmMatchesNumericalDerivative) {
    const double vgs = 1.1;
    const double vds = 1.5;
    const double h = 1e-6;
    const double did = m_.evaluate(vgs + h, vds).id - m_.evaluate(vgs - h, vds).id;
    EXPECT_NEAR(m_.evaluate(vgs, vds).gm, did / (2.0 * h), 1e-6);
}

TEST_F(MosfetModel, GdsMatchesNumericalDerivativeInTriode) {
    MosfetParams p = nominal_params();
    p.lambda = 0.05;
    const Mosfet m2("M2", 1, 2, 3, p);
    const double vgs = 1.5;
    const double vds = 0.3;  // triode
    const double h = 1e-6;
    const double did = m2.evaluate(vgs, vds + h).id - m2.evaluate(vgs, vds - h).id;
    EXPECT_NEAR(m2.evaluate(vgs, vds).gds, did / (2.0 * h), 1e-6);
}

TEST(MosfetTemperature, ThresholdDropsWithTemperature) {
    Mosfet m("M", 1, 2, 3, nominal_params());
    const double vth_cold = [&] {
        m.set_temperature(263.15);  // -10 C
        return m.vth();
    }();
    const double vth_hot = [&] {
        m.set_temperature(343.15);  // +70 C
        return m.vth();
    }();
    EXPECT_GT(vth_cold, vth_hot);
    // tc_vt = 1.5 mV/K over 80 K -> 120 mV.
    EXPECT_NEAR(vth_cold - vth_hot, 0.12, 1e-9);
}

TEST(MosfetTemperature, MobilityDegradesWithTemperature) {
    Mosfet m("M", 1, 2, 3, nominal_params());
    m.set_temperature(263.15);
    const double kp_cold = m.kp();
    m.set_temperature(343.15);
    const double kp_hot = m.kp();
    EXPECT_GT(kp_cold, kp_hot);
    EXPECT_NEAR(kp_cold / kp_hot, std::pow(343.15 / 263.15, 1.5), 1e-9);
}

TEST(MosfetProcess, CornerShiftsAppliedByPolarity) {
    ProcessCorner corner;
    corner.nmos_vt_shift = 0.05;
    corner.pmos_vt_shift = -0.03;
    corner.nmos_kp_factor = 1.1;
    corner.pmos_kp_factor = 0.9;

    Mosfet mn("MN", 1, 2, 3, nominal_params());
    mn.apply_process(corner);
    EXPECT_NEAR(mn.vth(), 0.55, 1e-12);
    EXPECT_NEAR(mn.kp(), 110e-6, 1e-12);

    MosfetParams pp = nominal_params();
    pp.type = MosType::kPmos;
    Mosfet mp("MP", 1, 2, 3, pp);
    mp.apply_process(corner);
    EXPECT_NEAR(mp.vth(), 0.47, 1e-12);
    EXPECT_NEAR(mp.kp(), 90e-6, 1e-12);
}

TEST(MosfetProcess, ApplyIsIdempotent) {
    ProcessCorner corner;
    corner.nmos_vt_shift = 0.05;
    Mosfet m("M", 1, 2, 3, nominal_params());
    m.apply_process(corner);
    m.apply_process(corner);
    EXPECT_NEAR(m.vth(), 0.55, 1e-12);
    m.apply_process(ProcessCorner{});
    EXPECT_NEAR(m.vth(), 0.5, 1e-12);
}

TEST(MosfetCircuit, DiodeConnectedLoadSolves) {
    // Diode-connected NMOS as a load: VGS settles to VT + sqrt(2 I / beta).
    Circuit ckt;
    const NodeId d = ckt.node("d");
    ckt.add<ISource>("I1", kGround, d, Waveform::dc(125e-6));
    ckt.add<Mosfet>("M1", d, d, kGround, nominal_params());
    const DcResult r = solve_dc(ckt);
    // beta = 1e-3: vov = sqrt(2*125u/1e-3) = 0.5 -> v(d) = 1.0.
    EXPECT_NEAR(r.solution.v(d), 1.0, 1e-3);
}

TEST(MosfetCircuit, InverterTransfersLogicLevels) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    auto& vin = ckt.add<VSource>("VIN", in, kGround, Waveform::dc(0.0));
    MosfetParams pn = nominal_params();
    MosfetParams pp = nominal_params();
    pp.type = MosType::kPmos;
    pp.kp = 40e-6;
    pp.w = 25e-6;
    ckt.add<Mosfet>("MN", out, in, kGround, pn);
    ckt.add<Mosfet>("MP", out, in, vdd, pp);

    vin.set_dc(0.0);
    EXPECT_GT(solve_dc(ckt).solution.v(out), 2.4);
    vin.set_dc(2.5);
    EXPECT_LT(solve_dc(ckt).solution.v(out), 0.1);
}

TEST(MosfetCircuit, HalfWaveRectificationAtThresholdBias) {
    // The paper's core trick (Fig. 2): gate biased exactly at VT conducts only
    // on positive input half-cycles.
    MosfetParams p = nominal_params();
    Mosfet m("M", 1, 2, 3, p);
    EXPECT_DOUBLE_EQ(m.evaluate(p.vt0 - 0.2, 1.0).id, 0.0);  // negative half
    EXPECT_GT(m.evaluate(p.vt0 + 0.2, 1.0).id, 0.0);         // positive half
}

TEST(MosfetCircuit, RejectsInvalidParams) {
    MosfetParams p = nominal_params();
    p.w = 0.0;
    EXPECT_THROW(Mosfet("M", 1, 2, 3, p), std::invalid_argument);
}

}  // namespace
}  // namespace rfabm::circuit
