// Newton convergence-aid tests: circuits engineered to defeat plain
// iteration and require gmin stepping / source stepping, plus tolerance and
// failure-path behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>

#include "circuit/dc.hpp"
#include "circuit/devices/diode.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"

namespace rfabm::circuit {
namespace {

TEST(Convergence, FloatingMidpointBetweenDiodes) {
    // Two anti-series diodes leave their midpoint with no DC path: only the
    // gmin floor defines it.  Plain Newton converges, but the matrix would be
    // singular without the junction gmin.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(1.0));
    ckt.add<Diode>("D1", in, mid);
    ckt.add<Diode>("D2", kGround, mid);  // both cathodes at mid: no path out
    const auto r = solve_dc(ckt);
    EXPECT_GE(r.solution.v(mid), -0.1);
    EXPECT_LE(r.solution.v(mid), 1.1);
}

TEST(Convergence, HardDiodeStackFromColdStart) {
    // Five series diodes at a high drive: exponential blow-up territory for
    // un-limited Newton; junction limiting + fallbacks must handle it.
    Circuit ckt;
    NodeId prev = ckt.node("in");
    ckt.add<VSource>("V", prev, kGround, Waveform::dc(20.0));
    ckt.add<Resistor>("RS", prev, ckt.node("a0"), 10.0);
    prev = ckt.node("a0");
    for (int i = 0; i < 5; ++i) {
        const NodeId next = ckt.node("a" + std::to_string(i + 1));
        ckt.add<Diode>("D" + std::to_string(i), prev, next);
        prev = next;
    }
    ckt.add<Resistor>("RL", prev, kGround, 1.0);
    const auto r = solve_dc(ckt);
    // ~20 V across ~11 ohm + 5 drops: a few drops of ~0.8-0.9 V at ~1.7 A.
    const double v_stack = r.solution.v(ckt.node("a0")) - r.solution.v(prev);
    EXPECT_GT(v_stack, 3.0);
    EXPECT_LT(v_stack, 6.0);
}

TEST(Convergence, CrossCoupledLatchFindsAStableState) {
    // A bistable CMOS latch (cross-coupled inverters) has three solutions;
    // the homotopy aids must land on one of the two stable ones, not blow up.
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    const NodeId q = ckt.node("q");
    const NodeId qb = ckt.node("qb");
    MosfetParams pn;
    MosfetParams pp;
    pp.type = MosType::kPmos;
    pp.w = 25e-6;
    pp.kp = 40e-6;
    ckt.add<Mosfet>("MN1", q, qb, kGround, pn);
    ckt.add<Mosfet>("MP1", q, qb, vdd, pp);
    ckt.add<Mosfet>("MN2", qb, q, kGround, pn);
    ckt.add<Mosfet>("MP2", qb, q, vdd, pp);
    // Slight asymmetry so a definite state wins.
    ckt.add<Resistor>("RBIAS", q, kGround, 1e6);
    const auto r = solve_dc(ckt);
    const double vq = r.solution.v(q);
    const double vqb = r.solution.v(qb);
    EXPECT_GE(vq, -0.1);
    EXPECT_LE(vq, 2.6);
    EXPECT_GE(vqb, -0.1);
    EXPECT_LE(vqb, 2.6);
    // Complementary-ish outputs (metastable midpoint also acceptable for a
    // DC solver, but the sum must be near VDD in all three solutions).
    EXPECT_NEAR(vq + vqb, 2.5, 1.3);
}

TEST(Convergence, HomotopyRescuesWhenPlainNewtonBudgetTooSmall) {
    // A cold diode solve needs ~9 limited Newton steps; with a budget of 8
    // plain iteration fails and a homotopy fallback (gmin or source
    // stepping, each warm-starting from the previous rung) must rescue it.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<Diode>("D", a, kGround);
    DcOptions opts;
    opts.newton.max_iterations = 8;
    const auto r = solve_dc(ckt, opts);
    EXPECT_TRUE(r.used_gmin_stepping || r.used_source_stepping);
    EXPECT_GT(r.solution.v(a), 0.6);
    EXPECT_LT(r.solution.v(a), 1.1);
}

TEST(Convergence, ThrowsWhenEverythingFails) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<Diode>("D", a, kGround);
    DcOptions opts;
    opts.newton.max_iterations = 1;
    opts.allow_gmin_stepping = false;
    opts.allow_source_stepping = false;
    EXPECT_THROW(solve_dc(ckt, opts), ConvergenceError);
}

TEST(Convergence, TightToleranceStillConverges) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(3.0));
    ckt.add<Resistor>("R", in, a, 1e3);
    ckt.add<Diode>("D", a, kGround);
    DcOptions opts;
    opts.newton.reltol = 1e-9;
    opts.newton.vntol = 1e-12;
    const auto r = solve_dc(ckt, opts);
    // Residual check: diode current equals resistor current to high accuracy.
    const auto& d = ckt.get<Diode>("D");
    const double i_r = (3.0 - r.solution.v(a)) / 1e3;
    EXPECT_NEAR(d.current(r.solution.v(a)), i_r, i_r * 1e-6);
}

TEST(Convergence, TransientStepSubdivisionOnHardEdge) {
    // A nearly ideal step into a diode clamp: the first transient step may
    // fail Newton and must subdivide rather than throw.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    PulseWave pw;
    pw.v1 = -5.0;
    pw.v2 = 5.0;
    pw.delay = 1e-9;
    pw.rise = 1e-13;  // brutal edge
    pw.width = 1.0;
    ckt.add<VSource>("V", in, kGround, Waveform::pulse(pw));
    ckt.add<Resistor>("R", in, a, 50.0);
    ckt.add<Diode>("D", a, kGround);
    ckt.add<Capacitor>("C", a, kGround, 1e-12);
    TransientOptions topts;
    topts.dt = 0.5e-9;
    TransientEngine engine(ckt, topts);
    engine.init();
    EXPECT_NO_THROW(engine.run_until(5e-9));
    EXPECT_GT(engine.v(a), 0.5);
    EXPECT_LT(engine.v(a), 1.2);
}

TEST(Convergence, NonFiniteSourceFailsFastWithLocation) {
    // A NaN stimulus poisons the RHS: the guard must abort on the FIRST
    // poisoned iteration (not grind through gmin/source stepping, which can
    // never fix arithmetic poison) and name the poisoned unknown.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(std::nan("")));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<Diode>("D", a, kGround);
    try {
        solve_dc(ckt);
        FAIL() << "expected ConvergenceError";
    } catch (const ConvergenceError& e) {
        EXPECT_TRUE(e.non_finite());
        const ConvergenceDiagnostics& diag = e.diagnostics();
        EXPECT_FALSE(diag.worst_unknown.empty()) << "must locate the poisoned unknown";
        EXPECT_LE(diag.total_iterations, 2) << "non-finite must fail fast, not retry";
        EXPECT_FALSE(diag.gmin_stepping_attempted);
        EXPECT_FALSE(diag.source_stepping_attempted);
    }
}

TEST(Convergence, NonFiniteDuringTransientIsLocatedAndNotSubdivided) {
    // The engine starts healthy (DC op at t=0 is finite), then the stimulus
    // goes NaN mid-run: advance() must raise the located non-finite error
    // instead of burning max_step_subdivisions on un-fixable poison.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = std::nan("");
    pw.delay = 1e-9;
    pw.rise = 1e-12;
    pw.width = 1.0;
    ckt.add<VSource>("V", in, kGround, Waveform::pulse(pw));
    ckt.add<Resistor>("R", in, a, 50.0);
    ckt.add<Capacitor>("C", a, kGround, 1e-12);
    TransientOptions topts;
    topts.dt = 0.5e-9;
    TransientEngine engine(ckt, topts);
    engine.init();
    try {
        engine.run_until(5e-9);
        FAIL() << "expected ConvergenceError";
    } catch (const ConvergenceError& e) {
        EXPECT_TRUE(e.non_finite());
        EXPECT_FALSE(e.diagnostics().worst_unknown.empty());
    }
}

TEST(Convergence, CancelledTokenAbortsTransientAsSolveAborted) {
    // SolveAborted (cancellation) is deliberately NOT a ConvergenceError:
    // the campaign layer must distinguish "watchdog reclaimed it" from "the
    // numerics failed".
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V", in, kGround, Waveform::sine(0.0, 1.0, 1e9));
    ckt.add<Resistor>("R", in, ckt.node("a"), 1e3);
    ckt.add<Capacitor>("C", ckt.node("a"), kGround, 1e-12);
    rfabm::exec::CancellationSource source;
    TransientOptions topts;
    topts.dt = 50e-12;
    topts.cancel = source.token();
    TransientEngine engine(ckt, topts);
    engine.init();
    EXPECT_NO_THROW(engine.step());  // healthy while the token is quiet
    source.cancel();
    EXPECT_THROW(engine.step(), SolveAborted);
    // SolveAborted must not be catchable as ConvergenceError.
    try {
        engine.step();
        FAIL() << "expected SolveAborted";
    } catch (const ConvergenceError&) {
        FAIL() << "cancellation must not masquerade as a convergence failure";
    } catch (const SolveAborted&) {
        SUCCEED();
    }
}

TEST(Convergence, HeartbeatAdvancesWithAcceptedSteps) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V", in, kGround, Waveform::sine(0.0, 1.0, 1e9));
    ckt.add<Resistor>("R", in, ckt.node("a"), 1e3);
    ckt.add<Capacitor>("C", ckt.node("a"), kGround, 1e-12);
    std::atomic<std::uint64_t> beat{0};
    TransientOptions topts;
    topts.dt = 50e-12;
    topts.heartbeat = &beat;
    TransientEngine engine(ckt, topts);
    engine.init();
    engine.run_for(2e-9);
    EXPECT_GE(beat.load(), engine.steps_taken())
        << "every accepted step must pulse the watchdog heartbeat";
}

}  // namespace
}  // namespace rfabm::circuit
