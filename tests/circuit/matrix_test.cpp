#include "circuit/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace rfabm::circuit {
namespace {

TEST(Matrix, SolvesIdentity) {
    DenseMatrix<double> a(3, 3);
    for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
    std::vector<double> b{1.0, 2.0, 3.0};
    lu_solve_in_place(a, b);
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(Matrix, SolvesKnownSystem) {
    // | 2 1 | x = | 5 |   -> x = (2, 1)
    // | 1 3 |     | 5 |
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    std::vector<double> b{5.0, 5.0};
    lu_solve_in_place(a, b);
    EXPECT_NEAR(b[0], 2.0, 1e-12);
    EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(Matrix, PivotingHandlesZeroDiagonal) {
    // Leading zero forces a row swap.
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    std::vector<double> b{3.0, 7.0};
    lu_solve_in_place(a, b);
    EXPECT_NEAR(b[0], 7.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Matrix, ThrowsOnSingular) {
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(lu_solve_in_place(a, b), SingularMatrixError);
}

TEST(Matrix, ThrowsOnShapeMismatch) {
    DenseMatrix<double> a(2, 3);
    std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(lu_solve_in_place(a, b), std::invalid_argument);
}

TEST(Matrix, ComplexSolve) {
    using C = std::complex<double>;
    DenseMatrix<C> a(2, 2);
    a(0, 0) = C(1.0, 1.0);
    a(0, 1) = C(0.0, 0.0);
    a(1, 0) = C(0.0, 0.0);
    a(1, 1) = C(0.0, 2.0);
    std::vector<C> b{C(2.0, 0.0), C(4.0, 0.0)};
    lu_solve_in_place(a, b);
    EXPECT_NEAR(b[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(b[0].imag(), -1.0, 1e-12);
    EXPECT_NEAR(b[1].real(), 0.0, 1e-12);
    EXPECT_NEAR(b[1].imag(), -2.0, 1e-12);
}

TEST(Matrix, LargeRandomSystemResidual) {
    // A diagonally dominant random-ish 40x40 system solves to tiny residual.
    const std::size_t n = 40;
    DenseMatrix<double> a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
        x_true[i] = static_cast<double>(i % 7) - 3.0;
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            a(i, j) = std::sin(static_cast<double>(i * 31 + j * 17));
            row_sum += std::fabs(a(i, j));
        }
        a(i, i) = row_sum + 1.0;
    }
    std::vector<double> b(n, 0.0);
    DenseMatrix<double> a_copy = a;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
    }
    lu_solve_in_place(a_copy, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

TEST(Matrix, ClearKeepsShape) {
    DenseMatrix<double> a(3, 3);
    a(1, 2) = 5.0;
    a.clear();
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_DOUBLE_EQ(a(1, 2), 0.0);
}

}  // namespace
}  // namespace rfabm::circuit
