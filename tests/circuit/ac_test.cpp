#include "circuit/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {
namespace {

TEST(Ac, RcLowpassMagnitudeAndPhase) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    auto& v1 = ckt.add<VSource>("V1", in, kGround, Waveform::dc(0.0));
    v1.set_ac(1.0);
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    const Solution op = solve_dc(ckt).solution;

    const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-9);  // 159 kHz
    const auto pts = run_ac(ckt, op, {fc}, out);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_NEAR(std::abs(pts[0].value), 1.0 / std::sqrt(2.0), 1e-6);
    EXPECT_NEAR(std::arg(pts[0].value), -M_PI / 4.0, 1e-6);
}

TEST(Ac, RcRollsOff20dbPerDecade) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    auto& v1 = ckt.add<VSource>("V1", in, kGround, Waveform::dc(0.0));
    v1.set_ac(1.0);
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    const Solution op = solve_dc(ckt).solution;
    const auto pts = run_ac(ckt, op, {10e6, 100e6}, out);
    const double db_drop =
        20.0 * std::log10(std::abs(pts[0].value) / std::abs(pts[1].value));
    EXPECT_NEAR(db_drop, 20.0, 0.1);
}

TEST(Ac, InductorBlocksHighFrequency) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    auto& v1 = ckt.add<VSource>("V1", in, kGround, Waveform::dc(0.0));
    v1.set_ac(1.0);
    ckt.add<Inductor>("L1", in, out, 1e-6);
    ckt.add<Resistor>("R1", out, kGround, 50.0);
    const Solution op = solve_dc(ckt).solution;
    const auto pts = run_ac(ckt, op, {1e3, 1e9}, out);
    EXPECT_NEAR(std::abs(pts[0].value), 1.0, 1e-3);   // low f: inductor short
    EXPECT_LT(std::abs(pts[1].value), 0.01);           // high f: blocked
}

TEST(Ac, CommonSourceGainMatchesGmRd) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId g = ckt.node("g");
    const NodeId d = ckt.node("d");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    auto& vg = ckt.add<VSource>("VG", g, kGround, Waveform::dc(1.0));
    vg.set_ac(1.0);
    ckt.add<Resistor>("RD", vdd, d, 10e3);
    MosfetParams p;
    p.lambda = 0.0;
    auto& m = ckt.add<Mosfet>("M1", d, g, kGround, p);
    const Solution op = solve_dc(ckt).solution;
    const MosOperatingPoint mop = m.operating_point(op);
    ASSERT_TRUE(mop.saturated);

    const auto pts = run_ac(ckt, op, {1e3}, d);
    // |Av| = gm * RD (low frequency, no caps).
    EXPECT_NEAR(std::abs(pts[0].value), mop.gm * 10e3, 1e-3);
    // Inverting stage: phase ~ 180 degrees.
    EXPECT_NEAR(std::fabs(std::arg(pts[0].value)), M_PI, 1e-3);
}

TEST(Ac, LogspaceCoversRange) {
    const auto f = logspace_hz(1e3, 1e6, 10);
    EXPECT_GE(f.size(), 30u);
    EXPECT_DOUBLE_EQ(f.front(), 1e3);
    EXPECT_NEAR(f.back(), 1e6, 1e-3);
    EXPECT_THROW(logspace_hz(0.0, 1e3, 10), std::invalid_argument);
    EXPECT_THROW(logspace_hz(1e3, 1e2, 10), std::invalid_argument);
}

}  // namespace
}  // namespace rfabm::circuit
