#include "circuit/process.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/switch_device.hpp"
#include "circuit/montecarlo.hpp"
#include "rf/random.hpp"

namespace rfabm::circuit {
namespace {

TEST(Process, DefaultCornerIsNominal) {
    EXPECT_TRUE(ProcessCorner{}.is_nominal());
    EXPECT_TRUE(named_corner(CornerName::kTT).is_nominal());
}

TEST(Process, NamedCornersHaveExpectedSigns) {
    const ProcessSpread spread;
    const ProcessCorner ff = named_corner(CornerName::kFF, spread);
    EXPECT_LT(ff.nmos_vt_shift, 0.0);
    EXPECT_GT(ff.nmos_kp_factor, 1.0);
    EXPECT_LT(ff.res_factor, 1.0);

    const ProcessCorner ss = named_corner(CornerName::kSS, spread);
    EXPECT_GT(ss.nmos_vt_shift, 0.0);
    EXPECT_LT(ss.nmos_kp_factor, 1.0);

    const ProcessCorner fs = named_corner(CornerName::kFS, spread);
    EXPECT_LT(fs.nmos_vt_shift, 0.0);
    EXPECT_GT(fs.pmos_vt_shift, 0.0);
}

TEST(Process, NamedCornersUseThreeSigma) {
    ProcessSpread spread;
    spread.vt_sigma = 0.01;
    const ProcessCorner ss = named_corner(CornerName::kSS, spread);
    EXPECT_NEAR(ss.nmos_vt_shift, 0.03, 1e-12);
}

TEST(Process, SampledCornersWithinThreeSigma) {
    rfabm::rf::Xoshiro256 rng(2024);
    const ProcessSpread spread;
    for (int i = 0; i < 500; ++i) {
        const ProcessCorner c = sample_corner(rng, spread);
        EXPECT_LE(std::fabs(c.nmos_vt_shift), 3.0 * spread.vt_sigma + 1e-12);
        EXPECT_LE(std::fabs(c.nmos_kp_factor - 1.0), 3.0 * spread.kp_sigma + 1e-12);
        EXPECT_LE(std::fabs(c.res_factor - 1.0), 3.0 * spread.res_sigma + 1e-12);
        EXPECT_GT(c.res_factor, 0.0);
    }
}

TEST(Process, SamplingIsDeterministic) {
    rfabm::rf::Xoshiro256 a(7);
    rfabm::rf::Xoshiro256 b(7);
    const ProcessCorner ca = sample_corner(a);
    const ProcessCorner cb = sample_corner(b);
    EXPECT_DOUBLE_EQ(ca.nmos_vt_shift, cb.nmos_vt_shift);
    EXPECT_DOUBLE_EQ(ca.cap_factor, cb.cap_factor);
}

TEST(Process, OnDieResistorScalesOffChipDoesNot) {
    Circuit ckt;
    auto& on_die = ckt.add<Resistor>("Ron", ckt.node("a"), kGround, 1e3);
    auto& bench = ckt.add<Resistor>("Rb", ckt.node("b"), kGround, 50.0, Placement::kOffChip);
    ProcessCorner corner;
    corner.res_factor = 1.2;
    ckt.set_process(corner);
    EXPECT_NEAR(on_die.resistance(), 1.2e3, 1e-9);
    EXPECT_NEAR(bench.resistance(), 50.0, 1e-12);
}

TEST(Process, CapacitorScaling) {
    Circuit ckt;
    auto& c = ckt.add<Capacitor>("C1", ckt.node("a"), kGround, 1e-12);
    ProcessCorner corner;
    corner.cap_factor = 0.9;
    ckt.set_process(corner);
    EXPECT_NEAR(c.capacitance(), 0.9e-12, 1e-20);
    // Back to nominal.
    ckt.set_process(ProcessCorner{});
    EXPECT_NEAR(c.capacitance(), 1e-12, 1e-20);
}

TEST(Process, SwitchRonTracksMobility) {
    Circuit ckt;
    auto& sw = ckt.add<Switch>("S1", ckt.node("a"), kGround, 100.0);
    ProcessCorner corner;
    corner.nmos_kp_factor = 1.25;
    ckt.set_process(corner);
    EXPECT_NEAR(sw.ron(), 80.0, 1e-9);
}

TEST(Process, DeviceAddedAfterSetProcessGetsCorner) {
    Circuit ckt;
    ProcessCorner corner;
    corner.res_factor = 1.5;
    ckt.set_process(corner);
    auto& r = ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    EXPECT_NEAR(r.resistance(), 1.5e3, 1e-9);
}

TEST(MonteCarlo, DriverIsDeterministicAndComplete) {
    const auto samples = run_monte_carlo(16, 42, ProcessSpread{},
                                         [](const ProcessCorner& c) { return c.nmos_vt_shift; });
    const auto again = run_monte_carlo(16, 42, ProcessSpread{},
                                       [](const ProcessCorner& c) { return c.nmos_vt_shift; });
    ASSERT_EQ(samples.size(), 16u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(samples[i].value, again[i].value);
        EXPECT_DOUBLE_EQ(samples[i].corner.nmos_vt_shift, samples[i].value);
    }
}

TEST(MonteCarlo, BracketingCornersContainNominalFirst) {
    const auto corners = bracketing_corners();
    ASSERT_EQ(corners.size(), 5u);
    EXPECT_TRUE(corners[0].is_nominal());
    EXPECT_FALSE(corners[1].is_nominal());
}

}  // namespace
}  // namespace rfabm::circuit
