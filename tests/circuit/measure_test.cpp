#include "circuit/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices/diode.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {
namespace {

TEST(Measure, SettleOnDcIsImmediate) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.5));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 100e-9;
    const SettleResult r = settle_cycle_average(engine, in, kGround, sopts);
    EXPECT_TRUE(r.settled);
    EXPECT_NEAR(r.value, 1.5, 1e-6);
    EXPECT_EQ(r.windows, sopts.min_windows);
}

TEST(Measure, SineAveragesToOffset) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.7, 1.0, 10e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 1e-9;  // 100 points/cycle
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 100e-9;
    const SettleResult r = settle_cycle_average(engine, in, kGround, sopts);
    EXPECT_TRUE(r.settled);
    EXPECT_NEAR(r.value, 0.7, 1e-3);
}

TEST(Measure, RectifierSettlesToDcLevel) {
    // Diode peak detector: settle should wait for the RC charge-up.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 10e6));
    ckt.add<Diode>("D1", in, out);
    ckt.add<Resistor>("RL", out, kGround, 100e3);
    ckt.add<Capacitor>("CL", out, kGround, 200e-12);  // tau = 20 us
    TransientOptions topts;
    topts.dt = 2e-9;
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 100e-9;
    sopts.cycles_per_window = 10;
    sopts.abs_tol = 1e-6;
    const SettleResult r = settle_cycle_average(engine, out, kGround, sopts);
    EXPECT_TRUE(r.settled);
    EXPECT_GT(r.value, 0.3);
    // Multiple windows were needed (the cap had to charge through ~tau).
    EXPECT_GT(r.windows, 3);
}

TEST(Measure, DifferentialProbeCancelsCommonMode) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    ckt.add<VSource>("VA", a, kGround, Waveform::sine(1.0, 0.5, 1e6));
    ckt.add<VSource>("VB", b, kGround, Waveform::sine(0.4, 0.5, 1e6));
    ckt.add<Resistor>("RA", a, kGround, 1e3);
    ckt.add<Resistor>("RB", b, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 10e-9;
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 1e-6;
    const SettleResult r = settle_cycle_average(engine, a, b, sopts);
    EXPECT_TRUE(r.settled);
    EXPECT_NEAR(r.value, 0.6, 1e-3);
}

TEST(Measure, WindowAverageOfSettledWave) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.25, 1.0, 10e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    engine.init();
    const double avg = window_average(engine, in, kGround, 1e-6);
    EXPECT_NEAR(avg, 0.25, 2e-3);
}

TEST(Measure, RejectsNonPositivePeriod) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    TransientEngine engine(ckt, {});
    SettleOptions sopts;
    sopts.period = 0.0;
    EXPECT_THROW(settle_cycle_average(engine, kGround, kGround, sopts), std::invalid_argument);
}

TEST(Measure, UnsettledReportsFalse) {
    // A very slow ramp never settles within max_windows.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::pwl({{0.0, 0.0}, {1.0, 1000.0}}));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 10e-9;
    TransientEngine engine(ckt, topts);
    SettleOptions sopts;
    sopts.period = 100e-9;
    sopts.max_windows = 5;
    const SettleResult r = settle_cycle_average(engine, in, kGround, sopts);
    EXPECT_FALSE(r.settled);
    EXPECT_EQ(r.windows, 5);
}

}  // namespace
}  // namespace rfabm::circuit
