#include "circuit/dc.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/devices/controlled.hpp"
#include "circuit/devices/diode.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"

namespace rfabm::circuit {
namespace {

TEST(Dc, VoltageDivider) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(10.0));
    ckt.add<Resistor>("R1", in, mid, 3e3);
    ckt.add<Resistor>("R2", mid, kGround, 7e3);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(in), 10.0, 1e-9);
    EXPECT_NEAR(r.solution.v(mid), 7.0, 1e-9);
}

TEST(Dc, SourceCurrentConvention) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    auto& v1 = ckt.add<VSource>("V1", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    const DcResult r = solve_dc(ckt);
    // Delivering 5 mA: branch current is negative per SPICE convention.
    EXPECT_NEAR(v1.current(r.solution), -5e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
    Circuit ckt;
    const NodeId out = ckt.node("out");
    // 1 mA pushed from ground into "out" raises it to +1 V across 1 kOhm.
    ckt.add<ISource>("I1", kGround, out, Waveform::dc(1e-3));
    ckt.add<Resistor>("R1", out, kGround, 1e3);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(out), 1.0, 1e-9);
}

TEST(Dc, CapacitorIsOpen) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(3.0));
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Capacitor>("C1", mid, kGround, 1e-9);
    const DcResult r = solve_dc(ckt);
    // No DC path to ground except gmin: node floats up to the source.
    EXPECT_NEAR(r.solution.v(mid), 3.0, 1e-5);
}

TEST(Dc, InductorIsShort) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(2.0));
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Inductor>("L1", mid, kGround, 1e-6);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(mid), 0.0, 1e-9);
    // All current flows through the inductor: 2 mA.
    EXPECT_NEAR(r.solution.branch_current(ckt.get<Inductor>("L1").first_branch()), 2e-3, 1e-8);
}

TEST(Dc, VcvsGain) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(0.5));
    ckt.add<Vcvs>("E1", out, kGround, in, kGround, 4.0);
    ckt.add<Resistor>("RL", out, kGround, 1e3);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(out), 2.0, 1e-9);
}

TEST(Dc, VccsIntoLoad) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.0));
    // gm = 1 mS pulling current out of "out" (from out to ground through the
    // device) -> v(out) = -gm*R*vin with the load.
    ckt.add<Vccs>("G1", out, kGround, in, kGround, 1e-3);
    ckt.add<Resistor>("RL", out, kGround, 2e3);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(out), -2.0, 1e-9);
}

TEST(Dc, SwitchOpenAndClosed) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.0));
    auto& sw = ckt.add<Switch>("S1", in, out, 1.0, 1e9);
    ckt.add<Resistor>("RL", out, kGround, 1e3);
    const DcResult open_r = solve_dc(ckt);
    EXPECT_LT(open_r.solution.v(out), 1e-4);
    sw.set_closed(true);
    const DcResult closed_r = solve_dc(ckt);
    EXPECT_NEAR(closed_r.solution.v(out), 1.0, 1e-3);
}

TEST(Dc, DiodeForwardDrop) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R1", in, a, 1e3);
    ckt.add<Diode>("D1", a, kGround);
    const DcResult r = solve_dc(ckt);
    // Silicon diode at ~4.3 mA: 0.6-0.75 V drop.
    EXPECT_GT(r.solution.v(a), 0.55);
    EXPECT_LT(r.solution.v(a), 0.80);
}

TEST(Dc, DiodeReverseBlocks) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(-5.0));
    ckt.add<Resistor>("R1", in, a, 1e3);
    ckt.add<Diode>("D1", a, kGround);
    const DcResult r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(a), -5.0, 1e-2);
}

TEST(Dc, NmosCommonSourceOperatingPoint) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId g = ckt.node("g");
    const NodeId d = ckt.node("d");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    ckt.add<VSource>("VG", g, kGround, Waveform::dc(1.0));
    ckt.add<Resistor>("RD", vdd, d, 10e3);
    MosfetParams p;
    p.vt0 = 0.5;
    p.kp = 100e-6;
    p.w = 10e-6;
    p.l = 1e-6;
    p.lambda = 0.0;
    auto& m = ckt.add<Mosfet>("M1", d, g, kGround, p);
    const DcResult r = solve_dc(ckt);
    // Saturation current: 0.5*KP*(W/L)*(VGS-VT)^2 = 0.5*100u*10*0.25 = 125 uA.
    // v(d) = 2.5 - 125u * 10k = 1.25 V; device indeed saturated (1.25 > 0.5).
    EXPECT_NEAR(r.solution.v(d), 1.25, 1e-3);
    EXPECT_TRUE(m.operating_point(r.solution).saturated);
}

TEST(Dc, NmosTriodeRegion) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId g = ckt.node("g");
    const NodeId d = ckt.node("d");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    ckt.add<VSource>("VG", g, kGround, Waveform::dc(2.5));
    ckt.add<Resistor>("RD", vdd, d, 100e3);
    MosfetParams p;
    p.lambda = 0.0;
    auto& m = ckt.add<Mosfet>("M1", d, g, kGround, p);
    const DcResult r = solve_dc(ckt);
    const MosOperatingPoint op = m.operating_point(r.solution);
    EXPECT_FALSE(op.saturated);
    EXPECT_LT(r.solution.v(d), 0.1);  // deep triode: nearly shorted
}

TEST(Dc, PmosSourceFollowerConducts) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId d = ckt.node("d");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(2.5));
    MosfetParams p;
    p.type = MosType::kPmos;
    p.vt0 = 0.5;
    // Gate at ground, source at vdd: |VGS| = 2.5 > VT -> conducts, pulls the
    // drain node (loaded by a resistor) up.
    ckt.add<Mosfet>("M1", d, kGround, vdd, p);
    ckt.add<Resistor>("RL", d, kGround, 10e3);
    const DcResult r = solve_dc(ckt);
    EXPECT_GT(r.solution.v(d), 2.0);
}

TEST(Dc, WarmStartTakesFewerIterations) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R1", in, a, 1e3);
    ckt.add<Diode>("D1", a, kGround);
    const DcResult cold = solve_dc(ckt);
    const DcResult warm = solve_dc(ckt, {}, &cold.solution);
    EXPECT_LT(warm.iterations, cold.iterations);
    // Both converged within Newton tolerance of each other.
    EXPECT_NEAR(warm.solution.v(a), cold.solution.v(a), 1e-6);
}

TEST(Dc, SweepIsMonotoneForDivider) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    auto& v1 = ckt.add<VSource>("V1", in, kGround, Waveform::dc(0.0));
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Resistor>("R2", mid, kGround, 1e3);
    const auto out = dc_sweep(ckt, v1, {0.0, 1.0, 2.0, 3.0}, mid);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_NEAR(out[0], 0.0, 1e-9);
    EXPECT_NEAR(out[3], 1.5, 1e-9);
}

TEST(Dc, DuplicateDeviceNameThrows) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    EXPECT_THROW(ckt.add<Resistor>("R1", ckt.node("b"), kGround, 1e3), std::invalid_argument);
}

TEST(Dc, NodeNamesResolve) {
    Circuit ckt;
    const NodeId a = ckt.node("alpha");
    EXPECT_EQ(ckt.find_node("alpha"), a);
    EXPECT_EQ(ckt.find_node("0"), kGround);
    EXPECT_EQ(ckt.find_node("gnd"), kGround);
    EXPECT_FALSE(ckt.find_node("missing").has_value());
    EXPECT_EQ(ckt.node_name(a), "alpha");
}

}  // namespace
}  // namespace rfabm::circuit
