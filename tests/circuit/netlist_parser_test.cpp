#include "circuit/netlist_parser.hpp"

#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"
#include "circuit/transient.hpp"

namespace rfabm::circuit {
namespace {

TEST(EngValue, PlainAndSuffixes) {
    EXPECT_DOUBLE_EQ(parse_eng_value("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(parse_eng_value("-3"), -3.0);
    EXPECT_DOUBLE_EQ(parse_eng_value("1e3"), 1e3);
    EXPECT_DOUBLE_EQ(parse_eng_value("2.2k"), 2200.0);
    EXPECT_DOUBLE_EQ(parse_eng_value("10p"), 10e-12);
    EXPECT_DOUBLE_EQ(parse_eng_value("100n"), 100e-9);
    EXPECT_DOUBLE_EQ(parse_eng_value("5u"), 5e-6);
    EXPECT_DOUBLE_EQ(parse_eng_value("3m"), 3e-3);
    EXPECT_DOUBLE_EQ(parse_eng_value("1meg"), 1e6);
    EXPECT_DOUBLE_EQ(parse_eng_value("2G"), 2e9);
    EXPECT_DOUBLE_EQ(parse_eng_value("4f"), 4e-15);
    EXPECT_DOUBLE_EQ(parse_eng_value("1t"), 1e12);
}

TEST(EngValue, RejectsGarbage) {
    EXPECT_THROW(parse_eng_value("abc"), std::invalid_argument);
    EXPECT_THROW(parse_eng_value("1.5x"), std::invalid_argument);
    EXPECT_THROW(parse_eng_value(""), std::invalid_argument);
}

TEST(Netlist, VoltageDividerSolves) {
    Circuit ckt;
    const std::size_t n = parse_netlist(ckt, R"(
* a comment line
V1 in 0 DC 10
R1 in mid 3k
R2 mid gnd 7k   ; trailing comment
)");
    EXPECT_EQ(n, 3u);
    const auto r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(*ckt.find_node("mid")), 7.0, 1e-9);
}

TEST(Netlist, ContinuationLines) {
    Circuit ckt;
    parse_netlist(ckt, "V1 in 0\n+ DC 5\nR1 in 0 1k\n");
    const auto r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(*ckt.find_node("in")), 5.0, 1e-9);
}

TEST(Netlist, SineSourceAndTransient) {
    Circuit ckt;
    parse_netlist(ckt, R"(
V1 in 0 SIN(0 1 1e6)
R1 in out 1k
C1 out 0 1n
)");
    TransientOptions topts;
    topts.dt = 10e-9;
    TransientEngine engine(ckt, topts);
    engine.init();
    engine.run_until(5e-6);
    // The low-pass output oscillates but stays well inside the input range.
    EXPECT_LT(std::fabs(engine.v(*ckt.find_node("out"))), 1.0);
}

TEST(Netlist, PulseSource) {
    Circuit ckt;
    parse_netlist(ckt, "V1 a 0 PULSE(0 3.3 1n 0.1n 0.1n 4n 10n)\nR1 a 0 1k\n");
    auto& v = ckt.get<VSource>("V1");
    EXPECT_DOUBLE_EQ(v.waveform().value(0.0), 0.0);
    EXPECT_DOUBLE_EQ(v.waveform().value(3e-9), 3.3);
}

TEST(Netlist, AcMagnitude) {
    Circuit ckt;
    parse_netlist(ckt, "V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n");
    const auto op = solve_dc(ckt).solution;
    const auto pts = run_ac(ckt, op, {159155.0}, *ckt.find_node("out"));
    EXPECT_NEAR(std::abs(pts[0].value), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Netlist, MosfetWithModelCard) {
    Circuit ckt;
    parse_netlist(ckt, R"(
.model nch NMOS KP=100u VTO=0.5 LAMBDA=0
VDD vdd 0 DC 2.5
VG  g   0 DC 1.0
RD  vdd d 10k
M1  d g 0 nch W=10u L=1u
)");
    const auto r = solve_dc(ckt);
    // Same operating point as the hand-built test: 125 uA -> v(d) = 1.25 V.
    EXPECT_NEAR(r.solution.v(*ckt.find_node("d")), 1.25, 1e-3);
}

TEST(Netlist, PmosModel) {
    Circuit ckt;
    parse_netlist(ckt, R"(
.model pch PMOS KP=40u VTO=0.5
VDD vdd 0 DC 2.5
M1 d 0 vdd pch W=25u L=1u
RL d 0 10k
)");
    const auto r = solve_dc(ckt);
    EXPECT_GT(r.solution.v(*ckt.find_node("d")), 2.0);
}

TEST(Netlist, DiodeParameters) {
    Circuit ckt;
    parse_netlist(ckt, "V1 in 0 DC 5\nR1 in a 1k\nD1 a 0 IS=1e-12 N=2\n");
    const auto r = solve_dc(ckt);
    const double va = r.solution.v(*ckt.find_node("a"));
    EXPECT_GT(va, 0.5);
    EXPECT_LT(va, 1.2);  // N=2 doubles the drop scale
}

TEST(Netlist, SwitchStates) {
    Circuit ckt;
    parse_netlist(ckt, "S1 a b ON RON=10\nS2 c d OFF\n");
    EXPECT_TRUE(ckt.get<Switch>("S1").closed());
    EXPECT_NEAR(ckt.get<Switch>("S1").ron(), 10.0, 1e-9);
    EXPECT_FALSE(ckt.get<Switch>("S2").closed());
}

TEST(Netlist, ControlledSources) {
    Circuit ckt;
    parse_netlist(ckt, R"(
V1 in 0 DC 0.5
E1 out 0 in 0 4
RL out 0 1k
)");
    const auto r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(*ckt.find_node("out")), 2.0, 1e-9);
}

TEST(Netlist, OffchipPlacementSkipsProcess) {
    Circuit ckt;
    parse_netlist(ckt, "R1 a 0 1k\nR2 b 0 1k OFFCHIP\n");
    ProcessCorner corner;
    corner.res_factor = 1.2;
    ckt.set_process(corner);
    EXPECT_NEAR(ckt.get<Resistor>("R1").resistance(), 1200.0, 1e-9);
    EXPECT_NEAR(ckt.get<Resistor>("R2").resistance(), 1000.0, 1e-9);
}

TEST(Netlist, InductorAndEndDirective) {
    Circuit ckt;
    const std::size_t n = parse_netlist(ckt, "L1 a b 10n\n.end\nR_ignored c 0 1k\n");
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(ckt.find_device("R_ignored"), nullptr);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "R1 a 0 1k\nQ1 a b c\n");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

TEST(Netlist, ErrorCases) {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, "+ continuation first\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, "R1 a 0\n"), NetlistError);          // missing value
    EXPECT_THROW(parse_netlist(ckt, "V1 a 0 TRIANGLE 1\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, "M1 d g s nomodel\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, ".model x NMOS FOO=1\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, ".weird\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, "S1 a b MAYBE\n"), NetlistError);
    EXPECT_THROW(parse_netlist(ckt, "V1 a 0 SIN(0 1\n"), NetlistError);  // missing ')'
}

TEST(Netlist, ErrorsCarrySourceNameAndColumn) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "R1 a 0 1k\nV1 a 0 TRIANGLE 1\n", "deck.cir");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.source(), "deck.cir");
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 8u);  // points at the TRIANGLE token
        const std::string msg = e.what();
        EXPECT_NE(msg.find("deck.cir:2:8"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unknown source kind"), std::string::npos) << msg;
    }
}

TEST(Netlist, ErrorColumnPointsAtBadValueToken) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "R1 a 0 1x\n", "deck.cir");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_EQ(e.column(), 8u);  // the malformed "1x" value
    }
}

TEST(Netlist, ErrorColumnAccountsForLeadingWhitespace) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "   .weird\n");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_EQ(e.column(), 4u);  // card starts after three spaces
        // Without a source name the classic "netlist line N" prefix remains.
        EXPECT_NE(std::string(e.what()).find("netlist line 1:4"), std::string::npos)
            << e.what();
    }
}

TEST(Netlist, ErrorColumnPointsAtUnexpectedToken) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "D1 a 0 IS=1e-15 garbage\n", "d.cir");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.column(), 17u);  // the loose "garbage" token
        EXPECT_NE(std::string(e.what()).find("garbage"), std::string::npos);
    }
}

TEST(Netlist, ContinuationWithoutCardReportsItsLine) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "* header comment\n+ R1 a 0 1k\n", "frag.cir");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 1u);
    }
}

TEST(Netlist, UndefinedModelErrorNamesTheToken) {
    Circuit ckt;
    try {
        parse_netlist(ckt, "M1 d g s nomodel\n", "m.cir");
        FAIL() << "expected NetlistError";
    } catch (const NetlistError& e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_EQ(e.column(), 10u);  // the model-name token
        EXPECT_NE(std::string(e.what()).find("undefined model"), std::string::npos);
    }
}

TEST(Netlist, HalfWaveRectifierDeckEndToEnd) {
    // The paper's detector concept as a netlist: biased MOS + RC load.
    Circuit ckt;
    parse_netlist(ckt, R"(
.model nch NMOS KP=100u VTO=0.5 LAMBDA=0.03
VDD vdd 0 DC 2.5
VB  vb  0 DC 0.5          ; gate biased exactly at threshold
VRF rf  0 SIN(0 0.3 1e9)
CC  rf  vg 2p
RB  vb  vg 10k
RD  vdd d  2k
M1  d   vg 0 nch W=20u L=0.5u
CL  d   0  2p
)");
    TransientOptions topts;
    topts.dt = 1.0 / 1e9 / 24.0;
    TransientEngine engine(ckt, topts);
    engine.init();
    const double v_start = engine.v(*ckt.find_node("d"));
    engine.run_for(100e-9);
    // Rectified current pulls the drain down from its zero-signal level.
    EXPECT_LT(engine.v(*ckt.find_node("d")), v_start - 0.05);
}

}  // namespace
}  // namespace rfabm::circuit
