#include "circuit/mna.hpp"

#include <gtest/gtest.h>

namespace rfabm::circuit {
namespace {

TEST(Mna, ConductanceStampSkipsGround) {
    MnaSystem sys;
    sys.reset(3, 0);  // nodes 0(gnd), 1, 2 -> 2x2 matrix
    sys.add_conductance(1, kGround, 0.5);
    sys.add_conductance(1, 2, 0.25);
    EXPECT_DOUBLE_EQ(sys.matrix()(0, 0), 0.75);
    EXPECT_DOUBLE_EQ(sys.matrix()(0, 1), -0.25);
    EXPECT_DOUBLE_EQ(sys.matrix()(1, 0), -0.25);
    EXPECT_DOUBLE_EQ(sys.matrix()(1, 1), 0.25);
}

TEST(Mna, CurrentStampSign) {
    MnaSystem sys;
    sys.reset(3, 0);
    // 1 A from node 1 to node 2: leaves 1, enters 2.
    sys.add_current(1, 2, 1.0);
    EXPECT_DOUBLE_EQ(sys.rhs()[0], -1.0);
    EXPECT_DOUBLE_EQ(sys.rhs()[1], +1.0);
}

TEST(Mna, TransconductanceStamp) {
    MnaSystem sys;
    sys.reset(4, 0);
    // i = g*(v1 - v2) from node 3 to ground.
    sys.add_transconductance(3, kGround, 1, 2, 2.0);
    EXPECT_DOUBLE_EQ(sys.matrix()(2, 0), 2.0);
    EXPECT_DOUBLE_EQ(sys.matrix()(2, 1), -2.0);
}

TEST(Mna, BranchIndicesFollowNodes) {
    MnaSystem sys;
    sys.reset(3, 2);  // 2 nodes + 2 branches = dimension 4
    EXPECT_EQ(sys.dimension(), 4u);
    EXPECT_EQ(sys.branch_index(0), 2);
    EXPECT_EQ(sys.branch_index(1), 3);
}

TEST(Mna, VoltageSourceStampSolvesDivider) {
    // V=2V source at node 1, R1=1 between 1-2, R2=1 between 2-gnd.
    MnaSystem sys;
    sys.reset(3, 1);
    sys.add_conductance(1, 2, 1.0);
    sys.add_conductance(2, kGround, 1.0);
    sys.add_branch_to_node(1, 0, +1.0);
    sys.add_node_to_branch(0, 1, +1.0);
    sys.add_branch_rhs(0, 2.0);
    std::vector<double> x = sys.rhs();
    lu_solve_in_place(sys.matrix(), x);
    EXPECT_NEAR(x[0], 2.0, 1e-12);  // v(1)
    EXPECT_NEAR(x[1], 1.0, 1e-12);  // v(2)
    EXPECT_NEAR(x[2], -1.0, 1e-12); // source current (delivering => negative)
}

TEST(Mna, ResetClearsValues) {
    MnaSystem sys;
    sys.reset(3, 0);
    sys.add_conductance(1, 2, 1.0);
    sys.add_current(1, kGround, 1.0);
    sys.reset(3, 0);
    EXPECT_DOUBLE_EQ(sys.matrix()(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(sys.rhs()[0], 0.0);
}

TEST(Mna, NodeDiagonal) {
    MnaSystem sys;
    sys.reset(2, 0);
    sys.add_node_diagonal(1, 1e-3);
    sys.add_node_diagonal(kGround, 5.0);  // ignored
    EXPECT_DOUBLE_EQ(sys.matrix()(0, 0), 1e-3);
}

}  // namespace
}  // namespace rfabm::circuit
