#include "circuit/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {
namespace {

/// RC charging from a step: v(t) = V * (1 - exp(-t/RC)).
class RcStepFixture : public ::testing::TestWithParam<Integration> {};

TEST_P(RcStepFixture, MatchesAnalyticResponse) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    PulseWave step;
    step.v1 = 0.0;
    step.v2 = 1.0;
    step.delay = 0.0;
    step.rise = 1e-12;
    step.width = 1.0;  // effectively a step
    ckt.add<VSource>("V1", in, kGround, Waveform::pulse(step));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);  // tau = 1 us

    TransientOptions opts;
    opts.dt = 10e-9;
    opts.method = GetParam();
    TransientEngine engine(ckt, opts);
    engine.init();
    engine.run_until(2e-6);  // 2 tau

    const double expected = 1.0 - std::exp(-2.0);
    EXPECT_NEAR(engine.v(out), expected, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Methods, RcStepFixture,
                         ::testing::Values(Integration::kBackwardEuler,
                                           Integration::kTrapezoidal),
                         [](const auto& info) {
                             return info.param == Integration::kBackwardEuler ? "BE" : "TRAP";
                         });

TEST(Transient, TrapezoidalIsMoreAccurateThanBackwardEuler) {
    auto run = [](Integration method) {
        Circuit ckt;
        const NodeId in = ckt.node("in");
        const NodeId out = ckt.node("out");
        PulseWave step;
        step.v2 = 1.0;
        step.rise = 1e-12;
        step.width = 1.0;
        ckt.add<VSource>("V1", in, kGround, Waveform::pulse(step));
        ckt.add<Resistor>("R1", in, out, 1e3);
        ckt.add<Capacitor>("C1", out, kGround, 1e-9);
        TransientOptions opts;
        opts.dt = 100e-9;  // coarse on purpose
        opts.method = method;
        TransientEngine engine(ckt, opts);
        engine.init();
        engine.run_until(1e-6);
        return std::fabs(engine.v(out) - (1.0 - std::exp(-1.0)));
    };
    EXPECT_LT(run(Integration::kTrapezoidal), run(Integration::kBackwardEuler) * 0.5);
}

TEST(Transient, SineThroughRcLowpassAttenuates) {
    // 1 MHz sine through RC with fc = 159 kHz: |H| = 1/sqrt(1+(f/fc)^2) ~ 0.157.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 1e6));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    TransientOptions opts;
    opts.dt = 1e-9;
    TransientEngine engine(ckt, opts);
    engine.init();
    engine.run_until(10e-6);  // settle the transient

    // Peak-detect over one more period.
    double peak = 0.0;
    const double t_end = engine.time() + 1e-6;
    while (engine.time() < t_end) {
        engine.step();
        peak = std::max(peak, std::fabs(engine.v(out)));
    }
    const double expected = 1.0 / std::sqrt(1.0 + std::pow(2.0 * M_PI * 1e6 * 1e-6, 2.0));
    EXPECT_NEAR(peak, expected, 0.01);
}

TEST(Transient, LcOscillatorConservesFrequency) {
    // Parallel LC rung by an initial capacitor voltage via DC source removed...
    // Simpler: series RLC with tiny R driven by a step shows ringing at
    // f0 = 1/(2*pi*sqrt(LC)) = 5.03 MHz for L=1u, C=1n.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    const NodeId out = ckt.node("out");
    PulseWave step;
    step.v2 = 1.0;
    step.rise = 1e-12;
    step.width = 1.0;
    ckt.add<VSource>("V1", in, kGround, Waveform::pulse(step));
    ckt.add<Resistor>("R1", in, mid, 5.0);
    ckt.add<Inductor>("L1", mid, out, 1e-6);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    TransientOptions opts;
    opts.dt = 2e-9;
    TransientEngine engine(ckt, opts);
    engine.init();

    // Count zero crossings of (v(out) - 1) over 10 us.
    int crossings = 0;
    double prev = engine.v(out) - 1.0;
    while (engine.time() < 10e-6) {
        engine.step();
        const double now = engine.v(out) - 1.0;
        if ((prev < 0.0 && now >= 0.0) || (prev > 0.0 && now <= 0.0)) ++crossings;
        prev = now;
    }
    // Expected f0 ~ 5.03 MHz -> ~100.7 crossings in 10 us (2 per period).
    EXPECT_NEAR(crossings, 100, 4);
}

TEST(Transient, RecorderCapturesSamples) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 1e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions opts;
    opts.dt = 10e-9;
    TransientEngine engine(ckt, opts);
    Recorder rec({in});
    engine.add_observer(&rec);
    engine.init();
    engine.run_until(1e-6);
    ASSERT_EQ(rec.num_channels(), 1u);
    EXPECT_EQ(rec.time().size(), rec.channel(0).size());
    EXPECT_NEAR(static_cast<double>(rec.time().size()), 100.0, 2.0);
    // The sine should have covered its full range.
    double lo = 1e9;
    double hi = -1e9;
    for (double v : rec.channel(0)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_NEAR(hi, 1.0, 0.01);
    EXPECT_NEAR(lo, -1.0, 0.01);
}

TEST(Transient, RecorderDecimation) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.0));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions opts;
    opts.dt = 1e-9;
    TransientEngine engine(ckt, opts);
    Recorder rec({in}, 10);
    engine.add_observer(&rec);
    engine.init();
    engine.run_until(100e-9);
    EXPECT_NEAR(static_cast<double>(rec.time().size()), 10.0, 1.0);
}

TEST(Transient, InitFromExplicitState) {
    Circuit ckt;
    const NodeId out = ckt.node("out");
    ckt.add<Resistor>("R1", out, kGround, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    ckt.finalize();
    Solution ic(ckt.num_nodes(), ckt.num_branches());
    ic.raw()[0] = 1.0;  // capacitor charged to 1 V
    TransientOptions opts;
    opts.dt = 10e-9;
    TransientEngine engine(ckt, opts);
    engine.init_from(ic);
    engine.run_until(1e-6);  // one tau of discharge
    EXPECT_NEAR(engine.v(out), std::exp(-1.0), 5e-3);
}

TEST(Transient, TimeAdvancesByDt) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.0));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    TransientOptions opts;
    opts.dt = 1e-9;
    TransientEngine engine(ckt, opts);
    engine.init();
    engine.step();
    EXPECT_DOUBLE_EQ(engine.time(), 1e-9);
    engine.run_for(9e-9);
    EXPECT_NEAR(engine.time(), 10e-9, 1e-15);
    EXPECT_EQ(engine.steps_taken(), 10u);
}

TEST(Transient, RejectsNonPositiveDt) {
    Circuit ckt;
    TransientOptions opts;
    opts.dt = 0.0;
    EXPECT_THROW(TransientEngine(ckt, opts), std::invalid_argument);
}

}  // namespace
}  // namespace rfabm::circuit
