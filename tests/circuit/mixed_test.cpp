#include "circuit/mixed/digital.hpp"

#include <gtest/gtest.h>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::mixed {
namespace {

using circuit::Capacitor;
using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::Switch;
using circuit::TransientEngine;
using circuit::TransientOptions;
using circuit::VSource;
using circuit::Waveform;

TEST(Digital, SignalsAreNamedAndStable) {
    DigitalDomain dom;
    const SignalId a = dom.signal("clk");
    const SignalId b = dom.signal("clk");
    EXPECT_EQ(a, b);
    EXPECT_EQ(dom.find_signal("clk"), a);
    EXPECT_THROW(dom.find_signal("nope"), std::invalid_argument);
    EXPECT_FALSE(dom.value(a));
    dom.set(a, true);
    EXPECT_TRUE(dom.value(a));
}

TEST(Digital, ComparatorFollowsSineWithHysteresis) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 10e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);

    DigitalDomain dom;
    const SignalId out = dom.signal("cmp");
    dom.add_comparator(in, kGround, 0.0, 0.05, out);

    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&dom);
    engine.init();

    // Count rising edges over 10 periods: expect ~10.
    int edges = 0;
    bool prev = dom.value(out);
    while (engine.time() < 1e-6) {
        engine.step();
        const bool now = dom.value(out);
        if (now && !prev) ++edges;
        prev = now;
    }
    EXPECT_NEAR(edges, 10, 1);
}

TEST(Digital, HysteresisSuppressesNoiseNearThreshold) {
    // A sine whose amplitude is below the hysteresis band never toggles.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 0.02, 10e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    DigitalDomain dom;
    const SignalId out = dom.signal("cmp");
    dom.add_comparator(in, kGround, 0.0, 0.05, out);
    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&dom);
    engine.init();
    int toggles = 0;
    bool prev = dom.value(out);
    while (engine.time() < 1e-6) {
        engine.step();
        if (dom.value(out) != prev) ++toggles;
        prev = dom.value(out);
    }
    EXPECT_EQ(toggles, 0);
}

TEST(Digital, DividerBlockDividesByEight) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 80e6));
    ckt.add<Resistor>("R1", in, kGround, 1e3);

    DigitalDomain dom;
    const SignalId clk = dom.signal("clk");
    const SignalId div = dom.signal("div");
    dom.add_comparator(in, kGround, 0.0, 0.05, clk);
    dom.add_block<DividerBlock>(clk, div, 8u);

    TransientOptions topts;
    topts.dt = 0.5e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&dom);
    engine.init();

    // 80 MHz / 8 = 10 MHz: expect ~10 rising edges of div in 1 us.
    int edges = 0;
    bool prev = dom.value(div);
    while (engine.time() < 1e-6) {
        engine.step();
        const bool now = dom.value(div);
        if (now && !prev) ++edges;
        prev = now;
    }
    EXPECT_NEAR(edges, 10, 1);
}

TEST(Digital, DividerRejectsNonPowerOfTwo) {
    DigitalDomain dom;
    const SignalId a = dom.signal("a");
    const SignalId b = dom.signal("b");
    EXPECT_THROW(dom.add_block<DividerBlock>(a, b, 3u), std::invalid_argument);
    EXPECT_THROW(dom.add_block<DividerBlock>(a, b, 1u), std::invalid_argument);
}

TEST(Digital, SwitchBindingGatesAnalogPath) {
    // Comparator output closes a switch charging a capacitor: mixed-signal
    // loop in its simplest form.
    Circuit ckt;
    const NodeId src = ckt.node("src");
    const NodeId ctl = ckt.node("ctl");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("VS", src, kGround, Waveform::dc(1.0));
    circuit::PulseWave ctl_wave;
    ctl_wave.v1 = 0.0;
    ctl_wave.v2 = 1.0;
    ctl_wave.delay = 500e-9;
    ctl_wave.rise = 1e-9;
    ctl_wave.width = 10.0;
    ckt.add<VSource>("VC", ctl, kGround, Waveform::pulse(ctl_wave));
    ckt.add<Resistor>("RC", ctl, kGround, 1e3);
    auto& sw = ckt.add<Switch>("S1", src, out, 10.0);
    ckt.add<Resistor>("RL", out, kGround, 10e3);

    DigitalDomain dom;
    const SignalId gate = dom.signal("gate");
    dom.add_comparator(ctl, kGround, 0.5, 0.05, gate);
    dom.bind_switch(sw, gate);

    TransientOptions topts;
    topts.dt = 5e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&dom);
    engine.init();
    engine.run_until(400e-9);
    EXPECT_LT(engine.v(out), 0.01);  // switch still open
    engine.run_until(1e-6);
    EXPECT_GT(engine.v(out), 0.9);   // switch closed after control edge
}

TEST(Digital, InvertedBindingClosesWhenLow) {
    Circuit ckt;
    auto& sw = ckt.add<Switch>("S1", ckt.node("a"), kGround);
    DigitalDomain dom;
    const SignalId sig = dom.signal("sig");
    dom.bind_switch(sw, sig, /*invert=*/true);
    dom.settle_bindings();
    EXPECT_TRUE(sw.closed());
    dom.set(sig, true);
    dom.settle_bindings();
    EXPECT_FALSE(sw.closed());
}

TEST(Digital, RisingFallingEdgeDetection) {
    // Drive on_step twice manually via a trivial circuit.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    circuit::PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = 1.0;
    pw.delay = 10e-9;
    pw.rise = 1e-9;
    pw.width = 20e-9;
    pw.period = 100e-9;
    ckt.add<VSource>("V1", in, kGround, Waveform::pulse(pw));
    ckt.add<Resistor>("R1", in, kGround, 1e3);
    DigitalDomain dom;
    const SignalId s = dom.signal("s");
    dom.add_comparator(in, kGround, 0.5, 0.1, s);
    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&dom);
    engine.init();
    int rising = 0;
    int falling = 0;
    while (engine.time() < 300e-9) {
        engine.step();
        rising += dom.rising(s);
        falling += dom.falling(s);
    }
    EXPECT_EQ(rising, 3);
    EXPECT_EQ(falling, 3);
}

}  // namespace
}  // namespace rfabm::mixed
