#include "circuit/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {
namespace {

TEST(CsvTracer, RecordsAndWrites) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V", in, kGround, Waveform::sine(0.0, 1.0, 1e6));
    ckt.add<Resistor>("R", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 50e-9;
    TransientEngine engine(ckt, topts);
    CsvTracer tracer({{"vin", in}});
    engine.add_observer(&tracer);
    engine.init();
    engine.run_until(1e-6);
    EXPECT_NEAR(static_cast<double>(tracer.num_samples()), 20.0, 1.0);

    std::ostringstream out;
    tracer.write(out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.rfind("time,vin", 0), 0u);
    // One header plus one row per sample.
    const auto rows = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(rows), tracer.num_samples() + 1);
}

TEST(CsvTracer, DecimationAndClear) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(1.0));
    ckt.add<Resistor>("R", in, kGround, 1e3);
    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    CsvTracer tracer({{"vin", in}}, 5);
    engine.add_observer(&tracer);
    engine.init();
    engine.run_until(50e-9);
    EXPECT_NEAR(static_cast<double>(tracer.num_samples()), 10.0, 1.0);
    tracer.clear();
    EXPECT_EQ(tracer.num_samples(), 0u);
}

TEST(VcdTracer, CapturesToggles) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = 1.0;
    pw.delay = 10e-9;
    pw.rise = 1e-10;
    pw.fall = 1e-10;
    pw.width = 10e-9;
    pw.period = 20e-9;
    ckt.add<VSource>("V", in, kGround, Waveform::pulse(pw));
    ckt.add<Resistor>("R", in, kGround, 1e3);

    rfabm::mixed::DigitalDomain domain;
    const auto sig = domain.signal("clk");
    domain.add_comparator(in, kGround, 0.5, 0.1, sig);

    TransientOptions topts;
    topts.dt = 1e-9;
    TransientEngine engine(ckt, topts);
    engine.add_observer(&domain);
    VcdTracer vcd(domain, {{"clk", sig}});
    engine.add_observer(&vcd);
    engine.init();
    engine.run_until(100e-9);

    // ~5 periods -> ~9-10 edges plus the initial value record.
    EXPECT_GE(vcd.num_changes(), 8u);

    std::ostringstream out;
    vcd.write(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(text.find("\n1!"), std::string::npos);
    EXPECT_NE(text.find("\n0!"), std::string::npos);
}

}  // namespace
}  // namespace rfabm::circuit
