#include "circuit/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfabm::circuit {
namespace {

TEST(Waveform, DcIsConstant) {
    const Waveform w = Waveform::dc(2.5);
    EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
    EXPECT_DOUBLE_EQ(w.value(1.0), 2.5);
    EXPECT_TRUE(w.is_dc());
    EXPECT_DOUBLE_EQ(w.fundamental_hz(), 0.0);
}

TEST(Waveform, SineBasics) {
    const double f = 1.5e9;
    const Waveform w = Waveform::sine(0.0, 1.0, f);
    EXPECT_NEAR(w.value(0.0), 0.0, 1e-12);
    EXPECT_NEAR(w.value(0.25 / f), 1.0, 1e-9);
    EXPECT_NEAR(w.value(0.5 / f), 0.0, 1e-9);
    EXPECT_NEAR(w.value(0.75 / f), -1.0, 1e-9);
    EXPECT_DOUBLE_EQ(w.fundamental_hz(), f);
}

TEST(Waveform, SineOffsetAndDelay) {
    const Waveform w = Waveform::sine(1.0, 0.5, 1e6, 0.0, 2e-6);
    EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);       // before delay: offset only
    EXPECT_DOUBLE_EQ(w.value(1.9e-6), 1.0);
    EXPECT_NEAR(w.value(2e-6 + 0.25e-6), 1.5, 1e-9);
}

TEST(Waveform, SinePhase) {
    const Waveform w = Waveform::sine(0.0, 1.0, 1.0, M_PI / 2.0);
    EXPECT_NEAR(w.value(0.0), 1.0, 1e-12);  // cosine
}

TEST(Waveform, PulseShape) {
    PulseWave p;
    p.v1 = 0.0;
    p.v2 = 3.3;
    p.delay = 1e-9;
    p.rise = 1e-10;
    p.fall = 1e-10;
    p.width = 4e-9;
    p.period = 10e-9;
    const Waveform w = Waveform::pulse(p);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
    EXPECT_NEAR(w.value(1e-9 + 0.5e-10), 1.65, 1e-9);  // mid-rise
    EXPECT_DOUBLE_EQ(w.value(3e-9), 3.3);              // flat top
    EXPECT_DOUBLE_EQ(w.value(8e-9), 0.0);              // back low
    EXPECT_DOUBLE_EQ(w.value(13e-9), 3.3);             // next period
    EXPECT_DOUBLE_EQ(w.fundamental_hz(), 1e8);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
    const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}, {4.0, 0.0}});
    EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(2.0), 2.0);
    EXPECT_DOUBLE_EQ(w.value(3.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(9.0), 0.0);
}

TEST(Waveform, PwlRejectsBadInput) {
    EXPECT_THROW(Waveform::pwl({}), std::invalid_argument);
    EXPECT_THROW(Waveform::pwl({{0.0, 1.0}, {0.0, 2.0}}), std::invalid_argument);
}

TEST(Waveform, PwlUnsortedInputIsSorted) {
    const Waveform w = Waveform::pwl({{1.0, 2.0}, {0.0, 0.0}});
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
}

}  // namespace
}  // namespace rfabm::circuit
