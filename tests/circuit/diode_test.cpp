#include "circuit/devices/diode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/dc.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"

namespace rfabm::circuit {
namespace {

TEST(Diode, ShockleyCurrent) {
    Diode d("D", 1, 2);
    const double vt = thermal_voltage(kNominalTemperatureK);
    EXPECT_NEAR(d.current(0.0), 0.0, 1e-20);
    EXPECT_LT(d.current(-1.0), 0.0);
    EXPECT_NEAR(d.current(-5.0), -1e-14, 1e-16);  // saturation
    // 0.6 V forward: Is*exp(0.6/vt) ~ 0.12 mA.
    EXPECT_NEAR(d.current(0.6), 1e-14 * std::exp(0.6 / vt), 1e-9);
}

TEST(Diode, CurrentScalesExponentially) {
    Diode d("D", 1, 2);
    const double vt = thermal_voltage(kNominalTemperatureK);
    // ~60 mV/decade at room temperature (n=1).
    const double ratio = d.current(0.66) / d.current(0.60);
    EXPECT_NEAR(std::log10(ratio), 0.06 / (std::log(10.0) * vt), 0.02);
}

TEST(Diode, TemperatureIncreasesSaturationCurrent) {
    Diode d("D", 1, 2);
    const double i_room = d.current(0.5);
    d.set_temperature(343.15);
    const double i_hot = d.current(0.5);
    // IS grows much faster than Vt: forward current at fixed bias increases.
    EXPECT_GT(i_hot, i_room);
}

TEST(Diode, HalfWaveRectifierTransient) {
    // The classical diode detector the paper could NOT integrate; we use it as
    // a behavioural reference.  1 V 10 MHz sine, diode + RC load.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::sine(0.0, 1.0, 10e6));
    ckt.add<Diode>("D1", in, out);
    ckt.add<Resistor>("RL", out, kGround, 100e3);
    ckt.add<Capacitor>("CL", out, kGround, 100e-12);  // tau = 10 us >> period

    TransientOptions opts;
    opts.dt = 1e-9;
    TransientEngine engine(ckt, opts);
    engine.init();
    engine.run_until(5e-6);
    // Peak detector: output close to peak minus one diode drop.
    EXPECT_GT(engine.v(out), 0.3);
    EXPECT_LT(engine.v(out), 1.0);
}

TEST(Diode, SeriesStackSharesVoltage) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R1", in, ckt.node("a"), 1e3);
    ckt.add<Diode>("D1", ckt.node("a"), mid);
    ckt.add<Diode>("D2", mid, kGround);
    const DcResult r = solve_dc(ckt);
    const double va = r.solution.v(ckt.node("a"));
    const double vmid = r.solution.v(mid);
    // Identical diodes in series split the total drop evenly.
    EXPECT_NEAR(va - vmid, vmid, 1e-6);
}

}  // namespace
}  // namespace rfabm::circuit
