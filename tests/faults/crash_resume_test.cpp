// Kill-and-resume integration: a journaled campaign SIGKILLed at an injected
// crash point resumes and produces byte-identical output to an uninterrupted
// run, at jobs=1 and jobs=8, including across a torn journal tail.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef CRASH_RESUME_HELPER
#error "CRASH_RESUME_HELPER must point at the helper binary"
#endif

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Run the helper; returns the raw std::system() status.
int run_helper(const std::string& args) {
    const std::string cmd =
        std::string(CRASH_RESUME_HELPER) + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

bool exited_zero(int status) { return WIFEXITED(status) && WEXITSTATUS(status) == 0; }
bool died_by_sigkill(int status) {
    // Direct kill, or the intermediate `sh -c` reporting the child's SIGKILL
    // as exit 128+9.
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return true;
    return WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL;
}

class CrashResumeTest : public ::testing::TestWithParam<int> {
  protected:
    void SetUp() override {
        const std::string stem = ::testing::TempDir() + "rfabm_crashresume_j" +
                                 std::to_string(GetParam()) + "_";
        clean_journal = stem + "clean.wal";
        crash_journal = stem + "crash.wal";
        clean_out = stem + "clean.txt";
        resumed_out = stem + "resumed.txt";
        for (const auto& p : {clean_journal, crash_journal, clean_out, resumed_out}) {
            std::remove(p.c_str());
        }
    }
    void TearDown() override {
        for (const auto& p : {clean_journal, crash_journal, clean_out, resumed_out}) {
            std::remove(p.c_str());
        }
    }

    std::string jobs_arg() const { return " --jobs " + std::to_string(GetParam()); }

    std::string clean_journal, crash_journal, clean_out, resumed_out;
};

TEST_P(CrashResumeTest, KilledCampaignResumesByteIdentical) {
    // Uninterrupted reference run.
    ASSERT_TRUE(exited_zero(run_helper("--journal " + clean_journal + " --out " +
                                       clean_out + jobs_arg())));
    const std::string reference = slurp(clean_out);
    ASSERT_FALSE(reference.empty());

    // Crash mid-campaign: the injected fault SIGKILLs at journal record 5 of
    // 16, so the process must die by signal, not exit.
    const int crashed = run_helper("--journal " + crash_journal +
                                   " --crash-after 5" + jobs_arg());
    ASSERT_TRUE(died_by_sigkill(crashed))
        << "expected SIGKILL at the crash point, status=" << crashed;

    // Resume: replays the 5 durable records, re-runs the rest.
    ASSERT_TRUE(exited_zero(run_helper("--journal " + crash_journal + " --resume --out " +
                                       resumed_out + jobs_arg())));
    EXPECT_EQ(slurp(resumed_out), reference)
        << "resumed output must be byte-identical to the uninterrupted run";
}

TEST_P(CrashResumeTest, ResumeSurvivesATornTail) {
    ASSERT_TRUE(exited_zero(run_helper("--journal " + clean_journal + " --out " +
                                       clean_out + jobs_arg())));
    const std::string reference = slurp(clean_out);

    const int crashed = run_helper("--journal " + crash_journal +
                                   " --crash-after 7" + jobs_arg());
    ASSERT_TRUE(died_by_sigkill(crashed));

    // Simulate the crash landing mid-fwrite: a half-written record after the
    // last durable one.  Resume must drop it and still converge bit-exactly.
    {
        std::FILE* f = std::fopen(crash_journal.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char torn[] = {0x01, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00};
        std::fwrite(torn, 1, sizeof torn, f);
        std::fclose(f);
    }

    ASSERT_TRUE(exited_zero(run_helper("--journal " + crash_journal + " --resume --out " +
                                       resumed_out + jobs_arg())));
    EXPECT_EQ(slurp(resumed_out), reference);
}

TEST_P(CrashResumeTest, DoubleCrashStillConverges) {
    // Crash, resume into a second crash later in the campaign, resume again:
    // the journal absorbs an arbitrary number of splits.
    ASSERT_TRUE(exited_zero(run_helper("--journal " + clean_journal + " --out " +
                                       clean_out + jobs_arg())));
    const std::string reference = slurp(clean_out);

    ASSERT_TRUE(died_by_sigkill(run_helper("--journal " + crash_journal +
                                           " --crash-after 4" + jobs_arg())));
    ASSERT_TRUE(died_by_sigkill(run_helper("--journal " + crash_journal +
                                           " --resume --crash-after 11" + jobs_arg())));
    ASSERT_TRUE(exited_zero(run_helper("--journal " + crash_journal + " --resume --out " +
                                       resumed_out + jobs_arg())));
    EXPECT_EQ(slurp(resumed_out), reference);
}

TEST_P(CrashResumeTest, KilledAtCalibrationPublishResumesByteIdentical) {
    // The cache publish is the window where a die's calibration is visible
    // to other tasks but nothing of it is journaled: the resumed process
    // must recalibrate (the cache is in-memory) and converge bit-exactly.
    ASSERT_TRUE(exited_zero(run_helper("--with-cal --journal " + clean_journal +
                                       " --out " + clean_out + jobs_arg())));
    const std::string reference = slurp(clean_out);
    ASSERT_FALSE(reference.empty());

    const int crashed = run_helper("--journal " + crash_journal + " --crash-cal 2" +
                                   jobs_arg());
    ASSERT_TRUE(died_by_sigkill(crashed))
        << "expected SIGKILL at the 2nd calibration publish, status=" << crashed;

    ASSERT_TRUE(exited_zero(run_helper("--with-cal --journal " + crash_journal +
                                       " --resume --out " + resumed_out + jobs_arg())));
    EXPECT_EQ(slurp(resumed_out), reference);
}

TEST_P(CrashResumeTest, KilledAtSessionOpenResumesByteIdentical) {
    // The TAP session boundary: chip state is established (PROBE loaded,
    // TBIC connected) but the cell has produced nothing journalable — the
    // interrupted cell must re-run from scratch on resume.
    ASSERT_TRUE(exited_zero(run_helper("--sessions --journal " + clean_journal +
                                       " --out " + clean_out + jobs_arg())));
    const std::string reference = slurp(clean_out);
    ASSERT_FALSE(reference.empty());

    const int crashed = run_helper("--journal " + crash_journal + " --crash-session 3" +
                                   jobs_arg());
    ASSERT_TRUE(died_by_sigkill(crashed))
        << "expected SIGKILL at the 3rd session open, status=" << crashed;

    ASSERT_TRUE(exited_zero(run_helper("--sessions --journal " + crash_journal +
                                       " --resume --out " + resumed_out + jobs_arg())));
    EXPECT_EQ(slurp(resumed_out), reference);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, CrashResumeTest, ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return "jobs" + std::to_string(info.param);
                         });

}  // namespace
