// Kill-and-resume test subject: a small deterministic resilient campaign
// with an optional SIGKILL crash point at a chosen journal record, a chosen
// calibration-cache publish, or a chosen 1149.4 session open.
//
// Usage: crash_resume_helper --journal FILE [--resume] [--crash-after N]
//                            [--with-cal] [--crash-cal N]
//                            [--sessions] [--crash-session N]
//                            [--jobs N] [--out FILE]
//
// The campaign is a synthetic 4x4 (die, env) grid whose payloads are
// deterministic transcendental functions of the key — bit-exact across runs,
// jobs counts and resume splits, with none of the simulator's wall-clock
// cost.  What is under test is the journal/resume machinery itself, driven
// by the same CrashPointFault the CI smoke job uses; --out writes every
// delivered payload as hex-exact bytes for byte-identity diffs.
//
// --with-cal routes each die through the single-flight CalibrationCache (a
// synthetic per-die calibration whose tune_p lands in the payload), so
// --crash-cal N can SIGKILL at the Nth cache publish — the window where a
// calibration is visible but nothing of it is journaled.  --sessions opens a
// real 1149.4 measurement session per computed cell, so --crash-session N
// can SIGKILL at the Nth TAP session boundary.  Replayed cells open no
// session and trigger no calibration: resume cost shrinks with progress.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/measurement.hpp"
#include "exec/calibration_cache.hpp"
#include "exec/resilient.hpp"
#include "faults/process_faults.hpp"

namespace {

constexpr std::uint32_t kDies = 4;
constexpr std::uint32_t kEnvs = 4;

std::vector<double> synth_payload(std::uint32_t die, std::uint32_t env) {
    const double a = std::sin(0.7 * die + 0.3) * std::cos(1.1 * env + 0.5);
    return {a, std::exp(-a * a), a / (1.0 + die + env)};
}

/// Distinct process corner per die: distinct calibration-cache keys.
rfabm::circuit::ProcessCorner synth_corner(std::uint32_t die) {
    rfabm::circuit::ProcessCorner corner;
    corner.nmos_vt_shift = 0.001 * (die + 1);
    return corner;
}

/// Deterministic synthetic calibration (no solver: bit-exact and instant).
rfabm::exec::DieCalibration synth_cal(std::uint32_t die) {
    rfabm::exec::DieCalibration cal;
    cal.corner = synth_corner(die);
    cal.tune_p = 1.0 + 0.25 * die;
    cal.tune_f = 2.0 - 0.125 * die;
    return cal;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rfabm;
    std::string journal;
    std::string out;
    bool resume = false;
    bool with_cal = false;
    bool sessions = false;
    std::uint64_t crash_after = 0;
    std::uint64_t crash_cal = 0;
    std::uint64_t crash_session = 0;
    std::size_t jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) journal = argv[++i];
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
        else if (std::strcmp(argv[i], "--resume") == 0) resume = true;
        else if (std::strcmp(argv[i], "--with-cal") == 0) with_cal = true;
        else if (std::strcmp(argv[i], "--sessions") == 0) sessions = true;
        else if (std::strcmp(argv[i], "--crash-after") == 0 && i + 1 < argc)
            crash_after = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--crash-cal") == 0 && i + 1 < argc)
            crash_cal = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--crash-session") == 0 && i + 1 < argc)
            crash_session = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::strtoull(argv[++i], nullptr, 10);
    }
    if (journal.empty()) {
        std::fprintf(stderr, "usage: crash_resume_helper --journal FILE ...\n");
        return 2;
    }
    if (crash_cal > 0) with_cal = true;
    if (crash_session > 0) sessions = true;

    exec::CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    std::vector<std::vector<double>> slots(kDies * kEnvs);
    std::vector<exec::ResilientChain> chains(kDies);
    for (std::uint32_t d = 0; d < kDies; ++d) {
        if (with_cal) {
            chains[d].calibrate = [&cache, &config, d](exec::TaskContext& ctx) {
                (void)cache.get_or_compute(config, synth_corner(d),
                                           [d] { return synth_cal(d); }, ctx.token);
            };
        }
        for (std::uint32_t e = 0; e < kEnvs; ++e) {
            exec::ResilientCell cell;
            cell.key = {d, e, 0};
            cell.compute = [&cache, &config, with_cal, sessions,
                            d, e](const exec::CellAttempt& att) {
                exec::CellComputeResult result;
                result.payload = synth_payload(d, e);
                if (with_cal) {
                    // Cache hit (or recompute after a crash wiped the
                    // in-memory cache): tune_p lands in the journaled bits.
                    const exec::DieCalibration cal = cache.get_or_compute(
                        config, synth_corner(d), [d] { return synth_cal(d); }, att.token);
                    result.payload.push_back(cal.tune_p);
                }
                if (sessions) {
                    // A real 1149.4 session per computed cell — the
                    // CrashAtSessionOpen boundary.  Replays never get here.
                    core::RfAbmChip chip{config};
                    core::MeasurementController controller(chip);
                    controller.open_session();
                }
                return result;
            };
            std::vector<double>* slot = &slots[d * kEnvs + e];
            cell.deliver = [slot](const std::vector<double>& payload, exec::CellOutcome,
                                  bool) { *slot = payload; };
            chains[d].cells.push_back(std::move(cell));
        }
    }

    exec::CampaignOptions copts;
    copts.jobs = jobs;
    exec::ResilienceOptions ropts;
    ropts.journal_path = journal;
    ropts.resume = resume;
    // Fixed grid, fixed payloads — but the cal/session variants journal
    // different bits, so they are different campaigns.
    ropts.campaign_id = 0x1149'0004 ^ (with_cal ? 0x10 : 0) ^ (sessions ? 0x20 : 0);
    ropts.checkpoint_every = 1;  // every record durable: deterministic crashes
    std::unique_ptr<faults::CrashPointFault> crash;
    if (crash_after > 0) {
        ropts.on_journal_open = [&](exec::JournalWriter& writer) {
            crash = std::make_unique<faults::CrashPointFault>(writer, crash_after);
            crash->arm();
        };
    }
    std::unique_ptr<faults::CrashAtCalibrationPublish> cal_crash;
    if (crash_cal > 0) {
        cal_crash = std::make_unique<faults::CrashAtCalibrationPublish>(cache, crash_cal);
        cal_crash->arm();
    }
    std::unique_ptr<faults::CrashAtSessionOpen> session_crash;
    if (crash_session > 0) {
        session_crash = std::make_unique<faults::CrashAtSessionOpen>(crash_session);
        session_crash->arm();
    }
    const exec::ResilientResult result = exec::run_resilient_campaign(chains, copts, ropts);
    if (crash) crash->disarm();
    if (cal_crash) cal_crash->disarm();
    if (session_crash) session_crash->disarm();

    if (!out.empty()) {
        std::FILE* f = std::fopen(out.c_str(), "w");
        if (f == nullptr) return 2;
        for (std::uint32_t d = 0; d < kDies; ++d) {
            for (std::uint32_t e = 0; e < kEnvs; ++e) {
                std::fprintf(f, "%" PRIu32 " %" PRIu32, d, e);
                for (const double v : slots[d * kEnvs + e]) {
                    std::uint64_t bits;
                    std::memcpy(&bits, &v, sizeof bits);
                    std::fprintf(f, " %016" PRIx64, bits);
                }
                std::fputc('\n', f);
            }
        }
        std::fclose(f);
    }
    std::printf("%s", result.triage.to_string().c_str());
    const std::uint64_t done = result.triage.count(exec::CellOutcome::kOk) +
                               result.triage.count(exec::CellOutcome::kReplayed);
    return done == kDies * kEnvs ? 0 : 1;
}
