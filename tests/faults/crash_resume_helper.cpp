// Kill-and-resume test subject: a small deterministic resilient campaign
// with an optional SIGKILL crash point at a chosen journal record.
//
// Usage: crash_resume_helper --journal FILE [--resume] [--crash-after N]
//                            [--jobs N] [--out FILE]
//
// The campaign is a synthetic 4x4 (die, env) grid whose payloads are
// deterministic transcendental functions of the key — bit-exact across runs,
// jobs counts and resume splits, with none of the simulator's wall-clock
// cost.  What is under test is the journal/resume machinery itself, driven
// by the same CrashPointFault the CI smoke job uses; --out writes every
// delivered payload as hex-exact bytes for byte-identity diffs.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/resilient.hpp"
#include "faults/process_faults.hpp"

namespace {

constexpr std::uint32_t kDies = 4;
constexpr std::uint32_t kEnvs = 4;

std::vector<double> synth_payload(std::uint32_t die, std::uint32_t env) {
    const double a = std::sin(0.7 * die + 0.3) * std::cos(1.1 * env + 0.5);
    return {a, std::exp(-a * a), a / (1.0 + die + env)};
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rfabm;
    std::string journal;
    std::string out;
    bool resume = false;
    std::uint64_t crash_after = 0;
    std::size_t jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) journal = argv[++i];
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
        else if (std::strcmp(argv[i], "--resume") == 0) resume = true;
        else if (std::strcmp(argv[i], "--crash-after") == 0 && i + 1 < argc)
            crash_after = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::strtoull(argv[++i], nullptr, 10);
    }
    if (journal.empty()) {
        std::fprintf(stderr, "usage: crash_resume_helper --journal FILE ...\n");
        return 2;
    }

    std::vector<std::vector<double>> slots(kDies * kEnvs);
    std::vector<exec::ResilientChain> chains(kDies);
    for (std::uint32_t d = 0; d < kDies; ++d) {
        for (std::uint32_t e = 0; e < kEnvs; ++e) {
            exec::ResilientCell cell;
            cell.key = {d, e, 0};
            cell.compute = [d, e](const exec::CellAttempt&) {
                exec::CellComputeResult result;
                result.payload = synth_payload(d, e);
                return result;
            };
            std::vector<double>* slot = &slots[d * kEnvs + e];
            cell.deliver = [slot](const std::vector<double>& payload, exec::CellOutcome,
                                  bool) { *slot = payload; };
            chains[d].cells.push_back(std::move(cell));
        }
    }

    exec::CampaignOptions copts;
    copts.jobs = jobs;
    exec::ResilienceOptions ropts;
    ropts.journal_path = journal;
    ropts.resume = resume;
    ropts.campaign_id = 0x1149'0004;  // fixed grid, fixed payloads
    ropts.checkpoint_every = 1;       // every record durable: deterministic crashes
    std::unique_ptr<faults::CrashPointFault> crash;
    if (crash_after > 0) {
        ropts.on_journal_open = [&](exec::JournalWriter& writer) {
            crash = std::make_unique<faults::CrashPointFault>(writer, crash_after);
            crash->arm();
        };
    }
    const exec::ResilientResult result = exec::run_resilient_campaign(chains, copts, ropts);
    if (crash) crash->disarm();

    if (!out.empty()) {
        std::FILE* f = std::fopen(out.c_str(), "w");
        if (f == nullptr) return 2;
        for (std::uint32_t d = 0; d < kDies; ++d) {
            for (std::uint32_t e = 0; e < kEnvs; ++e) {
                std::fprintf(f, "%" PRIu32 " %" PRIu32, d, e);
                for (const double v : slots[d * kEnvs + e]) {
                    std::uint64_t bits;
                    std::memcpy(&bits, &v, sizeof bits);
                    std::fprintf(f, " %016" PRIx64, bits);
                }
                std::fputc('\n', f);
            }
        }
        std::fclose(f);
    }
    std::printf("%s", result.triage.to_string().c_str());
    const std::uint64_t done = result.triage.count(exec::CellOutcome::kOk) +
                               result.triage.count(exec::CellOutcome::kReplayed);
    return done == kDies * kEnvs ? 0 : 1;
}
