// Integration tests: injected faults against the hardened measurement
// pipeline.  The contract under test is the ISSUE's acceptance criterion —
// a stuck-open MUX switch must be *reported* (Degraded with a signal-path
// suspect), never a silently wrong Vout; scan-chain faults must Fail with a
// scan-chain suspect; transient faults must heal through retries that are
// bounded and observable in the diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/measurement.hpp"
#include "faults/campaign.hpp"
#include "faults/circuit_faults.hpp"
#include "faults/jtag_faults.hpp"
#include "rf/sweep.hpp"

namespace rfabm::faults {
namespace {

/// Shared expensive fixture: one calibrated chip + a coarse power curve.
class FaultPipelineFixture : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        chip_ = new core::RfAbmChip{core::RfAbmChipConfig{}};
        controller_ = new core::MeasurementController(*chip_);
        controller_->open_session();
        core::dc_calibrate(*controller_);
        power_curve_ = new rf::MonotoneCurve(
            core::acquire_power_curve(*controller_, rf::arange(-20.0, 7.0, 3.0), 1.5e9));
    }

    static void TearDownTestSuite() {
        delete power_curve_;
        delete controller_;
        delete chip_;
        power_curve_ = nullptr;
        controller_ = nullptr;
        chip_ = nullptr;
    }

    void SetUp() override { chip_->set_rf(-8.0, 1.5e9); }

    static core::RfAbmChip* chip_;
    static core::MeasurementController* controller_;
    static rf::MonotoneCurve* power_curve_;
};

core::RfAbmChip* FaultPipelineFixture::chip_ = nullptr;
core::MeasurementController* FaultPipelineFixture::controller_ = nullptr;
rf::MonotoneCurve* FaultPipelineFixture::power_curve_ = nullptr;

TEST_F(FaultPipelineFixture, HealthyCheckedMeasurementIsOk) {
    const core::PowerMeasurement m = controller_->measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(m.diag.status, core::MeasurementStatus::kOk) << m.diag.to_string();
    EXPECT_EQ(m.diag.suspect, core::SuspectedFault::kNone);
    EXPECT_EQ(m.diag.retries, 0);
    EXPECT_FALSE(m.diag.fallback_used);
    EXPECT_NEAR(m.dbm, -8.0, 0.5) << m.diag.to_string();
}

// The ISSUE's integration criterion: a stuck-open MUX switch must be
// reported Degraded with a signal-path suspect — not a silently wrong Vout.
TEST_F(FaultPipelineFixture, StuckOpenMuxSwitchIsDegradedNotSilent) {
    StuckSwitchFault fault("stuckopen:MUX4.out_minus",
                           chip_->mux().switch_for(core::SelectBit::kOutMinusToAb2),
                           circuit::SwitchFault::kStuckOpen);
    fault.arm();
    const core::PowerMeasurement m = controller_->measure_power_checked(*power_curve_, -8.0);
    fault.disarm();

    EXPECT_EQ(m.diag.status, core::MeasurementStatus::kDegraded) << m.diag.to_string();
    EXPECT_EQ(m.diag.suspect, core::SuspectedFault::kSignalPath) << m.diag.to_string();
    EXPECT_FALSE(m.diag.detail.empty());
    // Bounded retries, all of them recorded.
    EXPECT_EQ(m.diag.retries, controller_->options().retry.max_retries);

    // And the pipeline heals once the fault is gone.
    const core::PowerMeasurement healthy =
        controller_->measure_power_checked(*power_curve_, -8.0);
    EXPECT_EQ(healthy.diag.status, core::MeasurementStatus::kOk) << healthy.diag.to_string();
    EXPECT_NEAR(healthy.dbm, -8.0, 0.5);
}

TEST_F(FaultPipelineFixture, StuckTdoFailsWithScanChainSuspect) {
    StuckLineFault fault("stuck0:TDO", chip_->tap_driver(), StuckLineFault::Line::kTdo,
                         false);
    fault.arm();
    const core::PowerMeasurement m = controller_->measure_power_checked(*power_curve_, -8.0);
    fault.disarm();

    EXPECT_EQ(m.diag.status, core::MeasurementStatus::kFailed) << m.diag.to_string();
    EXPECT_EQ(m.diag.suspect, core::SuspectedFault::kScanChain);
    // Retries are bounded by the policy and observable, with backoff applied.
    EXPECT_EQ(m.diag.retries, controller_->options().retry.max_retries);
    EXPECT_GT(m.diag.backoff_s_total, 0.0);
}

TEST_F(FaultPipelineFixture, TckGlitchBurstHealsThroughRetry) {
    TckGlitchFault fault("burst:TCK", chip_->tap_driver(), TckGlitchConfig{.burst_edges = 60});
    fault.arm();
    const core::PowerMeasurement m = controller_->measure_power_checked(*power_curve_, -8.0);
    fault.disarm();

    // The burst desynchronizes at least the first attempt; a later attempt
    // (after the burst is spent) succeeds -> Degraded with retries recorded.
    EXPECT_EQ(m.diag.status, core::MeasurementStatus::kDegraded) << m.diag.to_string();
    EXPECT_GE(m.diag.retries, 1);
    EXPECT_LE(m.diag.retries, controller_->options().retry.max_retries);
    EXPECT_NEAR(m.dbm, -8.0, 0.5) << m.diag.to_string();
}

TEST_F(FaultPipelineFixture, StuckSelectBusFailsWithSelectPathSuspect) {
    StuckLineFault fault("stuck1:SEL", chip_->select_bus(), true);
    fault.arm();
    const core::PowerMeasurement m = controller_->measure_power_checked(*power_curve_, -8.0);
    fault.disarm();

    EXPECT_EQ(m.diag.status, core::MeasurementStatus::kFailed) << m.diag.to_string();
    EXPECT_EQ(m.diag.suspect, core::SuspectedFault::kSelectPath);
}

TEST_F(FaultPipelineFixture, VerifyHelpersReportHealthyChip) {
    EXPECT_TRUE(controller_->verify_scan_chain());
    controller_->open_session();
    EXPECT_TRUE(controller_->verify_select(
        core::select_word({core::SelectBit::kDetectorPower})));
    EXPECT_FALSE(controller_->verify_select(
        core::select_word({core::SelectBit::kDetectorPower, core::SelectBit::kFdetToAb1})));
}

TEST_F(FaultPipelineFixture, CampaignDetectsAllAndGradesBaselineOk) {
    FaultCampaign campaign(*controller_, *power_curve_, {-8.0, 1.5e9});
    campaign.add(std::make_unique<StuckSwitchFault>(
        "stuckopen:MUX4.out_minus",
        chip_->mux().switch_for(core::SelectBit::kOutMinusToAb2),
        circuit::SwitchFault::kStuckOpen));
    campaign.add(std::make_unique<StuckLineFault>(
        "stuck0:TDO", chip_->tap_driver(), StuckLineFault::Line::kTdo, false));

    const CampaignReport report = campaign.run();
    EXPECT_EQ(report.baseline.status, core::MeasurementStatus::kOk)
        << report.baseline.diagnostics;
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_TRUE(report.entries[0].detected) << report.entries[0].diagnostics;
    EXPECT_TRUE(report.entries[1].detected) << report.entries[1].diagnostics;
    EXPECT_EQ(report.silent_count(), 0u);
    EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
    EXPECT_NE(report.to_string().find("coverage: 2/2"), std::string::npos);
}

TEST_F(FaultPipelineFixture, DiagnosticsFormatting) {
    EXPECT_STREQ(core::to_string(core::MeasurementStatus::kDegraded), "Degraded");
    EXPECT_STREQ(core::to_string(core::SuspectedFault::kScanChain), "scan-chain");
    core::MeasurementDiagnostics d;
    d.status = core::MeasurementStatus::kDegraded;
    d.suspect = core::SuspectedFault::kSignalPath;
    d.retries = 2;
    d.detail = "whatever happened";
    const std::string s = d.to_string();
    EXPECT_NE(s.find("Degraded"), std::string::npos) << s;
    EXPECT_NE(s.find("signal-path"), std::string::npos) << s;
    EXPECT_NE(s.find("whatever happened"), std::string::npos) << s;
}

}  // namespace
}  // namespace rfabm::faults
