// Fault injection against the surrogate tier's persistence: a corrupted or
// truncated store image must be detected at load, discarded WHOLESALE (never
// partially trusted), and the campaign must fall back cleanly to full
// simulation — bit-identical to a run that never had a store at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "rf/curve.hpp"
#include "rf/surrogate/store.hpp"

namespace rfabm::faults {
namespace {

namespace sur = rfabm::rf::surrogate;
namespace core = rfabm::core;

std::string temp_path(const char* stem) {
    return ::testing::TempDir() + "/" + stem + ".sur";
}

/// A store image with one fitted surface, as a sharded worker would leave it.
void write_trained_store(const std::string& path) {
    sur::StoreOptions opts;
    opts.refit_min_samples = 12;
    sur::SurrogateStore store(opts);
    const sur::SurrogateKey key{0, 0xD1E, 0xC0E};
    for (int i = 0; i < 12; ++i) {
        const double p = -10.0 + i;
        store.observe(key, sur::Query{p, 1.5e9, 1.8}, 0.5 + 0.02 * p);
    }
    ASSERT_EQ(store.surfaces(), 1u);
    ASSERT_TRUE(store.save(path));
}

std::vector<unsigned char> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<unsigned char> bytes;
    int c = 0;
    while (f != nullptr && (c = std::fgetc(f)) != EOF) {
        bytes.push_back(static_cast<unsigned char>(c));
    }
    if (f != nullptr) std::fclose(f);
    return bytes;
}

void write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/// Load must reject the image at @p path, leave the store EMPTY and count
/// the rejection; serving then degrades to a clean miss.
void expect_rejected(const std::string& path, const char* what) {
    sur::SurrogateStore store;
    EXPECT_FALSE(store.load(path)) << what;
    EXPECT_EQ(store.surfaces(), 0u) << what;
    EXPECT_EQ(store.total_samples(), 0u) << what;
    EXPECT_EQ(store.counters().load_rejected, 1u) << what;
    double value = 0.0;
    EXPECT_EQ(store.try_serve(sur::SurrogateKey{0, 0xD1E, 0xC0E},
                              sur::Query{-5.0, 1.5e9, 1.8}, &value),
              sur::Decision::kMiss)
        << what;
}

TEST(SurrogateStoreFaultTest, CorruptionMatrixIsRejectedWholesale) {
    const std::string good = temp_path("fault_good");
    const std::string bad = temp_path("fault_bad");
    write_trained_store(good);
    const std::vector<unsigned char> image = read_file(good);
    ASSERT_GT(image.size(), 64u);

    // Sanity: the untouched image loads.
    {
        sur::SurrogateStore store;
        EXPECT_TRUE(store.load(good));
        EXPECT_EQ(store.surfaces(), 1u);
    }

    {  // Truncated mid-body (a crash mid-copy; rename discipline makes this
       // rare, but a worker reading a shard over a flaky mount still sees it).
        std::vector<unsigned char> m(image.begin(),
                                     image.begin() + static_cast<long>(image.size() * 6 / 10));
        write_file(bad, m);
        expect_rejected(bad, "truncated to 60%");
    }
    {  // Truncated to less than a header: too short to even verify.
        std::vector<unsigned char> m(image.begin(), image.begin() + 10);
        write_file(bad, m);
        expect_rejected(bad, "header-only stub");
    }
    {  // Single bit flip in the payload: the whole-image checksum catches it.
        std::vector<unsigned char> m = image;
        m[m.size() / 2] ^= 0x40;
        write_file(bad, m);
        expect_rejected(bad, "bit flip mid-payload");
    }
    {  // Bit flip inside the checksum trailer itself.
        std::vector<unsigned char> m = image;
        m[m.size() - 3] ^= 0x01;
        write_file(bad, m);
        expect_rejected(bad, "bit flip in checksum");
    }
    {  // Foreign file wearing the right extension.
        write_file(bad, {'n', 'o', 't', ' ', 'a', ' ', 's', 't', 'o', 'r', 'e'});
        expect_rejected(bad, "foreign file");
    }
    {  // Wrong magic, right length.
        std::vector<unsigned char> m = image;
        m[0] ^= 0xFF;
        write_file(bad, m);
        expect_rejected(bad, "wrong magic");
    }
    {  // Trailing garbage appended after a once-valid image.
        std::vector<unsigned char> m = image;
        m.insert(m.end(), {0xDE, 0xAD, 0xBE, 0xEF});
        write_file(bad, m);
        expect_rejected(bad, "trailing garbage");
    }

    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(SurrogateStoreFaultTest, RejectedStoreFallsBackToCleanFullSimulation) {
    // A campaign worker whose persisted store is corrupt must produce results
    // bit-identical to a worker that never had a surrogate tier: the rejected
    // image is discarded, every query misses, and the full solver answers.
    const std::string bad = temp_path("fault_campaign");
    write_trained_store(bad);
    std::vector<unsigned char> m = read_file(bad);
    m[m.size() / 3] ^= 0x10;
    write_file(bad, m);

    sur::SurrogateStore store;
    EXPECT_FALSE(store.load(bad));
    EXPECT_EQ(store.counters().load_rejected, 1u);

    const rfabm::rf::MonotoneCurve curve({{-20.0, 0.0}, {7.0, 1.0}});
    const std::vector<double> sweep{-8.0, -4.0, 0.0};

    core::RfAbmChip ref_chip{core::RfAbmChipConfig{}};
    core::MeasurementController ref_ctrl(ref_chip);
    ref_ctrl.open_session();

    core::RfAbmChip sur_chip{core::RfAbmChipConfig{}};
    core::MeasureOptions mopts;
    mopts.surrogate.store = &store;
    mopts.surrogate.die = 0xD1E;
    mopts.surrogate.corner = 0xC0E;
    core::MeasurementController sur_ctrl(sur_chip, mopts);
    sur_ctrl.open_session();

    for (double dbm : sweep) {
        ref_chip.set_rf(dbm, 1.5e9);
        const core::PowerMeasurement ref = ref_ctrl.measure_power(curve);
        sur_chip.set_rf(dbm, 1.5e9);
        const core::PowerMeasurement got = sur_ctrl.measure_power(curve);
        EXPECT_FALSE(got.from_surrogate) << dbm;
        EXPECT_EQ(got.vout, ref.vout) << dbm;  // bitwise: the same full solve
        EXPECT_EQ(got.dbm, ref.dbm) << dbm;
    }
    // Every query was a clean miss; the fallback solves trained the store,
    // so the campaign recovers its warm tier instead of staying degraded.
    EXPECT_GE(store.counters().misses, 1u);
    EXPECT_EQ(store.counters().hits, 0u);
    EXPECT_EQ(store.counters().observed, sweep.size());

    std::remove(bad.c_str());
}

}  // namespace
}  // namespace rfabm::faults
