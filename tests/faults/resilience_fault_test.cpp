// Process-level fault injectors driving the resilience layer: a wedged
// transient solver is reclaimed by the watchdog and triaged as timed-out, and
// the crash-point injector's journal hook fires at the exact record asked for.
#include "faults/process_faults.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/transient.hpp"
#include "exec/resilient.hpp"

namespace rfabm::faults {
namespace {

using namespace std::chrono_literals;
namespace exec = rfabm::exec;
namespace circuit = rfabm::circuit;

/// A trivially healthy RC under sine drive: every transient step converges in
/// a couple of Newton iterations, so any stall is the fault's doing.
struct RcBench {
    RcBench() {
        const circuit::NodeId in = ckt.node("in");
        const circuit::NodeId out = ckt.node("out");
        ckt.add<circuit::VSource>("VIN", in, circuit::kGround,
                                  circuit::Waveform::sine(0.0, 1.0, 1e9));
        ckt.add<circuit::Resistor>("R1", in, out, 1e3);
        ckt.add<circuit::Capacitor>("C1", out, circuit::kGround, 1e-12);
    }
    circuit::Circuit ckt;
};

TEST(HangSolverFaultTest, WatchdogReclaimsWedgedSolveAsTimedOut) {
    std::vector<exec::ResilientChain> chains(1);
    std::atomic<std::uint64_t> hang_count{0};

    exec::ResilientCell cell;
    cell.key = {0, 0, 0};
    cell.compute = [&](const exec::CellAttempt& attempt) -> exec::CellComputeResult {
        RcBench bench;
        circuit::TransientOptions topts;
        topts.dt = 50e-12;
        topts.cancel = attempt.token;
        topts.heartbeat = attempt.heartbeat;
        circuit::TransientEngine engine(bench.ckt, topts);
        HangSolverFault fault(engine);
        fault.arm();
        EXPECT_EQ(fault.fault_class(), FaultClass::kHangSolver);
        engine.init();
        // The armed observer wedges after the first accepted step; only the
        // watchdog expiring the attempt's deadline gets us out, and then the
        // next step() throws SolveAborted.
        try {
            engine.run_for(10e-9);
        } catch (...) {
            hang_count.fetch_add(fault.hangs());
            throw;
        }
        exec::CellComputeResult out;  // unreachable while the fault is armed
        out.payload = {engine.v(bench.ckt.node("out"))};
        return out;
    };
    cell.deliver = [](const std::vector<double>&, exec::CellOutcome, bool) {
        FAIL() << "the wedged cell must not deliver";
    };
    chains[0].cells.push_back(std::move(cell));

    exec::CampaignOptions copts;
    copts.jobs = 1;
    exec::ResilienceOptions ropts;
    ropts.cell_timeout = 200ms;  // heartbeat-aware: a stall timeout
    ropts.max_cell_attempts = 1;
    ropts.watchdog.poll_interval = 10ms;
    const exec::ResilientResult result =
        exec::run_resilient_campaign(chains, copts, ropts);

    EXPECT_EQ(result.triage.count(exec::CellOutcome::kTimedOut), 1u);
    EXPECT_GE(result.triage.watchdog_fires, 1u);
    ASSERT_EQ(result.triage.quarantined_cells.size(), 1u);
    EXPECT_EQ(result.triage.quarantined_cells[0].first, (exec::CellKey{0, 0, 0}));
    EXPECT_GE(hang_count.load(), 1u) << "the fault never actually wedged the solver";
    EXPECT_FALSE(result.triage.clean());
}

TEST(HangSolverFaultTest, DisarmedFaultIsAbsent) {
    RcBench bench;
    circuit::TransientOptions topts;
    topts.dt = 50e-12;
    circuit::TransientEngine engine(bench.ckt, topts);
    HangSolverFault fault(engine, 1ms);  // bounded even if armed by mistake
    // Never armed: the engine must run normally with zero hangs.
    engine.init();
    engine.run_for(5e-9);
    EXPECT_EQ(fault.hangs(), 0u);
    EXPECT_GT(engine.steps_taken(), 0u);
}

TEST(HangSolverFaultTest, MaxHangBoundsAnUnsupervisedWedge) {
    RcBench bench;
    circuit::TransientOptions topts;
    topts.dt = 50e-12;
    circuit::TransientEngine engine(bench.ckt, topts);  // no token, no watchdog
    HangSolverFault fault(engine, 20ms);
    fault.arm();
    engine.init();
    const auto t0 = std::chrono::steady_clock::now();
    engine.run_for(1e-9);  // a few steps, each wedged for up to max_hang
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(fault.hangs(), 1u);
    EXPECT_LT(elapsed, 10s) << "max_hang failed to bound the spin";
    fault.disarm();
}

TEST(CrashPointFaultTest, HookArmsAtTheRequestedRecord) {
    // The SIGKILL itself is exercised by the kill-and-resume integration test
    // (crash_resume_test); here we verify arm/disarm plumbing with a benign
    // hook stand-in by re-pointing the writer's hook after disarm.
    const std::string path = ::testing::TempDir() + "rfabm_crashpoint_probe.wal";
    std::remove(path.c_str());
    exec::JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path, {}));
    CrashPointFault fault(writer, 3);
    EXPECT_EQ(fault.fault_class(), FaultClass::kCrashPoint);
    EXPECT_NE(fault.describe().find("3"), std::string::npos);
    EXPECT_EQ(std::string(to_string(FaultClass::kCrashPoint)), "crash-point");
    EXPECT_EQ(std::string(to_string(FaultClass::kHangSolver)), "hang-solver");

    // Arm then disarm: the hook slot must be free again, so a test hook sees
    // every append and no SIGKILL happens below the crash threshold.
    fault.arm();
    fault.disarm();
    std::uint64_t seen = 0;
    writer.set_append_hook([&](std::uint64_t appended) { seen = appended; });
    exec::CellRecord record;
    record.key = {0, 0, 0};
    writer.append_cell(record);
    writer.append_cell(record);
    writer.close();
    EXPECT_EQ(seen, 2u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace rfabm::faults
