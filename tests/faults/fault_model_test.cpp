// Unit tests for the fault models: each injected defect must stamp / behave
// exactly as specified, and disarming must restore healthy behavior.
#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/circuit.hpp"
#include "circuit/dc.hpp"
#include "circuit/devices/defects.hpp"
#include "circuit/devices/diode.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"
#include "faults/circuit_faults.hpp"
#include "faults/jtag_faults.hpp"
#include "jtag/serial_bus.hpp"
#include "jtag/tap.hpp"

namespace rfabm::faults {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::solve_dc;
using circuit::VSource;
using circuit::Waveform;

// --- circuit-level defect devices ------------------------------------------

TEST(BridgeDefect, DisarmedStampsNothing) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(10.0));
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Resistor>("R2", mid, kGround, 1e3);
    auto& bridge = ckt.add<circuit::BridgeDefect>("DEF", mid, kGround, 10.0);
    EXPECT_FALSE(bridge.armed());
    const auto r = solve_dc(ckt);
    EXPECT_NEAR(r.solution.v(mid), 5.0, 1e-9);  // defect-free divider
}

TEST(BridgeDefect, ArmedShortsTheNode) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(10.0));
    ckt.add<Resistor>("R1", in, mid, 1e3);
    ckt.add<Resistor>("R2", mid, kGround, 1e3);
    auto& bridge = ckt.add<circuit::BridgeDefect>("DEF", mid, kGround, 10.0);
    bridge.arm();
    const auto r = solve_dc(ckt);
    // 1k || 10 ohm against 1k: the bridge drags the node to ~0.1 V.
    EXPECT_NEAR(r.solution.v(mid), 10.0 * (1e3 * 10 / 1010.0) / (1e3 + 1e3 * 10 / 1010.0),
                1e-6);
    bridge.disarm();
    const auto healthy = solve_dc(ckt);
    EXPECT_NEAR(healthy.solution.v(mid), 5.0, 1e-9);
}

TEST(BridgeDefect, RejectsBadParameters) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    EXPECT_THROW(ckt.add<circuit::BridgeDefect>("bad", a, b, 0.0), std::invalid_argument);
    EXPECT_THROW(ckt.add<circuit::BridgeDefect>("bad2", a, a, 10.0), std::invalid_argument);
}

TEST(StuckSwitch, FaultOverridesControl) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, Waveform::dc(1.0));
    auto& sw = ckt.add<circuit::Switch>("SW", in, out, 10.0, 1e9);
    ckt.add<Resistor>("RL", out, kGround, 1e3);
    sw.set_closed(true);
    sw.set_fault(circuit::SwitchFault::kStuckOpen);
    EXPECT_FALSE(sw.effective_closed());
    auto r = solve_dc(ckt);
    EXPECT_LT(r.solution.v(out), 1e-3);  // commanded closed, electrically open

    sw.set_fault(circuit::SwitchFault::kNone);
    sw.set_closed(false);
    sw.set_fault(circuit::SwitchFault::kStuckClosed);
    EXPECT_TRUE(sw.effective_closed());
    r = solve_dc(ckt);
    EXPECT_GT(r.solution.v(out), 0.9);  // commanded open, electrically closed
}

TEST(StuckMosfet, StuckOffOpensTheChannel) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId gate = ckt.node("gate");
    const NodeId drain = ckt.node("drain");
    ckt.add<VSource>("VDD", vdd, kGround, Waveform::dc(3.0));
    ckt.add<VSource>("VG", gate, kGround, Waveform::dc(3.0));
    ckt.add<Resistor>("RD", vdd, drain, 10e3);
    auto& fet = ckt.add<circuit::Mosfet>("M1", drain, gate, kGround, circuit::MosfetParams{});
    const double healthy_vd = solve_dc(ckt).solution.v(drain);
    EXPECT_LT(healthy_vd, 1.0);  // strongly on: drain pulled low

    fet.set_fault(circuit::MosfetFault::kStuckOff);
    EXPECT_NEAR(solve_dc(ckt).solution.v(drain), 3.0, 1e-3);  // channel open

    fet.set_fault(circuit::MosfetFault::kStuckOn, 10e3);
    EXPECT_NEAR(solve_dc(ckt).solution.v(drain), 1.5, 1e-3);  // 10k/10k divider

    fet.set_fault(circuit::MosfetFault::kNone);
    EXPECT_NEAR(solve_dc(ckt).solution.v(drain), healthy_vd, 1e-6);
}

TEST(StuckMosfet, RejectsNonPositiveOnResistance) {
    Circuit ckt;
    auto& fet = ckt.add<circuit::Mosfet>("M1", ckt.node("d"), ckt.node("g"), kGround,
                                         circuit::MosfetParams{});
    EXPECT_THROW(fet.set_fault(circuit::MosfetFault::kStuckOn, 0.0), std::invalid_argument);
}

// --- injector lifecycle -----------------------------------------------------

TEST(OpenDeviceFault, ArmDisarmRestoresNominal) {
    Circuit ckt;
    auto& r = ckt.add<Resistor>("R1", ckt.node("a"), kGround, 2.2e3);
    OpenDeviceFault fault("open:R1", r);
    EXPECT_EQ(fault.fault_class(), FaultClass::kOpen);
    EXPECT_FALSE(fault.armed());
    fault.arm();
    EXPECT_TRUE(fault.armed());
    EXPECT_GE(r.nominal(), 1e12);
    fault.arm();  // idempotent
    EXPECT_GE(r.nominal(), 1e12);
    fault.disarm();
    EXPECT_DOUBLE_EQ(r.nominal(), 2.2e3);
    fault.disarm();  // idempotent
    EXPECT_DOUBLE_EQ(r.nominal(), 2.2e3);
}

TEST(DriftFault, ScalesNominalWhileArmed) {
    Circuit ckt;
    auto& r = ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    DriftFault fault("drift:R1", r, 5.0);
    fault.arm();
    EXPECT_DOUBLE_EQ(r.nominal(), 5e3);
    fault.disarm();
    EXPECT_DOUBLE_EQ(r.nominal(), 1e3);
}

// --- scan-chain fault hooks -------------------------------------------------

constexpr std::uint32_t kIdcode = 0x14940A4Bu;

TEST(StuckLine, StuckTdoCorruptsReadback) {
    jtag::TapController tap(kIdcode);
    jtag::TapDriver drv(tap);
    EXPECT_EQ(drv.read_idcode(), kIdcode);

    StuckLineFault fault("stuck0:TDO", drv, StuckLineFault::Line::kTdo, false);
    fault.arm();
    EXPECT_EQ(drv.read_idcode(), 0u);
    fault.disarm();
    EXPECT_EQ(drv.fault_hook(), nullptr);
    EXPECT_EQ(drv.read_idcode(), kIdcode);
}

TEST(TckGlitch, PersistentGlitchNeverHeals) {
    jtag::TapController tap(kIdcode);
    jtag::TapDriver drv(tap);
    TckGlitchFault fault("glitch:TCK", drv, TckGlitchConfig{.drop_every = 7});
    fault.arm();
    EXPECT_NE(drv.read_idcode(), kIdcode);
    EXPECT_NE(drv.read_idcode(), kIdcode);  // still broken on retry
    fault.disarm();
    drv.reset_via_tms();
    EXPECT_EQ(drv.read_idcode(), kIdcode);
}

TEST(TckGlitch, BurstHealsAfterItsEdges) {
    jtag::TapController tap(kIdcode);
    jtag::TapDriver drv(tap);
    TckGlitchFault fault("burst:TCK", drv, TckGlitchConfig{.burst_edges = 60});
    fault.arm();
    EXPECT_NE(drv.read_idcode(), kIdcode);  // desynchronized mid-burst
    drv.reset_via_tms();                    // session retry after the burst
    EXPECT_EQ(drv.read_idcode(), kIdcode);  // wiring healed
    fault.disarm();
}

TEST(ScanBitFlip, FlipsEveryNthTdoBit) {
    jtag::TapController tap(kIdcode);
    jtag::TapDriver drv(tap);
    ScanBitFlipFault fault("bitflip:TDO", drv, 3);
    fault.arm();
    EXPECT_NE(drv.read_idcode(), kIdcode);
    fault.disarm();
    EXPECT_EQ(drv.read_idcode(), kIdcode);
}

TEST(SelectBusFaults, StuckDataLineForcesWord) {
    jtag::SerialSelectBus bus(8);
    bus.write_word(0b10100101, 8);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(bus.output(i), ((0b10100101u >> i) & 1u) != 0) << i;
    }
    StuckLineFault fault("stuck1:SEL", bus, true);
    fault.arm();
    bus.write_word(0b10100101, 8);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(bus.output(i)) << i;
    fault.disarm();
    bus.write_word(0b00000001, 8);
    EXPECT_TRUE(bus.output(0));
    EXPECT_FALSE(bus.output(7));
}

TEST(SelectBusFaults, DroppedClockEdgesShiftShortWord) {
    jtag::SerialSelectBus bus(8);
    TckGlitchFault fault("glitch:SELCLK", bus, TckGlitchConfig{.drop_every = 2});
    fault.arm();
    bus.write_word(0xFF, 8);  // half the edges swallowed: shift is short
    int ones = 0;
    for (std::size_t i = 0; i < 8; ++i) ones += bus.output(i) ? 1 : 0;
    EXPECT_LT(ones, 8);
    fault.disarm();
    bus.write_word(0xFF, 8);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(bus.output(i)) << i;
}

// --- solver diagnostics & budget (hardening satellites) ---------------------

TEST(DcDiagnostics, ConvergenceErrorCarriesContext) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<circuit::Diode>("D", a, kGround);
    circuit::DcOptions opts;
    opts.newton.max_iterations = 1;
    opts.allow_gmin_stepping = true;
    opts.allow_source_stepping = false;
    try {
        solve_dc(ckt, opts);
        FAIL() << "expected ConvergenceError";
    } catch (const circuit::ConvergenceError& e) {
        const auto& diag = e.diagnostics();
        EXPECT_GT(diag.total_iterations, 0);
        EXPECT_TRUE(diag.gmin_stepping_attempted);
        EXPECT_FALSE(diag.source_stepping_attempted);
        EXPECT_FALSE(diag.worst_unknown.empty());
        const std::string msg = e.what();
        EXPECT_NE(msg.find("Newton iterations"), std::string::npos) << msg;
        EXPECT_NE(msg.find("gmin stepping attempted"), std::string::npos) << msg;
    }
}

TEST(DcDiagnostics, TrySolveDcReturnsStructuredOutcome) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<circuit::Diode>("D", a, kGround);
    circuit::DcOptions opts;
    opts.newton.max_iterations = 1;
    opts.allow_gmin_stepping = false;
    opts.allow_source_stepping = false;
    const circuit::DcOutcome outcome = circuit::try_solve_dc(ckt, opts);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.diagnostics.total_iterations, 1);
    EXPECT_FALSE(outcome.diagnostics.gmin_stepping_attempted);
}

TEST(NewtonBudget, TotalIterationBudgetBoundsAllStepping) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<circuit::Diode>("D", a, kGround);
    circuit::DcOptions opts;
    opts.newton.max_total_iterations = 2;  // far too small: must stop, not spin
    const circuit::DcOutcome outcome = circuit::try_solve_dc(ckt, opts);
    EXPECT_FALSE(outcome.ok);
    EXPECT_TRUE(outcome.diagnostics.budget_exhausted);
    EXPECT_LE(outcome.diagnostics.total_iterations, 2);
}

TEST(NewtonBudget, HealthySolveUnaffectedByDefaultBudget) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId a = ckt.node("a");
    ckt.add<VSource>("V", in, kGround, Waveform::dc(5.0));
    ckt.add<Resistor>("R", in, a, 100.0);
    ckt.add<circuit::Diode>("D", a, kGround);
    const circuit::DcOutcome outcome = circuit::try_solve_dc(ckt);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GT(outcome.result.solution.v(a), 0.3);
}

}  // namespace
}  // namespace rfabm::faults
