// Sharded kill-and-resume integration against the real coordinator binary:
// SIGKILL workers at injected crash points, hang workers, SIGKILL the
// coordinator itself at its own crash points — the merged campaign journal
// and the derived output must stay byte-identical to an uninterrupted
// single-process run, for every (shards, jobs) combination tested.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/shard.hpp"

#ifndef CAMPAIGND_BIN
#error "CAMPAIGND_BIN must point at the rfabm_campaignd binary"
#endif
#ifndef LINT_FIXTURE_DIR
#error "LINT_FIXTURE_DIR must point at the lint fixture decks"
#endif

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool file_exists(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fclose(f);
    return true;
}

/// Run the coordinator; returns the raw std::system() status.
int run_campaignd(const std::string& args) {
    const std::string cmd =
        std::string(CAMPAIGND_BIN) + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

bool exited_with(int status, int code) {
    return WIFEXITED(status) && WEXITSTATUS(status) == code;
}
bool died_by_sigkill(int status) {
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return true;
    return WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL;
}

/// (shards, jobs-per-shard) matrix: the byte-identity contract must hold for
/// any topology.
struct Topo {
    int shards;
    int jobs;
};

class ShardResumeTest : public ::testing::TestWithParam<Topo> {
  protected:
    void SetUp() override {
        stem_ = ::testing::TempDir() + "rfabm_shardresume_s" +
                std::to_string(GetParam().shards) + "_j" + std::to_string(GetParam().jobs);
        ref_stem_ = stem_ + "_ref";
        clean(stem_);
        clean(ref_stem_);
    }
    void TearDown() override {
        clean(stem_);
        clean(ref_stem_);
    }

    void clean(const std::string& stem) {
        std::remove((stem + ".out").c_str());
        std::remove((stem + ".wal").c_str());
        std::remove((stem + ".lintcache").c_str());
        std::remove((stem + ".triage.json").c_str());
        for (std::uint32_t s = 0; s < 8; ++s) {
            std::remove(rfabm::exec::shard_journal_path(stem, s).c_str());
        }
    }

    /// The common campaign geometry: 6 dies x 4 corners, fast synthetic
    /// cells.  @p stem owns the journal family and the output file.
    std::string grid_args(const std::string& stem, int shards, int jobs) const {
        return "--journal " + stem + " --out " + stem + ".out --dies 6 --envs 4" +
               " --cell-ms 2 --shards " + std::to_string(shards) + " --jobs " +
               std::to_string(jobs);
    }

    /// Uninterrupted --shards 1 reference for the same grid; returns the
    /// output bytes and leaves the reference journal at ref_stem_.wal.
    std::string reference(const std::string& extra = "") {
        const int rc = run_campaignd(grid_args(ref_stem_, 1, GetParam().jobs) + extra);
        EXPECT_TRUE(exited_with(rc, 0)) << "reference run failed, status=" << rc;
        const std::string out = slurp(ref_stem_ + ".out");
        EXPECT_FALSE(out.empty());
        return out;
    }

    void expect_identical(const std::string& ref_out, const char* label) {
        EXPECT_EQ(slurp(stem_ + ".out"), ref_out)
            << label << ": output must be byte-identical to the single-process run";
        EXPECT_EQ(slurp(stem_ + ".wal"), slurp(ref_stem_ + ".wal"))
            << label << ": merged campaign journal must be byte-identical";
    }

    std::string stem_, ref_stem_;
};

TEST_P(ShardResumeTest, CleanShardedRunMatchesSingleProcess) {
    const std::string ref = reference();
    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs));
    ASSERT_TRUE(exited_with(rc, 0)) << "status=" << rc;
    expect_identical(ref, "clean");
}

TEST_P(ShardResumeTest, SigkilledWorkerIsRestartedAndConverges) {
    const std::string ref = reference();
    // Worker for shard 1 SIGKILLs itself after journaling 2 records; the
    // supervisor must restart it with resume and the merge must still fold
    // to the reference bytes.
    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --crash-in-shard 1:2");
    ASSERT_TRUE(exited_with(rc, 0)) << "status=" << rc;
    expect_identical(ref, "worker-crash");
}

TEST_P(ShardResumeTest, HungWorkerIsKilledByWatchdogAndConverges) {
    const std::string ref = reference();
    // Shard 1's worker goes silent mid-campaign; the auto-tuned heartbeat
    // watchdog must SIGKILL and restart it.
    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --hang-in-shard 1");
    ASSERT_TRUE(exited_with(rc, 0)) << "status=" << rc;
    expect_identical(ref, "worker-hang");
}

TEST_P(ShardResumeTest, SigkilledCoordinatorResumesAtEveryCrashPoint) {
    const std::string ref = reference();
    for (const char* point : {"pre-dispatch", "post-workers", "post-merge"}) {
        clean(stem_);
        const int crashed =
            run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                          " --coord-crash " + point);
        ASSERT_TRUE(died_by_sigkill(crashed))
            << "expected coordinator SIGKILL at " << point << ", status=" << crashed;

        const int resumed = run_campaignd(
            grid_args(stem_, GetParam().shards, GetParam().jobs) + " --resume");
        ASSERT_TRUE(exited_with(resumed, 0)) << point << ": status=" << resumed;
        expect_identical(ref, point);
    }
}

TEST_P(ShardResumeTest, CoordinatorCrashThenWorkerCrashStillConverges) {
    const std::string ref = reference();
    // Compound failure in one history: a worker SIGKILLs itself (and is
    // restarted with resume), then the coordinator dies after the workers
    // finish but before the merge.  The resumed coordinator finds complete
    // shard journals and must only merge.
    ASSERT_TRUE(died_by_sigkill(
        run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                      " --crash-in-shard 0:1 --coord-crash post-workers")));
    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --resume");
    ASSERT_TRUE(exited_with(rc, 0)) << "status=" << rc;
    expect_identical(ref, "coord+worker");
}

TEST_P(ShardResumeTest, PoisonedCellQuarantinesIdenticallyAcrossTopologies) {
    // Die 2, env 1 always throws: both topologies must quarantine exactly
    // that cell (exit 1 = degraded) and agree on every byte of the rest.
    const int ref_rc = run_campaignd(grid_args(ref_stem_, 1, GetParam().jobs) +
                                     " --poison 2:1 --max-attempts 2");
    ASSERT_TRUE(exited_with(ref_rc, 1)) << "status=" << ref_rc;
    const std::string ref = slurp(ref_stem_ + ".out");
    ASSERT_FALSE(ref.empty());

    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --poison 2:1 --max-attempts 2");
    ASSERT_TRUE(exited_with(rc, 1)) << "status=" << rc;
    expect_identical(ref, "poison");
}

TEST_P(ShardResumeTest, LintAdmissionGatesDispatch) {
    const std::string fixtures = LINT_FIXTURE_DIR;
    // A clean deck passes admission and the campaign runs.
    const int ok = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --netlist " + fixtures + "/clean.cir");
    EXPECT_TRUE(exited_with(ok, 0)) << "status=" << ok;

    // A rejected deck exits 3 before ANY shard work is dispatched: no shard
    // journals, no campaign journal, no output.
    clean(stem_);
    const int bad = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                  " --netlist " + fixtures + "/floating_node.cir");
    EXPECT_TRUE(exited_with(bad, 3)) << "status=" << bad;
    EXPECT_FALSE(file_exists(stem_ + ".wal"));
    EXPECT_FALSE(file_exists(stem_ + ".out"));
    for (std::uint32_t s = 0; s < 8; ++s) {
        EXPECT_FALSE(file_exists(rfabm::exec::shard_journal_path(stem_, s)))
            << "shard " << s << " was dispatched despite lint rejection";
    }
}

TEST_P(ShardResumeTest, FlowProgramAdmissionGatesDispatch) {
    const std::string programs = std::string(LINT_FIXTURE_DIR) + "/flow";
    // A clean scan program admits, the campaign runs, and the clean verdict
    // persists as an admission ticket the workers re-admitted against.
    const int ok = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --program " + programs + "/clean.prog");
    EXPECT_TRUE(exited_with(ok, 0)) << "status=" << ok;
    EXPECT_TRUE(file_exists(stem_ + ".lintcache"))
        << "clean admission must leave a ticket file for the workers";

    // A temporally broken program (unpowered detector read) exits 3 before
    // ANY shard work is dispatched: no shard journals, no campaign journal,
    // no output, no admission ticket.
    clean(stem_);
    const int bad = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                  " --program " + programs + "/unpowered.prog");
    EXPECT_TRUE(exited_with(bad, 3)) << "status=" << bad;
    EXPECT_FALSE(file_exists(stem_ + ".wal"));
    EXPECT_FALSE(file_exists(stem_ + ".out"));
    for (std::uint32_t s = 0; s < 8; ++s) {
        EXPECT_FALSE(file_exists(rfabm::exec::shard_journal_path(stem_, s)))
            << "shard " << s << " was dispatched despite flow-lint rejection";
    }

    // Warning-only findings (measure-before-calibrate) do not gate dispatch.
    clean(stem_);
    const int warned =
        run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                      " --program " + programs + "/measure_before_calibrate.prog");
    EXPECT_TRUE(exited_with(warned, 0)) << "status=" << warned;
}

TEST_P(ShardResumeTest, TriageJsonRecordsPerShardAttemptHistory) {
    const std::string triage = stem_ + ".triage.json";
    // Shard 1's worker SIGKILLs itself once; the triage JSON must carry the
    // full supervision history — the crash, the backoff, and the resumed
    // relaunch that completed.
    const int rc = run_campaignd(grid_args(stem_, GetParam().shards, GetParam().jobs) +
                                 " --crash-in-shard 1:2 --triage " + triage);
    ASSERT_TRUE(exited_with(rc, 0)) << "status=" << rc;
    const std::string json = slurp(triage);
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"shards\": ["), std::string::npos) << json;
    EXPECT_NE(json.find("\"attempts\": ["), std::string::npos) << json;
    EXPECT_NE(json.find("\"backoff_ms\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ended\": \"crashed\""), std::string::npos)
        << "the injected SIGKILL must appear in the attempt history: " << json;
    EXPECT_NE(json.find("\"ended\": \"completed\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"resume\": true"), std::string::npos)
        << "the relaunch after the crash must be a resume: " << json;
    // Every cell still converged: the degraded history is telemetry, not
    // an outcome change.
    EXPECT_NE(json.find("\"crashes\":"), std::string::npos) << json;
}

INSTANTIATE_TEST_SUITE_P(Topologies, ShardResumeTest,
                         ::testing::Values(Topo{2, 1}, Topo{3, 1}, Topo{3, 4}),
                         [](const ::testing::TestParamInfo<Topo>& info) {
                             return "shards" + std::to_string(info.param.shards) + "jobs" +
                                    std::to_string(info.param.jobs);
                         });

}  // namespace
