#include "rf/sweep.hpp"

#include <gtest/gtest.h>

namespace rfabm::rf {
namespace {

TEST(Sweep, LinspaceEndpointsExact) {
    const auto v = linspace(0.9, 2.1, 13);
    ASSERT_EQ(v.size(), 13u);
    EXPECT_DOUBLE_EQ(v.front(), 0.9);
    EXPECT_DOUBLE_EQ(v.back(), 2.1);
    EXPECT_NEAR(v[1] - v[0], 0.1, 1e-12);
}

TEST(Sweep, LinspaceSinglePoint) {
    const auto v = linspace(5.0, 99.0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0], 5.0);
}

TEST(Sweep, LinspaceRejectsZeroCount) {
    EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Sweep, ArangeCoversPaperPowerGrid) {
    // Fig. 4 x-axis: -19 dBm to +6 dBm.
    const auto v = arange(-19.0, 6.0, 1.0);
    ASSERT_EQ(v.size(), 26u);
    EXPECT_DOUBLE_EQ(v.front(), -19.0);
    EXPECT_DOUBLE_EQ(v.back(), 6.0);
}

TEST(Sweep, ArangeDescending) {
    const auto v = arange(2.0, 1.0, -0.5);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 1.5);
}

TEST(Sweep, ArangeRejectsBadStep) {
    EXPECT_THROW(arange(0.0, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(arange(0.0, 1.0, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace rfabm::rf
