#include "rf/units.hpp"

#include <gtest/gtest.h>

namespace rfabm::rf {
namespace {

TEST(Units, DbmWattsRoundTrip) {
    EXPECT_DOUBLE_EQ(dbm_to_watts(0.0), 1e-3);
    EXPECT_DOUBLE_EQ(dbm_to_watts(30.0), 1.0);
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(-17.3)), -17.3, 1e-12);
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(6.0)), 6.0, 1e-12);
}

TEST(Units, ZeroDbmPeakVoltageIn50Ohm) {
    // 0 dBm in 50 ohm: Vrms = sqrt(0.05) ~ 223.6 mV, Vpk = 316.2 mV.
    EXPECT_NEAR(dbm_to_peak_volts(0.0), 0.31622776601, 1e-9);
}

TEST(Units, PeakVoltsRoundTrip) {
    for (double dbm : {-25.0, -18.0, -6.0, 0.0, 6.0}) {
        EXPECT_NEAR(peak_volts_to_dbm(dbm_to_peak_volts(dbm)), dbm, 1e-12);
    }
}

TEST(Units, PeakVoltsScaleWithImpedance) {
    // Same power into higher impedance needs a larger swing.
    EXPECT_GT(dbm_to_peak_volts(0.0, 75.0), dbm_to_peak_volts(0.0, 50.0));
}

TEST(Units, DbRatios) {
    EXPECT_DOUBLE_EQ(ratio_to_db(10.0), 10.0);
    EXPECT_DOUBLE_EQ(db_to_ratio(3.0102999566398116), 1.9999999999999996);
    EXPECT_DOUBLE_EQ(vratio_to_db(10.0), 20.0);
    EXPECT_NEAR(db_to_vratio(6.0), 1.9952623149688795, 1e-12);
}

TEST(Units, TemperatureConversion) {
    EXPECT_DOUBLE_EQ(celsius_to_kelvin(27.0), 300.15);
    EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(-10.0)), -10.0);
}

TEST(Units, PowerDifferenceOfTenDbIsTenfold) {
    EXPECT_NEAR(dbm_to_watts(10.0) / dbm_to_watts(0.0), 10.0, 1e-12);
}

}  // namespace
}  // namespace rfabm::rf
