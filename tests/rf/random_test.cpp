#include "rf/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rfabm::rf {
namespace {

TEST(Random, DeterministicForSeed) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiverge) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Random, ReseedRestartsSequence) {
    Xoshiro256 a(7);
    const auto first = a.next_u64();
    a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), first);
}

TEST(Random, UniformInRange) {
    Xoshiro256 rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Random, NormalMomentsRoughlyStandard) {
    Xoshiro256 rng(99);
    const int n = 200000;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum2 += z * z;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, NormalWithParameters) {
    Xoshiro256 rng(5);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(4.0, 0.5);
    EXPECT_NEAR(sum / n, 4.0, 0.02);
}

TEST(Random, TruncatedNormalRespectsBounds) {
    Xoshiro256 rng(77);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.truncated_normal(1.0, 0.1, 3.0);
        EXPECT_GE(v, 1.0 - 0.3);
        EXPECT_LE(v, 1.0 + 0.3);
    }
}

}  // namespace
}  // namespace rfabm::rf
