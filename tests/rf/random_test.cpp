#include "rf/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rfabm::rf {
namespace {

TEST(Random, DeterministicForSeed) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiverge) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Random, ReseedRestartsSequence) {
    Xoshiro256 a(7);
    const auto first = a.next_u64();
    a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), first);
}

TEST(Random, UniformInRange) {
    Xoshiro256 rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Random, NormalMomentsRoughlyStandard) {
    Xoshiro256 rng(99);
    const int n = 200000;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum2 += z * z;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, NormalWithParameters) {
    Xoshiro256 rng(5);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(4.0, 0.5);
    EXPECT_NEAR(sum / n, 4.0, 0.02);
}

TEST(Random, TruncatedNormalRespectsBounds) {
    Xoshiro256 rng(77);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.truncated_normal(1.0, 0.1, 3.0);
        EXPECT_GE(v, 1.0 - 0.3);
        EXPECT_LE(v, 1.0 + 0.3);
    }
}

TEST(Random, JumpIsDeterministicAndDiverges) {
    Xoshiro256 jumped(42);
    jumped.jump();
    Xoshiro256 jumped_again(42);
    jumped_again.jump();
    Xoshiro256 plain(42);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t j = jumped.next_u64();
        EXPECT_EQ(j, jumped_again.next_u64());  // jump is a pure state map
        same += j == plain.next_u64();
    }
    EXPECT_LT(same, 2);  // 2^128 draws ahead: no overlap with the base stream
}

TEST(Random, JumpedBlocksAreDisjointForParallelWorkers) {
    // Worker k jumps k times from the shared seed; adjacent blocks must not
    // collide over a short horizon.
    Xoshiro256 w0(7);
    Xoshiro256 w1(7);
    w1.jump();
    Xoshiro256 w2(7);
    w2.jump();
    w2.jump();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t a = w0.next_u64();
        const std::uint64_t b = w1.next_u64();
        const std::uint64_t c = w2.next_u64();
        same += (a == b) + (b == c) + (a == c);
    }
    EXPECT_LT(same, 2);
}

TEST(Random, SplitIsConstAndOrderFree) {
    Xoshiro256 base(20050307);
    const auto s3_first = base.split(3).next_u64();
    // Splitting other streams (in any order) must not perturb stream 3, and
    // split() must not advance the base engine.
    base.split(7);
    base.split(0);
    EXPECT_EQ(base.split(3).next_u64(), s3_first);
    Xoshiro256 untouched(20050307);
    EXPECT_EQ(base.next_u64(), untouched.next_u64());
}

TEST(Random, SplitStreamsAreMutuallyIndependent) {
    Xoshiro256 base(1234);
    Xoshiro256 s0 = base.split(0);
    Xoshiro256 s1 = base.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += s0.next_u64() == s1.next_u64();
    EXPECT_LT(same, 2);
    // And they inherit good marginals: quick sanity on the mean.
    Xoshiro256 s2 = base.split(2);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += s2.uniform();
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Random, SplitDependsOnBaseState) {
    Xoshiro256 a(9);
    Xoshiro256 b(9);
    b.next_u64();  // different state now
    int same = 0;
    Xoshiro256 sa = a.split(0);
    Xoshiro256 sb = b.split(0);
    for (int i = 0; i < 64; ++i) same += sa.next_u64() == sb.next_u64();
    EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace rfabm::rf
