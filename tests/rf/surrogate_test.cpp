// Two-tier surrogate serving, tier 1 in isolation: response-surface fitting
// (envelope + cross-validated error bound), the store's serving decisions,
// and the journal-discipline persistence (save / load / shard merge).
#include "rf/surrogate/store.hpp"
#include "rf/surrogate/surface.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace rfabm::rf::surrogate {
namespace {

// Ground truth used throughout: a smooth detector-like response that lies
// inside the surface's polynomial basis, so an honest fit recovers it to
// numerical noise and the published error bound collapses.
double truth(double pin_dbm, double freq_hz, double vdd) {
    const double f_ghz = freq_hz / 1e9;
    return 0.8 + 0.05 * pin_dbm + 0.002 * pin_dbm * pin_dbm + 0.03 * f_ghz + 0.1 * vdd;
}

std::vector<Sample> grid_samples() {
    std::vector<Sample> samples;
    for (double p = -10.0; p <= 2.01; p += 2.0) {
        for (double f = 1.0e9; f <= 2.01e9; f += 0.5e9) {
            for (double v = 1.7; v <= 1.901; v += 0.1) {
                samples.push_back({Query{p, f, v}, truth(p, f, v)});
            }
        }
    }
    return samples;
}

std::string temp_path(const char* stem) {
    return ::testing::TempDir() + "/" + stem + ".sur";
}

TEST(ResponseSurface, FitRecoversSmoothResponseWithTightBound) {
    const ResponseSurface s = ResponseSurface::fit(grid_samples(), FitOptions{});
    ASSERT_TRUE(s.valid());
    // Off-grid, in-envelope probes: the truth is in the basis, so the model
    // agrees to numerical noise and the bound reflects that.
    for (const Query q : {Query{-7.3, 1.2e9, 1.75}, Query{-1.1, 1.9e9, 1.88}}) {
        EXPECT_TRUE(s.envelope().contains(q));
        EXPECT_NEAR(s.evaluate(q), truth(q.pin_dbm, q.freq_hz, q.vdd), 1e-6);
    }
    EXPECT_GT(s.error_bound(), 0.0);
    EXPECT_LT(s.error_bound(), 1e-6);
    EXPECT_LE(s.cv_p95(), s.error_bound());
    EXPECT_EQ(s.sample_count(), grid_samples().size());
}

TEST(ResponseSurface, FitRefusesUnderdeterminedPopulations) {
    std::vector<Sample> few = grid_samples();
    few.resize(5);
    EXPECT_FALSE(ResponseSurface::fit(few, FitOptions{}).valid());
    EXPECT_FALSE(ResponseSurface::fit({}, FitOptions{}).valid());
}

TEST(ResponseSurface, EnvelopeAdmitsTrainingBoxAndRefusesBeyond) {
    const ResponseSurface s = ResponseSurface::fit(grid_samples(), FitOptions{});
    ASSERT_TRUE(s.valid());
    // Training-grid corners are inside (the margin exists for exactly this).
    EXPECT_TRUE(s.envelope().contains(Query{-10.0, 1.0e9, 1.7}));
    EXPECT_TRUE(s.envelope().contains(Query{2.0, 2.0e9, 1.9}));
    // Clearly outside on each axis: refused, never extrapolated.
    EXPECT_FALSE(s.envelope().contains(Query{5.0, 1.5e9, 1.8}));
    EXPECT_FALSE(s.envelope().contains(Query{-5.0, 3.0e9, 1.8}));
    EXPECT_FALSE(s.envelope().contains(Query{-5.0, 1.5e9, 1.2}));
}

TEST(ResponseSurface, DegenerateAxisIsPinnedNotExtrapolated) {
    // Train at a single supply: the vdd axis carries no information, so the
    // surface must refuse queries at any other supply instead of pretending.
    std::vector<Sample> samples;
    for (double p = -10.0; p <= 2.01; p += 0.5) {
        samples.push_back({Query{p, 1.5e9, 1.8}, truth(p, 1.5e9, 1.8)});
    }
    const ResponseSurface s = ResponseSurface::fit(samples, FitOptions{});
    ASSERT_TRUE(s.valid());
    EXPECT_TRUE(s.envelope().degenerate[1]);
    EXPECT_TRUE(s.envelope().degenerate[2]);
    EXPECT_TRUE(s.envelope().contains(Query{-4.0, 1.5e9, 1.8}));
    EXPECT_FALSE(s.envelope().contains(Query{-4.0, 1.5e9, 1.75}));
    EXPECT_FALSE(s.envelope().contains(Query{-4.0, 1.4e9, 1.8}));
}

TEST(ResponseSurface, BatchEvaluationMatchesScalarExactly) {
    const ResponseSurface s = ResponseSurface::fit(grid_samples(), FitOptions{});
    ASSERT_TRUE(s.valid());
    std::vector<Query> queries;
    for (double p = -9.5; p <= 1.51; p += 1.0) queries.push_back({p, 1.3e9, 1.82});
    const std::vector<double> batch = s.evaluate(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(batch[i], s.evaluate(queries[i])) << i;  // bitwise, not NEAR
    }
}

TEST(ResponseSurface, EncodeDecodeRoundTripsBitExactly) {
    const ResponseSurface s = ResponseSurface::fit(grid_samples(), FitOptions{});
    ASSERT_TRUE(s.valid());
    const ResponseSurface d = ResponseSurface::decode(s.encode());
    ASSERT_TRUE(d.valid());
    EXPECT_EQ(d.error_bound(), s.error_bound());
    EXPECT_EQ(d.cv_p95(), s.cv_p95());
    EXPECT_EQ(d.sample_count(), s.sample_count());
    EXPECT_EQ(d.basis_size(), s.basis_size());
    for (const Query q : {Query{-7.3, 1.2e9, 1.75}, Query{0.5, 1.8e9, 1.71}}) {
        EXPECT_EQ(d.envelope().contains(q), s.envelope().contains(q));
        EXPECT_EQ(d.evaluate(q), s.evaluate(q));  // bitwise round-trip
    }
}

TEST(ResponseSurface, DecodeRejectsStructurallyBrokenBlobs) {
    EXPECT_FALSE(ResponseSurface::decode({}).valid());
    EXPECT_FALSE(ResponseSurface::decode({1.0, 2.0}).valid());
    std::vector<double> blob = ResponseSurface::fit(grid_samples(), FitOptions{}).encode();
    blob.resize(blob.size() / 2);  // truncated mid-structure
    EXPECT_FALSE(ResponseSurface::decode(blob).valid());
}

// ---------------------------------------------------------------------------
// SurrogateStore: serving decisions and the learn-then-hit lifecycle.

StoreOptions fast_learning_options() {
    StoreOptions opts;
    opts.refit_min_samples = 12;
    return opts;
}

SurrogateKey test_key() { return SurrogateKey{0, 0xD1Eu, 0xC0Eu}; }

void feed_power_sweep(SurrogateStore* store, int points) {
    for (int i = 0; i < points; ++i) {
        const double p = -10.0 + i;
        store->observe(test_key(), Query{p, 1.5e9, 1.8}, truth(p, 1.5e9, 1.8));
    }
}

TEST(SurrogateStore, MissesThenLearnsThenHits) {
    SurrogateStore store(fast_learning_options());
    double value = 0.0;
    double bound = -1.0;
    EXPECT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &value, &bound),
              Decision::kMiss);
    feed_power_sweep(&store, 12);
    EXPECT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &value, &bound),
              Decision::kHit);
    EXPECT_NEAR(value, truth(-5.0, 1.5e9, 1.8), 1e-6);
    EXPECT_GE(bound, 0.0);
    EXPECT_LE(bound, store.options().max_bound);
    const StoreCounters c = store.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.observed, 12u);
    EXPECT_EQ(c.refits, 1u);
    EXPECT_EQ(store.surfaces(), 1u);
}

TEST(SurrogateStore, RefusesOutOfEnvelopeQueries) {
    SurrogateStore store(fast_learning_options());
    feed_power_sweep(&store, 12);
    double value = 0.0;
    EXPECT_EQ(store.try_serve(test_key(), Query{40.0, 1.5e9, 1.8}, &value),
              Decision::kOutOfEnvelope);
    EXPECT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.4}, &value),
              Decision::kOutOfEnvelope);
    EXPECT_EQ(store.counters().out_of_envelope, 2u);
    EXPECT_EQ(store.counters().hits, 0u);
}

TEST(SurrogateStore, RefusesSurfacesOverTheErrorBudget) {
    StoreOptions opts = fast_learning_options();
    opts.max_bound = 1e-18;  // tighter than numerical noise: nothing qualifies
    SurrogateStore store(opts);
    feed_power_sweep(&store, 12);
    double value = 0.0;
    EXPECT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &value),
              Decision::kBoundTooLoose);
    EXPECT_EQ(store.counters().bound_too_loose, 1u);
}

TEST(SurrogateStore, BatchedServingIsAllOrNothing) {
    SurrogateStore store(fast_learning_options());
    feed_power_sweep(&store, 12);
    // One out-of-envelope point poisons the whole sweep: nothing is served,
    // one (identical) decision is tallied per query.
    std::vector<Query> sweep{{-8.0, 1.5e9, 1.8}, {-5.0, 1.5e9, 1.8}, {40.0, 1.5e9, 1.8}};
    std::vector<double> values;
    EXPECT_EQ(store.try_serve(test_key(), sweep, &values), Decision::kOutOfEnvelope);
    EXPECT_TRUE(values.empty());
    EXPECT_EQ(store.counters().out_of_envelope, 3u);
    EXPECT_EQ(store.counters().hits, 0u);
    // Fully in-envelope: every point served, bitwise equal to scalar serving.
    sweep.pop_back();
    double bound = 0.0;
    EXPECT_EQ(store.try_serve(test_key(), sweep, &values, &bound), Decision::kHit);
    ASSERT_EQ(values.size(), 2u);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        double scalar = 0.0;
        EXPECT_EQ(store.try_serve(test_key(), sweep[i], &scalar), Decision::kHit);
        EXPECT_EQ(values[i], scalar);
    }
    EXPECT_EQ(store.counters().hits, 4u);
}

TEST(SurrogateStore, RetentionCapAgesOldestSamplesOut) {
    StoreOptions opts = fast_learning_options();
    opts.max_samples_per_key = 16;
    SurrogateStore store(opts);
    feed_power_sweep(&store, 40);
    EXPECT_EQ(store.total_samples(), 16u);
    EXPECT_EQ(store.counters().observed, 40u);
}

TEST(SurrogateStore, SaveLoadRoundTripServesIdentically) {
    const std::string path = temp_path("roundtrip");
    SurrogateStore store(fast_learning_options());
    feed_power_sweep(&store, 12);
    double before = 0.0;
    ASSERT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &before), Decision::kHit);
    ASSERT_TRUE(store.save(path));

    SurrogateStore fresh(fast_learning_options());
    ASSERT_TRUE(fresh.load(path));
    EXPECT_EQ(fresh.surfaces(), 1u);
    EXPECT_EQ(fresh.total_samples(), 12u);
    double after = 0.0;
    EXPECT_EQ(fresh.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &after), Decision::kHit);
    EXPECT_EQ(after, before);  // the persisted surface is bit-identical
    EXPECT_EQ(fresh.counters().load_rejected, 0u);
    std::remove(path.c_str());
}

TEST(SurrogateStore, LoadRejectsMissingFileAndStaysEmpty) {
    SurrogateStore store(fast_learning_options());
    EXPECT_FALSE(store.load(temp_path("never_written")));
    EXPECT_EQ(store.counters().load_rejected, 1u);
    EXPECT_EQ(store.surfaces(), 0u);
    double value = 0.0;
    EXPECT_EQ(store.try_serve(test_key(), Query{-5.0, 1.5e9, 1.8}, &value), Decision::kMiss);
}

TEST(SurrogateStore, MergeFoldsShardStoresAndRefitsPooled) {
    // Two shards each learned half the power range of the SAME key; the
    // coordinator's merge must pool them into one surface spanning both.
    const std::string a = temp_path("shard_a");
    const std::string b = temp_path("shard_b");
    {
        SurrogateStore shard(fast_learning_options());
        for (double p = -10.0; p <= -4.01; p += 0.5) {
            shard.observe(test_key(), Query{p, 1.5e9, 1.8}, truth(p, 1.5e9, 1.8));
        }
        ASSERT_TRUE(shard.save(a));
    }
    {
        SurrogateStore shard(fast_learning_options());
        for (double p = -4.0; p <= 2.01; p += 0.5) {
            shard.observe(test_key(), Query{p, 1.5e9, 1.8}, truth(p, 1.5e9, 1.8));
        }
        ASSERT_TRUE(shard.save(b));
    }
    SurrogateStore merged(fast_learning_options());
    EXPECT_EQ(merged.merge_from({a, b}), 2u);
    EXPECT_EQ(merged.surfaces(), 1u);
    double value = 0.0;
    // Each shard alone would refuse the other's half as out-of-envelope; the
    // pooled surface serves both.
    EXPECT_EQ(merged.try_serve(test_key(), Query{-8.0, 1.5e9, 1.8}, &value), Decision::kHit);
    EXPECT_NEAR(value, truth(-8.0, 1.5e9, 1.8), 1e-6);
    EXPECT_EQ(merged.try_serve(test_key(), Query{1.0, 1.5e9, 1.8}, &value), Decision::kHit);
    EXPECT_NEAR(value, truth(1.0, 1.5e9, 1.8), 1e-6);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(SurrogateStore, MergeSkipsCorruptShardsButKeepsGoodOnes) {
    const std::string good = temp_path("merge_good");
    const std::string bad = temp_path("merge_bad");
    {
        SurrogateStore shard(fast_learning_options());
        feed_power_sweep(&shard, 12);
        ASSERT_TRUE(shard.save(good));
    }
    {
        std::FILE* f = std::fopen(bad.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a surrogate store image", f);
        std::fclose(f);
    }
    SurrogateStore merged(fast_learning_options());
    EXPECT_EQ(merged.merge_from({bad, good}), 1u);
    EXPECT_EQ(merged.counters().load_rejected, 1u);
    EXPECT_EQ(merged.surfaces(), 1u);
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(SurrogateStore, DecisionNamesAreStable) {
    EXPECT_STREQ(to_string(Decision::kHit), "hit");
    EXPECT_STREQ(to_string(Decision::kMiss), "miss");
    EXPECT_STREQ(to_string(Decision::kOutOfEnvelope), "out_of_envelope");
    EXPECT_STREQ(to_string(Decision::kBoundTooLoose), "bound_too_loose");
}

}  // namespace
}  // namespace rfabm::rf::surrogate
