#include "rf/curve.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfabm::rf {
namespace {

MonotoneCurve make_increasing() {
    return MonotoneCurve({{0.0, 1.0}, {1.0, 2.0}, {2.0, 4.0}, {3.0, 8.0}});
}

MonotoneCurve make_decreasing() {
    // Mirrors the frequency detector: V = k / f is decreasing in f.
    std::vector<CurvePoint> pts;
    for (double f = 1.0; f <= 2.01; f += 0.1) pts.push_back({f, 1.0 / f});
    return MonotoneCurve(pts);
}

TEST(MonotoneCurve, RejectsDegenerateInput) {
    EXPECT_THROW(MonotoneCurve({{0.0, 0.0}}), std::invalid_argument);
    EXPECT_THROW(MonotoneCurve({{0.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(MonotoneCurve({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.5}}), std::invalid_argument);
    EXPECT_THROW(MonotoneCurve({{0.0, 0.0}, {1.0, 0.0}}), std::invalid_argument);
}

TEST(MonotoneCurve, SortsInputByX) {
    const MonotoneCurve c({{2.0, 4.0}, {0.0, 1.0}, {1.0, 2.0}});
    EXPECT_DOUBLE_EQ(c.x_min(), 0.0);
    EXPECT_DOUBLE_EQ(c.x_max(), 2.0);
    EXPECT_DOUBLE_EQ(c.evaluate(1.0), 2.0);
}

TEST(MonotoneCurve, EvaluatesAtAndBetweenKnots) {
    const MonotoneCurve c = make_increasing();
    EXPECT_DOUBLE_EQ(c.evaluate(0.0), 1.0);
    EXPECT_DOUBLE_EQ(c.evaluate(3.0), 8.0);
    EXPECT_DOUBLE_EQ(c.evaluate(0.5), 1.5);
    EXPECT_DOUBLE_EQ(c.evaluate(2.5), 6.0);
}

TEST(MonotoneCurve, ExtrapolatesLinearly) {
    const MonotoneCurve c = make_increasing();
    EXPECT_DOUBLE_EQ(c.evaluate(-1.0), 0.0);   // slope 1 at the left end
    EXPECT_DOUBLE_EQ(c.evaluate(4.0), 12.0);   // slope 4 at the right end
}

// The out-of-domain contract pinned by src/rf/curve.hpp: queries AT an
// endpoint return the tabulated value exactly, and queries beyond it
// extrapolate the end segment — no clamping, in either direction, for either
// evaluate() or invert().  The surrogate tier's envelope semantics are
// designed against this (it refuses out-of-domain queries precisely because
// the curve would happily extrapolate them).
TEST(MonotoneCurve, EndpointQueriesAreExact) {
    const MonotoneCurve inc = make_increasing();
    EXPECT_DOUBLE_EQ(inc.evaluate(inc.x_min()), 1.0);
    EXPECT_DOUBLE_EQ(inc.evaluate(inc.x_max()), 8.0);
    EXPECT_DOUBLE_EQ(inc.invert(1.0), inc.x_min());
    EXPECT_DOUBLE_EQ(inc.invert(8.0), inc.x_max());
    const MonotoneCurve dec = make_decreasing();
    EXPECT_DOUBLE_EQ(dec.evaluate(dec.x_min()), 1.0);
    EXPECT_NEAR(dec.invert(1.0), dec.x_min(), 1e-12);
}

TEST(MonotoneCurve, NeverClampsBeyondEndpoints) {
    const MonotoneCurve c = make_increasing();
    // Monotone strictly past the ends: a clamped implementation would return
    // the endpoint value for every out-of-range query.
    EXPECT_LT(c.evaluate(-0.5), c.evaluate(0.0));
    EXPECT_GT(c.evaluate(3.5), c.evaluate(3.0));
    EXPECT_LT(c.invert(0.5), c.x_min());
    EXPECT_GT(c.invert(10.0), c.x_max());
    // Beyond-endpoint inversion continues the end segment's line exactly.
    EXPECT_DOUBLE_EQ(c.invert(0.0), -1.0);    // left slope 1: y=0 -> x=-1
    EXPECT_DOUBLE_EQ(c.invert(12.0), 4.0);    // right slope 4: y=12 -> x=4
}

TEST(MonotoneCurve, ExtrapolationIsContinuousAtEndpoints) {
    const MonotoneCurve c = make_decreasing();
    const double eps = 1e-9;
    EXPECT_NEAR(c.evaluate(c.x_min() - eps), c.evaluate(c.x_min()), 1e-6);
    EXPECT_NEAR(c.evaluate(c.x_max() + eps), c.evaluate(c.x_max()), 1e-6);
}

TEST(MonotoneCurve, InverseRoundTripIncreasing) {
    const MonotoneCurve c = make_increasing();
    for (double x = -0.5; x <= 3.5; x += 0.07) {
        EXPECT_NEAR(c.invert(c.evaluate(x)), x, 1e-12);
    }
}

TEST(MonotoneCurve, InverseRoundTripDecreasing) {
    const MonotoneCurve c = make_decreasing();
    EXPECT_FALSE(c.increasing());
    for (double f = 0.95; f <= 2.05; f += 0.013) {
        EXPECT_NEAR(c.invert(c.evaluate(f)), f, 1e-10);
    }
}

TEST(MonotoneCurve, InverseMatchesKnots) {
    const MonotoneCurve c = make_increasing();
    EXPECT_NEAR(c.invert(4.0), 2.0, 1e-12);
    EXPECT_NEAR(c.invert(1.0), 0.0, 1e-12);
}

TEST(Polyfit, RecoversExactQuadratic) {
    std::vector<double> x;
    std::vector<double> y;
    for (double xi = -2.0; xi <= 2.0; xi += 0.25) {
        x.push_back(xi);
        y.push_back(3.0 - 2.0 * xi + 0.5 * xi * xi);
    }
    const auto c = polyfit(x, y, 2);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 3.0, 1e-9);
    EXPECT_NEAR(c[1], -2.0, 1e-9);
    EXPECT_NEAR(c[2], 0.5, 1e-9);
}

TEST(Polyfit, LeastSquaresBeatsEndpoints) {
    // Fit a line through noisy-ish data; check the residual is small.
    std::vector<double> x{0, 1, 2, 3, 4};
    std::vector<double> y{0.1, 0.9, 2.1, 2.9, 4.1};
    const auto c = polyfit(x, y, 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(polyval(c, x[i]), y[i], 0.15);
    }
}

TEST(Polyfit, RejectsBadInput) {
    EXPECT_THROW(polyfit({1.0}, {1.0, 2.0}, 1), std::invalid_argument);
    EXPECT_THROW(polyfit({1.0}, {1.0}, 1), std::invalid_argument);
}

TEST(Polyval, HornerMatchesDirect) {
    const std::vector<double> c{1.0, -1.0, 2.0, 0.25};
    const double x = 1.7;
    const double direct = 1.0 - x + 2.0 * x * x + 0.25 * x * x * x;
    EXPECT_NEAR(polyval(c, x), direct, 1e-12);
}

}  // namespace
}  // namespace rfabm::rf
