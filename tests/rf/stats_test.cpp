#include "rf/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rfabm::rf {
namespace {

TEST(Stats, SummaryOfKnownPopulation) {
    const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
    EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
}

TEST(Stats, MaxAbsSeesNegativeExtremes) {
    const Summary s = summarize({-2.5, 0.3, 1.0});
    EXPECT_DOUBLE_EQ(s.max_abs, 2.5);
    EXPECT_DOUBLE_EQ(s.min, -2.5);
}

TEST(Stats, EmptySummaryIsZero) {
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleValueHasZeroStddev) {
    const Summary s = summarize({3.25});
    EXPECT_DOUBLE_EQ(s.mean, 3.25);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
    std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, RmsOfConstantIsItsMagnitude) {
    EXPECT_DOUBLE_EQ(rms({-3.0, -3.0, -3.0}), 3.0);
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

// Edge-case contracts the surrogate's error-bound computation leans on: an
// empty population is zeroed (not NaN), a single sample is its own
// percentile, and NaN inputs poison the aggregate instead of vanishing.
TEST(Stats, SingleSampleIsItsOwnPercentile) {
    EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(percentile({7.5}, 50.0), 7.5);
    EXPECT_DOUBLE_EQ(percentile({7.5}, 100.0), 7.5);
}

TEST(Stats, RmsOfSingleSample) {
    EXPECT_DOUBLE_EQ(rms({-4.0}), 4.0);
}

TEST(Stats, NanPropagatesThroughSummary) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const Summary s = summarize({1.0, nan, 3.0});
    EXPECT_EQ(s.count, 3u);
    EXPECT_TRUE(std::isnan(s.mean));
    EXPECT_TRUE(std::isnan(s.stddev));
}

TEST(Stats, NanPropagatesThroughRms) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isnan(rms({1.0, nan})));
}

TEST(Stats, NanLeavesSummaryExtremaFinite) {
    // min/max/max_abs use std::min/std::max, whose NaN comparisons are all
    // false: the extrema keep their finite values while mean/stddev go NaN.
    // percentile() gives NO such guarantee (sorting NaN has no ordering), so
    // callers — the surrogate's error-bound computation among them — must
    // filter non-finite residuals before ranking them.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const Summary s = summarize({1.0, nan, 3.0});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 3.0);
    EXPECT_DOUBLE_EQ(s.max_abs, 3.0);
}

}  // namespace
}  // namespace rfabm::rf
