#include "rf/stats.hpp"

#include <gtest/gtest.h>

namespace rfabm::rf {
namespace {

TEST(Stats, SummaryOfKnownPopulation) {
    const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
    EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
}

TEST(Stats, MaxAbsSeesNegativeExtremes) {
    const Summary s = summarize({-2.5, 0.3, 1.0});
    EXPECT_DOUBLE_EQ(s.max_abs, 2.5);
    EXPECT_DOUBLE_EQ(s.min, -2.5);
}

TEST(Stats, EmptySummaryIsZero) {
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleValueHasZeroStddev) {
    const Summary s = summarize({3.25});
    EXPECT_DOUBLE_EQ(s.mean, 3.25);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
    std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, RmsOfConstantIsItsMagnitude) {
    EXPECT_DOUBLE_EQ(rms({-3.0, -3.0, -3.0}), 3.0);
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

}  // namespace
}  // namespace rfabm::rf
