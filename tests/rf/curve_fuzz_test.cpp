// Randomized property tests for MonotoneCurve: inversion is the exact
// inverse on arbitrary strictly monotone tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rf/curve.hpp"
#include "rf/random.hpp"

namespace rfabm::rf {
namespace {

class CurveFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveFuzz, RandomIncreasingTablesRoundTrip) {
    Xoshiro256 rng(GetParam());
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform() * 30);
    std::vector<CurvePoint> pts;
    double x = rng.uniform(-10.0, 10.0);
    double y = rng.uniform(-5.0, 5.0);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({x, y});
        x += rng.uniform(0.01, 3.0);
        y += rng.uniform(0.001, 2.0);
    }
    const MonotoneCurve curve(pts);
    EXPECT_TRUE(curve.increasing());
    for (int k = 0; k < 100; ++k) {
        const double probe = rng.uniform(pts.front().x - 1.0, pts.back().x + 1.0);
        EXPECT_NEAR(curve.invert(curve.evaluate(probe)), probe, 1e-9);
    }
}

TEST_P(CurveFuzz, RandomDecreasingTablesRoundTrip) {
    Xoshiro256 rng(GetParam() ^ 0xFFFF);
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform() * 30);
    std::vector<CurvePoint> pts;
    double x = 0.0;
    double y = rng.uniform(5.0, 10.0);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({x, y});
        x += rng.uniform(0.01, 3.0);
        y -= rng.uniform(0.001, 2.0);
    }
    const MonotoneCurve curve(pts);
    EXPECT_FALSE(curve.increasing());
    for (int k = 0; k < 100; ++k) {
        const double probe = rng.uniform(-0.5, x + 0.5);
        EXPECT_NEAR(curve.invert(curve.evaluate(probe)), probe, 1e-9);
    }
}

TEST_P(CurveFuzz, EvaluateIsMonotone) {
    Xoshiro256 rng(GetParam() + 17);
    std::vector<CurvePoint> pts;
    double x = 0.0;
    double y = 0.0;
    for (int i = 0; i < 12; ++i) {
        pts.push_back({x, y});
        x += rng.uniform(0.1, 1.0);
        y += rng.uniform(0.01, 1.0);
    }
    const MonotoneCurve curve(pts);
    double prev = curve.evaluate(-1.0);
    for (double probe = -0.9; probe < x + 1.0; probe += 0.05) {
        const double v = curve.evaluate(probe);
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveFuzz, ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
}  // namespace rfabm::rf
