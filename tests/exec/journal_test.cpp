// Write-ahead journal: roundtrip, torn tails, corrupt records, identity.
#include "exec/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace rfabm::exec {
namespace {

class JournalTest : public ::testing::Test {
  protected:
    void SetUp() override {
        path_ = ::testing::TempDir() + "rfabm_journal_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal";
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }

    /// Append raw bytes to the journal file, bypassing the writer.
    void append_raw(const std::vector<unsigned char>& bytes) {
        std::FILE* f = std::fopen(path_.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }

    /// Flip one byte at @p offset from the END of the file.
    void corrupt_byte_from_end(long offset) {
        std::FILE* f = std::fopen(path_.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, -offset, SEEK_END), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, -offset, SEEK_END), 0);
        std::fputc(c ^ 0x5a, f);
        std::fclose(f);
    }

    std::string path_;
};

const CellRecord* find_cell(const JournalReplay& replay, const CellKey& key) {
    const CellRecord* found = nullptr;
    for (const CellRecord& r : replay.cells) {
        if (r.key == key) found = &r;  // append order: the newest record wins
    }
    return found;
}

CellRecord make_record(std::uint32_t die, std::uint32_t env, std::uint32_t meas,
                       std::vector<double> payload) {
    CellRecord r;
    r.key = {die, env, meas};
    r.outcome = 0;
    r.payload = std::move(payload);
    return r;
}

TEST_F(JournalTest, Fnv1aMatchesReference) {
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST_F(JournalTest, RoundtripPreservesBits) {
    JournalWriter::Options opts;
    opts.campaign_id = 0xfeedbeef;
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, opts));
    // Payload values chosen to be bit-pattern hostile: negative zero,
    // denormal, huge, and an irrational dressed in full precision.
    writer.append_cell(make_record(0, 0, 0, {-0.0, 5e-324, 1.7e308, 0.1}));
    writer.append_cell(make_record(1, 2, 3, {}));
    writer.append_quarantine({7, 8, 9}, 3);
    writer.close();

    const JournalReplay replay = replay_journal(path_, 0xfeedbeef);
    ASSERT_TRUE(replay.present);
    EXPECT_FALSE(replay.torn_tail);
    EXPECT_FALSE(replay.checksum_mismatch);
    EXPECT_FALSE(replay.id_mismatch);
    ASSERT_EQ(replay.cells.size(), 2u);
    ASSERT_NE(find_cell(replay, {0, 0, 0}), nullptr);
    const std::vector<double>& p = find_cell(replay, {0, 0, 0})->payload;
    ASSERT_EQ(p.size(), 4u);
    EXPECT_TRUE(std::signbit(p[0]));
    EXPECT_EQ(p[1], 5e-324);
    EXPECT_EQ(p[2], 1.7e308);
    EXPECT_EQ(p[3], 0.1);
    ASSERT_NE(find_cell(replay, {1, 2, 3}), nullptr);
    EXPECT_TRUE(find_cell(replay, {1, 2, 3})->payload.empty());
    ASSERT_EQ(replay.quarantined.size(), 1u);
    EXPECT_EQ(replay.quarantined[0].first, (CellKey{7, 8, 9}));
    EXPECT_EQ(replay.quarantined[0].second, 3u);
}

TEST_F(JournalTest, TornTailIsDroppedAndResumable) {
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, {}));
    writer.append_cell(make_record(0, 0, 0, {1.0}));
    writer.append_cell(make_record(0, 1, 0, {2.0}));
    writer.close();
    // A record header that promises more bytes than the file holds — what a
    // power cut mid-fwrite leaves behind.
    append_raw({0x01, 0x00, 0x00, 0x00, 0xff, 0x00, 0x00, 0x00, 0xde, 0xad});

    JournalReplay replay = replay_journal(path_, 0);
    ASSERT_TRUE(replay.present);
    EXPECT_TRUE(replay.torn_tail);
    EXPECT_EQ(replay.cells.size(), 2u);

    // Resuming truncates the torn bytes and appends cleanly after them.
    JournalWriter resumed;
    ASSERT_TRUE(resumed.open_resume(path_, {}, replay.valid_bytes));
    resumed.append_cell(make_record(0, 2, 0, {3.0}));
    resumed.close();

    replay = replay_journal(path_, 0);
    EXPECT_FALSE(replay.torn_tail);
    ASSERT_EQ(replay.cells.size(), 3u);
    ASSERT_NE(find_cell(replay, {0, 2, 0}), nullptr);
    EXPECT_EQ(find_cell(replay, {0, 2, 0})->payload, std::vector<double>{3.0});
}

TEST_F(JournalTest, CorruptChecksumStopsReplayAtLastGoodRecord) {
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, {}));
    writer.append_cell(make_record(0, 0, 0, {1.0}));
    writer.append_cell(make_record(0, 1, 0, {2.0}));
    writer.close();
    corrupt_byte_from_end(4);  // inside the last record's payload

    const JournalReplay replay = replay_journal(path_, 0);
    ASSERT_TRUE(replay.present);
    EXPECT_TRUE(replay.checksum_mismatch);
    ASSERT_EQ(replay.cells.size(), 1u);
    EXPECT_EQ(replay.cells[0].key, (CellKey{0, 0, 0}));
    // valid_bytes excludes the poisoned record, so resume rewrites it.
    JournalWriter resumed;
    ASSERT_TRUE(resumed.open_resume(path_, {}, replay.valid_bytes));
    resumed.append_cell(make_record(0, 1, 0, {2.0}));
    resumed.close();
    const JournalReplay healed = replay_journal(path_, 0);
    EXPECT_FALSE(healed.checksum_mismatch);
    EXPECT_EQ(healed.cells.size(), 2u);
}

TEST_F(JournalTest, CampaignIdMismatchRefusesReplay) {
    JournalWriter::Options opts;
    opts.campaign_id = 1;
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, opts));
    writer.append_cell(make_record(0, 0, 0, {1.0}));
    writer.close();

    const JournalReplay replay = replay_journal(path_, 2);
    EXPECT_TRUE(replay.id_mismatch);
    EXPECT_TRUE(replay.cells.empty());
}

TEST_F(JournalTest, MissingOrForeignFileIsNotPresent) {
    EXPECT_FALSE(replay_journal(path_, 0).present);
    append_raw({'n', 'o', 't', ' ', 'a', ' ', 'w', 'a', 'l', '\n'});
    EXPECT_FALSE(replay_journal(path_, 0).present);
}

TEST_F(JournalTest, CheckpointCadenceAndStats) {
    JournalWriter::Options opts;
    opts.checkpoint_every = 2;
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, opts));
    std::uint64_t last_hook = 0;
    writer.set_append_hook([&](std::uint64_t appended) { last_hook = appended; });
    for (std::uint32_t i = 0; i < 5; ++i) {
        writer.append_cell(make_record(0, i, 0, {double(i)}));
    }
    const JournalStats stats = writer.stats();
    writer.close();
    EXPECT_EQ(stats.records_written, 5u);
    EXPECT_GE(stats.fsyncs, 2u);  // every 2nd append
    EXPECT_GT(stats.bytes_written, 0u);
    EXPECT_EQ(last_hook, 5u);
}

TEST_F(JournalTest, DuplicateKeyLastRecordWins) {
    // A crash can land between "record appended" and the campaign's bookkeeping,
    // so a resumed run may re-append a key the journal already holds.  Replay
    // deduplicates with last-record-wins and counts the folded-away duplicate
    // so the resilient driver knows the journal is worth compacting.
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, {}));
    writer.append_cell(make_record(0, 0, 0, {1.0}));
    writer.append_cell(make_record(0, 0, 0, {2.0}));
    writer.close();
    const JournalReplay replay = replay_journal(path_, 0);
    ASSERT_EQ(replay.cells.size(), 1u);
    EXPECT_EQ(replay.superseded_records, 1u);
    EXPECT_EQ(find_cell(replay, {0, 0, 0})->payload, std::vector<double>{2.0});
}

TEST_F(JournalTest, AttemptRecordsReplayForOpenCellsOnly) {
    // Attempt tallies persist the per-cell retry budget across process
    // restarts — but only for cells that never completed nor quarantined; a
    // later cell/quarantine record supersedes them.
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path_, {}));
    writer.append_attempt({0, 0, 0}, 1);
    writer.append_attempt({0, 0, 0}, 2);   // max wins
    writer.append_attempt({0, 1, 0}, 1);
    writer.append_cell(make_record(0, 1, 0, {3.0}));  // completes: tally folded
    writer.append_attempt({0, 2, 0}, 1);
    writer.append_quarantine({0, 2, 0}, 2);  // quarantined: tally folded
    const JournalStats stats = writer.stats();
    writer.close();
    EXPECT_EQ(stats.attempt_records, 4u);

    const JournalReplay replay = replay_journal(path_, 0);
    ASSERT_EQ(replay.attempts.size(), 1u);
    EXPECT_EQ(replay.attempts[0].first, (CellKey{0, 0, 0}));
    EXPECT_EQ(replay.attempts[0].second, 2u);
    ASSERT_EQ(replay.cells.size(), 1u);
    ASSERT_EQ(replay.quarantined.size(), 1u);
    EXPECT_GE(replay.superseded_records, 3u);  // dup attempt + 2 folded tallies
}

}  // namespace
}  // namespace rfabm::exec
