// Calibration cache: single-flight memoization, key hashing, statistics.
#include "exec/calibration_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rfabm::exec {
namespace {

circuit::ProcessCorner shifted_corner() {
    circuit::ProcessCorner corner;  // nominal
    corner.nmos_kp_factor = 1.05;
    return corner;
}

TEST(CalibrationCache, ComputesOnceThenHits) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    const circuit::ProcessCorner corner{};
    std::atomic<int> computes{0};
    auto compute = [&] {
        computes.fetch_add(1);
        return DieCalibration{corner, 0.25, 1.75};
    };
    const DieCalibration first = cache.get_or_compute(config, corner, compute);
    const DieCalibration again = cache.get_or_compute(config, corner, compute);
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(first.tune_p, again.tune_p);
    EXPECT_EQ(first.tune_f, again.tune_f);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CalibrationCache, DistinctCornersGetDistinctEntries) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    int computes = 0;
    auto make_compute = [&](double tune_p) {
        return [&computes, tune_p] {
            ++computes;
            return DieCalibration{{}, tune_p, 2.0};
        };
    };
    const DieCalibration nominal =
        cache.get_or_compute(config, circuit::ProcessCorner{}, make_compute(0.1));
    const DieCalibration shifted =
        cache.get_or_compute(config, shifted_corner(), make_compute(0.2));
    EXPECT_EQ(computes, 2);
    EXPECT_NE(nominal.tune_p, shifted.tune_p);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(CalibrationCache, DistinctConfigsGetDistinctEntries) {
    CalibrationCache cache;
    core::RfAbmChipConfig basic{};
    core::RfAbmChipConfig preamp{};
    preamp.with_preamp = true;
    int computes = 0;
    auto compute = [&] {
        ++computes;
        return DieCalibration{};
    };
    cache.get_or_compute(basic, {}, compute);
    cache.get_or_compute(preamp, {}, compute);
    EXPECT_EQ(computes, 2);
    EXPECT_NE(hash_chip_config(basic), hash_chip_config(preamp));
}

TEST(CalibrationCache, ConcurrentCallersSingleFlight) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    std::atomic<int> computes{0};
    auto compute = [&] {
        computes.fetch_add(1);
        // Widen the race window: everyone should pile onto this one compute.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return DieCalibration{{}, 0.5, 1.5};
    };
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            const DieCalibration cal = cache.get_or_compute(config, {}, compute);
            if (cal.tune_p != 0.5 || cal.tune_f != 1.5) mismatches.fetch_add(1);
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 7u);
}

TEST(CalibrationCache, FailedComputeIsNotCached) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    int calls = 0;
    EXPECT_THROW(cache.get_or_compute(config, {},
                                      [&]() -> DieCalibration {
                                          ++calls;
                                          throw std::runtime_error("no convergence");
                                      }),
                 std::runtime_error);
    // A later call retries instead of replaying the stored error.
    const DieCalibration cal = cache.get_or_compute(config, {}, [&] {
        ++calls;
        return DieCalibration{{}, 0.3, 1.9};
    });
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(cal.tune_p, 0.3);
}

TEST(CalibrationCache, MetricsForwarding) {
    CalibrationCache cache;
    CampaignMetrics metrics;
    cache.attach_metrics(&metrics);
    const core::RfAbmChipConfig config{};
    auto compute = [] { return DieCalibration{}; };
    cache.get_or_compute(config, {}, compute);
    cache.get_or_compute(config, {}, compute);
    const auto s = metrics.snapshot();
    EXPECT_EQ(s.cache_misses, 1u);
    EXPECT_EQ(s.cache_hits, 1u);
}

TEST(FieldHasherProperties, NegativeZeroNormalizesAndFieldsMatter) {
    FieldHasher a;
    a.mix(0.0);
    FieldHasher b;
    b.mix(-0.0);
    EXPECT_EQ(a.value(), b.value());

    FieldHasher c;
    c.mix(1.0);
    c.mix(2.0);
    FieldHasher d;
    d.mix(2.0);
    d.mix(1.0);
    EXPECT_NE(c.value(), d.value());  // order-sensitive, as a field list is
}

TEST(CalibrationCache, WaitersReElectAfterLeaderFailure) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    std::atomic<bool> leader_in_flight{false};
    std::atomic<int> waiter_computes{0};
    std::atomic<int> waiter_failures{0};

    // The leader holds the in-flight slot, then dies (e.g. its watchdog
    // deadline fired mid-calibration).
    std::thread leader([&] {
        EXPECT_THROW(cache.get_or_compute(config, {},
                                          [&]() -> DieCalibration {
                                              leader_in_flight.store(true);
                                              std::this_thread::sleep_for(
                                                  std::chrono::milliseconds(50));
                                              throw std::runtime_error("leader cancelled");
                                          }),
                     std::runtime_error);
    });
    while (!leader_in_flight.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Waiters pile onto the doomed leader; on its failure they re-elect and
    // one of THEIR computes runs — nobody is poisoned by the dead leader.
    std::vector<std::thread> waiters;
    for (int t = 0; t < 4; ++t) {
        waiters.emplace_back([&] {
            try {
                const DieCalibration cal = cache.get_or_compute(config, {}, [&] {
                    waiter_computes.fetch_add(1);
                    return DieCalibration{{}, 0.6, 1.4};
                });
                if (cal.tune_p != 0.6) waiter_failures.fetch_add(1);
            } catch (const std::exception&) {
                waiter_failures.fetch_add(1);
            }
        });
    }
    leader.join();
    for (auto& t : waiters) t.join();
    EXPECT_EQ(waiter_failures.load(), 0) << "leader failure must not poison waiters";
    EXPECT_GE(waiter_computes.load(), 1);
    EXPECT_LE(waiter_computes.load(), 4) << "at most one compute per caller";
}

TEST(CalibrationCache, CancelledWaiterStopsReElecting) {
    CalibrationCache cache;
    const core::RfAbmChipConfig config{};
    CancellationSource source;
    source.cancel();  // the waiter's own attempt is already dead
    std::atomic<bool> leader_in_flight{false};

    std::thread leader([&] {
        EXPECT_THROW(cache.get_or_compute(config, {},
                                          [&]() -> DieCalibration {
                                              leader_in_flight.store(true);
                                              std::this_thread::sleep_for(
                                                  std::chrono::milliseconds(50));
                                              throw std::runtime_error("leader cancelled");
                                          }),
                     std::runtime_error);
    });
    while (!leader_in_flight.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // With its token fired, the waiter must NOT take over the computation; it
    // propagates the failure instead.
    int own_computes = 0;
    EXPECT_THROW(cache.get_or_compute(config, {},
                                      [&] {
                                          ++own_computes;
                                          return DieCalibration{};
                                      },
                                      source.token()),
                 std::runtime_error);
    EXPECT_EQ(own_computes, 0);
    leader.join();
}

}  // namespace
}  // namespace rfabm::exec
