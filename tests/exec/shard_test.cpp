// Sharded campaigns: die partitioning, deterministic journal merge, and
// journal compaction (docs/sharding.md).
#include "exec/shard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/journal.hpp"

namespace rfabm::exec {
namespace {

class ShardTest : public ::testing::Test {
  protected:
    void SetUp() override {
        stem_ = ::testing::TempDir() + "rfabm_shard_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
        for (const std::string& p : all_paths()) std::remove(p.c_str());
    }
    void TearDown() override {
        for (const std::string& p : all_paths()) std::remove(p.c_str());
    }

    std::vector<std::string> all_paths() const {
        std::vector<std::string> paths = {stem_ + ".wal", stem_ + ".b.wal"};
        for (std::uint32_t i = 0; i < 4; ++i) {
            paths.push_back(shard_journal_path(stem_ + ".wal", i));
            paths.push_back(shard_journal_path(stem_ + ".b.wal", i));
        }
        return paths;
    }

    static std::string slurp(const std::string& path) {
        std::string bytes;
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (f == nullptr) return bytes;
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
        std::fclose(f);
        return bytes;
    }

    static CellRecord cell(std::uint32_t die, std::uint32_t env, double v) {
        CellRecord r;
        r.key = {die, env, 0};
        r.outcome = 0;
        r.payload = {v};
        return r;
    }

    std::string stem_;
};

TEST_F(ShardTest, PartitionCoversEveryDieExactlyOnce) {
    for (std::uint32_t count = 1; count <= 5; ++count) {
        for (std::uint32_t die = 0; die < 20; ++die) {
            const std::uint32_t owner = shard_of_die(die, count);
            ASSERT_LT(owner, count);
            std::uint32_t members = 0;
            for (std::uint32_t s = 0; s < count; ++s) {
                if (in_shard({die, 0, 0}, {s, count})) ++members;
            }
            EXPECT_EQ(members, 1u) << "die " << die << " count " << count;
            EXPECT_TRUE(in_shard({die, 0, 0}, {owner, count}));
        }
    }
    // Degenerate count never divides by zero.
    EXPECT_EQ(shard_of_die(7, 0), 0u);
}

TEST_F(ShardTest, ShardJournalPathConvention) {
    EXPECT_EQ(shard_journal_path("camp.wal", 0), "camp.wal.shard0.wal");
    EXPECT_EQ(shard_journal_path("camp.wal", 12), "camp.wal.shard12.wal");
    EXPECT_TRUE(ShardSpec({0, 1}).valid());
    EXPECT_TRUE(ShardSpec({2, 3}).valid());
    EXPECT_FALSE(ShardSpec({3, 3}).valid());
    EXPECT_FALSE(ShardSpec({0, 0}).valid());
}

TEST_F(ShardTest, MergeBytesIndependentOfShardingAndInputOrder) {
    // The same 6-cell campaign journaled three ways: 3 shards, 2 shards, and
    // one journal with records in scrambled append order.  All merges must
    // produce byte-identical campaign journals.
    const std::uint64_t id = 42;
    auto write_shard = [&](const std::string& path, const std::vector<CellRecord>& records) {
        JournalWriter w;
        JournalWriter::Options opts;
        opts.campaign_id = id;
        ASSERT_TRUE(w.open_fresh(path, opts));
        for (const CellRecord& r : records) w.append_cell(r);
        w.close();
    };
    // die d, env e payload = d*10 + e.
    std::vector<CellRecord> all;
    for (std::uint32_t d = 0; d < 3; ++d) {
        for (std::uint32_t e = 0; e < 2; ++e) all.push_back(cell(d, e, d * 10.0 + e));
    }

    const std::string a0 = shard_journal_path(stem_ + ".wal", 0);
    const std::string a1 = shard_journal_path(stem_ + ".wal", 1);
    const std::string a2 = shard_journal_path(stem_ + ".wal", 2);
    write_shard(a0, {all[0], all[1]});               // die 0
    write_shard(a1, {all[2], all[3]});               // die 1
    write_shard(a2, {all[5], all[4]});               // die 2, scrambled
    const std::string b0 = shard_journal_path(stem_ + ".b.wal", 0);
    const std::string b1 = shard_journal_path(stem_ + ".b.wal", 1);
    write_shard(b0, {all[4], all[0], all[5], all[1]});  // dies 0,2
    write_shard(b1, {all[3], all[2]});                  // die 1

    const std::string out_a = stem_ + ".wal";
    const std::string out_b = stem_ + ".b.wal";
    MergeStats sa = merge_shard_journals({a0, a1, a2}, out_a, id);
    MergeStats sb = merge_shard_journals({b1, b0}, out_b, id);
    ASSERT_TRUE(sa.ok);
    ASSERT_TRUE(sb.ok);
    EXPECT_EQ(sa.journals_read, 3u);
    EXPECT_EQ(sb.journals_read, 2u);
    EXPECT_EQ(sa.cells, 6u);
    EXPECT_EQ(sb.cells, 6u);
    const std::string bytes_a = slurp(out_a);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, slurp(out_b));

    // Re-merging the merged journal onto itself changes nothing (idempotent).
    ASSERT_TRUE(merge_shard_journals({out_a}, out_a, id).ok);
    EXPECT_EQ(bytes_a, slurp(out_a));
}

TEST_F(ShardTest, MergeFoldsSupersededRecordsAndCarriesOpenAttempts) {
    const std::uint64_t id = 7;
    JournalWriter::Options opts;
    opts.campaign_id = id;
    const std::string s0 = shard_journal_path(stem_ + ".wal", 0);
    {
        JournalWriter w;
        ASSERT_TRUE(w.open_fresh(s0, opts));
        w.append_attempt({0, 0, 0}, 1);
        w.append_cell(cell(0, 0, 1.0));  // completes: its tally is dead weight
        w.append_cell(cell(0, 0, 2.0));  // re-journaled after a crash: last wins
        w.append_attempt({0, 1, 0}, 2);  // still open: must be carried
        w.append_quarantine({0, 2, 0}, 3);
        w.close();
    }
    const std::string out = stem_ + ".wal";
    MergeStats stats = merge_shard_journals({s0}, out, id);
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.cells, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.attempts_carried, 1u);
    EXPECT_GE(stats.superseded_dropped, 2u);  // dup cell + folded tally

    const JournalReplay replay = replay_journal(out, id);
    ASSERT_TRUE(replay.present);
    EXPECT_EQ(replay.superseded_records, 0u);  // merged output is canonical
    ASSERT_EQ(replay.cells.size(), 1u);
    EXPECT_EQ(replay.cells[0].payload, std::vector<double>{2.0});
    ASSERT_EQ(replay.attempts.size(), 1u);
    EXPECT_EQ(replay.attempts[0].first, (CellKey{0, 1, 0}));
    EXPECT_EQ(replay.attempts[0].second, 2u);
    ASSERT_EQ(replay.quarantined.size(), 1u);
    EXPECT_EQ(replay.quarantined[0].second, 3u);
}

TEST_F(ShardTest, MergeSkipsMissingAndForeignInputs) {
    const std::uint64_t id = 9;
    JournalWriter::Options opts;
    opts.campaign_id = id;
    const std::string s0 = shard_journal_path(stem_ + ".wal", 0);
    const std::string s1 = shard_journal_path(stem_ + ".wal", 1);  // never created
    const std::string s2 = shard_journal_path(stem_ + ".wal", 2);  // foreign id
    {
        JournalWriter w;
        ASSERT_TRUE(w.open_fresh(s0, opts));
        w.append_cell(cell(0, 0, 1.0));
        w.close();
    }
    {
        JournalWriter w;
        JournalWriter::Options foreign;
        foreign.campaign_id = id + 1;
        ASSERT_TRUE(w.open_fresh(s2, foreign));
        w.append_cell(cell(2, 0, 99.0));
        w.close();
    }
    MergeStats stats = merge_shard_journals({s0, s1, s2}, stem_ + ".wal", id);
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.journals_read, 1u);
    EXPECT_EQ(stats.cells, 1u);
    const JournalReplay replay = replay_journal(stem_ + ".wal", id);
    ASSERT_EQ(replay.cells.size(), 1u);
    EXPECT_EQ(replay.cells[0].key, (CellKey{0, 0, 0}));
}

TEST_F(ShardTest, CompactionFoldsAttemptHistoryButPreservesContent) {
    const std::uint64_t id = 11;
    JournalWriter::Options opts;
    opts.campaign_id = id;
    const std::string path = stem_ + ".wal";
    {
        JournalWriter w;
        ASSERT_TRUE(w.open_fresh(path, opts));
        // A campaign that crash-looped: many attempt records per cell.
        for (std::uint32_t a = 1; a <= 5; ++a) w.append_attempt({0, 0, 0}, a);
        w.append_cell(cell(0, 0, 1.5));
        for (std::uint32_t a = 1; a <= 4; ++a) w.append_attempt({0, 1, 0}, a);
        w.close();
    }
    MergeStats stats;
    ASSERT_TRUE(compact_journal(path, id, &stats));
    EXPECT_GE(stats.superseded_dropped, 8u);  // 5 folded + 3 dup attempt tallies
    const JournalReplay replay = replay_journal(path, id);
    ASSERT_TRUE(replay.present);
    EXPECT_EQ(replay.superseded_records, 0u);
    ASSERT_EQ(replay.cells.size(), 1u);
    EXPECT_EQ(replay.cells[0].payload, std::vector<double>{1.5});
    ASSERT_EQ(replay.attempts.size(), 1u);
    EXPECT_EQ(replay.attempts[0].second, 4u);  // max attempt survives

    // Compacting a compacted journal is a byte-level no-op.
    const std::string first = slurp(path);
    ASSERT_TRUE(compact_journal(path, id));
    EXPECT_EQ(first, slurp(path));

    // Missing or foreign journals are refused, file untouched.
    EXPECT_FALSE(compact_journal(stem_ + ".b.wal", id));
    EXPECT_FALSE(compact_journal(path, id + 1));
    EXPECT_EQ(first, slurp(path));
}

TEST_F(ShardTest, CompactedJournalResumesByteIdentically) {
    // Satellite contract: resuming from a compacted journal must finish the
    // campaign with exactly the same final bytes as resuming from the
    // attempt-littered original.
    const std::uint64_t id = 13;
    JournalWriter::Options opts;
    opts.campaign_id = id;
    const std::string littered = stem_ + ".wal";
    const std::string compacted = stem_ + ".b.wal";
    auto write_history = [&](const std::string& path) {
        JournalWriter w;
        ASSERT_TRUE(w.open_fresh(path, opts));
        w.append_attempt({0, 0, 0}, 1);
        w.append_cell(cell(0, 0, 1.0));
        w.append_cell(cell(0, 0, 1.0));  // crash re-append
        w.append_attempt({1, 0, 0}, 1);  // cell {1,0,0} still open
        w.close();
    };
    write_history(littered);
    write_history(compacted);
    ASSERT_TRUE(compact_journal(compacted, id));
    ASSERT_NE(slurp(littered), slurp(compacted));  // histories really differ

    // "Resume" both: replay, re-run the one open cell, then canonicalize —
    // exactly what the resilient driver and the coordinator merge do.
    for (const std::string& path : {littered, compacted}) {
        const JournalReplay replay = replay_journal(path, id);
        ASSERT_TRUE(replay.present);
        ASSERT_EQ(replay.cells.size(), 1u);
        JournalWriter w;
        ASSERT_TRUE(w.open_resume(path, opts, replay.valid_bytes));
        w.append_cell(cell(1, 0, 2.0));
        w.close();
        ASSERT_TRUE(compact_journal(path, id));
    }
    const std::string final_bytes = slurp(littered);
    ASSERT_FALSE(final_bytes.empty());
    EXPECT_EQ(final_bytes, slurp(compacted));
}

}  // namespace
}  // namespace rfabm::exec
