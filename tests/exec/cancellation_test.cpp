// Cancellation tokens, deadlines, and clean campaign drains.
#include "exec/cancellation.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/measurement.hpp"
#include "exec/campaign.hpp"
#include "rf/curve.hpp"

namespace rfabm::exec {
namespace {

TEST(CancellationToken, DefaultTokenNeverFires) {
    CancellationToken token;
    EXPECT_FALSE(token.valid());
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.deadline_expired());
    EXPECT_FALSE(token.stop_requested());
    EXPECT_STREQ(token.stop_reason(), "");
}

TEST(CancellationToken, CancelPropagatesToEveryTokenCopy) {
    CancellationSource source;
    const CancellationToken a = source.token();
    const CancellationToken b = a;  // copies share state
    EXPECT_FALSE(a.stop_requested());
    source.cancel();
    EXPECT_TRUE(a.cancelled());
    EXPECT_TRUE(b.cancelled());
    EXPECT_STREQ(a.stop_reason(), "cancelled");
}

TEST(CancellationToken, DeadlineFiresAndClears) {
    CancellationSource source;
    const CancellationToken token = source.token();
    source.set_deadline_after(std::chrono::milliseconds(5));
    EXPECT_FALSE(token.cancelled());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(token.deadline_expired());
    EXPECT_TRUE(token.stop_requested());
    EXPECT_STREQ(token.stop_reason(), "deadline exceeded");
    source.clear_deadline();
    EXPECT_FALSE(token.stop_requested());
}

TEST(Campaign, CancelMidRunDrainsWithoutLeakingTasks) {
    // 6 dies x 3 measurements on a 2-worker pool; the first measurement
    // cancels.  Whatever was in flight finishes, the rest is skipped, and
    // every node is accounted for (ran + skipped + failed == total).
    ThreadPool::Options popts;
    popts.workers = 2;
    ThreadPool pool(popts);
    CancellationSource source;
    CampaignMetrics metrics;

    std::atomic<int> ran{0};
    std::vector<DieChain> dies(6);
    for (auto& die : dies) {
        die.calibrate = [&](TaskContext&) { ran.fetch_add(1); };
        for (int m = 0; m < 3; ++m) {
            die.measurements.push_back({[&](TaskContext&) {
                ran.fetch_add(1);
                source.cancel();
            }});
        }
    }
    const TaskGraphResult r = run_campaign(pool, dies, source.token(), &metrics);
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.accounted(), 6u * 4u);
    EXPECT_EQ(r.ran, static_cast<std::size_t>(ran.load()));
    EXPECT_GT(r.skipped, 0u);
    const auto s = metrics.snapshot();
    EXPECT_EQ(s.tasks_run + s.tasks_skipped, 6u * 4u);
}

TEST(Campaign, SerialPathHonoursPreCancelledToken) {
    CancellationSource source;
    source.cancel();
    std::atomic<int> ran{0};
    std::vector<DieChain> dies(3);
    for (auto& die : dies) {
        die.measurements.push_back({[&](TaskContext&) { ran.fetch_add(1); }});
    }
    CampaignOptions opts;
    opts.jobs = 1;
    opts.token = source.token();
    const TaskGraphResult r = run_campaign(dies, opts);
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.ran, 0u);
    EXPECT_EQ(r.skipped, 3u);
    EXPECT_EQ(ran.load(), 0);
}

TEST(CheckedMeasurement, PreCancelledTokenShortCircuitsWithoutRetries) {
    // The hardened pipeline polls the token before every attempt: with a
    // cancelled token it must bail out immediately — no session churn, no
    // retry budget burned — and report kFailed / kCancelled.
    core::RfAbmChip chip{core::RfAbmChipConfig{}};
    CancellationSource source;
    source.cancel();
    core::MeasureOptions mopts;
    mopts.cancel = source.token();
    core::MeasurementController controller(chip, mopts);

    const rfabm::rf::MonotoneCurve curve({{-20.0, 0.01}, {0.0, 0.1}, {7.0, 0.3}});
    const auto t0 = std::chrono::steady_clock::now();
    const core::PowerMeasurement power = controller.measure_power_checked(curve);
    const core::FrequencyMeasurement freq = controller.measure_frequency_checked(curve);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    EXPECT_EQ(power.diag.status, core::MeasurementStatus::kFailed);
    EXPECT_EQ(power.diag.suspect, core::SuspectedFault::kCancelled);
    EXPECT_EQ(power.diag.retries, 0);
    EXPECT_EQ(freq.diag.status, core::MeasurementStatus::kFailed);
    EXPECT_EQ(freq.diag.suspect, core::SuspectedFault::kCancelled);
    // Bailing out must not cost a transient solve (which takes seconds).
    EXPECT_LT(elapsed, 1.0);
    EXPECT_EQ(core::to_string(core::SuspectedFault::kCancelled), std::string("cancelled"));
}

}  // namespace
}  // namespace rfabm::exec
