// Watchdog supervisor: stalled attempts are fired, heartbeats keep them alive.
#include "exec/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace rfabm::exec {
namespace {

using namespace std::chrono_literals;

Watchdog::Options fast_poll() {
    Watchdog::Options opts;
    opts.poll_interval = 2ms;
    return opts;
}

/// Wait (bounded) until @p done returns true.
template <class Pred>
bool eventually(Pred done, std::chrono::milliseconds limit = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        if (done()) return true;
        std::this_thread::sleep_for(1ms);
    }
    return done();
}

TEST(WatchdogTest, FiresStalledAttempt) {
    Watchdog dog{fast_poll()};
    CancellationSource source;
    const auto ticket = dog.arm(source, 20ms);
    EXPECT_TRUE(eventually([&] { return source.token().deadline_expired(); }));
    EXPECT_GE(dog.fires(), 1u);
    dog.disarm(ticket);
}

TEST(WatchdogTest, HeartbeatProgressRestartsTheWindow) {
    Watchdog dog{fast_poll()};
    CancellationSource source;
    std::atomic<std::uint64_t> beat{0};
    const auto ticket = dog.arm(source, 150ms, &beat);
    // Beat for several windows' worth of wall clock: a *stall* timeout must
    // not fire while the solver demonstrably makes progress.  Timeout >>
    // beat period keeps this robust under sanitizer slowdowns.
    const auto until = std::chrono::steady_clock::now() + 500ms;
    while (std::chrono::steady_clock::now() < until) {
        beat.fetch_add(1);
        std::this_thread::sleep_for(5ms);
        ASSERT_FALSE(source.token().deadline_expired()) << "fired despite heartbeat";
    }
    // Stop beating: now it is a stall, and the dog must reclaim it.
    EXPECT_TRUE(eventually([&] { return source.token().deadline_expired(); }));
    EXPECT_EQ(dog.fires(), 1u);
    dog.disarm(ticket);
}

TEST(WatchdogTest, DisarmedAttemptIsLeftAlone) {
    Watchdog dog{fast_poll()};
    CancellationSource source;
    const auto ticket = dog.arm(source, 20ms);
    dog.disarm(ticket);
    std::this_thread::sleep_for(60ms);
    EXPECT_FALSE(source.token().deadline_expired());
    EXPECT_EQ(dog.fires(), 0u);
}

TEST(WatchdogTest, GuardDisarmsOnScopeExit) {
    Watchdog dog{fast_poll()};
    CancellationSource source;
    {
        Watchdog::Guard guard(&dog, source, std::chrono::milliseconds(20));
    }
    std::this_thread::sleep_for(60ms);
    EXPECT_FALSE(source.token().deadline_expired());
}

TEST(WatchdogTest, NullDogOrZeroTimeoutGuardIsNoop) {
    CancellationSource source;
    Watchdog::Guard no_dog(nullptr, source, std::chrono::milliseconds(1));
    Watchdog dog{fast_poll()};
    Watchdog::Guard no_timeout(&dog, source, std::chrono::milliseconds(0));
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(source.token().deadline_expired());
    EXPECT_EQ(dog.fires(), 0u);
}

TEST(WatchdogTest, SupervisesManyAttemptsIndependently) {
    Watchdog dog{fast_poll()};
    CancellationSource hung1, hung2, healthy;
    std::atomic<std::uint64_t> beat{0};
    const auto t1 = dog.arm(hung1, 20ms);
    const auto t2 = dog.arm(hung2, 20ms);
    const auto t3 = dog.arm(healthy, 150ms, &beat);
    const auto until = std::chrono::steady_clock::now() + 200ms;
    while (std::chrono::steady_clock::now() < until) {
        beat.fetch_add(1);
        std::this_thread::sleep_for(5ms);
    }
    EXPECT_TRUE(hung1.token().deadline_expired());
    EXPECT_TRUE(hung2.token().deadline_expired());
    EXPECT_FALSE(healthy.token().deadline_expired());
    EXPECT_EQ(dog.fires(), 2u);
    dog.disarm(t1);
    dog.disarm(t2);
    dog.disarm(t3);
}

TEST(WatchdogTest, AutoTuneDerivesStallTimeoutFromHeartbeatCadence) {
    Watchdog::Options opts = fast_poll();
    opts.auto_tune = true;
    opts.safety_factor = 6.0;
    opts.min_timeout = 10ms;
    Watchdog dog{opts};
    ASSERT_TRUE(dog.auto_enabled());

    CancellationSource source;
    std::atomic<std::uint64_t> beat{0};
    // timeout <= 0 with auto_tune on means "derive it from the cadence".
    const auto ticket = dog.arm(source, 0ms, &beat);
    const auto until = std::chrono::steady_clock::now() + 300ms;
    while (std::chrono::steady_clock::now() < until) {
        beat.fetch_add(1);
        std::this_thread::sleep_for(5ms);
        ASSERT_FALSE(source.token().deadline_expired()) << "fired despite heartbeat";
    }
    // The observed cadence is ~5ms/beat, so the derived stall timeout must
    // sit well inside [min_timeout, 6x a generous cadence bound].
    const auto derived = dog.auto_timeout();
    EXPECT_GE(derived, opts.min_timeout);
    EXPECT_LE(derived, 2000ms);
    // Silence is now a stall: the auto-tuned deadline must reclaim it.
    EXPECT_TRUE(eventually([&] { return source.token().deadline_expired(); }));
    EXPECT_GE(dog.fires(), 1u);
    dog.disarm(ticket);
}

TEST(WatchdogTest, AutoTuneFlooredAtMinTimeout) {
    Watchdog::Options opts = fast_poll();
    opts.auto_tune = true;
    opts.safety_factor = 1.0;
    opts.min_timeout = 150ms;
    Watchdog dog{opts};

    CancellationSource source;
    std::atomic<std::uint64_t> beat{0};
    const auto ticket = dog.arm(source, 0ms, &beat);
    // Beat as fast as the sweep can observe: the raw EWMA x factor would be
    // a hair-trigger, but the floor must keep the timeout sane.
    const auto until = std::chrono::steady_clock::now() + 100ms;
    while (std::chrono::steady_clock::now() < until) {
        beat.fetch_add(1);
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_GE(dog.auto_timeout(), opts.min_timeout);
    EXPECT_FALSE(source.token().deadline_expired());
    dog.disarm(ticket);
}

TEST(WatchdogTest, GuardArmsAutoTunedEntryWithZeroTimeout) {
    Watchdog::Options opts = fast_poll();
    opts.auto_tune = true;
    opts.min_timeout = 20ms;
    Watchdog dog{opts};
    CancellationSource source;
    {
        // With a fixed-timeout dog this would be a no-op (see
        // NullDogOrZeroTimeoutGuardIsNoop); with auto_tune the guard arms.
        Watchdog::Guard guard(&dog, source, 0ms);
        EXPECT_TRUE(eventually([&] { return source.token().deadline_expired(); }));
    }
    EXPECT_GE(dog.fires(), 1u);
}

}  // namespace
}  // namespace rfabm::exec
