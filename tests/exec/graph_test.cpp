// Task-graph scheduler: ordering, failure propagation, cycles, accounting.
#include "exec/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace rfabm::exec {
namespace {

ThreadPool::Options four_workers() {
    ThreadPool::Options opts;
    opts.workers = 4;
    return opts;
}

TEST(TaskGraph, RunsIndependentNodes) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i) {
        graph.add([&](TaskContext&) { count.fetch_add(1); });
    }
    const TaskGraphResult r = graph.run(pool);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.ran, 16u);
    EXPECT_EQ(r.accounted(), graph.size());
    EXPECT_EQ(count.load(), 16);
}

TEST(TaskGraph, DiamondDependenciesRespectOrder) {
    //   a -> {b, c} -> d : b and c see a's effect, d sees both.
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::mutex m;
    std::vector<char> order;
    auto mark = [&](char c) {
        const std::lock_guard<std::mutex> lock(m);
        order.push_back(c);
    };
    const std::size_t a = graph.add([&](TaskContext&) { mark('a'); });
    const std::size_t b = graph.add([&](TaskContext&) { mark('b'); });
    const std::size_t c = graph.add([&](TaskContext&) { mark('c'); });
    const std::size_t d = graph.add([&](TaskContext&) { mark('d'); });
    graph.depends_on(b, a);
    graph.depends_on(c, a);
    graph.depends_on(d, b);
    graph.depends_on(d, c);

    const TaskGraphResult r = graph.run(pool);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 'a');
    EXPECT_EQ(order.back(), 'd');
}

TEST(TaskGraph, FailureSkipsDependentsAndRethrows) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<bool> downstream_ran{false};
    const std::size_t bad =
        graph.add([](TaskContext&) { throw std::runtime_error("boom"); }, "bad");
    const std::size_t child = graph.add([&](TaskContext&) { downstream_ran.store(true); });
    graph.depends_on(child, bad);

    const TaskGraphResult r = graph.run(pool);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.failed, 1u);
    EXPECT_EQ(r.skipped, 1u);
    EXPECT_EQ(r.accounted(), graph.size());
    EXPECT_FALSE(downstream_ran.load());
    ASSERT_TRUE(r.first_error != nullptr);
    EXPECT_THROW(std::rethrow_exception(r.first_error), std::runtime_error);
}

TEST(TaskGraph, CancellationSkipsPendingNodesAndDrains) {
    ThreadPool::Options opts;
    opts.workers = 1;
    ThreadPool pool(opts);
    CancellationSource source;
    TaskGraph graph;
    std::atomic<int> ran{0};
    // The root cancels the campaign; its 8 dependents are released only
    // afterwards (a dependency edge, so the ordering is deterministic — the
    // pool's LIFO own-queue pop makes "submitted first" mean nothing) and
    // must all be skipped, with every node still accounted for.
    const std::size_t root = graph.add([&](TaskContext&) {
        ran.fetch_add(1);
        source.cancel();
    });
    for (int i = 0; i < 8; ++i) {
        const std::size_t child = graph.add([&](TaskContext&) { ran.fetch_add(1); });
        graph.depends_on(child, root);
    }
    const TaskGraphResult r = graph.run(pool, source.token());
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.accounted(), graph.size());
    EXPECT_EQ(r.ran, 1u);
    EXPECT_EQ(r.skipped, 8u);
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraph, DependencyCycleIsAccountedAsSkippedNotAHang) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<int> ran{0};
    const std::size_t a = graph.add([&](TaskContext&) { ran.fetch_add(1); });
    const std::size_t b = graph.add([&](TaskContext&) { ran.fetch_add(1); });
    const std::size_t free_node = graph.add([&](TaskContext&) { ran.fetch_add(1); });
    graph.depends_on(a, b);
    graph.depends_on(b, a);
    (void)free_node;

    const TaskGraphResult r = graph.run(pool);  // must return, not stall
    EXPECT_EQ(r.ran, 1u);
    EXPECT_EQ(r.skipped, 2u);
    EXPECT_EQ(r.accounted(), graph.size());
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraph, EmptyGraphCompletesImmediately) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    const TaskGraphResult r = graph.run(pool);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.accounted(), 0u);
}

TEST(TaskGraph, DeferrableNodesParkWhilePredicateHoldsThenFlush) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<bool> defer{true};
    std::atomic<int> mandatory_done{0};
    std::vector<std::size_t> deferred_ids;
    // Two mandatory nodes; once both finish, the predicate clears — the
    // parked optional node must then run, not starve.
    const std::size_t m1 = graph.add([&](TaskContext&) {
        if (mandatory_done.fetch_add(1) + 1 == 2) defer.store(false);
    });
    const std::size_t m2 = graph.add([&](TaskContext&) {
        if (mandatory_done.fetch_add(1) + 1 == 2) defer.store(false);
    });
    std::atomic<bool> optional_ran{false};
    const std::size_t opt =
        graph.add([&](TaskContext&) { optional_ran.store(true); }, "optional", true);
    (void)m1;
    (void)m2;
    (void)opt;
    graph.set_defer_predicate([&] { return defer.load(); });

    const TaskGraphResult r = graph.run(pool);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.ran, 3u);
    EXPECT_TRUE(optional_ran.load());
    EXPECT_GE(r.deferred, 1u);  // it really was parked at least once
}

TEST(TaskGraph, AllRootsDeferrableStillMakesProgress) {
    // Livelock guard: when everything ready is deferrable and the predicate
    // never clears, the flush path must run the parked work anyway.
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i) {
        graph.add([&](TaskContext&) { ran.fetch_add(1); }, "opt", true);
    }
    graph.set_defer_predicate([] { return true; });
    const TaskGraphResult r = graph.run(pool);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.ran, 3u);
    EXPECT_EQ(ran.load(), 3);
}

TEST(TaskGraph, DeferrableWithoutPredicateRunsNormally) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<int> ran{0};
    graph.add([&](TaskContext&) { ran.fetch_add(1); }, "opt", true);
    const TaskGraphResult r = graph.run(pool);
    EXPECT_EQ(r.ran, 1u);
    EXPECT_EQ(r.deferred, 0u);
}

TEST(TaskGraph, ReRunResetsState) {
    ThreadPool pool(four_workers());
    TaskGraph graph;
    std::atomic<int> count{0};
    graph.add([&](TaskContext&) { count.fetch_add(1); });
    EXPECT_EQ(graph.run(pool).ran, 1u);
    EXPECT_EQ(graph.run(pool).ran, 1u);
    EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace rfabm::exec
