// Work-stealing thread pool: execution, stealing, backpressure, nesting.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/queue.hpp"

namespace rfabm::exec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool::Options opts;
    opts.workers = 4;
    ThreadPool pool(opts);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); }));
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 200);
    EXPECT_EQ(pool.tasks_executed(), 200u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
    ThreadPool pool;
    EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, OnWorkerThreadIsTrueOnlyInsideTasks) {
    ThreadPool::Options opts;
    opts.workers = 2;
    ThreadPool pool(opts);
    EXPECT_FALSE(pool.on_worker_thread());
    std::atomic<bool> inside{false};
    pool.submit([&] { inside.store(pool.on_worker_thread()); });
    pool.wait_idle();
    EXPECT_TRUE(inside.load());
}

TEST(ThreadPool, WorkersStealWhenOneQueueIsLoaded) {
    // External submissions round-robin across worker deques; a worker whose
    // own deque drains while another's is long must steal.  With tasks that
    // sleep, 4 workers on 64 tasks cannot finish without stealing unless the
    // round-robin happens to balance perfectly — which it does.  Force the
    // imbalance instead: one task fans out many nested submissions, which all
    // land on the submitting worker's own deque; the other workers have
    // nothing and must steal them.
    ThreadPool::Options opts;
    opts.workers = 4;
    ThreadPool pool(opts);
    std::atomic<int> count{0};
    pool.submit([&] {
        for (int i = 0; i < 64; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                count.fetch_add(1);
            });
        }
    });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 64);
    if (std::thread::hardware_concurrency() > 1) {
        EXPECT_GT(pool.steals(), 0u);
    }
}

TEST(ThreadPool, NestedSubmitFromWorkerDoesNotDeadlockOnFullQueue) {
    // queue_capacity bounds *external* submissions; workers are exempt so a
    // task can always schedule follow-up work on a saturated pool.
    ThreadPool::Options opts;
    opts.workers = 2;
    opts.queue_capacity = 2;
    ThreadPool pool(opts);
    std::atomic<int> count{0};
    pool.submit([&] {
        for (int i = 0; i < 32; ++i) pool.submit([&] { count.fetch_add(1); });
    });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ExternalSubmitBlocksAtCapacityThenProceeds) {
    ThreadPool::Options opts;
    opts.workers = 1;
    opts.queue_capacity = 1;
    ThreadPool pool(opts);

    // Park the single worker so the queue backs up.
    std::atomic<bool> release{false};
    pool.submit([&] {
        while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    std::atomic<int> accepted{0};
    std::thread producer([&] {
        for (int i = 0; i < 8; ++i) {
            pool.submit([] {});
            accepted.fetch_add(1);
        }
    });
    // The producer must stall well short of 8 while the worker is parked.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_LT(accepted.load(), 8);
    release.store(true);
    producer.join();
    pool.wait_idle();
    EXPECT_EQ(accepted.load(), 8);
}

TEST(ThreadPool, SubstreamSeedsAreStreamSpecificAndStable) {
    const std::uint64_t a0 = substream_seed(42, 0);
    const std::uint64_t a1 = substream_seed(42, 1);
    const std::uint64_t b0 = substream_seed(43, 0);
    EXPECT_NE(a0, a1);
    EXPECT_NE(a0, b0);
    EXPECT_EQ(a0, substream_seed(42, 0));  // pure function of (seed, id)
}

TEST(BoundedQueue, PushPopRoundTripsInOrder) {
    BoundedQueue<int> q(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
    EXPECT_FALSE(q.try_push(99));  // full
    for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
    BoundedQueue<int> q(4);
    q.push(1);
    q.close();
    EXPECT_FALSE(q.push(2));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CancelledTokenUnblocksProducerAndConsumer) {
    BoundedQueue<int> q(1);
    CancellationSource source;
    q.push(0);  // now full

    std::thread producer([&] { EXPECT_FALSE(q.push(1, source.token())); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.cancel();
    q.interrupt();
    producer.join();

    // Cancel wins over drain: the queued item is not delivered.
    EXPECT_EQ(q.pop(source.token()), std::nullopt);
}

}  // namespace
}  // namespace rfabm::exec
