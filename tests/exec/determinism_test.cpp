// The engine's determinism contract: results are bit-identical for any
// worker count.  Verified on synthetic workloads whose tasks draw from
// per-task RNG substreams — the pattern real campaigns follow.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/campaign.hpp"
#include "exec/montecarlo.hpp"
#include "exec/thread_pool.hpp"
#include "rf/random.hpp"

namespace rfabm::exec {
namespace {

/// A campaign of @p dies x @p measurements where every task derives its value
/// from its own substream seed and writes its own slot.
std::vector<double> run_synthetic(std::size_t jobs, std::size_t num_dies,
                                  std::size_t num_measurements, std::uint64_t seed) {
    std::vector<double> results(num_dies * num_measurements, 0.0);
    std::vector<DieChain> chains(num_dies);
    for (std::size_t d = 0; d < num_dies; ++d) {
        for (std::size_t m = 0; m < num_measurements; ++m) {
            const std::size_t slot = d * num_measurements + m;
            chains[d].measurements.push_back({[&results, slot, seed](TaskContext&) {
                rfabm::rf::Xoshiro256 rng(substream_seed(seed, slot));
                double acc = 0.0;
                for (int i = 0; i < 100; ++i) acc += rng.normal();
                results[slot] = acc;
            }});
        }
    }
    CampaignOptions opts;
    opts.jobs = jobs;
    const TaskGraphResult r = run_campaign(chains, opts);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.ran, results.size());
    return results;
}

TEST(Determinism, SerialAndEightWorkersBitIdentical) {
    const std::vector<double> serial = run_synthetic(1, 6, 4, 20050307);
    const std::vector<double> parallel = run_synthetic(8, 6, 4, 20050307);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Exact equality on purpose: the contract is bit-identical, not close.
        EXPECT_EQ(serial[i], parallel[i]) << "slot " << i;
    }
}

TEST(Determinism, RepeatedParallelRunsBitIdentical) {
    const std::vector<double> a = run_synthetic(8, 6, 4, 7);
    const std::vector<double> b = run_synthetic(8, 6, 4, 7);
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiffer) {
    const std::vector<double> a = run_synthetic(4, 3, 3, 1);
    const std::vector<double> b = run_synthetic(4, 3, 3, 2);
    EXPECT_NE(a, b);
}

TEST(Determinism, ParallelMonteCarloMatchesSerialDriver) {
    // The parallel Monte-Carlo twin pre-samples the same population and must
    // reproduce the serial driver's samples exactly, corner and value both.
    const auto measure = [](const circuit::ProcessCorner& corner) {
        // Cheap stand-in for a circuit solve: any deterministic function of
        // the corner.
        return corner.nmos_vt_shift * 1e3 + corner.nmos_kp_factor + corner.res_factor;
    };
    const auto serial = circuit::run_monte_carlo(24, 99, {}, measure);

    CampaignOptions opts;
    opts.jobs = 8;
    TaskGraphResult result;
    const auto parallel = run_monte_carlo(24, 99, {}, measure, opts, &result);

    EXPECT_TRUE(result.ok());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value);
        EXPECT_EQ(serial[i].corner.nmos_vt_shift, parallel[i].corner.nmos_vt_shift);
        EXPECT_EQ(serial[i].corner.pmos_vt_shift, parallel[i].corner.pmos_vt_shift);
        EXPECT_EQ(serial[i].corner.nmos_kp_factor, parallel[i].corner.nmos_kp_factor);
        EXPECT_EQ(serial[i].corner.res_factor, parallel[i].corner.res_factor);
        EXPECT_EQ(serial[i].corner.cap_factor, parallel[i].corner.cap_factor);
    }
}

TEST(Determinism, PresampledPopulationIsScheduleIndependent) {
    // presample_dies must not depend on anything but (trials, seed, spread):
    // the population for 10 trials is a strict prefix of the one for 20.
    const auto small = circuit::presample_dies(10, 5);
    const auto large = circuit::presample_dies(20, 5);
    ASSERT_EQ(small.size(), 10u);
    ASSERT_EQ(large.size(), 20u);
    for (std::size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(small[i].corner.nmos_vt_shift, large[i].corner.nmos_vt_shift);
        EXPECT_EQ(small[i].corner.cap_factor, large[i].corner.cap_factor);
    }
}

}  // namespace
}  // namespace rfabm::exec
