// Resilient campaign driver: journaled resume, retries, quarantine, shedding,
// watchdog-reclaimed stalls — and byte-identity through all of it.
#include "exec/resilient.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rfabm::exec {
namespace {

using namespace std::chrono_literals;

/// Deterministic, bit-exact synthetic measurement for cell (die, env).
std::vector<double> synth_payload(std::uint32_t die, std::uint32_t env) {
    const double base = std::sin(0.1 * die + 1.0) * std::cos(0.2 * env + 2.0);
    return {base, base * base, 1.0 / (1.0 + die + env)};
}

struct Fixture : ::testing::Test {
    void SetUp() override {
        path = ::testing::TempDir() + "rfabm_resilient_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal";
        std::remove(path.c_str());
    }
    void TearDown() override { std::remove(path.c_str()); }

    /// Build dies x envs chains delivering into `slots`; `computes` counts
    /// actual compute invocations (replays bypass it).
    std::vector<ResilientChain> make_chains(std::uint32_t dies, std::uint32_t envs) {
        slots.assign(dies * envs, {});
        std::vector<ResilientChain> chains(dies);
        for (std::uint32_t d = 0; d < dies; ++d) {
            for (std::uint32_t e = 0; e < envs; ++e) {
                ResilientCell cell;
                cell.key = {d, e, 0};
                cell.compute = [this, d, e](const CellAttempt&) {
                    computes.fetch_add(1);
                    CellComputeResult out;
                    out.payload = synth_payload(d, e);
                    return out;
                };
                const std::size_t slot = d * envs + e;
                cell.deliver = [this, slot](const std::vector<double>& payload, CellOutcome,
                                            bool) { slots[slot] = payload; };
                chains[d].cells.push_back(std::move(cell));
            }
        }
        return chains;
    }

    ResilienceOptions journaled() {
        ResilienceOptions ropts;
        ropts.journal_path = path;
        ropts.campaign_id = 42;
        return ropts;
    }

    std::string path;
    std::vector<std::vector<double>> slots;
    std::atomic<int> computes{0};
    CellOutcome delivered_outcome = CellOutcome::kOk;
};

using ResilientCampaignTest = Fixture;

TEST_F(ResilientCampaignTest, FreshRunDeliversEveryCell) {
    CampaignOptions copts;
    copts.jobs = 1;
    const ResilientResult result =
        run_resilient_campaign(make_chains(3, 2), copts, journaled());
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 6u);
    EXPECT_TRUE(result.triage.clean());
    EXPECT_EQ(computes.load(), 6);
    for (std::uint32_t d = 0; d < 3; ++d) {
        for (std::uint32_t e = 0; e < 2; ++e) {
            EXPECT_EQ(slots[d * 2 + e], synth_payload(d, e));
        }
    }
}

TEST_F(ResilientCampaignTest, ResumeReplaysWithoutRecompute) {
    CampaignOptions copts;
    copts.jobs = 1;
    run_resilient_campaign(make_chains(3, 2), copts, journaled());
    ASSERT_EQ(computes.load(), 6);
    const auto first = slots;

    auto chains = make_chains(3, 2);  // resets slots
    ResilienceOptions ropts = journaled();
    ropts.resume = true;
    const ResilientResult resumed = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(computes.load(), 6) << "resume must not recompute completed cells";
    EXPECT_EQ(resumed.triage.count(CellOutcome::kReplayed), 6u);
    EXPECT_EQ(resumed.triage.journal.records_replayed, 6u);
    EXPECT_EQ(slots, first) << "replayed payloads must be bit-identical";
}

TEST_F(ResilientCampaignTest, PartialJournalRunsOnlyTheMissingCells) {
    CampaignOptions copts;
    copts.jobs = 1;
    {
        // Seed a journal holding only die 0's cells.
        auto chains = make_chains(1, 2);
        run_resilient_campaign(chains, copts, journaled());
    }
    ASSERT_EQ(computes.load(), 2);
    auto chains = make_chains(3, 2);
    ResilienceOptions ropts = journaled();
    ropts.resume = true;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(computes.load(), 2 + 4) << "only the 4 missing cells re-run";
    EXPECT_EQ(result.triage.count(CellOutcome::kReplayed), 2u);
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 4u);
    for (std::uint32_t d = 0; d < 3; ++d) {
        for (std::uint32_t e = 0; e < 2; ++e) {
            EXPECT_EQ(slots[d * 2 + e], synth_payload(d, e));
        }
    }
}

TEST_F(ResilientCampaignTest, ForeignCampaignIdStartsFresh) {
    CampaignOptions copts;
    copts.jobs = 1;
    run_resilient_campaign(make_chains(2, 1), copts, journaled());
    auto chains = make_chains(2, 1);
    ResilienceOptions ropts = journaled();
    ropts.campaign_id = 43;  // different config: the journal must be refused
    ropts.resume = true;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(result.triage.count(CellOutcome::kReplayed), 0u);
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 2u);
    EXPECT_TRUE(result.triage.journal.id_mismatch);
}

TEST_F(ResilientCampaignTest, ByteIdenticalAcrossJobsAndResumeSplits) {
    // Ground truth: serial, no journal.
    CampaignOptions serial;
    serial.jobs = 1;
    ResilienceOptions bare;
    run_resilient_campaign(make_chains(4, 3), serial, bare);
    const auto truth = slots;

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        std::remove(path.c_str());
        // Split: first a run covering a prefix (2 dies), then resume the
        // full grid — a controlled stand-in for an arbitrary crash point.
        CampaignOptions copts;
        copts.jobs = jobs;
        {
            auto prefix = make_chains(2, 3);
            run_resilient_campaign(prefix, copts, journaled());
        }
        auto chains = make_chains(4, 3);
        ResilienceOptions ropts = journaled();
        ropts.resume = true;
        run_resilient_campaign(chains, copts, ropts);
        EXPECT_EQ(slots, truth) << "jobs=" << jobs;
    }
}

TEST_F(ResilientCampaignTest, FlakyCellSucceedsOnRetry) {
    std::vector<ResilientChain> chains(1);
    ResilientCell cell;
    cell.key = {0, 0, 0};
    cell.compute = [this](const CellAttempt& attempt) {
        computes.fetch_add(1);
        if (attempt.attempt == 0) throw std::runtime_error("transient glitch");
        CellComputeResult out;
        out.payload = {7.0};
        return out;
    };
    cell.deliver = [this](const std::vector<double>& payload, CellOutcome outcome, bool) {
        slots.assign(1, payload);
        delivered_outcome = outcome;
    };
    chains[0].cells.push_back(std::move(cell));

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts = journaled();
    ropts.max_cell_attempts = 2;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(computes.load(), 2);
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 1u);
    EXPECT_EQ(result.triage.quarantined_cells.size(), 0u);
    ASSERT_EQ(slots.size(), 1u);
    EXPECT_EQ(slots[0], std::vector<double>{7.0});
}

TEST_F(ResilientCampaignTest, ExhaustedCellIsQuarantinedAndStaysBenchedOnResume) {
    auto build = [this] {
        std::vector<ResilientChain> chains(1);
        ResilientCell bad;
        bad.key = {0, 0, 0};
        bad.compute = [this](const CellAttempt&) -> CellComputeResult {
            computes.fetch_add(1);
            throw std::runtime_error("permanently broken");
        };
        bad.deliver = [](const std::vector<double>&, CellOutcome, bool) {
            FAIL() << "a quarantined cell must never deliver";
        };
        chains[0].cells.push_back(std::move(bad));
        ResilientCell good;
        good.key = {0, 1, 0};
        good.compute = [this](const CellAttempt&) {
            computes.fetch_add(1);
            CellComputeResult out;
            out.payload = {1.0};
            return out;
        };
        good.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(good));
        return chains;
    };

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts = journaled();
    ropts.max_cell_attempts = 3;
    const ResilientResult first = run_resilient_campaign(build(), copts, ropts);
    EXPECT_EQ(computes.load(), 3 + 1);
    EXPECT_EQ(first.triage.count(CellOutcome::kFailed), 1u);
    ASSERT_EQ(first.triage.quarantined_cells.size(), 1u);
    EXPECT_EQ(first.triage.quarantined_cells[0].first, (CellKey{0, 0, 0}));
    EXPECT_FALSE(first.triage.clean());

    // Resume: the quarantine record benches the cell without new attempts.
    ropts.resume = true;
    const ResilientResult second = run_resilient_campaign(build(), copts, ropts);
    EXPECT_EQ(computes.load(), 4) << "no further attempts on a quarantined cell";
    EXPECT_EQ(second.triage.count(CellOutcome::kQuarantined), 1u);
    EXPECT_EQ(second.triage.count(CellOutcome::kReplayed), 1u);
}

TEST_F(ResilientCampaignTest, TrippedBreakerShedsOptionalCellsOnly) {
    std::vector<ResilientChain> chains(1);
    std::atomic<int> optional_ran{0}, mandatory_ran{0};
    // A burst of failing mandatory cells first (single-job: deterministic
    // order), then optional ones that must be shed, then a mandatory one
    // that must still run.
    for (std::uint32_t i = 0; i < 6; ++i) {
        ResilientCell bad;
        bad.key = {0, i, 0};
        bad.compute = [](const CellAttempt&) -> CellComputeResult {
            throw std::runtime_error("hard failure");
        };
        bad.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(bad));
    }
    for (std::uint32_t i = 6; i < 9; ++i) {
        ResilientCell opt;
        opt.key = {0, i, 0};
        opt.optional = true;
        opt.compute = [&optional_ran](const CellAttempt&) {
            optional_ran.fetch_add(1);
            return CellComputeResult{{1.0}, CellOutcome::kOk};
        };
        opt.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(opt));
    }
    ResilientCell mand;
    mand.key = {0, 9, 0};
    mand.compute = [&mandatory_ran](const CellAttempt&) {
        mandatory_ran.fetch_add(1);
        return CellComputeResult{{2.0}, CellOutcome::kOk};
    };
    mand.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
    chains[0].cells.push_back(std::move(mand));

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts;  // no journal: breaker works standalone
    ropts.max_cell_attempts = 1;
    ropts.breaker.window = 8;
    ropts.breaker.min_samples = 4;
    ropts.breaker.threshold = 0.5;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(optional_ran.load(), 0) << "optional cells must be shed while tripped";
    EXPECT_EQ(mandatory_ran.load(), 1) << "mandatory cells always run";
    EXPECT_EQ(result.triage.count(CellOutcome::kShed), 3u);
    EXPECT_TRUE(result.triage.breaker_tripped);
}

TEST_F(ResilientCampaignTest, AttemptBudgetPersistsAcrossProcessRestarts) {
    // A previous incarnation burned 2 of 3 attempts on this cell (journaled
    // as attempt tallies), then crashed.  The resumed campaign must grant
    // only the one remaining attempt before quarantining.
    {
        JournalWriter w;
        JournalWriter::Options jopts;
        jopts.campaign_id = 42;
        ASSERT_TRUE(w.open_fresh(path, jopts));
        w.append_attempt({0, 0, 0}, 2);
        w.close();
    }
    std::vector<ResilientChain> chains(1);
    ResilientCell bad;
    bad.key = {0, 0, 0};
    bad.compute = [this](const CellAttempt& attempt) -> CellComputeResult {
        computes.fetch_add(1);
        EXPECT_EQ(attempt.attempt, 2) << "attempt index continues across restarts";
        throw std::runtime_error("still broken");
    };
    bad.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
    chains[0].cells.push_back(std::move(bad));

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts = journaled();
    ropts.resume = true;
    ropts.max_cell_attempts = 3;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(computes.load(), 1) << "2 of 3 attempts already burned before the restart";
    ASSERT_EQ(result.triage.quarantined_cells.size(), 1u);
    EXPECT_EQ(result.triage.quarantined_cells[0].first, (CellKey{0, 0, 0}));
    EXPECT_EQ(result.triage.quarantined_cells[0].second, 3u) << "total across restarts";
}

TEST_F(ResilientCampaignTest, ExhaustedBudgetQuarantinesWithoutRunning) {
    // The crashed incarnations already spent the whole budget: the resumed
    // campaign must bench the cell outright — a crash-looping cell cannot
    // take the worker down a third time.
    {
        JournalWriter w;
        JournalWriter::Options jopts;
        jopts.campaign_id = 42;
        ASSERT_TRUE(w.open_fresh(path, jopts));
        w.append_attempt({0, 0, 0}, 2);
        w.close();
    }
    std::vector<ResilientChain> chains(1);
    ResilientCell cell;
    cell.key = {0, 0, 0};
    cell.compute = [this](const CellAttempt&) {
        computes.fetch_add(1);  // would succeed — but must never get the chance
        return CellComputeResult{{1.0}, CellOutcome::kOk};
    };
    cell.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
    chains[0].cells.push_back(std::move(cell));

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts = journaled();
    ropts.resume = true;
    ropts.max_cell_attempts = 2;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(computes.load(), 0);
    EXPECT_EQ(result.triage.count(CellOutcome::kQuarantined), 1u);
}

TEST_F(ResilientCampaignTest, ResumeCompactsAttemptLitteredJournal) {
    // First run: a flaky cell leaves an attempt tally behind its eventual
    // completion record.  The resumed run must compact that litter away so
    // replay cost stays O(cells), and still replay everything.
    {
        std::vector<ResilientChain> chains(1);
        ResilientCell flaky;
        flaky.key = {0, 0, 0};
        flaky.compute = [this](const CellAttempt& attempt) {
            computes.fetch_add(1);
            if (attempt.attempt == 0) throw std::runtime_error("transient");
            return CellComputeResult{{5.0}, CellOutcome::kOk};
        };
        flaky.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(flaky));
        CampaignOptions copts;
        copts.jobs = 1;
        ResilienceOptions ropts = journaled();
        ropts.max_cell_attempts = 2;
        run_resilient_campaign(chains, copts, ropts);
    }
    ASSERT_GE(replay_journal(path, 42).superseded_records, 1u) << "litter expected";

    auto chains = make_chains(1, 1);
    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts = journaled();
    ropts.resume = true;
    const ResilientResult resumed = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(resumed.triage.count(CellOutcome::kReplayed), 1u);
    const JournalReplay after = replay_journal(path, 42);
    EXPECT_EQ(after.superseded_records, 0u) << "resume must compact the journal";
    ASSERT_EQ(after.cells.size(), 1u);
    EXPECT_EQ(after.cells[0].payload, std::vector<double>{5.0});
}

TEST_F(ResilientCampaignTest, DeferredOptionalCellsRunWhenBreakerRecovers) {
    // Breaker-aware scheduling: optional cells hitting a tripped breaker are
    // *deferred*, not immediately shed — if the breaker recovers while
    // mandatory work drains, the parked cells still run.
    std::vector<ResilientChain> chains(1);
    std::atomic<int> optional_ran{0};
    for (std::uint32_t i = 0; i < 4; ++i) {  // trip the breaker
        ResilientCell bad;
        bad.key = {0, i, 0};
        bad.compute = [](const CellAttempt&) -> CellComputeResult {
            throw std::runtime_error("hard failure");
        };
        bad.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(bad));
    }
    for (std::uint32_t i = 4; i < 6; ++i) {  // optional: deferred while tripped
        ResilientCell opt;
        opt.key = {0, i, 0};
        opt.optional = true;
        opt.compute = [&optional_ran](const CellAttempt&) {
            optional_ran.fetch_add(1);
            return CellComputeResult{{1.0}, CellOutcome::kOk};
        };
        opt.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(opt));
    }
    for (std::uint32_t i = 6; i < 12; ++i) {  // recovery: failure rate drops
        ResilientCell good;
        good.key = {0, i, 0};
        good.compute = [](const CellAttempt&) { return CellComputeResult{{2.0}, CellOutcome::kOk}; };
        good.deliver = [](const std::vector<double>&, CellOutcome, bool) {};
        chains[0].cells.push_back(std::move(good));
    }

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts;
    ropts.max_cell_attempts = 1;
    ropts.breaker.window = 8;
    ropts.breaker.min_samples = 4;
    ropts.breaker.threshold = 0.5;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_TRUE(result.triage.breaker_tripped) << "the breaker really tripped mid-run";
    EXPECT_EQ(optional_ran.load(), 2) << "deferred cells run once the breaker recovers";
    EXPECT_EQ(result.triage.count(CellOutcome::kShed), 0u);
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 8u);
}

TEST_F(ResilientCampaignTest, WatchdogReclaimsStalledCell) {
    std::vector<ResilientChain> chains(1);
    ResilientCell stuck;
    stuck.key = {0, 0, 0};
    stuck.compute = [](const CellAttempt& attempt) -> CellComputeResult {
        // A wedged solver: no heartbeat, no progress — just like a Newton
        // limit cycle.  Exit only when the watchdog expires the deadline.
        while (!attempt.token.deadline_expired()) {
            std::this_thread::sleep_for(1ms);
        }
        throw std::runtime_error("aborted by deadline");
    };
    stuck.deliver = [](const std::vector<double>&, CellOutcome, bool) {
        FAIL() << "a timed-out cell must not deliver";
    };
    chains[0].cells.push_back(std::move(stuck));

    CampaignOptions copts;
    copts.jobs = 1;
    ResilienceOptions ropts;
    ropts.cell_timeout = 50ms;
    ropts.max_cell_attempts = 2;
    ropts.watchdog.poll_interval = 5ms;
    const ResilientResult result = run_resilient_campaign(chains, copts, ropts);
    EXPECT_EQ(result.triage.count(CellOutcome::kTimedOut), 1u);
    EXPECT_GE(result.triage.watchdog_fires, 1u);
    EXPECT_EQ(result.triage.quarantined_cells.size(), 1u);
}

TEST_F(ResilientCampaignTest, CalibrateFailureIsNotFatal) {
    auto chains = make_chains(1, 2);
    chains[0].calibrate = [](TaskContext&) { throw std::runtime_error("cal blew up"); };
    CampaignOptions copts;
    copts.jobs = 1;
    const ResilientResult result = run_resilient_campaign(chains, copts, {});
    // The cells still ran (and here, still succeeded) despite calibration
    // failing — graceful degradation, not abort.
    EXPECT_EQ(result.triage.count(CellOutcome::kOk), 2u);
}

TEST_F(ResilientCampaignTest, DeliveredOutcomeMarksDegradedResults) {
    std::vector<ResilientChain> chains(1);
    ResilientCell cell;
    cell.key = {0, 0, 0};
    cell.compute = [](const CellAttempt&) {
        return CellComputeResult{{3.0}, CellOutcome::kDegraded};
    };
    cell.deliver = [this](const std::vector<double>&, CellOutcome outcome, bool) {
        delivered_outcome = outcome;
    };
    chains[0].cells.push_back(std::move(cell));
    CampaignOptions copts;
    copts.jobs = 1;
    const ResilientResult result = run_resilient_campaign(chains, copts, {});
    EXPECT_EQ(result.triage.count(CellOutcome::kDegraded), 1u);
    EXPECT_EQ(delivered_outcome, CellOutcome::kDegraded);
}

}  // namespace
}  // namespace rfabm::exec
