// Triage bookkeeping: failure breaker, quarantine roster, report rendering.
#include "exec/triage.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rfabm::exec {
namespace {

FailureBreaker::Options small_window() {
    FailureBreaker::Options opts;
    opts.window = 8;
    opts.threshold = 0.5;
    opts.min_samples = 4;
    return opts;
}

TEST(FailureBreakerTest, StaysQuietBelowMinSamples) {
    FailureBreaker breaker{small_window()};
    breaker.record(false);
    breaker.record(false);
    breaker.record(false);
    EXPECT_FALSE(breaker.tripped()) << "tripped before min_samples";
}

TEST(FailureBreakerTest, TripsOnFailureBurstAndRecovers) {
    FailureBreaker breaker{small_window()};
    for (int i = 0; i < 4; ++i) breaker.record(false);
    EXPECT_TRUE(breaker.tripped());
    // A run of successes pushes the failures out of the sliding window.
    for (int i = 0; i < 8; ++i) breaker.record(true);
    EXPECT_FALSE(breaker.tripped());
    EXPECT_TRUE(breaker.ever_tripped()) << "history must stay visible to the report";
}

TEST(FailureBreakerTest, MixedLoadBelowThresholdStaysClosed) {
    FailureBreaker breaker{small_window()};
    for (int i = 0; i < 16; ++i) breaker.record(i % 3 == 0);  // ~67% failures
    EXPECT_TRUE(breaker.tripped());
    FailureBreaker healthy{small_window()};
    for (int i = 0; i < 16; ++i) healthy.record(i % 3 != 0);  // ~33% failures
    EXPECT_FALSE(healthy.tripped());
}

TEST(QuarantineTest, RosterRemembersCellsAndAttempts) {
    Quarantine quarantine;
    EXPECT_FALSE(quarantine.contains({1, 2, 0}));
    quarantine.add({1, 2, 0}, 3);
    quarantine.add({1, 2, 0}, 3);  // idempotent
    quarantine.add({4, 0, 0}, 2);
    EXPECT_TRUE(quarantine.contains({1, 2, 0}));
    EXPECT_FALSE(quarantine.contains({1, 3, 0}));
    EXPECT_EQ(quarantine.size(), 2u);
}

TEST(TriageReportTest, CountsAndCleanliness) {
    TriageReport report;
    report.cells_total = 3;
    report.counts[static_cast<std::size_t>(CellOutcome::kOk)] = 2;
    report.counts[static_cast<std::size_t>(CellOutcome::kReplayed)] = 1;
    EXPECT_EQ(report.count(CellOutcome::kOk), 2u);
    EXPECT_TRUE(report.clean());
    report.counts[static_cast<std::size_t>(CellOutcome::kTimedOut)] = 1;
    EXPECT_FALSE(report.clean());
}

TEST(TriageReportTest, TextAndJsonCarryTheStory) {
    TriageReport report;
    report.cells_total = 4;
    report.counts[static_cast<std::size_t>(CellOutcome::kOk)] = 2;
    report.counts[static_cast<std::size_t>(CellOutcome::kTimedOut)] = 1;
    report.counts[static_cast<std::size_t>(CellOutcome::kShed)] = 1;
    report.watchdog_fires = 2;
    report.breaker_tripped = true;
    report.quarantined_cells.push_back({{0, 3, 0}, 2});
    report.journal.records_written = 3;
    report.journal.torn_tail = true;

    const std::string text = report.to_string();
    EXPECT_NE(text.find("4 cells"), std::string::npos);
    EXPECT_NE(text.find("timed_out"), std::string::npos);
    EXPECT_NE(text.find("watchdog fires: 2"), std::string::npos);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"cells_total\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"watchdog_fires\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"breaker_tripped\": true"), std::string::npos);
    EXPECT_NE(json.find("\"torn_tail\": true"), std::string::npos);
    EXPECT_NE(json.find("\"die\": 0"), std::string::npos);
}

TEST(TriageReportTest, ShardHistorySchemaInTextAndJson) {
    TriageReport report;
    report.cells_total = 8;
    report.counts[static_cast<std::size_t>(CellOutcome::kOk)] = 8;

    ShardHistory shard;
    shard.shard = 1;
    shard.launches = 2;
    shard.crashes = 1;
    shard.completed = true;
    shard.attempts.push_back({0, false, false, 0, "crashed"});
    shard.attempts.push_back({1, true, false, 50, "completed"});
    report.shards.push_back(shard);

    const std::string text = report.to_string();
    EXPECT_NE(text.find("shard 1: 2 launches, 1 crash (0 hung), completed"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("after 50ms backoff"), std::string::npos) << text;

    // The JSON schema the campaign drivers and dashboards key on: a
    // "shards" array, each with an ordered "attempts" array recording how
    // every launch started (resume/shed/backoff) and ended.
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"shards\": [{\"shard\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"launches\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"crashes\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"completed\": true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"attempts\": [{\"attempt\": 0"), std::string::npos) << json;
    EXPECT_NE(json.find("\"resume\": false"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ended\": \"crashed\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"backoff_ms\": 50"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ended\": \"completed\""), std::string::npos) << json;

    // A single-process campaign (no supervision) still renders: empty array.
    TriageReport inline_report;
    EXPECT_NE(inline_report.to_json().find("\"shards\": []"), std::string::npos);
}

TEST(TriageReportTest, SurrogateSectionSchemaInTextAndJson) {
    TriageReport report;
    report.cells_total = 4;
    report.counts[static_cast<std::size_t>(CellOutcome::kOk)] = 4;
    report.surrogate.enabled = true;
    report.surrogate.hits = 30;
    report.surrogate.misses = 10;
    report.surrogate.out_of_envelope = 5;
    report.surrogate.bound_too_loose = 2;
    report.surrogate.observed = 17;
    report.surrogate.refits = 3;
    report.surrogate.load_rejected = 1;
    report.surrogate.surfaces = 6;
    report.surrogate.worst_error_bound = 0.004;
    EXPECT_EQ(report.surrogate.lookups(), 47u);

    const std::string text = report.to_string();
    EXPECT_NE(text.find("surrogate: 30/47 served"), std::string::npos) << text;
    EXPECT_NE(text.find("5 out-of-envelope"), std::string::npos) << text;
    // A rejected persisted store is a loud, triage-worthy event.
    EXPECT_NE(text.find("1 persisted store(s) REJECTED at load"), std::string::npos) << text;

    // The JSON schema campaign dashboards key on.
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"surrogate\": {\"enabled\": true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"hits\": 30"), std::string::npos) << json;
    EXPECT_NE(json.find("\"out_of_envelope\": 5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"bound_too_loose\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"load_rejected\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"surfaces\": 6"), std::string::npos) << json;
    EXPECT_NE(json.find("\"worst_error_bound\": 0.004"), std::string::npos) << json;

    // Surrogate-disabled campaigns keep their human-readable report
    // byte-stable (no surrogate line), while the JSON stays schema-complete.
    TriageReport plain;
    EXPECT_EQ(plain.to_string().find("surrogate"), std::string::npos);
    EXPECT_NE(plain.to_json().find("\"surrogate\": {\"enabled\": false"), std::string::npos);
}

TEST(TriageReportTest, OutcomeNamesAreStable) {
    // The journal stores outcomes as raw integers; renames are format breaks.
    EXPECT_STREQ(to_string(CellOutcome::kOk), "ok");
    EXPECT_STREQ(to_string(CellOutcome::kTimedOut), "timed_out");
    EXPECT_STREQ(to_string(CellOutcome::kNonFinite), "non_finite");
    EXPECT_STREQ(to_string(CellOutcome::kReplayed), "replayed");
    EXPECT_EQ(static_cast<std::uint32_t>(CellOutcome::kOk), 0u);
    EXPECT_EQ(static_cast<std::uint32_t>(CellOutcome::kReplayed), 7u);
}

}  // namespace
}  // namespace rfabm::exec
