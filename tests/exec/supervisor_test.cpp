// ShardSupervisor: heartbeat liveness, crash/hang restarts, give-up and
// breaker escalation — against real forked /bin/sh workers.
#include "exec/supervisor.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

namespace rfabm::exec {
namespace {

using Event = ShardSupervisor::Event;
using EventKind = ShardSupervisor::EventKind;
using Launch = ShardSupervisor::Launch;

/// fork + exec `/bin/sh -c script` with the launch's heartbeat pipe on fd 3,
/// so scripts beat with `printf x >&3`.  Stdio goes to /dev/null: an orphaned
/// grandchild (sh forks `sleep`, the supervisor SIGKILLs sh) must not keep
/// the test's output pipes open and stall ctest until the sleep expires.
pid_t spawn_sh(const Launch& launch, const std::string& script) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    const int null_fd = ::open("/dev/null", O_RDWR);
    if (null_fd >= 0) {
        ::dup2(null_fd, 0);
        ::dup2(null_fd, 1);
        ::dup2(null_fd, 2);
        if (null_fd > 2) ::close(null_fd);
    }
    if (launch.heartbeat_fd >= 0) ::dup2(launch.heartbeat_fd, 3);
    ::execl("/bin/sh", "sh", "-c", script.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);
}

/// Collects supervisor events thread-safely (on_event runs on the
/// supervising thread, but keep the pattern honest).
struct EventLog {
    std::mutex mu;
    std::vector<Event> events;

    std::function<void(const Event&)> sink() {
        return [this](const Event& e) {
            const std::lock_guard<std::mutex> lock(mu);
            events.push_back(e);
        };
    }
    int count(EventKind kind) {
        const std::lock_guard<std::mutex> lock(mu);
        int n = 0;
        for (const Event& e : events) {
            if (e.kind == kind) ++n;
        }
        return n;
    }
};

TEST(SupervisorTest, CleanFleetCompletesWithoutRestarts) {
    EventLog log;
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.on_event = log.sink();
    ShardSupervisor sup(opts);

    const auto result = sup.supervise(3, [](const Launch& launch) {
        return spawn_sh(launch, "printf x >&3; printf x >&3; exit 0");
    });

    EXPECT_TRUE(result.all_completed);
    EXPECT_EQ(result.restarts, 0u);
    EXPECT_FALSE(result.breaker_tripped);
    EXPECT_GE(result.heartbeats, 6u);
    ASSERT_EQ(result.workers.size(), 3u);
    for (const auto& w : result.workers) {
        EXPECT_TRUE(w.completed);
        EXPECT_FALSE(w.gave_up);
        EXPECT_EQ(w.crashes, 0);
        EXPECT_EQ(w.launches, 1);
    }
    EXPECT_EQ(log.count(EventKind::kLaunch), 3);
    EXPECT_EQ(log.count(EventKind::kComplete), 3);
    EXPECT_EQ(log.count(EventKind::kCrash), 0);
}

TEST(SupervisorTest, CrashedWorkerRestartsWithResume) {
    EventLog log;
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(10);
    opts.on_event = log.sink();
    ShardSupervisor sup(opts);

    bool resumed_launch_seen = false;
    const auto result = sup.supervise(2, [&](const Launch& launch) {
        // Shard 1 dies on its first attempt; its relaunch must carry resume
        // so the worker replays its journal instead of recomputing.
        if (launch.shard == 1 && launch.attempt == 0) {
            return spawn_sh(launch, "exit 1");
        }
        if (launch.shard == 1 && launch.attempt > 0) {
            EXPECT_TRUE(launch.resume);
            resumed_launch_seen = true;
        }
        return spawn_sh(launch, "printf x >&3; exit 0");
    });

    EXPECT_TRUE(result.all_completed);
    EXPECT_EQ(result.restarts, 1u);
    EXPECT_TRUE(resumed_launch_seen);
    ASSERT_EQ(result.workers.size(), 2u);
    EXPECT_EQ(result.workers[0].crashes, 0);
    EXPECT_EQ(result.workers[1].crashes, 1);
    EXPECT_TRUE(result.workers[1].completed);
    EXPECT_EQ(result.workers[1].launches, 2);
    EXPECT_EQ(log.count(EventKind::kCrash), 1);
}

TEST(SupervisorTest, HungWorkerIsKilledAndRestarted) {
    EventLog log;
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(10);
    opts.heartbeat_timeout = std::chrono::milliseconds(300);  // fixed: no warmup
    opts.on_event = log.sink();
    ShardSupervisor sup(opts);

    const auto result = sup.supervise(1, [](const Launch& launch) {
        if (launch.attempt == 0) {
            // One beat, then silence: a stall, not slowness.
            return spawn_sh(launch, "printf x >&3; sleep 5");
        }
        return spawn_sh(launch, "printf x >&3; exit 0");
    });

    EXPECT_TRUE(result.all_completed);
    ASSERT_EQ(result.workers.size(), 1u);
    EXPECT_GE(result.workers[0].hangs, 1);
    EXPECT_TRUE(result.workers[0].completed);
    EXPECT_GE(log.count(EventKind::kHang), 1);
}

TEST(SupervisorTest, RepeatCrasherIsGivenUpOn) {
    EventLog log;
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(5);
    opts.max_restarts = 1;
    opts.on_event = log.sink();
    ShardSupervisor sup(opts);

    const auto result = sup.supervise(1, [](const Launch& launch) {
        return spawn_sh(launch, "exit 2");
    });

    EXPECT_FALSE(result.all_completed);
    ASSERT_EQ(result.workers.size(), 1u);
    EXPECT_TRUE(result.workers[0].gave_up);
    EXPECT_FALSE(result.workers[0].completed);
    EXPECT_EQ(result.workers[0].crashes, 2);  // initial launch + one restart
    EXPECT_EQ(log.count(EventKind::kGiveUp), 1);
}

TEST(SupervisorTest, BreakerTripEscalatesToShedOptionalRelaunches) {
    EventLog log;
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(5);
    opts.max_restarts = 6;
    opts.breaker.window = 4;
    opts.breaker.min_samples = 2;
    opts.breaker.threshold = 0.5;
    opts.on_event = log.sink();
    ShardSupervisor sup(opts);

    // The worker keeps crashing until the breaker trips and the relaunch
    // arrives with shed_optional — the degraded mode "succeeds".
    const auto result = sup.supervise(1, [](const Launch& launch) {
        if (launch.shed_optional) {
            return spawn_sh(launch, "printf x >&3; exit 0");
        }
        return spawn_sh(launch, "exit 1");
    });

    EXPECT_TRUE(result.breaker_tripped);
    EXPECT_TRUE(result.all_completed);
    ASSERT_EQ(result.workers.size(), 1u);
    EXPECT_TRUE(result.workers[0].completed);
    EXPECT_GE(result.workers[0].crashes, 2);
    EXPECT_GE(log.count(EventKind::kBreakerTrip), 1);
}

TEST(SupervisorTest, AttemptHistoryRecordsEveryLaunchAndItsEnd) {
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(10);
    ShardSupervisor sup(opts);

    const auto result = sup.supervise(1, [](const Launch& launch) {
        if (launch.attempt == 0) return spawn_sh(launch, "exit 1");
        return spawn_sh(launch, "printf x >&3; exit 0");
    });

    ASSERT_EQ(result.workers.size(), 1u);
    const std::vector<ShardAttempt>& attempts = result.workers[0].attempts;
    ASSERT_EQ(attempts.size(), 2u);
    EXPECT_EQ(attempts[0].attempt, 0);
    EXPECT_FALSE(attempts[0].resume);
    EXPECT_EQ(attempts[0].backoff_ms, 0) << "first launch waits no backoff";
    EXPECT_EQ(attempts[0].ended, "crashed");
    EXPECT_EQ(attempts[1].attempt, 1);
    EXPECT_TRUE(attempts[1].resume) << "relaunch must replay the shard journal";
    EXPECT_GT(attempts[1].backoff_ms, 0) << "restart must record its backoff wait";
    EXPECT_EQ(attempts[1].ended, "completed");

    // The TriageReport projection carries the same history field for field.
    const std::vector<ShardHistory> histories = shard_histories(result);
    ASSERT_EQ(histories.size(), 1u);
    EXPECT_EQ(histories[0].shard, 0u);
    EXPECT_EQ(histories[0].launches, 2);
    EXPECT_EQ(histories[0].crashes, 1);
    EXPECT_TRUE(histories[0].completed);
    ASSERT_EQ(histories[0].attempts.size(), 2u);
    EXPECT_EQ(histories[0].attempts[0].ended, "crashed");
    EXPECT_EQ(histories[0].attempts[1].ended, "completed");
}

TEST(SupervisorTest, AttemptHistoryNamesHangsAndSheds) {
    ShardSupervisor::Options opts;
    opts.poll_interval = std::chrono::milliseconds(5);
    opts.backoff_base = std::chrono::milliseconds(10);
    opts.heartbeat_timeout = std::chrono::milliseconds(300);  // fixed: no warmup
    ShardSupervisor sup(opts);

    const auto result = sup.supervise(1, [](const Launch& launch) {
        if (launch.attempt == 0) {
            return spawn_sh(launch, "printf x >&3; sleep 5");
        }
        return spawn_sh(launch, "printf x >&3; exit 0");
    });

    ASSERT_EQ(result.workers.size(), 1u);
    ASSERT_GE(result.workers[0].attempts.size(), 2u);
    EXPECT_EQ(result.workers[0].attempts.front().ended, "hung");
    EXPECT_EQ(result.workers[0].attempts.back().ended, "completed");
}

TEST(SupervisorTest, HeartbeatEmitterDisabledWithoutFd) {
    HeartbeatEmitter emitter;  // -1: the single-process path
    EXPECT_FALSE(emitter.enabled());
    emitter.beat();
    emitter.beat();
    EXPECT_EQ(emitter.beats(), 2u);  // counting still works, no fd writes
}

}  // namespace
}  // namespace rfabm::exec
