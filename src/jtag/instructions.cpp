#include "jtag/instructions.hpp"

namespace rfabm::jtag {

Instruction decode_instruction(std::uint8_t raw) {
    switch (raw) {
        case 0x00: return Instruction::kExtest;
        case 0x01: return Instruction::kSamplePreload;
        case 0x02: return Instruction::kIdcode;
        case 0x03: return Instruction::kClamp;
        case 0x04: return Instruction::kHighz;
        case 0x05: return Instruction::kProbe;
        case 0x06: return Instruction::kIntest;
        default: return Instruction::kBypass;  // unknown -> BYPASS per 1149.1
    }
}

std::string_view to_string(Instruction i) {
    switch (i) {
        case Instruction::kExtest: return "EXTEST";
        case Instruction::kSamplePreload: return "SAMPLE/PRELOAD";
        case Instruction::kIdcode: return "IDCODE";
        case Instruction::kClamp: return "CLAMP";
        case Instruction::kHighz: return "HIGHZ";
        case Instruction::kProbe: return "PROBE";
        case Instruction::kIntest: return "INTEST";
        case Instruction::kBypass: return "BYPASS";
    }
    return "?";
}

bool selects_boundary(Instruction i) {
    switch (i) {
        case Instruction::kExtest:
        case Instruction::kSamplePreload:
        case Instruction::kProbe:
        case Instruction::kIntest:
            return true;
        default:
            return false;
    }
}

bool is_analog_test_mode(Instruction i) {
    switch (i) {
        case Instruction::kExtest:
        case Instruction::kProbe:
        case Instruction::kIntest:
            return true;
        default:
            return false;
    }
}

}  // namespace rfabm::jtag
