// The paper's external serial control bus.
//
// Fig. 1 of the paper shows the ABM structures controlled "with an external
// control unit (PC, for example) using a serial data bus (signals labelled
// select ... originate from this serial data)".  This models that bus: an
// SPI-style shift register whose outputs, once strobed, drive the select
// lines of the ".4 MUX" switch matrix and the on/off power gating of the
// detectors.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/devices/switch_device.hpp"
#include "jtag/fault_hook.hpp"

namespace rfabm::jtag {

/// SPI-like serial select register.  Bits shift MSB-first into position
/// width-1 .. 0; load() latches the shift stage onto the outputs and fires
/// the attached sinks.
class SerialSelectBus {
  public:
    explicit SerialSelectBus(std::size_t width);

    std::size_t width() const { return outputs_.size(); }

    /// Shift one bit in (towards lower indices; MSB first for write_word).
    void shift_bit(bool bit);

    /// Latch shift register to outputs and drive sinks.
    void load();

    /// Latched output bit.
    bool output(std::size_t index) const { return outputs_.at(index) != 0; }

    /// Drive an analog switch from output @p index on load().
    void attach_switch(std::size_t index, circuit::Switch& sw, bool invert = false);

    /// Arbitrary output sink (e.g. a detector enable).
    void attach(std::size_t index, std::function<void(bool)> sink);

    /// Shift @p nbits of @p value (LSB first) and load, so that afterwards
    /// output(i) == bit i of @p value.  @p nbits must equal width().
    void write_word(std::uint64_t value, std::size_t nbits);

    /// Number of serial clock edges seen (for benchmarks).
    std::uint64_t bit_count() const { return bit_count_; }

    /// Install (or clear) a fault model on the serial data/clock wiring.
    /// corrupt_tdi() transforms the shifted-in bit; drop_edge() swallows the
    /// serial clock so the shift stage never advances.
    void set_fault_hook(ScanFaultHook* hook) { fault_hook_ = hook; }
    ScanFaultHook* fault_hook() const { return fault_hook_; }

  private:
    struct Sink {
        std::size_t index;
        std::function<void(bool)> fn;
    };
    std::vector<char> stage_;
    std::vector<char> outputs_;
    std::vector<Sink> sinks_;
    std::uint64_t bit_count_ = 0;
    ScanFaultHook* fault_hook_ = nullptr;
};

}  // namespace rfabm::jtag
