#include "jtag/chain.hpp"

#include <array>
#include <stdexcept>

namespace rfabm::jtag {

namespace {

/// Shortest TMS sequence from one TAP state to another (BFS; ties prefer
/// TMS=0).  Shared by the chain driver; single-device paths live in
/// TapDriver with identical semantics.
std::vector<bool> tms_path(TapState from, TapState to) {
    std::vector<bool> path;
    if (from == to) return path;
    constexpr int kNumStates = 16;
    std::array<int, kNumStates> prev_state{};
    std::array<int, kNumStates> prev_tms{};
    prev_state.fill(-1);
    const int start = static_cast<int>(from);
    const int goal = static_cast<int>(to);
    std::array<int, kNumStates> queue{};
    int head = 0;
    int tail = 0;
    queue[tail++] = start;
    prev_state[start] = start;
    while (head < tail) {
        const int s = queue[head++];
        if (s == goal) break;
        for (int tms = 0; tms <= 1; ++tms) {
            const int n = static_cast<int>(next_tap_state(static_cast<TapState>(s), tms != 0));
            if (prev_state[n] == -1) {
                prev_state[n] = s;
                prev_tms[n] = tms;
                queue[tail++] = n;
            }
        }
    }
    if (prev_state[goal] == -1) throw std::logic_error("TAP state unreachable");
    std::vector<bool> reversed;
    for (int s = goal; s != start; s = prev_state[s]) reversed.push_back(prev_tms[s] != 0);
    path.assign(reversed.rbegin(), reversed.rend());
    return path;
}

}  // namespace

bool ScanChain::clock(bool tms, bool tdi) {
    bool bit = tdi;
    for (TapController* dev : devices_) bit = dev->clock(tms, bit);
    return bit;
}

void ScanChain::reset() {
    for (TapController* dev : devices_) dev->reset();
}

bool ChainDriver::clock(bool tms, bool tdi) {
    ++tck_count_;
    if (fault_hook_ != nullptr) {
        if (fault_hook_->drop_edge()) return true;
        return fault_hook_->corrupt_tdo(chain_.clock(tms, fault_hook_->corrupt_tdi(tdi)));
    }
    return chain_.clock(tms, tdi);
}

void ChainDriver::reset_via_tms() {
    for (int i = 0; i < 5; ++i) clock(true, false);
}

void ChainDriver::go_to(TapState target) {
    if (chain_.size() == 0) throw std::logic_error("empty scan chain");
    for (bool tms : tms_path(chain_.device(0).state(), target)) clock(tms, false);
}

void ChainDriver::load(const std::vector<Instruction>& instructions) {
    if (instructions.size() != chain_.size()) {
        throw std::invalid_argument("one instruction per chain device required");
    }
    go_to(TapState::kShiftIr);
    // Bits for the device FURTHEST from host TDI (the last one) shift first;
    // LSB-first within each device.
    const std::size_t total = chain_.size() * kIrLength;
    std::size_t shifted = 0;
    for (std::size_t d = chain_.size(); d-- > 0;) {
        const std::uint8_t op = opcode(instructions[d]);
        for (std::size_t i = 0; i < kIrLength; ++i) {
            ++shifted;
            clock(shifted == total, ((op >> i) & 1u) != 0);
        }
    }
    go_to(TapState::kRunTestIdle);  // passes Update-IR on every device
}

std::vector<std::vector<bool>> ChainDriver::scan_dr(
    const std::vector<std::vector<bool>>& bits) {
    if (bits.size() != chain_.size()) {
        throw std::invalid_argument("one DR vector per chain device required");
    }
    go_to(TapState::kShiftDr);
    std::size_t total = 0;
    for (const auto& b : bits) total += b.size();

    std::vector<bool> received;
    received.reserve(total);
    std::size_t shifted = 0;
    for (std::size_t d = chain_.size(); d-- > 0;) {
        for (bool bit : bits[d]) {
            ++shifted;
            received.push_back(clock(shifted == total, bit));
        }
    }
    go_to(TapState::kRunTestIdle);

    // Received order mirrors the sending order: last device's capture first.
    std::vector<std::vector<bool>> out(chain_.size());
    std::size_t pos = 0;
    for (std::size_t d = chain_.size(); d-- > 0;) {
        out[d].assign(received.begin() + static_cast<std::ptrdiff_t>(pos),
                      received.begin() + static_cast<std::ptrdiff_t>(pos + bits[d].size()));
        pos += bits[d].size();
    }
    return out;
}

std::vector<std::uint32_t> ChainDriver::read_idcodes() {
    std::vector<std::vector<bool>> zeros(chain_.size(), std::vector<bool>(32, false));
    const auto captured = scan_dr(zeros);
    std::vector<std::uint32_t> ids;
    ids.reserve(chain_.size());
    for (const auto& word : captured) {
        std::uint32_t id = 0;
        for (std::size_t i = 0; i < 32; ++i) {
            if (word[i]) id |= 1u << i;
        }
        ids.push_back(id);
    }
    return ids;
}

}  // namespace rfabm::jtag
