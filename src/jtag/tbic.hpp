// IEEE 1149.4 Test Bus Interface Circuit (TBIC).
//
// The TBIC sits between the chip's two analog test access port pins (AT1,
// AT2) and the internal analog buses (AB1, AB2).  The full standard defines
// ten switches and a pattern set P0..P9 for characterizing the bus itself;
// this model implements the six switches the measurement and
// characterization flows need, each with its own boundary-register control
// cell, plus helpers for the common patterns:
//
//   S1: AT1 <-> AB1      (the measurement path)
//   S2: AT2 <-> AB2
//   S3: AT1 <-> VH       (bus characterization / self-test)
//   S4: AT1 <-> VL
//   S5: AT2 <-> VH
//   S6: AT2 <-> VL
//
// Mission mode (non-analog instructions) forces every switch open so the
// ATAP pins are isolated from the die, as the standard requires.
#pragma once

#include <array>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/switch_device.hpp"
#include "jtag/instructions.hpp"
#include "jtag/registers.hpp"

namespace rfabm::jtag {

/// TBIC switch identifiers.
enum class TbicSwitch : std::size_t { kS1 = 0, kS2, kS3, kS4, kS5, kS6 };
inline constexpr std::size_t kTbicSwitchCount = 6;

/// Common TBIC configurations.
enum class TbicPattern {
    kIsolate,      ///< all open (mission default)
    kConnect,      ///< S1+S2: AT1-AB1 and AT2-AB2 (measurement)
    kCharHighLow,  ///< AT1 to VH, AT2 to VL (bus wiring check)
    kCharLowHigh,  ///< AT1 to VL, AT2 to VH
};

/// Nodes the TBIC bridges.
struct TbicNodes {
    circuit::NodeId at1;
    circuit::NodeId at2;
    circuit::NodeId ab1;
    circuit::NodeId ab2;
    circuit::NodeId vh;
    circuit::NodeId vl;
};

/// The TBIC: owns six switches and six boundary cells.
class Tbic {
  public:
    Tbic(std::string name, circuit::Circuit& circuit, const TbicNodes& nodes, double ron = 50.0);

    /// Append the six control cells (S1..S6 order); returns the first index.
    std::size_t register_cells(BoundaryRegister& reg);

    /// Recompute switch states for the instruction + latched controls.
    void apply(Instruction instruction);

    /// Convenience: set the control latches for a pattern (effective switch
    /// state still respects the current instruction).
    void set_pattern(TbicPattern pattern);

    circuit::Switch& switch_dev(TbicSwitch s) { return *switches_[static_cast<std::size_t>(s)]; }
    const circuit::Switch& switch_dev(TbicSwitch s) const {
        return *switches_[static_cast<std::size_t>(s)];
    }
    const TbicNodes& nodes() const { return nodes_; }
    /// Instruction the switch states were last computed for.
    Instruction instruction() const { return instruction_; }

  private:
    std::string name_;
    TbicNodes nodes_;
    std::array<circuit::Switch*, kTbicSwitchCount> switches_{};
    std::array<bool, kTbicSwitchCount> control_{};
    Instruction instruction_ = Instruction::kIdcode;
};

}  // namespace rfabm::jtag
