#include "jtag/tap_state.hpp"

namespace rfabm::jtag {

TapState next_tap_state(TapState current, bool tms) {
    switch (current) {
        case TapState::kTestLogicReset:
            return tms ? TapState::kTestLogicReset : TapState::kRunTestIdle;
        case TapState::kRunTestIdle:
            return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
        case TapState::kSelectDrScan:
            return tms ? TapState::kSelectIrScan : TapState::kCaptureDr;
        case TapState::kCaptureDr:
            return tms ? TapState::kExit1Dr : TapState::kShiftDr;
        case TapState::kShiftDr:
            return tms ? TapState::kExit1Dr : TapState::kShiftDr;
        case TapState::kExit1Dr:
            return tms ? TapState::kUpdateDr : TapState::kPauseDr;
        case TapState::kPauseDr:
            return tms ? TapState::kExit2Dr : TapState::kPauseDr;
        case TapState::kExit2Dr:
            return tms ? TapState::kUpdateDr : TapState::kShiftDr;
        case TapState::kUpdateDr:
            return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
        case TapState::kSelectIrScan:
            return tms ? TapState::kTestLogicReset : TapState::kCaptureIr;
        case TapState::kCaptureIr:
            return tms ? TapState::kExit1Ir : TapState::kShiftIr;
        case TapState::kShiftIr:
            return tms ? TapState::kExit1Ir : TapState::kShiftIr;
        case TapState::kExit1Ir:
            return tms ? TapState::kUpdateIr : TapState::kPauseIr;
        case TapState::kPauseIr:
            return tms ? TapState::kExit2Ir : TapState::kPauseIr;
        case TapState::kExit2Ir:
            return tms ? TapState::kUpdateIr : TapState::kShiftIr;
        case TapState::kUpdateIr:
            return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
    }
    return TapState::kTestLogicReset;  // unreachable
}

std::string_view to_string(TapState state) {
    switch (state) {
        case TapState::kTestLogicReset: return "Test-Logic-Reset";
        case TapState::kRunTestIdle: return "Run-Test/Idle";
        case TapState::kSelectDrScan: return "Select-DR-Scan";
        case TapState::kCaptureDr: return "Capture-DR";
        case TapState::kShiftDr: return "Shift-DR";
        case TapState::kExit1Dr: return "Exit1-DR";
        case TapState::kPauseDr: return "Pause-DR";
        case TapState::kExit2Dr: return "Exit2-DR";
        case TapState::kUpdateDr: return "Update-DR";
        case TapState::kSelectIrScan: return "Select-IR-Scan";
        case TapState::kCaptureIr: return "Capture-IR";
        case TapState::kShiftIr: return "Shift-IR";
        case TapState::kExit1Ir: return "Exit1-IR";
        case TapState::kPauseIr: return "Pause-IR";
        case TapState::kExit2Ir: return "Exit2-IR";
        case TapState::kUpdateIr: return "Update-IR";
    }
    return "?";
}

}  // namespace rfabm::jtag
