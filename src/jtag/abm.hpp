// IEEE 1149.4 Analog Boundary Module (ABM).
//
// Every analog function pin of an 1149.4 device carries an ABM: six analog
// switches plus a one-bit digitizer.  Switch roles (per the standard's
// architecture; naming follows the public literature):
//
//   SD  - pin <-> core        (mission path; opened to isolate the core)
//   SH  - pin <-> VH          (drive logic high level onto the pin)
//   SL  - pin <-> VL          (drive logic low level onto the pin)
//   SG  - pin <-> VG          (reference/guard voltage)
//   SB1 - pin <-> AB1         (internal analog bus 1, to the ATAP via TBIC)
//   SB2 - pin <-> AB2         (internal analog bus 2)
//
// The module owns five boundary-register cells:
//
//   D  - data: captures the digitizer (pin > VTH); in EXTEST its latch picks
//        VH (1) or VL (0) when driving is enabled
//   E  - drive enable for SH/SL in EXTEST
//   G  - closes SG in analog test modes
//   B1 - closes SB1 in EXTEST/INTEST; in PROBE connects without opening SD
//   B2 - closes SB2 likewise
//
// Mode table (applied at Update-IR and Update-DR):
//
//   instruction          SD      SH     SL     SG   SB1  SB2
//   mission (BYPASS,
//     IDCODE, SAMPLE)    closed  open   open   open open open
//   EXTEST / INTEST /
//     CLAMP              open    E&&D   E&&!D  G    B1   B2
//   PROBE                closed  open   open   open B1   B2   <- 1149.4's key
//   HIGHZ                open    open   open   open open open
//
// PROBE is what the paper's measurement flow uses: the RF pin stays connected
// to the mission path while the detector's DC output is routed to the analog
// test port.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/switch_device.hpp"
#include "jtag/instructions.hpp"
#include "jtag/registers.hpp"

namespace rfabm::jtag {

/// Switch identifiers within an ABM.
enum class AbmSwitch : std::size_t { kSD = 0, kSH, kSL, kSG, kSB1, kSB2 };
inline constexpr std::size_t kAbmSwitchCount = 6;

/// Nodes an ABM connects to.
struct AbmNodes {
    circuit::NodeId pin;   ///< the chip pin
    circuit::NodeId core;  ///< core-side function node
    circuit::NodeId ab1;   ///< internal analog bus 1
    circuit::NodeId ab2;   ///< internal analog bus 2
    circuit::NodeId vh;    ///< logic-high reference
    circuit::NodeId vl;    ///< logic-low reference
    circuit::NodeId vg;    ///< guard/reference voltage
};

/// One Analog Boundary Module: creates its six switches in the circuit and
/// exposes five boundary cells.
class AnalogBoundaryModule {
  public:
    /// @p digitizer_threshold is the VTH comparison level of the capture
    /// digitizer.
    AnalogBoundaryModule(std::string name, circuit::Circuit& circuit, const AbmNodes& nodes,
                         double digitizer_threshold = 1.25, double ron = 50.0);

    /// Append this module's 5 cells to @p reg (order: D, E, G, B1, B2).
    /// Returns the index of the first cell.
    std::size_t register_cells(BoundaryRegister& reg);

    /// Recompute switch states for @p instruction and the current cell
    /// latches.  Called from the chip's Update-IR/Update-DR hooks.
    void apply(Instruction instruction);

    /// Voltage probe used by the digitizer during Capture-DR; the chip wires
    /// this to the live transient solution.
    void set_voltage_probe(std::function<double(circuit::NodeId)> probe) {
        probe_ = std::move(probe);
    }

    /// Digitizer output: pin voltage above the threshold (false without probe).
    bool digitize() const;

    circuit::Switch& switch_dev(AbmSwitch s) { return *switches_[static_cast<std::size_t>(s)]; }
    const circuit::Switch& switch_dev(AbmSwitch s) const {
        return *switches_[static_cast<std::size_t>(s)];
    }

    const std::string& name() const { return name_; }
    const AbmNodes& nodes() const { return nodes_; }
    Instruction last_instruction() const { return instruction_; }

  private:
    std::string name_;
    AbmNodes nodes_;
    double threshold_;
    std::array<circuit::Switch*, kAbmSwitchCount> switches_{};
    std::function<double(circuit::NodeId)> probe_;
    Instruction instruction_ = Instruction::kIdcode;
    // Latched control bits (mirrored from the boundary register at update).
    bool d_ = false;
    bool e_ = false;
    bool g_ = false;
    bool b1_ = false;
    bool b2_ = false;
};

}  // namespace rfabm::jtag
