// Fault-injection point for the serial test infrastructure.
//
// A ScanFaultHook sits between a host-side driver (TapDriver, ChainDriver,
// SerialSelectBus) and the device it clocks, modelling physical defects on
// the board-level test wiring: stuck-at TDI/TDO lines, TCK edges lost to
// glitches, and single-bit corruption.  Drivers consult the hook on every
// clock; a null hook (the default) is the healthy wire.
//
// The hook deliberately lives at the *driver* boundary rather than inside the
// TAP model: a broken TDO trace corrupts what the host observes, not what the
// silicon latches, and a swallowed TCK edge desynchronizes the host's idea of
// the FSM state from the device's — exactly the failure mode an interconnect
// test must survive.
#pragma once

namespace rfabm::jtag {

/// Per-edge fault transform consulted by the scan drivers.  The default
/// implementation is transparent; fault models override the lines they break.
class ScanFaultHook {
  public:
    virtual ~ScanFaultHook() = default;

    /// Return true to swallow this clock edge entirely: the device never sees
    /// it, the host believes it happened (TDO reads as the idle pull-up).
    virtual bool drop_edge() { return false; }

    /// Transform the host-driven data bit on its way to the device.
    virtual bool corrupt_tdi(bool bit) { return bit; }

    /// Transform the device-driven data bit on its way back to the host.
    virtual bool corrupt_tdo(bool bit) { return bit; }
};

}  // namespace rfabm::jtag
