#include "jtag/registers.hpp"

namespace rfabm::jtag {

std::size_t BoundaryRegister::add_cell(BoundaryCell cell) {
    cells_.push_back(std::move(cell));
    stage_.push_back(0);
    latch_.push_back(0);
    return cells_.size() - 1;
}

void BoundaryRegister::capture() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const auto& fn = cells_[i].capture;
        stage_[i] = fn ? (fn() ? 1 : 0) : latch_[i];
    }
}

bool BoundaryRegister::shift(bool tdi) {
    if (cells_.empty()) return tdi;
    const bool out = stage_.front() != 0;
    for (std::size_t i = 0; i + 1 < stage_.size(); ++i) stage_[i] = stage_[i + 1];
    stage_.back() = tdi ? 1 : 0;
    return out;
}

void BoundaryRegister::update() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        latch_[i] = stage_[i];
        if (cells_[i].update) cells_[i].update(latch_[i] != 0);
    }
}

void BoundaryRegister::set_latched(std::size_t index, bool value) {
    latch_.at(index) = value ? 1 : 0;
    if (cells_[index].update) cells_[index].update(value);
}

void BoundaryRegister::reset_latches() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        latch_[i] = 0;
        stage_[i] = 0;
        if (cells_[i].update) cells_[i].update(false);
    }
}

}  // namespace rfabm::jtag
