#include "jtag/tbic.hpp"

namespace rfabm::jtag {

using circuit::Switch;

Tbic::Tbic(std::string name, circuit::Circuit& circuit, const TbicNodes& nodes, double ron)
    : name_(std::move(name)), nodes_(nodes) {
    auto make = [&](TbicSwitch which, const char* suffix, circuit::NodeId a, circuit::NodeId b) {
        switches_[static_cast<std::size_t>(which)] =
            &circuit.add<Switch>(name_ + "." + suffix, a, b, ron);
    };
    make(TbicSwitch::kS1, "S1", nodes.at1, nodes.ab1);
    make(TbicSwitch::kS2, "S2", nodes.at2, nodes.ab2);
    make(TbicSwitch::kS3, "S3", nodes.at1, nodes.vh);
    make(TbicSwitch::kS4, "S4", nodes.at1, nodes.vl);
    make(TbicSwitch::kS5, "S5", nodes.at2, nodes.vh);
    make(TbicSwitch::kS6, "S6", nodes.at2, nodes.vl);
    apply(Instruction::kIdcode);
}

std::size_t Tbic::register_cells(BoundaryRegister& reg) {
    std::size_t first = 0;
    static constexpr const char* kNames[kTbicSwitchCount] = {"S1", "S2", "S3",
                                                             "S4", "S5", "S6"};
    for (std::size_t i = 0; i < kTbicSwitchCount; ++i) {
        const std::size_t idx = reg.add_cell({name_ + "." + kNames[i], nullptr, [this, i](bool v) {
                                                  control_[i] = v;
                                                  apply(instruction_);
                                              }});
        if (i == 0) first = idx;
    }
    return first;
}

void Tbic::apply(Instruction instruction) {
    instruction_ = instruction;
    const bool enabled = is_analog_test_mode(instruction);
    for (std::size_t i = 0; i < kTbicSwitchCount; ++i) {
        switches_[i]->set_closed(enabled && control_[i]);
    }
}

void Tbic::set_pattern(TbicPattern pattern) {
    control_.fill(false);
    switch (pattern) {
        case TbicPattern::kIsolate:
            break;
        case TbicPattern::kConnect:
            control_[static_cast<std::size_t>(TbicSwitch::kS1)] = true;
            control_[static_cast<std::size_t>(TbicSwitch::kS2)] = true;
            break;
        case TbicPattern::kCharHighLow:
            control_[static_cast<std::size_t>(TbicSwitch::kS3)] = true;
            control_[static_cast<std::size_t>(TbicSwitch::kS6)] = true;
            break;
        case TbicPattern::kCharLowHigh:
            control_[static_cast<std::size_t>(TbicSwitch::kS4)] = true;
            control_[static_cast<std::size_t>(TbicSwitch::kS5)] = true;
            break;
    }
    apply(instruction_);
}

}  // namespace rfabm::jtag
