// IEEE 1149.1 TAP controller: state machine + instruction register + data
// register routing.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "jtag/fault_hook.hpp"
#include "jtag/instructions.hpp"
#include "jtag/registers.hpp"
#include "jtag/tap_state.hpp"

namespace rfabm::jtag {

/// The TAP controller of one device.  clock() models one TCK rising edge;
/// the returned bit is TDO during shift states (high-Z is modelled as true,
/// the pulled-up idle level).
class TapController {
  public:
    /// @p idcode is the 32-bit device ID (LSB forced to 1).
    explicit TapController(std::uint32_t idcode);

    /// Route @p instruction to @p reg during DR scans.  Unrouted instructions
    /// select the bypass register (the standard's required fallback).
    void route(Instruction instruction, TapRegister* reg);

    /// Callback fired at Update-IR and at Test-Logic-Reset with the instruction
    /// taking effect; the chip model uses this to apply ABM/TBIC mode changes.
    void on_instruction(std::function<void(Instruction)> hook) { hook_ = std::move(hook); }

    /// Asynchronous reset (TRST* or power-up): Test-Logic-Reset, IDCODE active.
    void reset();

    /// One TCK rising edge with the given TMS/TDI; returns TDO.
    bool clock(bool tms, bool tdi);

    TapState state() const { return state_; }
    Instruction instruction() const { return instruction_; }
    IdcodeRegister& idcode_register() { return idcode_; }
    BypassRegister& bypass_register() { return bypass_; }

  private:
    TapRegister& active_dr();

    TapState state_ = TapState::kTestLogicReset;
    Instruction instruction_ = Instruction::kIdcode;
    std::uint8_t ir_shift_ = 0;
    IdcodeRegister idcode_;
    BypassRegister bypass_;
    std::unordered_map<std::uint8_t, TapRegister*> routes_;
    std::function<void(Instruction)> hook_;
};

/// Host-side convenience driver: wraps a TapController with the multi-clock
/// sequences a test program actually uses (move to state, scan IR/DR).
class TapDriver {
  public:
    explicit TapDriver(TapController& tap) : tap_(tap) {}

    /// Clock TMS=1 five times: guaranteed Test-Logic-Reset from any state.
    void reset_via_tms();

    /// Navigate to @p target using the canonical shortest TMS path.
    void go_to(TapState target);

    /// Scan @p bits (LSB first) through the IR and latch; returns the
    /// captured IR content shifted out.
    std::uint8_t scan_ir(std::uint8_t value);

    /// Load an instruction (scan_ir of its opcode).
    void load(Instruction instruction) { scan_ir(opcode(instruction)); }

    /// Scan @p bits through the selected DR (bit 0 first); returns the bits
    /// shifted out (captured register content).
    std::vector<bool> scan_dr(const std::vector<bool>& bits);

    /// Scan a @p width-bit word (LSB first); returns captured word.
    std::uint64_t scan_dr_word(std::uint64_t value, std::size_t width);

    /// Read the 32-bit IDCODE via the IDCODE instruction.
    std::uint32_t read_idcode();

    /// Number of TCK cycles issued so far (for benchmarks).
    std::uint64_t tck_count() const { return tck_count_; }

    /// Install (or clear, with nullptr) a fault model on the TCK/TDI/TDO
    /// wiring between this driver and the device.  Not owned.
    void set_fault_hook(ScanFaultHook* hook) { fault_hook_ = hook; }
    ScanFaultHook* fault_hook() const { return fault_hook_; }

  private:
    bool clock(bool tms, bool tdi);

    TapController& tap_;
    std::uint64_t tck_count_ = 0;
    ScanFaultHook* fault_hook_ = nullptr;
};

}  // namespace rfabm::jtag
