// Test data registers: bypass, device-ID and the boundary register.
//
// The boundary register is a chain of cells, each with a capture stage (shift
// path) and an update latch (parallel output).  Cells carry callbacks instead
// of hard-wired pins so the same register serves digital boundary cells, the
// ABM switch-control cells and the TBIC control cells: capture reads any
// chip state (including a comparator digitizing an analog pin) and update
// drives any chip control (including analog switches).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rfabm::jtag {

/// Interface the TAP controller uses to operate the selected data register.
class TapRegister {
  public:
    virtual ~TapRegister() = default;
    /// Register length in bits.
    virtual std::size_t length() const = 0;
    /// Capture-DR: load the shift stage from parallel inputs.
    virtual void capture() = 0;
    /// Shift-DR: shift one bit; @p tdi enters, the bit nearest TDO leaves.
    virtual bool shift(bool tdi) = 0;
    /// Update-DR: transfer the shift stage into the update latches.
    virtual void update() = 0;
};

/// Mandatory 1-bit bypass register; captures 0.
class BypassRegister : public TapRegister {
  public:
    std::size_t length() const override { return 1; }
    void capture() override { bit_ = false; }
    bool shift(bool tdi) override {
        const bool out = bit_;
        bit_ = tdi;
        return out;
    }
    void update() override {}

  private:
    bool bit_ = false;
};

/// 32-bit device identification register (LSB must be 1 per the standard).
class IdcodeRegister : public TapRegister {
  public:
    explicit IdcodeRegister(std::uint32_t idcode) : idcode_(idcode | 1u) {}

    std::size_t length() const override { return 32; }
    void capture() override { shift_ = idcode_; }
    bool shift(bool tdi) override {
        const bool out = (shift_ & 1u) != 0;
        shift_ = (shift_ >> 1) | (static_cast<std::uint32_t>(tdi) << 31);
        return out;
    }
    void update() override {}

    std::uint32_t idcode() const { return idcode_; }

  private:
    std::uint32_t idcode_;
    std::uint32_t shift_ = 0;
};

/// One boundary-register cell.
struct BoundaryCell {
    std::string name;
    /// Capture-DR source; nullptr captures the current update latch.
    std::function<bool()> capture;
    /// Update-DR sink; nullptr keeps the latch internal.
    std::function<void(bool)> update;
};

/// The boundary register: cell 0 is nearest TDO (shifted out first).
class BoundaryRegister : public TapRegister {
  public:
    /// Append a cell; returns its index.
    std::size_t add_cell(BoundaryCell cell);

    std::size_t length() const override { return cells_.size(); }
    void capture() override;
    bool shift(bool tdi) override;
    void update() override;

    /// Latched (update-stage) value of cell @p index.
    bool latched(std::size_t index) const { return latch_.at(index); }
    /// Directly set a latch (used to model power-on defaults / TRST).
    void set_latched(std::size_t index, bool value);
    /// Shift-stage value (for tests).
    bool staged(std::size_t index) const { return stage_.at(index); }
    const std::string& cell_name(std::size_t index) const { return cells_.at(index).name; }

    /// Reset all latches to 0 and re-run update sinks (Test-Logic-Reset).
    void reset_latches();

  private:
    std::vector<BoundaryCell> cells_;
    std::vector<char> stage_;
    std::vector<char> latch_;
};

}  // namespace rfabm::jtag
