#include "jtag/abm.hpp"

namespace rfabm::jtag {

using circuit::Switch;

AnalogBoundaryModule::AnalogBoundaryModule(std::string name, circuit::Circuit& circuit,
                                           const AbmNodes& nodes, double digitizer_threshold,
                                           double ron)
    : name_(std::move(name)), nodes_(nodes), threshold_(digitizer_threshold) {
    auto make = [&](AbmSwitch which, const char* suffix, circuit::NodeId a, circuit::NodeId b) {
        switches_[static_cast<std::size_t>(which)] =
            &circuit.add<Switch>(name_ + "." + suffix, a, b, ron);
    };
    make(AbmSwitch::kSD, "SD", nodes.pin, nodes.core);
    make(AbmSwitch::kSH, "SH", nodes.pin, nodes.vh);
    make(AbmSwitch::kSL, "SL", nodes.pin, nodes.vl);
    make(AbmSwitch::kSG, "SG", nodes.pin, nodes.vg);
    make(AbmSwitch::kSB1, "SB1", nodes.pin, nodes.ab1);
    make(AbmSwitch::kSB2, "SB2", nodes.pin, nodes.ab2);
    apply(Instruction::kIdcode);  // power-up: mission mode
}

std::size_t AnalogBoundaryModule::register_cells(BoundaryRegister& reg) {
    const std::size_t first = reg.add_cell({name_ + ".D", [this] { return digitize(); },
                                            [this](bool v) {
                                                d_ = v;
                                                apply(instruction_);
                                            }});
    reg.add_cell({name_ + ".E", nullptr, [this](bool v) {
                      e_ = v;
                      apply(instruction_);
                  }});
    reg.add_cell({name_ + ".G", nullptr, [this](bool v) {
                      g_ = v;
                      apply(instruction_);
                  }});
    reg.add_cell({name_ + ".B1", nullptr, [this](bool v) {
                      b1_ = v;
                      apply(instruction_);
                  }});
    reg.add_cell({name_ + ".B2", nullptr, [this](bool v) {
                      b2_ = v;
                      apply(instruction_);
                  }});
    return first;
}

bool AnalogBoundaryModule::digitize() const {
    if (!probe_) return false;
    return probe_(nodes_.pin) > threshold_;
}

void AnalogBoundaryModule::apply(Instruction instruction) {
    instruction_ = instruction;
    bool sd = false;
    bool sh = false;
    bool sl = false;
    bool sg = false;
    bool sb1 = false;
    bool sb2 = false;
    switch (instruction) {
        case Instruction::kExtest:
        case Instruction::kIntest:
        case Instruction::kClamp:
            sd = false;
            sh = e_ && d_;
            sl = e_ && !d_;
            sg = g_;
            sb1 = b1_;
            sb2 = b2_;
            break;
        case Instruction::kProbe:
            sd = true;  // mission path undisturbed — the 1149.4 PROBE property
            sb1 = b1_;
            sb2 = b2_;
            break;
        case Instruction::kHighz:
            break;  // everything open
        default:  // BYPASS, IDCODE, SAMPLE/PRELOAD: mission mode
            sd = true;
            break;
    }
    switch_dev(AbmSwitch::kSD).set_closed(sd);
    switch_dev(AbmSwitch::kSH).set_closed(sh);
    switch_dev(AbmSwitch::kSL).set_closed(sl);
    switch_dev(AbmSwitch::kSG).set_closed(sg);
    switch_dev(AbmSwitch::kSB1).set_closed(sb1);
    switch_dev(AbmSwitch::kSB2).set_closed(sb2);
}

}  // namespace rfabm::jtag
