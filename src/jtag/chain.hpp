// Multi-device scan chains.
//
// On a board, every 1149.x device shares TCK/TMS while TDI/TDO daisy-chain:
// the host's TDI enters device 0, device 0's TDO feeds device 1's TDI, and
// the last device's TDO returns to the host.  ScanChain models that wiring;
// ChainDriver layers the host-side procedures on top (concatenated IR scans,
// per-device DR access with the other devices in BYPASS) — the machinery a
// boundary-scan interconnect test uses.
#pragma once

#include <cstdint>
#include <vector>

#include "jtag/fault_hook.hpp"
#include "jtag/tap.hpp"

namespace rfabm::jtag {

/// The board wiring: broadcast TMS/TCK, daisy-chained TDI/TDO.
class ScanChain {
  public:
    /// Append a device; device 0 is nearest the host TDI.
    void add_device(TapController& tap) { devices_.push_back(&tap); }

    std::size_t size() const { return devices_.size(); }
    TapController& device(std::size_t i) { return *devices_.at(i); }

    /// One TCK edge on the whole chain; returns the host-side TDO (the last
    /// device's output).
    bool clock(bool tms, bool tdi);

    /// All devices reset (TRST*).
    void reset();

  private:
    std::vector<TapController*> devices_;
};

/// Host-side driver for a chain.
class ChainDriver {
  public:
    explicit ChainDriver(ScanChain& chain) : chain_(chain) {}

    /// Five TMS-high clocks: every device to Test-Logic-Reset.
    void reset_via_tms();

    /// Navigate every device's FSM (they move in lock-step).
    void go_to(TapState target);

    /// Load one instruction per device (index order = chain order).  The IR
    /// chain concatenates with device 0 nearest TDI, so device 0's bits are
    /// shifted in last.
    void load(const std::vector<Instruction>& instructions);

    /// Scan a DR bit vector per device (same ordering convention); returns
    /// the captured bits per device.  Every device must have a DR selected
    /// whose length matches the given vector (use BYPASS + a 1-bit vector
    /// for devices not under test).
    std::vector<std::vector<bool>> scan_dr(const std::vector<std::vector<bool>>& bits);

    /// Read every device's IDCODE in one DR scan (all devices select IDCODE
    /// after reset).
    std::vector<std::uint32_t> read_idcodes();

    std::uint64_t tck_count() const { return tck_count_; }

    /// Install (or clear) a fault model on the host-side chain wiring: TDI
    /// corruption hits the first device, TDO corruption the returned bit.
    void set_fault_hook(ScanFaultHook* hook) { fault_hook_ = hook; }
    ScanFaultHook* fault_hook() const { return fault_hook_; }

  private:
    bool clock(bool tms, bool tdi);

    ScanChain& chain_;
    std::uint64_t tck_count_ = 0;
    ScanFaultHook* fault_hook_ = nullptr;
};

}  // namespace rfabm::jtag
