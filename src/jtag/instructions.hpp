// IEEE 1149.1/1149.4 instruction set.
//
// The opcodes are implementation-defined by the standard except BYPASS (all
// ones) and EXTEST (all zeros).  PROBE is the instruction IEEE 1149.4 adds and
// mandates: it connects selected pins to the internal analog buses *without*
// disturbing the mission-mode signal path — exactly what the paper relies on
// to read detector outputs while the RF input stays connected.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rfabm::jtag {

/// Instruction register width for all devices in this library.
inline constexpr std::size_t kIrLength = 8;

/// Supported instructions.
enum class Instruction : std::uint8_t {
    kExtest = 0x00,          ///< drive/sense pins from the boundary register
    kSamplePreload = 0x01,   ///< snapshot pins / preload boundary cells
    kIdcode = 0x02,          ///< select the 32-bit device identification register
    kClamp = 0x03,           ///< pins held from boundary, bypass selected
    kHighz = 0x04,           ///< pins released, bypass selected
    kProbe = 0x05,           ///< 1149.4: analog probe via AB1/AB2, core stays connected
    kIntest = 0x06,          ///< drive core-side from the boundary register
    kBypass = 0xFF,          ///< 1-bit bypass register (mandatory all-ones opcode)
};

/// Decode a raw IR value.  Unknown opcodes select BYPASS per the standard.
Instruction decode_instruction(std::uint8_t raw);

/// Raw opcode of an instruction.
inline std::uint8_t opcode(Instruction i) { return static_cast<std::uint8_t>(i); }

/// Human-readable name.
std::string_view to_string(Instruction i);

/// True if the boundary register is the selected data register.
bool selects_boundary(Instruction i);

/// True if the ABM switch network follows the latched boundary control word
/// (test modes) rather than forced mission mode.
bool is_analog_test_mode(Instruction i);

}  // namespace rfabm::jtag
