// IEEE 1149.1 TAP controller state machine.
//
// The 16-state machine is fully specified by the standard's state diagram;
// next_tap_state() encodes every TMS-driven transition.  The 1149.4 test flow
// in this library drives the same machine — the mixed-signal standard reuses
// the digital TAP unchanged.
#pragma once

#include <cstdint>
#include <string_view>

namespace rfabm::jtag {

/// The 16 TAP controller states of IEEE 1149.1.
enum class TapState : std::uint8_t {
    kTestLogicReset,
    kRunTestIdle,
    kSelectDrScan,
    kCaptureDr,
    kShiftDr,
    kExit1Dr,
    kPauseDr,
    kExit2Dr,
    kUpdateDr,
    kSelectIrScan,
    kCaptureIr,
    kShiftIr,
    kExit1Ir,
    kPauseIr,
    kExit2Ir,
    kUpdateIr,
};

/// State after one TCK rising edge with the given TMS level.
TapState next_tap_state(TapState current, bool tms);

/// Human-readable state name (for logs and tests).
std::string_view to_string(TapState state);

}  // namespace rfabm::jtag
