#include "jtag/tap.hpp"

#include <array>
#include <stdexcept>

namespace rfabm::jtag {

TapController::TapController(std::uint32_t idcode) : idcode_(idcode) {
    route(Instruction::kIdcode, &idcode_);
    reset();
}

void TapController::route(Instruction instruction, TapRegister* reg) {
    routes_[opcode(instruction)] = reg;
}

void TapController::reset() {
    state_ = TapState::kTestLogicReset;
    instruction_ = Instruction::kIdcode;  // devices with IDCODE select it at reset
    ir_shift_ = 0;
    if (hook_) hook_(instruction_);
}

TapRegister& TapController::active_dr() {
    const auto it = routes_.find(opcode(instruction_));
    if (it != routes_.end() && it->second != nullptr) return *it->second;
    return bypass_;
}

bool TapController::clock(bool tms, bool tdi) {
    bool tdo = true;  // TDO idles high (pull-up) outside shift states

    // Shift happens on the rising edge while *in* a shift state; the same
    // edge that exits to Exit1 shifts the final bit.
    if (state_ == TapState::kShiftDr) {
        tdo = active_dr().shift(tdi);
    } else if (state_ == TapState::kShiftIr) {
        tdo = (ir_shift_ & 1u) != 0;
        ir_shift_ = static_cast<std::uint8_t>((ir_shift_ >> 1) |
                                              (static_cast<std::uint8_t>(tdi) << (kIrLength - 1)));
    }

    const TapState next = next_tap_state(state_, tms);

    // Entry actions.
    switch (next) {
        case TapState::kCaptureDr:
            active_dr().capture();
            break;
        case TapState::kCaptureIr:
            ir_shift_ = 0b01;  // mandatory capture pattern ...01
            break;
        case TapState::kUpdateDr:
            active_dr().update();
            break;
        case TapState::kUpdateIr:
            instruction_ = decode_instruction(ir_shift_);
            if (hook_) hook_(instruction_);
            break;
        case TapState::kTestLogicReset:
            if (state_ != TapState::kTestLogicReset) {
                instruction_ = Instruction::kIdcode;
                if (hook_) hook_(instruction_);
            }
            break;
        default:
            break;
    }
    state_ = next;
    return tdo;
}

// ------------------------------------------------------------------ driver

bool TapDriver::clock(bool tms, bool tdi) {
    ++tck_count_;
    if (fault_hook_ != nullptr) {
        // A swallowed edge never reaches the device; the host sees the TDO
        // pull-up and carries on, its notion of the FSM now stale.
        if (fault_hook_->drop_edge()) return true;
        return fault_hook_->corrupt_tdo(tap_.clock(tms, fault_hook_->corrupt_tdi(tdi)));
    }
    return tap_.clock(tms, tdi);
}

void TapDriver::reset_via_tms() {
    for (int i = 0; i < 5; ++i) clock(true, false);
}

void TapDriver::go_to(TapState target) {
    // BFS over the 16-state graph; ties prefer TMS=0 (explored first).  The
    // states traversed perform their physical actions, exactly as on real
    // hardware.
    if (tap_.state() == target) return;
    constexpr int kNumStates = 16;
    std::array<int, kNumStates> prev_state{};
    std::array<int, kNumStates> prev_tms{};
    prev_state.fill(-1);
    const int start = static_cast<int>(tap_.state());
    const int goal = static_cast<int>(target);
    std::array<int, kNumStates> queue{};
    int head = 0;
    int tail = 0;
    queue[tail++] = start;
    prev_state[start] = start;
    while (head < tail) {
        const int s = queue[head++];
        if (s == goal) break;
        for (int tms = 0; tms <= 1; ++tms) {
            const int n = static_cast<int>(next_tap_state(static_cast<TapState>(s), tms != 0));
            if (prev_state[n] == -1) {
                prev_state[n] = s;
                prev_tms[n] = tms;
                queue[tail++] = n;
            }
        }
    }
    if (prev_state[goal] == -1) throw std::logic_error("TAP state unreachable");
    // Reconstruct the TMS sequence.
    std::array<int, kNumStates> path{};
    int len = 0;
    for (int s = goal; s != start; s = prev_state[s]) path[len++] = prev_tms[s];
    for (int i = len - 1; i >= 0; --i) clock(path[i] != 0, false);
}

std::uint8_t TapDriver::scan_ir(std::uint8_t value) {
    go_to(TapState::kShiftIr);
    std::uint8_t captured = 0;
    for (std::size_t i = 0; i < kIrLength; ++i) {
        const bool last = i + 1 == kIrLength;
        const bool out = clock(last, ((value >> i) & 1u) != 0);
        captured |= static_cast<std::uint8_t>(out) << i;
    }
    go_to(TapState::kRunTestIdle);  // passes Update-IR
    return captured;
}

std::vector<bool> TapDriver::scan_dr(const std::vector<bool>& bits) {
    go_to(TapState::kShiftDr);
    std::vector<bool> captured;
    captured.reserve(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const bool last = i + 1 == bits.size();
        captured.push_back(clock(last, bits[i]));
    }
    go_to(TapState::kRunTestIdle);  // passes Update-DR
    return captured;
}

std::uint64_t TapDriver::scan_dr_word(std::uint64_t value, std::size_t width) {
    if (width > 64) throw std::invalid_argument("scan_dr_word: width > 64");
    std::vector<bool> bits(width);
    for (std::size_t i = 0; i < width; ++i) bits[i] = ((value >> i) & 1u) != 0;
    const std::vector<bool> captured = scan_dr(bits);
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < width; ++i) {
        if (captured[i]) out |= 1ull << i;
    }
    return out;
}

std::uint32_t TapDriver::read_idcode() {
    load(Instruction::kIdcode);
    return static_cast<std::uint32_t>(scan_dr_word(0, 32));
}

}  // namespace rfabm::jtag
