#include "jtag/serial_bus.hpp"

namespace rfabm::jtag {

SerialSelectBus::SerialSelectBus(std::size_t width) : stage_(width, 0), outputs_(width, 0) {
    if (width == 0 || width > 64) {
        throw std::invalid_argument("SerialSelectBus width must be 1..64");
    }
}

void SerialSelectBus::shift_bit(bool bit) {
    ++bit_count_;
    if (fault_hook_ != nullptr) {
        if (fault_hook_->drop_edge()) return;  // lost serial clock: stage holds
        bit = fault_hook_->corrupt_tdi(bit);
    }
    // MSB-first: new bit enters at the top, everything moves down.
    for (std::size_t i = 0; i + 1 < stage_.size(); ++i) stage_[i] = stage_[i + 1];
    stage_.back() = bit ? 1 : 0;
}

void SerialSelectBus::load() {
    outputs_ = stage_;
    for (const auto& sink : sinks_) sink.fn(outputs_[sink.index] != 0);
}

void SerialSelectBus::attach_switch(std::size_t index, circuit::Switch& sw, bool invert) {
    attach(index, [&sw, invert](bool v) { sw.set_closed(invert ? !v : v); });
}

void SerialSelectBus::attach(std::size_t index, std::function<void(bool)> sink) {
    if (index >= outputs_.size()) throw std::out_of_range("SerialSelectBus::attach index");
    sinks_.push_back({index, std::move(sink)});
}

void SerialSelectBus::write_word(std::uint64_t value, std::size_t nbits) {
    if (nbits != width()) throw std::invalid_argument("write_word: nbits must equal width");
    // LSB shifted first so that after nbits clocks output(i) == bit i of value.
    for (std::size_t i = 0; i < nbits; ++i) shift_bit(((value >> i) & 1u) != 0);
    load();
}

}  // namespace rfabm::jtag
