// Fault-injection subsystem: plantable, armable defect models.
//
// A FaultInjector wraps one parameterized flaw somewhere in the chip model —
// circuit level (opens, bridges, drifted values, stuck MOSFET channels),
// switch-matrix level (stuck .4 MUX switches) or scan-chain level (stuck
// TDI/TDO lines, swallowed TCK edges, bit flips).  Disarmed injectors are
// electrically and logically absent, so a chip carrying a dormant fault
// population behaves exactly like a healthy one; arming makes the single
// flaw present.  FaultCampaign (campaign.hpp) arms them one at a time and
// grades the hardened measurement pipeline's response.
#pragma once

#include <string>

namespace rfabm::faults {

/// Taxonomy of injectable defects (docs/faults.md discusses each).
enum class FaultClass {
    kOpen,         ///< series open of a circuit element
    kBridge,       ///< resistive short between two nodes
    kDrift,        ///< passive component value drifted off nominal
    kStuckMosfet,  ///< MOSFET channel stuck off or resistively on
    kStuckSwitch,  ///< analog switch ignoring its control (stuck open/closed)
    kStuckLine,    ///< scan-chain data line stuck at 0 or 1
    kTckGlitch,    ///< test-clock edges swallowed (persistent or burst)
    kBitFlip,      ///< intermittent scan-data bit corruption
    kCrashPoint,   ///< process dies (SIGKILL) at a chosen journal append
    kHangSolver,   ///< transient solver wedges until a watchdog reclaims it
};
const char* to_string(FaultClass fault_class);

/// One plantable defect.  Subclasses implement do_arm()/do_disarm() such
/// that disarm restores healthy behavior exactly.
class FaultInjector {
  public:
    FaultInjector(std::string name, FaultClass fault_class)
        : name_(std::move(name)), fault_class_(fault_class) {}
    virtual ~FaultInjector() = default;

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    const std::string& name() const { return name_; }
    FaultClass fault_class() const { return fault_class_; }
    bool armed() const { return armed_; }

    void arm() {
        if (!armed_) {
            do_arm();
            armed_ = true;
        }
    }
    void disarm() {
        if (armed_) {
            do_disarm();
            armed_ = false;
        }
    }

    /// Human-readable description of the modelled flaw and its parameters.
    virtual std::string describe() const = 0;

  protected:
    virtual void do_arm() = 0;
    virtual void do_disarm() = 0;

  private:
    std::string name_;
    FaultClass fault_class_;
    bool armed_ = false;
};

}  // namespace rfabm::faults
