// Process-level fault injectors: crash points and hung solvers.
//
// Unlike the electrical/scan-chain faults, these model the *test program*
// failing — the kind of trouble the resilience layer (journal + watchdog,
// src/exec/) exists to absorb:
//
//   * CrashPointFault kills the process (SIGKILL, no cleanup, no flush
//     beyond what the journal already did) at a chosen journal append —
//     the exact adversary of crash-safe journaling, used by the
//     kill-and-resume tests and the CI crash-resume smoke job;
//   * HangSolverFault wedges the transient solver mid-measurement by
//     spinning inside a step observer until the attempt's cancellation
//     token fires — the exact adversary of watchdog supervision.
#pragma once

#include <chrono>
#include <cstdint>

#include "circuit/transient.hpp"
#include "exec/calibration_cache.hpp"
#include "exec/journal.hpp"
#include "faults/fault.hpp"

namespace rfabm::faults {

/// SIGKILLs the process when the journal's Nth record is appended.  The
/// record itself is already flushed when the hook runs, so the journal is
/// guaranteed to survive with exactly `crash_after` records — a fully
/// deterministic crash for byte-identity tests.
class CrashPointFault : public FaultInjector {
  public:
    CrashPointFault(rfabm::exec::JournalWriter& writer, std::uint64_t crash_after)
        : FaultInjector("crash-point@" + std::to_string(crash_after), FaultClass::kCrashPoint),
          writer_(writer), crash_after_(crash_after) {}

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    rfabm::exec::JournalWriter& writer_;
    std::uint64_t crash_after_;
};

/// SIGKILLs the process when the calibration cache publishes its Nth freshly
/// computed calibration — the moment a die's tuning is visible to other
/// tasks but no measurement of it is journaled yet.  A resumed campaign must
/// recalibrate (the cache is in-memory) and still converge byte-identically.
class CrashAtCalibrationPublish : public FaultInjector {
  public:
    CrashAtCalibrationPublish(rfabm::exec::CalibrationCache& cache, std::uint64_t crash_after)
        : FaultInjector("crash-cal-publish@" + std::to_string(crash_after),
                        FaultClass::kCrashPoint),
          cache_(cache), crash_after_(crash_after) {}

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    rfabm::exec::CalibrationCache& cache_;
    std::uint64_t crash_after_;
};

/// SIGKILLs the process when the Nth 1149.4 TAP measurement session is
/// opened (process-wide hook on MeasurementController::open_session) — the
/// chip already holds session state (PROBE loaded, TBIC connected, detectors
/// powered) but the session has produced nothing journalable.  The exact
/// boundary where an interrupted cell must be re-run from scratch on resume.
class CrashAtSessionOpen : public FaultInjector {
  public:
    explicit CrashAtSessionOpen(std::uint64_t crash_after)
        : FaultInjector("crash-session-open@" + std::to_string(crash_after),
                        FaultClass::kCrashPoint),
          crash_after_(crash_after) {}

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    static void hook(std::uint64_t opened);
    static std::uint64_t crash_after_armed_;  ///< one armed instance per process

    std::uint64_t crash_after_;
};

/// Wedges @p engine: after the next accepted step, a planted observer spins
/// (sleeping, not burning CPU) until the engine's cancellation token fires —
/// exactly what a solver stuck in a numerical limit cycle looks like to the
/// campaign.  Once the watchdog expires the attempt's deadline the spin
/// exits and the engine's next step() throws SolveAborted.  @p max_hang
/// bounds the spin as a safety net for un-supervised runs (0 = unbounded).
class HangSolverFault : public FaultInjector, private circuit::StepObserver {
  public:
    explicit HangSolverFault(circuit::TransientEngine& engine,
                             std::chrono::nanoseconds max_hang = std::chrono::nanoseconds(0))
        : FaultInjector("hang-solver", FaultClass::kHangSolver), engine_(engine),
          max_hang_(max_hang) {}

    std::string describe() const override;

    /// Times the observer actually wedged a solve (for test assertions).
    std::uint64_t hangs() const { return hangs_; }

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    void on_step(double time, const circuit::Solution& x, circuit::Circuit& circuit) override;

    circuit::TransientEngine& engine_;
    std::chrono::nanoseconds max_hang_;
    std::uint64_t hangs_ = 0;
};

}  // namespace rfabm::faults
