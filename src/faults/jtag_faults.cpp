#include "faults/jtag_faults.hpp"

#include <sstream>

namespace rfabm::faults {

std::string StuckLineFault::describe() const {
    std::ostringstream os;
    os << target_name() << " " << (line_ == Line::kTdi ? "TDI" : "TDO") << " stuck at "
       << (level_ ? 1 : 0);
    return os.str();
}

bool TckGlitchFault::drop_edge() {
    ++edges_;
    if (config_.burst_edges > 0) return edges_ <= config_.burst_edges;
    if (config_.drop_every > 0) return edges_ % config_.drop_every == 0;
    return false;
}

void TckGlitchFault::do_arm() {
    edges_ = 0;
    ScanFaultBase::do_arm();
}

std::string TckGlitchFault::describe() const {
    std::ostringstream os;
    os << target_name() << " TCK ";
    if (config_.burst_edges > 0) {
        os << "glitch burst (" << config_.burst_edges << " edges lost, then heals)";
    } else {
        os << "glitch (1 in " << config_.drop_every << " edges lost)";
    }
    return os.str();
}

void ScanBitFlipFault::do_arm() {
    bits_ = 0;
    ScanFaultBase::do_arm();
}

std::string ScanBitFlipFault::describe() const {
    std::ostringstream os;
    os << target_name() << " TDO bit flip (1 in " << flip_every_ << " bits inverted)";
    return os.str();
}

}  // namespace rfabm::faults
