#include "faults/process_faults.hpp"

#include <csignal>
#include <thread>

#include "core/measurement.hpp"

namespace rfabm::faults {

std::string CrashPointFault::describe() const {
    return "SIGKILL the process after journal record " + std::to_string(crash_after_) +
           " is appended (record is durable, nothing after it is)";
}

void CrashPointFault::do_arm() {
    const std::uint64_t crash_after = crash_after_;
    writer_.set_append_hook([crash_after](std::uint64_t appended) {
        if (appended >= crash_after) {
            // SIGKILL, not exit(): no atexit handlers, no stream flushing,
            // no stack unwinding — the closest a test can get to a power
            // cut while staying deterministic.
            std::raise(SIGKILL);
        }
    });
}

void CrashPointFault::do_disarm() { writer_.set_append_hook(nullptr); }

std::string CrashAtCalibrationPublish::describe() const {
    return "SIGKILL the process when calibration publish " + std::to_string(crash_after_) +
           " lands in the cache (calibration visible, nothing of it journaled)";
}

void CrashAtCalibrationPublish::do_arm() {
    const std::uint64_t crash_after = crash_after_;
    cache_.set_publish_hook([crash_after](std::uint64_t published) {
        if (published >= crash_after) std::raise(SIGKILL);
    });
}

void CrashAtCalibrationPublish::do_disarm() { cache_.set_publish_hook(nullptr); }

std::uint64_t CrashAtSessionOpen::crash_after_armed_ = 0;

std::string CrashAtSessionOpen::describe() const {
    return "SIGKILL the process when TAP session " + std::to_string(crash_after_) +
           " is opened (session state established, nothing of it journaled)";
}

void CrashAtSessionOpen::hook(std::uint64_t opened) {
    if (crash_after_armed_ != 0 && opened >= crash_after_armed_) std::raise(SIGKILL);
}

void CrashAtSessionOpen::do_arm() {
    crash_after_armed_ = crash_after_;
    rfabm::core::MeasurementController::set_session_open_hook(&CrashAtSessionOpen::hook);
}

void CrashAtSessionOpen::do_disarm() {
    crash_after_armed_ = 0;
    rfabm::core::MeasurementController::set_session_open_hook(nullptr);
}

std::string HangSolverFault::describe() const {
    return "transient solver wedges after its next accepted step until the attempt's "
           "cancellation token fires";
}

void HangSolverFault::do_arm() { engine_.add_observer(this); }

void HangSolverFault::do_disarm() { engine_.remove_observer(this); }

void HangSolverFault::on_step(double, const circuit::Solution&, circuit::Circuit&) {
    ++hangs_;
    const auto start = std::chrono::steady_clock::now();
    // Spin-sleep: no heartbeat increments while wedged, so a heartbeat-aware
    // watchdog sees a stall (not slowness) and expires the deadline.
    while (!engine_.options().cancel.stop_requested()) {
        if (max_hang_.count() > 0 &&
            std::chrono::steady_clock::now() - start >= max_hang_) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

}  // namespace rfabm::faults
