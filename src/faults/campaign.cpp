#include "faults/campaign.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace rfabm::faults {

std::size_t CampaignReport::detected_count() const {
    std::size_t n = 0;
    for (const CampaignEntry& e : entries) n += e.detected ? 1 : 0;
    return n;
}

std::size_t CampaignReport::silent_count() const {
    std::size_t n = 0;
    for (const CampaignEntry& e : entries) n += e.silent_corruption ? 1 : 0;
    return n;
}

double CampaignReport::coverage() const {
    if (entries.empty()) return 0.0;
    return static_cast<double>(detected_count()) / static_cast<double>(entries.size());
}

namespace {

void format_entry(std::ostream& os, const CampaignEntry& e) {
    os << std::left << std::setw(26) << e.fault_name << std::setw(14)
       << to_string(e.fault_class) << std::setw(10) << core::to_string(e.status)
       << std::setw(13) << core::to_string(e.suspect) << std::right << std::setw(3)
       << e.retries << "  " << std::setw(8) << std::fixed << std::setprecision(2)
       << e.measured_dbm << "  " << std::setw(7) << std::showpos << e.error_db
       << std::noshowpos << "  " << (e.silent_corruption ? "SILENT!" : e.detected ? "det" : "ok")
       << "\n";
}

}  // namespace

std::string CampaignReport::to_string() const {
    std::ostringstream os;
    os << std::left << std::setw(26) << "fault" << std::setw(14) << "class" << std::setw(10)
       << "status" << std::setw(13) << "suspect" << std::right << std::setw(3) << "try"
       << "  " << std::setw(8) << "dBm" << "  " << std::setw(7) << "err" << "  verdict\n";
    format_entry(os, baseline);
    for (const CampaignEntry& e : entries) format_entry(os, e);
    os << "coverage: " << detected_count() << "/" << entries.size() << " detected, "
       << silent_count() << " silent corruptions\n";
    return os.str();
}

FaultCampaign::FaultCampaign(core::MeasurementController& controller,
                             const rfabm::rf::MonotoneCurve& power_calibration,
                             CampaignStimulus stimulus)
    : controller_(controller), calibration_(power_calibration), stimulus_(stimulus) {}

FaultInjector& FaultCampaign::add(std::unique_ptr<FaultInjector> fault) {
    faults_.push_back(std::move(fault));
    return *faults_.back();
}

CampaignEntry FaultCampaign::run_one(FaultInjector* fault) {
    CampaignEntry entry;
    if (fault != nullptr) {
        entry.fault_name = fault->name();
        entry.fault_class = fault->fault_class();
        entry.description = fault->describe();
    } else {
        entry.fault_name = "(baseline)";
        entry.description = "no fault armed";
    }
    controller_.chip().set_rf(stimulus_.dbm, stimulus_.carrier_hz);
    if (fault != nullptr) fault->arm();
    try {
        const core::PowerMeasurement m = controller_.measure_power_checked(
            calibration_,
            use_expected_ ? std::optional<double>(stimulus_.dbm) : std::nullopt);
        entry.status = m.diag.status;
        entry.suspect = m.diag.suspect;
        entry.retries = m.diag.retries;
        entry.measured_dbm = m.dbm;
        entry.error_db = m.dbm - stimulus_.dbm;
        entry.diagnostics = m.diag.to_string();
    } catch (const std::exception& e) {
        // The checked pipeline is designed not to throw; if something does
        // escape, grade it as a detected failure rather than crash the sweep.
        entry.status = core::MeasurementStatus::kFailed;
        entry.suspect = core::SuspectedFault::kNone;
        entry.diagnostics = std::string("unexpected exception: ") + e.what();
    }
    if (fault != nullptr) fault->disarm();
    entry.detected = entry.status != core::MeasurementStatus::kOk;
    entry.silent_corruption = fault != nullptr &&
                              entry.status == core::MeasurementStatus::kOk &&
                              std::fabs(entry.error_db) > ok_tol_db_;
    return entry;
}

CampaignReport FaultCampaign::run() {
    CampaignReport report;
    report.baseline = run_one(nullptr);
    report.entries.reserve(faults_.size());
    for (const auto& fault : faults_) {
        report.entries.push_back(run_one(fault.get()));
    }
    return report;
}

}  // namespace rfabm::faults
