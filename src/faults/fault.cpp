#include "faults/fault.hpp"

namespace rfabm::faults {

const char* to_string(FaultClass fault_class) {
    switch (fault_class) {
        case FaultClass::kOpen: return "open";
        case FaultClass::kBridge: return "bridge";
        case FaultClass::kDrift: return "drift";
        case FaultClass::kStuckMosfet: return "stuck-mosfet";
        case FaultClass::kStuckSwitch: return "stuck-switch";
        case FaultClass::kStuckLine: return "stuck-line";
        case FaultClass::kTckGlitch: return "tck-glitch";
        case FaultClass::kBitFlip: return "bit-flip";
        case FaultClass::kCrashPoint: return "crash-point";
        case FaultClass::kHangSolver: return "hang-solver";
    }
    return "?";
}

}  // namespace rfabm::faults
