#include "faults/circuit_faults.hpp"

#include <sstream>

namespace rfabm::faults {

OpenDeviceFault::OpenDeviceFault(std::string name, circuit::Resistor& resistor,
                                 double open_ohms)
    : FaultInjector(std::move(name), FaultClass::kOpen),
      resistor_(resistor),
      open_ohms_(open_ohms) {}

void OpenDeviceFault::do_arm() {
    saved_ohms_ = resistor_.nominal();
    resistor_.set_nominal(open_ohms_);
}

void OpenDeviceFault::do_disarm() { resistor_.set_nominal(saved_ohms_); }

std::string OpenDeviceFault::describe() const {
    std::ostringstream os;
    os << "open " << resistor_.name() << " (" << open_ohms_ << " ohm series break)";
    return os.str();
}

DriftFault::DriftFault(std::string name, circuit::Resistor& resistor, double factor)
    : FaultInjector(std::move(name), FaultClass::kDrift),
      resistor_(resistor),
      factor_(factor) {}

void DriftFault::do_arm() {
    saved_ohms_ = resistor_.nominal();
    resistor_.set_nominal(saved_ohms_ * factor_);
}

void DriftFault::do_disarm() { resistor_.set_nominal(saved_ohms_); }

std::string DriftFault::describe() const {
    std::ostringstream os;
    os << resistor_.name() << " drifted x" << factor_ << " off nominal";
    return os.str();
}

BridgeFault::BridgeFault(std::string name, circuit::BridgeDefect& defect)
    : FaultInjector(std::move(name), FaultClass::kBridge), defect_(defect) {}

void BridgeFault::do_arm() { defect_.arm(); }

void BridgeFault::do_disarm() { defect_.disarm(); }

std::string BridgeFault::describe() const {
    std::ostringstream os;
    os << "bridge " << defect_.name() << " (" << defect_.ohms() << " ohm short)";
    return os.str();
}

StuckSwitchFault::StuckSwitchFault(std::string name, circuit::Switch& sw,
                                   circuit::SwitchFault mode)
    : FaultInjector(std::move(name), FaultClass::kStuckSwitch), switch_(sw), mode_(mode) {}

void StuckSwitchFault::do_arm() { switch_.set_fault(mode_); }

void StuckSwitchFault::do_disarm() { switch_.set_fault(circuit::SwitchFault::kNone); }

std::string StuckSwitchFault::describe() const {
    std::ostringstream os;
    os << switch_.name() << " stuck "
       << (mode_ == circuit::SwitchFault::kStuckOpen ? "open" : "closed");
    return os.str();
}

StuckMosfetFault::StuckMosfetFault(std::string name, circuit::Mosfet& fet,
                                   circuit::MosfetFault mode, double stuck_on_ohms)
    : FaultInjector(std::move(name), FaultClass::kStuckMosfet),
      fet_(fet),
      mode_(mode),
      stuck_on_ohms_(stuck_on_ohms) {}

void StuckMosfetFault::do_arm() { fet_.set_fault(mode_, stuck_on_ohms_); }

void StuckMosfetFault::do_disarm() { fet_.set_fault(circuit::MosfetFault::kNone); }

std::string StuckMosfetFault::describe() const {
    std::ostringstream os;
    os << fet_.name() << " channel stuck "
       << (mode_ == circuit::MosfetFault::kStuckOff ? "off" : "on");
    if (mode_ == circuit::MosfetFault::kStuckOn) os << " (" << stuck_on_ohms_ << " ohm)";
    return os.str();
}

}  // namespace rfabm::faults
