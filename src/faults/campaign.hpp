// Fault-detection campaign: arm one defect at a time, run the hardened
// measurement pipeline against a known stimulus, grade the verdicts.
//
// Semantics mirror production test: the campaign knows the applied stimulus
// (the "expected value" the tester programmed into the generator), so a
// fault is *detected* when the pipeline reports anything other than a clean
// Ok, and *silent corruption* is the one outcome that must never happen — an
// Ok verdict whose converted value is wrong by more than the Ok tolerance.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "faults/fault.hpp"

namespace rfabm::faults {

/// The known stimulus applied while each fault is armed.
struct CampaignStimulus {
    double dbm = -20.0;         ///< RF power into the 50-ohm pin
    double carrier_hz = 1.5e9;  ///< RF carrier
};

/// One graded campaign run (one fault, or the healthy baseline).
struct CampaignEntry {
    std::string fault_name;
    FaultClass fault_class = FaultClass::kOpen;
    std::string description;         ///< injector's describe()
    core::MeasurementStatus status = core::MeasurementStatus::kOk;
    core::SuspectedFault suspect = core::SuspectedFault::kNone;
    int retries = 0;
    double measured_dbm = 0.0;
    double error_db = 0.0;           ///< measured - applied
    bool detected = false;           ///< verdict was not a clean Ok
    bool silent_corruption = false;  ///< Ok verdict but the answer is wrong
    std::string diagnostics;         ///< full MeasurementDiagnostics line
};

/// Campaign outcome: baseline + one entry per fault.
struct CampaignReport {
    CampaignEntry baseline;
    std::vector<CampaignEntry> entries;

    std::size_t detected_count() const;
    std::size_t silent_count() const;
    /// Fraction of injected faults the pipeline flagged.
    double coverage() const;
    /// Formatted multi-line report (table + summary).
    std::string to_string() const;
};

/// Owns a fault population and runs the detection campaign over it.
class FaultCampaign {
  public:
    FaultCampaign(core::MeasurementController& controller,
                  const rfabm::rf::MonotoneCurve& power_calibration,
                  CampaignStimulus stimulus = {});

    /// Add a fault to the population; returns it for parameter access.
    FaultInjector& add(std::unique_ptr<FaultInjector> fault);

    std::size_t size() const { return faults_.size(); }

    /// Change the applied stimulus (e.g. to sweep the same population over
    /// several power levels).
    void set_stimulus(CampaignStimulus stimulus) { stimulus_ = stimulus; }
    const CampaignStimulus& stimulus() const { return stimulus_; }

    /// |error| bound for an Ok verdict to count as correct (default 1 dB).
    void set_ok_tolerance_db(double db) { ok_tol_db_ = db; }
    /// Enable/disable the expected-stimulus cross-check (default on).
    void set_use_expected(bool use) { use_expected_ = use; }

    /// Run the healthy baseline, then every fault (armed one at a time,
    /// always disarmed afterwards).  Never lets an exception escape a run:
    /// a throwing measurement becomes a Failed entry.
    CampaignReport run();

  private:
    CampaignEntry run_one(FaultInjector* fault);

    core::MeasurementController& controller_;
    const rfabm::rf::MonotoneCurve& calibration_;
    CampaignStimulus stimulus_;
    double ok_tol_db_ = 1.0;
    bool use_expected_ = true;
    std::vector<std::unique_ptr<FaultInjector>> faults_;
};

}  // namespace rfabm::faults
