// Circuit-level fault injectors: defects planted in the MNA stamp path.
//
// Opens and drifts are modelled on the existing element (MNA cannot cut a
// connection after the netlist is built, so an "open" resistor is driven to
// an open-circuit value); bridges are armable BridgeDefect devices planted
// alongside the healthy netlist; stuck switches and MOSFETs use the fault
// states of the device models themselves.
#pragma once

#include "circuit/devices/defects.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/switch_device.hpp"
#include "faults/fault.hpp"

namespace rfabm::faults {

/// Series open of a resistor (cracked via, lifted bond): its nominal value
/// is driven to an open-circuit level while armed.
class OpenDeviceFault : public FaultInjector {
  public:
    OpenDeviceFault(std::string name, circuit::Resistor& resistor, double open_ohms = 1e12);

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    circuit::Resistor& resistor_;
    double open_ohms_;
    double saved_ohms_ = 0.0;
};

/// Passive value drifted off nominal (aging, trim error, contamination):
/// nominal value multiplied by @p factor while armed.
class DriftFault : public FaultInjector {
  public:
    DriftFault(std::string name, circuit::Resistor& resistor, double factor);

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    circuit::Resistor& resistor_;
    double factor_;
    double saved_ohms_ = 0.0;
};

/// Resistive short between two nodes; drives a BridgeDefect already planted
/// in the circuit (the defect device is owned by the Circuit, as all devices
/// are — this injector only arms and disarms it).
class BridgeFault : public FaultInjector {
  public:
    BridgeFault(std::string name, circuit::BridgeDefect& defect);

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    circuit::BridgeDefect& defect_;
};

/// Analog switch ignoring its control line: stuck open or stuck closed.
class StuckSwitchFault : public FaultInjector {
  public:
    StuckSwitchFault(std::string name, circuit::Switch& sw, circuit::SwitchFault mode);

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    circuit::Switch& switch_;
    circuit::SwitchFault mode_;
};

/// MOSFET channel stuck off (open channel) or resistively on.
class StuckMosfetFault : public FaultInjector {
  public:
    StuckMosfetFault(std::string name, circuit::Mosfet& fet, circuit::MosfetFault mode,
                     double stuck_on_ohms = 50.0);

    std::string describe() const override;

  protected:
    void do_arm() override;
    void do_disarm() override;

  private:
    circuit::Mosfet& fet_;
    circuit::MosfetFault mode_;
    double stuck_on_ohms_;
};

}  // namespace rfabm::faults
