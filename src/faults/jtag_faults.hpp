// Scan-chain and serial-bus fault injectors.
//
// Each injector is simultaneously a FaultInjector (arm/disarm lifecycle) and
// a jtag::ScanFaultHook (the wiring-defect model the TAP driver and the
// serial select bus consult on every clock).  Arming installs the hook on
// the target; disarming removes it, restoring healthy wiring.
#pragma once

#include "faults/fault.hpp"
#include "jtag/fault_hook.hpp"
#include "jtag/serial_bus.hpp"
#include "jtag/tap.hpp"

namespace rfabm::faults {

/// Common install/remove plumbing: the target is either a TapDriver (the
/// 1149.1 scan chain) or a SerialSelectBus (the paper's select bus).
class ScanFaultBase : public FaultInjector, public jtag::ScanFaultHook {
  public:
    ScanFaultBase(std::string name, FaultClass fault_class, jtag::TapDriver& tap)
        : FaultInjector(std::move(name), fault_class), tap_(&tap) {}
    ScanFaultBase(std::string name, FaultClass fault_class, jtag::SerialSelectBus& bus)
        : FaultInjector(std::move(name), fault_class), bus_(&bus) {}

  protected:
    void do_arm() override { install(this); }
    void do_disarm() override { install(nullptr); }
    const char* target_name() const { return tap_ != nullptr ? "TAP" : "select bus"; }

  private:
    void install(jtag::ScanFaultHook* hook) {
        if (tap_ != nullptr) tap_->set_fault_hook(hook);
        if (bus_ != nullptr) bus_->set_fault_hook(hook);
    }

    jtag::TapDriver* tap_ = nullptr;
    jtag::SerialSelectBus* bus_ = nullptr;
};

/// A scan data line stuck at a constant level (shorted to rail, broken
/// driver).  kTdo only exists on the TAP target; the select bus is
/// write-only, so use kTdi there.
class StuckLineFault : public ScanFaultBase {
  public:
    enum class Line { kTdi, kTdo };

    StuckLineFault(std::string name, jtag::TapDriver& tap, Line line, bool level)
        : ScanFaultBase(std::move(name), FaultClass::kStuckLine, tap),
          line_(line),
          level_(level) {}
    StuckLineFault(std::string name, jtag::SerialSelectBus& bus, bool level)
        : ScanFaultBase(std::move(name), FaultClass::kStuckLine, bus),
          line_(Line::kTdi),
          level_(level) {}

    bool corrupt_tdi(bool bit) override { return line_ == Line::kTdi ? level_ : bit; }
    bool corrupt_tdo(bool bit) override { return line_ == Line::kTdo ? level_ : bit; }

    std::string describe() const override;

  private:
    Line line_;
    bool level_;
};

/// Swallowed test-clock edges.  drop_every > 0 models a persistent defect
/// (marginal TCK buffer: every Nth edge lost); burst_edges > 0 models a
/// transient disturbance (the first N edges after arming are lost, then the
/// wiring heals) — the case a session-retry recovers from.
struct TckGlitchConfig {
    unsigned drop_every = 0;
    unsigned burst_edges = 0;
};

class TckGlitchFault : public ScanFaultBase {
  public:
    TckGlitchFault(std::string name, jtag::TapDriver& tap, TckGlitchConfig config)
        : ScanFaultBase(std::move(name), FaultClass::kTckGlitch, tap), config_(config) {}
    TckGlitchFault(std::string name, jtag::SerialSelectBus& bus, TckGlitchConfig config)
        : ScanFaultBase(std::move(name), FaultClass::kTckGlitch, bus), config_(config) {}

    bool drop_edge() override;

    std::string describe() const override;

  protected:
    void do_arm() override;

  private:
    TckGlitchConfig config_;
    unsigned long long edges_ = 0;
};

/// Intermittent scan-data corruption: every Nth TDO bit inverted.
class ScanBitFlipFault : public ScanFaultBase {
  public:
    ScanBitFlipFault(std::string name, jtag::TapDriver& tap, unsigned flip_every)
        : ScanFaultBase(std::move(name), FaultClass::kBitFlip, tap),
          flip_every_(flip_every == 0 ? 1 : flip_every) {}

    bool corrupt_tdo(bool bit) override { return (++bits_ % flip_every_ == 0) ? !bit : bit; }

    std::string describe() const override;

  protected:
    void do_arm() override;

  private:
    unsigned flip_every_;
    unsigned long long bits_ = 0;
};

}  // namespace rfabm::faults
