#include "core/power_detector.hpp"

#include <cmath>

#include "circuit/devices/passive.hpp"

namespace rfabm::core {

using circuit::Capacitor;
using circuit::Mosfet;
using circuit::MosfetParams;
using circuit::NodeId;
using circuit::Resistor;

PowerDetector::PowerDetector(const std::string& prefix, circuit::Circuit& ckt, NodeId vdd,
                             NodeId rf_in, NodeId tune, PowerDetectorParams params)
    : params_(params) {
    vg_ = ckt.node(prefix + ".vg");
    vg_ref_ = ckt.node(prefix + ".vg_ref");
    vout_p_ = ckt.node(prefix + ".voutP");
    vout_n_ = ckt.node(prefix + ".voutN");
    const NodeId mid = ckt.node(prefix + ".mid");
    const NodeId mid_ref = ckt.node(prefix + ".mid_ref");

    const NodeId vb = ckt.node(prefix + ".vb");
    const NodeId vb_ref = ckt.node(prefix + ".vb_ref");

    MosfetParams q1p;
    q1p.w = params.q1_w;
    q1p.l = params.q1_l;
    q1p.kp = params.kp;
    q1p.vt0 = params.vt0;
    q1p.lambda = params.lambda;
    MosfetParams q2p = q1p;
    q2p.w = params.q2_w;
    q2p.l = params.q2_l;
    MosfetParams q5p = q1p;
    q5p.w = params.q5_w;
    q5p.l = params.q5_l;

    // --- signal branch -----------------------------------------------------
    ckt.add<Capacitor>(prefix + ".C1", rf_in, vg_, params.c1);
    // Threshold extractor: vb = VT + vov tracks the die/temperature VT.
    ckt.add<Resistor>(prefix + ".Rb", vdd, vb, params.r_vth_bias);
    ckt.add<Mosfet>(prefix + ".Q5", vb, vb, circuit::kGround, q5p);
    ckt.add<Resistor>(prefix + ".Rbg", vb, vg_, params.r_bg);
    ckt.add<Resistor>(prefix + ".R3", tune, vg_, params.r3);

    q1_ = &ckt.add<Mosfet>(prefix + ".Q1", vout_p_, vg_, circuit::kGround, q1p);
    // Diode-connected load: drain and gate at VDD, source feeding R4.
    q2_ = &ckt.add<Mosfet>(prefix + ".Q2", vdd, vdd, mid, q2p);
    ckt.add<Resistor>(prefix + ".R4", mid, vout_p_, params.r4);
    ckt.add<Capacitor>(prefix + ".C2", vout_p_, circuit::kGround, params.c2);

    // --- reference branch (no RF) -------------------------------------------
    ckt.add<Resistor>(prefix + ".Rbr", vdd, vb_ref, params.r_vth_bias);
    ckt.add<Mosfet>(prefix + ".Q5r", vb_ref, vb_ref, circuit::kGround, q5p);
    ckt.add<Resistor>(prefix + ".Rbgr", vb_ref, vg_ref_, params.r_bg);
    ckt.add<Resistor>(prefix + ".R7", vg_ref_, circuit::kGround, params.r7);
    ckt.add<Capacitor>(prefix + ".C3", vg_ref_, circuit::kGround, params.c3);

    ckt.add<Mosfet>(prefix + ".Q3", vout_n_, vg_ref_, circuit::kGround, q1p);
    ckt.add<Mosfet>(prefix + ".Q4", vdd, vdd, mid_ref, q2p);
    ckt.add<Resistor>(prefix + ".R8", mid_ref, vout_n_, params.r8);
}

double PowerDetector::analytic_idc(double peak_volts) const {
    // Average of ID = 0.5*beta*(A sin)^2 over the positive half cycle:
    // IDC = beta * A^2 / 8.
    const double beta1 = params_.kp * params_.q1_w / params_.q1_l;
    return beta1 * peak_volts * peak_volts / 8.0;
}

double PowerDetector::analytic_vout(double peak_volts) const {
    const double idc = analytic_idc(peak_volts);
    const double beta2 = params_.kp * params_.q2_w / params_.q2_l;
    return idc * params_.r4 + std::sqrt(2.0 * idc / beta2);
}

}  // namespace rfabm::core
