// The preamplifier of the paper's second ABM structure.
//
// Section 2 of the paper: "the other [ABM] contain[s] preamplifiers, which
// allows the measurement of weaker signals"; section 3 quantifies the effect
// (power range moves from -18...+6 dBm to -25...-3 dBm, frequency-detector
// sensitivity from +5 dBm to -5 dBm) — about 10 dB of voltage gain with
// compression setting in near the top of the range.
//
// Implementation: a single common-source NMOS stage with resistive load,
// AC-coupled input and output, and a signal-free replica branch providing a
// DC reference output that tracks supply/temperature/process — the
// downstream comparator slices against the replica, and the power detector's
// coupling capacitor re-biases the signal anyway.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/mosfet.hpp"

namespace rfabm::core {

/// Component values; defaults give ~8 dB voltage gain on 2.5 V with ~0.7 V
/// of positive output headroom (the comparator hysteresis the frequency path
/// must cross is 0.45 V), which places the preamplified frequency-path
/// sensitivity at the paper's -5 dBm.  The stage is source-degenerated: the
/// gain approaches the resistor ratio RL/RS, so supply/temperature/process
/// move it far less than a bare common-source stage — necessary for the
/// preamplified ABM to hold a usable accuracy over the paper's corners.
struct PreamplifierParams {
    double m_w = 120e-6;
    double m_l = 0.5e-6;   ///< W/L = 240 -> beta = 24 mA/V^2 at kp = 100u
    double kp = 100e-6;
    double vt0 = 0.5;
    double lambda = 0.03;
    double rl = 1.5e3;     ///< drain load
    double rs = 270.0;     ///< source degeneration (gain ~ gm*RL/(1+gm*RS))
    double rb1 = 16e3;     ///< VDD -> gate bias
    double rb2 = 9e3;      ///< gate -> GND (bias ~ vt0 + 0.4 V on 2.5 V)
    double cin = 2e-12;    ///< input coupling
    double cload = 30e-15; ///< output node capacitance (bandwidth realism)
};

/// Builds the amplifier; output and replica reference are exposed as nodes.
class Preamplifier {
  public:
    Preamplifier(const std::string& prefix, circuit::Circuit& circuit, circuit::NodeId vdd,
                 circuit::NodeId in, PreamplifierParams params = {});

    circuit::NodeId out() const { return out_; }
    /// Signal-free replica of the output DC level (comparator reference).
    circuit::NodeId ref_out() const { return ref_out_; }
    circuit::NodeId gate() const { return gate_; }
    const PreamplifierParams& params() const { return params_; }
    circuit::Mosfet& transistor() { return *m1_; }

    /// Small-signal voltage gain magnitude gm*RL at the nominal bias.
    double analytic_gain(double vdd) const;

  private:
    PreamplifierParams params_;
    circuit::NodeId gate_{};
    circuit::NodeId out_{};
    circuit::NodeId ref_out_{};
    circuit::Mosfet* m1_ = nullptr;
};

}  // namespace rfabm::core
