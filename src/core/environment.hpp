// Operating conditions for the paper's corner sweeps.
//
// Section 3 of the paper evaluates both detectors over:
//   * supply voltage: 2.5 V +/- 0.25 V (power detector domain) and
//     3.3 V +/- 0.3 V (frequency detector domain),
//   * temperature: -10 C ... +70 C,
//   * process variation (see circuit/process.hpp).
// OperatingConditions bundles the environmental (non-process) axes.
#pragma once

#include <string>
#include <vector>

namespace rfabm::core {

/// Nominal supply levels of the two domains.
inline constexpr double kNominalVddPdet = 2.5;  ///< power-detector domain (V)
inline constexpr double kNominalVddFdet = 3.3;  ///< frequency-detector domain (V)

/// One environmental operating point.
struct OperatingConditions {
    double temperature_c = 27.0;
    double vdd_pdet = kNominalVddPdet;
    double vdd_fdet = kNominalVddFdet;

    /// True for the nominal bench condition.
    bool is_nominal() const {
        return temperature_c == 27.0 && vdd_pdet == kNominalVddPdet &&
               vdd_fdet == kNominalVddFdet;
    }

    /// Short label like "T=-10C V=2.25V" for harness output.
    std::string label() const;
};

/// The paper's environmental corner set: the cross product of
/// temperature {-10, 27, 70} C and supply {-10%, nominal, +10%}, minus
/// redundant combinations — nominal first, then the 8 extreme combinations.
std::vector<OperatingConditions> paper_environment_corners();

/// Just the nominal condition.
OperatingConditions nominal_conditions();

}  // namespace rfabm::core
