#include "core/environment.hpp"

#include <cstdio>

namespace rfabm::core {

std::string OperatingConditions::label() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "T=%+.0fC Vp=%.2fV Vf=%.2fV", temperature_c, vdd_pdet,
                  vdd_fdet);
    return buf;
}

std::vector<OperatingConditions> paper_environment_corners() {
    std::vector<OperatingConditions> out;
    out.push_back(nominal_conditions());
    // Fig. 4/5 captions: supply 2.5 +/- 0.25 V (Pdet), 3.3 +/- 0.3 V (Fdet),
    // temperature -10 ... 70 C.  Supplies of the two domains track (same
    // regulator), so sweep them together.
    for (double t : {-10.0, 70.0}) {
        for (double s : {-1.0, 0.0, 1.0}) {
            OperatingConditions c;
            c.temperature_c = t;
            c.vdd_pdet = kNominalVddPdet + 0.25 * s;
            c.vdd_fdet = kNominalVddFdet + 0.30 * s;
            out.push_back(c);
        }
    }
    // Supply extremes at room temperature.
    for (double s : {-1.0, 1.0}) {
        OperatingConditions c;
        c.vdd_pdet = kNominalVddPdet + 0.25 * s;
        c.vdd_fdet = kNominalVddFdet + 0.30 * s;
        out.push_back(c);
    }
    return out;
}

OperatingConditions nominal_conditions() { return OperatingConditions{}; }

}  // namespace rfabm::core
