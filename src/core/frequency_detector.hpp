// The paper's frequency detector (Fig. 3): a Djemouai-style integrated CMOS
// frequency-to-voltage converter (FVC).
//
// Operating principle (paper eq. 2): a constant current Ic charges C1 during
// the HIGH half-period of the (divided) input square wave; on the falling
// edge the logic control block (LCB) transfers the ramp peak onto C2 and then
// resets C1.  After many periods C2 settles to
//
//   Vc = Ic * (T/2) / C1 = Ic / (2 * C1 * f)
//
// The analog part is built from a current-steering source, three switches and
// two capacitors; the LCB is a mixed-signal logic block sequencing
// charge / transfer / reset off the input clock edges.
//
// Ic is derived from the external tunef voltage through an on-die resistor
// (I = V(tunef) / Rbias), so the 1149.4 bus can trim the converter gain —
// the paper's "tunef" DC calibration.  Rbias carries the process and
// temperature dependence of a real bias network.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/device.hpp"
#include "circuit/mixed/digital.hpp"

namespace rfabm::core {

/// Current source whose output current is v(tune)/R, with R an on-die
/// resistor (process res_factor, linear tempco).  Current flows out of the
/// device into @p out (charging a grounded capacitor positive).
class TunedCurrentSource : public circuit::Device {
  public:
    TunedCurrentSource(std::string name, circuit::NodeId out, circuit::NodeId tune,
                       double r_nominal, double tempco_per_k = 1.0e-3);

    void stamp(circuit::MnaSystem& sys, const circuit::StampContext& ctx) override;
    void stamp_ac(circuit::ComplexMna& sys, double omega, const circuit::Solution& op) override;
    void set_temperature(double temperature_k) override;
    void apply_process(const circuit::ProcessCorner& corner) override;

    /// Effective bias resistance after process and temperature.
    double r_eff() const { return r_eff_; }
    /// Output current for a given tune voltage.
    double current_for(double vtune) const { return vtune / r_eff_; }

    /// Current-source output plus a sense-only tune pin: no DC conduction.
    std::vector<circuit::NodeId> terminals() const override { return {out_, tune_}; }

  private:
    void update();

    circuit::NodeId out_;
    circuit::NodeId tune_;
    double r_nominal_;
    double tempco_;
    double temperature_k_ = circuit::kNominalTemperatureK;
    double res_factor_ = 1.0;
    double r_eff_;
};

/// The FVC logic control block: sequences the charge/transfer/reset switches
/// off the input clock.  While the clock is high the ramp charges; a falling
/// edge triggers a transfer window followed by a reset window.
class FvcLcb : public rfabm::mixed::LogicBlock {
  public:
    /// @p skew_s models the rise/fall delay mismatch of the control logic: a
    /// positive skew keeps the charge switch closed that much longer after
    /// the falling clock edge; a negative skew delays the charge onset after
    /// the rising edge.  Either way the effective charging window becomes
    /// T/2 + skew — a fixed timing error that the single-point tunef gain
    /// trim cannot remove, and the dominant process contribution to the
    /// paper's frequency error at the band edges.
    FvcLcb(rfabm::mixed::SignalId clk, rfabm::mixed::SignalId charge,
           rfabm::mixed::SignalId transfer, rfabm::mixed::SignalId reset, double transfer_s,
           double reset_s, double skew_s = 0.0);

    void tick(rfabm::mixed::DigitalDomain& domain, double time) override;

  private:
    enum class Phase { kIdle, kWaitCharge, kCharge, kChargeTail, kTransfer, kReset };

    rfabm::mixed::SignalId clk_;
    rfabm::mixed::SignalId charge_;
    rfabm::mixed::SignalId transfer_;
    rfabm::mixed::SignalId reset_;
    double transfer_s_;
    double reset_s_;
    double skew_s_;
    Phase phase_ = Phase::kIdle;
    double phase_start_ = 0.0;
};

/// Component values of the frequency detector.  Defaults are sized for the
/// divided band 125-250 MHz (1-2 GHz RF through the f/8 prescaler) on the
/// 3.3 V domain: Vc spans 2.0 V (125 MHz) down to 1.0 V (250 MHz) at the
/// default 100 uA.
struct FrequencyDetectorParams {
    double c1 = 200e-15;        ///< ramp capacitor
    double c2 = 100e-15;        ///< output hold capacitor
    double r_bias = 20e3;       ///< tune-to-current conversion (2.0 V -> 100 uA)
    double r_tempco = 0.6e-3;   ///< Rbias linear tempco (1/K)
    double ron_transfer = 2e3;  ///< transfer switch on-resistance
    double ron_reset = 100.0;   ///< reset switch on-resistance
    double ron_steer = 100.0;   ///< current-steering dump switch
    double transfer_s = 0.4e-9; ///< transfer window after the falling edge
    double reset_s = 0.6e-9;    ///< reset window after transfer
    double charge_skew_s = 0.0; ///< LCB rise/fall mismatch (see FvcLcb)
    double r_load = 10e6;       ///< output sense load (the .4 MUX / bus side)
};

/// Builds the FVC into a circuit + digital domain.
class FrequencyDetector {
  public:
    /// @p clk is the digital input clock signal (from the prescaler or the
    /// direct fin comparator); @p tune the tunef pin node.
    FrequencyDetector(const std::string& prefix, circuit::Circuit& circuit,
                      rfabm::mixed::DigitalDomain& domain, circuit::NodeId tune,
                      rfabm::mixed::SignalId clk, FrequencyDetectorParams params = {});

    circuit::NodeId vout() const { return out_; }
    circuit::NodeId ramp() const { return ramp_; }
    const FrequencyDetectorParams& params() const { return params_; }
    TunedCurrentSource& source() { return *source_; }

    /// Eq. (2) prediction: Vc = I/(2*C1*f) for input clock frequency @p f_hz
    /// and tune voltage @p vtune (nominal parameters).
    double analytic_vout(double f_hz, double vtune) const;

  private:
    FrequencyDetectorParams params_;
    circuit::NodeId ramp_{};
    circuit::NodeId out_{};
    TunedCurrentSource* source_ = nullptr;
};

}  // namespace rfabm::core
