// The measurement controller: the paper's external control unit.
//
// Drives a full 1149.4 measurement session against an RfAbmChip:
//   1. open_session(): TAP reset, PROBE instruction, boundary scan putting
//      the TBIC into the connect pattern (AT1-AB1, AT2-AB2) while the RF-pin
//      ABM keeps its mission path (PROBE's defining property),
//   2. serial select words routing detector outputs / tuning inputs through
//      the .4 MUX,
//   3. tuning-voltage programming through AT2 -> TBIC -> AB2 -> MUX,
//   4. settled DC reads of the ATAP pins (the bench DMM),
//   5. conversion through a calibration curve into dBm / GHz.
#pragma once

#include <cstdint>

#include "core/chip.hpp"
#include "rf/curve.hpp"

namespace rfabm::core {

/// A converted power reading.
struct PowerMeasurement {
    double dbm = 0.0;        ///< estimated input power
    double vout = 0.0;       ///< raw settled detector output (V)
    bool settled = true;     ///< the DC read converged
};

/// A converted frequency reading.
struct FrequencyMeasurement {
    double ghz = 0.0;         ///< estimated input frequency
    double vout = 0.0;        ///< raw settled FVC output (V)
    bool settled = true;
    std::uint64_t edges = 0;  ///< FVC clock activity during the read
    bool valid = false;       ///< edges seen and read settled
};

/// Settle/read tuning knobs.
struct MeasureOptions {
    int cycles_per_window = 12;   ///< averaging window, in stimulus periods
    double rel_tol = 2e-4;
    double abs_tol = 20e-6;
    int max_windows = 600;
    int lookback = 3;             ///< drift check span (windows)
    int freq_cycles_per_window = 8;  ///< window in divided-clock periods
};

/// Drives measurements on one chip instance.
class MeasurementController {
  public:
    explicit MeasurementController(RfAbmChip& chip, MeasureOptions options = {});

    /// TAP + TBIC + select-bus session setup; initializes the transient
    /// engine (DC operating point with the test topology in place).
    void open_session();

    /// Program the .4 MUX select register verbatim (include
    /// SelectBit::kDetectorPower in the word to keep the detectors powered).
    void set_select(std::uint8_t word);

    /// Program a tuning voltage through the analog bus and park it on the
    /// external hold DAC.  Returns the voltage actually latched at the pin.
    double apply_tune_p(double volts);
    double apply_tune_f(double volts);

    /// Settled average of v(AT1) (single-ended read).
    double read_at1();
    /// Settled average of v(AT1) - v(AT2) (differential read).
    double read_diff();

    /// Select the power-detector outputs and read Vout = VoutN - VoutP,
    /// zeroed against the RF-muted tare reading (standard detector bench
    /// practice: the generator is muted once per session to record the
    /// residual offset, which is subtracted from every reading).
    double measure_power_vout();

    /// Re-acquire the tare (RF-muted) reading; invalidated automatically by
    /// tuning changes.
    double tare_power();
    /// Select the FVC output and read it (uses the RF path unless
    /// @p use_fin).
    double measure_freq_vout(bool use_fin = false);

    /// Full conversions through calibration curves (power: dBm -> V curve,
    /// frequency: GHz -> V curve; both inverted here).
    PowerMeasurement measure_power(const rfabm::rf::MonotoneCurve& calibration);
    FrequencyMeasurement measure_frequency(const rfabm::rf::MonotoneCurve& calibration,
                                           bool use_fin = false);

    RfAbmChip& chip() { return chip_; }
    bool session_open() const { return session_open_; }
    const MeasureOptions& options() const { return options_; }

  private:
    double settle_read(circuit::NodeId p, circuit::NodeId n, double period, int cycles,
                       bool* settled);
    double apply_tune(double volts, SelectBit bit, circuit::NodeId pin,
                      void (RfAbmChip::*hold_setter)(double));

    RfAbmChip& chip_;
    MeasureOptions options_;
    bool session_open_ = false;
    std::uint8_t select_ = 0;
    bool last_settled_ = true;
    bool tare_valid_ = false;
    double tare_ = 0.0;
};

}  // namespace rfabm::core
