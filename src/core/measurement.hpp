// The measurement controller: the paper's external control unit.
//
// Drives a full 1149.4 measurement session against an RfAbmChip:
//   1. open_session(): TAP reset, PROBE instruction, boundary scan putting
//      the TBIC into the connect pattern (AT1-AB1, AT2-AB2) while the RF-pin
//      ABM keeps its mission path (PROBE's defining property),
//   2. serial select words routing detector outputs / tuning inputs through
//      the .4 MUX,
//   3. tuning-voltage programming through AT2 -> TBIC -> AB2 -> MUX,
//   4. settled DC reads of the ATAP pins (the bench DMM),
//   5. conversion through a calibration curve into dBm / GHz.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/chip.hpp"
#include "exec/cancellation.hpp"
#include "lint/abm_rules.hpp"
#include "lint/diagnostics.hpp"
#include "rf/curve.hpp"
#include "rf/surrogate/store.hpp"

namespace rfabm::lint::flow {
struct CampaignProgram;
class FlowLintCache;
}  // namespace rfabm::lint::flow

namespace rfabm::core {

/// Overall verdict of a hardened (checked) measurement.
enum class MeasurementStatus {
    kOk,        ///< all integrity and plausibility checks passed first try
    kDegraded,  ///< a value was produced, but only after retries/fallbacks,
                ///< or a plausibility check flags it as untrustworthy
    kFailed,    ///< no trustworthy value could be produced within the budget
    kTimedOut,  ///< a watchdog deadline reclaimed the measurement mid-solve
    kNonFinite, ///< the solver produced NaN/Inf — deterministic, not retried
};
const char* to_string(MeasurementStatus status);

/// Fault class the hardened pipeline suspects when a check trips.
enum class SuspectedFault {
    kNone,         ///< nothing suspicious observed
    kScanChain,    ///< IDCODE readback mismatch (TDI/TDO/TCK wiring)
    kSelectPath,   ///< serial select-bus readback mismatch
    kConvergence,  ///< the circuit solver failed to converge
    kSignalPath,   ///< analog path implausible (dead pin, out-of-range Vout)
    kNonSettling,  ///< the DC read never settled within the window budget
    kConfigLint,   ///< the pre-measurement static lint found hard errors
    kCancelled,    ///< the campaign's cancellation token / deadline fired
    kNonFinite,    ///< the solver produced a NaN/Inf unknown (located in detail)
};
const char* to_string(SuspectedFault fault);

/// Bounded-retry policy of the hardened measurement pipeline.  Backoff is
/// extra simulated settle time inserted before each retry (the bench
/// equivalent of "wait longer and try again"), growing geometrically.
struct RetryPolicy {
    int max_retries = 2;          ///< retries after the first attempt
    double backoff_s = 50e-9;     ///< first retry's extra settle dwell
    double backoff_factor = 2.0;  ///< dwell multiplier per further retry
    double liveness_min_v = 0.1;  ///< min |v(ATAP)| for a live detector pin
    double range_margin = 0.10;   ///< curve-range slack, fraction of y-span
    double expected_tol = 0.20;   ///< expected-value slack, fraction of y-span
};

/// What the hardened pipeline did and concluded: every retry, fallback and
/// suspicion is recorded here instead of being thrown as an exception.
struct MeasurementDiagnostics {
    MeasurementStatus status = MeasurementStatus::kOk;
    SuspectedFault suspect = SuspectedFault::kNone;
    int retries = 0;              ///< attempts beyond the first
    int reopened_sessions = 0;    ///< 1149.4 sessions (re)opened during the read
    double backoff_s_total = 0.0; ///< simulated settle time added by backoff
    bool fallback_used = false;   ///< a degraded-mode fallback produced the value
    std::string fallback;         ///< which fallback succeeded (when used)
    std::string detail;           ///< human-readable description of the finding

    bool ok() const {
        return status == MeasurementStatus::kOk || status == MeasurementStatus::kDegraded;
    }
    /// One-line summary, e.g. for logs and campaign reports.
    std::string to_string() const;
};

/// A converted power reading.
struct PowerMeasurement {
    double dbm = 0.0;        ///< estimated input power
    double vout = 0.0;       ///< raw settled detector output (V)
    bool settled = true;     ///< the DC read converged
    bool from_surrogate = false;    ///< served by the surrogate tier, no solve
    double surrogate_bound = 0.0;   ///< |vout error| bound when served (V)
    MeasurementDiagnostics diag{};  ///< populated by the checked pipeline
};

/// A converted frequency reading.
struct FrequencyMeasurement {
    double ghz = 0.0;         ///< estimated input frequency
    double vout = 0.0;        ///< raw settled FVC output (V)
    bool settled = true;
    std::uint64_t edges = 0;  ///< FVC clock activity during the read
    bool valid = false;       ///< edges seen and read settled
    bool from_surrogate = false;    ///< served by the surrogate tier, no solve
    double surrogate_bound = 0.0;   ///< |vout error| bound when served (V)
    MeasurementDiagnostics diag{};  ///< populated by the checked pipeline
};

/// Read-through binding of a controller to the two-tier surrogate store.
/// When `store` is set, measure_power()/measure_frequency() (and their
/// checked variants) first ask the store for the settled Vout at the current
/// operating point — (Pin dBm, f Hz, VDD) under (die, corner) — and serve a
/// hit without touching the transient solver.  Any non-hit (miss, query
/// outside the fitted envelope, bound over budget) falls back to the full
/// solve, whose settled result is fed back via observe() so the surface
/// (re)fits.  The store outlives the controller (not owned) and is shared
/// across the campaign's workers.
struct SurrogateBinding {
    rf::surrogate::SurrogateStore* store = nullptr;
    std::uint64_t die = 0;     ///< process-identity hash (see exec::hash_corner)
    std::uint64_t corner = 0;  ///< environment hash (temperature etc.)
    /// Completed-generation rule (docs/surrogate.md): a campaign training a
    /// fresh store binds with serve=false — full solves still feed observe(),
    /// but no query is answered from a surface whose envelope this same run
    /// is still extending (a freshly widened envelope edge has no held-out
    /// evidence, so its residual can exceed the published bound).  Serving
    /// turns on when a saved generation — always refit over its full
    /// population before persisting — is loaded.
    bool serve = true;
};

/// Settle/read tuning knobs.
struct MeasureOptions {
    int cycles_per_window = 12;   ///< averaging window, in stimulus periods
    double rel_tol = 2e-4;
    double abs_tol = 20e-6;
    int max_windows = 600;
    int lookback = 3;             ///< drift check span (windows)
    int freq_cycles_per_window = 8;  ///< window in divided-clock periods
    RetryPolicy retry{};          ///< hardened-pipeline retry/backoff knobs
    /// Run the static analyzer (ERC + 1149.4 switch/select rules) after the
    /// session is opened and reject the measurement on hard errors, before
    /// any transient read is attempted.
    bool lint_before_measure = false;
    /// Campaign-level admission: when set, every checked measurement first
    /// runs the flow-sensitive scan-program lint (lint/flow) over this
    /// program and rejects with kConfigLint on flow errors — before the TAP
    /// is touched or any retry budget is spent.  The program outlives the
    /// controller (not owned).
    const lint::flow::CampaignProgram* admission_program = nullptr;
    /// Optional incremental cache for the flow admission, shared across
    /// measurements/controllers so an unchanged program is a hash lookup.
    lint::flow::FlowLintCache* admission_cache = nullptr;
    /// Campaign cancellation/deadline token.  The checked pipeline polls it
    /// before the first attempt and before every retry: once it fires, the
    /// measurement stops early with status kFailed / suspect kCancelled
    /// instead of burning the remaining retry budget.  Default token never
    /// fires.
    exec::CancellationToken cancel{};
    /// Two-tier serving: consult this surrogate store before any transient
    /// solve and feed full-solve results back into it.  Default (null store)
    /// leaves every measurement byte-identical to the pre-surrogate path.
    SurrogateBinding surrogate{};
};

/// The lint-facing description of the paper's ".4 MUX" select word (see
/// core/mux4.hpp for the bit layout).
lint::SelectBusModel mux4_select_model();

/// Drives measurements on one chip instance.
class MeasurementController {
  public:
    explicit MeasurementController(RfAbmChip& chip, MeasureOptions options = {});

    /// TAP + TBIC + select-bus session setup; initializes the transient
    /// engine (DC operating point with the test topology in place).
    void open_session();

    /// Process-wide hook invoked at the end of every open_session(), with a
    /// running session count.  The kCrashPoint fault injector uses it to
    /// kill the process exactly at a TAP session boundary — after the chip
    /// holds session state but before any measurement of the session is
    /// journaled.  Pass nullptr to clear.  Not thread-safe against
    /// concurrent open_session() calls; install before the campaign starts.
    static void set_session_open_hook(void (*hook)(std::uint64_t));

    /// Program the .4 MUX select register verbatim (include
    /// SelectBit::kDetectorPower in the word to keep the detectors powered).
    void set_select(std::uint8_t word);

    /// Program a tuning voltage through the analog bus and park it on the
    /// external hold DAC.  Returns the voltage actually latched at the pin.
    double apply_tune_p(double volts);
    double apply_tune_f(double volts);

    /// Settled average of v(AT1) (single-ended read).
    double read_at1();
    /// Settled average of v(AT1) - v(AT2) (differential read).
    double read_diff();

    /// Select the power-detector outputs and read Vout = VoutN - VoutP,
    /// zeroed against the RF-muted tare reading (standard detector bench
    /// practice: the generator is muted once per session to record the
    /// residual offset, which is subtracted from every reading).
    double measure_power_vout();

    /// Re-acquire the tare (RF-muted) reading; invalidated automatically by
    /// tuning changes.
    double tare_power();
    /// Select the FVC output and read it (uses the RF path unless
    /// @p use_fin).
    double measure_freq_vout(bool use_fin = false);

    /// Full conversions through calibration curves (power: dBm -> V curve,
    /// frequency: GHz -> V curve; both inverted here).
    PowerMeasurement measure_power(const rfabm::rf::MonotoneCurve& calibration);
    FrequencyMeasurement measure_frequency(const rfabm::rf::MonotoneCurve& calibration,
                                           bool use_fin = false);

    // --- hardened pipeline --------------------------------------------------
    // The checked variants never throw on infrastructure trouble.  Each
    // attempt verifies the scan chain (IDCODE readback), re-opens the 1149.4
    // session, reads, verifies the select-bus readback, and sanity-checks the
    // value (pin liveness / calibration range / expected stimulus).  Failures
    // retry with exponential backoff per options().retry; the outcome and
    // every fallback taken land in the result's .diag.

    /// Reset the TAP and verify the IDCODE readback against the chip config.
    /// Leaves the TAP out of PROBE: the session must be re-opened afterwards.
    bool verify_scan_chain();

    /// True when every latched select-bus output matches @p word.
    bool verify_select(std::uint8_t word) const;

    /// Hardened power measurement.  @p expected_dbm (when the applied
    /// stimulus is known, as on a production tester) enables the
    /// expected-value cross-check.
    PowerMeasurement measure_power_checked(const rfabm::rf::MonotoneCurve& calibration,
                                           std::optional<double> expected_dbm = std::nullopt);

    /// Hardened frequency measurement (see measure_power_checked).
    FrequencyMeasurement measure_frequency_checked(
        const rfabm::rf::MonotoneCurve& calibration, bool use_fin = false,
        std::optional<double> expected_ghz = std::nullopt);

    /// The admission guard's static checks for select word @p word: chip ERC,
    /// ABM/TBIC switch-state rules, select-word contention rules, and the
    /// .4-MUX-vs-latched-select cross-check.  Appends to @p report and
    /// returns the number of findings.  Called automatically by the checked
    /// measurements when options().lint_before_measure is set.
    std::size_t lint_preflight(std::uint8_t word, lint::Report& report);

    RfAbmChip& chip() { return chip_; }
    bool session_open() const { return session_open_; }
    const MeasureOptions& options() const { return options_; }

    /// Outcome of this controller's most recent surrogate consultation
    /// (kMiss before any consultation or when no store is bound).  The
    /// bound store's counters() carry the campaign-wide tallies.
    rf::surrogate::Decision last_surrogate_decision() const { return last_surrogate_; }

  private:
    /// Campaign-level flow admission (options().admission_program).  Fills
    /// @p d and returns true when the campaign is statically rejected.
    bool flow_admission_rejects(MeasurementDiagnostics& d);
    double settle_read(circuit::NodeId p, circuit::NodeId n, double period, int cycles,
                       bool* settled);
    double apply_tune(double volts, SelectBit bit, circuit::NodeId pin,
                      void (RfAbmChip::*hold_setter)(double));
    /// Coarse, cheaply-bounded single-ended read for the pin-liveness check.
    double liveness_read(circuit::NodeId pin);
    /// The current operating point as a surrogate query, or nullopt when the
    /// RF stimulus is unknown (surrogate keys are meaningless without it).
    std::optional<rf::surrogate::Query> surrogate_query(double vdd) const;
    /// Tier-1 attempt: true (and fills *vout/*bound) only on a hit.
    bool surrogate_serve(rf::surrogate::Quantity quantity, double vdd, double* vout,
                         double* bound);
    /// Tier-2 feedback: hand a settled full-solve Vout to the bound store.
    void surrogate_observe(rf::surrogate::Quantity quantity, double vdd, double vout);

    RfAbmChip& chip_;
    MeasureOptions options_;
    bool session_open_ = false;
    bool engine_ready_ = false;  ///< engine().init() has run at least once
    std::uint8_t select_ = 0;
    bool last_settled_ = true;
    bool tare_valid_ = false;
    double tare_ = 0.0;
    rf::surrogate::Decision last_surrogate_ = rf::surrogate::Decision::kMiss;
};

}  // namespace rfabm::core
