// The f/8 prescaler of Fig. 1.
//
// The frequency detector's FVC works at 125-250 MHz; the 1-2 GHz RF input is
// first squared up by a comparator (limiting amplifier) and divided by 8.
// The comparator's hysteresis models the limiter's input sensitivity: below
// roughly +5 dBm at the pin the RF swing no longer crosses the hysteresis
// band and the prescaler stops toggling — exactly the minimum-power behaviour
// section 3 of the paper reports for frequency measurements.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/mixed/digital.hpp"

namespace rfabm::core {

/// Comparator + divide-by-2^k chain producing a 50% duty digital clock.
class Prescaler {
  public:
    /// Clocks off v(@p in_p) - v(@p in_n) crossing 0 with +/- @p hysteresis.
    /// @p divide must be a power of two >= 2.
    Prescaler(const std::string& prefix, rfabm::mixed::DigitalDomain& domain,
              circuit::NodeId in_p, circuit::NodeId in_n, double hysteresis, unsigned divide);

    /// The divided output clock signal.
    rfabm::mixed::SignalId output() const { return out_; }
    /// The raw comparator output (input-rate clock).
    rfabm::mixed::SignalId comparator_output() const { return cmp_; }
    unsigned divide_ratio() const { return divide_; }

  private:
    rfabm::mixed::SignalId cmp_{};
    rfabm::mixed::SignalId out_{};
    unsigned divide_;
};

}  // namespace rfabm::core
