#include "core/chip.hpp"

#include <cmath>

#include "circuit/devices/passive.hpp"
#include "rf/units.hpp"

namespace rfabm::core {

using circuit::Capacitor;
using circuit::NodeId;
using circuit::Placement;
using circuit::Resistor;
using circuit::Switch;
using circuit::VSource;
using circuit::Waveform;
using rfabm::jtag::AbmNodes;
using rfabm::jtag::AnalogBoundaryModule;
using rfabm::jtag::Instruction;
using rfabm::jtag::SerialSelectBus;
using rfabm::jtag::TapController;
using rfabm::jtag::TapDriver;
using rfabm::jtag::Tbic;
using rfabm::jtag::TbicNodes;
using rfabm::mixed::DigitalDomain;
using rfabm::mixed::SignalId;

namespace {

/// CMOS gate-delay scaling of the LCB timing windows with supply voltage,
/// temperature (mobility) and process speed: t ~ VDD/(VDD-VT)^2 * mu(T)^-1.
double lcb_time_scale(const OperatingConditions& cond, const circuit::ProcessCorner& corner) {
    auto delay = [](double v) { return v / ((v - 0.5) * (v - 0.5)); };
    double s = delay(cond.vdd_fdet) / delay(kNominalVddFdet);
    s *= std::pow((cond.temperature_c + 273.15) / circuit::kNominalTemperatureK, 1.5);
    s /= corner.nmos_kp_factor;
    return s;
}

/// Comparator input-referred offset: input-pair VT mismatch plus a small
/// thermal drift.
double comparator_offset(const OperatingConditions& cond, const circuit::ProcessCorner& corner) {
    return 0.5 * (corner.nmos_vt_shift - corner.pmos_vt_shift) +
           0.3e-3 * (cond.temperature_c - 27.0);
}

}  // namespace

/// Per-step hook keeping the FVC-activity counter fresh.  The digital domain
/// (registered first) has already evaluated its comparators and blocks when
/// this runs.
class RfAbmChip::LiveStateObserver : public circuit::StepObserver {
  public:
    explicit LiveStateObserver(RfAbmChip& chip) : chip_(chip) {}
    void on_step(double, const circuit::Solution&, circuit::Circuit&) override {
        if (chip_.domain_.rising(chip_.fvc_clk_)) ++chip_.fvc_edge_count_;
    }

  private:
    RfAbmChip& chip_;
};

/// Selects which clock drives the FVC: the divided RF path or the direct fin
/// comparator (select-bus bit 7).
class RfAbmChip::ClockMuxBlock : public rfabm::mixed::LogicBlock {
  public:
    ClockMuxBlock(SignalId rf_div, SignalId fin, SignalId out)
        : rf_div_(rf_div), fin_(fin), out_(out) {}

    void set_select_fin(bool v) { select_fin_ = v; }

    void tick(DigitalDomain& domain, double) override {
        domain.set(out_, select_fin_ ? domain.value(fin_) : domain.value(rf_div_));
    }

  private:
    SignalId rf_div_;
    SignalId fin_;
    SignalId out_;
    bool select_fin_ = false;
};

RfAbmChip::RfAbmChip(RfAbmChipConfig config, OperatingConditions conditions,
                     circuit::ProcessCorner corner)
    : config_(std::move(config)), conditions_(conditions), corner_(corner) {
    build();
}

RfAbmChip::~RfAbmChip() = default;

void RfAbmChip::build() {
    circuit::Circuit& ckt = circuit_;

    // ---- supplies and references -------------------------------------------
    const NodeId vddp_rail = ckt.node("vddp_rail");
    const NodeId vddp = ckt.node("vddp");
    ckt.add<VSource>("VDDP", vddp_rail, circuit::kGround, Waveform::dc(conditions_.vdd_pdet));
    power_gate_p_ = &ckt.add<Switch>("PWRGATE_P", vddp_rail, vddp, 10.0);

    // Mid-supply guard reference VG via a ratiometric divider.
    const NodeId vg_ref = ckt.node("vg_ref");
    ckt.add<Resistor>("RVG1", vddp_rail, vg_ref, 10e3);
    ckt.add<Resistor>("RVG2", vg_ref, circuit::kGround, 10e3);
    ckt.add<Capacitor>("CVG", vg_ref, circuit::kGround, 5e-12);

    // ---- pins, bench sources, terminations ---------------------------------
    rf_pin_ = ckt.node("RFIN");
    rf_core_ = ckt.node("rf_core");
    fin_pin_ = ckt.node("FIN");
    fin_core_ = ckt.node("fin_core");
    at1_ = ckt.node("AT1");
    at2_ = ckt.node("AT2");
    const NodeId ab1 = ckt.node("ab1");
    const NodeId ab2 = ckt.node("ab2");

    const NodeId rf_src = ckt.node("rf_src");
    rf_source_ = &ckt.add<VSource>("VRF", rf_src, circuit::kGround, Waveform::dc(0.0));
    ckt.add<Resistor>("RSRC_RF", rf_src, rf_pin_, config_.source_impedance, Placement::kOffChip);
    ckt.add<Resistor>("RTERM_RF", rf_pin_, circuit::kGround, 50.0);  // on-die match

    const NodeId fin_src = ckt.node("fin_src");
    fin_source_ = &ckt.add<VSource>("VFIN", fin_src, circuit::kGround, Waveform::dc(0.0));
    ckt.add<Resistor>("RSRC_FIN", fin_src, fin_pin_, config_.source_impedance,
                      Placement::kOffChip);
    ckt.add<Resistor>("RTERM_FIN", fin_pin_, circuit::kGround, 50.0);

    // DMMs on the ATAP pins.
    ckt.add<Resistor>("DMM1", at1_, circuit::kGround, config_.dmm_resistance,
                      Placement::kOffChip);
    ckt.add<Resistor>("DMM2", at2_, circuit::kGround, config_.dmm_resistance,
                      Placement::kOffChip);

    // Bench tuning source, connectable to AT2.
    const NodeId tune_src = ckt.node("tune_src");
    tune_source_ = &ckt.add<VSource>("VTUNE", tune_src, circuit::kGround, Waveform::dc(0.0));
    const NodeId tune_srcr = ckt.node("tune_srcr");
    ckt.add<Resistor>("RSRC_TUNE", tune_src, tune_srcr, 100.0, Placement::kOffChip);
    tune_connect_ = &ckt.add<Switch>("SW_TUNE", tune_srcr, at2_, 1.0);

    // ---- tuning pins with external hold DACs --------------------------------
    tune_p_ = ckt.node("tuneP");
    tune_f_ = ckt.node("tunef");
    ibias_ = ckt.node("Ibias");
    const NodeId holdp = ckt.node("holdp");
    const NodeId holdf = ckt.node("holdf");
    hold_tune_p_src_ = &ckt.add<VSource>("VHOLDP", holdp, circuit::kGround, Waveform::dc(0.0));
    hold_tune_f_src_ =
        &ckt.add<VSource>("VHOLDF", holdf, circuit::kGround, Waveform::dc(hold_tune_f_v_));
    ckt.add<Resistor>("RHOLDP", holdp, tune_p_, 10e3, Placement::kOffChip);
    ckt.add<Resistor>("RHOLDF", holdf, tune_f_, 10e3, Placement::kOffChip);
    ckt.add<Capacitor>("CHOLDP", tune_p_, circuit::kGround, 10e-12);
    ckt.add<Capacitor>("CHOLDF", tune_f_, circuit::kGround, 10e-12);
    ckt.add<Resistor>("RIBIAS", ibias_, circuit::kGround, 1e6);

    // ---- IEEE 1149.4 infrastructure -----------------------------------------
    tap_ = std::make_unique<TapController>(config_.idcode);
    tap_driver_ = std::make_unique<TapDriver>(*tap_);

    TbicNodes tnodes{at1_, at2_, ab1, ab2, vddp_rail, circuit::kGround};
    tbic_ = std::make_unique<Tbic>("TBIC", ckt, tnodes);
    tbic_->register_cells(boundary_);

    AbmNodes rf_nodes{rf_pin_, rf_core_, ab1, ab2, vddp_rail, circuit::kGround, vg_ref};
    abm_rf_ = std::make_unique<AnalogBoundaryModule>("ABM_RF", ckt, rf_nodes,
                                                     conditions_.vdd_pdet / 2.0,
                                                     config_.rf_abm_ron);
    abm_rf_->register_cells(boundary_);

    AbmNodes fin_nodes{fin_pin_, fin_core_, ab1, ab2, vddp_rail, circuit::kGround, vg_ref};
    abm_fin_ = std::make_unique<AnalogBoundaryModule>("ABM_FIN", ckt, fin_nodes,
                                                      conditions_.vdd_pdet / 2.0,
                                                      config_.rf_abm_ron);
    abm_fin_->register_cells(boundary_);

    for (Instruction i : {Instruction::kExtest, Instruction::kSamplePreload, Instruction::kProbe,
                          Instruction::kIntest}) {
        tap_->route(i, &boundary_);
    }
    tap_->on_instruction([this](Instruction i) {
        tbic_->apply(i);
        abm_rf_->apply(i);
        abm_fin_->apply(i);
    });
    const auto probe = [this](NodeId n) { return live_v(n); };
    abm_rf_->set_voltage_probe(probe);
    abm_fin_->set_voltage_probe(probe);

    // ---- the RF-ABM core -----------------------------------------------------
    // Optional preamplifier between the pin network and the detectors.
    if (config_.with_preamp) {
        preamp_ = std::make_unique<Preamplifier>("PRE", ckt, vddp, rf_core_, config_.preamp);
        det_in_ = preamp_->out();
    } else {
        det_in_ = rf_core_;
    }

    // Power-detector branch behind its band-select network: isolation
    // resistor into a parallel-LC tank resonant at the band centre.  The
    // frequency path taps det_in_ directly so the limiter keeps its wideband
    // sensitivity and the tank never loads the pin at resonance.
    const NodeId det_rf = ckt.node("det_rf");
    const NodeId det_ac = ckt.node("det_ac");
    // DC block so the tank inductor cannot load the preamplifier's bias.
    ckt.add<Capacitor>("CBLK", det_in_, det_ac, 5e-12);
    ckt.add<Resistor>("RMATCH", det_ac, det_rf, config_.match_r);
    ckt.add<circuit::Inductor>("LMATCH", det_rf, circuit::kGround, config_.match_l);
    ckt.add<Capacitor>("CPAD", det_rf, circuit::kGround, config_.match_c);
    pdet_ = std::make_unique<PowerDetector>("PDET", ckt, vddp, det_rf, tune_p_, config_.pdet);
    ckt.add<Resistor>("RIBIAS_TRIM", ibias_, pdet_->gate(), 100e3);

    // Prescaler comparator: slices the detector input against its DC
    // reference (preamp replica, or ground for the direct pin path).
    const double hyst =
        config_.comparator_hysteresis * (conditions_.vdd_fdet / kNominalVddFdet);
    const NodeId cmp_ref = config_.with_preamp
                               ? preamp_->ref_out()
                               : circuit::kGround;
    prescaler_ = std::make_unique<Prescaler>("PRESC", domain_, det_in_, cmp_ref, hyst,
                                             config_.prescaler_divide);

    // Direct fin comparator.
    const SignalId fin_cmp = domain_.signal("fin.cmp");
    domain_.add_comparator(fin_core_, circuit::kGround,
                           comparator_offset(conditions_, corner_), hyst, fin_cmp);

    // Clock selection and the FVC.
    fvc_clk_ = domain_.signal("fvc.clk");
    auto& clock_mux =
        domain_.add_block<ClockMuxBlock>(prescaler_->output(), fin_cmp, fvc_clk_);

    // Frequency-detector supply gate: power bit cuts the tune current path.
    const NodeId fdet_tune = ckt.node("fdet_tune");
    power_gate_f_ = &ckt.add<Switch>("PWRGATE_F", tune_f_, fdet_tune, 100.0);
    ckt.add<Resistor>("RFDET_TUNE_BLEED", fdet_tune, circuit::kGround, 1e6);

    FrequencyDetectorParams fparams = config_.fdet;
    const double tscale = lcb_time_scale(conditions_, corner_);
    fparams.transfer_s *= tscale;
    fparams.reset_s *= tscale;
    // Rise/fall delay mismatch of the LCB gates: proportional to the N/P
    // threshold imbalance of the die (2.2 ns/V puts the 3-sigma corner near
    // 0.2 ns, a plausible skew for the paper's technology generation).
    fparams.charge_skew_s +=
        2.2e-9 * (corner_.nmos_vt_shift - corner_.pmos_vt_shift) * tscale;
    fdet_ = std::make_unique<FrequencyDetector>("FDET", ckt, domain_, fdet_tune, fvc_clk_,
                                                fparams);

    // ---- the .4 MUX and serial select bus ------------------------------------
    select_bus_ = std::make_unique<SerialSelectBus>(kSelectWidth);
    Mux4::Signals msig{};
    msig.out_plus = pdet_->vout_n();   // eq. (1): Vout = VoutN - VoutP > 0
    msig.out_minus = pdet_->vout_p();
    msig.fdet_out = fdet_->vout();
    msig.tune_p = tune_p_;
    msig.tune_f = tune_f_;
    msig.ibias = ibias_;
    msig.ab1 = ab1;
    msig.ab2 = ab2;
    mux_ = std::make_unique<Mux4>("MUX4", ckt, msig, *select_bus_);
    select_bus_->attach(static_cast<std::size_t>(SelectBit::kDetectorPower), [this](bool v) {
        power_gate_p_->set_closed(v);
        power_gate_f_->set_closed(v);
    });
    select_bus_->attach(static_cast<std::size_t>(SelectBit::kInputSelectFin),
                        [&clock_mux](bool v) { clock_mux.set_select_fin(v); });

    // ---- environment ----------------------------------------------------------
    ckt.set_temperature_c(conditions_.temperature_c);
    ckt.set_process(corner_);

    // Apply the digital domain's power-on switch states (e.g. the FVC's
    // current-steering dump switch) before any DC operating point is solved —
    // otherwise the ideal current source faces a floating node.
    domain_.settle_bindings();

    // ---- transient engine -------------------------------------------------------
    circuit::TransientOptions topts;
    topts.dt = 1.0 / 1.5e9 / config_.steps_per_rf_cycle;
    topts.method = circuit::Integration::kTrapezoidal;
    engine_ = std::make_unique<circuit::TransientEngine>(ckt, topts);
    engine_->add_observer(&domain_);
    live_observer_ = std::make_unique<LiveStateObserver>(*this);
    engine_->add_observer(live_observer_.get());
}

double RfAbmChip::live_v(NodeId node) const {
    if (engine_ == nullptr || !engine_->initialized()) return 0.0;
    return engine_->solution().v(node);
}

void RfAbmChip::update_dt() {
    // The RF carrier needs ~24 points per cycle for trapezoidal accuracy; the
    // direct fin path clocks the FVC at the stimulus rate itself, so its LCB
    // windows need finer resolution (~64 points per cycle).
    double dt = 1e-9;
    if (rf_hz_) dt = std::min(dt, 1.0 / *rf_hz_ / config_.steps_per_rf_cycle);
    if (fin_hz_) dt = std::min(dt, 1.0 / *fin_hz_ / (config_.steps_per_rf_cycle * 8.0 / 3.0));
    engine_->options().dt = dt;
}

double RfAbmChip::stimulus_period() const {
    if (rf_hz_) return 1.0 / *rf_hz_;
    if (fin_hz_) return 1.0 / *fin_hz_;
    return 1e-9;
}

double RfAbmChip::fvc_clock_period() const {
    const bool fin_selected =
        select_bus_->output(static_cast<std::size_t>(SelectBit::kInputSelectFin));
    if (fin_selected && fin_hz_) return 1.0 / *fin_hz_;
    if (rf_hz_) return config_.prescaler_divide / *rf_hz_;
    return 8e-9;
}

void RfAbmChip::set_rf(double dbm, double hz) {
    // Source EMF of 2*Vpk delivers Vpk into the matched 50-ohm termination.
    const double emf = 2.0 * rfabm::rf::dbm_to_peak_volts(dbm, config_.source_impedance);
    rf_source_->set_waveform(Waveform::sine(0.0, emf, hz));
    rf_hz_ = hz;
    rf_dbm_ = dbm;
    update_dt();
}

void RfAbmChip::rf_off() {
    rf_source_->set_waveform(Waveform::dc(0.0));
    rf_hz_.reset();
    rf_dbm_.reset();
    update_dt();
}

void RfAbmChip::set_fin(double dbm, double hz) {
    const double emf = 2.0 * rfabm::rf::dbm_to_peak_volts(dbm, config_.source_impedance);
    fin_source_->set_waveform(Waveform::sine(0.0, emf, hz));
    fin_hz_ = hz;
    update_dt();
}

void RfAbmChip::fin_off() {
    fin_source_->set_waveform(Waveform::dc(0.0));
    fin_hz_.reset();
    update_dt();
}

void RfAbmChip::set_tune_source(double volts, bool connected) {
    tune_source_->set_dc(volts);
    tune_connect_->set_closed(connected);
}

void RfAbmChip::set_hold_tune_p(double volts) {
    hold_tune_p_v_ = volts;
    hold_tune_p_src_->set_dc(volts);
}

void RfAbmChip::set_hold_tune_f(double volts) {
    hold_tune_f_v_ = volts;
    hold_tune_f_src_->set_dc(volts);
}

}  // namespace rfabm::core
