#include "core/frequency_detector.hpp"

#include "circuit/devices/passive.hpp"
#include "circuit/devices/switch_device.hpp"

namespace rfabm::core {

using circuit::Capacitor;
using circuit::NodeId;
using circuit::Resistor;
using circuit::Switch;
using rfabm::mixed::DigitalDomain;
using rfabm::mixed::SignalId;

// -------------------------------------------------------- TunedCurrentSource

TunedCurrentSource::TunedCurrentSource(std::string name, NodeId out, NodeId tune,
                                       double r_nominal, double tempco_per_k)
    : Device(std::move(name)), out_(out), tune_(tune), r_nominal_(r_nominal),
      tempco_(tempco_per_k), r_eff_(r_nominal) {}

void TunedCurrentSource::update() {
    const double dt = temperature_k_ - circuit::kNominalTemperatureK;
    r_eff_ = r_nominal_ * res_factor_ * (1.0 + tempco_ * dt);
}

void TunedCurrentSource::set_temperature(double temperature_k) {
    temperature_k_ = temperature_k;
    update();
}

void TunedCurrentSource::apply_process(const circuit::ProcessCorner& corner) {
    res_factor_ = corner.res_factor;
    update();
}

void TunedCurrentSource::stamp(circuit::MnaSystem& sys, const circuit::StampContext&) {
    // i = v(tune)/R flowing from ground into `out` (charges a grounded cap
    // positive).  Stamped as a transconductance so it is linear in the tune
    // voltage and needs no Newton iteration of its own.
    sys.add_transconductance(circuit::kGround, out_, tune_, circuit::kGround, 1.0 / r_eff_);
}

void TunedCurrentSource::stamp_ac(circuit::ComplexMna& sys, double, const circuit::Solution&) {
    sys.add_transconductance(circuit::kGround, out_, tune_, circuit::kGround,
                             {1.0 / r_eff_, 0.0});
}

// ----------------------------------------------------------------- FvcLcb

FvcLcb::FvcLcb(SignalId clk, SignalId charge, SignalId transfer, SignalId reset,
               double transfer_s, double reset_s, double skew_s)
    : clk_(clk), charge_(charge), transfer_(transfer), reset_(reset), transfer_s_(transfer_s),
      reset_s_(reset_s), skew_s_(skew_s) {}

void FvcLcb::tick(DigitalDomain& domain, double time) {
    // Phase transitions.  kWaitCharge / kChargeTail realize the rise/fall
    // delay mismatch: the charging window becomes T/2 + skew.
    switch (phase_) {
        case Phase::kIdle:
            if (domain.rising(clk_) || domain.value(clk_)) {
                phase_ = skew_s_ < 0.0 ? Phase::kWaitCharge : Phase::kCharge;
                phase_start_ = time;
            }
            break;
        case Phase::kWaitCharge:
            if (time - phase_start_ >= -skew_s_) {
                phase_ = Phase::kCharge;
                phase_start_ = time;
            } else if (domain.falling(clk_) || !domain.value(clk_)) {
                // Pathologically short high phase: skip straight to transfer.
                phase_ = Phase::kTransfer;
                phase_start_ = time;
            }
            break;
        case Phase::kCharge:
            if (domain.falling(clk_) || !domain.value(clk_)) {
                phase_ = skew_s_ > 0.0 ? Phase::kChargeTail : Phase::kTransfer;
                phase_start_ = time;
            }
            break;
        case Phase::kChargeTail:
            if (time - phase_start_ >= skew_s_) {
                phase_ = Phase::kTransfer;
                phase_start_ = time;
            }
            break;
        case Phase::kTransfer:
            // A new rising edge aborts the sequence (clock faster than the
            // windows — the high-frequency clipping a real LCB shows).
            if (domain.rising(clk_)) {
                phase_ = Phase::kCharge;
                phase_start_ = time;
            } else if (time - phase_start_ >= transfer_s_) {
                phase_ = Phase::kReset;
                phase_start_ = time;
            }
            break;
        case Phase::kReset:
            if (domain.rising(clk_)) {
                phase_ = Phase::kCharge;
                phase_start_ = time;
            } else if (time - phase_start_ >= reset_s_) {
                phase_ = Phase::kIdle;
                phase_start_ = time;
            }
            break;
    }
    domain.set(charge_, phase_ == Phase::kCharge || phase_ == Phase::kChargeTail);
    domain.set(transfer_, phase_ == Phase::kTransfer);
    domain.set(reset_, phase_ == Phase::kReset);
}

// -------------------------------------------------------- FrequencyDetector

FrequencyDetector::FrequencyDetector(const std::string& prefix, circuit::Circuit& ckt,
                                     DigitalDomain& domain, NodeId tune, SignalId clk,
                                     FrequencyDetectorParams params)
    : params_(params) {
    ramp_ = ckt.node(prefix + ".ramp");
    out_ = ckt.node(prefix + ".vout");
    const NodeId isrc = ckt.node(prefix + ".isrc");

    source_ = &ckt.add<TunedCurrentSource>(prefix + ".IC", isrc, tune, params.r_bias,
                                           params.r_tempco);
    auto& s_charge = ckt.add<Switch>(prefix + ".Scharge", isrc, ramp_, 100.0);
    auto& s_steer = ckt.add<Switch>(prefix + ".Ssteer", isrc, circuit::kGround,
                                    params.ron_steer);
    auto& s_transfer = ckt.add<Switch>(prefix + ".Stransfer", ramp_, out_, params.ron_transfer);
    auto& s_reset = ckt.add<Switch>(prefix + ".Sreset", ramp_, circuit::kGround,
                                    params.ron_reset);
    ckt.add<Capacitor>(prefix + ".C1", ramp_, circuit::kGround, params.c1);
    ckt.add<Capacitor>(prefix + ".C2", out_, circuit::kGround, params.c2);
    // Sense-side load (models the .4 MUX / ATP leakage path).
    ckt.add<Resistor>(prefix + ".Rload", out_, circuit::kGround, params.r_load);

    const SignalId charge = domain.signal(prefix + ".charge");
    const SignalId transfer = domain.signal(prefix + ".transfer");
    const SignalId reset = domain.signal(prefix + ".reset");
    domain.add_block<FvcLcb>(clk, charge, transfer, reset, params.transfer_s, params.reset_s,
                             params.charge_skew_s);
    domain.bind_switch(s_charge, charge);
    domain.bind_switch(s_steer, charge, /*invert=*/true);  // current steering
    domain.bind_switch(s_transfer, transfer);
    domain.bind_switch(s_reset, reset);
}

double FrequencyDetector::analytic_vout(double f_hz, double vtune) const {
    const double ic = vtune / params_.r_bias;
    return ic / (2.0 * params_.c1 * f_hz);
}

}  // namespace rfabm::core
