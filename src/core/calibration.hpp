// DC calibration — the paper's headline accuracy enabler.
//
// Section 3: "ABM structures were DC-calibrated before measurements using
// tuning connections (tuneP and tunef)", and section 4 credits DC
// calibration with cutting the corner error roughly in half.  Two
// procedures, both driven entirely through the 1149.4 analog bus:
//
//   tuneP  - bias Q1's gate *exactly at the threshold voltage*: with RF off,
//            binary-search the tuning voltage until the detector's
//            differential output sits at a small positive target (the onset
//            of conduction).  This nulls the die's VT0 offset, which is why
//            eq. (1) afterwards depends only on K' and R spreads.
//   tunef  - trim the FVC gain: with a strong reference tone applied, search
//            the tunef voltage until the FVC output matches the nominal
//            design value at the reference frequency, nulling the Ic*C1
//            product error of the die.
//
// Both searches quantize to a DAC step, modelling the control unit's finite
// tuning resolution.  Calibration curves (power -> Vout, frequency -> Vout)
// are acquired on the *nominal* device, matching the paper's "error vs.
// simulated response" metric.
#pragma once

#include "core/measurement.hpp"
#include "rf/curve.hpp"

namespace rfabm::core {

/// Knobs of the calibration procedures.
struct CalibrationOptions {
    /// tuneP: zero-signal output target.  Sets the onset current of Q1 (gate
    /// ~15-20 mV above threshold) so the detector has no dead zone at the
    /// bottom of the power range even after worst-case environmental drift of
    /// the tracking bias.
    double target_offset_v = 25e-3;
    double tune_p_lo = -0.5;        ///< tuneP search window (bench volts)
    double tune_p_hi = 1.5;
    double dac_step = 5e-3;         ///< control-unit DAC resolution (V)
    int max_iterations = 14;        ///< binary-search depth

    double f_ref_hz = 1.5e9;        ///< tunef reference tone (RF path)
    double p_ref_dbm = 6.0;         ///< strong enough for the prescaler
    double tune_f_lo = 1.0;
    double tune_f_hi = 3.0;
    double tune_f_dac_step = 10e-3;
};

/// Result of the tuneP procedure.
struct TunePResult {
    double bench_volts = 0.0;  ///< DAC value found
    double vout_offset = 0.0;  ///< residual zero-signal offset
    int iterations = 0;
};

/// Result of the tunef procedure.
struct TuneFResult {
    double bench_volts = 0.0;
    double vout = 0.0;      ///< achieved FVC output at the reference
    double target = 0.0;    ///< nominal design value aimed at
    int iterations = 0;
};

/// tuneP: null the power detector's zero-signal offset (threshold bias).
TunePResult calibrate_tune_p(MeasurementController& controller,
                             const CalibrationOptions& options = {});

/// tunef: trim the FVC gain at the reference frequency.
TuneFResult calibrate_tune_f(MeasurementController& controller,
                             const CalibrationOptions& options = {});

/// Run both procedures (the paper's "DC-calibrated before measurements").
struct DcCalibration {
    TunePResult tune_p;
    TuneFResult tune_f;
};
DcCalibration dc_calibrate(MeasurementController& controller,
                           const CalibrationOptions& options = {});

/// Acquire the power calibration curve dBm -> Vout on (typically) the nominal
/// chip at @p carrier_hz, sweeping @p powers_dbm (must be increasing).
rfabm::rf::MonotoneCurve acquire_power_curve(MeasurementController& controller,
                                             const std::vector<double>& powers_dbm,
                                             double carrier_hz);

/// Acquire the frequency calibration curve GHz -> Vout at @p power_dbm.
rfabm::rf::MonotoneCurve acquire_frequency_curve(MeasurementController& controller,
                                                 const std::vector<double>& freqs_ghz,
                                                 double power_dbm);

}  // namespace rfabm::core
