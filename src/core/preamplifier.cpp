#include "core/preamplifier.hpp"

#include <cmath>

#include "circuit/devices/passive.hpp"

namespace rfabm::core {

using circuit::Capacitor;
using circuit::Mosfet;
using circuit::MosfetParams;
using circuit::NodeId;
using circuit::Resistor;

Preamplifier::Preamplifier(const std::string& prefix, circuit::Circuit& ckt, NodeId vdd,
                           NodeId in, PreamplifierParams params)
    : params_(params) {
    gate_ = ckt.node(prefix + ".vg");
    out_ = ckt.node(prefix + ".out");
    ref_out_ = ckt.node(prefix + ".ref");
    const NodeId ref_gate = ckt.node(prefix + ".vg_ref");

    const NodeId src = ckt.node(prefix + ".vs");
    const NodeId src_ref = ckt.node(prefix + ".vs_ref");

    ckt.add<Capacitor>(prefix + ".Cin", in, gate_, params.cin);
    ckt.add<Resistor>(prefix + ".Rb1", vdd, gate_, params.rb1);
    ckt.add<Resistor>(prefix + ".Rb2", gate_, circuit::kGround, params.rb2);

    MosfetParams mp;
    mp.w = params.m_w;
    mp.l = params.m_l;
    mp.kp = params.kp;
    mp.vt0 = params.vt0;
    mp.lambda = params.lambda;
    m1_ = &ckt.add<Mosfet>(prefix + ".M1", out_, gate_, src, mp);
    ckt.add<Resistor>(prefix + ".RS", src, circuit::kGround, params.rs);
    ckt.add<Resistor>(prefix + ".RL", vdd, out_, params.rl);
    ckt.add<Capacitor>(prefix + ".CL", out_, circuit::kGround, params.cload);

    // Replica branch: same bias, no RF (gate decoupled to ground).
    ckt.add<Resistor>(prefix + ".Rb1r", vdd, ref_gate, params.rb1);
    ckt.add<Resistor>(prefix + ".Rb2r", ref_gate, circuit::kGround, params.rb2);
    ckt.add<Capacitor>(prefix + ".Cr", ref_gate, circuit::kGround, params.cin);
    ckt.add<Mosfet>(prefix + ".M1r", ref_out_, ref_gate, src_ref, mp);
    ckt.add<Resistor>(prefix + ".RSr", src_ref, circuit::kGround, params.rs);
    ckt.add<Resistor>(prefix + ".RLr", vdd, ref_out_, params.rl);
}

double Preamplifier::analytic_gain(double vdd) const {
    const double beta = params_.kp * params_.m_w / params_.m_l;
    const double vbias = vdd * params_.rb2 / (params_.rb1 + params_.rb2);
    const double u = vbias - params_.vt0;
    if (u <= 0.0) return 0.0;
    // Solve I = beta/2 * (u - I*Rs)^2 for the bias current (Newton).
    double i = 0.5 * beta * u * u;
    for (int k = 0; k < 30; ++k) {
        const double vov = u - i * params_.rs;
        if (vov <= 0.0) {
            i *= 0.5;
            continue;
        }
        const double f = i - 0.5 * beta * vov * vov;
        const double df = 1.0 + beta * vov * params_.rs;
        i -= f / df;
    }
    const double vov = std::max(u - i * params_.rs, 1e-6);
    const double gm = beta * vov;
    return gm * params_.rl / (1.0 + gm * params_.rs);
}

}  // namespace rfabm::core
