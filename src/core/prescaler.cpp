#include "core/prescaler.hpp"

namespace rfabm::core {

Prescaler::Prescaler(const std::string& prefix, rfabm::mixed::DigitalDomain& domain,
                     circuit::NodeId in_p, circuit::NodeId in_n, double hysteresis,
                     unsigned divide)
    : divide_(divide) {
    cmp_ = domain.signal(prefix + ".cmp");
    out_ = domain.signal(prefix + ".div");
    domain.add_comparator(in_p, in_n, 0.0, hysteresis, cmp_);
    domain.add_block<rfabm::mixed::DividerBlock>(cmp_, out_, divide);
}

}  // namespace rfabm::core
