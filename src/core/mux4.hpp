// The ".4 MUX" of Fig. 1: a programmable switch matrix routing detector
// outputs and tuning inputs onto the IEEE 1149.4 internal analog buses
// (AB1/AB2), controlled by the serial select bus from the external control
// unit.
//
// Select-word layout (one bit per switch / function, LSB first):
//
//   bit 0  out+   (Pdet VoutN)  -> AB1
//   bit 1  out-   (Pdet VoutP)  -> AB2
//   bit 2  Vout   (Fdet output) -> AB1
//   bit 3  tuneP  (Pdet Vt pin) <- AB2
//   bit 4  tunef  (Fdet tuning) <- AB2
//   bit 5  Ibias  (preamp bias) <- AB1
//   bit 6  detector power on/off (consumed by the chip's power gates)
//   bit 7  input select: 0 = RF input (through f/8), 1 = direct fin
//
// Note on polarity: the paper's eq. (1) output VoutN - VoutP is positive, so
// "out+" is the reference-branch node VoutN and "out-" the signal branch
// VoutP.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/switch_device.hpp"
#include "jtag/serial_bus.hpp"

namespace rfabm::core {

/// Select-word bit positions.
enum class SelectBit : std::size_t {
    kOutPlusToAb1 = 0,
    kOutMinusToAb2 = 1,
    kFdetToAb1 = 2,
    kTunePFromAb2 = 3,
    kTuneFFromAb2 = 4,
    kIbiasFromAb1 = 5,
    kDetectorPower = 6,
    kInputSelectFin = 7,
};

/// Width of the select register.
inline constexpr std::size_t kSelectWidth = 8;

/// Compose a select word from bits.
std::uint8_t select_word(std::initializer_list<SelectBit> bits);

/// The six routing switches of the matrix (power gating and input select are
/// wired by the chip, which owns those resources).
class Mux4 {
  public:
    struct Signals {
        circuit::NodeId out_plus;   ///< Pdet VoutN
        circuit::NodeId out_minus;  ///< Pdet VoutP
        circuit::NodeId fdet_out;
        circuit::NodeId tune_p;
        circuit::NodeId tune_f;
        circuit::NodeId ibias;
        circuit::NodeId ab1;
        circuit::NodeId ab2;
    };

    /// Creates the switches and attaches them to @p bus bits 0..5.
    Mux4(const std::string& prefix, circuit::Circuit& circuit, const Signals& signals,
         rfabm::jtag::SerialSelectBus& bus, double ron = 100.0);

    circuit::Switch& switch_for(SelectBit bit);

  private:
    std::array<circuit::Switch*, 6> switches_{};
};

}  // namespace rfabm::core
