// RfAbmChip: the complete test chip of the paper (Fig. 1) plus its bench.
//
// The chip composes, on a single co-simulated netlist:
//   * the IEEE 1149.1 TAP with an 1149.4 TBIC and ABMs on the RF/fin pins,
//   * the basic RF-ABM: MOS power detector, f/8 prescaler + FVC frequency
//     detector, the ".4 MUX" switch matrix and the serial select bus,
//   * optionally the second ABM structure with preamplifiers,
//   * the external bench: RF/fin signal generators (50-ohm), DMMs on the
//     ATAP pins, and the tuning-voltage source.
//
// A chip instance is immutable with respect to environment: operating
// conditions and the process corner are constructor inputs (a new die / a
// new oven setting is a new instance).  Tuning voltages — the paper's DC
// calibration state — live in external hold sources that the measurement
// controller programs through the 1149.4 bus, mirroring bench practice where
// the control PC retains DAC settings between sessions.
#pragma once

#include <memory>
#include <optional>

#include "circuit/circuit.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"
#include "circuit/mixed/digital.hpp"
#include "circuit/transient.hpp"
#include "core/environment.hpp"
#include "core/frequency_detector.hpp"
#include "core/mux4.hpp"
#include "core/power_detector.hpp"
#include "core/preamplifier.hpp"
#include "core/prescaler.hpp"
#include "jtag/abm.hpp"
#include "jtag/serial_bus.hpp"
#include "jtag/tap.hpp"
#include "jtag/tbic.hpp"

namespace rfabm::core {

/// Chip + bench configuration.
struct RfAbmChipConfig {
    bool with_preamp = false;        ///< build the second (preamplified) ABM structure
    std::uint32_t idcode = 0x14940A4Bu;
    PowerDetectorParams pdet{};
    FrequencyDetectorParams fdet{};
    PreamplifierParams preamp{};
    double comparator_hysteresis = 0.45;  ///< prescaler sensitivity (V at the pin)
    unsigned prescaler_divide = 8;
    double rf_abm_ron = 10.0;        ///< RF-pin ABM SD on-resistance (wide switch)
    /// Power-detector input network: an isolation resistor into a parallel-LC
    /// tank.  In-band the tank is high impedance and the detector sees the
    /// full drive; off-band the tank shunts the drive away.  This is what
    /// bounds the paper's "accurate measurement range ... 1.2 GHz to
    /// 1.8 GHz" while leaving the wideband limiter path unloaded.
    double match_r = 150.0;
    double match_l = 11.4e-9;
    double match_c = 0.99e-12;
    double dmm_resistance = 10e6;    ///< bench voltmeter input impedance
    double source_impedance = 50.0;  ///< RF generator output impedance
    double steps_per_rf_cycle = 24;  ///< transient resolution
};

/// The assembled chip with its transient engine.
class RfAbmChip {
  public:
    RfAbmChip(RfAbmChipConfig config, OperatingConditions conditions = nominal_conditions(),
              circuit::ProcessCorner corner = {});
    ~RfAbmChip();  // out of line: LiveStateObserver is incomplete here

    // --- infrastructure access ----------------------------------------------
    circuit::Circuit& circuit() { return circuit_; }
    rfabm::mixed::DigitalDomain& domain() { return domain_; }
    circuit::TransientEngine& engine() { return *engine_; }
    rfabm::jtag::TapController& tap() { return *tap_; }
    rfabm::jtag::TapDriver& tap_driver() { return *tap_driver_; }
    rfabm::jtag::SerialSelectBus& select_bus() { return *select_bus_; }
    rfabm::jtag::Tbic& tbic() { return *tbic_; }
    rfabm::jtag::AnalogBoundaryModule& rf_pin_abm() { return *abm_rf_; }
    rfabm::jtag::AnalogBoundaryModule& fin_pin_abm() { return *abm_fin_; }

    Mux4& mux() { return *mux_; }
    PowerDetector& pdet() { return *pdet_; }
    FrequencyDetector& fdet() { return *fdet_; }
    Prescaler& prescaler() { return *prescaler_; }
    /// Null when built without preamplifiers.
    Preamplifier* preamp() { return preamp_.get(); }

    const RfAbmChipConfig& config() const { return config_; }
    const OperatingConditions& conditions() const { return conditions_; }
    const circuit::ProcessCorner& corner() const { return corner_; }

    // --- bench controls -----------------------------------------------------
    /// Apply an RF tone of @p dbm (available power into 50 ohm) at @p hz to
    /// the RF pin; adjusts the transient step to resolve it.
    void set_rf(double dbm, double hz);
    void rf_off();
    /// Apply a tone to the direct fin input (125-250 MHz path).
    void set_fin(double dbm, double hz);
    void fin_off();
    /// Bench tuning source on AT2: level + connect/disconnect.
    void set_tune_source(double volts, bool connected);
    /// External hold DACs retaining the tuning voltages between bus accesses.
    void set_hold_tune_p(double volts);
    void set_hold_tune_f(double volts);
    double hold_tune_p() const { return hold_tune_p_v_; }
    double hold_tune_f() const { return hold_tune_f_v_; }

    // --- probe points -------------------------------------------------------
    circuit::NodeId at1() const { return at1_; }
    circuit::NodeId at2() const { return at2_; }
    circuit::NodeId rf_pin() const { return rf_pin_; }
    circuit::NodeId rf_core() const { return rf_core_; }
    circuit::NodeId fin_pin() const { return fin_pin_; }
    circuit::NodeId detector_input() const { return det_in_; }
    circuit::NodeId tune_p_pin() const { return tune_p_; }
    circuit::NodeId tune_f_pin() const { return tune_f_; }

    /// Live voltage at a node (last accepted transient step, or 0 before
    /// the engine ran).
    double live_v(circuit::NodeId node) const;

    /// Current RF drive (nullopt when off).
    std::optional<double> rf_frequency() const { return rf_hz_; }
    std::optional<double> rf_power_dbm() const { return rf_dbm_; }
    std::optional<double> fin_frequency() const { return fin_hz_; }

    /// Period of the clock at the FVC input for the current drive.
    double fvc_clock_period() const;
    /// Period of the RF carrier (or fin when only fin drives).
    double stimulus_period() const;

    /// Rising edges seen by the FVC input clock so far (activity detector).
    std::uint64_t fvc_edges() const { return fvc_edge_count_; }

  private:
    class LiveStateObserver;
    class ClockMuxBlock;

    void build();
    void update_dt();

    RfAbmChipConfig config_;
    OperatingConditions conditions_;
    circuit::ProcessCorner corner_;

    circuit::Circuit circuit_;
    rfabm::mixed::DigitalDomain domain_;
    std::unique_ptr<circuit::TransientEngine> engine_;

    std::unique_ptr<rfabm::jtag::TapController> tap_;
    std::unique_ptr<rfabm::jtag::TapDriver> tap_driver_;
    rfabm::jtag::BoundaryRegister boundary_;
    std::unique_ptr<rfabm::jtag::Tbic> tbic_;
    std::unique_ptr<rfabm::jtag::AnalogBoundaryModule> abm_rf_;
    std::unique_ptr<rfabm::jtag::AnalogBoundaryModule> abm_fin_;
    std::unique_ptr<rfabm::jtag::SerialSelectBus> select_bus_;
    std::unique_ptr<Mux4> mux_;
    std::unique_ptr<PowerDetector> pdet_;
    std::unique_ptr<FrequencyDetector> fdet_;
    std::unique_ptr<Prescaler> prescaler_;
    std::unique_ptr<Preamplifier> preamp_;
    std::unique_ptr<LiveStateObserver> live_observer_;

    // Bench devices.
    circuit::VSource* rf_source_ = nullptr;
    circuit::VSource* fin_source_ = nullptr;
    circuit::VSource* tune_source_ = nullptr;
    circuit::Switch* tune_connect_ = nullptr;
    circuit::VSource* hold_tune_p_src_ = nullptr;
    circuit::VSource* hold_tune_f_src_ = nullptr;
    circuit::Switch* power_gate_p_ = nullptr;
    circuit::Switch* power_gate_f_ = nullptr;

    // Nodes.
    circuit::NodeId at1_{}, at2_{}, rf_pin_{}, rf_core_{}, fin_pin_{}, fin_core_{},
        det_in_{}, tune_p_{}, tune_f_{}, ibias_{};

    std::optional<double> rf_hz_;
    std::optional<double> rf_dbm_;
    std::optional<double> fin_hz_;
    double hold_tune_p_v_ = 0.0;
    double hold_tune_f_v_ = 2.0;
    std::uint64_t fvc_edge_count_ = 0;
    rfabm::mixed::SignalId fvc_clk_{};
};

}  // namespace rfabm::core
