// The paper's MOS-only RF power detector (Fig. 2).
//
// Topology (signal branch):
//
//   RFin --C1--+-- vg --[gate Q1]                VDD
//              |                                  |
//   vb --Rbg--+      vb = VT+vov from Rb+Q5  Q2 (diode-connected)
//   Vt --R3---+      (tuning via 1149.4 bus)      |
//                                                R4
//                                                 |
//                             VoutP --------------+-- drain Q1, C2 to GND
//                                                 |
//                                             Q1 (source grounded)
//
// Q1's gate is biased *exactly at the threshold voltage* (externally tunable
// through pin Vt), so Q1 conducts only on positive half cycles of the RF
// input: a MOS half-wave rectifier.  The bias network is a threshold
// extractor — a resistor-fed diode-connected transistor Q5 generates
// vb = VT + vov, and a high-ratio divider (R_bg from vb, R3 from the tuning
// pin) places the gate at ~0.8*vb + 0.2*Vt.  The gate therefore *tracks* the
// die's and the die temperature's threshold to first order, and the tuning
// pin trims the residual — which is why the paper's DC calibration is a
// one-time procedure rather than a per-condition one.  The rectified drain
// current develops a DC level across the load (R4 + diode-connected Q2)
// extracted by the R4/C2 low-pass.  A signal-free replica (Q3, Q4, its own
// extractor, R8, C3) generates VoutN so the differential output cancels
// supply and temperature common-mode:
//
//   Vout = VoutN - VoutP = IDC*R4 + sqrt(2*IDC/(K'*W/L))        (paper eq. 1)
//
// with IDC = K'*(W/L)*A^2/8 for a sinusoid of peak amplitude A (average of
// the square-law half-wave).
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/devices/mosfet.hpp"

namespace rfabm::core {

/// Component values of the detector.  Defaults are sized for the paper's
/// 1-2 GHz band on a 2.5 V supply (see DESIGN.md section 4).
struct PowerDetectorParams {
    // Rectifier Q1 and load Q2 (NMOS).
    double q1_w = 20e-6;
    double q1_l = 0.5e-6;
    double q2_w = 20e-6;
    double q2_l = 0.5e-6;
    double kp = 100e-6;
    double vt0 = 0.5;
    double lambda = 0.03;
    // Threshold-extractor bias: Rb feeds diode-connected Q5 (vb = VT + vov),
    // divider R_bg (vb -> vg) and R3 (Vt -> vg) mixes in the tuning pin with
    // ratio R3/(R_bg+R3) ~ 0.2.
    double q5_w = 10e-6;
    double q5_l = 0.5e-6;
    double r_vth_bias = 800e3;  ///< VDD -> vb extractor feed (small vov)
    double r_bg = 71e3;         ///< vb -> vg (tracking ratio ~0.9)
    double r3 = 640e3;          ///< Vt -> vg (tuning injection, weight ~0.1)
    // Load resistor and low-pass capacitor.
    double r4 = 2e3;
    double c2 = 2e-12;
    // Input coupling capacitor.
    double c1 = 2e-12;
    // Reference branch: identical extractor + divider with R7 (vg_ref -> GND)
    // in place of the tuning leg, reference load R8, gate decoupling C3.
    double r7 = 640e3;
    double r8 = 2e3;
    double c3 = 2e-12;
};

/// Builds the detector into a Circuit and exposes its terminals.
class PowerDetector {
  public:
    /// @p vdd is the (gateable) supply node, @p rf_in the RF signal node the
    /// coupling capacitor taps, @p tune the tuneP pin (reachable over the
    /// 1149.4 analog bus through the .4 MUX).
    PowerDetector(const std::string& prefix, circuit::Circuit& circuit, circuit::NodeId vdd,
                  circuit::NodeId rf_in, circuit::NodeId tune, PowerDetectorParams params = {});

    circuit::NodeId vout_p() const { return vout_p_; }
    circuit::NodeId vout_n() const { return vout_n_; }
    circuit::NodeId gate() const { return vg_; }
    circuit::NodeId ref_gate() const { return vg_ref_; }

    const PowerDetectorParams& params() const { return params_; }
    circuit::Mosfet& q1() { return *q1_; }
    circuit::Mosfet& q2() { return *q2_; }

    /// Eq. (1) prediction of VoutN - VoutP for a sinusoid of peak amplitude
    /// @p peak_volts at the gate, assuming the gate sits exactly at
    /// threshold and nominal devices.  Used for validation, not measurement.
    double analytic_vout(double peak_volts) const;

    /// The rectified DC drain current IDC for peak amplitude @p peak_volts.
    double analytic_idc(double peak_volts) const;

  private:
    PowerDetectorParams params_;
    circuit::NodeId vg_{};
    circuit::NodeId vg_ref_{};
    circuit::NodeId vout_p_{};
    circuit::NodeId vout_n_{};
    circuit::Mosfet* q1_ = nullptr;
    circuit::Mosfet* q2_ = nullptr;
};

}  // namespace rfabm::core
