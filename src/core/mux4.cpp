#include "core/mux4.hpp"

#include <stdexcept>

namespace rfabm::core {

std::uint8_t select_word(std::initializer_list<SelectBit> bits) {
    std::uint8_t word = 0;
    for (SelectBit b : bits) word |= static_cast<std::uint8_t>(1u << static_cast<std::size_t>(b));
    return word;
}

Mux4::Mux4(const std::string& prefix, circuit::Circuit& ckt, const Signals& s,
           rfabm::jtag::SerialSelectBus& bus, double ron) {
    struct Entry {
        SelectBit bit;
        const char* suffix;
        circuit::NodeId a;
        circuit::NodeId b;
    };
    const Entry entries[6] = {
        {SelectBit::kOutPlusToAb1, "out_plus", s.out_plus, s.ab1},
        {SelectBit::kOutMinusToAb2, "out_minus", s.out_minus, s.ab2},
        {SelectBit::kFdetToAb1, "fdet", s.fdet_out, s.ab1},
        {SelectBit::kTunePFromAb2, "tunep", s.tune_p, s.ab2},
        {SelectBit::kTuneFFromAb2, "tunef", s.tune_f, s.ab2},
        {SelectBit::kIbiasFromAb1, "ibias", s.ibias, s.ab1},
    };
    for (const Entry& e : entries) {
        auto& sw = ckt.add<circuit::Switch>(prefix + "." + e.suffix, e.a, e.b, ron);
        switches_[static_cast<std::size_t>(e.bit)] = &sw;
        bus.attach_switch(static_cast<std::size_t>(e.bit), sw);
    }
}

circuit::Switch& Mux4::switch_for(SelectBit bit) {
    const auto idx = static_cast<std::size_t>(bit);
    if (idx >= switches_.size() || switches_[idx] == nullptr) {
        throw std::invalid_argument("Mux4: bit has no switch");
    }
    return *switches_[idx];
}

}  // namespace rfabm::core
