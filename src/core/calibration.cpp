#include "core/calibration.hpp"

#include <cmath>

namespace rfabm::core {

namespace {

double quantize(double v, double step) { return std::round(v / step) * step; }

}  // namespace

TunePResult calibrate_tune_p(MeasurementController& controller,
                             const CalibrationOptions& options) {
    RfAbmChip& chip = controller.chip();
    chip.rf_off();
    chip.fin_off();
    if (!controller.session_open()) controller.open_session();

    TunePResult result;
    // Vout(tuneP) is monotone increasing: above threshold Q1 conducts and the
    // differential output rises.  Binary-search the conduction onset.
    double lo = options.tune_p_lo;
    double hi = options.tune_p_hi;
    for (int i = 0; i < options.max_iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        controller.apply_tune_p(mid);
        // The zero-signal offset IS the tare reading (RF is muted here).
        const double vout = controller.tare_power();
        ++result.iterations;
        if (vout > options.target_offset_v) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo < options.dac_step) break;
    }
    result.bench_volts = quantize(0.5 * (lo + hi), options.dac_step);
    controller.apply_tune_p(result.bench_volts);
    result.vout_offset = controller.tare_power();
    return result;
}

TuneFResult calibrate_tune_f(MeasurementController& controller,
                             const CalibrationOptions& options) {
    RfAbmChip& chip = controller.chip();
    if (!controller.session_open()) controller.open_session();
    chip.set_rf(options.p_ref_dbm, options.f_ref_hz);

    TuneFResult result;
    // Nominal design target at the divided reference frequency, evaluated
    // with the *default* tune voltage and nominal parameters — the value a
    // datasheet would quote.
    const double f_div = options.f_ref_hz / chip.config().prescaler_divide;
    const double vtune_nominal = 2.0;
    result.target = chip.fdet().analytic_vout(f_div, vtune_nominal);

    // FVC output is monotone increasing in the tune voltage (Vc = I/(2 C1 f)).
    double lo = options.tune_f_lo;
    double hi = options.tune_f_hi;
    for (int i = 0; i < options.max_iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        controller.apply_tune_f(mid);
        const double vout = controller.measure_freq_vout();
        ++result.iterations;
        if (vout > result.target) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo < options.tune_f_dac_step) break;
    }
    result.bench_volts = quantize(0.5 * (lo + hi), options.tune_f_dac_step);
    controller.apply_tune_f(result.bench_volts);
    result.vout = controller.measure_freq_vout();
    chip.rf_off();
    return result;
}

DcCalibration dc_calibrate(MeasurementController& controller,
                           const CalibrationOptions& options) {
    DcCalibration cal;
    cal.tune_p = calibrate_tune_p(controller, options);
    cal.tune_f = calibrate_tune_f(controller, options);
    return cal;
}

rfabm::rf::MonotoneCurve acquire_power_curve(MeasurementController& controller,
                                             const std::vector<double>& powers_dbm,
                                             double carrier_hz) {
    RfAbmChip& chip = controller.chip();
    std::vector<rfabm::rf::CurvePoint> points;
    points.reserve(powers_dbm.size());
    for (double dbm : powers_dbm) {
        chip.set_rf(dbm, carrier_hz);
        points.push_back({dbm, controller.measure_power_vout()});
    }
    chip.rf_off();
    return rfabm::rf::MonotoneCurve(std::move(points));
}

rfabm::rf::MonotoneCurve acquire_frequency_curve(MeasurementController& controller,
                                                 const std::vector<double>& freqs_ghz,
                                                 double power_dbm) {
    RfAbmChip& chip = controller.chip();
    std::vector<rfabm::rf::CurvePoint> points;
    points.reserve(freqs_ghz.size());
    for (double ghz : freqs_ghz) {
        chip.set_rf(power_dbm, ghz * 1e9);
        points.push_back({ghz, controller.measure_freq_vout()});
    }
    chip.rf_off();
    return rfabm::rf::MonotoneCurve(std::move(points));
}

}  // namespace rfabm::core
