#include "core/measurement.hpp"

#include "circuit/measure.hpp"
#include "jtag/instructions.hpp"

namespace rfabm::core {

using circuit::NodeId;
using rfabm::jtag::Instruction;
using rfabm::jtag::TbicPattern;

MeasurementController::MeasurementController(RfAbmChip& chip, MeasureOptions options)
    : chip_(chip), options_(options) {}

void MeasurementController::open_session() {
    auto& drv = chip_.tap_driver();
    drv.reset_via_tms();
    // Load PROBE; the instruction hook forces mission-safe defaults, then the
    // boundary scan sets the TBIC connect pattern.  Cell order in the chip's
    // boundary register: TBIC S1..S6, then ABM_RF (D,E,G,B1,B2), then
    // ABM_FIN (D,E,G,B1,B2) — 16 cells.
    drv.load(Instruction::kProbe);
    std::vector<bool> cells(16, false);
    cells[0] = true;  // TBIC S1: AT1 - AB1
    cells[1] = true;  // TBIC S2: AT2 - AB2
    drv.scan_dr(cells);
    // Power on the detectors through the serial select bus.
    select_ = select_word({SelectBit::kDetectorPower});
    chip_.select_bus().write_word(select_, kSelectWidth);
    // Establish the operating point with the session topology in place.
    chip_.engine().init();
    session_open_ = true;
}

void MeasurementController::set_select(std::uint8_t word) {
    select_ = word;
    chip_.select_bus().write_word(word, kSelectWidth);
}

double MeasurementController::settle_read(NodeId p, NodeId n, double period, int cycles,
                                          bool* settled) {
    circuit::SettleOptions sopts;
    sopts.period = period;
    sopts.cycles_per_window = cycles;
    sopts.rel_tol = options_.rel_tol;
    sopts.abs_tol = options_.abs_tol;
    sopts.max_windows = options_.max_windows;
    sopts.lookback = options_.lookback;
    sopts.min_windows = options_.lookback + 2;
    const circuit::SettleResult r =
        circuit::settle_cycle_average(chip_.engine(), p, n, sopts);
    if (settled != nullptr) *settled = r.settled;
    return r.value;
}

double MeasurementController::read_at1() {
    return settle_read(chip_.at1(), circuit::kGround, chip_.stimulus_period(),
                       options_.cycles_per_window, &last_settled_);
}

double MeasurementController::read_diff() {
    return settle_read(chip_.at1(), chip_.at2(), chip_.stimulus_period(),
                       options_.cycles_per_window, &last_settled_);
}

double MeasurementController::apply_tune(double volts, SelectBit bit, NodeId pin,
                                         void (RfAbmChip::*hold_setter)(double)) {
    if (!session_open_) open_session();
    // Route AB2 to the tuning pin, connect the bench source to AT2, drive.
    set_select(static_cast<std::uint8_t>(select_word({bit, SelectBit::kDetectorPower})));
    chip_.set_tune_source(volts, /*connected=*/true);
    // Let the hold capacitor charge through the bus (tau ~ 10 pF * 250 ohm).
    chip_.engine().run_for(200e-9);
    const double latched = chip_.engine().v(pin);
    // Park the value on the external hold DAC and release the bus.
    (chip_.*hold_setter)(latched);
    chip_.set_tune_source(0.0, /*connected=*/false);
    set_select(select_word({SelectBit::kDetectorPower}));
    tare_valid_ = false;  // tuning moves the zero-signal offset
    return latched;
}

double MeasurementController::apply_tune_p(double volts) {
    return apply_tune(volts, SelectBit::kTunePFromAb2, chip_.tune_p_pin(),
                      &RfAbmChip::set_hold_tune_p);
}

double MeasurementController::apply_tune_f(double volts) {
    return apply_tune(volts, SelectBit::kTuneFFromAb2, chip_.tune_f_pin(),
                      &RfAbmChip::set_hold_tune_f);
}

double MeasurementController::tare_power() {
    if (!session_open_) open_session();
    set_select(select_word(
        {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kDetectorPower}));
    // Mute the generator, read the residual offset, restore the drive.
    const auto saved_hz = chip_.rf_frequency();
    const auto saved_dbm = chip_.rf_power_dbm();
    chip_.rf_off();
    // Dwell: let the gate-bias network recover from any prior large drive
    // before judging convergence.
    chip_.engine().run_for(100e-9);
    tare_ = read_diff();
    tare_valid_ = true;
    if (saved_hz && saved_dbm) chip_.set_rf(*saved_dbm, *saved_hz);
    return tare_;
}

double MeasurementController::measure_power_vout() {
    if (!session_open_) open_session();
    if (!tare_valid_) tare_power();
    set_select(select_word(
        {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kDetectorPower}));
    return read_diff() - tare_;
}

double MeasurementController::measure_freq_vout(bool use_fin) {
    if (!session_open_) open_session();
    auto bits = use_fin ? select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower,
                                       SelectBit::kInputSelectFin})
                        : select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower});
    set_select(bits);
    return settle_read(chip_.at1(), circuit::kGround, chip_.fvc_clock_period(),
                       options_.freq_cycles_per_window, &last_settled_);
}

PowerMeasurement MeasurementController::measure_power(const rfabm::rf::MonotoneCurve& cal) {
    PowerMeasurement m;
    m.vout = measure_power_vout();
    m.settled = last_settled_;
    m.dbm = cal.invert(m.vout);
    return m;
}

FrequencyMeasurement MeasurementController::measure_frequency(
    const rfabm::rf::MonotoneCurve& cal, bool use_fin) {
    FrequencyMeasurement m;
    const std::uint64_t edges_before = chip_.fvc_edges();
    m.vout = measure_freq_vout(use_fin);
    m.settled = last_settled_;
    m.edges = chip_.fvc_edges() - edges_before;
    m.ghz = cal.invert(m.vout);
    // A frequency read needs a live clock: demand a sensible edge count.
    m.valid = m.settled && m.edges >= 8;
    return m;
}

}  // namespace rfabm::core
