#include "core/measurement.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "circuit/measure.hpp"
#include "circuit/transient.hpp"
#include "jtag/instructions.hpp"
#include "lint/erc.hpp"
#include "lint/flow/cache.hpp"
#include "lint/flow/interpreter.hpp"

namespace rfabm::core {

using circuit::NodeId;
using rfabm::jtag::Instruction;
using rfabm::jtag::TbicPattern;

const char* to_string(MeasurementStatus status) {
    switch (status) {
        case MeasurementStatus::kOk: return "Ok";
        case MeasurementStatus::kDegraded: return "Degraded";
        case MeasurementStatus::kFailed: return "Failed";
        case MeasurementStatus::kTimedOut: return "TimedOut";
        case MeasurementStatus::kNonFinite: return "NonFinite";
    }
    return "?";
}

const char* to_string(SuspectedFault fault) {
    switch (fault) {
        case SuspectedFault::kNone: return "none";
        case SuspectedFault::kScanChain: return "scan-chain";
        case SuspectedFault::kSelectPath: return "select-path";
        case SuspectedFault::kConvergence: return "convergence";
        case SuspectedFault::kSignalPath: return "signal-path";
        case SuspectedFault::kNonSettling: return "non-settling";
        case SuspectedFault::kConfigLint: return "config-lint";
        case SuspectedFault::kCancelled: return "cancelled";
        case SuspectedFault::kNonFinite: return "non-finite";
    }
    return "?";
}

lint::SelectBusModel mux4_select_model() {
    lint::SelectBusModel model;
    model.name = ".4MUX";
    model.power_bit = static_cast<int>(SelectBit::kDetectorPower);
    model.routes = {
        {static_cast<std::size_t>(SelectBit::kOutPlusToAb1), 1, true, "out+ -> AB1"},
        {static_cast<std::size_t>(SelectBit::kOutMinusToAb2), 2, true, "out- -> AB2"},
        {static_cast<std::size_t>(SelectBit::kFdetToAb1), 1, true, "Fdet -> AB1"},
        {static_cast<std::size_t>(SelectBit::kTunePFromAb2), 2, false, "tuneP <- AB2"},
        {static_cast<std::size_t>(SelectBit::kTuneFFromAb2), 2, false, "tuneF <- AB2"},
        {static_cast<std::size_t>(SelectBit::kIbiasFromAb1), 1, false, "Ibias <- AB1"},
    };
    return model;
}

std::string MeasurementDiagnostics::to_string() const {
    std::ostringstream os;
    os << rfabm::core::to_string(status) << " (suspect: " << rfabm::core::to_string(suspect)
       << ", retries: " << retries << ", sessions: " << reopened_sessions;
    if (backoff_s_total > 0.0) os << ", backoff: " << backoff_s_total * 1e9 << " ns";
    if (fallback_used) os << ", fallback: " << fallback;
    os << ")";
    if (!detail.empty()) os << ": " << detail;
    return os.str();
}

namespace {

/// y-extent of a calibration curve (the ends, since it is monotone).
struct YRange {
    double lo = 0.0;
    double hi = 0.0;
    double span() const { return hi - lo; }
};

YRange curve_y_range(const rfabm::rf::MonotoneCurve& cal) {
    const double a = cal.points().front().y;
    const double b = cal.points().back().y;
    return {std::min(a, b), std::max(a, b)};
}

}  // namespace

namespace {

/// Session-boundary crash-point plumbing (see set_session_open_hook).
std::atomic<void (*)(std::uint64_t)> g_session_open_hook{nullptr};
std::atomic<std::uint64_t> g_sessions_opened{0};

}  // namespace

void MeasurementController::set_session_open_hook(void (*hook)(std::uint64_t)) {
    g_session_open_hook.store(hook, std::memory_order_release);
}

MeasurementController::MeasurementController(RfAbmChip& chip, MeasureOptions options)
    : chip_(chip), options_(options) {}

void MeasurementController::open_session() {
    auto& drv = chip_.tap_driver();
    drv.reset_via_tms();
    // Load PROBE; the instruction hook forces mission-safe defaults, then the
    // boundary scan sets the TBIC connect pattern.  Cell order in the chip's
    // boundary register: TBIC S1..S6, then ABM_RF (D,E,G,B1,B2), then
    // ABM_FIN (D,E,G,B1,B2) — 16 cells.
    drv.load(Instruction::kProbe);
    std::vector<bool> cells(16, false);
    cells[0] = true;  // TBIC S1: AT1 - AB1
    cells[1] = true;  // TBIC S2: AT2 - AB2
    drv.scan_dr(cells);
    // Power on the detectors through the serial select bus.
    select_ = select_word({SelectBit::kDetectorPower});
    chip_.select_bus().write_word(select_, kSelectWidth);
    // Establish the operating point with the session topology in place.
    chip_.engine().init();
    session_open_ = true;
    engine_ready_ = true;
    const std::uint64_t seq = g_sessions_opened.fetch_add(1, std::memory_order_relaxed) + 1;
    if (auto* hook = g_session_open_hook.load(std::memory_order_acquire)) hook(seq);
}

void MeasurementController::set_select(std::uint8_t word) {
    select_ = word;
    chip_.select_bus().write_word(word, kSelectWidth);
}

double MeasurementController::settle_read(NodeId p, NodeId n, double period, int cycles,
                                          bool* settled) {
    circuit::SettleOptions sopts;
    sopts.period = period;
    sopts.cycles_per_window = cycles;
    sopts.rel_tol = options_.rel_tol;
    sopts.abs_tol = options_.abs_tol;
    sopts.max_windows = options_.max_windows;
    sopts.lookback = options_.lookback;
    sopts.min_windows = options_.lookback + 2;
    const circuit::SettleResult r =
        circuit::settle_cycle_average(chip_.engine(), p, n, sopts);
    if (settled != nullptr) *settled = r.settled;
    return r.value;
}

double MeasurementController::read_at1() {
    return settle_read(chip_.at1(), circuit::kGround, chip_.stimulus_period(),
                       options_.cycles_per_window, &last_settled_);
}

double MeasurementController::read_diff() {
    return settle_read(chip_.at1(), chip_.at2(), chip_.stimulus_period(),
                       options_.cycles_per_window, &last_settled_);
}

double MeasurementController::apply_tune(double volts, SelectBit bit, NodeId pin,
                                         void (RfAbmChip::*hold_setter)(double)) {
    if (!session_open_) open_session();
    // Route AB2 to the tuning pin, connect the bench source to AT2, drive.
    set_select(static_cast<std::uint8_t>(select_word({bit, SelectBit::kDetectorPower})));
    chip_.set_tune_source(volts, /*connected=*/true);
    // Let the hold capacitor charge through the bus (tau ~ 10 pF * 250 ohm).
    chip_.engine().run_for(200e-9);
    const double latched = chip_.engine().v(pin);
    // Park the value on the external hold DAC and release the bus.
    (chip_.*hold_setter)(latched);
    chip_.set_tune_source(0.0, /*connected=*/false);
    set_select(select_word({SelectBit::kDetectorPower}));
    tare_valid_ = false;  // tuning moves the zero-signal offset
    return latched;
}

double MeasurementController::apply_tune_p(double volts) {
    return apply_tune(volts, SelectBit::kTunePFromAb2, chip_.tune_p_pin(),
                      &RfAbmChip::set_hold_tune_p);
}

double MeasurementController::apply_tune_f(double volts) {
    return apply_tune(volts, SelectBit::kTuneFFromAb2, chip_.tune_f_pin(),
                      &RfAbmChip::set_hold_tune_f);
}

double MeasurementController::tare_power() {
    if (!session_open_) open_session();
    set_select(select_word(
        {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kDetectorPower}));
    // Mute the generator, read the residual offset, restore the drive.
    const auto saved_hz = chip_.rf_frequency();
    const auto saved_dbm = chip_.rf_power_dbm();
    chip_.rf_off();
    // Dwell: let the gate-bias network recover from any prior large drive
    // before judging convergence.
    chip_.engine().run_for(100e-9);
    tare_ = read_diff();
    tare_valid_ = true;
    if (saved_hz && saved_dbm) chip_.set_rf(*saved_dbm, *saved_hz);
    return tare_;
}

double MeasurementController::measure_power_vout() {
    if (!session_open_) open_session();
    if (!tare_valid_) tare_power();
    set_select(select_word(
        {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kDetectorPower}));
    return read_diff() - tare_;
}

double MeasurementController::measure_freq_vout(bool use_fin) {
    if (!session_open_) open_session();
    auto bits = use_fin ? select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower,
                                       SelectBit::kInputSelectFin})
                        : select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower});
    set_select(bits);
    return settle_read(chip_.at1(), circuit::kGround, chip_.fvc_clock_period(),
                       options_.freq_cycles_per_window, &last_settled_);
}

std::optional<rf::surrogate::Query> MeasurementController::surrogate_query(double vdd) const {
    if (options_.surrogate.store == nullptr) return std::nullopt;
    // Surfaces are parameterized by the applied stimulus; without a known
    // generator setting there is no honest query (or training) point.
    const auto dbm = chip_.rf_power_dbm();
    const auto hz = chip_.rf_frequency();
    if (!dbm || !hz) return std::nullopt;
    rf::surrogate::Query q;
    q.pin_dbm = *dbm;
    q.freq_hz = *hz;
    q.vdd = vdd;
    return q;
}

bool MeasurementController::surrogate_serve(rf::surrogate::Quantity quantity, double vdd,
                                            double* vout, double* bound) {
    // Training-generation binding: observe-only, the tier is never consulted
    // (see SurrogateBinding::serve).
    if (!options_.surrogate.serve) return false;
    const auto q = surrogate_query(vdd);
    if (!q) return false;
    const rf::surrogate::SurrogateKey key{static_cast<std::uint32_t>(quantity),
                                          options_.surrogate.die, options_.surrogate.corner};
    last_surrogate_ = options_.surrogate.store->try_serve(key, *q, vout, bound);
    return last_surrogate_ == rf::surrogate::Decision::kHit;
}

void MeasurementController::surrogate_observe(rf::surrogate::Quantity quantity, double vdd,
                                              double vout) {
    const auto q = surrogate_query(vdd);
    if (!q || !std::isfinite(vout)) return;
    const rf::surrogate::SurrogateKey key{static_cast<std::uint32_t>(quantity),
                                          options_.surrogate.die, options_.surrogate.corner};
    options_.surrogate.store->observe(key, *q, vout);
}

PowerMeasurement MeasurementController::measure_power(const rfabm::rf::MonotoneCurve& cal) {
    PowerMeasurement m;
    // Tier 1: serve the settled Vout from the fitted response surface when
    // the query is in-envelope and the surface's error bound is in budget.
    if (surrogate_serve(rf::surrogate::Quantity::kPowerVout, chip_.conditions().vdd_pdet,
                        &m.vout, &m.surrogate_bound)) {
        m.from_surrogate = true;
        m.settled = true;
        m.dbm = cal.invert(m.vout);
        return m;
    }
    // Tier 2: the full transient solve, which also trains the surface.
    m.vout = measure_power_vout();
    m.settled = last_settled_;
    m.dbm = cal.invert(m.vout);
    if (m.settled) {
        surrogate_observe(rf::surrogate::Quantity::kPowerVout, chip_.conditions().vdd_pdet,
                          m.vout);
    }
    return m;
}

FrequencyMeasurement MeasurementController::measure_frequency(
    const rfabm::rf::MonotoneCurve& cal, bool use_fin) {
    FrequencyMeasurement m;
    // Tier 1 (RF path only: the fin path measures a different input whose
    // frequency the surrogate key does not describe).  Surfaces train only on
    // valid reads, so a served reading counts as valid by construction.
    if (!use_fin &&
        surrogate_serve(rf::surrogate::Quantity::kFreqVout, chip_.conditions().vdd_fdet,
                        &m.vout, &m.surrogate_bound)) {
        m.from_surrogate = true;
        m.settled = true;
        m.valid = true;
        m.ghz = cal.invert(m.vout);
        return m;
    }
    const std::uint64_t edges_before = chip_.fvc_edges();
    m.vout = measure_freq_vout(use_fin);
    m.settled = last_settled_;
    m.edges = chip_.fvc_edges() - edges_before;
    m.ghz = cal.invert(m.vout);
    // A frequency read needs a live clock: demand a sensible edge count.
    m.valid = m.settled && m.edges >= 8;
    if (!use_fin && m.valid) {
        surrogate_observe(rf::surrogate::Quantity::kFreqVout, chip_.conditions().vdd_fdet,
                          m.vout);
    }
    return m;
}

bool MeasurementController::verify_scan_chain() {
    // read_idcode() loads the IDCODE instruction, dropping PROBE: whatever
    // session was open is gone after this check.
    session_open_ = false;
    // TMS-reset first, as a bench tester would: it re-synchronizes a TAP
    // desynchronized by earlier clock glitches before the readback is judged.
    chip_.tap_driver().reset_via_tms();
    const std::uint32_t expected = chip_.config().idcode | 1u;  // LSB always 1
    return chip_.tap_driver().read_idcode() == expected;
}

bool MeasurementController::verify_select(std::uint8_t word) const {
    auto& bus = chip_.select_bus();
    for (std::size_t i = 0; i < kSelectWidth; ++i) {
        if (bus.output(i) != (((word >> i) & 1u) != 0)) return false;
    }
    return true;
}

double MeasurementController::liveness_read(NodeId pin) {
    // Coarse amplitude estimate only: relaxed tolerances, tight window
    // budget, so a dead (slowly drifting) pin cannot stall the pipeline.
    circuit::SettleOptions sopts;
    sopts.period = chip_.stimulus_period();
    sopts.cycles_per_window = options_.cycles_per_window;
    sopts.rel_tol = 1e-2;
    sopts.abs_tol = 1e-3;
    sopts.max_windows = 40;
    sopts.lookback = 2;
    sopts.min_windows = 4;
    return circuit::settle_cycle_average(chip_.engine(), pin, circuit::kGround, sopts).value;
}

std::size_t MeasurementController::lint_preflight(std::uint8_t word, lint::Report& report) {
    const std::size_t before = report.diagnostics().size();
    // Electrical rules over the whole chip netlist.  Dangling-node checks are
    // off: chip-level blocks legitimately own sense-only nets (comparator
    // taps, probe nodes) that a board-level ERC would not see.
    lint::ErcOptions erc;
    erc.check_dangling = false;
    lint::run_erc(chip_.circuit(), report, erc);
    // 1149.4 switch-state rules for the current instruction.
    lint::lint_abm_state(chip_.rf_pin_abm(), report);
    lint::lint_abm_state(chip_.fin_pin_abm(), report);
    lint::lint_tbic_state(chip_.tbic(), report);
    // Select-word contention rules plus the MUX-vs-latch cross-check: a
    // routing switch whose electrical state disagrees with its latched select
    // bit is stuck (the select readback cannot see this).
    const lint::SelectBusModel model = mux4_select_model();
    lint::lint_select_word(model, word, report);
    for (const lint::SelectRoute& route : model.routes) {
        const auto bit = static_cast<SelectBit>(route.bit);
        const bool latched = chip_.select_bus().output(route.bit);
        const bool closed = chip_.mux().switch_for(bit).effective_closed();
        if (latched != closed) {
            report.add("mux-select-mismatch", lint::Severity::kError, lint::SourceLoc{},
                       ".4 MUX route '" + route.name + "' is " +
                           (closed ? "closed" : "open") + " but its select latch says " +
                           (latched ? "closed" : "open") + ": switch stuck?",
                       "", model.name);
        }
    }
    return report.diagnostics().size() - before;
}

namespace {

/// First error in @p report (for MeasurementDiagnostics::detail).
std::string first_lint_error(const lint::Report& report) {
    for (const auto& diag : report.diagnostics()) {
        if (diag.severity == lint::Severity::kError) {
            return diag.message + " [" + diag.rule + "]";
        }
    }
    return "static lint reported errors";
}

}  // namespace

bool MeasurementController::flow_admission_rejects(MeasurementDiagnostics& d) {
    if (options_.admission_program == nullptr) return false;
    lint::Report report;
    if (options_.admission_cache != nullptr) {
        options_.admission_cache->admit(*options_.admission_program, report);
    } else {
        lint::flow::flow_lint(*options_.admission_program, report);
    }
    if (!report.has_errors()) return false;
    // The campaign's own scan-program sequence is statically broken: no
    // retry or session can fix it, so reject before the TAP is touched.
    d.suspect = SuspectedFault::kConfigLint;
    d.status = MeasurementStatus::kFailed;
    d.detail = first_lint_error(report);
    return true;
}

PowerMeasurement MeasurementController::measure_power_checked(
    const rfabm::rf::MonotoneCurve& cal, std::optional<double> expected_dbm) {
    PowerMeasurement m;
    MeasurementDiagnostics& d = m.diag;
    if (flow_admission_rejects(d)) return m;
    // Two-tier serving: an in-envelope, in-budget surrogate hit needs none of
    // the scan/select/liveness machinery below — those checks guard the
    // physical read path, which a served reading never exercises.
    if (surrogate_serve(rf::surrogate::Quantity::kPowerVout, chip_.conditions().vdd_pdet,
                        &m.vout, &m.surrogate_bound)) {
        m.from_surrogate = true;
        m.settled = true;
        m.dbm = cal.invert(m.vout);
        d.status = MeasurementStatus::kOk;
        d.detail = "served by surrogate surface";
        return m;
    }
    const RetryPolicy& policy = options_.retry;
    const std::uint8_t word = select_word(
        {SelectBit::kOutPlusToAb1, SelectBit::kOutMinusToAb2, SelectBit::kDetectorPower});
    double backoff = policy.backoff_s;
    const int attempts = std::max(1, policy.max_retries + 1);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        // 0. Campaign cancellation/deadline: stop before spending a (re)try.
        if (options_.cancel.stop_requested()) {
            d.suspect = SuspectedFault::kCancelled;
            d.status = options_.cancel.deadline_expired() ? MeasurementStatus::kTimedOut
                                                          : MeasurementStatus::kFailed;
            d.detail = options_.cancel.stop_reason();
            return m;
        }
        if (attempt > 0) {
            d.retries = attempt;
            if (engine_ready_ && backoff > 0.0) {
                try {
                    chip_.engine().run_for(backoff);
                    d.backoff_s_total += backoff;
                } catch (const circuit::ConvergenceError&) {
                    // The engine is wedged; open_session() below re-solves.
                } catch (const circuit::SolveAborted&) {
                    // Token fired during the dwell; the loop-top poll exits.
                }
                backoff *= policy.backoff_factor;
            }
        }
        // 1. Scan-chain integrity: IDCODE must read back correctly before we
        //    trust anything shifted through TDI/TDO.
        if (!verify_scan_chain()) {
            d.suspect = SuspectedFault::kScanChain;
            d.detail = "IDCODE readback mismatch";
            continue;
        }
        // 2. (Re)open the session and read.  The solver never aborts the
        //    pipeline: non-convergence is recorded and retried.
        try {
            open_session();
            ++d.reopened_sessions;
            if (options_.lint_before_measure) {
                set_select(word);
                lint::Report preflight;
                lint_preflight(word, preflight);
                if (preflight.has_errors()) {
                    // A statically-detectable configuration defect: reject
                    // immediately instead of burning retries on transient
                    // reads that cannot succeed.
                    d.suspect = SuspectedFault::kConfigLint;
                    d.status = MeasurementStatus::kFailed;
                    d.detail = first_lint_error(preflight);
                    return m;
                }
            }
            m.vout = measure_power_vout();
            m.settled = last_settled_;
        } catch (const circuit::SolveAborted& e) {
            // The supervisor pulled the plug mid-solve.  A watchdog deadline
            // on our token maps to kTimedOut; anything else is a campaign
            // cancel.  Either way the token stays fired — retrying is
            // pointless, so stop immediately.
            d.suspect = SuspectedFault::kCancelled;
            d.status = options_.cancel.deadline_expired() ? MeasurementStatus::kTimedOut
                                                          : MeasurementStatus::kFailed;
            d.detail = e.what();
            return m;
        } catch (const circuit::ConvergenceError& e) {
            if (e.non_finite()) {
                // NaN/Inf is deterministic arithmetic poison: a retry reruns
                // the exact same blow-up, so fail fast with the located
                // diagnosis instead of burning the budget.
                d.suspect = SuspectedFault::kNonFinite;
                d.status = MeasurementStatus::kNonFinite;
                d.detail = e.what();
                return m;
            }
            d.suspect = SuspectedFault::kConvergence;
            d.detail = e.what();
            continue;
        }
        // 3. Select-path integrity: the latched word must match what we wrote.
        if (!verify_select(word)) {
            d.suspect = SuspectedFault::kSelectPath;
            d.detail = "select-bus readback mismatch";
            continue;
        }
        // 4. Non-settling fallback: one extended-window re-read before
        //    burning a whole retry on it.
        if (!m.settled) {
            const MeasureOptions saved = options_;
            options_.max_windows *= 2;
            options_.cycles_per_window *= 2;
            try {
                m.vout = measure_power_vout();
                m.settled = last_settled_;
            } catch (const circuit::ConvergenceError&) {
                m.settled = false;
            } catch (const circuit::SolveAborted&) {
                m.settled = false;  // loop-top poll turns this into kCancelled
            }
            options_ = saved;
            if (m.settled) {
                d.fallback_used = true;
                d.fallback = "extended settle window";
            } else {
                d.suspect = SuspectedFault::kNonSettling;
                d.detail = "DC read did not settle within the window budget";
                continue;
            }
        }
        // 5. Plausibility: both detector outputs must be electrically alive
        //    (a floating ATAP pin reads near 0 through the DMM load) and the
        //    reading must be credible against the calibration curve.
        {
            const double v1 = liveness_read(chip_.at1());
            const double v2 = liveness_read(chip_.at2());
            if (std::fabs(v1) < policy.liveness_min_v || std::fabs(v2) < policy.liveness_min_v) {
                std::ostringstream os;
                os << "ATAP pin liveness check failed (v(AT1) = " << v1 << " V, v(AT2) = "
                   << v2 << " V)";
                d.suspect = SuspectedFault::kSignalPath;
                d.detail = os.str();
                continue;
            }
        }
        // 5b. Bus isolation: with every MUX path opened (detectors kept
        //     powered) the ATAP pins must go dead.  A pin still alive points
        //     at a switch stuck closed — invisible to the select readback,
        //     which only sees the latched control bits.
        {
            set_select(select_word({SelectBit::kDetectorPower}));
            const double v1 = liveness_read(chip_.at1());
            const double v2 = liveness_read(chip_.at2());
            set_select(word);
            if (std::fabs(v1) >= policy.liveness_min_v ||
                std::fabs(v2) >= policy.liveness_min_v) {
                std::ostringstream os;
                os << "analog bus not isolated when muted (v(AT1) = " << v1
                   << " V, v(AT2) = " << v2 << " V): switch stuck closed?";
                d.suspect = SuspectedFault::kSignalPath;
                d.detail = os.str();
                continue;
            }
        }
        if (cal.valid()) {
            const YRange range = curve_y_range(cal);
            const double margin = policy.range_margin * range.span();
            if (m.vout < range.lo - margin || m.vout > range.hi + margin) {
                std::ostringstream os;
                os << "Vout = " << m.vout << " V outside calibration range [" << range.lo
                   << ", " << range.hi << "] V";
                d.suspect = SuspectedFault::kSignalPath;
                d.detail = os.str();
                continue;
            }
            m.dbm = cal.invert(m.vout);
            // The expected-stimulus cross-check runs in the dBm domain: the
            // detector curve is steep at the top and nearly flat at the
            // bottom, so a volt-domain tolerance would wave through huge
            // low-power errors (a dead detector is only ~0.08 V off).
            if (expected_dbm) {
                const double tol = policy.expected_tol * (cal.x_max() - cal.x_min());
                if (std::fabs(m.dbm - *expected_dbm) > tol) {
                    std::ostringstream os;
                    os << "measured " << m.dbm << " dBm deviates from expected "
                       << *expected_dbm << " dBm (tolerance " << tol << " dB)";
                    d.suspect = SuspectedFault::kSignalPath;
                    d.detail = os.str();
                    continue;
                }
            }
        }
        // Success.  d.suspect keeps whatever was suspected on failed attempts
        // as context for the Degraded verdict.
        d.status = (d.retries > 0 || d.fallback_used) ? MeasurementStatus::kDegraded
                                                      : MeasurementStatus::kOk;
        if (d.status == MeasurementStatus::kDegraded && d.detail.empty()) {
            d.detail = "succeeded after retry";
        }
        // Only a first-try clean read trains the surface: a Degraded value
        // already tripped a check once and is not fit to serve others.
        if (d.status == MeasurementStatus::kOk) {
            surrogate_observe(rf::surrogate::Quantity::kPowerVout,
                              chip_.conditions().vdd_pdet, m.vout);
        }
        return m;
    }
    // Budget exhausted.  A plausibility failure still carries a best-effort
    // value (Degraded); infrastructure failures carry none worth trusting.
    if (cal.valid()) m.dbm = cal.invert(m.vout);
    d.status = d.suspect == SuspectedFault::kSignalPath ? MeasurementStatus::kDegraded
                                                        : MeasurementStatus::kFailed;
    return m;
}

FrequencyMeasurement MeasurementController::measure_frequency_checked(
    const rfabm::rf::MonotoneCurve& cal, bool use_fin, std::optional<double> expected_ghz) {
    FrequencyMeasurement m;
    MeasurementDiagnostics& d = m.diag;
    if (flow_admission_rejects(d)) return m;
    // Two-tier serving (RF path only; see measure_frequency).
    if (!use_fin &&
        surrogate_serve(rf::surrogate::Quantity::kFreqVout, chip_.conditions().vdd_fdet,
                        &m.vout, &m.surrogate_bound)) {
        m.from_surrogate = true;
        m.settled = true;
        m.valid = true;
        m.ghz = cal.invert(m.vout);
        d.status = MeasurementStatus::kOk;
        d.detail = "served by surrogate surface";
        return m;
    }
    const RetryPolicy& policy = options_.retry;
    auto word = use_fin ? select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower,
                                       SelectBit::kInputSelectFin})
                        : select_word({SelectBit::kFdetToAb1, SelectBit::kDetectorPower});
    double backoff = policy.backoff_s;
    const int attempts = std::max(1, policy.max_retries + 1);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        // Campaign cancellation/deadline: stop before spending a (re)try.
        if (options_.cancel.stop_requested()) {
            d.suspect = SuspectedFault::kCancelled;
            d.status = options_.cancel.deadline_expired() ? MeasurementStatus::kTimedOut
                                                          : MeasurementStatus::kFailed;
            d.detail = options_.cancel.stop_reason();
            return m;
        }
        if (attempt > 0) {
            d.retries = attempt;
            if (engine_ready_ && backoff > 0.0) {
                try {
                    chip_.engine().run_for(backoff);
                    d.backoff_s_total += backoff;
                } catch (const circuit::ConvergenceError&) {
                } catch (const circuit::SolveAborted&) {
                    // Token fired during the dwell; the loop-top poll exits.
                }
                backoff *= policy.backoff_factor;
            }
        }
        if (!verify_scan_chain()) {
            d.suspect = SuspectedFault::kScanChain;
            d.detail = "IDCODE readback mismatch";
            continue;
        }
        const std::uint64_t edges_before = chip_.fvc_edges();
        try {
            open_session();
            ++d.reopened_sessions;
            if (options_.lint_before_measure) {
                set_select(word);
                lint::Report preflight;
                lint_preflight(word, preflight);
                if (preflight.has_errors()) {
                    d.suspect = SuspectedFault::kConfigLint;
                    d.status = MeasurementStatus::kFailed;
                    d.detail = first_lint_error(preflight);
                    return m;
                }
            }
            m.vout = measure_freq_vout(use_fin);
            m.settled = last_settled_;
        } catch (const circuit::SolveAborted& e) {
            // The supervisor pulled the plug mid-solve.  A watchdog deadline
            // on our token maps to kTimedOut; anything else is a campaign
            // cancel.  Either way the token stays fired — retrying is
            // pointless, so stop immediately.
            d.suspect = SuspectedFault::kCancelled;
            d.status = options_.cancel.deadline_expired() ? MeasurementStatus::kTimedOut
                                                          : MeasurementStatus::kFailed;
            d.detail = e.what();
            return m;
        } catch (const circuit::ConvergenceError& e) {
            if (e.non_finite()) {
                // NaN/Inf is deterministic arithmetic poison: a retry reruns
                // the exact same blow-up, so fail fast with the located
                // diagnosis instead of burning the budget.
                d.suspect = SuspectedFault::kNonFinite;
                d.status = MeasurementStatus::kNonFinite;
                d.detail = e.what();
                return m;
            }
            d.suspect = SuspectedFault::kConvergence;
            d.detail = e.what();
            continue;
        }
        if (!verify_select(word)) {
            d.suspect = SuspectedFault::kSelectPath;
            d.detail = "select-bus readback mismatch";
            continue;
        }
        if (!m.settled) {
            const MeasureOptions saved = options_;
            options_.max_windows *= 2;
            options_.freq_cycles_per_window *= 2;
            try {
                m.vout = measure_freq_vout(use_fin);
                m.settled = last_settled_;
            } catch (const circuit::ConvergenceError&) {
                m.settled = false;
            } catch (const circuit::SolveAborted&) {
                m.settled = false;  // loop-top poll turns this into kCancelled
            }
            options_ = saved;
            if (m.settled) {
                d.fallback_used = true;
                d.fallback = "extended settle window";
            } else {
                d.suspect = SuspectedFault::kNonSettling;
                d.detail = "FVC read did not settle within the window budget";
                continue;
            }
        }
        m.edges = chip_.fvc_edges() - edges_before;
        // Liveness for a frequency read is clock activity at the FVC input.
        if (m.edges < 8) {
            std::ostringstream os;
            os << "FVC clock inactive (" << m.edges << " edges during the read)";
            d.suspect = SuspectedFault::kSignalPath;
            d.detail = os.str();
            continue;
        }
        // Bus isolation (see measure_power_checked): open the FVC's bus path
        // and require both ATAP pins dead, catching switches stuck closed.
        {
            const auto mute = static_cast<std::uint8_t>(
                word & ~select_word({SelectBit::kFdetToAb1}));
            set_select(mute);
            const double v1 = liveness_read(chip_.at1());
            const double v2 = liveness_read(chip_.at2());
            set_select(word);
            if (std::fabs(v1) >= policy.liveness_min_v ||
                std::fabs(v2) >= policy.liveness_min_v) {
                std::ostringstream os;
                os << "analog bus not isolated when muted (v(AT1) = " << v1
                   << " V, v(AT2) = " << v2 << " V): switch stuck closed?";
                d.suspect = SuspectedFault::kSignalPath;
                d.detail = os.str();
                continue;
            }
        }
        if (cal.valid()) {
            const YRange range = curve_y_range(cal);
            const double margin = policy.range_margin * range.span();
            if (m.vout < range.lo - margin || m.vout > range.hi + margin) {
                std::ostringstream os;
                os << "Vout = " << m.vout << " V outside calibration range [" << range.lo
                   << ", " << range.hi << "] V";
                d.suspect = SuspectedFault::kSignalPath;
                d.detail = os.str();
                continue;
            }
            m.ghz = cal.invert(m.vout);
            // Same rationale as the power path: compare in the GHz domain,
            // where the tolerance tracks the stimulus rather than the local
            // slope of the FVC curve.
            if (expected_ghz) {
                const double tol = policy.expected_tol * (cal.x_max() - cal.x_min());
                if (std::fabs(m.ghz - *expected_ghz) > tol) {
                    std::ostringstream os;
                    os << "measured " << m.ghz << " GHz deviates from expected "
                       << *expected_ghz << " GHz (tolerance " << tol << " GHz)";
                    d.suspect = SuspectedFault::kSignalPath;
                    d.detail = os.str();
                    continue;
                }
            }
        }
        m.valid = true;
        d.status = (d.retries > 0 || d.fallback_used) ? MeasurementStatus::kDegraded
                                                      : MeasurementStatus::kOk;
        if (d.status == MeasurementStatus::kDegraded && d.detail.empty()) {
            d.detail = "succeeded after retry";
        }
        // First-try clean reads only (see measure_power_checked).
        if (!use_fin && d.status == MeasurementStatus::kOk) {
            surrogate_observe(rf::surrogate::Quantity::kFreqVout,
                              chip_.conditions().vdd_fdet, m.vout);
        }
        return m;
    }
    if (cal.valid()) m.ghz = cal.invert(m.vout);
    d.status = d.suspect == SuspectedFault::kSignalPath ? MeasurementStatus::kDegraded
                                                        : MeasurementStatus::kFailed;
    return m;
}

}  // namespace rfabm::core
