// IEEE 1149.4 switch-state lint: checks the *electrically effective* state of
// ABM and TBIC switches against the invariants the standard's mode table
// implies for the active instruction.
//
// Because the checks read Switch::effective_closed() (the state after any
// injected stuck-at defect) rather than the latched control bits, a healthy
// pattern always passes while a stuck switch, a corrupted boundary latch or a
// genuinely dangerous pattern (SH+SL crowbar, un-isolated core in EXTEST,
// VH-VL short through the TBIC) is flagged before any solve is attempted.
//
// The select-bus rules work on an abstract SelectBusModel so they apply to
// any serial select register, not just the paper's ".4 MUX" word; the core
// layer builds the concrete model (see core/measurement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jtag/abm.hpp"
#include "jtag/tbic.hpp"
#include "lint/diagnostics.hpp"

namespace rfabm::lint {

/// Check one ABM's switch pattern for the instruction it was last applied
/// with.  Returns the number of diagnostics added.
std::size_t lint_abm_state(const jtag::AnalogBoundaryModule& abm, Report& report);

/// Check the TBIC's switch pattern against its active instruction.
/// @p name labels diagnostics (the Tbic object does not expose its own).
std::size_t lint_tbic_state(const jtag::Tbic& tbic, Report& report,
                            const std::string& name = "TBIC");

/// One routing switch in a serial select word.
struct SelectRoute {
    std::size_t bit = 0;    ///< bit position in the select word
    int bus = 0;            ///< analog bus index (e.g. 1 == AB1, 2 == AB2)
    bool drives_bus = false;  ///< true: signal drives the bus; false: bus drives a load
    std::string name;       ///< human label ("out+ -> AB1")
};

/// Abstract description of a select register's routing semantics.
struct SelectBusModel {
    std::vector<SelectRoute> routes;
    int power_bit = -1;  ///< bit gating the routed detectors' power, -1 if none
    std::string name = "select";
};

/// Check a latched select word for bus contention, double loads and
/// power-gating mistakes.
std::size_t lint_select_word(const SelectBusModel& model, std::uint64_t word, Report& report);

}  // namespace rfabm::lint
