// Shared diagnostics engine for the static analysis subsystem.
//
// Every analysis family (netlist ERC, 1149.4 switch-state lint, scan-program
// lint) reports through the same Report object so the CLI, the measurement
// admission guard and the tests see one uniform stream of
//
//   source:line:column: severity: message [rule-id]
//
// records with optional fix-it hints, renderable as human text or JSON.
// Source locations reuse the netlist parser's physical-line plumbing; rules
// fired against live runtime state (an ABM switch pattern, a scan program)
// carry a device path instead of a file location.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rfabm::lint {

/// Diagnostic severity, ordered by increasing weight.
enum class Severity {
    kNote,     ///< informational context
    kWarning,  ///< suspicious but not necessarily wrong
    kError,    ///< will not simulate / violates the standard
};

std::string_view to_string(Severity severity);

/// A point in a netlist source file.  line == 0 means "no file location"
/// (runtime-state rules); column may be 0 when only the line is known.
struct SourceLoc {
    std::string file;
    std::size_t line = 0;
    std::size_t column = 0;

    bool valid() const { return line > 0; }
};

/// One finding.
struct Diagnostic {
    std::string rule;      ///< stable kebab-case rule id (see rule_catalog())
    Severity severity = Severity::kWarning;
    SourceLoc loc;         ///< netlist location, when the rule has one
    std::string device;    ///< device / module path (e.g. "RF_ABM.SH")
    std::string message;
    std::string fixit;     ///< optional suggested remedy
    /// Witness trace: the minimal op sequence establishing the reported
    /// state, one human-readable line per step (flow rules; empty for
    /// snapshot rules).
    std::vector<std::string> witness;
};

/// Catalog entry: every rule id the analyses can emit, with its default
/// severity and a one-line summary (drives `abm_lint --list-rules` and
/// docs/lint.md).
struct RuleInfo {
    std::string_view id;
    Severity severity;
    std::string_view summary;
};

/// All known rules, sorted by id.
const std::vector<RuleInfo>& rule_catalog();

/// True if @p id is a known rule id.
bool is_known_rule(std::string_view id);

/// Collects diagnostics, applies suppressions, renders text / JSON.
class Report {
  public:
    /// Add a finding (dropped silently if suppressed).  Returns true when the
    /// diagnostic was recorded.
    bool add(Diagnostic diag);

    /// Convenience: add with explicit fields.
    bool add(std::string rule, Severity severity, SourceLoc loc, std::string message,
             std::string fixit = "", std::string device = "");

    /// Suppress a rule id everywhere ("*" suppresses everything).
    void suppress_rule(std::string rule);

    /// Suppress a rule id on one physical source line ("*" for all rules).
    void suppress_line(std::size_t line, std::string rule);

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    std::size_t count(Severity severity) const;
    std::size_t error_count() const { return count(Severity::kError); }
    std::size_t warning_count() const { return count(Severity::kWarning); }
    bool has_errors() const { return error_count() > 0; }
    bool empty() const { return diags_.empty(); }
    std::size_t suppressed_count() const { return suppressed_; }

    /// Sort by (file, line, column, rule) for stable output.
    void sort();

    /// Human-readable listing, one diagnostic per line plus fix-it lines,
    /// ending with a summary ("2 errors, 1 warning.").
    std::string to_text() const;

    /// JSON document: {"diagnostics":[...],"errors":N,"warnings":N}.
    std::string to_json() const;

  private:
    bool suppressed(const Diagnostic& diag) const;

    std::vector<Diagnostic> diags_;
    std::set<std::string> rule_suppressions_;
    std::map<std::size_t, std::set<std::string>> line_suppressions_;
    std::size_t suppressed_ = 0;
};

}  // namespace rfabm::lint
