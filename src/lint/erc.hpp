// Electrical rule checks over a built Circuit, run before any solve.
//
// The checks work on the connectivity metadata every Device now exposes
// (terminals() / dc_paths()) rather than on MNA matrices, so they are O(nodes
// + devices) and catch the classic "solver will blow up or silently lie"
// netlist defects:
//
//   * nodes with no DC path to ground (undefined operating point)
//   * loops of voltage sources / inductors (singular MNA at DC)
//   * connected subcircuits with no ground reference
//   * dangling single-terminal nodes, self-looped devices
//   * zero/negative and unit-implausible component values
//   * switches whose Ron is not below Roff, armed defect devices,
//     devices carrying injected stuck faults
//
// Device netlist origins (from parse_netlist) give each finding a
// source:line:column; without origins the device name is reported instead.
#pragma once

#include <string_view>

#include "circuit/circuit.hpp"
#include "circuit/netlist_parser.hpp"
#include "lint/diagnostics.hpp"

namespace rfabm::lint {

/// Thresholds and toggles for the ERC pass.
struct ErcOptions {
    // A resistor at or above this value is treated as an open for DC
    // connectivity (matches the fault injector's open model of 1e12 ohm).
    double r_open = 1e10;
    // Plausibility windows per unit.  Outside -> erc-value-suspicious.
    double r_small = 1e-2;   ///< below: probably a units mistake
    double r_large = 1e9;    ///< above: probably meant as an open
    double c_small = 1e-18;  ///< sub-attofarad capacitors don't exist on-die
    double c_large = 1e-3;   ///< a millifarad is not an integrated capacitor
    double l_small = 1e-12;  ///< sub-picohenry inductance is wiring, not an L
    double l_large = 1.0;    ///< a henry on-die is a typo

    bool check_floating = true;
    bool check_isolated = true;
    bool check_dangling = true;
    bool check_values = true;
    bool check_loops = true;
    bool check_faults = true;  ///< armed defects / stuck switch+MOSFET states
};

/// Run all enabled checks on @p circuit, appending findings to @p report.
/// @p origins (optional) maps device names to netlist locations; @p source is
/// the file name used for those locations.  Returns the number of findings
/// added.
std::size_t run_erc(const circuit::Circuit& circuit, Report& report, const ErcOptions& options = {},
                    const circuit::NetlistOrigins* origins = nullptr,
                    std::string_view source = "");

}  // namespace rfabm::lint
