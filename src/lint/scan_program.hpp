// Static validation of queued scan programs against the IEEE 1149.1 TAP
// state machine — an SVF-checker in miniature.
//
// A program is a list of abstract operations (reset, state move, IR scan, DR
// scan, run-test, raw TMS vector).  The linter walks the program through
// next_tap_state() without touching any hardware model, tracking the state
// the real TapDriver would be in and the instruction that would be latched,
// and flags sequences that would shift garbage or leave the TAP somewhere a
// subsequent step does not expect:
//
//   * scans launched from a non-stable state
//   * DR scans whose length does not match the register the latched
//     instruction selects
//   * raw TMS moves that pass through Shift-IR/Shift-DR (clocking data)
//   * programs that never reset and programs ending in unstable states
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "jtag/instructions.hpp"
#include "jtag/tap_state.hpp"
#include "lint/diagnostics.hpp"

namespace rfabm::lint {

/// One abstract scan-program step.
struct ScanOp {
    enum class Kind {
        kReset,    ///< TRST*/five-TMS-ones: Test-Logic-Reset
        kMoveTo,   ///< TapDriver::go_to(target)
        kScanIr,   ///< scan_ir(ir): latch an instruction, end in Run-Test/Idle
        kScanDr,   ///< scan_dr of @p length bits, end in Run-Test/Idle
        kRunTest,  ///< stay in Run-Test/Idle for @p length TCK cycles
        kTmsPath,  ///< raw TMS vector clocked as-is
    };

    Kind kind = Kind::kReset;
    jtag::TapState target = jtag::TapState::kRunTestIdle;  ///< kMoveTo
    std::uint8_t ir = 0;                                   ///< kScanIr opcode
    std::size_t length = 0;                                ///< kScanDr bits / kRunTest cycles
    std::vector<bool> tms;                                 ///< kTmsPath levels
};

/// A program plus convenience builders.
struct ScanProgram {
    std::vector<ScanOp> ops;

    ScanProgram& reset();
    ScanProgram& move_to(jtag::TapState target);
    ScanProgram& scan_ir(std::uint8_t ir);
    ScanProgram& scan_ir(jtag::Instruction instruction) { return scan_ir(opcode(instruction)); }
    ScanProgram& scan_dr(std::size_t length);
    ScanProgram& run_test(std::size_t cycles);
    ScanProgram& tms_path(std::vector<bool> tms);
};

struct ScanLintOptions {
    /// Expected DR length per instruction opcode (e.g. boundary-register
    /// length for EXTEST/SAMPLE/PROBE, 1 for BYPASS, 32 for IDCODE).  DR
    /// scans under opcodes not listed here are not length-checked.
    std::map<std::uint8_t, std::size_t> dr_lengths;

    /// Seed the standard lengths: BYPASS=1, IDCODE=32, boundary instructions
    /// = @p boundary_length (skipped if 0).
    static ScanLintOptions with_boundary_length(std::size_t boundary_length);
};

/// Simulate @p program against the TAP state machine, appending findings to
/// @p report.  Returns the number of diagnostics added.
std::size_t lint_scan_program(const ScanProgram& program, Report& report,
                              const ScanLintOptions& options = {});

}  // namespace rfabm::lint
