#include "lint/flow/program.hpp"

namespace rfabm::lint::flow {

const char* to_string(AbmBit bit) {
    switch (bit) {
        case AbmBit::kSh: return "SH";
        case AbmBit::kSl: return "SL";
        case AbmBit::kSg: return "SG";
        case AbmBit::kSd: return "SD";
        case AbmBit::kSb1: return "SB1";
        case AbmBit::kSb2: return "SB2";
    }
    return "?";
}

const char* to_string(Detector detector) {
    switch (detector) {
        case Detector::kPower: return "power";
        case Detector::kFrequency: return "freq";
    }
    return "?";
}

const char* to_string(FlowOp::Kind kind) {
    switch (kind) {
        case FlowOp::Kind::kReset: return "reset";
        case FlowOp::Kind::kIrScan: return "irscan";
        case FlowOp::Kind::kAbmScan: return "abm";
        case FlowOp::Kind::kSelectScan: return "select";
        case FlowOp::Kind::kRunTest: return "runtest";
        case FlowOp::Kind::kCalibrate: return "calibrate";
        case FlowOp::Kind::kMeasure: return "measure";
    }
    return "?";
}

std::string step_label(const FlowOp& op, std::size_t index) {
    std::string label = "step " + std::to_string(index + 1) + " (" + to_string(op.kind);
    switch (op.kind) {
        case FlowOp::Kind::kAbmScan:
        case FlowOp::Kind::kSelectScan:
        case FlowOp::Kind::kCalibrate:
            label += " die " + std::to_string(op.die);
            break;
        case FlowOp::Kind::kMeasure:
            label += " die " + std::to_string(op.die) + " " + to_string(op.detector);
            break;
        case FlowOp::Kind::kIrScan:
            label += std::string(" ") + std::string(to_string(jtag::decode_instruction(op.ir)));
            break;
        default:
            break;
    }
    label += ")";
    return label;
}

bool parse_bits(std::string_view text, std::size_t width, bool msb_first, Tri* out) {
    if (text.size() != width) return false;
    for (std::size_t i = 0; i < width; ++i) {
        const char c = text[msb_first ? width - 1 - i : i];
        switch (c) {
            case '0': out[i] = Tri::kZero; break;
            case '1': out[i] = Tri::kOne; break;
            case 'x':
            case 'X': out[i] = Tri::kUnknown; break;
            default: return false;
        }
    }
    return true;
}

CampaignProgram& CampaignProgram::reset() {
    FlowOp op;
    op.kind = FlowOp::Kind::kReset;
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::ir_scan(std::uint8_t opcode) {
    FlowOp op;
    op.kind = FlowOp::Kind::kIrScan;
    op.ir = opcode;
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::abm(std::uint32_t die, std::string_view bits) {
    FlowOp op;
    op.kind = FlowOp::Kind::kAbmScan;
    op.die = die;
    parse_bits(bits, kAbmBits, /*msb_first=*/false, op.bits.data());
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::select(std::uint32_t die, std::string_view bits) {
    FlowOp op;
    op.kind = FlowOp::Kind::kSelectScan;
    op.die = die;
    parse_bits(bits, kSelectBits, /*msb_first=*/true, op.bits.data());
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::run_test(std::size_t cycles) {
    FlowOp op;
    op.kind = FlowOp::Kind::kRunTest;
    op.cycles = cycles;
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::calibrate(std::uint32_t die) {
    FlowOp op;
    op.kind = FlowOp::Kind::kCalibrate;
    op.die = die;
    ops.push_back(op);
    return *this;
}

CampaignProgram& CampaignProgram::measure(std::uint32_t die, Detector detector) {
    FlowOp op;
    op.kind = FlowOp::Kind::kMeasure;
    op.die = die;
    op.detector = detector;
    ops.push_back(op);
    return *this;
}

}  // namespace rfabm::lint::flow
