#include "lint/flow/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace rfabm::lint::flow {

namespace {

std::string lower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(std::string_view line) {
    std::vector<std::string> tokens;
    std::istringstream stream{std::string(line)};
    std::string token;
    while (stream >> token) tokens.push_back(token);
    return tokens;
}

void register_rules(Report& report, std::string_view list, std::size_t target_line) {
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string_view::npos) end = list.size();
        std::string_view rule = list.substr(start, end - start);
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front()))) {
            rule.remove_prefix(1);
        }
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back()))) {
            rule.remove_suffix(1);
        }
        if (!rule.empty()) {
            if (target_line == 0) {
                report.suppress_rule(std::string(rule));
            } else {
                report.suppress_line(target_line, std::string(rule));
            }
        }
        start = end + 1;
    }
}

/// Handle an `abm-lint:` directive in the comment @p comment of @p line_no.
/// @p whole_line means the entire line was a comment (guards the next line).
void handle_directive(Report& report, std::string_view comment, std::size_t line_no,
                      bool whole_line) {
    const std::string lowered = lower(comment);
    static constexpr std::string_view kMarker = "abm-lint:";
    const std::size_t mark = lowered.find(kMarker);
    if (mark == std::string::npos) return;
    std::string_view directive = std::string_view(lowered).substr(mark + kMarker.size());
    while (!directive.empty() && std::isspace(static_cast<unsigned char>(directive.front()))) {
        directive.remove_prefix(1);
    }
    static constexpr std::string_view kFile = "disable-file=";
    static constexpr std::string_view kLine = "disable=";
    if (directive.rfind(kFile, 0) == 0) {
        register_rules(report, directive.substr(kFile.size()), 0);
    } else if (directive.rfind(kLine, 0) == 0) {
        register_rules(report, directive.substr(kLine.size()),
                       whole_line ? line_no + 1 : line_no);
    }
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    int base = 10;
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
        base = 16;
        text.remove_prefix(2);
        if (text.empty()) return false;
    }
    std::uint64_t value = 0;
    for (const char c : text) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
        } else {
            return false;
        }
        value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
    }
    out = value;
    return true;
}

/// Instruction by name (case-insensitive, matching jtag::to_string) or raw
/// opcode.
bool parse_instruction(std::string_view token, std::uint8_t& out) {
    const std::string name = lower(token);
    static constexpr jtag::Instruction kAll[] = {
        jtag::Instruction::kExtest, jtag::Instruction::kSamplePreload,
        jtag::Instruction::kIdcode, jtag::Instruction::kClamp,
        jtag::Instruction::kHighz,  jtag::Instruction::kProbe,
        jtag::Instruction::kIntest, jtag::Instruction::kBypass,
    };
    for (const jtag::Instruction i : kAll) {
        if (name == lower(jtag::to_string(i))) {
            out = jtag::opcode(i);
            return true;
        }
    }
    std::uint64_t raw = 0;
    if (!parse_u64(token, raw) || raw > 0xFF) return false;
    out = static_cast<std::uint8_t>(raw);
    return true;
}

struct LineParser {
    CampaignProgram& out;
    Report& report;
    std::string filename;
    bool ok = true;
    bool saw_op = false;

    SourceLoc loc_of(std::size_t line_no) const {
        SourceLoc loc;
        loc.file = filename;
        loc.line = line_no;
        loc.column = 1;
        return loc;
    }

    void error(std::size_t line_no, const std::string& message) {
        ok = false;
        Diagnostic diag;
        diag.rule = "flow-parse-error";
        diag.severity = Severity::kError;
        diag.loc = loc_of(line_no);
        diag.message = message;
        report.add(std::move(diag));
    }

    bool parse_die(const std::string& token, std::size_t line_no, std::uint32_t& die) {
        std::uint64_t value = 0;
        if (!parse_u64(token, value) || value > 0xFFFFFFFFULL) {
            error(line_no, "'" + token + "' is not a die index");
            return false;
        }
        die = static_cast<std::uint32_t>(value);
        return true;
    }

    void parse_line(const std::vector<std::string>& tokens, std::size_t line_no) {
        const std::string op = lower(tokens[0]);
        const std::size_t argc = tokens.size() - 1;
        const auto want = [&](std::size_t n, const char* usage) {
            if (argc == n) return true;
            error(line_no, "'" + op + "' takes " + std::to_string(n) + " argument" +
                               (n == 1 ? "" : "s") + " (usage: " + usage + ")");
            return false;
        };

        if (op == "chain") {
            if (!want(1, "chain <dies>")) return;
            std::uint64_t dies = 0;
            if (!parse_u64(tokens[1], dies) || dies == 0 || dies > 1024) {
                error(line_no, "'" + tokens[1] + "' is not a valid die count (1..1024)");
                return;
            }
            if (saw_op) {
                error(line_no, "'chain' must precede the first op");
                return;
            }
            out.chain.dies = static_cast<std::uint32_t>(dies);
            return;
        }

        saw_op = true;
        FlowOp flow_op;
        flow_op.loc = loc_of(line_no);

        if (op == "reset") {
            if (!want(0, "reset")) return;
            flow_op.kind = FlowOp::Kind::kReset;
        } else if (op == "irscan") {
            if (!want(1, "irscan <instruction|opcode>")) return;
            flow_op.kind = FlowOp::Kind::kIrScan;
            if (!parse_instruction(tokens[1], flow_op.ir)) {
                error(line_no, "'" + tokens[1] + "' is not an instruction name or opcode");
                return;
            }
        } else if (op == "abm") {
            if (!want(2, "abm <die> <SH SL SG SD SB1 SB2 as 6 chars of 0/1/x>")) return;
            flow_op.kind = FlowOp::Kind::kAbmScan;
            if (!parse_die(tokens[1], line_no, flow_op.die)) return;
            if (!parse_bits(tokens[2], kAbmBits, /*msb_first=*/false, flow_op.bits.data())) {
                error(line_no, "'" + tokens[2] + "' is not a " + std::to_string(kAbmBits) +
                                   "-char {0,1,x} ABM payload");
                return;
            }
        } else if (op == "select") {
            if (!want(2, "select <die> <8 chars of 0/1/x, MSB first>")) return;
            flow_op.kind = FlowOp::Kind::kSelectScan;
            if (!parse_die(tokens[1], line_no, flow_op.die)) return;
            if (!parse_bits(tokens[2], kSelectBits, /*msb_first=*/true, flow_op.bits.data())) {
                error(line_no, "'" + tokens[2] + "' is not a " + std::to_string(kSelectBits) +
                                   "-char {0,1,x} select word");
                return;
            }
        } else if (op == "runtest") {
            if (!want(1, "runtest <cycles>")) return;
            flow_op.kind = FlowOp::Kind::kRunTest;
            std::uint64_t cycles = 0;
            if (!parse_u64(tokens[1], cycles)) {
                error(line_no, "'" + tokens[1] + "' is not a cycle count");
                return;
            }
            flow_op.cycles = static_cast<std::size_t>(cycles);
        } else if (op == "calibrate") {
            if (!want(1, "calibrate <die>")) return;
            flow_op.kind = FlowOp::Kind::kCalibrate;
            if (!parse_die(tokens[1], line_no, flow_op.die)) return;
        } else if (op == "measure") {
            if (!want(2, "measure <die> <power|freq>")) return;
            flow_op.kind = FlowOp::Kind::kMeasure;
            if (!parse_die(tokens[1], line_no, flow_op.die)) return;
            const std::string detector = lower(tokens[2]);
            if (detector == "power") {
                flow_op.detector = Detector::kPower;
            } else if (detector == "freq" || detector == "frequency") {
                flow_op.detector = Detector::kFrequency;
            } else {
                error(line_no, "'" + tokens[2] + "' is not a detector (power|freq)");
                return;
            }
        } else {
            error(line_no, "unknown op '" + op + "'");
            return;
        }
        out.ops.push_back(flow_op);
    }
};

}  // namespace

bool parse_program(std::string_view text, std::string_view filename, CampaignProgram& out,
                   Report& report) {
    LineParser parser{out, report, std::string(filename)};
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string_view raw = text.substr(pos, eol - pos);
        ++line_no;

        std::string_view body = raw;
        if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos) {
            body = raw.substr(0, hash);
            const std::size_t first_nonspace = raw.find_first_not_of(" \t\r");
            handle_directive(report, raw.substr(hash + 1), line_no,
                             /*whole_line=*/first_nonspace == hash);
        }
        const std::vector<std::string> tokens = tokenize(body);
        if (!tokens.empty()) parser.parse_line(tokens, line_no);

        if (eol == text.size()) break;
        pos = eol + 1;
    }
    return parser.ok;
}

bool parse_program_file(const std::string& path, CampaignProgram& out, Report& report) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        Diagnostic diag;
        diag.rule = "flow-parse-error";
        diag.severity = Severity::kError;
        diag.loc.file = path;
        diag.loc.line = 1;
        diag.message = "cannot open program file '" + path + "'";
        report.add(std::move(diag));
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_program(buffer.str(), path, out, report);
}

}  // namespace rfabm::lint::flow
