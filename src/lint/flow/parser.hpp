// Text format for campaign flow programs.
//
// One op per line, '#' comments, blank lines ignored:
//
//   chain 2                 # dies in the scan chain (default 1, once, first)
//   reset                   # Test-Logic-Reset
//   irscan PROBE            # instruction by name, or a raw opcode (0x05 / 5)
//   abm 0 100011            # die, six {0,1,x} chars: SH SL SG SD SB1 SB2
//   select 0 01000011       # die, eight {0,1,x} chars, MSB first
//   runtest 100             # dwell cycles in Run-Test/Idle
//   calibrate 0             # die
//   measure 0 power         # die, detector: power | freq
//
// Suppression directives ride in comments exactly as in netlists:
// `# abm-lint: disable=rule-a,rule-b` on its own line guards the next line,
// inline it guards its own line, and `disable-file=` guards the whole file.
//
// Malformed lines produce flow-parse-error diagnostics with the file
// location; parsing continues so one bad line does not hide the rest.
#pragma once

#include <string>
#include <string_view>

#include "lint/diagnostics.hpp"
#include "lint/flow/program.hpp"

namespace rfabm::lint::flow {

/// Parse @p text (from @p filename, used for locations) into @p out.
/// Registers `abm-lint:` suppression directives on @p report and appends a
/// flow-parse-error diagnostic per malformed line.  Returns true when the
/// whole program parsed cleanly.
bool parse_program(std::string_view text, std::string_view filename, CampaignProgram& out,
                   Report& report);

/// Read and parse @p path.  An unreadable file is itself a flow-parse-error.
bool parse_program_file(const std::string& path, CampaignProgram& out, Report& report);

}  // namespace rfabm::lint::flow
