// The campaign-level program the flow lint interprets.
//
// A CampaignProgram is the *sequence* of scan programs a campaign will play
// against one chain: TAP resets, IR scans, boundary/select payloads and the
// measurement/calibration steps between them.  It is deliberately richer
// than lint/scan_program.hpp's ScanOp list — the snapshot linter checks one
// program's TAP walk in isolation, while the flow interpreter needs the
// payload *contents* (abstract bits) and the campaign steps (measure,
// calibrate) that give the latched state temporal meaning.
//
// Programs come from three places: the builder API below (tests, the
// measurement admission tier), the text format in parser.hpp (the abm_lint
// --flow CLI, rfabm_campaignd --program), and synthetic generators
// (bench/lint_throughput).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "jtag/instructions.hpp"
#include "lint/diagnostics.hpp"
#include "lint/flow/lattice.hpp"

namespace rfabm::lint::flow {

/// Which detector a measure step reads (decides the select routes the flow
/// rules require to be latched).
enum class Detector : std::uint8_t {
    kPower,      ///< Pdet differential pair: out+ -> AB1, out- -> AB2
    kFrequency,  ///< Fdet output -> AB1
};

const char* to_string(Detector detector);

/// One campaign step.
struct FlowOp {
    enum class Kind : std::uint8_t {
        kReset,       ///< TRST*/five-TMS-ones: Test-Logic-Reset, IR := IDCODE
        kIrScan,      ///< shift + Update-IR on every die in the chain
        kAbmScan,     ///< boundary DR scan latching one die's ABM controls
        kSelectScan,  ///< serial select-bus update of one die's .4-MUX word
        kRunTest,     ///< dwell in Run-Test/Idle
        kCalibrate,   ///< DC-calibrate one die's detectors
        kMeasure,     ///< settled detector read on one die
    };

    Kind kind = Kind::kReset;
    std::uint32_t die = 0;          ///< target die (kAbmScan/kSelectScan/kCalibrate/kMeasure)
    std::uint8_t ir = 0;            ///< raw opcode (kIrScan; broadcast to the chain)
    std::array<Tri, kSelectBits> bits{};  ///< payload (kAbmScan uses [0..5])
    Detector detector = Detector::kPower; ///< kMeasure
    std::size_t cycles = 0;         ///< kRunTest
    SourceLoc loc;                  ///< program-file location (parser) or none

    FlowOp() { bits.fill(Tri::kUnknown); }
};

const char* to_string(FlowOp::Kind kind);

/// Human label for step @p index of a program ("step 4 (select die 1)").
std::string step_label(const FlowOp& op, std::size_t index);

/// A campaign program plus the chain it runs against.
struct CampaignProgram {
    ChainTopology chain;
    std::vector<FlowOp> ops;

    // --- builders (each returns *this for chaining) -----------------------
    CampaignProgram& reset();
    CampaignProgram& ir_scan(std::uint8_t opcode);
    CampaignProgram& ir_scan(jtag::Instruction instruction) {
        return ir_scan(jtag::opcode(instruction));
    }
    /// Latch one die's ABM switch controls.  @p bits is six characters of
    /// {0,1,x}, in AbmBit order: SH SL SG SD SB1 SB2.
    CampaignProgram& abm(std::uint32_t die, std::string_view bits);
    /// Latch one die's select word.  @p bits is eight characters of {0,1,x},
    /// MSB first (leftmost char = bit 7, rightmost = bit 0 / out+ -> AB1).
    CampaignProgram& select(std::uint32_t die, std::string_view bits);
    CampaignProgram& run_test(std::size_t cycles);
    CampaignProgram& calibrate(std::uint32_t die);
    CampaignProgram& measure(std::uint32_t die, Detector detector);
};

/// Parse a {0,1,x} bit string into abstract bits.  @p msb_first reverses the
/// character order (select words read like binary numbers, ABM payloads read
/// in switch order).  Returns false on length or character mismatch.
bool parse_bits(std::string_view text, std::size_t width, bool msb_first, Tri* out);

}  // namespace rfabm::lint::flow
