// Flow-sensitive abstract interpretation of campaign scan programs.
//
// The snapshot linters (lint/abm_rules.hpp, lint/scan_program.hpp) check one
// latched state or one TAP walk in isolation; the defect classes that kill
// campaigns are *temporal* — they only exist between steps.  flow_lint()
// symbolically executes a CampaignProgram through the real 16-state TAP
// machine (jtag/tap_state.hpp), maintaining the abstract lattice of latched
// state per die (lattice.hpp), and fires rules the snapshot linters cannot
// express:
//
//   flow-crowbar-window        SH and SL latched closed together in the
//                              window between two update events (each update
//                              alone looked fine)
//   flow-break-before-make     a single update hands a pin straight from AB1
//                              to AB2 (or back) with no disconnect interval
//   flow-bus-contention        two latched drivers on one shared analog bus,
//                              across any dies of the chain
//   flow-read-before-select    a detector read before its routing (or the
//                              PROBE instruction) has landed
//   flow-unpowered-read        a detector read while the power-gating select
//                              bit is not known to be on
//   flow-measure-before-calibrate  a die measured before it was calibrated
//   flow-dead-update           a select update overwritten before any step
//                              observes it (dead store / dead program step)
//
// Every diagnostic carries a witness trace: the minimal op sequence that
// establishes the bad state, reconstructed from the per-latch provenance the
// lattice keeps.  Witnesses render through the ordinary Report machinery
// (Diagnostic::witness; text and JSON).
#pragma once

#include "lint/diagnostics.hpp"
#include "lint/flow/program.hpp"

namespace rfabm::lint::flow {

struct FlowLintOptions {
    /// Fire flow-measure-before-calibrate (campaigns replaying third-party
    /// vectors may calibrate out of band).
    bool check_calibration = true;
    /// Fire flow-dead-update for overwritten-but-never-observed selects.
    bool check_dead_updates = true;
};

/// Symbolically execute @p program, appending flow diagnostics to
/// @p report.  Returns the number of diagnostics added (before suppression).
std::size_t flow_lint(const CampaignProgram& program, Report& report,
                      const FlowLintOptions& options = {});

}  // namespace rfabm::lint::flow
