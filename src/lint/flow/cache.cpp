#include "lint/flow/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rfabm::lint::flow {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over 64-bit words: fingerprinting must cost a small fraction of a
/// cold interpretation, so per-op state is packed into words instead of
/// being fed byte by byte.
class Fnv1a {
  public:
    void word(std::uint64_t w) {
        hash_ ^= w;
        hash_ *= kFnvPrime;
    }
    void text(std::string_view s) {
        word(s.size());
        for (const char c : s) word(static_cast<std::uint8_t>(c));
    }
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kFnvOffset;
};

}  // namespace

std::uint64_t flow_fingerprint(const CampaignProgram& program,
                               const FlowLintOptions& options) {
    Fnv1a h;
    h.text("rfabm-flow-v1");
    h.word((options.check_calibration ? 1u : 0u) | (options.check_dead_updates ? 2u : 0u));
    h.word(program.chain.dies);
    h.word(program.ops.size());
    // Every op's source file is the program file; hash it once, not per op.
    bool file_hashed = false;
    for (const FlowOp& op : program.ops) {
        if (!file_hashed && !op.loc.file.empty()) {
            h.text(op.loc.file);
            file_hashed = true;
        }
        // Word 0: kind, die, ir, detector.  Word 1: the payload (2 bits per
        // abstract Tri) and the source line.  Word 2: runtest cycles.
        std::uint64_t w0 = static_cast<std::uint64_t>(op.kind);
        w0 |= static_cast<std::uint64_t>(op.die) << 8;
        w0 |= static_cast<std::uint64_t>(op.ir) << 40;
        w0 |= static_cast<std::uint64_t>(op.detector) << 48;
        std::uint64_t w1 = 0;
        for (std::size_t b = 0; b < kSelectBits; ++b) {
            w1 |= static_cast<std::uint64_t>(op.bits[b]) << (2 * b);
        }
        w1 |= static_cast<std::uint64_t>(op.loc.line) << 16;
        h.word(w0);
        h.word(w1 ^ (op.cycles << 1));
    }
    return h.value();
}

std::size_t FlowLintCache::admit(const CampaignProgram& program, Report& report,
                                 const FlowLintOptions& options) {
    const std::uint64_t fp = flow_fingerprint(program, options);

    if (const auto it = verdicts_.find(fp); it != verdicts_.end()) {
        ++stats_.hits;
        for (const Diagnostic& diag : it->second) report.add(diag);
        return it->second.size();
    }
    if (clean_.count(fp) > 0) {
        ++stats_.hits;
        return 0;
    }

    ++stats_.misses;
    Report scratch;  // no suppressions: cache the full verdict
    flow_lint(program, scratch, options);
    Report sorted = std::move(scratch);
    sorted.sort();
    const std::vector<Diagnostic>& verdict = sorted.diagnostics();
    for (const Diagnostic& diag : verdict) report.add(diag);
    const std::size_t offered = verdict.size();
    if (offered == 0) {
        clean_.insert(fp);
    } else {
        verdicts_.emplace(fp, verdict);
    }
    return offered;
}

bool FlowLintCache::load(const std::string& path) {
    std::ifstream in(path);
    if (!in) return true;  // no ticket file yet: empty cache
    std::string header;
    if (!std::getline(in, header) || header != "rfabm-lintcache v1") return false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::uint64_t fp = 0;
        std::istringstream parse(line);
        parse >> std::hex >> fp;
        if (parse.fail()) return false;
        clean_.insert(fp);
    }
    return true;
}

bool FlowLintCache::save(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return false;
        out << "rfabm-lintcache v1\n";
        std::vector<std::uint64_t> sorted(clean_.begin(), clean_.end());
        std::sort(sorted.begin(), sorted.end());
        out << std::hex;
        for (const std::uint64_t fp : sorted) out << fp << "\n";
        if (!out) return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace rfabm::lint::flow
