#include "lint/flow/interpreter.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "jtag/tap_state.hpp"

namespace rfabm::lint::flow {

namespace {

using jtag::TapState;

/// Select-word routing semantics the flow rules need (mirrors the layout in
/// core/mux4.hpp; lint sits below core, so the facts are restated here and
/// pinned against core by tests/lint/flow_test.cpp).
constexpr std::size_t kOutPlusToAb1 = 0;   ///< Pdet out+ drives AB1
constexpr std::size_t kOutMinusToAb2 = 1;  ///< Pdet out- drives AB2
constexpr std::size_t kFdetToAb1 = 2;      ///< Fdet output drives AB1
constexpr std::size_t kDetectorPower = 6;  ///< detector power gate

/// Driver routes per analog bus: (select bit, human label).
struct DriverRoute {
    std::size_t bit;
    const char* label;
};
constexpr std::array<DriverRoute, 2> kAb1Drivers{{{kOutPlusToAb1, "out+ -> AB1"},
                                                  {kFdetToAb1, "Fdet -> AB1"}}};
constexpr std::array<DriverRoute, 1> kAb2Drivers{{{kOutMinusToAb2, "out- -> AB2"}}};

/// Walks the 16-state TAP machine op by op.  The walk itself is what makes
/// the interpretation flow-sensitive in TAP terms: latch events are applied
/// exactly when the walk enters Update-IR / Update-DR, as on real hardware.
class TapWalker {
  public:
    /// Clock one TCK edge; returns the state entered.
    TapState advance(bool tms) {
        state_ = jtag::next_tap_state(state_, tms);
        return state_;
    }

    /// Canonical shortest TMS path to @p target (BFS, ties prefer TMS=0 —
    /// the same routing TapDriver::go_to uses).
    void go_to(TapState target) {
        if (state_ == target) return;
        constexpr int kNumStates = 16;
        std::array<int, kNumStates> prev_state{};
        std::array<int, kNumStates> prev_tms{};
        prev_state.fill(-1);
        const int start = static_cast<int>(state_);
        const int goal = static_cast<int>(target);
        std::array<int, kNumStates> queue{};
        int head = 0;
        int tail = 0;
        queue[tail++] = start;
        prev_state[start] = start;
        while (head < tail) {
            const int s = queue[head++];
            if (s == goal) break;
            for (int tms = 0; tms <= 1; ++tms) {
                const int n = static_cast<int>(
                    jtag::next_tap_state(static_cast<TapState>(s), tms != 0));
                if (prev_state[n] == -1) {
                    prev_state[n] = s;
                    prev_tms[n] = tms;
                    queue[tail++] = n;
                }
            }
        }
        std::vector<bool> tms_path;
        for (int s = goal; s != start; s = prev_state[s]) {
            tms_path.push_back(prev_tms[s] != 0);
        }
        std::reverse(tms_path.begin(), tms_path.end());
        for (const bool tms : tms_path) advance(tms);
    }

    /// Five TMS-ones: Test-Logic-Reset from any state.
    void reset() {
        for (int i = 0; i < 5; ++i) advance(true);
    }

    /// The full scan choreography: move to Shift, shift @p bits, exit via
    /// Exit1 into Update (the latch event), settle in Run-Test/Idle.
    void scan(bool ir, std::size_t bits) {
        go_to(ir ? TapState::kShiftIr : TapState::kShiftDr);
        for (std::size_t b = 1; b < bits; ++b) advance(false);  // shift, stay
        advance(true);   // last bit shifts on the edge that exits to Exit1
        advance(true);   // Exit1 -> Update: the latch event
        advance(false);  // Update -> Run-Test/Idle
    }

    TapState state() const { return state_; }

  private:
    TapState state_ = TapState::kTestLogicReset;
};

class Interpreter {
  public:
    Interpreter(const CampaignProgram& program, Report& report,
                const FlowLintOptions& options)
        : program_(program), report_(report), options_(options),
          dies_(std::max<std::size_t>(program.chain.dies, 1)) {}

    std::size_t run() {
        const std::size_t before = report_.diagnostics().size();
        for (std::size_t i = 0; i < program_.ops.size(); ++i) {
            const FlowOp& op = program_.ops[i];
            switch (op.kind) {
                case FlowOp::Kind::kReset: exec_reset(i); break;
                case FlowOp::Kind::kIrScan: exec_ir_scan(op, i); break;
                case FlowOp::Kind::kAbmScan: exec_abm_scan(op, i); break;
                case FlowOp::Kind::kSelectScan: exec_select_scan(op, i); break;
                case FlowOp::Kind::kRunTest: tap_.go_to(TapState::kRunTestIdle); break;
                case FlowOp::Kind::kCalibrate: exec_calibrate(op, i); break;
                case FlowOp::Kind::kMeasure: exec_measure(op, i); break;
            }
        }
        return report_.diagnostics().size() - before;
    }

  private:
    DieState* die_of(const FlowOp& op, std::size_t index) {
        if (op.die < dies_.size()) return &dies_[op.die];
        emit(index, "flow-bad-die", Severity::kError,
             step_label(op, index) + ": die " + std::to_string(op.die) +
                 " outside the declared chain of " + std::to_string(dies_.size()) +
                 " die(s)",
             {}, "declare the die in the chain directive");
        return nullptr;
    }

    void exec_reset(std::size_t index) {
        tap_.reset();
        for (DieState& die : dies_) {
            die.ir = static_cast<int>(jtag::opcode(jtag::Instruction::kIdcode));
            die.ir_step = index;
            // Latched analog state survives a TAP reset: the select register
            // and boundary latches are not on the TAP reset path.
        }
    }

    void exec_ir_scan(const FlowOp& op, std::size_t index) {
        tap_.scan(/*ir=*/true, jtag::kIrLength * dies_.size());
        const auto decoded = jtag::decode_instruction(op.ir);
        for (DieState& die : dies_) {
            die.ir = static_cast<int>(jtag::opcode(decoded));
            die.ir_step = index;
        }
    }

    void exec_abm_scan(const FlowOp& op, std::size_t index) {
        tap_.scan(/*ir=*/false, kAbmBits * dies_.size());
        DieState* die = die_of(op, index);
        if (die == nullptr) return;

        const std::array<Tri, kAbmBits> before{
            die->abm[0], die->abm[1], die->abm[2], die->abm[3], die->abm[4], die->abm[5]};
        for (std::size_t b = 0; b < kAbmBits; ++b) {
            if (op.bits[b] == Tri::kUnknown && die->abm_step[b] != kNoStep) {
                continue;  // unspecified payload bit: the latch keeps its value
            }
            if (op.bits[b] != die->abm[b] || die->abm_step[b] == kNoStep) {
                die->abm_step[b] = index;
            }
            die->abm[b] = op.bits[b];
        }

        check_crowbar(op, index, *die, before);
        check_break_before_make(op, index, *die, before);
    }

    void exec_select_scan(const FlowOp& op, std::size_t index) {
        // The serial select bus latches outside the TAP, but its update is an
        // update event for the windowed rules all the same.
        DieState* die = die_of(op, index);
        if (die == nullptr) return;

        if (options_.check_dead_updates && die->last_select_update != kNoStep &&
            !die->select_observed) {
            const std::size_t dead = die->last_select_update;
            Diagnostic diag;
            diag.rule = "flow-dead-update";
            diag.severity = Severity::kWarning;
            diag.loc = program_.ops[dead].loc;
            diag.device = device_of(op.die);
            diag.message = step_label(program_.ops[dead], dead) +
                           ": select word is overwritten by " +
                           step_label(op, index) +
                           " before any measure or calibrate observes it (dead program step)";
            diag.fixit = "drop the dead update or move the read before the overwrite";
            diag.witness = {witness_line(dead, "latches the unobserved select word"),
                            witness_line(index, "overwrites it")};
            report_.add(std::move(diag));
        }

        bool closed_driver = false;
        for (std::size_t b = 0; b < kSelectBits; ++b) {
            if (op.bits[b] == Tri::kUnknown && die->select_step[b] != kNoStep) {
                continue;  // unspecified payload bit keeps the latched value
            }
            if (op.bits[b] == Tri::kOne && die->select[b] != Tri::kOne) {
                closed_driver = closed_driver || b == kOutPlusToAb1 ||
                                b == kOutMinusToAb2 || b == kFdetToAb1;
            }
            if (op.bits[b] != die->select[b] || die->select_step[b] == kNoStep) {
                die->select_step[b] = index;
            }
            die->select[b] = op.bits[b];
        }
        die->last_select_update = index;
        die->select_observed = false;

        if (closed_driver) check_contention(op, index);
    }

    void exec_calibrate(const FlowOp& op, std::size_t index) {
        DieState* die = die_of(op, index);
        if (die == nullptr) return;
        die->calibrated = true;
        observe_selects();
    }

    void exec_measure(const FlowOp& op, std::size_t index) {
        DieState* die = die_of(op, index);
        if (die == nullptr) return;

        // The read goes through the analog buses: PROBE (or another analog
        // test instruction) must be latched for the switch fabric to follow
        // the boundary/select latches at all.
        const bool probing =
            die->ir >= 0 &&
            jtag::is_analog_test_mode(
                jtag::decode_instruction(static_cast<std::uint8_t>(die->ir)));
        if (!probing) {
            Diagnostic diag = base(op, index, "flow-read-before-select", Severity::kError);
            diag.message =
                step_label(op, index) + ": detector read with " +
                (die->ir < 0 ? std::string("no instruction established")
                             : "instruction '" +
                                   std::string(jtag::to_string(jtag::decode_instruction(
                                       static_cast<std::uint8_t>(die->ir)))) +
                                   "' latched") +
                "; the switch fabric is not in an analog test mode";
            diag.fixit = "scan PROBE before the read";
            if (die->ir_step != kNoStep) {
                diag.witness.push_back(witness_line(die->ir_step, "latches the instruction"));
            }
            diag.witness.push_back(witness_line(index, "reads the detector"));
            report_.add(std::move(diag));
        }

        // Required routing for the detector being read.
        std::vector<DriverRoute> required;
        if (op.detector == Detector::kPower) {
            required.push_back(kAb1Drivers[0]);
            required.push_back(kAb2Drivers[0]);
        } else {
            required.push_back(kAb1Drivers[1]);
        }
        for (const DriverRoute& route : required) {
            if (die->select[route.bit] == Tri::kOne) continue;
            Diagnostic diag = base(op, index, "flow-read-before-select", Severity::kError);
            diag.message = step_label(op, index) + ": reads the " +
                           std::string(to_string(op.detector)) + " detector but route '" +
                           route.label + "' is " +
                           (die->select[route.bit] == Tri::kZero ? "latched open"
                                                                 : "never established");
            diag.fixit = "land the select word routing the detector before the read";
            if (die->select_step[route.bit] != kNoStep) {
                diag.witness.push_back(
                    witness_line(die->select_step[route.bit], "last update of the route"));
            }
            diag.witness.push_back(witness_line(index, "reads the detector"));
            report_.add(std::move(diag));
        }

        // Power gating: the detectors must be powered when read.
        if (die->select[kDetectorPower] != Tri::kOne) {
            Diagnostic diag = base(op, index, "flow-unpowered-read", Severity::kError);
            diag.message = step_label(op, index) + ": reads the " +
                           std::string(to_string(op.detector)) +
                           " detector while detector power is " +
                           (die->select[kDetectorPower] == Tri::kZero
                                ? "latched off"
                                : "never established");
            diag.fixit = "set the detector-power select bit before the read";
            if (die->select_step[kDetectorPower] != kNoStep) {
                diag.witness.push_back(witness_line(die->select_step[kDetectorPower],
                                                    "last update of the power gate"));
            }
            diag.witness.push_back(witness_line(index, "reads the detector"));
            report_.add(std::move(diag));
        }

        if (options_.check_calibration && !die->calibrated) {
            Diagnostic diag =
                base(op, index, "flow-measure-before-calibrate", Severity::kWarning);
            diag.message = step_label(op, index) + ": die " + std::to_string(op.die) +
                           " is measured before any calibrate step; the conversion "
                           "curve is unanchored";
            diag.fixit = "insert a calibrate step for the die before its first measure";
            diag.witness.push_back(witness_line(index, "first read of the uncalibrated die"));
            report_.add(std::move(diag));
        }

        observe_selects();
    }

    /// A read observes the shared buses: every die's latched select word is
    /// now "used" for dead-store purposes (conservative — never flags a word
    /// a cross-die read may have depended on).
    void observe_selects() {
        for (DieState& die : dies_) die.select_observed = true;
    }

    void check_crowbar(const FlowOp& op, std::size_t index, DieState& die,
                       const std::array<Tri, kAbmBits>& before) {
        const auto sh = static_cast<std::size_t>(AbmBit::kSh);
        const auto sl = static_cast<std::size_t>(AbmBit::kSl);
        const bool now = die.abm[sh] == Tri::kOne && die.abm[sl] == Tri::kOne;
        const bool was = before[sh] == Tri::kOne && before[sl] == Tri::kOne;
        if (!now || was) return;  // fire once, at the update creating the window
        Diagnostic diag = base(op, index, "flow-crowbar-window", Severity::kError);
        diag.message = step_label(op, index) + ": die " + std::to_string(op.die) +
                       " holds SH and SL closed together between update events — a "
                       "VH-VL crowbar through the pin until the next Update-DR";
        diag.fixit = "open SH (or SL) in the same update, or insert an intermediate "
                     "update opening both";
        diag.witness = {witness_line(die.abm_step[sh], "latches SH closed"),
                        witness_line(die.abm_step[sl], "latches SL closed")};
        sort_unique(diag.witness);
        report_.add(std::move(diag));
    }

    void check_break_before_make(const FlowOp& op, std::size_t index, DieState& die,
                                 const std::array<Tri, kAbmBits>& before) {
        const auto sb1 = static_cast<std::size_t>(AbmBit::kSb1);
        const auto sb2 = static_cast<std::size_t>(AbmBit::kSb2);
        const bool handoff_12 = before[sb1] == Tri::kOne && before[sb2] == Tri::kZero &&
                                die.abm[sb1] == Tri::kZero && die.abm[sb2] == Tri::kOne;
        const bool handoff_21 = before[sb2] == Tri::kOne && before[sb1] == Tri::kZero &&
                                die.abm[sb2] == Tri::kZero && die.abm[sb1] == Tri::kOne;
        if (!handoff_12 && !handoff_21) return;
        const char* from = handoff_12 ? "AB1" : "AB2";
        const char* to = handoff_12 ? "AB2" : "AB1";
        Diagnostic diag = base(op, index, "flow-break-before-make", Severity::kError);
        diag.message = step_label(op, index) + ": die " + std::to_string(op.die) +
                       " hands the pin straight from " + from + " to " + to +
                       " in one update; switch skew can bridge the buses during the "
                       "handoff";
        diag.fixit = "insert an intermediate update with SB1 and SB2 both open";
        const std::size_t prev = handoff_12 ? die.abm_step[sb1] : die.abm_step[sb2];
        // The previous route's origin predates this update (abm_step was just
        // rewritten); cite the steps we still know.
        diag.witness = {witness_line(index, std::string("opens ") + from +
                                                " and closes " + to +
                                                " in the same update event")};
        if (prev != kNoStep && prev != index) {
            diag.witness.insert(diag.witness.begin(),
                                witness_line(prev, std::string("pin routed to ") + from));
        }
        report_.add(std::move(diag));
    }

    void check_contention(const FlowOp& op, std::size_t index) {
        struct Bus {
            const char* name;
            const DriverRoute* routes;
            std::size_t count;
        };
        const std::array<Bus, 2> buses{{{"AB1", kAb1Drivers.data(), kAb1Drivers.size()},
                                        {"AB2", kAb2Drivers.data(), kAb2Drivers.size()}}};
        for (const Bus& bus : buses) {
            struct Driver {
                std::uint32_t die;
                const char* label;
                std::size_t step;
            };
            std::vector<Driver> drivers;
            bool this_update_contributes = false;
            for (std::uint32_t d = 0; d < dies_.size(); ++d) {
                for (std::size_t r = 0; r < bus.count; ++r) {
                    const std::size_t bit = bus.routes[r].bit;
                    if (dies_[d].select[bit] != Tri::kOne) continue;
                    drivers.push_back({d, bus.routes[r].label, dies_[d].select_step[bit]});
                    if (d == op.die && dies_[d].select_step[bit] == index) {
                        this_update_contributes = true;
                    }
                }
            }
            if (drivers.size() < 2 || !this_update_contributes) continue;
            Diagnostic diag = base(op, index, "flow-bus-contention", Severity::kError);
            diag.device = "flow:chain";
            std::string who;
            for (const Driver& drv : drivers) {
                if (!who.empty()) who += ", ";
                who += "die " + std::to_string(drv.die) + " '" + drv.label + "'";
            }
            diag.message = step_label(op, index) + ": " + std::to_string(drivers.size()) +
                           " drivers latched onto shared bus " + bus.name + " (" + who +
                           ")";
            diag.fixit = "open the other die's route before closing this one";
            for (const Driver& drv : drivers) {
                diag.witness.push_back(witness_line(
                    drv.step, "die " + std::to_string(drv.die) + " closes '" +
                                  drv.label + "'"));
            }
            sort_unique(diag.witness);
            report_.add(std::move(diag));
        }
    }

    // --- plumbing ---------------------------------------------------------

    static std::string device_of(std::uint32_t die) {
        return "flow:die " + std::to_string(die);
    }

    Diagnostic base(const FlowOp& op, std::size_t index, std::string rule,
                    Severity severity) {
        (void)index;
        Diagnostic diag;
        diag.rule = std::move(rule);
        diag.severity = severity;
        diag.loc = op.loc;
        diag.device = device_of(op.die);
        return diag;
    }

    std::string witness_line(std::size_t step, const std::string& what) const {
        if (step == kNoStep || step >= program_.ops.size()) return what;
        const FlowOp& op = program_.ops[step];
        std::string line = step_label(op, step);
        if (op.loc.valid()) {
            line += " [" + (op.loc.file.empty() ? "<program>" : op.loc.file) + ":" +
                    std::to_string(op.loc.line) + "]";
        }
        if (!what.empty()) line += ": " + what;
        return line;
    }

    static void sort_unique(std::vector<std::string>& lines) {
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    }

    void emit(std::size_t index, std::string rule, Severity severity, std::string message,
              std::vector<std::string> witness, std::string fixit) {
        Diagnostic diag;
        diag.rule = std::move(rule);
        diag.severity = severity;
        diag.loc = program_.ops[index].loc;
        diag.device = "flow:chain";
        diag.message = std::move(message);
        diag.fixit = std::move(fixit);
        diag.witness = std::move(witness);
        report_.add(std::move(diag));
    }

    const CampaignProgram& program_;
    Report& report_;
    FlowLintOptions options_;
    std::vector<DieState> dies_;
    TapWalker tap_;
};

}  // namespace

std::size_t flow_lint(const CampaignProgram& program, Report& report,
                      const FlowLintOptions& options) {
    return Interpreter(program, report, options).run();
}

}  // namespace rfabm::lint::flow
