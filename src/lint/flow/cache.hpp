// Incremental flow-lint cache.
//
// Campaign daemons re-admit the same scan programs on every shard launch and
// every resume; the flow interpretation is pure in (program, chain topology,
// options), so its verdict can be keyed by a fingerprint and replayed.
// flow_fingerprint() hashes the semantic content of a CampaignProgram
// (FNV-1a; implemented here rather than reusing exec::FieldHasher because
// lint sits below the core/exec layers).
//
// FlowLintCache keeps two tiers:
//
//  * an in-memory verdict map (fingerprint -> diagnostics) so repeated
//    admissions within one process replay instead of re-interpreting;
//  * a persistent "admission ticket" file of fingerprints whose verdict was
//    fully clean (zero diagnostics).  Workers of a sharded campaign load the
//    coordinator's ticket file and admit a clean program with one hash
//    lookup.  Only *clean* verdicts persist — a diagnostic-bearing verdict
//    must re-lint in every process so suppression configuration cannot be
//    laundered through the disk cache.
//
// Suppressions interact with the cache deliberately: admit() lints into a
// scratch report with no suppressions, caches that full verdict, and replays
// it into the caller's Report, where the caller's suppressions apply.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/flow/interpreter.hpp"
#include "lint/flow/program.hpp"

namespace rfabm::lint::flow {

/// FNV-1a fingerprint of a program's semantic content (chain topology, ops,
/// payloads, source locations) plus the lint options.
std::uint64_t flow_fingerprint(const CampaignProgram& program,
                               const FlowLintOptions& options = {});

class FlowLintCache {
  public:
    struct Stats {
        std::size_t hits = 0;    ///< verdict replayed from memory or ticket
        std::size_t misses = 0;  ///< program interpreted
    };

    /// Lint @p program through the cache, replaying or recording its verdict,
    /// and appending the (suppression-filtered) diagnostics to @p report.
    /// Returns the number of diagnostics in the verdict, before suppression.
    std::size_t admit(const CampaignProgram& program, Report& report,
                      const FlowLintOptions& options = {});

    /// True when @p fingerprint holds a clean admission ticket.
    bool has_clean_ticket(std::uint64_t fingerprint) const {
        return clean_.count(fingerprint) > 0;
    }

    const Stats& stats() const { return stats_; }
    std::size_t size() const { return verdicts_.size() + clean_.size(); }

    /// Merge tickets from @p path (missing file is not an error; a malformed
    /// file is).  Returns false only on a malformed or unreadable-but-present
    /// file.
    bool load(const std::string& path);

    /// Write every clean ticket to @p path (atomic: temp file + rename).
    bool save(const std::string& path) const;

  private:
    std::unordered_map<std::uint64_t, std::vector<Diagnostic>> verdicts_;
    std::unordered_set<std::uint64_t> clean_;
    Stats stats_;
};

}  // namespace rfabm::lint::flow
