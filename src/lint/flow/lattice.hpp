// The abstract domain of the flow-sensitive scan-program lint.
//
// The flow interpreter (see interpreter.hpp) symbolically executes a whole
// campaign's scan programs and has to remember, per die in the chain, what
// the *latched* test logic would hold at every point between Update events:
// the instruction register, the six ABM switch-control latches, the eight
// .4-MUX select bits, and the calibration ordering.  A latched bit is
// abstracted into a three-valued lattice — known-0, known-1, unknown — with
// the usual join; "unknown" covers payload bits a third-party vector leaves
// unspecified and state before the program ever establishes it.
//
// Every tracked latch also remembers the index of the program step that
// last assigned it.  That provenance is what lets a flow diagnostic carry a
// *witness trace*: the minimal op sequence establishing the bad state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rfabm::lint::flow {

/// Abstract value of one latched control bit.
enum class Tri : std::uint8_t {
    kZero,     ///< known to be 0
    kOne,      ///< known to be 1
    kUnknown,  ///< never established, or an unspecified payload bit
};

/// Lattice join: agreeing known values survive, everything else is unknown.
constexpr Tri join(Tri a, Tri b) { return a == b ? a : Tri::kUnknown; }

constexpr Tri tri_of(bool bit) { return bit ? Tri::kOne : Tri::kZero; }

/// Render one abstract bit ('0', '1' or 'x').
constexpr char to_char(Tri value) {
    return value == Tri::kZero ? '0' : (value == Tri::kOne ? '1' : 'x');
}

/// The six ABM switch-control latches tracked per die, in the boundary
/// payload order the flow program format uses (see jtag/abm.hpp for the
/// electrical meaning of each switch).
enum class AbmBit : std::size_t {
    kSh = 0,   ///< pin to VH
    kSl = 1,   ///< pin to VL
    kSg = 2,   ///< pin to VG
    kSd = 3,   ///< pin to core (mission path)
    kSb1 = 4,  ///< pin to AB1
    kSb2 = 5,  ///< pin to AB2
};
inline constexpr std::size_t kAbmBits = 6;

const char* to_string(AbmBit bit);

/// Width of the tracked .4-MUX select word (see core/mux4.hpp for the bit
/// layout; the flow lint re-declares the routing semantics it needs in
/// interpreter.cpp so lint stays below the core layer).
inline constexpr std::size_t kSelectBits = 8;

/// Sentinel for "no program step has assigned this latch yet".
inline constexpr std::size_t kNoStep = std::numeric_limits<std::size_t>::max();

/// How many devices share the chain, i.e. how wide the abstract state is.
/// Kept as its own struct (rather than a bare count) so the lint fingerprint
/// can grow topology fields without touching the cache key plumbing.
struct ChainTopology {
    std::uint32_t dies = 1;
};

/// Abstract latched state of one die between update events.
struct DieState {
    /// Decoded instruction opcode latched at the last Update-IR, or -1 when
    /// the program has not established the IR.
    int ir = -1;
    std::size_t ir_step = kNoStep;

    std::array<Tri, kAbmBits> abm{};
    std::array<std::size_t, kAbmBits> abm_step{};

    std::array<Tri, kSelectBits> select{};
    std::array<std::size_t, kSelectBits> select_step{};

    /// Set by a calibrate step; measure-before-calibrate ordering.
    bool calibrated = false;

    /// Dead-store tracking: the step of the last whole-word select update
    /// and whether any later step observed (read through) it.
    std::size_t last_select_update = kNoStep;
    bool select_observed = true;

    DieState() {
        abm.fill(Tri::kUnknown);
        abm_step.fill(kNoStep);
        select.fill(Tri::kUnknown);
        select_step.fill(kNoStep);
    }
};

}  // namespace rfabm::lint::flow
