// Front door for linting a SPICE netlist: text-level checks first (duplicate
// device names, undefined .model references, suppression directives), then —
// when the text is parseable — a full parse into a scratch Circuit and the
// ERC pass over it.
//
// Suppression directives live in netlist comments:
//
//   R1 a 0 1k        ; abm-lint: disable=erc-value-suspicious
//   * abm-lint: disable=erc-floating-node     <- applies to the next line
//   * abm-lint: disable-file=erc-dangling-node
//
// `disable=` takes a comma-separated rule list (or `*`) and applies to the
// directive's own physical line — or, for a whole-line comment, to the line
// after it.  `disable-file=` suppresses the rules everywhere in the file.
#pragma once

#include <string_view>

#include "lint/diagnostics.hpp"
#include "lint/erc.hpp"

namespace rfabm::lint {

struct NetlistLintOptions {
    ErcOptions erc;
    bool run_erc = true;  ///< parse + electrical checks after the text pass
};

/// Lint @p text (named @p source in diagnostics) into @p report.  Returns the
/// number of diagnostics added.
std::size_t lint_netlist(std::string_view text, std::string_view source, Report& report,
                         const NetlistLintOptions& options = {});

}  // namespace rfabm::lint
