#include "lint/abm_rules.hpp"

#include <map>

namespace rfabm::lint {

namespace {

using jtag::AbmSwitch;
using jtag::Instruction;
using jtag::TbicSwitch;

bool abm_closed(const jtag::AnalogBoundaryModule& abm, AbmSwitch s) {
    return abm.switch_dev(s).effective_closed();
}

bool tbic_closed(const jtag::Tbic& tbic, TbicSwitch s) {
    return tbic.switch_dev(s).effective_closed();
}

bool is_mission(Instruction i) {
    return i == Instruction::kBypass || i == Instruction::kIdcode ||
           i == Instruction::kSamplePreload;
}

}  // namespace

std::size_t lint_abm_state(const jtag::AnalogBoundaryModule& abm, Report& report) {
    const std::size_t before = report.diagnostics().size();
    const Instruction instr = abm.last_instruction();
    const std::string who(to_string(instr));

    const bool sd = abm_closed(abm, AbmSwitch::kSD);
    const bool sh = abm_closed(abm, AbmSwitch::kSH);
    const bool sl = abm_closed(abm, AbmSwitch::kSL);
    const bool sg = abm_closed(abm, AbmSwitch::kSG);
    const bool sb1 = abm_closed(abm, AbmSwitch::kSB1);
    const bool sb2 = abm_closed(abm, AbmSwitch::kSB2);

    auto emit = [&](std::string rule, Severity severity, std::string message,
                    std::string fixit = "") {
        report.add(std::move(rule), severity, SourceLoc{}, std::move(message), std::move(fixit),
                   abm.name());
    };

    if (sh && sl) {
        emit("abm-sh-sl-short", Severity::kError,
             "ABM '" + abm.name() + "' has SH and SL closed together under " + who +
                 ": VH is crowbarred to VL through the pin",
             "drive either the D latch or the E latch, not a pattern closing both");
    }
    if (sb1 && sb2) {
        emit("abm-both-buses", Severity::kWarning,
             "ABM '" + abm.name() + "' connects its pin to AB1 and AB2 simultaneously under " +
                 who,
             "clear B1 or B2 unless a differential bus measurement is intended");
    }

    switch (instr) {
        case Instruction::kExtest:
        case Instruction::kIntest:
        case Instruction::kClamp:
            if (sd) {
                emit("abm-sd-not-isolated", Severity::kError,
                     "ABM '" + abm.name() + "' has SD closed under " + who +
                         ": the core is not isolated from the pin",
                     "check SD for a stuck-closed defect; the mode table opens SD here");
            }
            break;
        case Instruction::kProbe:
            if (!sd) {
                emit("abm-mode-mismatch", Severity::kError,
                     "ABM '" + abm.name() +
                         "' has SD open under PROBE: the mission path the instruction "
                         "guarantees is broken",
                     "check SD for a stuck-open defect");
            }
            if (sh || sl || sg) {
                emit("abm-drive-during-probe", Severity::kError,
                     "ABM '" + abm.name() + "' is driving its pin (SH/SL/SG closed) under PROBE",
                     "PROBE must observe without disturbing; open SH, SL and SG");
            }
            break;
        case Instruction::kHighz:
            if (sd || sh || sl || sg || sb1 || sb2) {
                emit("abm-mode-mismatch", Severity::kError,
                     "ABM '" + abm.name() + "' has a switch closed under HIGHZ; all six must be "
                                            "open",
                     "check for stuck-closed switch defects");
            }
            break;
        default:
            if (is_mission(instr)) {
                if (!sd) {
                    emit("abm-mode-mismatch", Severity::kError,
                         "ABM '" + abm.name() + "' has SD open under mission-mode " + who +
                             ": the pin is cut off from the core",
                         "check SD for a stuck-open defect");
                }
                if (sh || sl || sg || sb1 || sb2) {
                    emit("abm-mode-mismatch", Severity::kError,
                         "ABM '" + abm.name() + "' has a test switch closed under mission-mode " +
                             who,
                         "check SH/SL/SG/SB1/SB2 for stuck-closed defects");
                }
            }
            break;
    }

    return report.diagnostics().size() - before;
}

std::size_t lint_tbic_state(const jtag::Tbic& tbic, Report& report, const std::string& name) {
    const std::size_t before = report.diagnostics().size();
    const Instruction instr = tbic.instruction();
    const std::string who(to_string(instr));

    const bool s1 = tbic_closed(tbic, TbicSwitch::kS1);
    const bool s2 = tbic_closed(tbic, TbicSwitch::kS2);
    const bool s3 = tbic_closed(tbic, TbicSwitch::kS3);
    const bool s4 = tbic_closed(tbic, TbicSwitch::kS4);
    const bool s5 = tbic_closed(tbic, TbicSwitch::kS5);
    const bool s6 = tbic_closed(tbic, TbicSwitch::kS6);

    auto emit = [&](std::string rule, Severity severity, std::string message,
                    std::string fixit = "") {
        report.add(std::move(rule), severity, SourceLoc{}, std::move(message), std::move(fixit),
                   name);
    };

    if (!jtag::is_analog_test_mode(instr) && (s1 || s2 || s3 || s4 || s5 || s6)) {
        emit("tbic-not-isolated", Severity::kError,
             "TBIC '" + name + "' has a switch closed under " + who +
                 ": the ATAP pins must be isolated outside analog test instructions",
             "check the TBIC switches for stuck-closed defects");
    }
    if (s3 && s4) {
        emit("tbic-vh-vl-short", Severity::kError,
             "TBIC '" + name + "' closes S3 and S4 together: VH shorted to VL through AT1",
             "use one characterization level per ATAP pin");
    }
    if (s5 && s6) {
        emit("tbic-vh-vl-short", Severity::kError,
             "TBIC '" + name + "' closes S5 and S6 together: VH shorted to VL through AT2",
             "use one characterization level per ATAP pin");
    }
    if ((s3 && s5) || (s4 && s6)) {
        emit("tbic-at-short", Severity::kError,
             "TBIC '" + name + "' ties AT1 and AT2 to the same reference rail, shorting the "
                               "two ATAP pins together",
             "characterize with opposite rails (S3+S6 or S4+S5)");
    }
    if ((s1 && (s3 || s4)) || (s2 && (s5 || s6))) {
        emit("tbic-drive-while-connect", Severity::kWarning,
             "TBIC '" + name + "' drives a characterization level onto an ATAP pin that is "
                               "also connected to an internal bus",
             "open S1/S2 during bus characterization, or the rails during measurement");
    }

    return report.diagnostics().size() - before;
}

std::size_t lint_select_word(const SelectBusModel& model, std::uint64_t word, Report& report) {
    const std::size_t before = report.diagnostics().size();

    auto emit = [&](std::string rule, Severity severity, std::string message,
                    std::string fixit = "") {
        report.add(std::move(rule), severity, SourceLoc{}, std::move(message), std::move(fixit),
                   model.name);
    };

    const bool powered =
        model.power_bit < 0 || ((word >> static_cast<std::size_t>(model.power_bit)) & 1u) != 0;

    std::map<int, std::vector<const SelectRoute*>> drivers;
    std::map<int, std::vector<const SelectRoute*>> loads;
    for (const SelectRoute& route : model.routes) {
        if (((word >> route.bit) & 1u) == 0) continue;
        (route.drives_bus ? drivers : loads)[route.bus].push_back(&route);
        if (route.drives_bus && !powered) {
            emit("select-unpowered", Severity::kWarning,
                 "select word routes '" + route.name + "' while detector power (bit " +
                     std::to_string(model.power_bit) + ") is off",
                 "set the power bit in the same select word");
        }
    }

    for (const auto& [bus, on_bus] : drivers) {
        if (on_bus.size() > 1) {
            std::string who = on_bus[0]->name;
            for (std::size_t i = 1; i < on_bus.size(); ++i) who += "' and '" + on_bus[i]->name;
            emit("select-bus-conflict", Severity::kError,
                 "select word drives bus AB" + std::to_string(bus) + " from '" + who +
                     "' simultaneously",
                 "enable one driver per bus");
        }
        const auto it = loads.find(bus);
        if (it != loads.end()) {
            emit("select-bus-conflict", Severity::kError,
                 "select word both drives bus AB" + std::to_string(bus) + " ('" +
                     on_bus[0]->name + "') and loads it into '" + it->second[0]->name +
                     "': the external instrument and the internal driver will fight",
                 "separate the drive and the tune/load onto different select words");
        }
    }
    for (const auto& [bus, on_bus] : loads) {
        if (on_bus.size() > 1) {
            std::string who = on_bus[0]->name;
            for (std::size_t i = 1; i < on_bus.size(); ++i) who += "' and '" + on_bus[i]->name;
            emit("select-double-load", Severity::kWarning,
                 "select word routes bus AB" + std::to_string(bus) + " into '" + who +
                     "' at once",
                 "tune one input at a time");
        }
    }

    return report.diagnostics().size() - before;
}

}  // namespace rfabm::lint
