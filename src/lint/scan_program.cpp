#include "lint/scan_program.hpp"

#include <string>

namespace rfabm::lint {

namespace {

using jtag::Instruction;
using jtag::TapState;

bool is_stable(TapState s) {
    return s == TapState::kTestLogicReset || s == TapState::kRunTestIdle ||
           s == TapState::kPauseDr || s == TapState::kPauseIr;
}

bool is_shift(TapState s) { return s == TapState::kShiftDr || s == TapState::kShiftIr; }

std::string op_label(const ScanOp& op, std::size_t index) {
    std::string kind;
    switch (op.kind) {
        case ScanOp::Kind::kReset: kind = "reset"; break;
        case ScanOp::Kind::kMoveTo: kind = "move-to"; break;
        case ScanOp::Kind::kScanIr: kind = "scan-ir"; break;
        case ScanOp::Kind::kScanDr: kind = "scan-dr"; break;
        case ScanOp::Kind::kRunTest: kind = "run-test"; break;
        case ScanOp::Kind::kTmsPath: kind = "tms-path"; break;
    }
    return "op " + std::to_string(index + 1) + " (" + kind + ")";
}

}  // namespace

ScanProgram& ScanProgram::reset() {
    ops.push_back({ScanOp::Kind::kReset, TapState::kTestLogicReset, 0, 0, {}});
    return *this;
}

ScanProgram& ScanProgram::move_to(TapState target) {
    ops.push_back({ScanOp::Kind::kMoveTo, target, 0, 0, {}});
    return *this;
}

ScanProgram& ScanProgram::scan_ir(std::uint8_t ir) {
    ops.push_back({ScanOp::Kind::kScanIr, TapState::kRunTestIdle, ir, 0, {}});
    return *this;
}

ScanProgram& ScanProgram::scan_dr(std::size_t length) {
    ops.push_back({ScanOp::Kind::kScanDr, TapState::kRunTestIdle, 0, length, {}});
    return *this;
}

ScanProgram& ScanProgram::run_test(std::size_t cycles) {
    ops.push_back({ScanOp::Kind::kRunTest, TapState::kRunTestIdle, 0, cycles, {}});
    return *this;
}

ScanProgram& ScanProgram::tms_path(std::vector<bool> tms) {
    ops.push_back({ScanOp::Kind::kTmsPath, TapState::kRunTestIdle, 0, 0, std::move(tms)});
    return *this;
}

ScanLintOptions ScanLintOptions::with_boundary_length(std::size_t boundary_length) {
    ScanLintOptions options;
    options.dr_lengths[opcode(Instruction::kBypass)] = 1;
    options.dr_lengths[opcode(Instruction::kClamp)] = 1;   // clamp selects bypass
    options.dr_lengths[opcode(Instruction::kHighz)] = 1;   // so does high-z
    options.dr_lengths[opcode(Instruction::kIdcode)] = 32;
    if (boundary_length > 0) {
        options.dr_lengths[opcode(Instruction::kExtest)] = boundary_length;
        options.dr_lengths[opcode(Instruction::kSamplePreload)] = boundary_length;
        options.dr_lengths[opcode(Instruction::kProbe)] = boundary_length;
        options.dr_lengths[opcode(Instruction::kIntest)] = boundary_length;
    }
    return options;
}

std::size_t lint_scan_program(const ScanProgram& program, Report& report,
                              const ScanLintOptions& options) {
    const std::size_t before = report.diagnostics().size();

    // The power-up state of the simulated TAP: unknown until the program
    // establishes it.  We start at Test-Logic-Reset (what TRST*/power-on
    // gives) but remember whether the program itself ever guaranteed it.
    TapState state = TapState::kTestLogicReset;
    std::uint8_t current_ir = opcode(Instruction::kIdcode);
    bool seen_reset = false;
    bool warned_no_reset = false;

    auto emit = [&](std::string rule, Severity severity, std::string message,
                    std::string fixit = "") {
        report.add(std::move(rule), severity, SourceLoc{}, std::move(message), std::move(fixit),
                   "scan-program");
    };

    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const ScanOp& op = program.ops[i];
        switch (op.kind) {
            case ScanOp::Kind::kReset:
                state = TapState::kTestLogicReset;
                current_ir = opcode(Instruction::kIdcode);
                seen_reset = true;
                break;

            case ScanOp::Kind::kMoveTo:
                state = op.target;
                break;

            case ScanOp::Kind::kScanIr:
            case ScanOp::Kind::kScanDr: {
                const bool is_ir = op.kind == ScanOp::Kind::kScanIr;
                if (!seen_reset && !warned_no_reset) {
                    warned_no_reset = true;
                    emit("scan-missing-reset", Severity::kWarning,
                         op_label(op, i) + ": no Test-Logic-Reset established before the first "
                                           "scan; the TAP state and IR content are assumptions",
                         "start the program with a reset op");
                }
                if (!is_stable(state)) {
                    emit("scan-from-unstable-state", Severity::kError,
                         op_label(op, i) + ": launched from non-stable TAP state '" +
                             std::string(to_string(state)) + "'",
                         "move to Run-Test/Idle (or a Pause state) before scanning");
                }
                if (is_ir) {
                    current_ir = opcode(jtag::decode_instruction(op.ir));
                } else {
                    if (op.length == 0) {
                        emit("scan-dr-length", Severity::kError,
                             op_label(op, i) + ": zero-length DR scan",
                             "scan at least one bit");
                    } else if (const auto it = options.dr_lengths.find(current_ir);
                               it != options.dr_lengths.end() && it->second != op.length) {
                        emit("scan-dr-length", Severity::kError,
                             op_label(op, i) + ": scans " + std::to_string(op.length) +
                                 " bit(s) but instruction '" +
                                 std::string(to_string(jtag::decode_instruction(current_ir))) +
                                 "' selects a " + std::to_string(it->second) +
                                 "-bit register; the pattern will arrive shifted",
                             "match the scan length to the selected register");
                    }
                }
                state = TapState::kRunTestIdle;
                break;
            }

            case ScanOp::Kind::kRunTest:
                state = TapState::kRunTestIdle;
                break;

            case ScanOp::Kind::kTmsPath: {
                bool strayed = false;
                for (const bool tms : op.tms) {
                    state = jtag::next_tap_state(state, tms);
                    if (is_shift(state)) strayed = true;
                }
                if (strayed) {
                    emit("scan-stray-shift", Severity::kWarning,
                         op_label(op, i) + ": raw TMS move passes through a Shift state, "
                                           "clocking unintended data into the register",
                         "route moves around Shift-IR/Shift-DR or use an explicit scan op");
                }
                break;
            }
        }
    }

    if (!program.ops.empty() && !is_stable(state)) {
        emit("scan-unstable-endpoint", Severity::kError,
             "program ends in non-stable TAP state '" + std::string(to_string(state)) +
                 "'; the next TCK edge will move the TAP unpredictably",
             "finish in Run-Test/Idle or Test-Logic-Reset");
    }

    return report.diagnostics().size() - before;
}

}  // namespace rfabm::lint
