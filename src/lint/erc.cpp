#include "lint/erc.hpp"

#include <numeric>
#include <sstream>
#include <vector>

#include "circuit/devices/controlled.hpp"
#include "circuit/devices/defects.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"

namespace rfabm::lint {

namespace {

using circuit::Device;
using circuit::NodeId;

/// Union-find over node ids; unite() reports whether the edge merged two
/// previously separate components (false == the edge closed a loop).
class UnionFind {
  public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    bool unite(std::size_t a, std::size_t b) {
        const std::size_t ra = find(a);
        const std::size_t rb = find(b);
        if (ra == rb) return false;
        parent_[ra] = rb;
        return true;
    }

  private:
    std::vector<std::size_t> parent_;
};

SourceLoc locate(const std::string& device, const circuit::NetlistOrigins* origins,
                 std::string_view source) {
    SourceLoc loc;
    loc.file = std::string(source);
    if (origins != nullptr) {
        const auto it = origins->find(device);
        if (it != origins->end()) {
            loc.line = it->second.line;
            loc.column = it->second.column;
        }
    }
    return loc;
}

std::string format_value(double value) {
    std::ostringstream out;
    out << value;
    return out.str();
}

}  // namespace

std::size_t run_erc(const circuit::Circuit& circuit, Report& report, const ErcOptions& options,
                    const circuit::NetlistOrigins* origins, std::string_view source) {
    const std::size_t before = report.diagnostics().size();
    const auto& devices = circuit.devices();
    const std::size_t num_nodes = circuit.num_nodes();

    auto emit = [&](std::string rule, Severity severity, const std::string& device,
                    std::string message, std::string fixit = "") {
        report.add(std::move(rule), severity, locate(device, origins, source), std::move(message),
                   std::move(fixit), device);
    };

    // Connectivity structures, filled while walking the devices once.
    UnionFind touch_graph(num_nodes);  // every terminal-to-terminal adjacency
    UnionFind dc_graph(num_nodes);    // only finite-resistance DC paths
    UnionFind loop_graph(num_nodes);  // voltage-source/inductor loop detection
    std::vector<std::size_t> touch_count(num_nodes, 0);
    // First device touching each node, for locating node-level findings.
    std::vector<const Device*> first_toucher(num_nodes, nullptr);

    for (const auto& owned : devices) {
        const Device* dev = owned.get();
        const std::vector<NodeId> terminals = dev->terminals();

        for (const NodeId t : terminals) {
            const auto idx = static_cast<std::size_t>(t);
            ++touch_count[idx];
            if (first_toucher[idx] == nullptr) first_toucher[idx] = dev;
            touch_graph.unite(static_cast<std::size_t>(terminals.front()), idx);
        }

        // Generic self-loop: a two-terminal element with both ends on one node
        // stamps nothing useful.
        if (terminals.size() == 2 && terminals[0] == terminals[1] &&
            dynamic_cast<const circuit::VSource*>(dev) == nullptr) {
            emit("erc-self-loop", Severity::kWarning, dev->name(),
                 "device '" + dev->name() + "' connects node '" +
                     circuit.node_name(terminals[0]) + "' to itself");
        }

        for (const auto& [a, b] : dev->dc_paths()) {
            bool conducts = true;
            if (const auto* r = dynamic_cast<const circuit::Resistor*>(dev)) {
                conducts = r->resistance() < options.r_open;
            }
            if (conducts) dc_graph.unite(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
        }

        // --- value plausibility ------------------------------------------------
        if (options.check_values) {
            if (const auto* r = dynamic_cast<const circuit::Resistor*>(dev)) {
                if (r->resistance() <= 0.0) {
                    emit("erc-value-zero", Severity::kError, dev->name(),
                         "resistor '" + dev->name() + "' has non-positive resistance " +
                             format_value(r->resistance()) + " ohm",
                         "use a small positive resistance (e.g. 1m) for an ideal short");
                } else if (r->resistance() < options.r_small || r->resistance() > options.r_large) {
                    emit("erc-value-suspicious", Severity::kWarning, dev->name(),
                         "resistor '" + dev->name() + "' value " + format_value(r->resistance()) +
                             " ohm is outside the plausible range [" +
                             format_value(options.r_small) + ", " + format_value(options.r_large) +
                             "]",
                         "check the engineering suffix on the value");
                }
            } else if (const auto* c = dynamic_cast<const circuit::Capacitor*>(dev)) {
                if (c->capacitance() <= 0.0) {
                    emit("erc-value-zero", Severity::kError, dev->name(),
                         "capacitor '" + dev->name() + "' has non-positive capacitance " +
                             format_value(c->capacitance()) + " F");
                } else if (c->capacitance() < options.c_small ||
                           c->capacitance() > options.c_large) {
                    emit("erc-value-suspicious", Severity::kWarning, dev->name(),
                         "capacitor '" + dev->name() + "' value " + format_value(c->capacitance()) +
                             " F is outside the plausible range [" +
                             format_value(options.c_small) + ", " + format_value(options.c_large) +
                             "]",
                         "check the engineering suffix on the value");
                }
            } else if (const auto* l = dynamic_cast<const circuit::Inductor*>(dev)) {
                if (l->inductance() <= 0.0) {
                    emit("erc-value-zero", Severity::kError, dev->name(),
                         "inductor '" + dev->name() + "' has non-positive inductance " +
                             format_value(l->inductance()) + " H");
                } else if (l->inductance() < options.l_small ||
                           l->inductance() > options.l_large) {
                    emit("erc-value-suspicious", Severity::kWarning, dev->name(),
                         "inductor '" + dev->name() + "' value " + format_value(l->inductance()) +
                             " H is outside the plausible range [" +
                             format_value(options.l_small) + ", " + format_value(options.l_large) +
                             "]",
                         "check the engineering suffix on the value");
                }
            } else if (const auto* sw = dynamic_cast<const circuit::Switch*>(dev)) {
                if (sw->ron() >= sw->roff()) {
                    emit("erc-switch-ron-roff", Severity::kError, dev->name(),
                         "switch '" + dev->name() + "' has RON (" + format_value(sw->ron()) +
                             ") >= ROFF (" + format_value(sw->roff()) +
                             "): open and closed states are indistinguishable",
                         "swap or fix the RON/ROFF parameters");
                }
            }
        }

        // --- injected-fault visibility ----------------------------------------
        if (options.check_faults) {
            if (const auto* defect = dynamic_cast<const circuit::BridgeDefect*>(dev)) {
                if (defect->armed()) {
                    emit("erc-defect-armed", Severity::kError, dev->name(),
                         "defect device '" + dev->name() + "' is armed: " +
                             format_value(defect->ohms()) + " ohm bridge between '" +
                             circuit.node_name(defect->a()) + "' and '" +
                             circuit.node_name(defect->b()) + "'",
                         "disarm the defect population before measuring");
                }
            } else if (const auto* sw = dynamic_cast<const circuit::Switch*>(dev)) {
                if (sw->fault() != circuit::SwitchFault::kNone) {
                    const bool stuck_closed = sw->fault() == circuit::SwitchFault::kStuckClosed;
                    emit("erc-device-fault", Severity::kError, dev->name(),
                         "switch '" + dev->name() + "' is stuck " +
                             (stuck_closed ? "closed" : "open") +
                             " and ignores its control input");
                }
            } else if (const auto* fet = dynamic_cast<const circuit::Mosfet*>(dev)) {
                if (fet->fault() != circuit::MosfetFault::kNone) {
                    const bool on = fet->fault() == circuit::MosfetFault::kStuckOn;
                    emit("erc-device-fault", Severity::kError, dev->name(),
                         "MOSFET '" + dev->name() + "' channel is stuck " + (on ? "on" : "off"));
                }
            }
        }

        // --- voltage-source / inductor loops ----------------------------------
        if (options.check_loops) {
            const Device* loop_member = nullptr;
            const char* rule = nullptr;
            std::pair<NodeId, NodeId> edge{0, 0};
            if (const auto* v = dynamic_cast<const circuit::VSource*>(dev)) {
                loop_member = v;
                rule = "erc-voltage-loop";
                edge = {v->p(), v->n()};
            } else if (const auto* e = dynamic_cast<const circuit::Vcvs*>(dev)) {
                loop_member = e;
                rule = "erc-voltage-loop";
                edge = {e->p(), e->n()};
            } else if (const auto* l = dynamic_cast<const circuit::Inductor*>(dev)) {
                loop_member = l;
                rule = "erc-inductor-loop";
                edge = {l->a(), l->b()};
            }
            if (loop_member != nullptr) {
                const bool merged = edge.first != edge.second &&
                                    loop_graph.unite(static_cast<std::size_t>(edge.first),
                                                     static_cast<std::size_t>(edge.second));
                if (!merged) {
                    const bool inductor = std::string_view(rule) == "erc-inductor-loop";
                    emit(rule, Severity::kError, dev->name(),
                         std::string(inductor ? "inductor '" : "voltage source '") + dev->name() +
                             "' closes a loop of voltage sources/inductors between '" +
                             circuit.node_name(edge.first) + "' and '" +
                             circuit.node_name(edge.second) +
                             "': the DC system is singular",
                         "break the loop with a series resistance");
                }
            }
        }
    }

    // --- node-level connectivity findings ---------------------------------
    const std::size_t ground_comp = touch_graph.find(static_cast<std::size_t>(circuit::kGround));
    const std::size_t ground_dc = dc_graph.find(static_cast<std::size_t>(circuit::kGround));

    auto node_loc_device = [&](std::size_t idx) -> std::string {
        return first_toucher[idx] != nullptr ? first_toucher[idx]->name() : std::string();
    };

    // Isolated subnets: touched components with no ground member, reported
    // once per component.
    if (options.check_isolated) {
        std::vector<bool> reported_comp(num_nodes, false);
        for (std::size_t idx = 1; idx < num_nodes; ++idx) {
            if (touch_count[idx] == 0) continue;
            const std::size_t comp = touch_graph.find(idx);
            if (comp == ground_comp || reported_comp[comp]) continue;
            reported_comp[comp] = true;
            // Gather a few member names for the message.
            std::string members;
            std::size_t shown = 0;
            std::size_t total = 0;
            for (std::size_t j = 1; j < num_nodes; ++j) {
                if (touch_count[j] == 0 || touch_graph.find(j) != comp) continue;
                ++total;
                if (shown < 4) {
                    if (!members.empty()) members += ", ";
                    members += "'" + circuit.node_name(static_cast<NodeId>(j)) + "'";
                    ++shown;
                }
            }
            if (total > shown) members += ", ...";
            const std::string device = node_loc_device(idx);
            emit("erc-isolated-subnet", Severity::kError, device,
                 "subcircuit of " + std::to_string(total) +
                     " node(s) has no ground reference: " + members,
                 "connect the subcircuit to node '0' or remove it");
        }
    }

    for (std::size_t idx = 1; idx < num_nodes; ++idx) {
        if (touch_count[idx] == 0) continue;  // only opaque devices reference it
        const std::string node_name = circuit.node_name(static_cast<NodeId>(idx));
        const std::string device = node_loc_device(idx);

        if (options.check_dangling && touch_count[idx] == 1) {
            emit("erc-dangling-node", Severity::kWarning, device,
                 "node '" + node_name + "' is touched by only one device terminal ('" + device +
                     "')",
                 "remove the dangling connection or wire the node up");
        }

        // Floating: in the grounded portion of the design but with no DC
        // conduction path down to ground.  Isolated subnets are reported
        // above, not double-counted here.
        if (options.check_floating && touch_graph.find(idx) == ground_comp &&
            dc_graph.find(idx) != ground_dc) {
            emit("erc-floating-node", Severity::kError, device,
                 "node '" + node_name +
                     "' has no DC path to ground: its operating point is undefined",
                 "add a DC return (e.g. a large resistor to ground) at '" + node_name + "'");
        }
    }

    return report.diagnostics().size() - before;
}

}  // namespace rfabm::lint
