#include "lint/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace rfabm::lint {

std::string_view to_string(Severity severity) {
    switch (severity) {
        case Severity::kNote: return "note";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

const std::vector<RuleInfo>& rule_catalog() {
    static const std::vector<RuleInfo> kCatalog = {
        // --- ABM switch-state rules (1149.4) --------------------------------
        {"abm-both-buses", Severity::kWarning,
         "ABM pin connected to AB1 and AB2 simultaneously (SB1 and SB2 closed)"},
        {"abm-drive-during-probe", Severity::kError,
         "SH/SL/SG closed during PROBE, disturbing the mission path the instruction promises to "
         "preserve"},
        {"abm-mode-mismatch", Severity::kError,
         "ABM switch state contradicts the mode table for the active instruction (stuck switch or "
         "corrupted boundary latch)"},
        {"abm-sd-not-isolated", Severity::kError,
         "SD closed in EXTEST/INTEST/CLAMP: core not isolated from the pin"},
        {"abm-sh-sl-short", Severity::kError,
         "SH and SL closed together: VH-VL crowbar through the pin"},
        // --- netlist ERC ----------------------------------------------------
        {"erc-dangling-node", Severity::kWarning,
         "node touched by exactly one device terminal"},
        {"erc-defect-armed", Severity::kError,
         "defect device (bridge/leak) armed in the netlist under lint"},
        {"erc-device-fault", Severity::kError,
         "device carries an injected stuck fault (switch or MOSFET)"},
        {"erc-duplicate-name", Severity::kError, "two devices share one name"},
        {"erc-floating-node", Severity::kError,
         "node has no DC path to ground: its operating point is undefined"},
        {"erc-inductor-loop", Severity::kError,
         "inductor closes a loop of voltage sources/inductors (infinite DC current)"},
        {"erc-isolated-subnet", Severity::kError,
         "connected subcircuit with no ground reference"},
        {"erc-self-loop", Severity::kWarning, "device has both terminals on the same node"},
        {"erc-switch-ron-roff", Severity::kError,
         "switch on-resistance is not below its off-resistance"},
        {"erc-undefined-model", Severity::kError, "MOSFET references a .model that is not defined"},
        {"erc-value-suspicious", Severity::kWarning,
         "component value outside the plausible range for its unit"},
        {"erc-value-zero", Severity::kError, "component value is zero or negative"},
        {"erc-voltage-loop", Severity::kError,
         "loop of voltage sources (contradictory or redundant DC constraints)"},
        // --- flow-sensitive scan-program rules (lint/flow) --------------------
        {"flow-bad-die", Severity::kError,
         "campaign step targets a die outside the declared chain topology"},
        {"flow-break-before-make", Severity::kError,
         "one update event hands a pin straight from AB1 to AB2 (or back) with no "
         "disconnect interval"},
        {"flow-bus-contention", Severity::kError,
         "two latched drivers on one shared analog bus across the dies of a chain"},
        {"flow-crowbar-window", Severity::kError,
         "SH and SL latched closed together in the window between two update events"},
        {"flow-dead-update", Severity::kWarning,
         "select update overwritten before any measure/calibrate observes it (dead "
         "program step)"},
        {"flow-measure-before-calibrate", Severity::kWarning,
         "die measured before any calibrate step anchors its conversion curve"},
        {"flow-parse-error", Severity::kError, "campaign program file does not parse"},
        {"flow-read-before-select", Severity::kError,
         "detector read before its routing (or an analog test instruction) has landed"},
        {"flow-unpowered-read", Severity::kError,
         "detector read while the power-gating select bit is not known to be on"},
        {"mux-select-mismatch", Severity::kError,
         ".4 MUX switch state disagrees with the latched select word (stuck switch)"},
        {"netlist-parse-error", Severity::kError, "netlist does not parse"},
        // --- scan-program rules ---------------------------------------------
        {"scan-dr-length", Severity::kError,
         "DR scan length does not match the register selected by the active instruction"},
        {"scan-from-unstable-state", Severity::kError,
         "IR/DR scan launched from a non-stable TAP state"},
        {"scan-missing-reset", Severity::kWarning,
         "program never establishes Test-Logic-Reset before its first scan"},
        {"scan-stray-shift", Severity::kWarning,
         "raw TMS move passes through Shift-IR/Shift-DR, clocking unintended data"},
        {"scan-unstable-endpoint", Severity::kError,
         "program ends in a non-stable TAP state"},
        // --- select-bus rules -----------------------------------------------
        {"select-bus-conflict", Severity::kError,
         "select word routes two drivers (or a driver and a load) onto one analog bus"},
        {"select-double-load", Severity::kWarning,
         "select word routes one analog bus into two loads at once"},
        {"select-unpowered", Severity::kWarning,
         "select word routes a detector output while detector power is off"},
        // --- TBIC rules -----------------------------------------------------
        {"tbic-at-short", Severity::kError,
         "AT1 and AT2 shorted together through a TBIC reference rail"},
        {"tbic-drive-while-connect", Severity::kWarning,
         "TBIC drives a characterization level onto a bus-connected ATAP pin"},
        {"tbic-not-isolated", Severity::kError,
         "TBIC switch closed outside an analog test instruction"},
        {"tbic-vh-vl-short", Severity::kError,
         "TBIC shorts VH to VL through an ATAP pin"},
    };
    return kCatalog;
}

bool is_known_rule(std::string_view id) {
    const auto& catalog = rule_catalog();
    return std::any_of(catalog.begin(), catalog.end(),
                       [&](const RuleInfo& info) { return info.id == id; });
}

bool Report::add(Diagnostic diag) {
    if (suppressed(diag)) {
        ++suppressed_;
        return false;
    }
    diags_.push_back(std::move(diag));
    return true;
}

bool Report::add(std::string rule, Severity severity, SourceLoc loc, std::string message,
                 std::string fixit, std::string device) {
    Diagnostic diag;
    diag.rule = std::move(rule);
    diag.severity = severity;
    diag.loc = std::move(loc);
    diag.message = std::move(message);
    diag.fixit = std::move(fixit);
    diag.device = std::move(device);
    return add(std::move(diag));
}

void Report::suppress_rule(std::string rule) { rule_suppressions_.insert(std::move(rule)); }

void Report::suppress_line(std::size_t line, std::string rule) {
    line_suppressions_[line].insert(std::move(rule));
}

bool Report::suppressed(const Diagnostic& diag) const {
    if (rule_suppressions_.count(diag.rule) || rule_suppressions_.count("*")) return true;
    if (diag.loc.valid()) {
        const auto it = line_suppressions_.find(diag.loc.line);
        if (it != line_suppressions_.end() &&
            (it->second.count(diag.rule) || it->second.count("*"))) {
            return true;
        }
    }
    return false;
}

std::size_t Report::count(Severity severity) const {
    return static_cast<std::size_t>(std::count_if(
        diags_.begin(), diags_.end(),
        [severity](const Diagnostic& d) { return d.severity == severity; }));
}

void Report::sort() {
    std::stable_sort(diags_.begin(), diags_.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.loc.file, a.loc.line, a.loc.column, a.rule) <
               std::tie(b.loc.file, b.loc.line, b.loc.column, b.rule);
    });
}

namespace {

std::string location_prefix(const Diagnostic& diag) {
    std::ostringstream out;
    if (diag.loc.valid()) {
        out << (diag.loc.file.empty() ? "<netlist>" : diag.loc.file) << ':' << diag.loc.line;
        if (diag.loc.column > 0) out << ':' << diag.loc.column;
    } else if (!diag.device.empty()) {
        out << diag.device;
    } else {
        out << "<state>";
    }
    return out.str();
}

void append_json_string(std::string& out, std::string_view text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace

std::string Report::to_text() const {
    std::ostringstream out;
    for (const Diagnostic& diag : diags_) {
        out << location_prefix(diag) << ": " << to_string(diag.severity) << ": " << diag.message
            << " [" << diag.rule << "]\n";
        if (!diag.fixit.empty()) out << "    fix-it: " << diag.fixit << "\n";
        if (!diag.witness.empty()) {
            out << "    witness:\n";
            for (const std::string& step : diag.witness) out << "      " << step << "\n";
        }
    }
    const std::size_t errors = error_count();
    const std::size_t warnings = warning_count();
    out << errors << (errors == 1 ? " error, " : " errors, ") << warnings
        << (warnings == 1 ? " warning." : " warnings.");
    if (suppressed_ > 0) out << " (" << suppressed_ << " suppressed)";
    out << "\n";
    return out.str();
}

std::string Report::to_json() const {
    std::string out = "{\"diagnostics\":[";
    bool first = true;
    for (const Diagnostic& diag : diags_) {
        if (!first) out += ',';
        first = false;
        out += "{\"rule\":";
        append_json_string(out, diag.rule);
        out += ",\"severity\":";
        append_json_string(out, to_string(diag.severity));
        if (diag.loc.valid()) {
            out += ",\"file\":";
            append_json_string(out, diag.loc.file);
            out += ",\"line\":" + std::to_string(diag.loc.line);
            out += ",\"column\":" + std::to_string(diag.loc.column);
        }
        if (!diag.device.empty()) {
            out += ",\"device\":";
            append_json_string(out, diag.device);
        }
        out += ",\"message\":";
        append_json_string(out, diag.message);
        if (!diag.fixit.empty()) {
            out += ",\"fixit\":";
            append_json_string(out, diag.fixit);
        }
        if (!diag.witness.empty()) {
            out += ",\"witness\":[";
            bool first_step = true;
            for (const std::string& step : diag.witness) {
                if (!first_step) out += ',';
                first_step = false;
                append_json_string(out, step);
            }
            out += ']';
        }
        out += '}';
    }
    out += "],\"errors\":" + std::to_string(error_count());
    out += ",\"warnings\":" + std::to_string(warning_count());
    out += ",\"suppressed\":" + std::to_string(suppressed_) + "}";
    return out;
}

}  // namespace rfabm::lint
