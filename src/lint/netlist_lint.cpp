#include "lint/netlist_lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/netlist_parser.hpp"

namespace rfabm::lint {

namespace {

std::string lower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

/// Parse "rule-a,rule-b" after a disable= directive and register the
/// suppressions on @p target_line (0 == whole file).
void register_rules(Report& report, std::string_view list, std::size_t target_line) {
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string_view::npos) end = list.size();
        std::string_view rule = list.substr(start, end - start);
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front()))) {
            rule.remove_prefix(1);
        }
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back()))) {
            rule.remove_suffix(1);
        }
        if (!rule.empty()) {
            if (target_line == 0) {
                report.suppress_rule(std::string(rule));
            } else {
                report.suppress_line(target_line, std::string(rule));
            }
        }
        start = end + 1;
    }
}

/// Scan raw text for `abm-lint:` comment directives (the card scanner strips
/// comments, so this walks the raw lines).
void collect_suppressions(std::string_view text, Report& report) {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string_view raw = text.substr(pos, eol - pos);
        ++line_no;

        // Directives live in the comment portion only: either a whole-line
        // '*' comment or an inline ';' comment.
        std::size_t comment_start = std::string_view::npos;
        bool whole_line = false;
        std::size_t first_nonspace = raw.find_first_not_of(" \t\r");
        if (first_nonspace != std::string_view::npos && raw[first_nonspace] == '*') {
            comment_start = first_nonspace + 1;
            whole_line = true;
        } else if (std::size_t semi = raw.find(';'); semi != std::string_view::npos) {
            comment_start = semi + 1;
            whole_line = first_nonspace == semi;
        }
        if (comment_start != std::string_view::npos) {
            const std::string comment = lower(raw.substr(comment_start));
            static constexpr std::string_view kMarker = "abm-lint:";
            if (const std::size_t mark = comment.find(kMarker); mark != std::string::npos) {
                std::string_view directive = std::string_view(comment).substr(mark + kMarker.size());
                while (!directive.empty() &&
                       std::isspace(static_cast<unsigned char>(directive.front()))) {
                    directive.remove_prefix(1);
                }
                static constexpr std::string_view kFile = "disable-file=";
                static constexpr std::string_view kLine = "disable=";
                if (directive.rfind(kFile, 0) == 0) {
                    register_rules(report, directive.substr(kFile.size()), 0);
                } else if (directive.rfind(kLine, 0) == 0) {
                    // A whole-line comment guards the following line.
                    register_rules(report, directive.substr(kLine.size()),
                                   whole_line ? line_no + 1 : line_no);
                }
            }
        }

        if (eol == text.size()) break;
        pos = eol + 1;
    }
}

/// Text-level checks that must run before (or instead of) a parse: duplicate
/// device names and undefined .model references, both of which the parser
/// reports as hard exceptions without lint-friendly locations.  Returns true
/// when the card list has errors that make a parse pointless.
bool text_level_checks(const std::vector<circuit::NetlistCard>& cards, std::string_view source,
                       Report& report) {
    bool fatal = false;
    std::map<std::string, const circuit::NetlistToken*> names;  // lowered name -> first token
    std::map<std::string, const circuit::NetlistToken*> models;
    // First pass: .model definitions (the parser resolves them file-globally).
    for (const auto& card : cards) {
        if (card.tokens.empty()) continue;
        if (lower(card.tokens[0].text) == ".model" && card.tokens.size() >= 2) {
            models.emplace(lower(card.tokens[1].text), &card.tokens[1]);
        }
    }
    for (const auto& card : cards) {
        if (card.tokens.empty()) continue;
        const circuit::NetlistToken& head = card.tokens[0];
        if (head.text.empty() || head.text[0] == '.') continue;
        const std::string name = lower(head.text);
        const auto [it, inserted] = names.emplace(name, &head);
        if (!inserted) {
            fatal = true;
            report.add("erc-duplicate-name", Severity::kError,
                       {std::string(source), head.line, head.column},
                       "duplicate device name '" + head.text + "' (first defined at line " +
                           std::to_string(it->second->line) + ")",
                       "rename one of the devices");
        }
        // Zero/negative R, C, L values: the device constructors reject these
        // at parse time, so catch them here with the value token's location.
        if ((name[0] == 'r' || name[0] == 'c' || name[0] == 'l') && card.tokens.size() >= 4) {
            const circuit::NetlistToken& value = card.tokens[3];
            double parsed = 0.0;
            bool numeric = true;
            try {
                parsed = circuit::parse_eng_value(value.text);
            } catch (const std::invalid_argument&) {
                numeric = false;  // the parser reports malformed values itself
            }
            if (numeric && parsed <= 0.0) {
                fatal = true;
                const char* unit = name[0] == 'r' ? "resistance" :
                                   name[0] == 'c' ? "capacitance" : "inductance";
                report.add("erc-value-zero", Severity::kError,
                           {std::string(source), value.line, value.column},
                           "device '" + head.text + "' has non-positive " + unit + " (" +
                               value.text + ")",
                           "use a small positive value instead of an ideal zero");
            }
        }
        // RON >= ROFF on a switch card: the Switch constructor rejects it, so
        // report it here under its own rule id with the card's location.
        if (name[0] == 's' && card.tokens.size() >= 4) {
            double ron = 100.0;   // the parser's defaults
            double roff = 1e9;
            for (std::size_t i = 4; i + 2 < card.tokens.size(); ++i) {
                if (card.tokens[i + 1].text != "=") continue;
                const std::string key = lower(card.tokens[i].text);
                try {
                    if (key == "ron") ron = circuit::parse_eng_value(card.tokens[i + 2].text);
                    if (key == "roff") roff = circuit::parse_eng_value(card.tokens[i + 2].text);
                } catch (const std::invalid_argument&) {
                    // malformed value: the parser reports it
                }
            }
            if (ron >= roff) {
                fatal = true;
                report.add("erc-switch-ron-roff", Severity::kError,
                           {std::string(source), head.line, head.column},
                           "switch '" + head.text + "' has RON (" + std::to_string(ron) +
                               ") >= ROFF (" + std::to_string(roff) +
                               "): open and closed states are indistinguishable",
                           "swap or fix the RON/ROFF parameters");
            }
        }
        if (name[0] == 'm' && card.tokens.size() >= 5) {
            const circuit::NetlistToken& model = card.tokens[4];
            if (models.find(lower(model.text)) == models.end()) {
                fatal = true;
                report.add("erc-undefined-model", Severity::kError,
                           {std::string(source), model.line, model.column},
                           "MOSFET '" + head.text + "' references undefined model '" + model.text +
                               "'",
                           "add a '.model " + model.text + " NMOS|PMOS ...' card");
            }
        }
    }
    return fatal;
}

}  // namespace

std::size_t lint_netlist(std::string_view text, std::string_view source, Report& report,
                         const NetlistLintOptions& options) {
    const std::size_t before = report.diagnostics().size();
    collect_suppressions(text, report);

    std::vector<circuit::NetlistCard> cards;
    try {
        cards = circuit::scan_netlist(text, source);
    } catch (const circuit::NetlistError& e) {
        report.add("netlist-parse-error", Severity::kError,
                   {std::string(source), e.physical_line(), e.column()}, e.message());
        return report.diagnostics().size() - before;
    }

    const bool fatal = text_level_checks(cards, source, report);

    if (options.run_erc && !fatal) {
        circuit::Circuit scratch;
        circuit::NetlistOrigins origins;
        try {
            circuit::parse_netlist(scratch, text, source, &origins);
            run_erc(scratch, report, options.erc, &origins, source);
        } catch (const circuit::NetlistError& e) {
            report.add("netlist-parse-error", Severity::kError,
                       {std::string(source), e.physical_line(), e.column()}, e.message());
        }
    }

    return report.diagnostics().size() - before;
}

}  // namespace rfabm::lint
