#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace rfabm::circuit {

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
    if (points.empty()) throw std::invalid_argument("PWL waveform requires points");
    std::sort(points.begin(), points.end());
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].first == points[i - 1].first) {
            throw std::invalid_argument("PWL waveform has duplicate time");
        }
    }
    return Waveform(PwlWave{std::move(points)});
}

namespace {

double eval_pulse(const PulseWave& p, double t) {
    if (t < p.delay) return p.v1;
    double local = t - p.delay;
    if (p.period > 0.0) local = std::fmod(local, p.period);
    if (local < p.rise) return p.v1 + (p.v2 - p.v1) * (local / p.rise);
    local -= p.rise;
    if (local < p.width) return p.v2;
    local -= p.width;
    if (local < p.fall) return p.v2 + (p.v1 - p.v2) * (local / p.fall);
    return p.v1;
}

double eval_pwl(const PwlWave& w, double t) {
    const auto& pts = w.points;
    if (t <= pts.front().first) return pts.front().second;
    if (t >= pts.back().first) return pts.back().second;
    const auto it = std::upper_bound(pts.begin(), pts.end(), t,
                                     [](double v, const auto& p) { return v < p.first; });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double f = (t - lo.first) / (hi.first - lo.first);
    return lo.second + f * (hi.second - lo.second);
}

}  // namespace

double Waveform::value(double t) const {
    return std::visit(
        [t](const auto& w) -> double {
            using T = std::decay_t<decltype(w)>;
            if constexpr (std::is_same_v<T, DcWave>) {
                return w.level;
            } else if constexpr (std::is_same_v<T, SineWave>) {
                if (t < w.delay) return w.offset;
                return w.offset +
                       w.amplitude * std::sin(2.0 * M_PI * w.frequency * (t - w.delay) + w.phase);
            } else if constexpr (std::is_same_v<T, PulseWave>) {
                return eval_pulse(w, t);
            } else {
                return eval_pwl(w, t);
            }
        },
        storage_);
}

double Waveform::fundamental_hz() const {
    if (const auto* s = std::get_if<SineWave>(&storage_)) return s->frequency;
    if (const auto* p = std::get_if<PulseWave>(&storage_)) {
        return p->period > 0.0 ? 1.0 / p->period : 0.0;
    }
    return 0.0;
}

}  // namespace rfabm::circuit
