#include "circuit/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "circuit/devices/controlled.hpp"
#include "circuit/devices/diode.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"

namespace rfabm::circuit {

namespace {

std::string lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

/// Split a card into tokens; parentheses become their own tokens so
/// "SIN(0 1 1e9)" tokenizes as SIN ( 0 1 1e9 ).
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::string current;
    auto flush = [&] {
        if (!current.empty()) {
            tokens.push_back(current);
            current.clear();
        }
    };
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            flush();
        } else if (c == '(' || c == ')' || c == '=') {
            flush();
            tokens.push_back(std::string(1, c));
        } else {
            current += c;
        }
    }
    flush();
    return tokens;
}

/// name=value pairs from the tail of a token list (handles "K = 1" spacing).
std::map<std::string, std::string> parse_pairs(const std::vector<std::string>& tokens,
                                               std::size_t start, std::size_t line,
                                               std::vector<std::string>* loose = nullptr) {
    std::map<std::string, std::string> pairs;
    for (std::size_t i = start; i < tokens.size();) {
        if (i + 1 < tokens.size() && tokens[i + 1] == "=") {
            if (i + 2 >= tokens.size()) throw NetlistError(line, "dangling '=' after " + tokens[i]);
            pairs[lower(tokens[i])] = tokens[i + 2];
            i += 3;
        } else {
            if (loose != nullptr) {
                loose->push_back(tokens[i]);
            } else {
                throw NetlistError(line, "unexpected token '" + tokens[i] + "'");
            }
            ++i;
        }
    }
    return pairs;
}

struct MosModel {
    MosfetParams params;
};

}  // namespace

double parse_eng_value(std::string_view token) {
    const std::string s = lower(token);
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(s, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument("not a number: " + std::string(token));
    }
    const std::string suffix = s.substr(pos);
    if (suffix.empty()) return value;
    // "meg" must be checked before "m".
    if (suffix.rfind("meg", 0) == 0) return value * 1e6;
    switch (suffix[0]) {
        case 'f': return value * 1e-15;
        case 'p': return value * 1e-12;
        case 'n': return value * 1e-9;
        case 'u': return value * 1e-6;
        case 'm': return value * 1e-3;
        case 'k': return value * 1e3;
        case 'g': return value * 1e9;
        case 't': return value * 1e12;
        default: break;
    }
    throw std::invalid_argument("bad value suffix: " + std::string(token));
}

std::size_t parse_netlist(Circuit& circuit, std::string_view text) {
    // --- gather logical lines (handle '+' continuation, strip comments) -----
    struct Card {
        std::string text;
        std::size_t line;
    };
    std::vector<Card> cards;
    {
        std::istringstream stream{std::string(text)};
        std::string raw;
        std::size_t lineno = 0;
        while (std::getline(stream, raw)) {
            ++lineno;
            const std::size_t comment = raw.find_first_of("*;");
            if (comment != std::string::npos) raw.erase(comment);
            // Trim.
            const auto begin = raw.find_first_not_of(" \t\r");
            if (begin == std::string::npos) continue;
            const auto end = raw.find_last_not_of(" \t\r");
            std::string body = raw.substr(begin, end - begin + 1);
            if (body.empty()) continue;
            if (body[0] == '+') {
                if (cards.empty()) throw NetlistError(lineno, "continuation without a card");
                cards.back().text += " " + body.substr(1);
            } else {
                cards.push_back({body, lineno});
            }
        }
    }

    auto value_of = [](const std::string& tok, std::size_t line) {
        try {
            return parse_eng_value(tok);
        } catch (const std::invalid_argument& e) {
            throw NetlistError(line, e.what());
        }
    };

    // --- first pass: .model cards -------------------------------------------
    std::map<std::string, MosModel> models;
    for (const Card& card : cards) {
        auto tokens = tokenize(card.text);
        if (tokens.empty() || lower(tokens[0]) != ".model") continue;
        if (tokens.size() < 3) throw NetlistError(card.line, ".model needs a name and a type");
        MosModel model;
        const std::string type = lower(tokens[2]);
        if (type == "nmos") {
            model.params.type = MosType::kNmos;
        } else if (type == "pmos") {
            model.params.type = MosType::kPmos;
        } else {
            throw NetlistError(card.line, "unknown model type: " + tokens[2]);
        }
        const auto pairs = parse_pairs(tokens, 3, card.line);
        for (const auto& [key, val] : pairs) {
            const double v = value_of(val, card.line);
            if (key == "kp") {
                model.params.kp = v;
            } else if (key == "vto" || key == "vt0") {
                model.params.vt0 = v;
            } else if (key == "lambda") {
                model.params.lambda = v;
            } else if (key == "w") {
                model.params.w = v;
            } else if (key == "l") {
                model.params.l = v;
            } else {
                throw NetlistError(card.line, "unknown .model parameter: " + key);
            }
        }
        models[lower(tokens[1])] = model;
    }

    // --- second pass: devices -----------------------------------------------
    std::size_t created = 0;
    for (const Card& card : cards) {
        auto tokens = tokenize(card.text);
        if (tokens.empty()) continue;
        const std::string head = lower(tokens[0]);
        if (head == ".model") continue;
        if (head == ".end") break;
        if (head[0] == '.') throw NetlistError(card.line, "unknown directive: " + tokens[0]);

        const std::string& name = tokens[0];
        auto node = [&](std::size_t idx) -> NodeId {
            if (idx >= tokens.size()) throw NetlistError(card.line, "missing node on " + name);
            return circuit.node(lower(tokens[idx]));
        };
        auto require = [&](std::size_t idx, const char* what) -> const std::string& {
            if (idx >= tokens.size()) {
                throw NetlistError(card.line, std::string("missing ") + what + " on " + name);
            }
            return tokens[idx];
        };

        switch (std::tolower(static_cast<unsigned char>(head[0]))) {
            case 'r': {
                const double v = value_of(require(3, "value"), card.line);
                const bool offchip = tokens.size() > 4 && lower(tokens[4]) == "offchip";
                circuit.add<Resistor>(name, node(1), node(2), v,
                                      offchip ? Placement::kOffChip : Placement::kOnDie);
                break;
            }
            case 'c': {
                const double v = value_of(require(3, "value"), card.line);
                const bool offchip = tokens.size() > 4 && lower(tokens[4]) == "offchip";
                circuit.add<Capacitor>(name, node(1), node(2), v,
                                       offchip ? Placement::kOffChip : Placement::kOnDie);
                break;
            }
            case 'l': {
                circuit.add<Inductor>(name, node(1), node(2),
                                      value_of(require(3, "value"), card.line));
                break;
            }
            case 'v':
            case 'i': {
                const NodeId p = node(1);
                const NodeId n = node(2);
                const std::string kind = lower(require(3, "source kind"));
                Waveform wave;
                std::size_t next = 4;
                auto paren_args = [&](std::size_t first) {
                    std::vector<double> args;
                    std::size_t i = first;
                    if (i >= tokens.size() || tokens[i] != "(") {
                        throw NetlistError(card.line, "expected '(' after " + kind);
                    }
                    for (++i; i < tokens.size() && tokens[i] != ")"; ++i) {
                        args.push_back(value_of(tokens[i], card.line));
                    }
                    if (i >= tokens.size()) throw NetlistError(card.line, "missing ')'");
                    next = i + 1;
                    return args;
                };
                if (kind == "dc") {
                    wave = Waveform::dc(value_of(require(4, "DC value"), card.line));
                    next = 5;
                } else if (kind == "sin") {
                    const auto a = paren_args(4);
                    if (a.size() < 3) throw NetlistError(card.line, "SIN needs >= 3 args");
                    wave = Waveform::sine(a[0], a[1], a[2], a.size() > 3 ? a[3] : 0.0,
                                          a.size() > 4 ? a[4] : 0.0);
                } else if (kind == "pulse") {
                    const auto a = paren_args(4);
                    if (a.size() < 7) throw NetlistError(card.line, "PULSE needs 7 args");
                    PulseWave pw;
                    pw.v1 = a[0];
                    pw.v2 = a[1];
                    pw.delay = a[2];
                    pw.rise = a[3];
                    pw.fall = a[4];
                    pw.width = a[5];
                    pw.period = a[6];
                    wave = Waveform::pulse(pw);
                } else {
                    throw NetlistError(card.line, "unknown source kind: " + kind);
                }
                double ac = 0.0;
                if (next < tokens.size() && lower(tokens[next]) == "ac") {
                    ac = value_of(require(next + 1, "AC magnitude"), card.line);
                }
                if (std::tolower(static_cast<unsigned char>(head[0])) == 'v') {
                    auto& src = circuit.add<VSource>(name, p, n, wave);
                    src.set_ac(ac);
                } else {
                    auto& src = circuit.add<ISource>(name, p, n, wave);
                    src.set_ac(ac);
                }
                break;
            }
            case 'd': {
                DiodeParams params;
                const auto pairs = parse_pairs(tokens, 3, card.line);
                for (const auto& [key, val] : pairs) {
                    if (key == "is") {
                        params.is = value_of(val, card.line);
                    } else if (key == "n") {
                        params.n = value_of(val, card.line);
                    } else {
                        throw NetlistError(card.line, "unknown diode parameter: " + key);
                    }
                }
                circuit.add<Diode>(name, node(1), node(2), params);
                break;
            }
            case 'm': {
                const std::string model_name = lower(require(4, "model name"));
                const auto it = models.find(model_name);
                if (it == models.end()) {
                    throw NetlistError(card.line, "undefined model: " + model_name);
                }
                MosfetParams params = it->second.params;
                const auto pairs = parse_pairs(tokens, 5, card.line);
                for (const auto& [key, val] : pairs) {
                    if (key == "w") {
                        params.w = value_of(val, card.line);
                    } else if (key == "l") {
                        params.l = value_of(val, card.line);
                    } else {
                        throw NetlistError(card.line, "unknown MOS parameter: " + key);
                    }
                }
                circuit.add<Mosfet>(name, node(1), node(2), node(3), params);
                break;
            }
            case 's': {
                const std::string state = lower(require(3, "ON/OFF"));
                if (state != "on" && state != "off") {
                    throw NetlistError(card.line, "switch state must be ON or OFF");
                }
                double ron = 100.0;
                double roff = 1e9;
                const auto pairs = parse_pairs(tokens, 4, card.line);
                for (const auto& [key, val] : pairs) {
                    if (key == "ron") {
                        ron = value_of(val, card.line);
                    } else if (key == "roff") {
                        roff = value_of(val, card.line);
                    } else {
                        throw NetlistError(card.line, "unknown switch parameter: " + key);
                    }
                }
                auto& sw = circuit.add<Switch>(name, node(1), node(2), ron, roff);
                sw.set_closed(state == "on");
                break;
            }
            case 'e': {
                circuit.add<Vcvs>(name, node(1), node(2), node(3), node(4),
                                  value_of(require(5, "gain"), card.line));
                break;
            }
            case 'g': {
                circuit.add<Vccs>(name, node(1), node(2), node(3), node(4),
                                  value_of(require(5, "gm"), card.line));
                break;
            }
            default:
                throw NetlistError(card.line, "unknown device type: " + name);
        }
        ++created;
    }
    return created;
}

}  // namespace rfabm::circuit
