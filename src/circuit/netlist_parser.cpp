#include "circuit/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "circuit/devices/controlled.hpp"
#include "circuit/devices/diode.hpp"
#include "circuit/devices/mosfet.hpp"
#include "circuit/devices/passive.hpp"
#include "circuit/devices/sources.hpp"
#include "circuit/devices/switch_device.hpp"

namespace rfabm::circuit {

namespace {

std::string lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

/// Tokenize one physical-line fragment of a card; parentheses and '=' become
/// their own tokens so "SIN(0 1 1e9)" tokenizes as SIN ( 0 1 1e9 ).
/// @p line / @p first_column locate the fragment in the raw input.
void tokenize_fragment(std::string_view fragment, std::size_t line, std::size_t first_column,
                       std::vector<NetlistToken>* tokens) {
    std::string current;
    std::size_t current_col = 0;
    auto flush = [&] {
        if (!current.empty()) {
            tokens->push_back({current, line, current_col});
            current.clear();
        }
    };
    for (std::size_t i = 0; i < fragment.size(); ++i) {
        const char c = fragment[i];
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            flush();
        } else if (c == '(' || c == ')' || c == '=') {
            flush();
            tokens->push_back({std::string(1, c), line, first_column + i});
        } else {
            if (current.empty()) current_col = first_column + i;
            current += c;
        }
    }
    flush();
}

/// Context for error reporting while parsing one card.
struct CardContext {
    std::string source;
    const NetlistCard* card = nullptr;

    /// Throw for token @p index (or the card as a whole when out of range).
    [[noreturn]] void fail(std::size_t index, const std::string& message) const {
        std::size_t col = 0;
        std::size_t phys = card->line;
        if (index < card->tokens.size()) {
            col = card->tokens[index].column;
            phys = card->tokens[index].line;
        }
        throw NetlistError(source, card->line, col, message, phys);
    }
};

/// name=value pairs from the tail of a token list (handles "K = 1" spacing).
std::map<std::string, std::string> parse_pairs(const std::vector<NetlistToken>& tokens,
                                               std::size_t start, const CardContext& ctx,
                                               std::vector<std::string>* loose = nullptr) {
    std::map<std::string, std::string> pairs;
    for (std::size_t i = start; i < tokens.size();) {
        if (i + 1 < tokens.size() && tokens[i + 1].text == "=") {
            if (i + 2 >= tokens.size()) ctx.fail(i, "dangling '=' after " + tokens[i].text);
            pairs[lower(tokens[i].text)] = tokens[i + 2].text;
            i += 3;
        } else {
            if (loose != nullptr) {
                loose->push_back(tokens[i].text);
            } else {
                ctx.fail(i, "unexpected token '" + tokens[i].text + "'");
            }
            ++i;
        }
    }
    return pairs;
}

struct MosModel {
    MosfetParams params;
};

}  // namespace

double parse_eng_value(std::string_view token) {
    const std::string s = lower(token);
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(s, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument("not a number: " + std::string(token));
    }
    const std::string suffix = s.substr(pos);
    if (suffix.empty()) return value;
    // "meg" must be checked before "m".
    if (suffix.rfind("meg", 0) == 0) return value * 1e6;
    switch (suffix[0]) {
        case 'f': return value * 1e-15;
        case 'p': return value * 1e-12;
        case 'n': return value * 1e-9;
        case 'u': return value * 1e-6;
        case 'm': return value * 1e-3;
        case 'k': return value * 1e3;
        case 'g': return value * 1e9;
        case 't': return value * 1e12;
        default: break;
    }
    throw std::invalid_argument("bad value suffix: " + std::string(token));
}

std::vector<NetlistCard> scan_netlist(std::string_view text, std::string_view source_name) {
    const std::string source(source_name);
    std::vector<NetlistCard> cards;
    std::istringstream stream{std::string(text)};
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(stream, raw)) {
        ++lineno;
        const std::size_t comment = raw.find_first_of("*;");
        if (comment != std::string::npos) raw.erase(comment);
        const auto begin = raw.find_first_not_of(" \t\r");
        if (begin == std::string::npos) continue;
        const auto end = raw.find_last_not_of(" \t\r");
        const std::string body = raw.substr(begin, end - begin + 1);
        if (body.empty()) continue;
        if (body[0] == '+') {
            if (cards.empty()) {
                throw NetlistError(source, lineno, begin + 1, "continuation without a card");
            }
            // Tokens on a continuation line keep their own physical position:
            // the content starts one column after the '+'.
            tokenize_fragment(body.substr(1), lineno, begin + 2, &cards.back().tokens);
        } else {
            NetlistCard card;
            card.line = lineno;
            tokenize_fragment(body, lineno, begin + 1, &card.tokens);
            cards.push_back(std::move(card));
        }
    }
    return cards;
}

std::size_t parse_netlist(Circuit& circuit, std::string_view text, std::string_view source_name,
                          NetlistOrigins* origins) {
    const std::string source(source_name);
    const std::vector<NetlistCard> cards = scan_netlist(text, source_name);

    // --- first pass: .model cards -------------------------------------------
    std::map<std::string, MosModel> models;
    for (const NetlistCard& card : cards) {
        const auto& tokens = card.tokens;
        if (tokens.empty() || lower(tokens[0].text) != ".model") continue;
        CardContext ctx{source, &card};
        auto value_of = [&](const std::string& tok, std::size_t idx) {
            try {
                return parse_eng_value(tok);
            } catch (const std::invalid_argument& e) {
                ctx.fail(idx, e.what());
            }
        };
        if (tokens.size() < 3) ctx.fail(0, ".model needs a name and a type");
        MosModel model;
        const std::string type = lower(tokens[2].text);
        if (type == "nmos") {
            model.params.type = MosType::kNmos;
        } else if (type == "pmos") {
            model.params.type = MosType::kPmos;
        } else {
            ctx.fail(2, "unknown model type: " + tokens[2].text);
        }
        const auto pairs = parse_pairs(tokens, 3, ctx);
        for (const auto& [key, val] : pairs) {
            const double v = value_of(val, 0);
            if (key == "kp") {
                model.params.kp = v;
            } else if (key == "vto" || key == "vt0") {
                model.params.vt0 = v;
            } else if (key == "lambda") {
                model.params.lambda = v;
            } else if (key == "w") {
                model.params.w = v;
            } else if (key == "l") {
                model.params.l = v;
            } else {
                ctx.fail(0, "unknown .model parameter: " + key);
            }
        }
        models[lower(tokens[1].text)] = model;
    }

    // --- second pass: devices -----------------------------------------------
    std::size_t created = 0;
    for (const NetlistCard& card : cards) {
        const auto& tokens = card.tokens;
        if (tokens.empty()) continue;
        CardContext ctx{source, &card};
        const std::string head = lower(tokens[0].text);
        if (head == ".model") continue;
        if (head == ".end") break;
        if (head[0] == '.') ctx.fail(0, "unknown directive: " + tokens[0].text);

        const std::string& name = tokens[0].text;
        auto value_of = [&](const std::string& tok, std::size_t idx) {
            try {
                return parse_eng_value(tok);
            } catch (const std::invalid_argument& e) {
                ctx.fail(idx, e.what());
            }
        };
        auto node = [&](std::size_t idx) -> NodeId {
            if (idx >= tokens.size()) ctx.fail(0, "missing node on " + name);
            return circuit.node(lower(tokens[idx].text));
        };
        auto require = [&](std::size_t idx, const char* what) -> const std::string& {
            if (idx >= tokens.size()) {
                ctx.fail(0, std::string("missing ") + what + " on " + name);
            }
            return tokens[idx].text;
        };

        try {
        switch (std::tolower(static_cast<unsigned char>(head[0]))) {
            case 'r': {
                const double v = value_of(require(3, "value"), 3);
                const bool offchip = tokens.size() > 4 && lower(tokens[4].text) == "offchip";
                circuit.add<Resistor>(name, node(1), node(2), v,
                                      offchip ? Placement::kOffChip : Placement::kOnDie);
                break;
            }
            case 'c': {
                const double v = value_of(require(3, "value"), 3);
                const bool offchip = tokens.size() > 4 && lower(tokens[4].text) == "offchip";
                circuit.add<Capacitor>(name, node(1), node(2), v,
                                       offchip ? Placement::kOffChip : Placement::kOnDie);
                break;
            }
            case 'l': {
                circuit.add<Inductor>(name, node(1), node(2),
                                      value_of(require(3, "value"), 3));
                break;
            }
            case 'v':
            case 'i': {
                const NodeId p = node(1);
                const NodeId n = node(2);
                const std::string kind = lower(require(3, "source kind"));
                Waveform wave;
                std::size_t next = 4;
                auto paren_args = [&](std::size_t first) {
                    std::vector<double> args;
                    std::size_t i = first;
                    if (i >= tokens.size() || tokens[i].text != "(") {
                        ctx.fail(first < tokens.size() ? first : 3,
                                 "expected '(' after " + kind);
                    }
                    for (++i; i < tokens.size() && tokens[i].text != ")"; ++i) {
                        args.push_back(value_of(tokens[i].text, i));
                    }
                    if (i >= tokens.size()) ctx.fail(first, "missing ')'");
                    next = i + 1;
                    return args;
                };
                if (kind == "dc") {
                    wave = Waveform::dc(value_of(require(4, "DC value"), 4));
                    next = 5;
                } else if (kind == "sin") {
                    const auto a = paren_args(4);
                    if (a.size() < 3) ctx.fail(3, "SIN needs >= 3 args");
                    wave = Waveform::sine(a[0], a[1], a[2], a.size() > 3 ? a[3] : 0.0,
                                          a.size() > 4 ? a[4] : 0.0);
                } else if (kind == "pulse") {
                    const auto a = paren_args(4);
                    if (a.size() < 7) ctx.fail(3, "PULSE needs 7 args");
                    PulseWave pw;
                    pw.v1 = a[0];
                    pw.v2 = a[1];
                    pw.delay = a[2];
                    pw.rise = a[3];
                    pw.fall = a[4];
                    pw.width = a[5];
                    pw.period = a[6];
                    wave = Waveform::pulse(pw);
                } else {
                    ctx.fail(3, "unknown source kind: " + kind);
                }
                double ac = 0.0;
                if (next < tokens.size() && lower(tokens[next].text) == "ac") {
                    ac = value_of(require(next + 1, "AC magnitude"), next + 1);
                }
                if (std::tolower(static_cast<unsigned char>(head[0])) == 'v') {
                    auto& src = circuit.add<VSource>(name, p, n, wave);
                    src.set_ac(ac);
                } else {
                    auto& src = circuit.add<ISource>(name, p, n, wave);
                    src.set_ac(ac);
                }
                break;
            }
            case 'd': {
                DiodeParams params;
                const auto pairs = parse_pairs(tokens, 3, ctx);
                for (const auto& [key, val] : pairs) {
                    if (key == "is") {
                        params.is = value_of(val, 0);
                    } else if (key == "n") {
                        params.n = value_of(val, 0);
                    } else {
                        ctx.fail(0, "unknown diode parameter: " + key);
                    }
                }
                circuit.add<Diode>(name, node(1), node(2), params);
                break;
            }
            case 'm': {
                const std::string model_name = lower(require(4, "model name"));
                const auto it = models.find(model_name);
                if (it == models.end()) {
                    ctx.fail(4, "undefined model: " + model_name);
                }
                MosfetParams params = it->second.params;
                const auto pairs = parse_pairs(tokens, 5, ctx);
                for (const auto& [key, val] : pairs) {
                    if (key == "w") {
                        params.w = value_of(val, 0);
                    } else if (key == "l") {
                        params.l = value_of(val, 0);
                    } else {
                        ctx.fail(0, "unknown MOS parameter: " + key);
                    }
                }
                circuit.add<Mosfet>(name, node(1), node(2), node(3), params);
                break;
            }
            case 's': {
                const std::string state = lower(require(3, "ON/OFF"));
                if (state != "on" && state != "off") {
                    ctx.fail(3, "switch state must be ON or OFF");
                }
                double ron = 100.0;
                double roff = 1e9;
                const auto pairs = parse_pairs(tokens, 4, ctx);
                for (const auto& [key, val] : pairs) {
                    if (key == "ron") {
                        ron = value_of(val, 0);
                    } else if (key == "roff") {
                        roff = value_of(val, 0);
                    } else {
                        ctx.fail(0, "unknown switch parameter: " + key);
                    }
                }
                auto& sw = circuit.add<Switch>(name, node(1), node(2), ron, roff);
                sw.set_closed(state == "on");
                break;
            }
            case 'e': {
                circuit.add<Vcvs>(name, node(1), node(2), node(3), node(4),
                                  value_of(require(5, "gain"), 5));
                break;
            }
            case 'g': {
                circuit.add<Vccs>(name, node(1), node(2), node(3), node(4),
                                  value_of(require(5, "gm"), 5));
                break;
            }
            default:
                ctx.fail(0, "unknown device type: " + name);
        }
        } catch (const std::invalid_argument& e) {
            // Device constructors validate their parameters (positive values,
            // unique names); surface those as located card errors.
            ctx.fail(0, e.what());
        }
        if (origins != nullptr) {
            (*origins)[name] = NetlistOrigin{tokens[0].line, tokens[0].column};
        }
        ++created;
    }
    return created;
}

}  // namespace rfabm::circuit
