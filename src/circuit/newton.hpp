// Newton-Raphson iteration shared by the DC and transient analyses.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/device.hpp"
#include "circuit/mna.hpp"
#include "circuit/solution.hpp"

namespace rfabm::circuit {

/// Convergence tolerances for Newton iteration (SPICE-style: per-unknown
/// relative + absolute test, voltages and branch currents separately).
struct NewtonOptions {
    int max_iterations = 100;
    double reltol = 1e-4;
    double vntol = 1e-6;    ///< absolute node-voltage tolerance (V)
    double abstol = 1e-9;   ///< absolute branch-current tolerance (A)
    double extra_diag_gmin = 0.0;  ///< added to every node diagonal (gmin stepping)
    /// Hard budget on Newton iterations summed across every attempt of one
    /// solve_dc() call (plain Newton + all gmin/source-stepping stages), so a
    /// pathological netlist cannot spin the stepping loops unbounded.  The
    /// budget is reported as exhausted in the structured outcome rather than
    /// looping.  <= 0 disables the cap.
    int max_total_iterations = 4000;
};

/// Result of a Newton solve attempt.
struct NewtonOutcome {
    bool converged = false;
    int iterations = 0;
    bool singular = false;  ///< LU hit a structurally/numerically singular pivot
    /// The iterate produced a NaN/Inf unknown.  Detected eagerly (the first
    /// poisoned iteration aborts the solve) so a blown-up exponential fails
    /// in one iteration instead of thrashing the whole budget; worst_unknown
    /// locates the first non-finite entry.
    bool non_finite = false;
    /// Worst per-unknown update of the final iteration: |delta| and the index
    /// of the unknown it occurred at (node order, then branches) — the seed
    /// for "which node is fighting convergence" diagnostics.
    double worst_delta = 0.0;
    std::size_t worst_unknown = 0;
};

/// Iterate the MNA system described by @p ctx (whose x pointer is managed by
/// this function) starting from @p x until convergence.  @p x is updated in
/// place with the best iterate.  @p scratch is reused across calls to avoid
/// reallocation in transient inner loops.
NewtonOutcome newton_iterate(Circuit& circuit, StampContext ctx, Solution& x,
                             const NewtonOptions& options, MnaSystem& scratch);

}  // namespace rfabm::circuit
