#include "circuit/process.hpp"

#include "rf/random.hpp"

namespace rfabm::circuit {

ProcessCorner named_corner(CornerName name, const ProcessSpread& spread) {
    ProcessCorner c;
    const double vt3 = 3.0 * spread.vt_sigma;
    const double kp3 = 3.0 * spread.kp_sigma;
    auto fast = [&](double& vt, double& kp) {
        vt = -vt3;
        kp = 1.0 + kp3;
    };
    auto slow = [&](double& vt, double& kp) {
        vt = +vt3;
        kp = 1.0 - kp3;
    };
    switch (name) {
        case CornerName::kTT:
            break;
        case CornerName::kFF:
            fast(c.nmos_vt_shift, c.nmos_kp_factor);
            fast(c.pmos_vt_shift, c.pmos_kp_factor);
            c.res_factor = 1.0 - 3.0 * spread.res_sigma;
            c.cap_factor = 1.0 - 3.0 * spread.cap_sigma;
            break;
        case CornerName::kSS:
            slow(c.nmos_vt_shift, c.nmos_kp_factor);
            slow(c.pmos_vt_shift, c.pmos_kp_factor);
            c.res_factor = 1.0 + 3.0 * spread.res_sigma;
            c.cap_factor = 1.0 + 3.0 * spread.cap_sigma;
            break;
        case CornerName::kFS:
            fast(c.nmos_vt_shift, c.nmos_kp_factor);
            slow(c.pmos_vt_shift, c.pmos_kp_factor);
            break;
        case CornerName::kSF:
            slow(c.nmos_vt_shift, c.nmos_kp_factor);
            fast(c.pmos_vt_shift, c.pmos_kp_factor);
            break;
    }
    return c;
}

ProcessCorner sample_corner(rfabm::rf::Xoshiro256& rng, const ProcessSpread& spread) {
    ProcessCorner c;
    c.nmos_vt_shift = rng.truncated_normal(0.0, spread.vt_sigma, 3.0);
    c.pmos_vt_shift = rng.truncated_normal(0.0, spread.vt_sigma, 3.0);
    c.nmos_kp_factor = 1.0 + rng.truncated_normal(0.0, spread.kp_sigma, 3.0);
    c.pmos_kp_factor = 1.0 + rng.truncated_normal(0.0, spread.kp_sigma, 3.0);
    c.res_factor = 1.0 + rng.truncated_normal(0.0, spread.res_sigma, 3.0);
    c.cap_factor = 1.0 + rng.truncated_normal(0.0, spread.cap_sigma, 3.0);
    return c;
}

}  // namespace rfabm::circuit
