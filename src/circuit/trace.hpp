// Waveform tracing: CSV export of analog probes and VCD export of digital
// signals, for inspecting the mixed-signal co-simulation in external viewers
// (gtkwave, pandas, gnuplot ...).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "circuit/mixed/digital.hpp"
#include "circuit/transient.hpp"

namespace rfabm::circuit {

/// Records named analog probes each step and writes CSV ("time,probe1,...").
class CsvTracer : public StepObserver {
  public:
    struct Probe {
        std::string name;
        NodeId node;
    };

    explicit CsvTracer(std::vector<Probe> probes, std::size_t decimation = 1);

    void on_step(double time, const Solution& x, Circuit& circuit) override;

    /// Write the recorded samples as CSV.
    void write(std::ostream& out) const;

    std::size_t num_samples() const { return time_.size(); }
    void clear();

  private:
    std::vector<Probe> probes_;
    std::size_t decimation_;
    std::size_t counter_ = 0;
    std::vector<double> time_;
    std::vector<std::vector<double>> columns_;
};

/// Records digital signals each step and writes an IEEE 1364 VCD file.
/// Timescale is 1 ps; times are rounded to that grid.
class VcdTracer : public StepObserver {
  public:
    struct Signal {
        std::string name;
        rfabm::mixed::SignalId id;
    };

    VcdTracer(const rfabm::mixed::DigitalDomain& domain, std::vector<Signal> signals);

    void on_step(double time, const Solution& x, Circuit& circuit) override;

    /// Write header + value changes.
    void write(std::ostream& out) const;

    std::size_t num_changes() const { return changes_.size(); }

  private:
    struct Change {
        std::uint64_t time_ps;
        std::size_t signal;
        bool value;
    };

    const rfabm::mixed::DigitalDomain& domain_;
    std::vector<Signal> signals_;
    std::vector<char> last_;
    bool primed_ = false;
    std::vector<Change> changes_;
};

}  // namespace rfabm::circuit
