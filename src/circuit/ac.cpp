#include "circuit/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/mna.hpp"

namespace rfabm::circuit {

std::vector<AcPoint> run_ac(Circuit& circuit, const Solution& op,
                            const std::vector<double>& freqs, NodeId probe_p, NodeId probe_n) {
    circuit.finalize();
    std::vector<AcPoint> out;
    out.reserve(freqs.size());
    ComplexMna sys;
    for (double hz : freqs) {
        const double omega = 2.0 * M_PI * hz;
        sys.reset(circuit.num_nodes(), circuit.num_branches());
        for (const auto& dev : circuit.devices()) dev->stamp_ac(sys, omega, op);
        // Keep the matrix regular for nodes that are AC-floating.
        for (NodeId n = 1; n < static_cast<NodeId>(circuit.num_nodes()); ++n) {
            sys.add_node_diagonal(n, {kGminDefault, 0.0});
        }
        std::vector<std::complex<double>> x = sys.rhs();
        lu_solve_in_place(sys.matrix(), x);
        auto value_of = [&](NodeId node) -> std::complex<double> {
            return node == kGround ? std::complex<double>{0.0, 0.0}
                                   : x[static_cast<std::size_t>(node) - 1];
        };
        out.push_back({hz, value_of(probe_p) - value_of(probe_n)});
    }
    return out;
}

std::vector<double> logspace_hz(double f_start, double f_stop, int per_decade) {
    if (f_start <= 0.0 || f_stop < f_start || per_decade <= 0) {
        throw std::invalid_argument("logspace_hz: invalid range");
    }
    std::vector<double> out;
    const double step = std::pow(10.0, 1.0 / per_decade);
    for (double f = f_start; f < f_stop * (1.0 + 1e-12); f *= step) out.push_back(f);
    if (out.empty() || out.back() < f_stop * (1.0 - 1e-9)) out.push_back(f_stop);
    return out;
}

}  // namespace rfabm::circuit
