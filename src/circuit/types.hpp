// Fundamental identifiers and constants for the MNA circuit simulator.
#pragma once

#include <cstdint>

namespace rfabm::circuit {

/// Circuit node identifier.  Node 0 is always ground; analyses solve for the
/// voltages of nodes 1..N and the currents of MNA branch equations.
using NodeId = std::int32_t;

/// The ground (reference) node.
inline constexpr NodeId kGround = 0;

/// Minimum conductance added across nonlinear junctions to keep the MNA
/// matrix nonsingular when devices are cut off.
inline constexpr double kGminDefault = 1e-12;

/// Boltzmann constant over electron charge at 300.15 K gives the thermal
/// voltage used by junction devices; computed from temperature at stamp time.
inline constexpr double kBoltzmann = 1.380649e-23;   // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C

/// Reference temperature for device parameter specifications (27 C).
inline constexpr double kNominalTemperatureK = 300.15;

/// Thermal voltage kT/q at temperature @p tK.
inline constexpr double thermal_voltage(double tK) {
    return kBoltzmann * tK / kElectronCharge;
}

/// Time-integration scheme for transient analysis.
enum class Integration {
    kBackwardEuler,  ///< L-stable, first order; used for the first step and after events.
    kTrapezoidal,    ///< Second order; default for smooth intervals.
};

}  // namespace rfabm::circuit
