// Process-variation model.
//
// The paper's measurement errors are dominated by three environmental axes:
// temperature, supply voltage and process spread.  Temperature and supply are
// operating conditions (applied per-analysis); process spread is a property of
// the fabricated die.  A ProcessCorner captures the die-level parameter shifts
// that eqs. (1) and (2) of the paper are sensitive to: MOS threshold voltage,
// transconductance factor K', sheet resistance and capacitance density.
#pragma once

#include <cstdint>

namespace rfabm::rf {
class Xoshiro256;
}

namespace rfabm::circuit {

/// Die-level process parameter shifts, applied multiplicatively/additively to
/// every device's nominal parameters.  Default-constructed == nominal (TT).
struct ProcessCorner {
    double nmos_vt_shift = 0.0;   ///< added to NMOS VT0 (volts)
    double pmos_vt_shift = 0.0;   ///< added to |PMOS VT0| (volts)
    double nmos_kp_factor = 1.0;  ///< multiplies NMOS transconductance K'
    double pmos_kp_factor = 1.0;  ///< multiplies PMOS transconductance K'
    double res_factor = 1.0;      ///< multiplies every resistor value
    double cap_factor = 1.0;      ///< multiplies every capacitor value

    /// True when every field is at its nominal value.
    bool is_nominal() const {
        return nmos_vt_shift == 0.0 && pmos_vt_shift == 0.0 && nmos_kp_factor == 1.0 &&
               pmos_kp_factor == 1.0 && res_factor == 1.0 && cap_factor == 1.0;
    }
};

/// 3-sigma spreads of a generic 0.25 um-class CMOS process; the magnitudes are
/// chosen so that the simulated corner errors land near the paper's reported
/// ~2 dB / ~0.1 GHz (see DESIGN.md section 4).
struct ProcessSpread {
    double vt_sigma = 0.015;   ///< 1-sigma VT0 shift (V); 3-sigma = 45 mV
    double kp_sigma = 0.05;    ///< 1-sigma relative K' spread; 3-sigma = 15%
    double res_sigma = 0.05;   ///< 1-sigma relative resistor spread
    double cap_sigma = 0.0333; ///< 1-sigma relative capacitor spread
};

/// Named digital-style corners for quick bracketing sweeps.
enum class CornerName : std::uint8_t { kTT, kFF, kSS, kFS, kSF };

/// Build the ProcessCorner for a named corner with the given spread
/// (evaluated at 3 sigma).  FF = fast NMOS + fast PMOS (low VT, high K'),
/// SS = slow/slow, FS = fast NMOS slow PMOS, SF = the converse.
ProcessCorner named_corner(CornerName name, const ProcessSpread& spread = {});

/// Draw a random die from the spread (Gaussian truncated at 3 sigma; NMOS and
/// PMOS thresholds drawn independently, passive spreads fully correlated
/// within the die as is typical for sheet/oxide variation).
ProcessCorner sample_corner(rfabm::rf::Xoshiro256& rng, const ProcessSpread& spread = {});

}  // namespace rfabm::circuit
