#include "circuit/dc.hpp"

#include "circuit/devices/sources.hpp"
#include "circuit/mna.hpp"

namespace rfabm::circuit {

DcResult solve_dc(Circuit& circuit, const DcOptions& options, const Solution* initial) {
    circuit.finalize();
    DcResult result;
    result.solution = initial != nullptr ? *initial
                                         : Solution(circuit.num_nodes(), circuit.num_branches());
    if (result.solution.size() != circuit.num_nodes() - 1 + circuit.num_branches()) {
        result.solution = Solution(circuit.num_nodes(), circuit.num_branches());
    }

    MnaSystem scratch;
    StampContext ctx;
    ctx.mode = AnalysisMode::kDc;
    ctx.gmin = options.gmin;

    // 1. Plain Newton.
    {
        Solution x = result.solution;
        const NewtonOutcome out = newton_iterate(circuit, ctx, x, options.newton, scratch);
        if (out.converged) {
            result.solution = std::move(x);
            result.iterations = out.iterations;
            return result;
        }
    }

    // 2. Gmin stepping: start with a heavily damped matrix and relax.
    if (options.allow_gmin_stepping) {
        Solution x(circuit.num_nodes(), circuit.num_branches());
        bool ok = true;
        NewtonOptions step_opts = options.newton;
        for (double g = 1e-2; g >= options.gmin * 0.99; g *= 0.1) {
            step_opts.extra_diag_gmin = g > options.gmin ? g : 0.0;
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, step_opts, scratch);
            if (!out.converged) {
                ok = false;
                break;
            }
        }
        if (ok) {
            // Final polish without extra gmin.
            step_opts.extra_diag_gmin = 0.0;
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, step_opts, scratch);
            if (out.converged) {
                result.solution = std::move(x);
                result.iterations = out.iterations;
                result.used_gmin_stepping = true;
                return result;
            }
        }
    }

    // 3. Source stepping: homotopy from a dead circuit to full drive.
    if (options.allow_source_stepping) {
        Solution x(circuit.num_nodes(), circuit.num_branches());
        bool ok = true;
        for (double scale : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
            ctx.source_scale = scale;
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, options.newton, scratch);
            if (!out.converged) {
                ok = false;
                break;
            }
        }
        if (ok) {
            result.solution = std::move(x);
            result.used_source_stepping = true;
            return result;
        }
    }

    throw ConvergenceError("DC operating point did not converge");
}

std::vector<double> dc_sweep(Circuit& circuit, VSource& source, const std::vector<double>& levels,
                             NodeId probe_p, NodeId probe_n, const DcOptions& options) {
    std::vector<double> out;
    out.reserve(levels.size());
    Solution warm;
    bool have_warm = false;
    for (double level : levels) {
        source.set_dc(level);
        const DcResult r = solve_dc(circuit, options, have_warm ? &warm : nullptr);
        warm = r.solution;
        have_warm = true;
        out.push_back(warm.v(probe_p) - warm.v(probe_n));
    }
    return out;
}

}  // namespace rfabm::circuit
