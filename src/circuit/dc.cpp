#include "circuit/dc.hpp"

#include <limits>
#include <sstream>

#include "circuit/devices/sources.hpp"
#include "circuit/mna.hpp"

namespace rfabm::circuit {

std::string unknown_name(const Circuit& circuit, std::size_t index) {
    const std::size_t num_node_unknowns = circuit.num_nodes() - 1;
    if (index < num_node_unknowns) {
        return "node '" + circuit.node_name(static_cast<NodeId>(index + 1)) + "'";
    }
    return "branch " + std::to_string(index - num_node_unknowns);
}

namespace {

/// Tracks the shared iteration budget across all attempts of one solve.
class IterationBudget {
  public:
    explicit IterationBudget(int max_total)
        : remaining_(max_total > 0 ? max_total : std::numeric_limits<int>::max()) {}

    /// Cap @p opts to the remaining budget; false when the budget is spent.
    bool apply(NewtonOptions& opts) const {
        if (remaining_ <= 0) return false;
        opts.max_iterations = std::min(opts.max_iterations, remaining_);
        return true;
    }

    void charge(const NewtonOutcome& out) {
        remaining_ -= out.iterations;
        total_ += out.iterations;
    }

    bool exhausted() const { return remaining_ <= 0; }
    int total() const { return total_; }

  private:
    int remaining_;
    int total_ = 0;
};

}  // namespace

std::string ConvergenceDiagnostics::to_string() const {
    std::ostringstream os;
    if (non_finite) {
        os << "solve produced a non-finite (NaN/Inf) value";
        if (!worst_unknown.empty()) os << " at " << worst_unknown;
        os << " after " << total_iterations << " Newton iterations";
        return os.str();
    }
    os << "DC operating point did not converge after " << total_iterations
       << " Newton iterations";
    if (!worst_unknown.empty()) {
        os << " (worst |delta| = " << worst_delta << " at " << worst_unknown << ")";
    }
    if (singular) os << "; matrix became singular";
    if (budget_exhausted) os << "; total-iteration budget exhausted";
    os << "; gmin stepping " << (gmin_stepping_attempted ? "attempted" : "not attempted")
       << ", source stepping " << (source_stepping_attempted ? "attempted" : "not attempted");
    return os.str();
}

DcOutcome try_solve_dc(Circuit& circuit, const DcOptions& options, const Solution* initial) {
    circuit.finalize();
    DcOutcome outcome;
    DcResult& result = outcome.result;
    result.solution = initial != nullptr ? *initial
                                         : Solution(circuit.num_nodes(), circuit.num_branches());
    if (result.solution.size() != circuit.num_nodes() - 1 + circuit.num_branches()) {
        result.solution = Solution(circuit.num_nodes(), circuit.num_branches());
    }

    MnaSystem scratch;
    StampContext ctx;
    ctx.mode = AnalysisMode::kDc;
    ctx.gmin = options.gmin;

    IterationBudget budget(options.newton.max_total_iterations);
    ConvergenceDiagnostics& diag = outcome.diagnostics;
    auto record_attempt = [&](const NewtonOutcome& out) {
        budget.charge(out);
        diag.total_iterations = budget.total();
        diag.last_attempt_iterations = out.iterations;
        diag.worst_delta = out.worst_delta;
        diag.worst_unknown = unknown_name(circuit, out.worst_unknown);
        diag.singular = diag.singular || out.singular;
        diag.non_finite = diag.non_finite || out.non_finite;
        diag.budget_exhausted = budget.exhausted();
    };

    // 1. Plain Newton.
    {
        NewtonOptions opts = options.newton;
        if (budget.apply(opts)) {
            Solution x = result.solution;
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, opts, scratch);
            record_attempt(out);
            if (out.converged) {
                result.solution = std::move(x);
                result.iterations = out.iterations;
                outcome.ok = true;
                return outcome;
            }
            // NaN/Inf is arithmetic poison, not an iteration problem: no
            // amount of gmin or source stepping can fix it, so fail fast
            // with the located diagnostics instead of burning the budget.
            if (out.non_finite) return outcome;
        }
    }

    // 2. Gmin stepping: start with a heavily damped matrix and relax.
    if (options.allow_gmin_stepping && !budget.exhausted()) {
        diag.gmin_stepping_attempted = true;
        Solution x(circuit.num_nodes(), circuit.num_branches());
        bool ok = true;
        NewtonOptions step_opts = options.newton;
        for (double g = 1e-2; g >= options.gmin * 0.99; g *= 0.1) {
            step_opts.extra_diag_gmin = g > options.gmin ? g : 0.0;
            NewtonOptions opts = step_opts;
            if (!budget.apply(opts)) {
                ok = false;
                break;
            }
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, opts, scratch);
            record_attempt(out);
            if (out.non_finite) return outcome;
            if (!out.converged) {
                ok = false;
                break;
            }
        }
        if (ok) {
            // Final polish without extra gmin.
            step_opts.extra_diag_gmin = 0.0;
            NewtonOptions opts = step_opts;
            if (budget.apply(opts)) {
                const NewtonOutcome out = newton_iterate(circuit, ctx, x, opts, scratch);
                record_attempt(out);
                if (out.converged) {
                    result.solution = std::move(x);
                    result.iterations = out.iterations;
                    result.used_gmin_stepping = true;
                    outcome.ok = true;
                    return outcome;
                }
                if (out.non_finite) return outcome;
            }
        }
    }

    // 3. Source stepping: homotopy from a dead circuit to full drive.
    if (options.allow_source_stepping && !budget.exhausted()) {
        diag.source_stepping_attempted = true;
        Solution x(circuit.num_nodes(), circuit.num_branches());
        bool ok = true;
        for (double scale : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
            ctx.source_scale = scale;
            NewtonOptions opts = options.newton;
            if (!budget.apply(opts)) {
                ok = false;
                break;
            }
            const NewtonOutcome out = newton_iterate(circuit, ctx, x, opts, scratch);
            record_attempt(out);
            if (out.non_finite) return outcome;
            if (!out.converged) {
                ok = false;
                break;
            }
        }
        if (ok) {
            result.solution = std::move(x);
            result.used_source_stepping = true;
            outcome.ok = true;
            return outcome;
        }
    }

    return outcome;
}

DcResult solve_dc(Circuit& circuit, const DcOptions& options, const Solution* initial) {
    DcOutcome outcome = try_solve_dc(circuit, options, initial);
    if (!outcome.ok) throw ConvergenceError(outcome.diagnostics);
    return std::move(outcome.result);
}

std::vector<double> dc_sweep(Circuit& circuit, VSource& source, const std::vector<double>& levels,
                             NodeId probe_p, NodeId probe_n, const DcOptions& options) {
    std::vector<double> out;
    out.reserve(levels.size());
    Solution warm;
    bool have_warm = false;
    for (double level : levels) {
        source.set_dc(level);
        const DcResult r = solve_dc(circuit, options, have_warm ? &warm : nullptr);
        warm = r.solution;
        have_warm = true;
        out.push_back(warm.v(probe_p) - warm.v(probe_n));
    }
    return out;
}

}  // namespace rfabm::circuit
