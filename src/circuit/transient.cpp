#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>

namespace rfabm::circuit {

TransientEngine::TransientEngine(Circuit& circuit, TransientOptions options)
    : circuit_(circuit), options_(options) {
    if (options_.dt <= 0.0) throw std::invalid_argument("TransientEngine: dt must be positive");
}

void TransientEngine::add_observer(StepObserver* observer) { observers_.push_back(observer); }

void TransientEngine::remove_observer(StepObserver* observer) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                     observers_.end());
}

void TransientEngine::init() {
    circuit_.finalize();
    if (options_.start_from_dc) {
        DcOptions dc_opts;
        dc_opts.newton = options_.newton;
        dc_opts.gmin = options_.gmin;
        const DcResult dc = solve_dc(circuit_, dc_opts);
        newton_iterations_ += static_cast<std::uint64_t>(dc.iterations);
        x_ = dc.solution;
    } else {
        x_ = Solution(circuit_.num_nodes(), circuit_.num_branches());
    }
    for (const auto& dev : circuit_.devices()) dev->init_state(x_);
    time_ = 0.0;
    steps_ = 0;
    first_step_done_ = false;
    initialized_ = true;
}

void TransientEngine::init_from(const Solution& initial) {
    circuit_.finalize();
    x_ = initial;
    for (const auto& dev : circuit_.devices()) dev->init_state(x_);
    time_ = 0.0;
    steps_ = 0;
    first_step_done_ = false;
    initialized_ = true;
}

void TransientEngine::advance(double dt, int depth) {
    StampContext ctx;
    ctx.mode = AnalysisMode::kTransient;
    ctx.time = time_ + dt;
    ctx.dt = dt;
    // Backward Euler for the very first step (no stored device currents yet);
    // the configured method afterwards.
    ctx.method = first_step_done_ ? options_.method : Integration::kBackwardEuler;
    ctx.gmin = options_.gmin;

    Solution candidate = x_;  // warm start from the current state
    const NewtonOutcome out = newton_iterate(circuit_, ctx, candidate, options_.newton, scratch_);
    newton_iterations_ += static_cast<std::uint64_t>(out.iterations);
    if (!out.converged) {
        if (out.non_finite) {
            // NaN/Inf is arithmetic poison, not stiffness: halving the step
            // re-runs the same blow-up, so raise a located error right away.
            ConvergenceDiagnostics diag;
            diag.non_finite = true;
            diag.total_iterations = out.iterations;
            diag.last_attempt_iterations = out.iterations;
            diag.worst_unknown = unknown_name(circuit_, out.worst_unknown);
            throw ConvergenceError(diag);
        }
        if (depth >= options_.max_step_subdivisions) {
            throw ConvergenceError("transient step did not converge at t=" +
                                   std::to_string(ctx.time));
        }
        advance(dt * 0.5, depth + 1);
        advance(dt * 0.5, depth + 1);
        return;
    }
    for (const auto& dev : circuit_.devices()) dev->accept_step(candidate, ctx);
    x_ = std::move(candidate);
    time_ = ctx.time;
    first_step_done_ = true;
    ++steps_;
    if (options_.heartbeat != nullptr) {
        options_.heartbeat->fetch_add(1, std::memory_order_relaxed);
    }
    for (StepObserver* obs : observers_) obs->on_step(time_, x_, circuit_);
}

void TransientEngine::step() {
    if (!initialized_) init();
    if (options_.cancel.stop_requested()) {
        throw SolveAborted(std::string("transient solve aborted at t=") +
                           std::to_string(time_) + ": " + options_.cancel.stop_reason());
    }
    advance(options_.dt, 0);
}

void TransientEngine::run_until(double tstop) {
    if (!initialized_) init();
    // Half-step tolerance avoids an extra step from floating-point drift.
    while (time_ < tstop - options_.dt * 0.5) step();
}

Recorder::Recorder(std::vector<NodeId> probes, std::size_t decimation)
    : probes_(std::move(probes)), decimation_(decimation == 0 ? 1 : decimation),
      channels_(probes_.size()) {}

void Recorder::on_step(double time, const Solution& x, Circuit&) {
    if (counter_++ % decimation_ != 0) return;
    time_.push_back(time);
    for (std::size_t i = 0; i < probes_.size(); ++i) channels_[i].push_back(x.v(probes_[i]));
}

void Recorder::clear() {
    counter_ = 0;
    time_.clear();
    for (auto& c : channels_) c.clear();
}

}  // namespace rfabm::circuit
