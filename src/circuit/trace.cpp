#include "circuit/trace.hpp"

#include <cmath>

namespace rfabm::circuit {

CsvTracer::CsvTracer(std::vector<Probe> probes, std::size_t decimation)
    : probes_(std::move(probes)), decimation_(decimation == 0 ? 1 : decimation),
      columns_(probes_.size()) {}

void CsvTracer::on_step(double time, const Solution& x, Circuit&) {
    if (counter_++ % decimation_ != 0) return;
    time_.push_back(time);
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        columns_[i].push_back(x.v(probes_[i].node));
    }
}

void CsvTracer::write(std::ostream& out) const {
    out << "time";
    for (const Probe& p : probes_) out << ',' << p.name;
    out << '\n';
    for (std::size_t row = 0; row < time_.size(); ++row) {
        out << time_[row];
        for (const auto& col : columns_) out << ',' << col[row];
        out << '\n';
    }
}

void CsvTracer::clear() {
    counter_ = 0;
    time_.clear();
    for (auto& c : columns_) c.clear();
}

VcdTracer::VcdTracer(const rfabm::mixed::DigitalDomain& domain, std::vector<Signal> signals)
    : domain_(domain), signals_(std::move(signals)), last_(signals_.size(), 0) {}

void VcdTracer::on_step(double time, const Solution&, Circuit&) {
    const auto t_ps = static_cast<std::uint64_t>(std::llround(time * 1e12));
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        const char now = domain_.value(signals_[i].id) ? 1 : 0;
        if (!primed_ || now != last_[i]) {
            changes_.push_back({t_ps, i, now != 0});
            last_[i] = now;
        }
    }
    primed_ = true;
}

void VcdTracer::write(std::ostream& out) const {
    out << "$timescale 1ps $end\n$scope module rfabm $end\n";
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        // VCD identifier: printable chars starting at '!'.
        out << "$var wire 1 " << static_cast<char>('!' + i) << ' ' << signals_[i].name
            << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";
    std::uint64_t current = ~0ull;
    for (const Change& c : changes_) {
        if (c.time_ps != current) {
            out << '#' << c.time_ps << '\n';
            current = c.time_ps;
        }
        out << (c.value ? '1' : '0') << static_cast<char>('!' + c.signal) << '\n';
    }
}

}  // namespace rfabm::circuit
