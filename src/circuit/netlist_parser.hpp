// SPICE-flavoured netlist parser.
//
// Builds a Circuit from text, so test fixtures, examples and user decks can
// be written as netlists instead of C++ construction code.  The grammar is a
// pragmatic subset of SPICE:
//
//   * one card per line; '*' or ';' starts a comment; '+' continues the
//     previous card; blank lines ignored; case-insensitive keywords
//   * engineering suffixes on numbers: f p n u m k meg g t (e.g. 2.2k, 10p)
//   * node names are arbitrary tokens; "0" and "gnd" are ground
//
// Supported cards (first letter selects the device type, as in SPICE):
//
//   Rname n1 n2 value [OFFCHIP]
//   Cname n1 n2 value [OFFCHIP]
//   Lname n1 n2 value
//   Vname n+ n- DC value | SIN(offset ampl freq [phase delay])
//                        | PULSE(v1 v2 delay rise fall width period)  [AC mag]
//   Iname n+ n- DC value | SIN(...)
//   Dname anode cathode [IS=..] [N=..]
//   Mname d g s modelname [W=..] [L=..]
//   Sname n1 n2 ON|OFF [RON=..] [ROFF=..]
//   Ename p n cp cn gain            (VCVS)
//   Gname p n cp cn gm              (VCCS)
//   .model name NMOS|PMOS [KP=..] [VTO=..] [LAMBDA=..] [W=..] [L=..]
//   .end                            (optional, stops parsing)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace rfabm::circuit {

/// Thrown on malformed input; carries the 1-based line number.
class NetlistError : public std::runtime_error {
  public:
    NetlistError(std::size_t line, const std::string& message)
        : std::runtime_error("netlist line " + std::to_string(line) + ": " + message),
          line_(line) {}
    std::size_t line() const { return line_; }

  private:
    std::size_t line_;
};

/// Parse @p text into @p circuit (devices are added to whatever is already
/// there).  Returns the number of devices created.
std::size_t parse_netlist(Circuit& circuit, std::string_view text);

/// Parse a single engineering-notation value ("2.2k", "10p", "1meg", "-0.5").
/// Throws std::invalid_argument on garbage.
double parse_eng_value(std::string_view token);

}  // namespace rfabm::circuit
