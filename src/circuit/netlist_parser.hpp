// SPICE-flavoured netlist parser.
//
// Builds a Circuit from text, so test fixtures, examples and user decks can
// be written as netlists instead of C++ construction code.  The grammar is a
// pragmatic subset of SPICE:
//
//   * one card per line; '*' or ';' starts a comment; '+' continues the
//     previous card; blank lines ignored; case-insensitive keywords
//   * engineering suffixes on numbers: f p n u m k meg g t (e.g. 2.2k, 10p)
//   * node names are arbitrary tokens; "0" and "gnd" are ground
//
// Supported cards (first letter selects the device type, as in SPICE):
//
//   Rname n1 n2 value [OFFCHIP]
//   Cname n1 n2 value [OFFCHIP]
//   Lname n1 n2 value
//   Vname n+ n- DC value | SIN(offset ampl freq [phase delay])
//                        | PULSE(v1 v2 delay rise fall width period)  [AC mag]
//   Iname n+ n- DC value | SIN(...)
//   Dname anode cathode [IS=..] [N=..]
//   Mname d g s modelname [W=..] [L=..]
//   Sname n1 n2 ON|OFF [RON=..] [ROFF=..]
//   Ename p n cp cn gain            (VCVS)
//   Gname p n cp cn gm              (VCCS)
//   .model name NMOS|PMOS [KP=..] [VTO=..] [LAMBDA=..] [W=..] [L=..]
//   .end                            (optional, stops parsing)
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"

namespace rfabm::circuit {

/// Thrown on malformed input; carries the source name (when given), the
/// 1-based line number of the card, the 1-based physical line the offending
/// token sits on, and the 1-based column of that token within its physical
/// line.  A column of 0 means "the card as a whole".  For '+'-continued
/// cards the card line and the physical line differ; the location prefix of
/// what() uses the physical line so editors jump to the token itself.
class NetlistError : public std::runtime_error {
  public:
    NetlistError(std::size_t line, const std::string& message)
        : NetlistError("", line, 0, message) {}
    NetlistError(std::string source, std::size_t line, std::size_t column,
                 const std::string& message, std::size_t physical_line = 0)
        : std::runtime_error(
              format(source, line, column, message, physical_line == 0 ? line : physical_line)),
          source_(std::move(source)),
          message_(message),
          line_(line),
          column_(column),
          physical_line_(physical_line == 0 ? line : physical_line) {}

    const std::string& source() const { return source_; }
    /// The bare message, without the location prefix what() carries.
    const std::string& message() const { return message_; }
    /// Line the card starts on (the line a SPICE listing attributes the card to).
    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }
    /// Line the offending token physically sits on; equals line() except for
    /// tokens on '+' continuation lines.
    std::size_t physical_line() const { return physical_line_; }

  private:
    static std::string format(const std::string& source, std::size_t line, std::size_t column,
                              const std::string& message, std::size_t physical_line) {
        std::string where = source.empty() ? "netlist line " + std::to_string(physical_line)
                                           : source + ":" + std::to_string(physical_line);
        if (column > 0) where += ":" + std::to_string(column);
        std::string out = where + ": " + message;
        if (physical_line != line) {
            out += " (in card starting at line " + std::to_string(line) + ")";
        }
        return out;
    }

    std::string source_;
    std::string message_;
    std::size_t line_;
    std::size_t column_;
    std::size_t physical_line_;
};

/// One token of a logical card with its exact physical position (continuation
/// lines resolved): @p line / @p column are 1-based and index the raw input,
/// not the joined card text.
struct NetlistToken {
    std::string text;
    std::size_t line = 0;
    std::size_t column = 0;
};

/// One logical card: comment-stripped, '+'-continuations joined, tokenized.
struct NetlistCard {
    std::vector<NetlistToken> tokens;
    std::size_t line = 0;  ///< line the card starts on
};

/// Split @p text into tokenized logical cards (the parser's front end, also
/// used by the static netlist linter).  Throws NetlistError on a '+'
/// continuation with no preceding card.
std::vector<NetlistCard> scan_netlist(std::string_view text, std::string_view source_name = "");

/// Where a device's card sits in the source (for lint diagnostics).
struct NetlistOrigin {
    std::size_t line = 0;    ///< physical line of the device name token
    std::size_t column = 0;  ///< 1-based column of the device name token
};

/// Device name -> card origin, filled by parse_netlist when requested.
using NetlistOrigins = std::map<std::string, NetlistOrigin>;

/// Parse @p text into @p circuit (devices are added to whatever is already
/// there).  Returns the number of devices created.  @p source_name (a file
/// name, typically) is prepended to error messages when non-empty.  When
/// @p origins is non-null it receives the source position of every created
/// device (keyed by device name).
std::size_t parse_netlist(Circuit& circuit, std::string_view text,
                          std::string_view source_name = "",
                          NetlistOrigins* origins = nullptr);

/// Parse a single engineering-notation value ("2.2k", "10p", "1meg", "-0.5").
/// Throws std::invalid_argument on garbage.
double parse_eng_value(std::string_view token);

}  // namespace rfabm::circuit
