// SPICE-flavoured netlist parser.
//
// Builds a Circuit from text, so test fixtures, examples and user decks can
// be written as netlists instead of C++ construction code.  The grammar is a
// pragmatic subset of SPICE:
//
//   * one card per line; '*' or ';' starts a comment; '+' continues the
//     previous card; blank lines ignored; case-insensitive keywords
//   * engineering suffixes on numbers: f p n u m k meg g t (e.g. 2.2k, 10p)
//   * node names are arbitrary tokens; "0" and "gnd" are ground
//
// Supported cards (first letter selects the device type, as in SPICE):
//
//   Rname n1 n2 value [OFFCHIP]
//   Cname n1 n2 value [OFFCHIP]
//   Lname n1 n2 value
//   Vname n+ n- DC value | SIN(offset ampl freq [phase delay])
//                        | PULSE(v1 v2 delay rise fall width period)  [AC mag]
//   Iname n+ n- DC value | SIN(...)
//   Dname anode cathode [IS=..] [N=..]
//   Mname d g s modelname [W=..] [L=..]
//   Sname n1 n2 ON|OFF [RON=..] [ROFF=..]
//   Ename p n cp cn gain            (VCVS)
//   Gname p n cp cn gm              (VCCS)
//   .model name NMOS|PMOS [KP=..] [VTO=..] [LAMBDA=..] [W=..] [L=..]
//   .end                            (optional, stops parsing)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace rfabm::circuit {

/// Thrown on malformed input; carries the source name (when given), the
/// 1-based line number and the 1-based column of the offending token.  A
/// column of 0 means "the card as a whole".  For '+'-continued cards the
/// column indexes the logical (joined) card text.
class NetlistError : public std::runtime_error {
  public:
    NetlistError(std::size_t line, const std::string& message)
        : NetlistError("", line, 0, message) {}
    NetlistError(std::string source, std::size_t line, std::size_t column,
                 const std::string& message)
        : std::runtime_error(format(source, line, column, message)),
          source_(std::move(source)),
          line_(line),
          column_(column) {}

    const std::string& source() const { return source_; }
    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    static std::string format(const std::string& source, std::size_t line, std::size_t column,
                              const std::string& message) {
        std::string where = source.empty() ? "netlist line " + std::to_string(line)
                                           : source + ":" + std::to_string(line);
        if (column > 0) where += ":" + std::to_string(column);
        return where + ": " + message;
    }

    std::string source_;
    std::size_t line_;
    std::size_t column_;
};

/// Parse @p text into @p circuit (devices are added to whatever is already
/// there).  Returns the number of devices created.  @p source_name (a file
/// name, typically) is prepended to error messages when non-empty.
std::size_t parse_netlist(Circuit& circuit, std::string_view text,
                          std::string_view source_name = "");

/// Parse a single engineering-notation value ("2.2k", "10p", "1meg", "-0.5").
/// Throws std::invalid_argument on garbage.
double parse_eng_value(std::string_view token);

}  // namespace rfabm::circuit
