// Modified-Nodal-Analysis system assembly.
//
// Devices stamp conductances, currents and branch equations into an MnaSystem
// (real, for DC/transient Newton iterations) or a ComplexMna (for AC
// small-signal analysis).  Ground rows/columns are suppressed at stamp time so
// devices never special-case node 0.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "circuit/matrix.hpp"
#include "circuit/types.hpp"

namespace rfabm::circuit {

namespace detail {

/// Shared stamping arithmetic over the element type.
template <typename T>
class MnaBase {
  public:
    MnaBase() = default;

    /// Prepare a zeroed system for @p num_nodes nodes (incl. ground) and
    /// @p num_branches branch equations.
    void reset(std::size_t num_nodes, std::size_t num_branches) {
        num_nodes_ = num_nodes;
        const std::size_t n = num_nodes - 1 + num_branches;
        if (a_.rows() != n) {
            a_.resize(n, n);
            b_.assign(n, T{});
        } else {
            a_.clear();
            std::fill(b_.begin(), b_.end(), T{});
        }
    }

    std::size_t dimension() const { return b_.size(); }

    /// Matrix row/column of a node; -1 for ground.
    std::ptrdiff_t node_index(NodeId node) const {
        return node == kGround ? -1 : static_cast<std::ptrdiff_t>(node) - 1;
    }

    /// Matrix row/column of branch @p branch.
    std::ptrdiff_t branch_index(std::size_t branch) const {
        return static_cast<std::ptrdiff_t>(num_nodes_ - 1 + branch);
    }

    /// Two-terminal conductance @p g between @p a and @p b.
    void add_conductance(NodeId a, NodeId b, T g) {
        const auto ia = node_index(a);
        const auto ib = node_index(b);
        if (ia >= 0) a_(ia, ia) += g;
        if (ib >= 0) a_(ib, ib) += g;
        if (ia >= 0 && ib >= 0) {
            a_(ia, ib) -= g;
            a_(ib, ia) -= g;
        }
    }

    /// Transconductance: current @p g * (v(cp) - v(cn)) flows from @p out_p to
    /// @p out_n (i.e. leaves out_p, enters out_n).
    void add_transconductance(NodeId out_p, NodeId out_n, NodeId cp, NodeId cn, T g) {
        const auto iop = node_index(out_p);
        const auto ion = node_index(out_n);
        const auto icp = node_index(cp);
        const auto icn = node_index(cn);
        if (iop >= 0 && icp >= 0) a_(iop, icp) += g;
        if (iop >= 0 && icn >= 0) a_(iop, icn) -= g;
        if (ion >= 0 && icp >= 0) a_(ion, icp) -= g;
        if (ion >= 0 && icn >= 0) a_(ion, icn) += g;
    }

    /// Constant current @p i flowing from node @p a to node @p b through the
    /// device (leaves a, enters b).
    void add_current(NodeId a, NodeId b, T i) {
        const auto ia = node_index(a);
        const auto ib = node_index(b);
        if (ia >= 0) b_[ia] -= i;
        if (ib >= 0) b_[ib] += i;
    }

    /// Raw diagonal add (gmin stepping).
    void add_node_diagonal(NodeId node, T g) {
        const auto i = node_index(node);
        if (i >= 0) a_(i, i) += g;
    }

    /// Branch stamping primitives -------------------------------------------

    /// KCL coupling: branch current @p sign * i(branch) leaves node @p node.
    void add_branch_to_node(NodeId node, std::size_t branch, T sign) {
        const auto in = node_index(node);
        if (in >= 0) a_(in, branch_index(branch)) += sign;
    }

    /// Branch-equation coefficient on a node voltage.
    void add_node_to_branch(std::size_t branch, NodeId node, T coeff) {
        const auto in = node_index(node);
        if (in >= 0) a_(branch_index(branch), in) += coeff;
    }

    /// Branch-equation coefficient on a branch current.
    void add_branch_to_branch(std::size_t eq_branch, std::size_t cur_branch, T coeff) {
        a_(branch_index(eq_branch), branch_index(cur_branch)) += coeff;
    }

    /// Branch-equation right-hand side.
    void add_branch_rhs(std::size_t branch, T value) {
        b_[static_cast<std::size_t>(branch_index(branch))] += value;
    }

    DenseMatrix<T>& matrix() { return a_; }
    std::vector<T>& rhs() { return b_; }
    const DenseMatrix<T>& matrix() const { return a_; }
    const std::vector<T>& rhs() const { return b_; }

  private:
    std::size_t num_nodes_ = 1;
    DenseMatrix<T> a_;
    std::vector<T> b_;
};

}  // namespace detail

/// Real MNA system used by DC and transient Newton iterations.
using MnaSystem = detail::MnaBase<double>;

/// Complex MNA system used by AC small-signal analysis.
using ComplexMna = detail::MnaBase<std::complex<double>>;

}  // namespace rfabm::circuit
