#include "circuit/circuit.hpp"

namespace rfabm::circuit {

NodeId Circuit::node(const std::string& name) {
    const auto it = node_ids_.find(name);
    if (it != node_ids_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(names_.size());
    names_.push_back(name);
    node_ids_.emplace(name, id);
    return id;
}

NodeId Circuit::make_node(const std::string& hint) {
    std::string name = "$" + hint + std::to_string(names_.size());
    while (node_ids_.contains(name)) name += "_";
    return node(name);
}

std::optional<NodeId> Circuit::find_node(const std::string& name) const {
    const auto it = node_ids_.find(name);
    if (it == node_ids_.end()) return std::nullopt;
    return it->second;
}

const std::string& Circuit::node_name(NodeId node) const {
    return names_.at(static_cast<std::size_t>(node));
}

Device* Circuit::find_device(const std::string& name) {
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : devices_[it->second].get();
}

const Device* Circuit::find_device(const std::string& name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : devices_[it->second].get();
}

void Circuit::finalize() {
    if (finalized_) return;
    std::size_t next = 0;
    for (const auto& dev : devices_) {
        dev->set_first_branch(next);
        next += dev->branch_count();
    }
    num_branches_ = next;
    finalized_ = true;
}

void Circuit::set_temperature_c(double celsius) {
    temperature_k_ = celsius + 273.15;
    for (const auto& dev : devices_) dev->set_temperature(temperature_k_);
}

double Circuit::temperature_c() const { return temperature_k_ - 273.15; }

void Circuit::set_process(const ProcessCorner& corner) {
    corner_ = corner;
    for (const auto& dev : devices_) dev->apply_process(corner_);
}

bool Circuit::has_nonlinear() const {
    for (const auto& dev : devices_) {
        if (dev->is_nonlinear()) return true;
    }
    return false;
}

}  // namespace rfabm::circuit
