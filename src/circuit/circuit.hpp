// Circuit: the netlist container.
//
// Owns devices and the node-name registry, assigns MNA branch indices, and
// propagates environment (temperature) and process-corner settings to every
// device.  Analyses (dc.hpp, transient.hpp, ac.hpp) operate on a Circuit.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/device.hpp"
#include "circuit/types.hpp"

namespace rfabm::circuit {

/// Netlist container.  Nodes are created on demand by name (or anonymously);
/// devices are created in place via add<>() and owned by the circuit.
class Circuit {
  public:
    Circuit() = default;

    /// Get or create the node with the given name.  "0" and "gnd" map to ground.
    NodeId node(const std::string& name);

    /// Create an anonymous internal node.
    NodeId make_node(const std::string& hint = "n");

    /// Look up an existing node by name.
    std::optional<NodeId> find_node(const std::string& name) const;

    /// Name of @p node ("0" for ground).
    const std::string& node_name(NodeId node) const;

    /// Number of nodes including ground.
    std::size_t num_nodes() const { return names_.size(); }

    /// Construct a device in place.  The device name must be unique.
    /// Returns a reference with the concrete type for further configuration.
    template <typename D, typename... Args>
    D& add(std::string name, Args&&... args) {
        if (index_.contains(name)) {
            throw std::invalid_argument("duplicate device name: " + name);
        }
        auto dev = std::make_unique<D>(name, std::forward<Args>(args)...);
        D& ref = *dev;
        ref.set_temperature(temperature_k_);
        ref.apply_process(corner_);
        index_.emplace(std::move(name), devices_.size());
        devices_.push_back(std::move(dev));
        finalized_ = false;
        return ref;
    }

    /// Find a device by name (nullptr if absent).
    Device* find_device(const std::string& name);
    const Device* find_device(const std::string& name) const;

    /// Typed lookup; throws std::invalid_argument if missing or wrong type.
    template <typename D>
    D& get(const std::string& name) {
        auto* d = dynamic_cast<D*>(find_device(name));
        if (d == nullptr) throw std::invalid_argument("no such device: " + name);
        return *d;
    }

    const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

    /// Assign branch indices.  Called lazily by analyses; idempotent.
    void finalize();

    /// Total MNA branch equations after finalize().
    std::size_t num_branches() const { return num_branches_; }

    /// True if finalize() is up to date.
    bool finalized() const { return finalized_; }

    /// Set the ambient temperature (Celsius) and propagate to devices.
    void set_temperature_c(double celsius);
    double temperature_c() const;

    /// Apply a process corner to all devices (idempotent: devices keep
    /// nominal parameters and re-derive effective ones).
    void set_process(const ProcessCorner& corner);
    const ProcessCorner& process() const { return corner_; }

    /// True if any device is nonlinear (analyses use this to pick iteration
    /// strategy).
    bool has_nonlinear() const;

  private:
    std::vector<std::string> names_{"0"};
    std::unordered_map<std::string, NodeId> node_ids_{{"0", kGround}, {"gnd", kGround}};
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, std::size_t> index_;
    std::size_t num_branches_ = 0;
    bool finalized_ = false;
    double temperature_k_ = kNominalTemperatureK;
    ProcessCorner corner_{};
};

}  // namespace rfabm::circuit
