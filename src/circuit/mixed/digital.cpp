#include "circuit/mixed/digital.hpp"

#include <stdexcept>

namespace rfabm::mixed {

SignalId DigitalDomain::signal(const std::string& name) {
    const auto it = names_.find(name);
    if (it != names_.end()) return it->second;
    const SignalId id = values_.size();
    names_.emplace(name, id);
    values_.push_back(0);
    previous_.push_back(0);
    return id;
}

SignalId DigitalDomain::find_signal(const std::string& name) const {
    const auto it = names_.find(name);
    if (it == names_.end()) throw std::invalid_argument("no such digital signal: " + name);
    return it->second;
}

void DigitalDomain::add_comparator(circuit::NodeId p, circuit::NodeId n, double threshold,
                                   double hysteresis, SignalId out) {
    comparators_.push_back({p, n, threshold, hysteresis, out});
}

void DigitalDomain::bind_switch(circuit::Switch& sw, SignalId id, bool invert) {
    bindings_.push_back({&sw, id, invert});
}

void DigitalDomain::on_step(double time, const circuit::Solution& x, circuit::Circuit&) {
    previous_ = values_;
    // 1. Comparators sample the fresh analog solution.
    for (const auto& c : comparators_) {
        const double v = x.v(c.p) - x.v(c.n);
        const bool was = values_[c.out] != 0;
        bool now = was;
        if (v > c.threshold + c.hysteresis) {
            now = true;
        } else if (v < c.threshold - c.hysteresis) {
            now = false;
        }
        values_[c.out] = now ? 1 : 0;
    }
    // 2. Logic evaluates.
    for (const auto& block : blocks_) block->tick(*this, time);
    // 3. Signals drive analog switches (effective next analog step).
    for (const auto& b : bindings_) {
        const bool v = values_[b.id] != 0;
        b.sw->set_closed(b.invert ? !v : v);
    }
}

void DigitalDomain::settle_bindings() {
    for (const auto& b : bindings_) {
        const bool v = values_[b.id] != 0;
        b.sw->set_closed(b.invert ? !v : v);
    }
}

DividerBlock::DividerBlock(SignalId input, SignalId output, unsigned divide)
    : input_(input), output_(output), divide_(divide) {
    if (divide < 2 || (divide & (divide - 1)) != 0) {
        throw std::invalid_argument("DividerBlock: divide must be a power of two >= 2");
    }
}

void DividerBlock::tick(DigitalDomain& domain, double) {
    if (domain.rising(input_)) count_ = (count_ + 1) % divide_;
    // High for the second half of the count so the power-on output is low
    // (no spurious edge before the first input activity).
    domain.set(output_, count_ >= divide_ / 2);
}

}  // namespace rfabm::mixed
