// Mixed-signal co-simulation: a digital domain evolved in lock-step with the
// analog transient.
//
// The paper's circuits are genuinely mixed-signal: the frequency detector's
// logic control block (LCB) sequences charge/transfer/reset switches off the
// RF zero crossings, the f/8 prescaler is a digital divider clocked by a
// comparator, and the IEEE 1149.4 switch network is driven by boundary-scan
// logic.  DigitalDomain is a TransientEngine StepObserver that, after every
// accepted analog step:
//   1. samples every registered comparator (analog -> digital, with
//      hysteresis),
//   2. ticks the logic blocks in registration order,
//   3. applies signal values to bound analog switches (taking effect on the
//      next analog step — a one-step gate delay, physically sensible).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/devices/switch_device.hpp"
#include "circuit/transient.hpp"

namespace rfabm::mixed {

/// Handle to a boolean signal inside a DigitalDomain.
using SignalId = std::size_t;

class DigitalDomain;

/// A clocked logic block; tick() runs once per accepted analog step.
class LogicBlock {
  public:
    virtual ~LogicBlock() = default;
    virtual void tick(DigitalDomain& domain, double time) = 0;
};

/// The digital half of the co-simulation.
class DigitalDomain : public circuit::StepObserver {
  public:
    DigitalDomain() = default;

    /// Get or create a named signal (initial value false).
    SignalId signal(const std::string& name);

    /// Look up an existing signal; throws std::invalid_argument if missing.
    SignalId find_signal(const std::string& name) const;

    bool value(SignalId id) const { return values_.at(id) != 0; }
    void set(SignalId id, bool v) { values_.at(id) = v ? 1 : 0; }

    /// Edge queries relative to the previous analog step.
    bool rising(SignalId id) const { return values_.at(id) != 0 && previous_.at(id) == 0; }
    bool falling(SignalId id) const { return values_.at(id) == 0 && previous_.at(id) != 0; }

    /// Register a comparator: out <- (v(p) - v(n) > threshold), with
    /// symmetric hysteresis of +/- @p hysteresis around the threshold.
    void add_comparator(circuit::NodeId p, circuit::NodeId n, double threshold,
                        double hysteresis, SignalId out);

    /// Register a logic block (domain takes ownership); returns a reference
    /// for configuration.
    template <typename B, typename... Args>
    B& add_block(Args&&... args) {
        auto block = std::make_unique<B>(std::forward<Args>(args)...);
        B& ref = *block;
        blocks_.push_back(std::move(block));
        return ref;
    }

    /// Drive @p sw from @p id (closed when the signal is true, or when false
    /// if @p invert).
    void bind_switch(circuit::Switch& sw, SignalId id, bool invert = false);

    /// StepObserver hook.
    void on_step(double time, const circuit::Solution& x, circuit::Circuit& circuit) override;

    /// Manually evaluate blocks + bindings outside a transient (e.g. to apply
    /// an initial switch configuration before init()).
    void settle_bindings();

    std::size_t num_signals() const { return values_.size(); }

  private:
    struct ComparatorEntry {
        circuit::NodeId p;
        circuit::NodeId n;
        double threshold;
        double hysteresis;
        SignalId out;
    };
    struct SwitchBinding {
        circuit::Switch* sw;
        SignalId id;
        bool invert;
    };

    std::unordered_map<std::string, SignalId> names_;
    std::vector<char> values_;
    std::vector<char> previous_;
    std::vector<ComparatorEntry> comparators_;
    std::vector<std::unique_ptr<LogicBlock>> blocks_;
    std::vector<SwitchBinding> bindings_;
};

/// Divide-by-2^k prescaler: output is a square wave at f_in / 2^k, advanced on
/// rising edges of the input signal.
class DividerBlock : public LogicBlock {
  public:
    /// @p divide must be a power of two >= 2.
    DividerBlock(SignalId input, SignalId output, unsigned divide);

    void tick(DigitalDomain& domain, double time) override;

    unsigned divide_ratio() const { return divide_; }
    /// Reset the internal edge counter (e.g. at measurement start).
    void reset() { count_ = 0; }

  private:
    SignalId input_;
    SignalId output_;
    unsigned divide_;
    unsigned count_ = 0;
};

}  // namespace rfabm::mixed
