// Steady-state measurement helpers built on TransientEngine.
//
// The RF-ABM detectors turn an RF input into a (rippled) DC level; the bench
// procedure is "apply the stimulus, wait for the output to settle, read the
// DC value".  settle_cycle_average() reproduces that: it advances the
// transient in windows of whole RF cycles, computes the time-weighted average
// of a (differential) probe over each window, and stops when consecutive
// window averages agree.
#pragma once

#include "circuit/transient.hpp"

namespace rfabm::circuit {

/// Options for settle_cycle_average().
struct SettleOptions {
    double period = 0.0;        ///< fundamental period of the stimulus (s); required
    int cycles_per_window = 8;  ///< averaging window length in periods
    double rel_tol = 2e-4;      ///< window-to-window relative agreement
    double abs_tol = 20e-6;     ///< ... plus this absolute floor (V)
    int min_windows = 3;        ///< never report before this many windows
    int max_windows = 400;      ///< give up (settled=false) after this many
    /// How many consecutive window pairs must agree before the value counts
    /// as settled.  >1 guards against slow drifts (e.g. bias-network recovery
    /// after a large drive change) masquerading as convergence.
    int consecutive = 1;
    /// Compare the current window against the one @p lookback windows back.
    /// A slow drift accumulates over the lookback span and is caught without
    /// tightening the tolerance (which would cost many extra windows on
    /// every ordinary read).
    int lookback = 1;
};

/// Result of settle_cycle_average().
struct SettleResult {
    double value = 0.0;   ///< final window average of v(p) - v(n)
    bool settled = false; ///< true if the convergence criterion was met
    double time = 0.0;    ///< engine time when measurement finished
    int windows = 0;      ///< windows consumed
};

/// Run @p engine until the window-averaged differential voltage v(p) - v(n)
/// settles.  The engine must expose an initialized or initializable state;
/// init() is called if needed.  Throws std::invalid_argument for a
/// non-positive period.
SettleResult settle_cycle_average(TransientEngine& engine, NodeId p, NodeId n,
                                  const SettleOptions& options);

/// Average of v(p) - v(n) over the next @p duration seconds (trapezoidal in
/// time over accepted steps).  Used once a waveform is known to be settled.
double window_average(TransientEngine& engine, NodeId p, NodeId n, double duration);

}  // namespace rfabm::circuit
