// Monte-Carlo process-variation driver.
//
// Reproducing the paper's "error vs. simulated ... with/without process
// variation" series means re-running a measurement over many virtual dies.
// run_monte_carlo() samples dies deterministically from a seed and hands each
// corner to a caller-supplied measurement closure.
#pragma once

#include <functional>
#include <vector>

#include "circuit/process.hpp"
#include "rf/random.hpp"

namespace rfabm::circuit {

/// One Monte-Carlo sample: the die and the measurement value it produced.
struct MonteCarloSample {
    ProcessCorner corner;
    double value = 0.0;
};

/// Draw the whole die population up front (values zeroed).  Sampling every
/// corner before any measurement runs is what makes serial and parallel
/// campaigns draw identical populations for a given seed: the RNG sequence
/// depends only on the seed and trial count, never on how (or in what order)
/// the measurements are later scheduled.
inline std::vector<MonteCarloSample> presample_dies(std::size_t trials, std::uint64_t seed,
                                                    const ProcessSpread& spread = {}) {
    rfabm::rf::Xoshiro256 rng(seed);
    std::vector<MonteCarloSample> samples;
    samples.reserve(trials);
    for (std::size_t i = 0; i < trials; ++i) {
        MonteCarloSample s;
        s.corner = sample_corner(rng, spread);
        samples.push_back(s);
    }
    return samples;
}

/// Run @p trials measurements, one per sampled die.  The closure receives the
/// corner and returns the measured quantity (e.g. power error in dB).
/// Deterministic for a given seed/spread/trials.  The population is fully
/// pre-sampled before the first measurement (see presample_dies); the
/// parallel twin lives in exec/montecarlo.hpp and produces bit-identical
/// results.
inline std::vector<MonteCarloSample> run_monte_carlo(
    std::size_t trials, std::uint64_t seed, const ProcessSpread& spread,
    const std::function<double(const ProcessCorner&)>& measure) {
    std::vector<MonteCarloSample> samples = presample_dies(trials, seed, spread);
    for (MonteCarloSample& s : samples) s.value = measure(s.corner);
    return samples;
}

/// The five bracketing named corners, nominal first.  Corner sweeps with
/// these five dies bound the Monte-Carlo population at far lower cost.
inline std::vector<ProcessCorner> bracketing_corners(const ProcessSpread& spread = {}) {
    return {named_corner(CornerName::kTT, spread), named_corner(CornerName::kFF, spread),
            named_corner(CornerName::kSS, spread), named_corner(CornerName::kFS, spread),
            named_corner(CornerName::kSF, spread)};
}

}  // namespace rfabm::circuit
