#include "circuit/device.hpp"

namespace rfabm::circuit {

void Device::stamp_ac(ComplexMna& sys, double omega, const Solution& op) {
    (void)sys;
    (void)omega;
    (void)op;
}

void Device::init_state(const Solution& op) { (void)op; }

void Device::accept_step(const Solution& x, const StampContext& ctx) {
    (void)x;
    (void)ctx;
}

void Device::set_temperature(double temperature_k) { (void)temperature_k; }

void Device::apply_process(const ProcessCorner& corner) { (void)corner; }

}  // namespace rfabm::circuit
