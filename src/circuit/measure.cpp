#include "circuit/measure.hpp"

#include <cmath>
#include <stdexcept>

namespace rfabm::circuit {

namespace {

/// Observer accumulating the time integral of a differential probe.
class IntegratingObserver : public StepObserver {
  public:
    IntegratingObserver(NodeId p, NodeId n) : p_(p), n_(n) {}

    void prime(double time, const Solution& x) {
        last_time_ = time;
        last_value_ = x.v(p_) - x.v(n_);
        integral_ = 0.0;
        duration_ = 0.0;
    }

    void on_step(double time, const Solution& x, Circuit&) override {
        const double value = x.v(p_) - x.v(n_);
        const double dt = time - last_time_;
        integral_ += 0.5 * (value + last_value_) * dt;
        duration_ += dt;
        last_time_ = time;
        last_value_ = value;
    }

    double average() const { return duration_ > 0.0 ? integral_ / duration_ : last_value_; }

  private:
    NodeId p_;
    NodeId n_;
    double last_time_ = 0.0;
    double last_value_ = 0.0;
    double integral_ = 0.0;
    double duration_ = 0.0;
};

}  // namespace

SettleResult settle_cycle_average(TransientEngine& engine, NodeId p, NodeId n,
                                  const SettleOptions& options) {
    if (options.period <= 0.0) {
        throw std::invalid_argument("settle_cycle_average: period must be positive");
    }
    if (!engine.initialized()) engine.init();

    IntegratingObserver integrator(p, n);
    engine.add_observer(&integrator);

    SettleResult result;
    const double window = options.period * options.cycles_per_window;
    const int lookback = std::max(options.lookback, 1);
    std::vector<double> history;  // window averages, oldest first
    int agree_streak = 0;
    for (int w = 0; w < options.max_windows; ++w) {
        integrator.prime(engine.time(), engine.solution());
        engine.run_for(window);
        const double avg = integrator.average();
        result.windows = w + 1;
        result.value = avg;
        history.push_back(avg);
        const bool comparable = static_cast<int>(history.size()) > lookback &&
                                result.windows >= options.min_windows;
        if (comparable) {
            const double reference = history[history.size() - 1 - lookback];
            const double delta = std::fabs(avg - reference);
            if (delta <= options.abs_tol + options.rel_tol * std::fabs(avg)) {
                if (++agree_streak >= options.consecutive) {
                    result.settled = true;
                    break;
                }
            } else {
                agree_streak = 0;
            }
        }
    }
    result.time = engine.time();
    engine.remove_observer(&integrator);
    return result;
}

double window_average(TransientEngine& engine, NodeId p, NodeId n, double duration) {
    if (!engine.initialized()) engine.init();
    IntegratingObserver integrator(p, n);
    integrator.prime(engine.time(), engine.solution());
    engine.add_observer(&integrator);
    engine.run_for(duration);
    engine.remove_observer(&integrator);
    return integrator.average();
}

}  // namespace rfabm::circuit
