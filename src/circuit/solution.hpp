// Solution vector of an MNA system: node voltages followed by branch currents.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/types.hpp"

namespace rfabm::circuit {

/// A solved (or in-progress Newton iterate) MNA state.  Unknown ordering is
/// node voltages for nodes 1..num_nodes-1, then one current per MNA branch.
class Solution {
  public:
    Solution() = default;
    Solution(std::size_t num_nodes, std::size_t num_branches)
        : num_nodes_(num_nodes), values_(num_nodes - 1 + num_branches, 0.0) {}

    /// Voltage of @p node; ground reads as exactly 0.
    double v(NodeId node) const {
        return node == kGround ? 0.0 : values_[static_cast<std::size_t>(node) - 1];
    }

    /// Current of MNA branch @p branch (0-based).
    double branch_current(std::size_t branch) const { return values_[num_nodes_ - 1 + branch]; }

    /// Number of circuit nodes including ground.
    std::size_t num_nodes() const { return num_nodes_; }

    /// Number of unknowns (matrix dimension).
    std::size_t size() const { return values_.size(); }

    std::vector<double>& raw() { return values_; }
    const std::vector<double>& raw() const { return values_; }

  private:
    std::size_t num_nodes_ = 1;
    std::vector<double> values_;
};

}  // namespace rfabm::circuit
