// Device base class for the MNA simulator.
//
// Every circuit element implements stamp(): write its (possibly linearized)
// contribution into the MNA system for the current Newton iterate.  Reactive
// devices keep companion-model history that analyses advance via init_state()
// and accept_step().  Nonlinear devices may keep per-iteration limiting state,
// which is why stamp() is non-const.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/process.hpp"
#include "circuit/solution.hpp"
#include "circuit/types.hpp"

namespace rfabm::circuit {

/// What kind of system is being assembled.
enum class AnalysisMode {
    kDc,         ///< operating point / DC sweep: capacitors open, inductors short
    kTransient,  ///< time step: reactive devices stamp companion models
};

/// Per-assembly context handed to Device::stamp().
struct StampContext {
    AnalysisMode mode = AnalysisMode::kDc;
    const Solution* x = nullptr;       ///< current Newton iterate (never null)
    double time = 0.0;                 ///< end-of-step time (transient)
    double dt = 0.0;                   ///< step size (transient)
    Integration method = Integration::kBackwardEuler;
    double gmin = kGminDefault;        ///< junction conductance floor
    double source_scale = 1.0;         ///< source-stepping homotopy factor
    /// Set by a nonlinear device when it clamps its junction voltages this
    /// stamp.  Newton must not declare convergence while any device limits:
    /// a clamped stamp can reproduce the previous iterate exactly even though
    /// the device equations are unsatisfied.
    bool* limited = nullptr;
};

/// Abstract circuit element.
class Device {
  public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }

    /// Number of MNA branch equations this device owns (0 for most).
    virtual std::size_t branch_count() const { return 0; }

    /// Index of the device's first branch equation; set by Circuit::finalize().
    std::size_t first_branch() const { return first_branch_; }
    void set_first_branch(std::size_t b) { first_branch_ = b; }

    /// True if the device's stamp depends on the iterate (needs Newton).
    virtual bool is_nonlinear() const { return false; }

    /// Nodes this device's terminals attach to, in the device's natural
    /// terminal order.  Used by connectivity analyses (ERC lint); an empty
    /// list means "opaque to connectivity checks".
    virtual std::vector<NodeId> terminals() const { return {}; }

    /// Terminal-node pairs between which the element conducts at DC (finite
    /// resistance in at least one control state).  The static analyzer uses
    /// these to find nodes without a DC path to ground before any solve.
    virtual std::vector<std::pair<NodeId, NodeId>> dc_paths() const { return {}; }

    /// Write the device's contribution for the given context.
    virtual void stamp(MnaSystem& sys, const StampContext& ctx) = 0;

    /// AC small-signal stamp, linearized around the operating point @p op at
    /// angular frequency @p omega.  Default: no AC contribution.
    virtual void stamp_ac(ComplexMna& sys, double omega, const Solution& op);

    /// Initialize companion-model / limiting history from a converged DC
    /// operating point before a transient run.
    virtual void init_state(const Solution& op);

    /// Commit state after a converged transient step (solution @p x at ctx.time).
    virtual void accept_step(const Solution& x, const StampContext& ctx);

    /// Apply an absolute device temperature (kelvin).  Default: ignored.
    virtual void set_temperature(double temperature_k);

    /// Apply a die-level process corner.  Default: ignored.
    virtual void apply_process(const ProcessCorner& corner);

  private:
    std::string name_;
    std::size_t first_branch_ = 0;
};

}  // namespace rfabm::circuit
