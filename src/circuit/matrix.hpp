// Dense matrix with LU factorization, the linear-algebra core of the MNA
// solver.  Circuits in this library are small (tens of unknowns), so a dense
// partial-pivoting LU is both simpler and faster than a sparse package.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rfabm::circuit {

/// Dense square-capable matrix of element type T (double or complex<double>).
template <typename T>
class DenseMatrix {
  public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    const T& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    /// Reset every element to zero, keeping the shape.
    void clear() { std::fill(data_.begin(), data_.end(), T{}); }

    /// Resize (destructive) and zero.
    void resize(std::size_t rows, std::size_t cols) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, T{});
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

/// Thrown when LU factorization meets a numerically singular pivot.
class SingularMatrixError : public std::runtime_error {
  public:
    explicit SingularMatrixError(std::size_t column)
        : std::runtime_error("singular matrix at column " + std::to_string(column)),
          column_(column) {}
    std::size_t column() const { return column_; }

  private:
    std::size_t column_;
};

namespace detail {
inline double magnitude(double v) { return std::fabs(v); }
inline double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

/// In-place LU factorization with partial pivoting followed by solve.
/// @p a is destroyed; @p b is replaced by the solution.  Throws
/// SingularMatrixError when a pivot underflows.
template <typename T>
void lu_solve_in_place(DenseMatrix<T>& a, std::vector<T>& b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n) {
        throw std::invalid_argument("lu_solve_in_place: shape mismatch");
    }
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t piv = col;
        double best = detail::magnitude(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double m = detail::magnitude(a(r, col));
            if (m > best) {
                best = m;
                piv = r;
            }
        }
        if (best < 1e-300) throw SingularMatrixError(col);
        if (piv != col) {
            for (std::size_t c = col; c < n; ++c) std::swap(a(piv, c), a(col, c));
            std::swap(b[piv], b[col]);
        }
        const T inv_pivot = T{1} / a(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const T factor = a(r, col) * inv_pivot;
            if (factor == T{}) continue;
            a(r, col) = T{};
            for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    for (std::size_t ri = n; ri-- > 0;) {
        T acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * b[c];
        b[ri] = acc / a(ri, ri);
    }
}

}  // namespace rfabm::circuit
