// AC small-signal analysis.
//
// Linearizes every device around a previously solved DC operating point and
// solves the complex MNA system at each requested frequency.  Used to
// characterize the preamplifier (gain, bandwidth) and the detector input
// network.
#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/solution.hpp"

namespace rfabm::circuit {

/// One AC analysis sample.
struct AcPoint {
    double hz = 0.0;
    std::complex<double> value;  ///< complex probe voltage (phasor)
};

/// Solve the small-signal response at each frequency in @p freqs and return
/// the differential probe phasor v(p) - v(n).  Exactly the sources configured
/// with set_ac() drive the system.  Throws SingularMatrixError via the solver
/// if the linearized system is singular.
std::vector<AcPoint> run_ac(Circuit& circuit, const Solution& op,
                            const std::vector<double>& freqs, NodeId probe_p,
                            NodeId probe_n = kGround);

/// Logarithmically spaced frequencies, @p per_decade points per decade from
/// @p f_start to at least @p f_stop.
std::vector<double> logspace_hz(double f_start, double f_stop, int per_decade);

}  // namespace rfabm::circuit
