// Linear passive devices: resistor, capacitor, inductor.
//
// On-die passives (the default) respond to ProcessCorner scale factors; parts
// of the test bench that live off chip (source terminations, bias tees of the
// signal generator) are constructed with Placement::kOffChip so process spread
// does not touch them.
#pragma once

#include "circuit/device.hpp"
#include "circuit/types.hpp"

namespace rfabm::circuit {

/// Whether a passive device is fabricated on the die (subject to process
/// variation) or is part of the external test bench.
enum class Placement { kOnDie, kOffChip };

/// Ideal resistor between nodes a and b.
class Resistor : public Device {
  public:
    Resistor(std::string name, NodeId a, NodeId b, double ohms,
             Placement placement = Placement::kOnDie);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void apply_process(const ProcessCorner& corner) override;

    /// Effective (process-adjusted) resistance.
    double resistance() const { return effective_ohms_; }
    /// Nominal (design) resistance.
    double nominal() const { return nominal_ohms_; }
    /// Change the nominal value (e.g. a trimming procedure); re-applies process.
    void set_nominal(double ohms);

    NodeId a() const { return a_; }
    NodeId b() const { return b_; }

    std::vector<NodeId> terminals() const override { return {a_, b_}; }
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{a_, b_}}; }

  private:
    NodeId a_;
    NodeId b_;
    double nominal_ohms_;
    double effective_ohms_;
    Placement placement_;
    double last_res_factor_ = 1.0;
};

/// Ideal capacitor between nodes a and b.  Open in DC (with a gmin leak to
/// keep the matrix nonsingular); trapezoidal/backward-Euler companion in
/// transient.
class Capacitor : public Device {
  public:
    Capacitor(std::string name, NodeId a, NodeId b, double farads,
              Placement placement = Placement::kOnDie);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void init_state(const Solution& op) override;
    void accept_step(const Solution& x, const StampContext& ctx) override;
    void apply_process(const ProcessCorner& corner) override;

    double capacitance() const { return effective_farads_; }
    void set_nominal(double farads);

    /// Voltage across the capacitor at the last accepted step.
    double last_voltage() const { return v_prev_; }

    NodeId a() const { return a_; }
    NodeId b() const { return b_; }

    /// A capacitor is open at DC: terminals but no DC path.
    std::vector<NodeId> terminals() const override { return {a_, b_}; }

  private:
    NodeId a_;
    NodeId b_;
    double nominal_farads_;
    double effective_farads_;
    Placement placement_;
    double last_cap_factor_ = 1.0;
    double v_prev_ = 0.0;  ///< voltage at last accepted step
    double i_prev_ = 0.0;  ///< current at last accepted step (trapezoidal)
};

/// Ideal inductor between nodes a and b; one MNA branch carrying its current.
/// Short in DC; companion model in transient.
class Inductor : public Device {
  public:
    Inductor(std::string name, NodeId a, NodeId b, double henries);

    std::size_t branch_count() const override { return 1; }
    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void init_state(const Solution& op) override;
    void accept_step(const Solution& x, const StampContext& ctx) override;

    double inductance() const { return henries_; }

    NodeId a() const { return a_; }
    NodeId b() const { return b_; }

    std::vector<NodeId> terminals() const override { return {a_, b_}; }
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{a_, b_}}; }

  private:
    NodeId a_;
    NodeId b_;
    double henries_;
    double i_prev_ = 0.0;  ///< branch current at last accepted step
    double v_prev_ = 0.0;  ///< inductor voltage at last accepted step
};

}  // namespace rfabm::circuit
