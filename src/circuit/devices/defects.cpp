#include "circuit/devices/defects.hpp"

#include <stdexcept>

namespace rfabm::circuit {

BridgeDefect::BridgeDefect(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
    if (ohms <= 0.0) throw std::invalid_argument("BridgeDefect: ohms must be > 0");
    if (a == b) throw std::invalid_argument("BridgeDefect: nodes must differ");
}

void BridgeDefect::stamp(MnaSystem& sys, const StampContext&) {
    if (armed_) sys.add_conductance(a_, b_, 1.0 / ohms_);
}

void BridgeDefect::stamp_ac(ComplexMna& sys, double, const Solution&) {
    if (armed_) sys.add_conductance(a_, b_, {1.0 / ohms_, 0.0});
}

}  // namespace rfabm::circuit
