// Linear controlled sources: VCCS (transconductance) and VCVS (voltage gain).
// Used by behavioural macro-models (e.g. the preamplifier's ideal core in
// unit tests) and by the AC test fixtures.
#pragma once

#include "circuit/device.hpp"

namespace rfabm::circuit {

/// Voltage-controlled current source: i = gm * (v(cp) - v(cn)) flowing from
/// out_p to out_n through the device.
class Vccs : public Device {
  public:
    Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn, double gm);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;

    void set_gm(double gm) { gm_ = gm; }
    double gm() const { return gm_; }

    NodeId out_p() const { return out_p_; }
    NodeId out_n() const { return out_n_; }
    NodeId cp() const { return cp_; }
    NodeId cn() const { return cn_; }

    /// Output is a controlled current source, control pins are sense-only:
    /// no DC conduction through any terminal pair.
    std::vector<NodeId> terminals() const override { return {out_p_, out_n_, cp_, cn_}; }

  private:
    NodeId out_p_, out_n_, cp_, cn_;
    double gm_;
};

/// Voltage-controlled voltage source: v(p) - v(n) = gain * (v(cp) - v(cn)).
/// One MNA branch.
class Vcvs : public Device {
  public:
    Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain);

    std::size_t branch_count() const override { return 1; }
    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;

    void set_gain(double gain) { gain_ = gain; }
    double gain() const { return gain_; }

    NodeId p() const { return p_; }
    NodeId n() const { return n_; }
    NodeId cp() const { return cp_; }
    NodeId cn() const { return cn_; }

    std::vector<NodeId> terminals() const override { return {p_, n_, cp_, cn_}; }
    /// The output branch behaves as a voltage source (DC short for
    /// connectivity); the control pins only sense.
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{p_, n_}}; }

  private:
    NodeId p_, n_, cp_, cn_;
    double gain_;
};

}  // namespace rfabm::circuit
