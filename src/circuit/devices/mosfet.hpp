// Level-1 (Shichman-Hodges) MOSFET.
//
// This is the device the paper's power detector depends on: eq. (1) of the
// paper is derived from exactly this square-law model, with the gate biased at
// the threshold voltage so the transistor half-wave rectifies the RF input.
// The model includes the two temperature effects and the two process effects
// that dominate the paper's error budget:
//   * VT(T)  = VT0 - tc_vt * (T - T0)          (threshold drift)
//   * K'(T)  = K'  * (T0 / T)^mobility_exp     (mobility degradation)
//   * process: VT0 shift and K' scale per ProcessCorner.
// Channel-length modulation (lambda) is applied in both triode and saturation
// so the output conductance is continuous across the boundary.
#pragma once

#include "circuit/device.hpp"

namespace rfabm::circuit {

enum class MosType { kNmos, kPmos };

/// Level-1 model card.  VT0 is given as a magnitude (positive for both
/// polarities); signs are handled internally.
struct MosfetParams {
    MosType type = MosType::kNmos;
    double w = 10e-6;          ///< channel width (m)
    double l = 1e-6;           ///< channel length (m)
    double kp = 100e-6;        ///< transconductance parameter K' = mu*Cox (A/V^2)
    double vt0 = 0.5;          ///< zero-bias threshold magnitude (V)
    double lambda = 0.04;      ///< channel-length modulation (1/V)
    double tc_vt = 1.5e-3;     ///< threshold temperature coefficient (V/K)
    double mobility_exp = 1.5; ///< mobility temperature exponent
};

/// Operating-point snapshot for inspection and AC linearization.
struct MosOperatingPoint {
    double id = 0.0;   ///< drain current (positive into the drain for NMOS)
    double vgs = 0.0;  ///< polarity-frame gate-source voltage
    double vds = 0.0;  ///< polarity-frame drain-source voltage
    double gm = 0.0;
    double gds = 0.0;
    bool saturated = false;
};

/// Transistor-level defect states.  A stuck-off device has an open channel
/// (broken gate contact / blown fuse); a stuck-on device conducts drain to
/// source as a fixed low resistance (gate-oxide short to the rail).
enum class MosfetFault {
    kNone,
    kStuckOff,  ///< channel never conducts
    kStuckOn,   ///< channel permanently resistive (ignores the gate)
};

/// Three-terminal MOSFET (bulk tied to source; no body effect).
class Mosfet : public Device {
  public:
    Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, MosfetParams params = {});

    bool is_nonlinear() const override { return true; }
    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void init_state(const Solution& op) override;
    void set_temperature(double temperature_k) override;
    void apply_process(const ProcessCorner& corner) override;

    /// Effective threshold magnitude after temperature and process.
    double vth() const { return vth_eff_; }
    /// Effective transconductance parameter after temperature and process.
    double kp() const { return kp_eff_; }
    const MosfetParams& params() const { return params_; }

    /// Evaluate the model at explicit polarity-frame voltages (vgs, vds >= 0
    /// handled internally via source/drain symmetry).  Used by tests and by
    /// the analytic detector model.
    MosOperatingPoint evaluate(double vgs, double vds) const;

    /// Operating point extracted from a solved state.
    MosOperatingPoint operating_point(const Solution& x) const;

    /// Inject/clear a channel defect.  @p stuck_on_ohms is the residual
    /// drain-source resistance of a stuck-on channel.
    void set_fault(MosfetFault fault, double stuck_on_ohms = 50.0);
    MosfetFault fault() const { return fault_; }

    NodeId drain() const { return d_; }
    NodeId gate() const { return g_; }
    NodeId source() const { return s_; }

    std::vector<NodeId> terminals() const override { return {d_, g_, s_}; }
    /// The channel conducts; the gate is infinite impedance at DC, so a gate
    /// node needs its bias path from elsewhere.
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{d_, s_}}; }

  private:
    void update_effective();

    NodeId d_, g_, s_;
    MosfetParams params_;
    double temperature_k_ = kNominalTemperatureK;
    double vt_shift_ = 0.0;   ///< process VT0 shift
    double kp_factor_ = 1.0;  ///< process K' factor
    double vth_eff_ = 0.0;
    double kp_eff_ = 0.0;
    double vgs_last_ = 0.0;   ///< limiting history (polarity/effective frame)
    double vds_last_ = 0.0;
    MosfetFault fault_ = MosfetFault::kNone;
    double stuck_on_ohms_ = 50.0;
};

}  // namespace rfabm::circuit
