// Defect devices: parameterized physical faults injected into the MNA stamp
// path.
//
// A fault-injection campaign plants these alongside the healthy netlist and
// arms one at a time.  Disarmed they stamp nothing at all, so a circuit with
// a dormant defect population solves identically to the defect-free one; an
// armed defect contributes the electrical signature of the modelled flaw:
//
//   BridgeDefect - a resistive short (solder bridge, metal sliver, gate-oxide
//                  pinhole) between two arbitrary nodes.
//   LeakDefect   - a high-resistance leakage path (contamination, damaged
//                  junction) — same stamp, defect-appropriate default value.
//
// Series opens of existing two-terminal elements are modelled on the element
// itself (Resistor::set_nominal to an open value, Switch/Mosfet stuck states)
// because MNA cannot cut a connection after the netlist is built; see
// src/faults/ for the injector layer that drives both mechanisms.
#pragma once

#include "circuit/device.hpp"

namespace rfabm::circuit {

/// Armable resistive path between two nodes; electrically absent until armed.
class BridgeDefect : public Device {
  public:
    /// @p ohms is the bridge resistance when armed (must be > 0).
    BridgeDefect(std::string name, NodeId a, NodeId b, double ohms = 10.0);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;

    void arm() { armed_ = true; }
    void disarm() { armed_ = false; }
    bool armed() const { return armed_; }

    double ohms() const { return ohms_; }
    NodeId a() const { return a_; }
    NodeId b() const { return b_; }

    /// Disarmed defects are electrically absent, so they are invisible to
    /// connectivity analyses too.
    std::vector<NodeId> terminals() const override {
        return armed_ ? std::vector<NodeId>{a_, b_} : std::vector<NodeId>{};
    }
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
        if (!armed_) return {};
        return {{a_, b_}};
    }

  private:
    NodeId a_;
    NodeId b_;
    double ohms_;
    bool armed_ = false;
};

/// A weak leakage path: a BridgeDefect with a megaohm-class default.
class LeakDefect : public BridgeDefect {
  public:
    LeakDefect(std::string name, NodeId a, NodeId b, double ohms = 1e6)
        : BridgeDefect(std::move(name), a, b, ohms) {}
};

}  // namespace rfabm::circuit
