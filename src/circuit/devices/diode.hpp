// Junction diode (Shockley model with SPICE-style junction limiting).
//
// The paper notes its target process offered no diode-based power detectors —
// the detector itself is MOS-only — but the simulator supports diodes so the
// classical diode detector can serve as a reference baseline in tests and
// benchmarks, and for ESD/clamp modelling in the pin circuitry.
#pragma once

#include "circuit/device.hpp"

namespace rfabm::circuit {

/// Diode parameters (level-1 SPICE subset).
struct DiodeParams {
    double is = 1e-14;        ///< saturation current (A) at nominal temperature
    double n = 1.0;           ///< emission coefficient
    double temperature_exp = 3.0;  ///< IS(T) power-law exponent
    double eg = 1.11;         ///< bandgap (eV) for IS temperature scaling
};

/// Junction diode from anode to cathode.
class Diode : public Device {
  public:
    Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {});

    bool is_nonlinear() const override { return true; }
    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void init_state(const Solution& op) override;
    void set_temperature(double temperature_k) override;

    /// Diode current at the junction voltage @p vd (after temperature scaling).
    double current(double vd) const;

    NodeId anode() const { return anode_; }
    NodeId cathode() const { return cathode_; }
    const DiodeParams& params() const { return params_; }

    std::vector<NodeId> terminals() const override { return {anode_, cathode_}; }
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
        return {{anode_, cathode_}};
    }

  private:
    /// Junction-voltage limiting (SPICE pnjlim) keeping exp() in range.
    double limit_voltage(double v_new) const;

    NodeId anode_;
    NodeId cathode_;
    DiodeParams params_;
    double is_eff_;      ///< temperature-scaled saturation current
    double vt_;          ///< n * kT/q
    double vcrit_;       ///< limiting knee
    mutable double v_last_ = 0.0;  ///< previous iterate's junction voltage
};

}  // namespace rfabm::circuit
