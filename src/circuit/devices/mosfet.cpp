#include "circuit/devices/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfabm::circuit {

namespace {

/// Per-iteration Newton step clamp on device voltages.  Limiting only slows
/// large excursions; the converged solution is unchanged because the limited
/// voltage equals the iterate at convergence.  Sets @p limited when the clamp
/// engages so the Newton loop keeps iterating.
double limit_step(double v_new, double v_old, double max_delta, bool* limited) {
    const double delta = v_new - v_old;
    if (delta > max_delta || delta < -max_delta) {
        if (limited != nullptr) *limited = true;
        return v_old + (delta > 0.0 ? max_delta : -max_delta);
    }
    return v_new;
}

constexpr double kMaxVgsStep = 0.5;  // volts per Newton iteration
constexpr double kMaxVdsStep = 1.0;

}  // namespace

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, MosfetParams params)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source), params_(params) {
    if (params_.w <= 0.0 || params_.l <= 0.0 || params_.kp <= 0.0 || params_.vt0 < 0.0) {
        throw std::invalid_argument("Mosfet: W, L, KP must be positive and VT0 >= 0");
    }
    update_effective();
}

void Mosfet::update_effective() {
    const double dt = temperature_k_ - kNominalTemperatureK;
    vth_eff_ = params_.vt0 + vt_shift_ - params_.tc_vt * dt;
    kp_eff_ = params_.kp * kp_factor_ *
              std::pow(kNominalTemperatureK / temperature_k_, params_.mobility_exp);
}

void Mosfet::set_temperature(double temperature_k) {
    temperature_k_ = temperature_k;
    update_effective();
}

void Mosfet::apply_process(const ProcessCorner& corner) {
    if (params_.type == MosType::kNmos) {
        vt_shift_ = corner.nmos_vt_shift;
        kp_factor_ = corner.nmos_kp_factor;
    } else {
        vt_shift_ = corner.pmos_vt_shift;
        kp_factor_ = corner.pmos_kp_factor;
    }
    update_effective();
}

MosOperatingPoint Mosfet::evaluate(double vgs, double vds) const {
    MosOperatingPoint op;
    // Source/drain symmetry: for vds < 0 the physical source and drain swap.
    if (vds < 0.0) {
        MosOperatingPoint sw = evaluate(vgs - vds, -vds);
        sw.id = -sw.id;
        sw.vgs = vgs;
        sw.vds = vds;
        // gm/gds of the swapped frame are not remapped here; callers needing
        // reverse-bias small-signal data should evaluate in the swapped frame.
        return sw;
    }
    op.vgs = vgs;
    op.vds = vds;
    const double vov = vgs - vth_eff_;
    const double beta = kp_eff_ * params_.w / params_.l;
    const double lam = params_.lambda;
    if (vov <= 0.0) {
        // Cutoff: square-law model conducts nothing (the paper's eq. (1)
        // derivation assumes exactly this).
        return op;
    }
    if (vds < vov) {
        // Triode, with (1 + lambda*vds) retained for gds continuity.
        const double core = vov * vds - 0.5 * vds * vds;
        const double mod = 1.0 + lam * vds;
        op.id = beta * core * mod;
        op.gm = beta * vds * mod;
        op.gds = beta * ((vov - vds) * mod + core * lam);
        op.saturated = false;
    } else {
        const double mod = 1.0 + lam * vds;
        op.id = 0.5 * beta * vov * vov * mod;
        op.gm = beta * vov * mod;
        op.gds = 0.5 * beta * vov * vov * lam;
        op.saturated = true;
    }
    return op;
}

void Mosfet::set_fault(MosfetFault fault, double stuck_on_ohms) {
    if (stuck_on_ohms <= 0.0) throw std::invalid_argument("Mosfet: stuck_on_ohms must be > 0");
    fault_ = fault;
    stuck_on_ohms_ = stuck_on_ohms;
}

void Mosfet::stamp(MnaSystem& sys, const StampContext& ctx) {
    // Channel defects replace the square-law model with the degenerate
    // linear element the defect leaves behind; both are iterate-independent,
    // so a faulted device never blocks Newton convergence.
    if (fault_ == MosfetFault::kStuckOff) {
        sys.add_conductance(d_, s_, ctx.gmin);
        return;
    }
    if (fault_ == MosfetFault::kStuckOn) {
        sys.add_conductance(d_, s_, 1.0 / stuck_on_ohms_);
        return;
    }
    const double pol = params_.type == MosType::kNmos ? 1.0 : -1.0;
    const double vd = pol * ctx.x->v(d_);
    const double vg = pol * ctx.x->v(g_);
    const double vs = pol * ctx.x->v(s_);

    // Effective drain is the higher terminal in the polarity frame.
    const bool swapped = vd < vs;
    const NodeId deff = swapped ? s_ : d_;
    const NodeId seff = swapped ? d_ : s_;
    const double vdeff = swapped ? vs : vd;
    const double vseff = swapped ? vd : vs;

    double vgs = vg - vseff;
    double vds = vdeff - vseff;
    vgs = limit_step(vgs, vgs_last_, kMaxVgsStep, ctx.limited);
    vds = limit_step(vds, vds_last_, kMaxVdsStep, ctx.limited);
    vgs_last_ = vgs;
    vds_last_ = vds;

    const MosOperatingPoint op = evaluate(vgs, vds);
    const double gds = op.gds + ctx.gmin;
    const double ieq = op.id - op.gm * vgs - gds * vds;

    // Conductances stamp identically in both polarity frames (current and
    // voltage flip together); only the constant term flips with polarity.
    sys.add_conductance(deff, seff, gds);
    sys.add_transconductance(deff, seff, g_, seff, op.gm);
    sys.add_current(deff, seff, pol * ieq);
}

void Mosfet::stamp_ac(ComplexMna& sys, double, const Solution& op_state) {
    if (fault_ == MosfetFault::kStuckOff) {
        sys.add_conductance(d_, s_, {kGminDefault, 0.0});
        return;
    }
    if (fault_ == MosfetFault::kStuckOn) {
        sys.add_conductance(d_, s_, {1.0 / stuck_on_ohms_, 0.0});
        return;
    }
    const MosOperatingPoint op = operating_point(op_state);
    const double pol = params_.type == MosType::kNmos ? 1.0 : -1.0;
    const double vd = pol * op_state.v(d_);
    const double vs = pol * op_state.v(s_);
    const bool swapped = vd < vs;
    const NodeId deff = swapped ? s_ : d_;
    const NodeId seff = swapped ? d_ : s_;
    // Small-signal: conductances only; evaluate() of the effective frame.
    const MosOperatingPoint eff =
        swapped ? evaluate(op.vgs - op.vds, -op.vds) : op;
    sys.add_conductance(deff, seff, {eff.gds + kGminDefault, 0.0});
    sys.add_transconductance(deff, seff, g_, seff, {eff.gm, 0.0});
}

void Mosfet::init_state(const Solution& op) {
    const double pol = params_.type == MosType::kNmos ? 1.0 : -1.0;
    const double vd = pol * op.v(d_);
    const double vg = pol * op.v(g_);
    const double vs = pol * op.v(s_);
    const bool swapped = vd < vs;
    vgs_last_ = vg - (swapped ? vd : vs);
    vds_last_ = std::fabs(vd - vs);
}

MosOperatingPoint Mosfet::operating_point(const Solution& x) const {
    const double pol = params_.type == MosType::kNmos ? 1.0 : -1.0;
    const double vd = pol * x.v(d_);
    const double vg = pol * x.v(g_);
    const double vs = pol * x.v(s_);
    return evaluate(vg - vs, vd - vs);
}

}  // namespace rfabm::circuit
