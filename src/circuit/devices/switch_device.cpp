#include "circuit/devices/switch_device.hpp"

#include <stdexcept>

namespace rfabm::circuit {

Switch::Switch(std::string name, NodeId a, NodeId b, double ron, double roff)
    : Device(std::move(name)), a_(a), b_(b), ron_nominal_(ron), ron_eff_(ron), roff_(roff) {
    if (ron <= 0.0 || roff <= 0.0 || roff < ron) {
        throw std::invalid_argument("Switch requires 0 < ron <= roff");
    }
}

void Switch::stamp(MnaSystem& sys, const StampContext&) {
    sys.add_conductance(a_, b_, effective_closed() ? 1.0 / ron_eff_ : 1.0 / roff_);
}

void Switch::stamp_ac(ComplexMna& sys, double, const Solution&) {
    sys.add_conductance(a_, b_, {effective_closed() ? 1.0 / ron_eff_ : 1.0 / roff_, 0.0});
}

void Switch::apply_process(const ProcessCorner& corner) {
    // Transmission-gate on-resistance tracks carrier mobility: a faster
    // process (higher K') gives a lower Ron.  Use the NMOS factor; the gate is
    // a parallel N/P pair so this is a first-order approximation.
    ron_eff_ = ron_nominal_ / corner.nmos_kp_factor;
}

}  // namespace rfabm::circuit
