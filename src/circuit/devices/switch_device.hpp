// Externally controlled analog switch.
//
// This is the workhorse of the IEEE 1149.4 infrastructure: every ABM switch
// (SD, SB1, SB2, SG, SH, SL), every TBIC bus switch and the ".4 MUX" switch
// matrix map onto instances of this device.  The digital test logic (boundary
// register, serial select register) drives set_closed() between transient
// steps; electrically the switch is Ron when closed and Roff when open, which
// is how transmission gates behave to first order.
#pragma once

#include "circuit/device.hpp"

namespace rfabm::circuit {

/// Manufacturing/wear-out defect states a transmission gate can assume.  A
/// stuck switch ignores its control input: the gate oxide shorted (stuck
/// closed) or the pass devices never turn on (stuck open).
enum class SwitchFault {
    kNone,        ///< healthy: follows set_closed()
    kStuckOpen,   ///< always Roff regardless of control
    kStuckClosed, ///< always Ron regardless of control
};

/// Two-state analog switch between nodes a and b.
class Switch : public Device {
  public:
    /// @p ron / @p roff are the closed/open resistances.  Defaults model an
    /// on-die CMOS transmission gate.
    Switch(std::string name, NodeId a, NodeId b, double ron = 100.0, double roff = 1e9);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;
    void apply_process(const ProcessCorner& corner) override;

    void set_closed(bool closed) { closed_ = closed; }
    bool closed() const { return closed_; }

    /// Inject/clear a stuck-at defect.  The commanded state is retained so
    /// clearing the fault restores normal operation.
    void set_fault(SwitchFault fault) { fault_ = fault; }
    SwitchFault fault() const { return fault_; }

    /// Electrically effective state: the defect overrides the control input.
    bool effective_closed() const {
        if (fault_ == SwitchFault::kStuckOpen) return false;
        if (fault_ == SwitchFault::kStuckClosed) return true;
        return closed_;
    }

    double ron() const { return ron_eff_; }
    double roff() const { return roff_; }

    NodeId a() const { return a_; }
    NodeId b() const { return b_; }

    /// Both states have finite resistance (Ron / Roff), so a switch always
    /// provides a (possibly weak) DC path.
    std::vector<NodeId> terminals() const override { return {a_, b_}; }
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{a_, b_}}; }

  private:
    NodeId a_;
    NodeId b_;
    double ron_nominal_;
    double ron_eff_;
    double roff_;
    bool closed_ = false;
    SwitchFault fault_ = SwitchFault::kNone;
};

}  // namespace rfabm::circuit
