#include "circuit/devices/controlled.hpp"

namespace rfabm::circuit {

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn, double gm)
    : Device(std::move(name)), out_p_(out_p), out_n_(out_n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp(MnaSystem& sys, const StampContext&) {
    sys.add_transconductance(out_p_, out_n_, cp_, cn_, gm_);
}

void Vccs::stamp_ac(ComplexMna& sys, double, const Solution&) {
    sys.add_transconductance(out_p_, out_n_, cp_, cn_, {gm_, 0.0});
}

Vcvs::Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp(MnaSystem& sys, const StampContext&) {
    const std::size_t br = first_branch();
    sys.add_branch_to_node(p_, br, +1.0);
    sys.add_branch_to_node(n_, br, -1.0);
    sys.add_node_to_branch(br, p_, +1.0);
    sys.add_node_to_branch(br, n_, -1.0);
    sys.add_node_to_branch(br, cp_, -gain_);
    sys.add_node_to_branch(br, cn_, +gain_);
}

void Vcvs::stamp_ac(ComplexMna& sys, double, const Solution&) {
    const std::size_t br = first_branch();
    sys.add_branch_to_node(p_, br, {1.0, 0.0});
    sys.add_branch_to_node(n_, br, {-1.0, 0.0});
    sys.add_node_to_branch(br, p_, {1.0, 0.0});
    sys.add_node_to_branch(br, n_, {-1.0, 0.0});
    sys.add_node_to_branch(br, cp_, {-gain_, 0.0});
    sys.add_node_to_branch(br, cn_, {gain_, 0.0});
}

}  // namespace rfabm::circuit
