// Independent voltage and current sources.
#pragma once

#include "circuit/device.hpp"
#include "circuit/waveform.hpp"

namespace rfabm::circuit {

/// Independent voltage source from p (+) to n (-); one MNA branch whose
/// current flows p -> n through the source (SPICE convention: a source
/// delivering power to a load reads a negative branch current).
class VSource : public Device {
  public:
    VSource(std::string name, NodeId p, NodeId n, Waveform wave);

    std::size_t branch_count() const override { return 1; }
    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;

    /// Replace the waveform (e.g. a sweep changing the DC level or RF power).
    void set_waveform(Waveform wave) { wave_ = std::move(wave); }
    const Waveform& waveform() const { return wave_; }

    /// Convenience: replace with a plain DC level.
    void set_dc(double volts) { wave_ = Waveform::dc(volts); }

    /// AC analysis magnitude (phase 0); 0 disables the AC stimulus.
    void set_ac(double magnitude) { ac_magnitude_ = magnitude; }
    double ac_magnitude() const { return ac_magnitude_; }

    /// Branch current of the source in @p x (positive = flowing p -> n
    /// internally).
    double current(const Solution& x) const { return x.branch_current(first_branch()); }

    NodeId p() const { return p_; }
    NodeId n() const { return n_; }

    std::vector<NodeId> terminals() const override { return {p_, n_}; }
    /// A voltage source is a DC short for connectivity purposes.
    std::vector<std::pair<NodeId, NodeId>> dc_paths() const override { return {{p_, n_}}; }

  private:
    NodeId p_;
    NodeId n_;
    Waveform wave_;
    double ac_magnitude_ = 0.0;
};

/// Independent current source pushing its current from p to n through the
/// device (so it raises the potential of n relative to p into a resistor).
class ISource : public Device {
  public:
    ISource(std::string name, NodeId p, NodeId n, Waveform wave);

    void stamp(MnaSystem& sys, const StampContext& ctx) override;
    void stamp_ac(ComplexMna& sys, double omega, const Solution& op) override;

    void set_waveform(Waveform wave) { wave_ = std::move(wave); }
    void set_dc(double amps) { wave_ = Waveform::dc(amps); }
    const Waveform& waveform() const { return wave_; }

    void set_ac(double magnitude) { ac_magnitude_ = magnitude; }

    NodeId p() const { return p_; }
    NodeId n() const { return n_; }

    /// A current source is infinite impedance: terminals but no DC path.
    std::vector<NodeId> terminals() const override { return {p_, n_}; }

  private:
    NodeId p_;
    NodeId n_;
    Waveform wave_;
    double ac_magnitude_ = 0.0;
};

}  // namespace rfabm::circuit
