#include "circuit/devices/sources.hpp"

namespace rfabm::circuit {

VSource::VSource(std::string name, NodeId p, NodeId n, Waveform wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {}

void VSource::stamp(MnaSystem& sys, const StampContext& ctx) {
    const std::size_t br = first_branch();
    const double value = (ctx.mode == AnalysisMode::kDc ? wave_.dc_value() : wave_.value(ctx.time)) *
                         ctx.source_scale;
    sys.add_branch_to_node(p_, br, +1.0);
    sys.add_branch_to_node(n_, br, -1.0);
    sys.add_node_to_branch(br, p_, +1.0);
    sys.add_node_to_branch(br, n_, -1.0);
    sys.add_branch_rhs(br, value);
}

void VSource::stamp_ac(ComplexMna& sys, double, const Solution&) {
    const std::size_t br = first_branch();
    sys.add_branch_to_node(p_, br, {1.0, 0.0});
    sys.add_branch_to_node(n_, br, {-1.0, 0.0});
    sys.add_node_to_branch(br, p_, {1.0, 0.0});
    sys.add_node_to_branch(br, n_, {-1.0, 0.0});
    sys.add_branch_rhs(br, {ac_magnitude_, 0.0});
}

ISource::ISource(std::string name, NodeId p, NodeId n, Waveform wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {}

void ISource::stamp(MnaSystem& sys, const StampContext& ctx) {
    const double value = (ctx.mode == AnalysisMode::kDc ? wave_.dc_value() : wave_.value(ctx.time)) *
                         ctx.source_scale;
    sys.add_current(p_, n_, value);
}

void ISource::stamp_ac(ComplexMna& sys, double, const Solution&) {
    sys.add_current(p_, n_, {ac_magnitude_, 0.0});
}

}  // namespace rfabm::circuit
