#include "circuit/devices/diode.hpp"

#include <algorithm>
#include <cmath>

namespace rfabm::circuit {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params),
      is_eff_(params.is), vt_(params.n * thermal_voltage(kNominalTemperatureK)) {
    vcrit_ = vt_ * std::log(vt_ / (std::sqrt(2.0) * is_eff_));
}

void Diode::set_temperature(double temperature_k) {
    vt_ = params_.n * thermal_voltage(temperature_k);
    // IS(T) = IS * (T/T0)^XTI * exp(-Eg q / k * (1/T - 1/T0))
    const double t0 = kNominalTemperatureK;
    const double ratio = temperature_k / t0;
    const double eg_term =
        -params_.eg * kElectronCharge / kBoltzmann * (1.0 / temperature_k - 1.0 / t0);
    is_eff_ = params_.is * std::pow(ratio, params_.temperature_exp) * std::exp(eg_term);
    vcrit_ = vt_ * std::log(vt_ / (std::sqrt(2.0) * is_eff_));
}

double Diode::current(double vd) const {
    // Clamp the exponent so even un-limited probes stay finite.
    const double x = std::min(vd / vt_, 80.0);
    return is_eff_ * (std::exp(x) - 1.0);
}

double Diode::limit_voltage(double v_new) const {
    const double v_old = v_last_;
    if (v_new > vcrit_ && std::fabs(v_new - v_old) > 2.0 * vt_) {
        if (v_old > 0.0) {
            const double arg = 1.0 + (v_new - v_old) / vt_;
            v_new = arg > 0.0 ? v_old + vt_ * std::log(arg) : vcrit_;
        } else {
            v_new = vt_ * std::log(v_new / vt_);
        }
    }
    return v_new;
}

void Diode::stamp(MnaSystem& sys, const StampContext& ctx) {
    const double vd_raw = ctx.x->v(anode_) - ctx.x->v(cathode_);
    const double vd = limit_voltage(vd_raw);
    if (ctx.limited != nullptr && std::fabs(vd - vd_raw) > 1e-9) *ctx.limited = true;
    v_last_ = vd;

    const double x = std::min(vd / vt_, 80.0);
    const double e = std::exp(x);
    const double id = is_eff_ * (e - 1.0);
    const double gd = std::max(is_eff_ * e / vt_, ctx.gmin);
    const double ieq = id - gd * vd;

    sys.add_conductance(anode_, cathode_, gd);
    sys.add_current(anode_, cathode_, ieq);
}

void Diode::stamp_ac(ComplexMna& sys, double, const Solution& op) {
    const double vd = op.v(anode_) - op.v(cathode_);
    const double x = std::min(vd / vt_, 80.0);
    const double gd = std::max(is_eff_ * std::exp(x) / vt_, kGminDefault);
    sys.add_conductance(anode_, cathode_, {gd, 0.0});
}

void Diode::init_state(const Solution& op) { v_last_ = op.v(anode_) - op.v(cathode_); }

}  // namespace rfabm::circuit
