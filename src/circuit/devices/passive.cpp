#include "circuit/devices/passive.hpp"

#include <stdexcept>

namespace rfabm::circuit {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms, Placement placement)
    : Device(std::move(name)), a_(a), b_(b), nominal_ohms_(ohms), effective_ohms_(ohms),
      placement_(placement) {
    if (ohms <= 0.0) throw std::invalid_argument("Resistor value must be positive");
}

void Resistor::stamp(MnaSystem& sys, const StampContext&) {
    sys.add_conductance(a_, b_, 1.0 / effective_ohms_);
}

void Resistor::stamp_ac(ComplexMna& sys, double, const Solution&) {
    sys.add_conductance(a_, b_, {1.0 / effective_ohms_, 0.0});
}

void Resistor::apply_process(const ProcessCorner& corner) {
    last_res_factor_ = corner.res_factor;
    effective_ohms_ =
        placement_ == Placement::kOnDie ? nominal_ohms_ * corner.res_factor : nominal_ohms_;
}

void Resistor::set_nominal(double ohms) {
    if (ohms <= 0.0) throw std::invalid_argument("Resistor value must be positive");
    nominal_ohms_ = ohms;
    effective_ohms_ =
        placement_ == Placement::kOnDie ? nominal_ohms_ * last_res_factor_ : nominal_ohms_;
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads, Placement placement)
    : Device(std::move(name)), a_(a), b_(b), nominal_farads_(farads), effective_farads_(farads),
      placement_(placement) {
    if (farads <= 0.0) throw std::invalid_argument("Capacitor value must be positive");
}

void Capacitor::stamp(MnaSystem& sys, const StampContext& ctx) {
    if (ctx.mode == AnalysisMode::kDc) {
        // Open circuit; a gmin leak keeps nodes with only capacitive paths
        // from making the matrix singular.
        sys.add_conductance(a_, b_, ctx.gmin);
        return;
    }
    const double c = effective_farads_;
    double geq = 0.0;
    double ieq = 0.0;
    if (ctx.method == Integration::kTrapezoidal) {
        geq = 2.0 * c / ctx.dt;
        ieq = -geq * v_prev_ - i_prev_;
    } else {  // backward Euler
        geq = c / ctx.dt;
        ieq = -geq * v_prev_;
    }
    // i(t) = geq * v(t) + ieq  flowing a -> b.
    sys.add_conductance(a_, b_, geq);
    sys.add_current(a_, b_, ieq);
}

void Capacitor::stamp_ac(ComplexMna& sys, double omega, const Solution&) {
    sys.add_conductance(a_, b_, {0.0, omega * effective_farads_});
}

void Capacitor::init_state(const Solution& op) {
    v_prev_ = op.v(a_) - op.v(b_);
    i_prev_ = 0.0;
}

void Capacitor::accept_step(const Solution& x, const StampContext& ctx) {
    const double v_now = x.v(a_) - x.v(b_);
    const double c = effective_farads_;
    if (ctx.method == Integration::kTrapezoidal) {
        i_prev_ = 2.0 * c / ctx.dt * (v_now - v_prev_) - i_prev_;
    } else {
        i_prev_ = c / ctx.dt * (v_now - v_prev_);
    }
    v_prev_ = v_now;
}

void Capacitor::apply_process(const ProcessCorner& corner) {
    last_cap_factor_ = corner.cap_factor;
    effective_farads_ =
        placement_ == Placement::kOnDie ? nominal_farads_ * corner.cap_factor : nominal_farads_;
}

void Capacitor::set_nominal(double farads) {
    if (farads <= 0.0) throw std::invalid_argument("Capacitor value must be positive");
    nominal_farads_ = farads;
    effective_farads_ =
        placement_ == Placement::kOnDie ? nominal_farads_ * last_cap_factor_ : nominal_farads_;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries) {
    if (henries <= 0.0) throw std::invalid_argument("Inductor value must be positive");
}

void Inductor::stamp(MnaSystem& sys, const StampContext& ctx) {
    const std::size_t br = first_branch();
    // KCL: branch current flows a -> b through the inductor.
    sys.add_branch_to_node(a_, br, +1.0);
    sys.add_branch_to_node(b_, br, -1.0);
    if (ctx.mode == AnalysisMode::kDc) {
        // v(a) - v(b) = 0 (ideal short).
        sys.add_node_to_branch(br, a_, +1.0);
        sys.add_node_to_branch(br, b_, -1.0);
        return;
    }
    // Companion: BE:  v = (L/dt) (i - i_prev)
    //            TR:  v = (2L/dt)(i - i_prev) - v_prev
    const double l = henries_;
    double req = 0.0;
    double veq = 0.0;
    if (ctx.method == Integration::kTrapezoidal) {
        req = 2.0 * l / ctx.dt;
        veq = -req * i_prev_ - v_prev_;
    } else {
        req = l / ctx.dt;
        veq = -req * i_prev_;
    }
    // v(a) - v(b) - req * i = veq
    sys.add_node_to_branch(br, a_, +1.0);
    sys.add_node_to_branch(br, b_, -1.0);
    sys.add_branch_to_branch(br, br, -req);
    sys.add_branch_rhs(br, veq);
}

void Inductor::stamp_ac(ComplexMna& sys, double omega, const Solution&) {
    const std::size_t br = first_branch();
    sys.add_branch_to_node(a_, br, {1.0, 0.0});
    sys.add_branch_to_node(b_, br, {-1.0, 0.0});
    sys.add_node_to_branch(br, a_, {1.0, 0.0});
    sys.add_node_to_branch(br, b_, {-1.0, 0.0});
    sys.add_branch_to_branch(br, br, {0.0, -omega * henries_});
}

void Inductor::init_state(const Solution& op) {
    i_prev_ = op.branch_current(first_branch());
    v_prev_ = op.v(a_) - op.v(b_);
}

void Inductor::accept_step(const Solution& x, const StampContext& ctx) {
    const double i_now = x.branch_current(first_branch());
    const double l = henries_;
    if (ctx.method == Integration::kTrapezoidal) {
        v_prev_ = 2.0 * l / ctx.dt * (i_now - i_prev_) - v_prev_;
    } else {
        v_prev_ = l / ctx.dt * (i_now - i_prev_);
    }
    i_prev_ = i_now;
}

}  // namespace rfabm::circuit
