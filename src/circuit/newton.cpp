#include "circuit/newton.hpp"

#include <cmath>

#include "circuit/matrix.hpp"

namespace rfabm::circuit {

namespace {

/// Convergence test that also records the worst offender: the unknown whose
/// update most exceeds (relatively) its tolerance, for failure diagnostics.
bool check_converged(const Solution& prev, const std::vector<double>& next,
                     std::size_t num_nodes, const NewtonOptions& opt, NewtonOutcome* outcome) {
    const auto& old_vals = prev.raw();
    bool converged = true;
    double worst_ratio = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
        const double delta = std::fabs(next[i] - old_vals[i]);
        const double scale = std::max(std::fabs(next[i]), std::fabs(old_vals[i]));
        const double abs_tol = i < num_nodes - 1 ? opt.vntol : opt.abstol;
        const double tol = opt.reltol * scale + abs_tol;
        if (delta > tol) converged = false;
        const double ratio = delta / tol;
        if (ratio > worst_ratio) {
            worst_ratio = ratio;
            outcome->worst_delta = delta;
            outcome->worst_unknown = i;
        }
    }
    return converged;
}

}  // namespace

NewtonOutcome newton_iterate(Circuit& circuit, StampContext ctx, Solution& x,
                             const NewtonOptions& options, MnaSystem& scratch) {
    circuit.finalize();
    const std::size_t num_nodes = circuit.num_nodes();
    NewtonOutcome outcome;

    std::vector<double> candidate;
    bool limited = false;
    ctx.limited = &limited;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        outcome.iterations = iter + 1;
        scratch.reset(num_nodes, circuit.num_branches());
        ctx.x = &x;
        limited = false;
        for (const auto& dev : circuit.devices()) dev->stamp(scratch, ctx);
        if (options.extra_diag_gmin > 0.0) {
            for (NodeId n = 1; n < static_cast<NodeId>(num_nodes); ++n) {
                scratch.add_node_diagonal(n, options.extra_diag_gmin);
            }
        }
        candidate = scratch.rhs();
        try {
            lu_solve_in_place(scratch.matrix(), candidate);
        } catch (const SingularMatrixError&) {
            outcome.singular = true;
            return outcome;
        }
        // Non-finite guard: a NaN/Inf unknown can never converge, and every
        // further iteration just smears the poison through the matrix.  Stop
        // at the first one and report its location.
        for (std::size_t i = 0; i < candidate.size(); ++i) {
            if (!std::isfinite(candidate[i])) {
                outcome.non_finite = true;
                outcome.worst_delta = candidate[i];
                outcome.worst_unknown = i;
                return outcome;
            }
        }
        const bool converged =
            !limited && check_converged(x, candidate, num_nodes, options, &outcome);
        x.raw() = candidate;
        if (converged) {
            outcome.converged = true;
            return outcome;
        }
    }
    return outcome;
}

}  // namespace rfabm::circuit
