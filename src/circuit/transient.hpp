// Transient analysis engine.
//
// The engine is incremental: init() establishes the initial condition (DC
// operating point by default), then step()/run_for() advance time.  External
// controllers — the mixed-signal digital domain, the IEEE 1149.4 test logic,
// calibration loops — interleave with the analog solution through
// StepObserver callbacks and by mutating device state (switch positions,
// source waveforms) between steps.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/dc.hpp"
#include "circuit/newton.hpp"
#include "circuit/solution.hpp"
#include "exec/cancellation.hpp"

namespace rfabm::circuit {

/// Thrown when a transient solve is abandoned because its cancellation token
/// fired (watchdog deadline or campaign cancel) — distinct from
/// ConvergenceError: the circuit did nothing wrong, the supervisor pulled the
/// plug.  The hardened measurement pipeline maps it to kTimedOut/kFailed
/// instead of retrying.
class SolveAborted : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Callback invoked after every accepted transient step.
class StepObserver {
  public:
    virtual ~StepObserver() = default;
    /// @p time is the end-of-step time and @p x the converged solution.
    virtual void on_step(double time, const Solution& x, Circuit& circuit) = 0;
};

/// Options for TransientEngine.
struct TransientOptions {
    double dt = 10e-12;                             ///< fixed base step (s)
    Integration method = Integration::kTrapezoidal;
    NewtonOptions newton{};
    double gmin = kGminDefault;
    bool start_from_dc = true;  ///< init() solves the operating point first
    int max_step_subdivisions = 8;  ///< halvings tried when a step fails
    /// Hard-cancellation token, polled before every base step: once it fires
    /// (watchdog deadline, campaign cancel) the engine throws SolveAborted
    /// instead of grinding on.  The default token never fires.  This is the
    /// supervision hook the exec-layer watchdog uses to reclaim a worker from
    /// a hung solve.
    rfabm::exec::CancellationToken cancel{};
    /// Progress heartbeat: incremented once per accepted (sub)step when set.
    /// A watchdog distinguishes "slow but alive" from "hung" by watching it.
    std::atomic<std::uint64_t>* heartbeat = nullptr;
};

/// Fixed-step transient integrator with Newton iteration per step and
/// automatic step subdivision on Newton failure.
class TransientEngine {
  public:
    explicit TransientEngine(Circuit& circuit, TransientOptions options = {});

    /// Observers fire after every accepted (sub)step, in registration order.
    void add_observer(StepObserver* observer);
    void remove_observer(StepObserver* observer);

    /// Establish the initial condition (DC op or all-zero per options) and
    /// prime device companion histories.  Resets time to zero.
    void init();

    /// Establish an explicit initial condition.
    void init_from(const Solution& initial);

    /// Advance exactly one base step of options.dt.  Throws ConvergenceError
    /// if Newton fails even after max_step_subdivisions halvings.
    void step();

    /// Advance until time() >= tstop (steps of options.dt).
    void run_until(double tstop);

    /// Advance by @p duration seconds.
    void run_for(double duration) { run_until(time_ + duration); }

    double time() const { return time_; }
    const Solution& solution() const { return x_; }
    double v(NodeId node) const { return x_.v(node); }
    Circuit& circuit() { return circuit_; }
    const TransientOptions& options() const { return options_; }
    TransientOptions& options() { return options_; }
    std::size_t steps_taken() const { return steps_; }
    /// Newton iterations accumulated over the engine's lifetime (initial DC
    /// operating points plus every transient step, including subdivided
    /// retries).  The campaign layer aggregates this across workers as a
    /// cost metric; monotonic, never reset by init().
    std::uint64_t newton_iterations() const { return newton_iterations_; }
    bool initialized() const { return initialized_; }

  private:
    void advance(double dt, int depth);

    Circuit& circuit_;
    TransientOptions options_;
    std::vector<StepObserver*> observers_;
    Solution x_;
    MnaSystem scratch_;
    double time_ = 0.0;
    std::size_t steps_ = 0;
    std::uint64_t newton_iterations_ = 0;
    bool initialized_ = false;
    bool first_step_done_ = false;
};

/// Convenience recorder observer: samples chosen nodes every @p decimation
/// accepted steps.
class Recorder : public StepObserver {
  public:
    explicit Recorder(std::vector<NodeId> probes, std::size_t decimation = 1);

    void on_step(double time, const Solution& x, Circuit& circuit) override;

    const std::vector<double>& time() const { return time_; }
    /// Samples of probe @p index (construction order).
    const std::vector<double>& channel(std::size_t index) const { return channels_.at(index); }
    std::size_t num_channels() const { return channels_.size(); }
    void clear();

  private:
    std::vector<NodeId> probes_;
    std::size_t decimation_;
    std::size_t counter_ = 0;
    std::vector<double> time_;
    std::vector<std::vector<double>> channels_;
};

}  // namespace rfabm::circuit
