// DC operating-point analysis and DC transfer sweeps.
#pragma once

#include <stdexcept>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/newton.hpp"
#include "circuit/solution.hpp"

namespace rfabm::circuit {

/// Thrown when every convergence aid (plain Newton, gmin stepping, source
/// stepping) fails to find an operating point.
class ConvergenceError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Options for solve_dc().
struct DcOptions {
    NewtonOptions newton{};
    double gmin = kGminDefault;
    bool allow_gmin_stepping = true;
    bool allow_source_stepping = true;
};

/// Outcome of solve_dc().
struct DcResult {
    Solution solution;
    int iterations = 0;           ///< Newton iterations of the final solve
    bool used_gmin_stepping = false;
    bool used_source_stepping = false;
};

/// Solve the DC operating point.  @p initial (if given) warm-starts Newton —
/// essential for fast corner/sweep loops.  Throws ConvergenceError on failure.
DcResult solve_dc(Circuit& circuit, const DcOptions& options = {},
                  const Solution* initial = nullptr);

/// Sweep a VSource DC level and record v(probe_p) - v(probe_n) at each point,
/// warm-starting each solve from the previous one.
class VSource;
std::vector<double> dc_sweep(Circuit& circuit, VSource& source,
                             const std::vector<double>& levels, NodeId probe_p,
                             NodeId probe_n = kGround, const DcOptions& options = {});

}  // namespace rfabm::circuit
