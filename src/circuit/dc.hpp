// DC operating-point analysis and DC transfer sweeps.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/newton.hpp"
#include "circuit/solution.hpp"

namespace rfabm::circuit {

/// Post-mortem of a failed (or abandoned) DC solve: everything a user needs
/// to act on "did not converge" without re-running under a debugger.
struct ConvergenceDiagnostics {
    int total_iterations = 0;         ///< Newton iterations across all attempts
    int last_attempt_iterations = 0;  ///< iterations of the final attempt
    double worst_delta = 0.0;         ///< largest final-iteration update (V or A)
    std::string worst_unknown;        ///< node name or "branch N" of that update
    bool gmin_stepping_attempted = false;
    bool source_stepping_attempted = false;
    bool budget_exhausted = false;    ///< max_total_iterations cap hit
    bool singular = false;            ///< LU found a singular pivot
    /// The solver produced a NaN/Inf unknown (worst_unknown locates it).
    /// Deterministic arithmetic poison, not an iteration problem: retrying or
    /// stepping cannot fix it, so the solve aborts as soon as it appears.
    bool non_finite = false;

    /// One-line human-readable summary (used as the exception message).
    std::string to_string() const;
};

/// Thrown when every convergence aid (plain Newton, gmin stepping, source
/// stepping) fails to find an operating point.  Carries the full diagnostics
/// of the failed solve.
class ConvergenceError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
    explicit ConvergenceError(const ConvergenceDiagnostics& diagnostics)
        : std::runtime_error(diagnostics.to_string()), diagnostics_(diagnostics) {}

    const ConvergenceDiagnostics& diagnostics() const { return diagnostics_; }
    /// True when the failure was a NaN/Inf state vector (kNonFinite): the
    /// hardened pipeline fails such measurements fast instead of retrying.
    bool non_finite() const { return diagnostics_.non_finite; }

  private:
    ConvergenceDiagnostics diagnostics_{};
};

/// Name of solution unknown @p index for diagnostics: the node's netlist name
/// for voltage unknowns, "branch N" for MNA current unknowns.
std::string unknown_name(const Circuit& circuit, std::size_t index);

/// Options for solve_dc().
struct DcOptions {
    NewtonOptions newton{};
    double gmin = kGminDefault;
    bool allow_gmin_stepping = true;
    bool allow_source_stepping = true;
};

/// Outcome of solve_dc().
struct DcResult {
    Solution solution;
    int iterations = 0;           ///< Newton iterations of the final solve
    bool used_gmin_stepping = false;
    bool used_source_stepping = false;
};

/// Structured outcome of try_solve_dc(): either a result or diagnostics,
/// never an exception.
struct DcOutcome {
    bool ok = false;
    DcResult result;                      ///< valid only when ok
    ConvergenceDiagnostics diagnostics;   ///< always populated on failure
};

/// Solve the DC operating point without throwing.  @p initial (if given)
/// warm-starts Newton — essential for fast corner/sweep loops.  The
/// options.newton.max_total_iterations budget bounds the combined effort of
/// plain Newton and every gmin/source-stepping stage.
DcOutcome try_solve_dc(Circuit& circuit, const DcOptions& options = {},
                       const Solution* initial = nullptr);

/// Throwing wrapper over try_solve_dc(): raises ConvergenceError (with the
/// full diagnostics attached) on failure.
DcResult solve_dc(Circuit& circuit, const DcOptions& options = {},
                  const Solution* initial = nullptr);

/// Sweep a VSource DC level and record v(probe_p) - v(probe_n) at each point,
/// warm-starting each solve from the previous one.
class VSource;
std::vector<double> dc_sweep(Circuit& circuit, VSource& source,
                             const std::vector<double>& levels, NodeId probe_p,
                             NodeId probe_n = kGround, const DcOptions& options = {});

}  // namespace rfabm::circuit
