// Time-domain waveform descriptions for independent sources.
//
// A Waveform is a cheap value type: sources copy it and evaluate value(t)
// every Newton iteration.  The variants mirror the SPICE source set the
// experiments need: DC, sinusoid (the RF stimulus), pulse (clocks for the
// digital test logic) and piecewise-linear (arbitrary ramps).
#pragma once

#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

namespace rfabm::circuit {

/// Constant level.
struct DcWave {
    double level = 0.0;
};

/// offset + amplitude * sin(2*pi*freq*(t - delay) + phase), zero-sine before delay.
struct SineWave {
    double offset = 0.0;
    double amplitude = 0.0;
    double frequency = 0.0;  ///< Hz
    double phase = 0.0;      ///< radians
    double delay = 0.0;      ///< seconds
};

/// SPICE-style periodic trapezoid pulse.
struct PulseWave {
    double v1 = 0.0;      ///< initial level
    double v2 = 0.0;      ///< pulsed level
    double delay = 0.0;   ///< time of first rising edge start
    double rise = 1e-12;  ///< rise time
    double fall = 1e-12;  ///< fall time
    double width = 0.0;   ///< time at v2
    double period = 0.0;  ///< repetition period (0 = single pulse)
};

/// Piecewise-linear: sorted (time, value) breakpoints, clamped at the ends.
struct PwlWave {
    std::vector<std::pair<double, double>> points;
};

/// Tagged union over the waveform kinds with a uniform value(t) accessor.
class Waveform {
  public:
    Waveform() : storage_(DcWave{}) {}

    static Waveform dc(double level) { return Waveform(DcWave{level}); }
    static Waveform sine(double offset, double amplitude, double frequency, double phase = 0.0,
                         double delay = 0.0) {
        return Waveform(SineWave{offset, amplitude, frequency, phase, delay});
    }
    static Waveform pulse(PulseWave p) { return Waveform(std::move(p)); }
    static Waveform pwl(std::vector<std::pair<double, double>> points);

    /// Instantaneous value at time @p t.
    double value(double t) const;

    /// Value used by DC operating-point analysis (t = 0 by convention).
    double dc_value() const { return value(0.0); }

    /// True if the waveform is a plain DC level.
    bool is_dc() const { return std::holds_alternative<DcWave>(storage_); }

    /// For sine waves, the carrier frequency; 0 otherwise.  Used by settling
    /// helpers to derive the averaging period.
    double fundamental_hz() const;

  private:
    template <typename T>
    explicit Waveform(T w) : storage_(std::move(w)) {}

    std::variant<DcWave, SineWave, PulseWave, PwlWave> storage_;
};

}  // namespace rfabm::circuit
