#include "exec/thread_pool.hpp"

#include <algorithm>

namespace rfabm::exec {

namespace {

/// Identity of the current thread within its pool (nullptr / npos when not a
/// worker).  Lets submit() route nested submissions to the caller's deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_index = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(Options options) {
    std::size_t n = options.workers;
    if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    queue_capacity_ = std::max<std::size_t>(1, options.queue_capacity);
    queues_.resize(n);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    wait_idle();
    {
        std::lock_guard lock(pool_mutex_);
        stop_ = true;
    }
    work_available_.notify_all();
    for (auto& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const {
    return tls_pool == this && tls_worker_index < queues_.size();
}

bool ThreadPool::submit(std::function<void()> task) {
    const bool from_worker = on_worker_thread();
    {
        std::unique_lock lock(pool_mutex_);
        if (stop_) return false;
        if (!from_worker) {
            space_available_.wait(lock, [&] { return stop_ || queued_ < queue_capacity_; });
            if (stop_) return false;
        }
        const std::size_t target =
            from_worker ? tls_worker_index : (next_queue_++ % queues_.size());
        queues_[target].push_back(std::move(task));
        ++queued_;
        ++pending_;
    }
    work_available_.notify_one();
    return true;
}

bool ThreadPool::take_task(std::size_t index, std::function<void()>& task) {
    auto& own = queues_[index];
    if (!own.empty()) {
        task = std::move(own.back());
        own.pop_back();
        return true;
    }
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        auto& victim = queues_[(index + k) % n];
        if (victim.empty()) continue;
        task = std::move(victim.front());
        victim.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_worker_index = index;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(pool_mutex_);
            work_available_.wait(lock, [&] { return stop_ || queued_ > 0; });
            if (queued_ == 0) return;  // stop_ and fully drained
            take_task(index, task);    // queued_ > 0 under the lock => succeeds
            --queued_;
        }
        space_available_.notify_one();
        task();
        executed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard lock(pool_mutex_);
            --pending_;
            if (pending_ == 0) idle_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(pool_mutex_);
    idle_.wait(lock, [&] { return pending_ == 0; });
}

std::uint64_t substream_seed(std::uint64_t campaign_seed, std::uint64_t stream_id) {
    // Two SplitMix64 finalization rounds over (seed, id): the first decouples
    // the id from the raw seed, the second breaks any residual linearity.
    std::uint64_t x = campaign_seed + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
    for (int round = 0; round < 2; ++round) {
        x += 0x9E3779B97F4A7C15ULL;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
        x = x ^ (x >> 31);
    }
    return x;
}

}  // namespace rfabm::exec
