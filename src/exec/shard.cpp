#include "exec/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <unordered_map>

namespace rfabm::exec {

namespace {

bool key_less(const CellKey& a, const CellKey& b) {
    return std::tie(a.die, a.env, a.meas) < std::tie(b.die, b.env, b.meas);
}

}  // namespace

std::string shard_journal_path(const std::string& stem, std::uint32_t index) {
    return stem + ".shard" + std::to_string(index) + ".wal";
}

MergeStats merge_shard_journals(const std::vector<std::string>& inputs,
                                const std::string& out_path, std::uint64_t campaign_id) {
    MergeStats stats;

    // Fold every input into last-wins maps.  Inputs are processed in the
    // caller's order, but because shards own disjoint cell sets (and a
    // single cell's re-journaled records carry identical bits), the fold is
    // order-insensitive in practice — and the canonical sort below makes the
    // output bytes order-independent regardless.
    std::unordered_map<CellKey, CellRecord, CellKeyHash> cells;
    std::unordered_map<CellKey, std::uint32_t, CellKeyHash> quarantined;
    std::unordered_map<CellKey, std::uint32_t, CellKeyHash> attempts;
    for (const std::string& path : inputs) {
        JournalReplay replay = replay_journal(path, campaign_id);
        if (!replay.present) continue;
        ++stats.journals_read;
        if (replay.torn_tail) ++stats.torn_tails;
        stats.superseded_dropped += replay.superseded_records;
        for (CellRecord& record : replay.cells) {
            if (auto it = cells.find(record.key); it != cells.end()) {
                it->second = std::move(record);
                ++stats.superseded_dropped;
            } else {
                cells.emplace(record.key, std::move(record));
            }
        }
        for (const auto& [key, burned] : replay.quarantined) quarantined[key] = burned;
        for (const auto& [key, burned] : replay.attempts) {
            auto [it, fresh] = attempts.emplace(key, burned);
            if (!fresh) it->second = std::max(it->second, burned);
        }
    }
    // A cell that completed (or quarantined) in one shard journal supersedes
    // attempt tallies for it in any other generation.
    for (auto it = attempts.begin(); it != attempts.end();) {
        if (cells.count(it->first) != 0 || quarantined.count(it->first) != 0) {
            ++stats.superseded_dropped;
            it = attempts.erase(it);
        } else {
            ++it;
        }
    }

    // Canonical order: record type, then key.
    std::vector<const CellRecord*> cell_order;
    cell_order.reserve(cells.size());
    for (const auto& [key, record] : cells) cell_order.push_back(&record);
    std::sort(cell_order.begin(), cell_order.end(),
              [](const CellRecord* a, const CellRecord* b) { return key_less(a->key, b->key); });
    auto sorted_pairs = [](const std::unordered_map<CellKey, std::uint32_t, CellKeyHash>& map) {
        std::vector<std::pair<CellKey, std::uint32_t>> out(map.begin(), map.end());
        std::sort(out.begin(), out.end(),
                  [](const auto& a, const auto& b) { return key_less(a.first, b.first); });
        return out;
    };

    // Write the merged generation to a temp file and publish with rename():
    // a crash mid-merge leaves the previous generation readable, and a
    // repeated merge after such a crash converges on the same bytes.
    const std::string tmp_path = out_path + ".tmp";
    {
        JournalWriter writer;
        JournalWriter::Options wopts;
        wopts.campaign_id = campaign_id;
        wopts.checkpoint_every = 0;  // close() syncs once; no mid-merge fsync churn
        if (!writer.open_fresh(tmp_path, wopts)) return stats;
        for (const CellRecord* record : cell_order) writer.append_cell(*record);
        for (const auto& [key, burned] : sorted_pairs(quarantined)) {
            writer.append_quarantine(key, burned);
        }
        for (const auto& [key, burned] : sorted_pairs(attempts)) {
            writer.append_attempt(key, burned);
        }
        writer.close();
    }
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return stats;
    }

    stats.cells = cells.size();
    stats.quarantined = quarantined.size();
    stats.attempts_carried = attempts.size();
    stats.ok = true;
    return stats;
}

bool compact_journal(const std::string& path, std::uint64_t campaign_id, MergeStats* stats) {
    const JournalReplay probe = replay_journal(path, campaign_id);
    if (!probe.present) return false;
    const MergeStats merged = merge_shard_journals({path}, path, campaign_id);
    if (stats != nullptr) *stats = merged;
    return merged.ok;
}

}  // namespace rfabm::exec
