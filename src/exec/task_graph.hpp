// Task-graph scheduler for measurement campaigns.
//
// A campaign is a DAG: per-die chains (sample corner -> DC-calibrate -> open
// DUT session -> measure sweep points) whose calibrate node fans out to one
// measurement node per environmental corner.  The graph tracks dependency
// counts and releases nodes onto the thread pool as their predecessors
// finish; cancellation marks not-yet-started nodes as skipped while letting
// in-flight nodes finish, so a cancelled campaign always drains cleanly (no
// leaked tasks — every node ends up ran, skipped, or failed).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"

namespace rfabm::exec {

/// Handed to every node body.
struct TaskContext {
    std::size_t node = 0;        ///< node id within the graph
    CancellationToken token{};   ///< poll between expensive sub-steps
};

/// Outcome of TaskGraph::run().
struct TaskGraphResult {
    std::size_t ran = 0;      ///< bodies executed to completion
    std::size_t skipped = 0;  ///< cancelled (or downstream of a failure) before starting
    std::size_t failed = 0;   ///< bodies that threw
    std::size_t deferred = 0; ///< ready nodes parked by the defer predicate
    bool cancelled = false;   ///< the token fired during the run
    std::exception_ptr first_error;  ///< first failure, for rethrowing

    bool ok() const { return failed == 0 && !cancelled; }
    /// ran + skipped + failed always equals the node count: nothing leaks.
    std::size_t accounted() const { return ran + skipped + failed; }
};

class TaskGraph {
  public:
    using Body = std::function<void(TaskContext&)>;

    /// Add a node; returns its id.  @p label is for error reporting only.
    /// A @p deferrable node is optional-priority: while the defer predicate
    /// holds (e.g. the campaign failure breaker has tripped), the scheduler
    /// parks it at the moment it becomes ready and spends the pool on
    /// mandatory nodes instead; parked nodes are flushed — dispatched
    /// unconditionally, so deferral can never livelock — once nothing
    /// mandatory is left in flight.
    std::size_t add(Body body, std::string label = {}, bool deferrable = false);

    /// Install the deferral gate consulted each time a deferrable node
    /// becomes ready.  Null (the default) means "never defer".  The
    /// predicate is called under the scheduler lock: keep it O(1) (an
    /// atomic/breaker read, not a lock acquisition).
    void set_defer_predicate(std::function<bool()> predicate);

    /// Declare that @p node runs only after @p dependency completed.
    /// Edges must be added before run(); nodes trapped in a dependency cycle
    /// are the caller's bug and are accounted as skipped (run() never stalls).
    void depends_on(std::size_t node, std::size_t dependency);

    std::size_t size() const { return nodes_.size(); }

    /// Execute the graph on @p pool.  Blocks until every node is accounted
    /// for.  On the first failure the remainder of the graph is skipped
    /// (in-flight nodes finish).  Reentrant: a fresh run() resets state.
    TaskGraphResult run(ThreadPool& pool, CancellationToken token = {});

  private:
    struct Node {
        Body body;
        std::string label;
        std::vector<std::size_t> successors;
        std::size_t dependency_count = 0;
        bool deferrable = false;
    };

    std::vector<Node> nodes_;
    std::function<bool()> defer_predicate_;
};

}  // namespace rfabm::exec
