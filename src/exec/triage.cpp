#include "exec/triage.hpp"

#include <sstream>

namespace rfabm::exec {

const char* to_string(CellOutcome outcome) {
    switch (outcome) {
        case CellOutcome::kOk: return "ok";
        case CellOutcome::kDegraded: return "degraded";
        case CellOutcome::kFailed: return "failed";
        case CellOutcome::kTimedOut: return "timed_out";
        case CellOutcome::kNonFinite: return "non_finite";
        case CellOutcome::kQuarantined: return "quarantined";
        case CellOutcome::kShed: return "shed";
        case CellOutcome::kReplayed: return "replayed";
    }
    return "unknown";
}

FailureBreaker::FailureBreaker() : FailureBreaker(Options()) {}

FailureBreaker::FailureBreaker(Options options) : options_(options) {
    if (options_.window == 0) options_.window = 1;
}

void FailureBreaker::record(bool success) {
    std::lock_guard<std::mutex> lock(mutex_);
    window_.push_back(!success);
    if (!success) ++failures_;
    while (window_.size() > options_.window) {
        if (window_.front()) --failures_;
        window_.pop_front();
    }
    if (window_.size() >= options_.min_samples &&
        static_cast<double>(failures_) >= options_.threshold * static_cast<double>(window_.size())) {
        ever_tripped_ = true;
    }
}

bool FailureBreaker::tripped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return window_.size() >= options_.min_samples &&
           static_cast<double>(failures_) >=
               options_.threshold * static_cast<double>(window_.size());
}

bool FailureBreaker::ever_tripped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ever_tripped_;
}

void Quarantine::add(const CellKey& key, std::uint32_t attempts) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.emplace(key, attempts);
    if (!inserted && attempts > it->second) it->second = attempts;
}

bool Quarantine::contains(const CellKey& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.find(key) != cells_.end();
}

std::vector<std::pair<CellKey, std::uint32_t>> Quarantine::cells() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<CellKey, std::uint32_t>> out(cells_.begin(), cells_.end());
    return out;
}

std::size_t Quarantine::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.size();
}

bool TriageReport::clean() const {
    return count(CellOutcome::kFailed) == 0 && count(CellOutcome::kTimedOut) == 0 &&
           count(CellOutcome::kNonFinite) == 0 && count(CellOutcome::kQuarantined) == 0 &&
           count(CellOutcome::kShed) == 0;
}

std::string TriageReport::to_string() const {
    std::ostringstream os;
    os << "triage: " << cells_total << " cells";
    for (std::size_t i = 0; i < kNumCellOutcomes; ++i) {
        if (counts[i] == 0) continue;
        os << ", " << counts[i] << " " << rfabm::exec::to_string(static_cast<CellOutcome>(i));
    }
    os << "\n  watchdog fires: " << watchdog_fires
       << ", breaker " << (breaker_tripped ? "TRIPPED" : "quiet");
    os << "\n  journal: " << journal.records_written << " written, " << journal.records_replayed
       << " replayed, " << journal.fsyncs << " fsyncs, " << journal.bytes_written << " bytes";
    if (journal.torn_tail) os << ", torn tail recovered";
    if (journal.checksum_mismatch) os << ", corrupt record truncated";
    if (surrogate.enabled) {
        os << "\n  surrogate: " << surrogate.hits << "/" << surrogate.lookups()
           << " served (" << surrogate.misses << " miss, " << surrogate.out_of_envelope
           << " out-of-envelope, " << surrogate.bound_too_loose << " bound-too-loose), "
           << surrogate.observed << " observed, " << surrogate.refits << " refits, "
           << surrogate.surfaces << " surfaces, worst bound " << surrogate.worst_error_bound
           << " V";
        if (surrogate.load_rejected > 0) {
            os << ", " << surrogate.load_rejected << " persisted store(s) REJECTED at load";
        }
    }
    for (const auto& [key, attempts] : quarantined_cells) {
        os << "\n  quarantined: " << key.to_string() << " after " << attempts << " attempts";
    }
    for (const std::string& detail : quarantine_details) {
        os << "\n    " << detail;
    }
    for (const ShardHistory& shard : shards) {
        os << "\n  shard " << shard.shard << ": " << shard.launches << " launch"
           << (shard.launches == 1 ? "" : "es") << ", " << shard.crashes << " crash"
           << (shard.crashes == 1 ? "" : "es") << " (" << shard.hangs << " hung), "
           << (shard.completed ? "completed" : (shard.gave_up ? "gave up" : "unfinished"));
        for (const ShardAttempt& attempt : shard.attempts) {
            os << "\n    attempt " << attempt.attempt << ": "
               << (attempt.resume ? "resume" : "fresh");
            if (attempt.backoff_ms > 0) os << " after " << attempt.backoff_ms << "ms backoff";
            if (attempt.shed) os << ", shedding optional";
            os << " -> " << attempt.ended;
        }
    }
    return os.str();
}

std::string TriageReport::to_json() const {
    std::ostringstream os;
    os << "{\"cells_total\": " << cells_total;
    for (std::size_t i = 0; i < kNumCellOutcomes; ++i) {
        os << ", \"" << rfabm::exec::to_string(static_cast<CellOutcome>(i))
           << "\": " << counts[i];
    }
    os << ", \"watchdog_fires\": " << watchdog_fires
       << ", \"breaker_tripped\": " << (breaker_tripped ? "true" : "false");
    os << ", \"journal\": {\"records_written\": " << journal.records_written
       << ", \"quarantine_records\": " << journal.quarantine_records
       << ", \"records_replayed\": " << journal.records_replayed
       << ", \"bytes_written\": " << journal.bytes_written << ", \"fsyncs\": " << journal.fsyncs
       << ", \"torn_tail\": " << (journal.torn_tail ? "true" : "false")
       << ", \"checksum_mismatch\": " << (journal.checksum_mismatch ? "true" : "false") << "}";
    os << ", \"quarantined_cells\": [";
    for (std::size_t i = 0; i < quarantined_cells.size(); ++i) {
        const auto& [key, attempts] = quarantined_cells[i];
        if (i != 0) os << ", ";
        os << "{\"die\": " << key.die << ", \"env\": " << key.env << ", \"meas\": " << key.meas
           << ", \"attempts\": " << attempts << "}";
    }
    os << "], \"surrogate\": {\"enabled\": " << (surrogate.enabled ? "true" : "false")
       << ", \"hits\": " << surrogate.hits << ", \"misses\": " << surrogate.misses
       << ", \"out_of_envelope\": " << surrogate.out_of_envelope
       << ", \"bound_too_loose\": " << surrogate.bound_too_loose
       << ", \"observed\": " << surrogate.observed << ", \"refits\": " << surrogate.refits
       << ", \"load_rejected\": " << surrogate.load_rejected
       << ", \"surfaces\": " << surrogate.surfaces
       << ", \"worst_error_bound\": " << surrogate.worst_error_bound << "}";
    os << ", \"shards\": [";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardHistory& shard = shards[i];
        if (i != 0) os << ", ";
        os << "{\"shard\": " << shard.shard << ", \"launches\": " << shard.launches
           << ", \"crashes\": " << shard.crashes << ", \"hangs\": " << shard.hangs
           << ", \"slow_flags\": " << shard.slow_flags
           << ", \"completed\": " << (shard.completed ? "true" : "false")
           << ", \"gave_up\": " << (shard.gave_up ? "true" : "false") << ", \"attempts\": [";
        for (std::size_t a = 0; a < shard.attempts.size(); ++a) {
            const ShardAttempt& attempt = shard.attempts[a];
            if (a != 0) os << ", ";
            os << "{\"attempt\": " << attempt.attempt
               << ", \"resume\": " << (attempt.resume ? "true" : "false")
               << ", \"shed\": " << (attempt.shed ? "true" : "false")
               << ", \"backoff_ms\": " << attempt.backoff_ms << ", \"ended\": \""
               << attempt.ended << "\"}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

}  // namespace rfabm::exec
