// Parallel Monte-Carlo driver.
//
// The parallel twin of circuit::run_monte_carlo(): the die population is
// pre-sampled up front from one RNG (identical draws to the serial driver
// for a given seed — see circuit/montecarlo.hpp), then the measurement
// closures fan out across the pool, each writing its own result slot.
// Results are therefore bit-identical to the serial driver for any worker
// count.
#pragma once

#include <functional>
#include <vector>

#include "circuit/montecarlo.hpp"
#include "exec/campaign.hpp"

namespace rfabm::exec {

/// Parallel run_monte_carlo.  @p jobs == 1 degenerates to the serial driver.
/// A cancelled run returns the samples measured so far with the remaining
/// values left at 0 (check the returned count of the graph via @p result_out
/// when partial populations matter).
inline std::vector<circuit::MonteCarloSample> run_monte_carlo(
    std::size_t trials, std::uint64_t seed, const circuit::ProcessSpread& spread,
    const std::function<double(const circuit::ProcessCorner&)>& measure,
    const CampaignOptions& options, TaskGraphResult* result_out = nullptr) {
    // Pre-sample the whole population first: draws depend only on the seed,
    // never on measurement scheduling.
    std::vector<circuit::MonteCarloSample> samples =
        circuit::presample_dies(trials, seed, spread);
    std::vector<DieChain> chains(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        chains[i].measurements.push_back({[&samples, &measure, i](TaskContext&) {
            samples[i].value = measure(samples[i].corner);
        }});
    }
    const TaskGraphResult result = run_campaign(chains, options);
    if (result_out) *result_out = result;
    return samples;
}

}  // namespace rfabm::exec
