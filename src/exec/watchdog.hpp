// Watchdog supervision for campaign tasks.
//
// A Watchdog runs one monitor thread.  Each supervised task arms a ticket:
// a per-task CancellationSource (a child of the campaign token), a timeout,
// and optionally a progress heartbeat (the transient engine bumps one per
// accepted step).  A task that keeps beating has its deadline extended; a
// task whose heartbeat stalls — or that has none and simply runs past its
// deadline — is fired: the watchdog expires the task's deadline so the
// solver's next cancellation poll throws SolveAborted and the worker thread
// is reclaimed.  Firing is cooperative (no thread is killed), so a solve
// stuck *inside* a single LU factorisation can only be reaped at its next
// poll point; the per-base-step poll in TransientEngine bounds that window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "exec/cancellation.hpp"

namespace rfabm::exec {

class Watchdog {
  public:
    struct Options {
        /// Monitor wake-up cadence.  Effective timeout resolution: a hung
        /// task is fired within one poll interval of its deadline.
        std::chrono::nanoseconds poll_interval = std::chrono::milliseconds(20);
        /// Auto-tune stall timeouts from the observed heartbeat cadence: a
        /// task armed with timeout <= 0 gets `EWMA(inter-beat interval) *
        /// safety_factor`, clamped below by min_timeout, re-derived on every
        /// observed beat.  Until any cadence is observed, min_timeout holds.
        /// Tasks armed with an explicit positive timeout keep it — the flag
        /// stays a per-task override.
        bool auto_tune = false;
        double safety_factor = 8.0;
        std::chrono::nanoseconds min_timeout = std::chrono::milliseconds(50);
    };

    using Ticket = std::uint64_t;

    Watchdog();
    explicit Watchdog(Options options);
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Supervise @p source: if neither disarm() nor heartbeat progress
    /// happens within @p timeout, expire the source's deadline (its tokens
    /// then report stop_requested() with a deadline reason).  When
    /// @p heartbeat is non-null, each observed increment restarts the
    /// timeout window — the watchdog fires on *stall*, not on total runtime.
    Ticket arm(CancellationSource source, std::chrono::nanoseconds timeout,
               const std::atomic<std::uint64_t>* heartbeat = nullptr);

    /// Stop supervising (task finished or is handling its own failure).
    /// Safe with a ticket that already fired.
    void disarm(Ticket ticket);

    /// Number of tasks fired over the watchdog's lifetime.
    std::uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

    /// Whether arm() with timeout <= 0 derives a timeout from the observed
    /// heartbeat cadence instead of meaning "unsupervised".
    bool auto_enabled() const { return options_.auto_tune; }

    /// Current auto-tuned stall timeout: EWMA inter-beat interval times the
    /// safety factor, never below min_timeout.  min_timeout until the first
    /// cadence sample arrives.
    std::chrono::nanoseconds auto_timeout() const;

    /// RAII supervision for one attempt.  A null watchdog degrades to "no
    /// supervision"; so does a zero timeout, unless the watchdog auto-tunes
    /// (then zero means "derive my timeout from the heartbeat cadence").
    class Guard {
      public:
        Guard(Watchdog* dog, const CancellationSource& source, std::chrono::nanoseconds timeout,
              const std::atomic<std::uint64_t>* heartbeat = nullptr)
            : dog_(dog) {
            if (dog_ != nullptr && (timeout.count() > 0 || dog_->auto_enabled())) {
                ticket_ = dog_->arm(source, timeout, heartbeat);
            }
        }
        ~Guard() {
            if (dog_ != nullptr && ticket_ != 0) dog_->disarm(ticket_);
        }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

      private:
        Watchdog* dog_ = nullptr;
        Ticket ticket_ = 0;
    };

  private:
    struct Entry {
        CancellationSource source;
        std::int64_t deadline_ns = 0;
        std::int64_t timeout_ns = 0;      ///< 0: auto-tuned, re-derived each sweep
        const std::atomic<std::uint64_t>* heartbeat = nullptr;
        std::uint64_t last_beat = 0;
        std::int64_t last_beat_ns = 0;    ///< when the window last restarted
        bool fired = false;
    };

    void run();
    std::int64_t auto_timeout_ns_locked() const;
    void observe_interval_locked(std::int64_t interval_ns);

    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<Ticket, Entry> entries_;
    Ticket next_ticket_ = 1;
    bool stop_ = false;
    /// EWMA of observed inter-beat intervals across all supervised tasks
    /// (ns; 0 until the first sample).  Guarded by mutex_.
    double ewma_interval_ns_ = 0.0;
    std::atomic<std::uint64_t> fires_{0};
    std::thread thread_;
};

}  // namespace rfabm::exec
