// Watchdog supervision for campaign tasks.
//
// A Watchdog runs one monitor thread.  Each supervised task arms a ticket:
// a per-task CancellationSource (a child of the campaign token), a timeout,
// and optionally a progress heartbeat (the transient engine bumps one per
// accepted step).  A task that keeps beating has its deadline extended; a
// task whose heartbeat stalls — or that has none and simply runs past its
// deadline — is fired: the watchdog expires the task's deadline so the
// solver's next cancellation poll throws SolveAborted and the worker thread
// is reclaimed.  Firing is cooperative (no thread is killed), so a solve
// stuck *inside* a single LU factorisation can only be reaped at its next
// poll point; the per-base-step poll in TransientEngine bounds that window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "exec/cancellation.hpp"

namespace rfabm::exec {

class Watchdog {
  public:
    struct Options {
        /// Monitor wake-up cadence.  Effective timeout resolution: a hung
        /// task is fired within one poll interval of its deadline.
        std::chrono::nanoseconds poll_interval = std::chrono::milliseconds(20);
    };

    using Ticket = std::uint64_t;

    Watchdog();
    explicit Watchdog(Options options);
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Supervise @p source: if neither disarm() nor heartbeat progress
    /// happens within @p timeout, expire the source's deadline (its tokens
    /// then report stop_requested() with a deadline reason).  When
    /// @p heartbeat is non-null, each observed increment restarts the
    /// timeout window — the watchdog fires on *stall*, not on total runtime.
    Ticket arm(CancellationSource source, std::chrono::nanoseconds timeout,
               const std::atomic<std::uint64_t>* heartbeat = nullptr);

    /// Stop supervising (task finished or is handling its own failure).
    /// Safe with a ticket that already fired.
    void disarm(Ticket ticket);

    /// Number of tasks fired over the watchdog's lifetime.
    std::uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

    /// RAII supervision for one attempt.  A null watchdog or zero timeout
    /// degrades to "no supervision" so callers need no branching.
    class Guard {
      public:
        Guard(Watchdog* dog, const CancellationSource& source, std::chrono::nanoseconds timeout,
              const std::atomic<std::uint64_t>* heartbeat = nullptr)
            : dog_(dog) {
            if (dog_ != nullptr && timeout.count() > 0) {
                ticket_ = dog_->arm(source, timeout, heartbeat);
            }
        }
        ~Guard() {
            if (dog_ != nullptr && ticket_ != 0) dog_->disarm(ticket_);
        }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

      private:
        Watchdog* dog_ = nullptr;
        Ticket ticket_ = 0;
    };

  private:
    struct Entry {
        CancellationSource source;
        std::int64_t deadline_ns = 0;
        std::int64_t timeout_ns = 0;
        const std::atomic<std::uint64_t>* heartbeat = nullptr;
        std::uint64_t last_beat = 0;
        bool fired = false;
    };

    void run();

    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<Ticket, Entry> entries_;
    Ticket next_ticket_ = 1;
    bool stop_ = false;
    std::atomic<std::uint64_t> fires_{0};
    std::thread thread_;
};

}  // namespace rfabm::exec
