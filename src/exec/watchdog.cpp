#include "exec/watchdog.hpp"

namespace rfabm::exec {

Watchdog::Watchdog() : Watchdog(Options()) {}

Watchdog::Watchdog(Options options) : options_(options) {
    thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

Watchdog::Ticket Watchdog::arm(CancellationSource source, std::chrono::nanoseconds timeout,
                               const std::atomic<std::uint64_t>* heartbeat) {
    Entry entry;
    entry.source = std::move(source);
    entry.timeout_ns = timeout.count();
    entry.deadline_ns = detail::steady_now_ns() + entry.timeout_ns;
    entry.heartbeat = heartbeat;
    entry.last_beat =
        heartbeat != nullptr ? heartbeat->load(std::memory_order_relaxed) : 0;

    Ticket ticket = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket = next_ticket_++;
        entries_.emplace(ticket, std::move(entry));
    }
    cv_.notify_all();
    return ticket;
}

void Watchdog::disarm(Ticket ticket) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(ticket);
}

void Watchdog::run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; });
        if (stop_) break;
        const std::int64_t now = detail::steady_now_ns();
        for (auto& [ticket, entry] : entries_) {
            if (entry.fired) continue;
            if (entry.heartbeat != nullptr) {
                const std::uint64_t beat = entry.heartbeat->load(std::memory_order_relaxed);
                if (beat != entry.last_beat) {
                    // Progress since the last sweep: the task is slow, not
                    // hung.  Restart its window.
                    entry.last_beat = beat;
                    entry.deadline_ns = now + entry.timeout_ns;
                    continue;
                }
            }
            if (now >= entry.deadline_ns) {
                // Expire the task's deadline rather than cancel() it so the
                // token reports a deadline reason — the measurement pipeline
                // maps that to kTimedOut instead of a generic failure.
                entry.source.set_deadline_after(std::chrono::nanoseconds(0));
                entry.fired = true;
                fires_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

}  // namespace rfabm::exec
