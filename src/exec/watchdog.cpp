#include "exec/watchdog.hpp"

#include <algorithm>
#include <cmath>

namespace rfabm::exec {

namespace {

/// EWMA smoothing weight for newly observed inter-beat intervals.  Heavy
/// enough that a cadence shift (a campaign moving from fast AC sweeps to slow
/// transient cells) re-tunes within a handful of beats, light enough that one
/// anomalous gap does not swing the stall threshold.
constexpr double kEwmaAlpha = 0.2;

}  // namespace

Watchdog::Watchdog() : Watchdog(Options()) {}

Watchdog::Watchdog(Options options) : options_(options) {
    thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::int64_t Watchdog::auto_timeout_ns_locked() const {
    const std::int64_t floor_ns = std::max<std::int64_t>(options_.min_timeout.count(), 1);
    if (ewma_interval_ns_ <= 0.0) return floor_ns;
    const double scaled = ewma_interval_ns_ * options_.safety_factor;
    return std::max<std::int64_t>(floor_ns, static_cast<std::int64_t>(std::llround(scaled)));
}

void Watchdog::observe_interval_locked(std::int64_t interval_ns) {
    if (interval_ns <= 0) return;
    const double sample = static_cast<double>(interval_ns);
    ewma_interval_ns_ =
        ewma_interval_ns_ <= 0.0 ? sample
                                 : (1.0 - kEwmaAlpha) * ewma_interval_ns_ + kEwmaAlpha * sample;
}

std::chrono::nanoseconds Watchdog::auto_timeout() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::chrono::nanoseconds(auto_timeout_ns_locked());
}

Watchdog::Ticket Watchdog::arm(CancellationSource source, std::chrono::nanoseconds timeout,
                               const std::atomic<std::uint64_t>* heartbeat) {
    Entry entry;
    entry.source = std::move(source);
    entry.timeout_ns = timeout.count() > 0 ? timeout.count() : 0;  // 0: auto-tuned
    entry.heartbeat = heartbeat;
    entry.last_beat =
        heartbeat != nullptr ? heartbeat->load(std::memory_order_relaxed) : 0;

    Ticket ticket = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::int64_t now = detail::steady_now_ns();
        const std::int64_t effective =
            entry.timeout_ns > 0 ? entry.timeout_ns : auto_timeout_ns_locked();
        entry.deadline_ns = now + effective;
        entry.last_beat_ns = now;
        ticket = next_ticket_++;
        entries_.emplace(ticket, std::move(entry));
    }
    cv_.notify_all();
    return ticket;
}

void Watchdog::disarm(Ticket ticket) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(ticket);
}

void Watchdog::run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; });
        if (stop_) break;
        const std::int64_t now = detail::steady_now_ns();
        for (auto& [ticket, entry] : entries_) {
            if (entry.fired) continue;
            if (entry.heartbeat != nullptr) {
                const std::uint64_t beat = entry.heartbeat->load(std::memory_order_relaxed);
                if (beat != entry.last_beat) {
                    // Progress since the last sweep: the task is slow, not
                    // hung.  Restart its window, and feed the observed beat
                    // spacing into the cadence EWMA.  When several beats
                    // landed inside one poll interval, charge the average
                    // spacing rather than the whole sweep gap.
                    const std::uint64_t delta = beat - entry.last_beat;
                    const std::int64_t gap = now - entry.last_beat_ns;
                    if (options_.auto_tune && delta > 0) {
                        observe_interval_locked(gap / static_cast<std::int64_t>(delta));
                    }
                    entry.last_beat = beat;
                    entry.last_beat_ns = now;
                    entry.deadline_ns =
                        now + (entry.timeout_ns > 0 ? entry.timeout_ns
                                                    : auto_timeout_ns_locked());
                    continue;
                }
            }
            if (now >= entry.deadline_ns) {
                // An auto-tuned entry's deadline was set from the EWMA at its
                // last beat; if the cadence estimate has since grown (other
                // tasks beating slower), honour the current, larger window
                // before declaring a stall.
                if (entry.timeout_ns == 0) {
                    const std::int64_t fresh = entry.last_beat_ns + auto_timeout_ns_locked();
                    if (now < fresh) {
                        entry.deadline_ns = fresh;
                        continue;
                    }
                }
                // Expire the task's deadline rather than cancel() it so the
                // token reports a deadline reason — the measurement pipeline
                // maps that to kTimedOut instead of a generic failure.
                entry.source.set_deadline_after(std::chrono::nanoseconds(0));
                entry.fired = true;
                fires_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

}  // namespace rfabm::exec
