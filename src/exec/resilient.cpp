#include "exec/resilient.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "circuit/dc.hpp"
#include "exec/shard.hpp"

namespace rfabm::exec {

namespace {

/// Shared mutable state for one resilient run; cell bodies reference it.
struct RunState {
    const ResilienceOptions* res = nullptr;
    JournalWriter writer;
    std::unique_ptr<Watchdog> watchdog;
    Quarantine quarantine;
    FailureBreaker breaker;
    std::mutex report_mutex;
    TriageReport report;

    explicit RunState(const ResilienceOptions& options)
        : res(&options), breaker(options.breaker) {}

    void tally(CellOutcome outcome) {
        std::lock_guard<std::mutex> lock(report_mutex);
        ++report.counts[static_cast<std::size_t>(outcome)];
    }

    void note_quarantine(const CellKey& key, CellOutcome terminal, const std::string& detail) {
        std::lock_guard<std::mutex> lock(report_mutex);
        report.quarantine_details.push_back(key.to_string() + " [" +
                                            rfabm::exec::to_string(terminal) + "] " + detail);
    }
};

/// Journal a failed attempt so the budget survives a worker crash: the
/// resumed process charges these against max_cell_attempts.
void note_failed_attempt(RunState& state, const CellKey& key, std::uint32_t burned_total) {
    if (state.writer.is_open()) state.writer.append_attempt(key, burned_total);
}

void run_cell(RunState& state, const ResilientCell& cell, std::uint32_t prior_attempts,
              TaskContext& ctx) {
    if (cell.optional && state.breaker.tripped()) {
        // Graceful degradation: the campaign is drowning in failures, shed
        // optional work so mandatory cells keep their wall-clock budget.
        // (Deferral already parked this cell past the mandatory sweep; a
        // breaker still tripped now means the campaign never recovered.)
        state.tally(CellOutcome::kShed);
        return;
    }

    // Attempts burned by previous incarnations of this process count against
    // the same budget; the caller quarantines cells that arrive exhausted.
    const int max_attempts = std::max(1, state.res->max_cell_attempts);
    const int budget = max_attempts - static_cast<int>(prior_attempts);
    CellComputeResult computed;
    bool got = false;
    CellOutcome last_fail = CellOutcome::kFailed;
    std::string detail;
    int attempts = 0;
    while (attempts < budget && !got) {
        if (ctx.token.stop_requested()) break;
        ++attempts;
        // Each attempt gets a private child source: the watchdog expires the
        // child's deadline without touching the campaign token, and a
        // campaign-wide cancel still stops the child through the parent link.
        std::atomic<std::uint64_t> beat{0};
        CancellationSource attempt_source(ctx.token);
        Watchdog::Guard guard(state.watchdog.get(), attempt_source, state.res->cell_timeout,
                              &beat);
        CellAttempt attempt{attempt_source.token(), &beat,
                            static_cast<int>(prior_attempts) + attempts - 1};
        try {
            computed = cell.compute(attempt);
            got = true;
        } catch (const circuit::ConvergenceError& e) {
            detail = e.what();
            state.breaker.record(false);
            note_failed_attempt(state, cell.key, prior_attempts + attempts);
            if (e.non_finite()) {
                // Deterministic arithmetic poison: a retry reruns the exact
                // same blow-up, so fail fast instead of burning attempts.
                last_fail = CellOutcome::kNonFinite;
                break;
            }
            last_fail = CellOutcome::kFailed;
        } catch (const std::exception& e) {
            detail = e.what();
            state.breaker.record(false);
            note_failed_attempt(state, cell.key, prior_attempts + attempts);
            const bool timed_out =
                attempt_source.token().deadline_expired() && !ctx.token.stop_requested();
            last_fail = timed_out ? CellOutcome::kTimedOut : CellOutcome::kFailed;
        }
    }

    if (got) {
        cell.deliver(computed.payload, computed.outcome, false);
        if (state.writer.is_open()) {
            state.writer.append_cell(
                {cell.key, static_cast<std::uint32_t>(computed.outcome), computed.payload});
        }
        state.breaker.record(true);
        state.tally(computed.outcome);
        return;
    }

    if (ctx.token.stop_requested() && last_fail != CellOutcome::kNonFinite) {
        // Campaign-level cancel interrupted the attempts: the cell did not
        // genuinely exhaust its budget, so leave it unquarantined (the graph
        // accounting covers the shutdown).
        return;
    }

    // Attempt budget spent: quarantine.  The journal remembers, so a resumed
    // campaign does not burn time re-failing this cell.
    const std::uint32_t burned = prior_attempts + static_cast<std::uint32_t>(attempts);
    state.quarantine.add(cell.key, burned);
    if (state.writer.is_open()) {
        state.writer.append_quarantine(cell.key, burned);
    }
    state.tally(last_fail);
    state.note_quarantine(cell.key, last_fail, detail);
}

}  // namespace

ResilientResult run_resilient_campaign(const std::vector<ResilientChain>& chains,
                                       const CampaignOptions& options,
                                       const ResilienceOptions& res, ThreadPool* pool) {
    auto state = std::make_shared<RunState>(res);
    TriageReport& report = state->report;
    for (const ResilientChain& chain : chains) report.cells_total += chain.cells.size();

    // 1. Replay the journal (resume only).  A journal carrying superseded
    // records — duplicate cells from merged shards, attempt tallies of cells
    // that since completed — is compacted in place first, so this replay and
    // every future one stays O(cells) instead of O(attempts).
    JournalReplay replay;
    bool orig_torn_tail = false;
    bool orig_checksum_mismatch = false;
    std::unordered_map<CellKey, const CellRecord*, CellKeyHash> replayed;
    std::unordered_map<CellKey, std::uint32_t, CellKeyHash> prior_attempts;
    if (!res.journal_path.empty() && res.resume) {
        replay = replay_journal(res.journal_path, res.campaign_id);
        orig_torn_tail = replay.torn_tail;
        orig_checksum_mismatch = replay.checksum_mismatch;
        if (replay.present && replay.superseded_records > 0 &&
            compact_journal(res.journal_path, res.campaign_id)) {
            replay = replay_journal(res.journal_path, res.campaign_id);
        }
        for (const CellRecord& record : replay.cells) replayed[record.key] = &record;
        for (const auto& [key, attempts] : replay.quarantined) {
            state->quarantine.add(key, attempts);
        }
        for (const auto& [key, attempts] : replay.attempts) prior_attempts[key] = attempts;
    }

    // 2. Open the journal for appending (truncating any torn tail).
    if (!res.journal_path.empty()) {
        JournalWriter::Options jopts;
        jopts.campaign_id = res.campaign_id;
        jopts.checkpoint_every = res.checkpoint_every;
        const bool open_ok =
            replay.present ? state->writer.open_resume(res.journal_path, jopts, replay.valid_bytes)
                           : state->writer.open_fresh(res.journal_path, jopts);
        if (open_ok && res.on_journal_open) res.on_journal_open(state->writer);
    }

    if (res.cell_timeout.count() > 0 || res.watchdog.auto_tune) {
        state->watchdog = std::make_unique<Watchdog>(res.watchdog);
    }

    // 3. Deliver replayed cells and build the graph for the remainder.
    const int max_attempts = std::max(1, res.max_cell_attempts);
    std::uint64_t delivered_replays = 0;
    std::vector<DieChain> dies;
    for (const ResilientChain& chain : chains) {
        DieChain die;
        for (const ResilientCell& cell : chain.cells) {
            const auto it = replayed.find(cell.key);
            if (it != replayed.end()) {
                // Bit-exact replay into the cell's own result slot — this is
                // what makes a resumed campaign byte-identical.
                cell.deliver(it->second->payload,
                             static_cast<CellOutcome>(it->second->outcome), true);
                state->tally(CellOutcome::kReplayed);
                ++delivered_replays;
                continue;
            }
            if (state->quarantine.contains(cell.key)) {
                // Quarantined by a previous run; counted, never retried.
                state->tally(CellOutcome::kQuarantined);
                continue;
            }
            const auto pit = prior_attempts.find(cell.key);
            const std::uint32_t prior = pit != prior_attempts.end() ? pit->second : 0;
            if (prior >= static_cast<std::uint32_t>(max_attempts)) {
                // The budget was exhausted by previous incarnations (each
                // attempt crashed the process before a quarantine record
                // could land).  Quarantine now, without burning another run.
                state->quarantine.add(cell.key, prior);
                if (state->writer.is_open()) state->writer.append_quarantine(cell.key, prior);
                state->tally(CellOutcome::kQuarantined);
                state->note_quarantine(cell.key, CellOutcome::kFailed,
                                       "attempt budget exhausted across restarts");
                continue;
            }
            die.measurements.push_back(
                {[state, &cell, prior](TaskContext& ctx) { run_cell(*state, cell, prior, ctx); },
                 cell.optional});
        }
        if (die.measurements.empty()) continue;  // fully satisfied: skip calibration too
        if (chain.calibrate) {
            die.calibrate = [calibrate = chain.calibrate](TaskContext& ctx) {
                try {
                    calibrate(ctx);
                } catch (const std::exception&) {
                    // Not fatal: downstream cells fail (and retry/quarantine)
                    // on their own terms instead of aborting the campaign.
                }
            };
        }
        dies.push_back(std::move(die));
    }

    // 4. Run what remains.  Optional cells are deferrable: while the breaker
    // is tripped the scheduler parks them so mandatory cells drain first —
    // and a breaker that recovers in the meantime lets the parked cells run
    // instead of being shed.
    CampaignOptions copts = options;
    if (!copts.defer_optional) {
        copts.defer_optional = [state] { return state->breaker.tripped(); };
    }
    ResilientResult result;
    if (pool != nullptr) {
        result.graph = run_campaign(*pool, dies, copts);
    } else {
        result.graph = run_campaign(dies, copts);
    }

    // 5. Assemble the report.
    state->writer.close();
    report.quarantined_cells = state->quarantine.cells();
    std::sort(report.quarantined_cells.begin(), report.quarantined_cells.end(),
              [](const auto& a, const auto& b) {
                  return std::tie(a.first.die, a.first.env, a.first.meas) <
                         std::tie(b.first.die, b.first.env, b.first.meas);
              });
    report.watchdog_fires = state->watchdog ? state->watchdog->fires() : 0;
    report.breaker_tripped = state->breaker.ever_tripped();
    report.journal = state->writer.stats();
    report.journal.records_replayed = delivered_replays;
    report.journal.torn_tail = orig_torn_tail || replay.torn_tail;
    report.journal.checksum_mismatch = orig_checksum_mismatch || replay.checksum_mismatch;
    report.journal.id_mismatch = replay.id_mismatch;
    result.triage = std::move(report);
    return result;
}

}  // namespace rfabm::exec
